//===----------------------------------------------------------------------===//
//
// Part of AlgSpec. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the static exhaustiveness certifier (check/Exhaustiveness.h)
/// and the shared pattern-matrix algorithms (rewrite/PatternMatrix.h):
/// usefulness over linear, non-linear, and guarded rows, witness
/// minimality, honesty about non-free sorts and undecided guards,
/// dead-axiom detection, the certificate-skip contract with the dynamic
/// completeness checker, and byte-identity of the reports across job
/// counts and engine choices.
///
//===----------------------------------------------------------------------===//

#include "ast/TermPrinter.h"
#include "core/AlgSpec.h"
#include "rewrite/PatternMatrix.h"
#include "server/Commands.h"

#include <gtest/gtest.h>

using namespace algspec;

namespace {

/// Loads \p Text into a fresh workspace, asserting parse success.
void load(Workspace &WS, std::string_view Text,
          const char *Name = "<test>") {
  Result<void> R = WS.load(Text, Name);
  ASSERT_TRUE(static_cast<bool>(R)) << R.error().message();
}

/// Incomplete: SIZE misses the PUSH case (examples/specs/incomplete.alg).
constexpr std::string_view PileAlg = R"(
spec Pile
  uses Item
  sorts Pile
  ops
    MKP  : -> Pile
    PUSH : Pile, Item -> Pile
    SIZE : Pile -> Int
    TOP  : Pile -> Item
  constructors MKP, PUSH
  vars
    p : Pile
    i : Item
  axioms
    SIZE(MKP) = 0
    TOP(MKP) = error
    TOP(PUSH(p, i)) = i
end
)";

/// Shadowed: the third EMPTY? axiom is dead under first-rule-wins
/// (examples/specs/shadowed.alg).
constexpr std::string_view SackAlg = R"(
spec Sack
  uses Item
  sorts Sack
  ops
    MKS    : -> Sack
    INS    : Sack, Item -> Sack
    EMPTY? : Sack -> Bool
  constructors MKS, INS
  vars
    s : Sack
    i : Item
    j : Item
  axioms
    EMPTY?(MKS) = true
    EMPTY?(INS(s, i)) = false
    EMPTY?(INS(INS(s, i), j)) = false
end
)";

/// Non-linear: DUP?'s first axiom repeats i, so the trusted matrix drops
/// the row and coverage sits strictly between the approximations.
constexpr std::string_view DupAlg = R"(
spec Duplicate
  uses Item
  sorts Dict
  ops
    MKD  : -> Dict
    PUT  : Dict, Item -> Dict
    DUP? : Dict -> Bool
  constructors MKD, PUT
  vars
    d : Dict
    i : Item
  axioms
    DUP?(PUT(PUT(d, i), i)) = true
    DUP?(MKD) = false
end
)";

/// Non-linear with a covering linearization: read with the repeated i as
/// independent wildcards the axioms cover everything, read strictly they
/// miss PUT(PUT(d, i), j) with distinct items — so the truth sits in the
/// gap between the approximations and no verdict may be claimed.
constexpr std::string_view DupCoveredAlg = R"(
spec Duplicate
  uses Item
  sorts Dict
  ops
    MKD  : -> Dict
    PUT  : Dict, Item -> Dict
    DUP? : Dict -> Bool
  constructors MKD, PUT
  vars
    d : Dict
    i : Item
  axioms
    DUP?(PUT(PUT(d, i), i)) = true
    DUP?(PUT(MKD, i)) = false
    DUP?(MKD) = false
end
)";

/// Non-free: the first axiom rewrites the constructor S, so an uncovered
/// pattern over M may denote a reachable normal form or not — the
/// witness claim must be withheld.
constexpr std::string_view NormAlg = R"(
spec Norm
  sorts M
  ops
    Z : -> M
    S : M -> M
    F : M -> Bool
  constructors Z, S
  vars m : M
  axioms
    S(S(m)) = S(m)
    F(Z) = true
end
)";

/// A SAME guard over the non-free sort M that cannot be discharged: the
/// comparison survives in PICK's normal form for distinct arguments.
constexpr std::string_view UndecidedGuardAlg = R"(
spec Undecided
  sorts M
  ops
    Z : -> M
    S : M -> M
    PICK : M, M -> M
  constructors Z, S
  vars
    m : M
    x : M
    y : M
  axioms
    S(S(m)) = S(m)
    PICK(x, y) = if SAME(x, y) then x else y
end
)";

/// A SAME guard over the non-free sort M that the symbolic probe *does*
/// discharge: both comparands are the same ground term, so the guard
/// normalizes away before any case split is needed.
constexpr std::string_view ProbedGuardAlg = R"(
spec Probed
  sorts M
  ops
    Z : -> M
    S : M -> M
    CONST : -> Bool
  constructors Z, S
  vars m : M
  axioms
    S(S(m)) = S(m)
    CONST = if SAME(S(Z), S(Z)) then true else false
end
)";

/// The argument-pattern row of axiom \p Index of \p S.
PatternMatrix::Row axiomRow(const AlgebraContext &Ctx, const Spec &S,
                            size_t Index) {
  auto Args = Ctx.children(S.axioms()[Index].Lhs);
  return PatternMatrix::Row(Args.begin(), Args.end());
}

} // namespace

//===----------------------------------------------------------------------===//
// Pattern-matrix algorithms
//===----------------------------------------------------------------------===//

TEST(PatternMatrixTest, UsefulnessOverLinearRows) {
  Workspace WS;
  load(WS, SackAlg, "shadowed.alg");
  AlgebraContext &Ctx = WS.context();
  const Spec &S = WS.specs()[0];
  OpId Empty = Ctx.lookupOp("EMPTY?");
  ASSERT_TRUE(Empty.isValid());
  std::vector<SortId> Sorts = Ctx.op(Empty).ArgSorts;

  PatternMatrix M(Ctx);
  PatternMatrix::Row R1 = axiomRow(Ctx, S, 0); // EMPTY?(MKS)
  PatternMatrix::Row R2 = axiomRow(Ctx, S, 1); // EMPTY?(INS(s, i))
  PatternMatrix::Row R3 = axiomRow(Ctx, S, 2); // EMPTY?(INS(INS(s,i),j))

  // Every row is useful relative to the empty matrix.
  EXPECT_TRUE(M.isUseful({}, R1, Sorts));
  // INS(s, i) adds coverage after MKS ...
  EXPECT_TRUE(M.isUseful({R1}, R2, Sorts));
  // ... but the doubly-nested INS row adds nothing after it: dead code.
  EXPECT_FALSE(M.isUseful({R1, R2}, R3, Sorts));
  // The two linear rows together are exhaustive.
  PatternMatrix::Coverage Cov = M.findUncovered({R1, R2}, Sorts);
  EXPECT_FALSE(Cov.Witness.has_value());
  EXPECT_TRUE(Cov.BlockedSorts.empty());
}

TEST(PatternMatrixTest, NonLinearRowIsDetectedAndOverApproximates) {
  Workspace WS;
  load(WS, DupAlg, "nonlinear.alg");
  AlgebraContext &Ctx = WS.context();
  const Spec &S = WS.specs()[0];
  PatternMatrix::Row NonLinear = axiomRow(Ctx, S, 0);
  PatternMatrix::Row MkdRow = axiomRow(Ctx, S, 1);
  EXPECT_FALSE(PatternMatrix::isLinearRow(Ctx, NonLinear));
  EXPECT_TRUE(PatternMatrix::isLinearRow(Ctx, MkdRow));
  EXPECT_TRUE(PatternMatrix::isConstructorPattern(Ctx, NonLinear[0]));

  // Linearized, the repeated-variable row covers PUT(PUT(d, i), j) even
  // for distinct items — which is exactly why a "complete" verdict must
  // not trust it (the certifier drops it instead; see below).
  OpId Dup = Ctx.lookupOp("DUP?");
  ASSERT_TRUE(Dup.isValid());
  std::vector<SortId> Sorts = Ctx.op(Dup).ArgSorts;
  PatternMatrix M(Ctx);
  PatternMatrix::Coverage Over = M.findUncovered({NonLinear, MkdRow}, Sorts);
  ASSERT_TRUE(Over.Witness.has_value()); // PUT(MKD, item) stays uncovered.
  PatternMatrix::Coverage Under = M.findUncovered({MkdRow}, Sorts);
  ASSERT_TRUE(Under.Witness.has_value());
  EXPECT_EQ(printTerm(Ctx, (*Under.Witness)[0]), "PUT(dict, item)");
}

TEST(PatternMatrixTest, GeneralizeMinimizesGroundWitness) {
  Workspace WS;
  load(WS, PileAlg, "incomplete.alg");
  AlgebraContext &Ctx = WS.context();
  const Spec &S = WS.specs()[0];
  PatternMatrix M(Ctx);
  PatternMatrix::Row SizeRow = axiomRow(Ctx, S, 0); // SIZE(MKP)

  // A deep stuck term found by the dynamic sweep ...
  OpId Mkp = Ctx.lookupOp("MKP");
  OpId Push = Ctx.lookupOp("PUSH");
  SortId Item = Ctx.lookupSort("Item");
  ASSERT_TRUE(Mkp.isValid());
  ASSERT_TRUE(Push.isValid());
  TermId Atom = Ctx.makeAtom(Ctx.intern("item1"), Item);
  TermId Deep =
      Ctx.makeOp(Push, {Ctx.makeOp(Push, {Ctx.makeOp(Mkp, {}), Atom}), Atom});

  // ... minimizes to the same skeleton the static analysis reports: the
  // outermost PUSH is load-bearing, everything below generalizes.
  PatternMatrix::Row Minimal = M.generalize({SizeRow}, {Deep});
  ASSERT_EQ(Minimal.size(), 1u);
  EXPECT_EQ(printTerm(Ctx, Minimal[0]), "PUSH(pile, item)");
}

//===----------------------------------------------------------------------===//
// Certifier verdicts
//===----------------------------------------------------------------------===//

TEST(ExhaustivenessTest, MissingCaseYieldsMinimalWitness) {
  Workspace WS;
  load(WS, PileAlg, "incomplete.alg");
  ExhaustivenessReport Report = WS.exhaustiveness();
  EXPECT_EQ(Report.Overall, CoverageVerdict::Unknown);
  EXPECT_FALSE(Report.coversSpec("Pile"));

  OpId Size = WS.context().lookupOp("SIZE");
  ASSERT_TRUE(Size.isValid());
  const OpExhaustiveness *OE = Report.opVerdict(Size);
  ASSERT_NE(OE, nullptr);
  EXPECT_EQ(OE->Verdict, CoverageVerdict::Unknown);
  ASSERT_TRUE(OE->Witness.isValid());
  EXPECT_EQ(printTerm(WS.context(), OE->Witness), "SIZE(PUSH(pile, item))");
  EXPECT_NE(OE->Obstruction.find("no axiom covers"), std::string::npos)
      << OE->Obstruction;
  // TOP is fully covered; its certificate records both rows.
  OpId Top = WS.context().lookupOp("TOP");
  const OpExhaustiveness *TopV = Report.opVerdict(Top);
  ASSERT_NE(TopV, nullptr);
  EXPECT_EQ(TopV->Verdict, CoverageVerdict::Complete);
  EXPECT_EQ(TopV->RowsUsed.size(), 2u);
}

TEST(ExhaustivenessTest, NonLinearRowBlocksTheCompleteClaim) {
  // When even the linearized over-approximation misses a case, that case
  // is soundly uncovered and the witness is claimed ...
  {
    Workspace WS;
    load(WS, DupAlg, "nonlinear.alg");
    ExhaustivenessReport Report = WS.exhaustiveness();
    const OpExhaustiveness *OE =
        Report.opVerdict(WS.context().lookupOp("DUP?"));
    ASSERT_NE(OE, nullptr);
    EXPECT_EQ(OE->Verdict, CoverageVerdict::Unknown);
    ASSERT_TRUE(OE->Witness.isValid());
    EXPECT_EQ(printTerm(WS.context(), OE->Witness), "DUP?(PUT(MKD, item))");
  }
  // ... but when the linearization covers everything and the strict
  // reading does not, the truth is unknowable to the matrix and neither
  // "complete" nor a witness may be claimed.
  {
    Workspace WS;
    load(WS, DupCoveredAlg, "nonlinear_covered.alg");
    ExhaustivenessReport Report = WS.exhaustiveness();
    const OpExhaustiveness *OE =
        Report.opVerdict(WS.context().lookupOp("DUP?"));
    ASSERT_NE(OE, nullptr);
    EXPECT_EQ(OE->Verdict, CoverageVerdict::Unknown);
    EXPECT_NE(OE->Obstruction.find("repeats a variable"), std::string::npos)
        << OE->Obstruction;
    EXPECT_FALSE(OE->Witness.isValid());
  }
}

TEST(ExhaustivenessTest, NonFreeSortWithholdsTheWitness) {
  Workspace WS;
  load(WS, NormAlg, "norm.alg");
  ExhaustivenessReport Report = WS.exhaustiveness();
  OpId F = WS.context().lookupOp("F");
  ASSERT_TRUE(F.isValid());
  const OpExhaustiveness *OE = Report.opVerdict(F);
  ASSERT_NE(OE, nullptr);
  EXPECT_EQ(OE->Verdict, CoverageVerdict::Unknown);
  EXPECT_NE(OE->Obstruction.find("not freely generated"), std::string::npos)
      << OE->Obstruction;
  // The uncovered pattern F(S(m)) may be unreachable modulo the S-rule,
  // so no witness term is claimed.
  EXPECT_FALSE(OE->Witness.isValid());
}

TEST(ExhaustivenessTest, ShadowedAxiomIsReportedDead) {
  Workspace WS;
  load(WS, SackAlg, "shadowed.alg");
  ExhaustivenessReport Report = WS.exhaustiveness();
  // The operation still certifies: dead code, not missing code.
  EXPECT_TRUE(Report.coversSpec("Sack"));
  ASSERT_EQ(Report.Shadowed.size(), 1u);
  const ShadowedAxiom &SA = Report.Shadowed[0];
  EXPECT_EQ(SA.SpecName, "Sack");
  EXPECT_EQ(SA.AxiomNumber, 3u);
  ASSERT_EQ(SA.ShadowedBy.size(), 1u);
  EXPECT_EQ(SA.ShadowedBy[0], "axiom 2 of 'Sack'");
}

TEST(ExhaustivenessTest, UndecidedGuardNamesTheSort) {
  Workspace WS;
  load(WS, UndecidedGuardAlg, "undecided.alg");
  ExhaustivenessReport Report = WS.exhaustiveness();
  const SpecExhaustiveness *SE = Report.specVerdict("Undecided");
  ASSERT_NE(SE, nullptr);
  EXPECT_EQ(SE->Verdict, CoverageVerdict::Unknown);
  EXPECT_FALSE(SE->GuardsDecided);
  EXPECT_NE(SE->Obstruction.find("guards are not decided"),
            std::string::npos)
      << SE->Obstruction;
  EXPECT_NE(SE->Obstruction.find("'M'"), std::string::npos)
      << SE->Obstruction;
}

TEST(ExhaustivenessTest, ProbedGuardIsDischargedWithCaveat) {
  Workspace WS;
  load(WS, ProbedGuardAlg, "probed.alg");
  ExhaustivenessReport Report = WS.exhaustiveness();
  const SpecExhaustiveness *SE = Report.specVerdict("Probed");
  ASSERT_NE(SE, nullptr);
  EXPECT_TRUE(SE->GuardsDecided) << SE->Obstruction;
  EXPECT_EQ(SE->Verdict, CoverageVerdict::Complete) << SE->Obstruction;
  bool Noted = false;
  for (const std::string &C : Report.Caveats)
    Noted |= C.find("symbolic probing") != std::string::npos;
  EXPECT_TRUE(Noted);
}

//===----------------------------------------------------------------------===//
// Builtin specs
//===----------------------------------------------------------------------===//

TEST(ExhaustivenessBuiltins, OrthogonalFamilyCertifies) {
  for (const char *Name : {"queue", "symboltable", "stackarray", "knowlist",
                           "knows_symboltable", "nat", "set", "list", "bag",
                           "bst", "boundedqueue"}) {
    Workspace WS;
    load(WS, server::builtinSpecText(Name), Name);
    ExhaustivenessReport Report = WS.exhaustiveness();
    EXPECT_EQ(Report.Overall, CoverageVerdict::Complete)
        << Name << ": " << Report.Obstruction;
    EXPECT_TRUE(Report.Shadowed.empty()) << Name;
  }
}

TEST(ExhaustivenessBuiltins, TableStaysUnknownNamingTermination) {
  Workspace WS;
  load(WS, server::builtinSpecText("table"), "table.alg");
  ExhaustivenessReport Report = WS.exhaustiveness();
  EXPECT_EQ(Report.Overall, CoverageVerdict::Unknown);
  EXPECT_FALSE(Report.coversSpec("Table"));
  EXPECT_NE(Report.Obstruction.find("termination"), std::string::npos)
      << Report.Obstruction;
  // Every defined operation is still matrix-covered: the spec-level
  // unknown comes from termination alone, honestly named.
  const SpecExhaustiveness *SE = Report.specVerdict("Table");
  ASSERT_NE(SE, nullptr);
  EXPECT_EQ(SE->OpsComplete, SE->ClosureOps);
  EXPECT_FALSE(SE->TerminationProved);
}

TEST(ExhaustivenessBuiltins, SymboltableImplStaysUnknown) {
  Workspace WS;
  load(WS, server::builtinSpecText("symboltable"), "symboltable.alg");
  load(WS, server::builtinSpecText("stackarray"), "stackarray.alg");
  load(WS, server::builtinSpecText("symboltable_impl"),
       "symboltable_impl.alg");
  ExhaustivenessReport Report = WS.exhaustiveness();
  EXPECT_FALSE(Report.coversSpec("SymboltableImpl"));
  // The sibling specs keep their own certificates.
  EXPECT_TRUE(Report.coversSpec("Symboltable"));
  EXPECT_TRUE(Report.coversSpec("Stack"));
}

//===----------------------------------------------------------------------===//
// Certificate-skip contract with the dynamic checker
//===----------------------------------------------------------------------===//

TEST(ExhaustivenessSkip, CoveringCertificateSkipsTheSweep) {
  Workspace WS;
  load(WS, server::builtinSpecText("queue"), "queue.alg");
  ExhaustivenessReport Cert = WS.exhaustiveness();
  ASSERT_TRUE(Cert.coversSpec("Queue"));
  const Spec &Q = WS.specs()[0];

  CompletenessReport Swept = checkCompletenessDynamic(
      WS.context(), Q, WS.specPointers(), 3);
  CompletenessReport Skipped = checkCompletenessDynamic(
      WS.context(), Q, WS.specPointers(), 3, EnumeratorOptions(),
      ParallelOptions(), EngineOptions(), &Cert);

  EXPECT_TRUE(Swept.ProvenBy.empty());
  EXPECT_NE(Skipped.ProvenBy.find("static exhaustiveness certificate"),
            std::string::npos);
  EXPECT_EQ(Skipped.Engine.Steps, 0u); // No sweep ran.
  // Findings are byte-identical: both empty, both complete.
  EXPECT_TRUE(Swept.SufficientlyComplete);
  EXPECT_TRUE(Skipped.SufficientlyComplete);
  EXPECT_EQ(Swept.Missing.size(), Skipped.Missing.size());
}

TEST(ExhaustivenessSkip, NonCoveringCertificateChangesNothing) {
  Workspace WS;
  load(WS, PileAlg, "incomplete.alg");
  ExhaustivenessReport Cert = WS.exhaustiveness();
  ASSERT_FALSE(Cert.coversSpec("Pile"));
  const Spec &P = WS.specs()[0];

  CompletenessReport Without = checkCompletenessDynamic(
      WS.context(), P, WS.specPointers(), 3);
  CompletenessReport With = checkCompletenessDynamic(
      WS.context(), P, WS.specPointers(), 3, EnumeratorOptions(),
      ParallelOptions(), EngineOptions(), &Cert);

  EXPECT_TRUE(With.ProvenBy.empty());
  ASSERT_EQ(Without.Missing.size(), With.Missing.size());
  for (size_t I = 0; I != Without.Missing.size(); ++I)
    EXPECT_EQ(Without.Missing[I].SuggestedLhs, With.Missing[I].SuggestedLhs);
  // The minimized stuck term matches the static witness exactly.
  ASSERT_EQ(With.Missing.size(), 1u);
  EXPECT_EQ(printTerm(WS.context(), With.Missing[0].SuggestedLhs),
            "SIZE(PUSH(pile, item))");
}

//===----------------------------------------------------------------------===//
// Determinism across job counts and engines
//===----------------------------------------------------------------------===//

namespace {

server::CommandResult run(const char *Command, const char *Builtin,
                          unsigned Jobs, bool Compile, bool Json,
                          int DynamicDepth = -1) {
  server::CommandRequest Request;
  Request.Command = Command;
  Request.Sources.push_back(
      {std::string(Builtin) + ".alg",
       std::string(server::builtinSpecText(Builtin))});
  Request.Opts.Jobs = Jobs;
  Request.Opts.CompileEngine = Compile;
  Request.Opts.Json = Json;
  Request.Opts.DynamicDepth = DynamicDepth;
  return server::runCommand(Request);
}

/// The `"exhaustiveness": {...}` block of an analyze/check JSON report —
/// the part documented as byte-stable across every configuration.
std::string exhaustivenessBlock(const std::string &Json) {
  size_t Begin = Json.find("\"exhaustiveness\"");
  EXPECT_NE(Begin, std::string::npos);
  size_t End = Json.find("\"findings\"", Begin);
  if (End == std::string::npos)
    End = Json.find("\"convergence\"", Begin);
  EXPECT_NE(End, std::string::npos);
  return Json.substr(Begin, End - Begin);
}

} // namespace

TEST(ExhaustivenessDeterminism, CheckOutputByteIdenticalAcrossJobs) {
  // Both the certified path (queue: sweep skipped) and the uncertified
  // path (table: full sweep) at a dynamic depth that exercises sharding.
  for (const char *Builtin : {"queue", "table"}) {
    server::CommandResult Serial = run("check", Builtin, 1, true, false, 3);
    server::CommandResult Parallel =
        run("check", Builtin, 4, true, false, 3);
    EXPECT_EQ(Serial.Out, Parallel.Out) << Builtin;
    EXPECT_EQ(Serial.ExitCode, Parallel.ExitCode) << Builtin;
  }
}

TEST(ExhaustivenessDeterminism, CertificateByteIdenticalAcrossEngines) {
  for (const char *Builtin : {"queue", "set", "table"}) {
    server::CommandResult Compiled =
        run("analyze", Builtin, 1, true, true);
    server::CommandResult Interp =
        run("analyze", Builtin, 1, false, true);
    EXPECT_EQ(exhaustivenessBlock(Compiled.Out),
              exhaustivenessBlock(Interp.Out))
        << Builtin;
  }
}

TEST(ExhaustivenessDeterminism, RepeatedCertificationIsStable) {
  Workspace WS;
  load(WS, server::builtinSpecText("boundedqueue"), "boundedqueue.alg");
  ExhaustivenessReport First = WS.exhaustiveness();
  ExhaustivenessReport Second = WS.exhaustiveness();
  EXPECT_EQ(First.render(WS.context()), Second.render(WS.context()));
}
