//===----------------------------------------------------------------------===//
//
// Part of AlgSpec. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Unit tests for the symbolic interpreter (Session), including the
/// paper's section-4 program-segment notation.
///
//===----------------------------------------------------------------------===//

#include "ast/AlgebraContext.h"
#include "ast/TermPrinter.h"
#include "interp/Session.h"
#include "parser/Parser.h"
#include "specs/BuiltinSpecs.h"

#include <gtest/gtest.h>

using namespace algspec;

namespace {
class QueueSession : public ::testing::Test {
protected:
  void SetUp() override {
    auto Loaded = specs::loadQueue(Ctx);
    ASSERT_TRUE(static_cast<bool>(Loaded)) << Loaded.error().message();
    Q = Loaded.take();
    auto Created = Session::create(Ctx, {&Q});
    ASSERT_TRUE(static_cast<bool>(Created)) << Created.error().message();
    S = std::make_unique<Session>(Created.take());
  }

  AlgebraContext Ctx;
  Spec Q;
  std::unique_ptr<Session> S;
};
} // namespace

TEST_F(QueueSession, AssignAndEval) {
  ASSERT_TRUE(static_cast<bool>(S->run("x := NEW")));
  ASSERT_TRUE(static_cast<bool>(S->run("x := ADD(x, 'a)")));
  ASSERT_TRUE(static_cast<bool>(S->run("x := ADD(x, 'b)")));
  auto Front = S->eval("FRONT(x)");
  ASSERT_TRUE(static_cast<bool>(Front)) << Front.error().message();
  EXPECT_EQ(printTerm(Ctx, *Front), "'a");
}

TEST_F(QueueSession, RegistersHoldNormalForms) {
  ASSERT_TRUE(static_cast<bool>(S->run("x := REMOVE(ADD(ADD(NEW, 'a), 'b))")));
  TermId Val = S->lookup("x");
  ASSERT_TRUE(Val.isValid());
  EXPECT_EQ(printTerm(Ctx, Val), "ADD(NEW, 'b)");
}

TEST_F(QueueSession, PaperStyleProgram) {
  // The program segment style of paper section 4.
  auto R = S->runProgram(R"(
    x := NEW
    x := ADD(x, 'A)
    x := ADD(x, 'B)
    x := ADD(x, 'C)
    x := REMOVE(x)
    x := ADD(x, 'D)
  )");
  ASSERT_TRUE(static_cast<bool>(R)) << R.error().message();
  auto Front = S->eval("FRONT(x)");
  ASSERT_TRUE(static_cast<bool>(Front));
  EXPECT_EQ(printTerm(Ctx, *Front), "'B");
  EXPECT_EQ(printTerm(Ctx, S->lookup("x")),
            "ADD(ADD(ADD(NEW, 'B), 'C), 'D)");
}

TEST_F(QueueSession, SemicolonSeparatedProgram) {
  auto R = S->runProgram("x := NEW; x := ADD(x, 'a); y := FRONT(x)");
  ASSERT_TRUE(static_cast<bool>(R)) << R.error().message();
  EXPECT_EQ(printTerm(Ctx, S->lookup("y")), "'a");
}

TEST_F(QueueSession, CommentsInPrograms) {
  auto R = S->runProgram("-- build a queue\nx := NEW\n-- add one\n"
                         "x := ADD(x, 'a)");
  ASSERT_TRUE(static_cast<bool>(R)) << R.error().message();
  EXPECT_TRUE(S->lookup("x").isValid());
}

TEST_F(QueueSession, ErrorValuesAreFirstClass) {
  ASSERT_TRUE(static_cast<bool>(S->run("x := NEW")));
  ASSERT_TRUE(static_cast<bool>(S->run("x := REMOVE(x)")));
  TermId Val = S->lookup("x");
  EXPECT_TRUE(Ctx.isError(Val));
  // Further operations keep yielding error.
  auto Front = S->eval("FRONT(x)");
  ASSERT_TRUE(static_cast<bool>(Front));
  EXPECT_TRUE(Ctx.isError(*Front));
}

TEST_F(QueueSession, RegisterSortIsStable) {
  ASSERT_TRUE(static_cast<bool>(S->run("x := NEW")));
  auto R = S->run("x := FRONT(ADD(NEW, 'a))"); // Item, not Queue.
  ASSERT_FALSE(static_cast<bool>(R));
  EXPECT_NE(R.error().message().find("holds sort"), std::string::npos);
}

TEST_F(QueueSession, UnknownRegisterIsError) {
  auto R = S->eval("FRONT(nope)");
  EXPECT_FALSE(static_cast<bool>(R));
}

TEST_F(QueueSession, BadStatementReportsError) {
  auto R = S->run(" := NEW");
  ASSERT_FALSE(static_cast<bool>(R));
  EXPECT_NE(R.error().message().find("register name"), std::string::npos);
}

TEST_F(QueueSession, BareTermStatementEvaluates) {
  ASSERT_TRUE(static_cast<bool>(S->run("x := ADD(NEW, 'a)")));
  // A bare term is evaluated for effect-free observation.
  EXPECT_TRUE(static_cast<bool>(S->run("FRONT(x)")));
}

TEST_F(QueueSession, AssignPrebuiltValue) {
  SortId Item = Ctx.lookupSort("Item");
  ASSERT_TRUE(static_cast<bool>(S->assign("i", Ctx.makeAtom("z", Item))));
  auto R = S->eval("ADD(NEW, i)");
  ASSERT_TRUE(static_cast<bool>(R));
  EXPECT_EQ(printTerm(Ctx, *R), "ADD(NEW, 'z)");
}

TEST(SessionTest, SymboltableScenario) {
  // A compiler-shaped session against the bare Symboltable spec: the
  // paper's claim that the lack of an implementation is transparent.
  AlgebraContext Ctx;
  auto Loaded = specs::loadSymboltable(Ctx);
  ASSERT_TRUE(static_cast<bool>(Loaded));
  Spec S = Loaded.take();
  auto Created = Session::create(Ctx, {&S});
  ASSERT_TRUE(static_cast<bool>(Created));
  Session Sess = Created.take();

  auto R = Sess.runProgram(R"(
    t := INIT
    t := ENTERBLOCK(t)
    t := ADD(t, 'x, 'int)
    t := ENTERBLOCK(t)
    t := ADD(t, 'x, 'bool)
  )");
  ASSERT_TRUE(static_cast<bool>(R)) << R.error().message();

  auto Inner = Sess.eval("RETRIEVE(t, 'x)");
  ASSERT_TRUE(static_cast<bool>(Inner));
  EXPECT_EQ(printTerm(Ctx, *Inner), "'bool");

  ASSERT_TRUE(static_cast<bool>(Sess.run("t := LEAVEBLOCK(t)")));
  auto Outer = Sess.eval("RETRIEVE(t, 'x)");
  ASSERT_TRUE(static_cast<bool>(Outer));
  EXPECT_EQ(printTerm(Ctx, *Outer), "'int");

  auto InBlock = Sess.eval("IS_INBLOCK?(t, 'x)");
  ASSERT_TRUE(static_cast<bool>(InBlock));
  EXPECT_EQ(*InBlock, Ctx.trueTerm());
}

TEST(SessionTest, CreateFailsOnUnorientableAxioms) {
  AlgebraContext Ctx;
  auto Parsed = parseSpecText(Ctx, R"(
spec Bad
  sorts B
  ops
    MK : -> B
    F : B -> B
  constructors MK
  vars x, y : B
  axioms
    F(x) = y
end
)");
  ASSERT_TRUE(static_cast<bool>(Parsed));
  auto Created = Session::create(Ctx, {&(*Parsed)[0]});
  EXPECT_FALSE(static_cast<bool>(Created));
}

TEST_F(QueueSession, CommentWithSemicolonDoesNotSplit) {
  auto R = S->runProgram(
      "x := NEW -- comment; with a semicolon\nx := ADD(x, 'a)");
  ASSERT_TRUE(static_cast<bool>(R)) << R.error().message();
  EXPECT_EQ(printTerm(Ctx, S->lookup("x")), "ADD(NEW, 'a)");
}
