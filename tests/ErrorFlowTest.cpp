//===----------------------------------------------------------------------===//
//
// Part of AlgSpec. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Unit tests for the error-flow analysis: the per-operation definedness
/// summaries on the never/may/always-error lattice, the derived error
/// conditions, and the emitted definedness obligations — pinned on the
/// paper's Queue, Stack-of-Arrays, and BoundedQueue specifications.
///
//===----------------------------------------------------------------------===//

#include "ast/AlgebraContext.h"
#include "ast/TermPrinter.h"
#include "check/ErrorFlow.h"
#include "parser/Parser.h"
#include "specs/BuiltinSpecs.h"

#include <gtest/gtest.h>

using namespace algspec;

namespace {

/// Finds the summary of the operation named \p Name, which must exist.
const OpSummary &summaryOf(const AlgebraContext &Ctx,
                           const ErrorFlowReport &Report,
                           std::string_view Name) {
  for (const OpSummary &Sum : Report.Summaries)
    if (Ctx.opName(Sum.Op) == Name)
      return Sum;
  ADD_FAILURE() << "no summary for " << Name;
  static OpSummary Empty;
  return Empty;
}

/// Finds the case of \p Sum whose left-hand side prints as \p Lhs.
const ErrorCase &caseOf(const AlgebraContext &Ctx, const OpSummary &Sum,
                        std::string_view Lhs) {
  for (const ErrorCase &C : Sum.Cases)
    if (printTerm(Ctx, C.Lhs) == Lhs)
      return C;
  ADD_FAILURE() << "no case " << Lhs;
  static ErrorCase Empty;
  return Empty;
}

} // namespace

//===----------------------------------------------------------------------===//
// Queue (paper section 3)
//===----------------------------------------------------------------------===//

TEST(ErrorFlowQueue, FrontAndRemoveErrorOnNew) {
  AlgebraContext Ctx;
  auto Q = specs::loadQueue(Ctx);
  ASSERT_TRUE(static_cast<bool>(Q)) << Q.error().message();
  ErrorFlowReport Report = analyzeErrorFlow(Ctx, {&*Q});

  const OpSummary &Front = summaryOf(Ctx, Report, "FRONT");
  EXPECT_EQ(Front.Overall, ErrorVerdict::May);
  EXPECT_EQ(caseOf(Ctx, Front, "FRONT(NEW)").Verdict, ErrorVerdict::Always);

  const OpSummary &Remove = summaryOf(Ctx, Report, "REMOVE");
  EXPECT_EQ(Remove.Overall, ErrorVerdict::May);
  EXPECT_EQ(caseOf(Ctx, Remove, "REMOVE(NEW)").Verdict,
            ErrorVerdict::Always);

  const OpSummary &IsEmpty = summaryOf(Ctx, Report, "IS_EMPTY?");
  EXPECT_EQ(IsEmpty.Overall, ErrorVerdict::Never);
}

TEST(ErrorFlowQueue, FrontOfAddIsLazyGuardedMay) {
  // FRONT(ADD(q, i)) = if IS_EMPTY?(q) then i else FRONT(q): the error
  // can only come from the recursive FRONT(q) in the else branch, so the
  // case is may-error with a derived (necessary, not exact) condition.
  AlgebraContext Ctx;
  auto Q = specs::loadQueue(Ctx);
  ASSERT_TRUE(static_cast<bool>(Q)) << Q.error().message();
  ErrorFlowReport Report = analyzeErrorFlow(Ctx, {&*Q});

  const ErrorCase &C =
      caseOf(Ctx, summaryOf(Ctx, Report, "FRONT"), "FRONT(ADD(q, i))");
  EXPECT_EQ(C.Verdict, ErrorVerdict::May);
  ASSERT_TRUE(C.ErrorCondition.isValid());
  EXPECT_FALSE(C.ConditionExact);
  EXPECT_EQ(printTerm(Ctx, C.ErrorCondition), "not(IS_EMPTY?(q))");
}

TEST(ErrorFlowQueue, ObligationsListTheAlwaysCases) {
  AlgebraContext Ctx;
  auto Q = specs::loadQueue(Ctx);
  ASSERT_TRUE(static_cast<bool>(Q)) << Q.error().message();
  ErrorFlowReport Report = analyzeErrorFlow(Ctx, {&*Q});

  std::vector<std::string> Rendered;
  for (const DefinednessObligation &O : Report.Obligations)
    Rendered.push_back(O.render(Ctx));
  ASSERT_EQ(Rendered.size(), 2u);
  EXPECT_EQ(Rendered[0], "FRONT(NEW) = error");
  EXPECT_EQ(Rendered[1], "REMOVE(NEW) = error");
}

//===----------------------------------------------------------------------===//
// Stack of Arrays (paper section 4)
//===----------------------------------------------------------------------===//

TEST(ErrorFlowStack, PopAndTopPreconditions) {
  AlgebraContext Ctx;
  auto Specs = specs::loadStackArray(Ctx);
  ASSERT_TRUE(static_cast<bool>(Specs)) << Specs.error().message();
  std::vector<const Spec *> Ptrs;
  for (const Spec &S : *Specs)
    Ptrs.push_back(&S);
  ErrorFlowReport Report = analyzeErrorFlow(Ctx, Ptrs);

  EXPECT_EQ(caseOf(Ctx, summaryOf(Ctx, Report, "POP"), "POP(NEWSTACK)")
                .Verdict,
            ErrorVerdict::Always);
  EXPECT_EQ(caseOf(Ctx, summaryOf(Ctx, Report, "TOP"), "TOP(NEWSTACK)")
                .Verdict,
            ErrorVerdict::Always);

  // REPLACE(stk, arr) = if IS_NEWSTACK?(stk) then error else ...: a
  // single guarded case whose error condition is exact.
  const ErrorCase &Replace = caseOf(
      Ctx, summaryOf(Ctx, Report, "REPLACE"), "REPLACE(stk, arr)");
  EXPECT_EQ(Replace.Verdict, ErrorVerdict::May);
  ASSERT_TRUE(Replace.ErrorCondition.isValid());
  EXPECT_TRUE(Replace.ConditionExact);
  EXPECT_EQ(printTerm(Ctx, Replace.ErrorCondition), "IS_NEWSTACK?(stk)");
}

//===----------------------------------------------------------------------===//
// BoundedQueue: conditions that compose through a called operation
//===----------------------------------------------------------------------===//

TEST(ErrorFlowBoundedQueue, EnqueueErrorsIffFull) {
  AlgebraContext Ctx;
  auto Loaded = specs::load(Ctx, specs::BoundedQueueAlg, "boundedqueue.alg");
  ASSERT_TRUE(static_cast<bool>(Loaded)) << Loaded.error().message();
  std::vector<const Spec *> Ptrs;
  for (const Spec &S : *Loaded)
    Ptrs.push_back(&S);
  ErrorFlowReport Report = analyzeErrorFlow(Ctx, Ptrs);

  const OpSummary &Enqueue = summaryOf(Ctx, Report, "ENQUEUE");
  ASSERT_EQ(Enqueue.Cases.size(), 1u);
  const ErrorCase &C = Enqueue.Cases.front();
  EXPECT_EQ(C.Verdict, ErrorVerdict::May);
  ASSERT_TRUE(C.ErrorCondition.isValid());
  EXPECT_TRUE(C.ConditionExact);
  EXPECT_EQ(printTerm(Ctx, C.ErrorCondition), "IS_FULL?(q)");

  bool Found = false;
  for (const DefinednessObligation &O : Report.Obligations)
    if (O.render(Ctx) == "ENQUEUE(q, i) = error iff IS_FULL?(q)")
      Found = true;
  EXPECT_TRUE(Found) << Report.render(Ctx);
}

//===----------------------------------------------------------------------===//
// Lattice corners on a synthetic spec
//===----------------------------------------------------------------------===//

TEST(ErrorFlowSynthetic, AlwaysErrorOpAndSwallowedError) {
  AlgebraContext Ctx;
  auto Parsed = parseSpecText(Ctx, R"(
spec Blob
  sorts Blob
  ops
    MK     : -> Blob
    BROKEN : Blob -> Blob
    WRAP   : Blob -> Blob
  constructors MK
  vars b : Blob
  axioms
    BROKEN(MK) = error
    WRAP(MK) = BROKEN(MK)
end
)");
  ASSERT_TRUE(static_cast<bool>(Parsed)) << Parsed.error().message();
  std::vector<const Spec *> Ptrs;
  for (const Spec &S : *Parsed)
    Ptrs.push_back(&S);
  ErrorFlowReport Report = analyzeErrorFlow(Ctx, Ptrs);

  // BROKEN's only case errors, so the op is always-error overall; WRAP
  // swallows that error without spelling it.
  EXPECT_EQ(summaryOf(Ctx, Report, "BROKEN").Overall, ErrorVerdict::Always);
  EXPECT_EQ(caseOf(Ctx, summaryOf(Ctx, Report, "WRAP"), "WRAP(MK)").Verdict,
            ErrorVerdict::Always);

  std::string Text = Report.render(Ctx);
  EXPECT_NE(Text.find("Blob.BROKEN: always-error"), std::string::npos)
      << Text;
}

TEST(ErrorFlowSynthetic, SummariesComposeAcrossSpecs) {
  // A second spec calling into Stack picks up Stack's summaries: the
  // analysis is a whole-workspace fixpoint, as Stack-of-Arrays needs.
  AlgebraContext Ctx;
  auto Specs = specs::loadStackArray(Ctx);
  ASSERT_TRUE(static_cast<bool>(Specs)) << Specs.error().message();
  auto Client = parseSpecText(Ctx, R"(
spec Client
  ops
    PEEL : Stack -> Stack
  vars stk : Stack
  axioms
    PEEL(stk) = POP(POP(stk))
end
)");
  ASSERT_TRUE(static_cast<bool>(Client)) << Client.error().message();
  std::vector<const Spec *> Ptrs;
  for (const Spec &S : *Specs)
    Ptrs.push_back(&S);
  for (const Spec &S : *Client)
    Ptrs.push_back(&S);
  ErrorFlowReport Report = analyzeErrorFlow(Ctx, Ptrs);

  // PEEL inherits POP's may-error: nothing in the case proves the inner
  // or outer POP safe.
  EXPECT_EQ(summaryOf(Ctx, Report, "PEEL").Overall, ErrorVerdict::May);
}
