//===----------------------------------------------------------------------===//
//
// Part of AlgSpec. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Direct property tests for syntactic unification (check/Unify.h): MGU
/// idempotence, occurs-check rejection, clash symmetry, and freshness of
/// the rename helpers the critical-pair enumeration depends on.
///
//===----------------------------------------------------------------------===//

#include "ast/AlgebraContext.h"
#include "ast/TermPrinter.h"
#include "check/Unify.h"
#include "rewrite/Substitution.h"
#include "specs/BuiltinSpecs.h"

#include <gtest/gtest.h>

#include <unordered_set>

using namespace algspec;

namespace {

/// Queue gives a spread of arities: NEW : -> Queue,
/// ADD : Queue, Item -> Queue, FRONT : Queue -> Item.
class UnifyTest : public ::testing::Test {
protected:
  void SetUp() override {
    auto Loaded = specs::loadQueue(Ctx);
    ASSERT_TRUE(static_cast<bool>(Loaded)) << Loaded.error().message();
    Queue = Ctx.lookupSort("Queue");
    Item = Ctx.lookupSort("Item");
    New = Ctx.lookupOp("NEW");
    Add = Ctx.lookupOp("ADD");
    Front = Ctx.lookupOp("FRONT");
    ASSERT_TRUE(Add.isValid());
  }

  TermId var(const char *Name, SortId Sort) {
    return Ctx.makeVar(Ctx.addVar(Name, Sort));
  }

  AlgebraContext Ctx;
  SortId Queue, Item;
  OpId New, Add, Front;
};

/// Collects every variable occurring in \p Term.
void collectVars(const AlgebraContext &Ctx, TermId Term,
                 std::unordered_set<VarId> &Out) {
  const TermNode &Node = Ctx.node(Term);
  if (Node.Kind == TermKind::Var) {
    Out.insert(Node.Var);
    return;
  }
  for (TermId Child : Ctx.children(Term))
    collectVars(Ctx, Child, Out);
}

} // namespace

TEST_F(UnifyTest, MguUnifiesBothSides) {
  // ADD(q, i) =? ADD(NEW, 'a): bind q -> NEW, i -> 'a.
  TermId Q = var("q", Queue);
  TermId I = var("i", Item);
  TermId Pat = Ctx.makeOp(Add, {Q, I});
  TermId Ground =
      Ctx.makeOp(Add, {Ctx.makeOp(New, {}), Ctx.makeAtom("a", Item)});
  auto Mgu = unifyTerms(Ctx, Pat, Ground);
  ASSERT_TRUE(Mgu.has_value());
  EXPECT_EQ(applySubstitution(Ctx, Pat, *Mgu), Ground);
  EXPECT_EQ(applySubstitution(Ctx, Ground, *Mgu), Ground);
}

TEST_F(UnifyTest, MguIsIdempotent) {
  // ADD(q1, i1) =? ADD(ADD(q2, i2), i2): the unifier chains bindings
  // (q1 through q2's term), so idempotence — applying it once resolves
  // everything — is the property that actually needs testing.
  TermId Q1 = var("q1", Queue);
  TermId I1 = var("i1", Item);
  TermId Q2 = var("q2", Queue);
  TermId I2 = var("i2", Item);
  TermId A = Ctx.makeOp(Add, {Q1, I1});
  TermId B = Ctx.makeOp(Add, {Ctx.makeOp(Add, {Q2, I2}), I2});
  auto Mgu = unifyTerms(Ctx, A, B);
  ASSERT_TRUE(Mgu.has_value());
  TermId Once = applySubstitution(Ctx, A, *Mgu);
  EXPECT_EQ(applySubstitution(Ctx, Once, *Mgu), Once);
  EXPECT_EQ(Once, applySubstitution(Ctx, B, *Mgu));
}

TEST_F(UnifyTest, SharedVariableAcrossBothTerms) {
  // ADD(q, i) =? ADD(q, 'a): q unifies with itself, i binds to 'a.
  TermId Q = var("q", Queue);
  TermId I = var("i", Item);
  TermId A = Ctx.makeOp(Add, {Q, I});
  TermId B = Ctx.makeOp(Add, {Q, Ctx.makeAtom("a", Item)});
  auto Mgu = unifyTerms(Ctx, A, B);
  ASSERT_TRUE(Mgu.has_value());
  EXPECT_EQ(applySubstitution(Ctx, A, *Mgu),
            applySubstitution(Ctx, B, *Mgu));
}

TEST_F(UnifyTest, OccursCheckRejectsCyclicBinding) {
  // q =? ADD(q, i) has no finite unifier.
  TermId Q = var("q", Queue);
  TermId Cyclic = Ctx.makeOp(Add, {Q, var("i", Item)});
  EXPECT_FALSE(unifyTerms(Ctx, Q, Cyclic).has_value());
  EXPECT_FALSE(unifyTerms(Ctx, Cyclic, Q).has_value());
}

TEST_F(UnifyTest, OccursCheckRejectsDeepCycle) {
  // q =? ADD(ADD(q, i1), i2): the cycle sits two constructors down.
  TermId Q = var("q", Queue);
  TermId Deep = Ctx.makeOp(
      Add, {Ctx.makeOp(Add, {Q, var("i1", Item)}), var("i2", Item)});
  EXPECT_FALSE(unifyTerms(Ctx, Q, Deep).has_value());
  EXPECT_FALSE(unifyTerms(Ctx, Deep, Q).has_value());
}

TEST_F(UnifyTest, ClashIsSymmetric) {
  // NEW and ADD(NEW, 'a) clash at the root in either order; so do two
  // distinct atoms.
  TermId Empty = Ctx.makeOp(New, {});
  TermId One =
      Ctx.makeOp(Add, {Ctx.makeOp(New, {}), Ctx.makeAtom("a", Item)});
  EXPECT_FALSE(unifyTerms(Ctx, Empty, One).has_value());
  EXPECT_FALSE(unifyTerms(Ctx, One, Empty).has_value());
  TermId AtomA = Ctx.makeAtom("a", Item);
  TermId AtomB = Ctx.makeAtom("b", Item);
  EXPECT_FALSE(unifyTerms(Ctx, AtomA, AtomB).has_value());
  EXPECT_FALSE(unifyTerms(Ctx, AtomB, AtomA).has_value());
}

TEST_F(UnifyTest, UnifiabilityIsSymmetric) {
  // unify(a, b) succeeds iff unify(b, a) does, over a mixed batch of
  // term pairs (some unifiable, some not).
  TermId Q = var("q", Queue);
  TermId I = var("i", Item);
  TermId Pairs[][2] = {
      {Ctx.makeOp(Add, {Q, I}), Ctx.makeOp(Add, {Ctx.makeOp(New, {}), I})},
      {Ctx.makeOp(Front, {Q}), Ctx.makeOp(Front, {Ctx.makeOp(New, {})})},
      {Ctx.makeOp(New, {}), Ctx.makeOp(New, {})},
      {Q, Ctx.makeOp(Add, {Q, I})},
      {Ctx.makeAtom("a", Item), Ctx.makeAtom("b", Item)},
  };
  for (const auto &Pair : Pairs) {
    auto Forward = unifyTerms(Ctx, Pair[0], Pair[1]);
    auto Backward = unifyTerms(Ctx, Pair[1], Pair[0]);
    EXPECT_EQ(Forward.has_value(), Backward.has_value())
        << printTerm(Ctx, Pair[0]) << " vs " << printTerm(Ctx, Pair[1]);
    // When both succeed they agree on the unified term.
    if (Forward && Backward)
      EXPECT_EQ(applySubstitution(Ctx, Pair[0], *Forward),
                applySubstitution(Ctx, Pair[0], *Backward));
  }
}

TEST_F(UnifyTest, RenameVarsApartIsFreshEveryInvocation) {
  TermId Q = var("q", Queue);
  TermId I = var("i", Item);
  TermId Term = Ctx.makeOp(Add, {Q, I});

  std::unordered_set<VarId> Original;
  collectVars(Ctx, Term, Original);

  // Each invocation must mint variables disjoint from the input AND from
  // every earlier invocation — the critical-pair loop renames the same
  // rule once per partner.
  std::unordered_set<VarId> SeenFresh;
  for (int Round = 0; Round != 3; ++Round) {
    TermId Renamed = renameVarsApart(Ctx, Term);
    std::unordered_set<VarId> Fresh;
    collectVars(Ctx, Renamed, Fresh);
    EXPECT_EQ(Fresh.size(), Original.size());
    for (VarId V : Fresh) {
      EXPECT_EQ(Original.count(V), 0u) << "round " << Round;
      EXPECT_TRUE(SeenFresh.insert(V).second)
          << "variable reused across invocations in round " << Round;
    }
    // Renaming preserves structure: same sorts at the same positions.
    EXPECT_EQ(Ctx.sortOf(Renamed), Ctx.sortOf(Term));
  }
}

TEST_F(UnifyTest, RenameRuleApartKeepsSidesConsistent) {
  // FRONT(ADD(q, i)) = i: the rule's shared variable i must map to the
  // same fresh variable on both sides, and q/i must not collide.
  TermId Q = var("q", Queue);
  TermId I = var("i", Item);
  TermId Lhs = Ctx.makeOp(Front, {Ctx.makeOp(Add, {Q, I})});
  TermId Rhs = I;

  std::unordered_set<VarId> SeenFresh;
  for (int Round = 0; Round != 3; ++Round) {
    auto [NewLhs, NewRhs] = renameRuleApart(Ctx, Lhs, Rhs);
    // The renamed rule unifies with the original pattern-wise, and the
    // renamed Rhs is exactly the fresh image of i.
    const TermNode &RhsNode = Ctx.node(NewRhs);
    ASSERT_EQ(RhsNode.Kind, TermKind::Var);
    EXPECT_NE(RhsNode.Var, Ctx.node(Rhs).Var);

    std::unordered_set<VarId> Fresh;
    collectVars(Ctx, NewLhs, Fresh);
    EXPECT_EQ(Fresh.size(), 2u);
    // The shared variable appears in the Lhs image too.
    EXPECT_EQ(Fresh.count(RhsNode.Var), 1u);
    for (VarId V : Fresh)
      EXPECT_TRUE(SeenFresh.insert(V).second)
          << "variable reused across invocations in round " << Round;
  }
}

TEST_F(UnifyTest, RenamedCopiesOfOneRuleUnify) {
  // Two fresh copies of the same Lhs still unify with each other (they
  // are equal up to renaming), and the unified instance matches the
  // original pattern.
  TermId Q = var("q", Queue);
  TermId I = var("i", Item);
  TermId Lhs = Ctx.makeOp(Front, {Ctx.makeOp(Add, {Q, I})});
  TermId CopyA = renameVarsApart(Ctx, Lhs);
  TermId CopyB = renameVarsApart(Ctx, Lhs);
  EXPECT_NE(CopyA, CopyB); // Distinct variables, distinct terms.
  auto Mgu = unifyTerms(Ctx, CopyA, CopyB);
  ASSERT_TRUE(Mgu.has_value());
  EXPECT_EQ(applySubstitution(Ctx, CopyA, *Mgu),
            applySubstitution(Ctx, CopyB, *Mgu));
}
