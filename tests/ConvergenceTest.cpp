//===----------------------------------------------------------------------===//
//
// Part of AlgSpec. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the convergence certifier (check/Convergence.h): verdicts
/// over the builtin specs, critical-pair enumeration and joinability,
/// guard case analysis, join certificates, the consistency upgrade, the
/// RepVerifier decidable-equality shortcut, and byte-identity of the
/// reports across job counts.
///
//===----------------------------------------------------------------------===//

#include "core/AlgSpec.h"
#include "server/Commands.h"

#include <gtest/gtest.h>

using namespace algspec;

namespace {

/// Loads \p Text into a fresh workspace, asserting parse success.
void load(Workspace &WS, std::string_view Text,
          const char *Name = "<test>") {
  Result<void> R = WS.load(Text, Name);
  ASSERT_TRUE(static_cast<bool>(R)) << R.error().message();
}

/// Convergent but not orthogonal: the first two axioms overlap at the
/// root (F(A) unifies with F(x)), and the reducts A and G(A) join via
/// the third axiom.
constexpr std::string_view OverlapAlg = R"(
spec Overlap
  sorts S
  ops
    A : -> S
    F : S -> S
    G : S -> S
  constructors A
  vars x : S
  axioms
    F(A) = A
    F(x) = G(x)
    G(A) = A
end
)";

/// The two reducts differ only in the argument order of an undecided
/// SAME guard, so the join needs case analysis: under SAME(x, y) = true,
/// false, and error the sides coincide.
constexpr std::string_view CaseJoinAlg = R"(
spec CaseJoin
  uses Key
  sorts S
  ops
    MK : -> S
    CHOOSE : Key, Key -> Key
  constructors MK
  vars x, y : Key
  axioms
    CHOOSE(x, y) = if SAME(x, y) then x else y
    CHOOSE(x, y) = if SAME(y, x) then x else y
end
)";

/// Genuinely non-confluent: PICK rewrites to two distinct constructors.
constexpr std::string_view ChoiceAlg = R"(
spec Choice
  sorts Pick
  ops
    RED : -> Pick
    BLUE : -> Pick
    PICK : -> Pick
  constructors RED, BLUE
  axioms
    PICK = RED
    PICK = BLUE
end
)";

/// Non-left-linear: DUP? repeats i on its left-hand side.
constexpr std::string_view DuplicateAlg = R"(
spec Duplicate
  uses Item
  sorts Dict
  ops
    MKD : -> Dict
    PUT : Dict, Item -> Dict
    DUP? : Dict -> Bool
  constructors MKD, PUT
  vars d : Dict
       i : Item
  axioms
    DUP?(PUT(PUT(d, i), i)) = true
    DUP?(MKD) = false
end
)";

} // namespace

//===----------------------------------------------------------------------===//
// Builtin specs
//===----------------------------------------------------------------------===//

TEST(ConvergenceBuiltins, QueueIsOrthogonal) {
  Workspace WS;
  load(WS, server::builtinSpecText("queue"), "queue.alg");
  ConvergenceReport Report = WS.convergence();
  EXPECT_EQ(Report.Overall, ConvergenceVerdict::Orthogonal);
  EXPECT_TRUE(Report.provenConfluent());
  ASSERT_NE(Report.specVerdict("Queue"), nullptr);
  EXPECT_EQ(Report.specVerdict("Queue")->Verdict,
            ConvergenceVerdict::Orthogonal);
  EXPECT_TRUE(Report.specVerdict("Queue")->LeftLinear);
  EXPECT_TRUE(Report.specVerdict("Queue")->TerminationProved);
  EXPECT_EQ(Report.specVerdict("Queue")->PairsExamined, 0u);
  EXPECT_TRUE(Report.Obstruction.empty());
}

TEST(ConvergenceBuiltins, OrthogonalFamily) {
  // Every self-contained builtin whose recursion is structural gets the
  // strongest verdict.
  for (const char *Name : {"queue", "symboltable", "stackarray", "knowlist",
                           "nat", "set", "list", "bag", "bst",
                           "boundedqueue"}) {
    Workspace WS;
    load(WS, server::builtinSpecText(Name), Name);
    ConvergenceReport Report = WS.convergence();
    EXPECT_EQ(Report.Overall, ConvergenceVerdict::Orthogonal) << Name;
  }
}

TEST(ConvergenceBuiltins, TableStaysUnknownNamingTermination) {
  // SELECT_VAL recurses through DELETE_ROW, which RPO cannot orient; the
  // verdict must stay honest and name that exact obstruction, even
  // though Table's rules never overlap.
  Workspace WS;
  load(WS, server::builtinSpecText("table"), "table.alg");
  ConvergenceReport Report = WS.convergence();
  EXPECT_EQ(Report.Overall, ConvergenceVerdict::Unknown);
  EXPECT_FALSE(Report.provenConfluent());
  EXPECT_NE(Report.Obstruction.find("termination"), std::string::npos)
      << Report.Obstruction;
  EXPECT_NE(Report.Obstruction.find("SELECT_VAL"), std::string::npos)
      << Report.Obstruction;
}

TEST(ConvergenceBuiltins, SymboltableImplStaysUnknown) {
  // RETRIEVE_R recurses through POP under a guard: no silent downgrade
  // to a confluence claim. The sibling specs keep their own verdicts.
  Workspace WS;
  load(WS, server::builtinSpecText("symboltable"), "symboltable.alg");
  load(WS, server::builtinSpecText("stackarray"), "stackarray.alg");
  load(WS, server::builtinSpecText("symboltable_impl"),
       "symboltable_impl.alg");
  ConvergenceReport Report = WS.convergence();
  EXPECT_EQ(Report.Overall, ConvergenceVerdict::Unknown);
  ASSERT_NE(Report.specVerdict("SymboltableImpl"), nullptr);
  EXPECT_EQ(Report.specVerdict("SymboltableImpl")->Verdict,
            ConvergenceVerdict::Unknown);
  EXPECT_NE(
      Report.specVerdict("SymboltableImpl")->Obstruction.find("RETRIEVE_R"),
      std::string::npos);
  // Specs whose rule closure avoids the unproved recursion stay proved.
  ASSERT_NE(Report.specVerdict("Symboltable"), nullptr);
  EXPECT_EQ(Report.specVerdict("Symboltable")->Verdict,
            ConvergenceVerdict::Orthogonal);
}

//===----------------------------------------------------------------------===//
// Critical pairs and certificates
//===----------------------------------------------------------------------===//

TEST(ConvergencePairs, OverlapIsConvergentWithCertificate) {
  Workspace WS;
  load(WS, OverlapAlg);
  ConvergenceReport Report = WS.convergence();
  EXPECT_EQ(Report.Overall, ConvergenceVerdict::Convergent);
  ASSERT_EQ(Report.Pairs.size(), 1u);
  const CriticalPair &Pair = Report.Pairs[0];
  EXPECT_EQ(Pair.Status, PairStatus::Joined);
  EXPECT_EQ(Pair.NormA, Pair.NormB);
  EXPECT_EQ(Pair.CaseSplits, 0u);
  EXPECT_EQ(printTerm(WS.context(), Pair.Peak), "F(A)");

  // The join certificate replays: each trace is a chain from the reduct
  // to the common normal form, every step naming an axiom.
  auto checkTrace = [&](const std::vector<JoinStep> &Trace, TermId Reduct) {
    TermId At = Reduct;
    for (const JoinStep &Step : Trace) {
      EXPECT_EQ(Step.Before, At);
      EXPECT_EQ(Step.SpecName, "Overlap");
      EXPECT_GE(Step.AxiomNumber, 1u);
      At = Step.After;
    }
    EXPECT_EQ(At, Pair.NormA);
  };
  checkTrace(Pair.TraceA, Pair.ReductA);
  checkTrace(Pair.TraceB, Pair.ReductB);
  // One reduct (G(A)) genuinely needs a rewrite step to reach A.
  EXPECT_GE(Pair.TraceA.size() + Pair.TraceB.size(), 1u);
}

TEST(ConvergencePairs, GuardCaseAnalysisJoins) {
  Workspace WS;
  load(WS, CaseJoinAlg);
  ConvergenceReport Report = WS.convergence();
  EXPECT_EQ(Report.Overall, ConvergenceVerdict::Convergent);
  ASSERT_EQ(Report.Pairs.size(), 1u);
  EXPECT_EQ(Report.Pairs[0].Status, PairStatus::JoinedByCases);
  EXPECT_GE(Report.Pairs[0].CaseSplits, 1u);
  ASSERT_NE(Report.specVerdict("CaseJoin"), nullptr);
  EXPECT_EQ(Report.specVerdict("CaseJoin")->PairsByCases, 1u);
  // The case-analysis caveat is announced, not buried.
  bool Caveated = false;
  for (const std::string &Caveat : Report.Caveats)
    Caveated |= Caveat.find("denotes a value") != std::string::npos;
  EXPECT_TRUE(Caveated);
}

TEST(ConvergencePairs, UnjoinablePairBlocksTheVerdict) {
  Workspace WS;
  load(WS, ChoiceAlg);
  ConvergenceReport Report = WS.convergence();
  EXPECT_EQ(Report.Overall, ConvergenceVerdict::Unknown);
  ASSERT_EQ(Report.Pairs.size(), 1u);
  EXPECT_EQ(Report.Pairs[0].Status, PairStatus::Unjoinable);
  EXPECT_NE(Report.Obstruction.find("unjoinable"), std::string::npos)
      << Report.Obstruction;
  // Certifier and ground refutation agree: the consistency checker
  // finds the same contradiction the unjoinable pair witnesses.
  ConsistencyReport Consistency = WS.checkConsistent();
  EXPECT_FALSE(Consistency.Consistent);
}

TEST(ConvergencePairs, NonLeftLinearRuleIsTheObstruction) {
  Workspace WS;
  load(WS, DuplicateAlg);
  ConvergenceReport Report = WS.convergence();
  EXPECT_EQ(Report.Overall, ConvergenceVerdict::Unknown);
  ASSERT_EQ(Report.NonLeftLinear.size(), 1u);
  EXPECT_EQ(Report.NonLeftLinear[0].SpecName, "Duplicate");
  EXPECT_EQ(Report.NonLeftLinear[0].Variable, "i");
  EXPECT_NE(Report.Obstruction.find("repeats variable"), std::string::npos)
      << Report.Obstruction;
  ASSERT_NE(Report.specVerdict("Duplicate"), nullptr);
  EXPECT_FALSE(Report.specVerdict("Duplicate")->LeftLinear);
}

//===----------------------------------------------------------------------===//
// Consistency upgrade
//===----------------------------------------------------------------------===//

TEST(ConvergenceConsistency, CertificateUpgradesCleanReport) {
  Workspace WS;
  load(WS, server::builtinSpecText("queue"), "queue.alg");
  ConsistencyReport Report = WS.checkConsistent();
  EXPECT_TRUE(Report.Consistent);
  EXPECT_FALSE(Report.ProvenBy.empty());
  std::string Rendered = Report.render(WS.context());
  EXPECT_NE(Rendered.find("proven consistent"), std::string::npos)
      << Rendered;
  // The sweep was skipped: no engine work happened.
  EXPECT_EQ(Report.Engine.Steps, 0u);
}

TEST(ConvergenceConsistency, UncertifiedSpecStillSweeps) {
  Workspace WS;
  load(WS, server::builtinSpecText("table"), "table.alg");
  ConsistencyReport Report = WS.checkConsistent();
  EXPECT_TRUE(Report.Consistent);
  EXPECT_TRUE(Report.ProvenBy.empty());
  std::string Rendered = Report.render(WS.context());
  EXPECT_NE(Rendered.find("No contradictions found"), std::string::npos)
      << Rendered;
}

//===----------------------------------------------------------------------===//
// RepVerifier decidable equality
//===----------------------------------------------------------------------===//

namespace {

/// A convergent representation fixture: abstract switches (OFF, FLIP,
/// LIT?) implemented by tick counters (ZERO, TICK) with PHI translating
/// ticks back into flips.
constexpr std::string_view SwitchAlg = R"(
spec Switch
  sorts Sw
  ops
    OFF : -> Sw
    FLIP : Sw -> Sw
    LIT? : Sw -> Bool
  constructors OFF, FLIP
  vars s : Sw
  axioms
    LIT?(OFF) = false
    LIT?(FLIP(s)) = not(LIT?(s))
end

spec Counter
  sorts Cnt
  ops
    ZERO : -> Cnt
    TICK : Cnt -> Cnt
    OFF_R : -> Cnt
    FLIP_R : Cnt -> Cnt
    LIT_R? : Cnt -> Bool
  constructors ZERO, TICK
  vars c : Cnt
  axioms
    OFF_R = ZERO
    FLIP_R(c) = TICK(c)
    LIT_R?(ZERO) = false
    LIT_R?(TICK(c)) = not(LIT_R?(c))
end

spec Abstraction
  uses Sw, Cnt
  ops
    PHI : Cnt -> Sw
  vars c : Cnt
  axioms
    PHI(ZERO) = OFF
    PHI(TICK(c)) = FLIP(PHI(c))
end
)";

RepMapping switchMapping(Workspace &WS) {
  RepMapping Mapping;
  Mapping.AbstractSort = WS.context().lookupSort("Sw");
  Mapping.RepSort = WS.context().lookupSort("Cnt");
  Mapping.Phi = WS.context().lookupOp("PHI");
  Mapping.OpMap.emplace(WS.context().lookupOp("OFF"),
                        WS.context().lookupOp("OFF_R"));
  Mapping.OpMap.emplace(WS.context().lookupOp("FLIP"),
                        WS.context().lookupOp("FLIP_R"));
  Mapping.OpMap.emplace(WS.context().lookupOp("LIT?"),
                        WS.context().lookupOp("LIT_R?"));
  return Mapping;
}

} // namespace

TEST(ConvergenceVerify, ConvergentRepClaimsDecidableEquality) {
  Workspace WS;
  load(WS, SwitchAlg, "switch.alg");
  const Spec *Abstract = WS.find("Switch");
  ASSERT_NE(Abstract, nullptr);

  VerifyOptions Options;
  VerifyReport Report = verifyRepresentation(
      WS.context(), *Abstract, WS.specPointers(), switchMapping(WS),
      Options);
  EXPECT_TRUE(Report.AllHold);
  EXPECT_TRUE(Report.DecidableEquality);
  EXPECT_NE(Report.render(WS.context()).find("decidable equality"),
            std::string::npos);

  // The ablation switch restores the old behaviour.
  Options.UseConvergence = false;
  VerifyReport Plain = verifyRepresentation(
      WS.context(), *Abstract, WS.specPointers(), switchMapping(WS),
      Options);
  EXPECT_TRUE(Plain.AllHold);
  EXPECT_FALSE(Plain.DecidableEquality);
  // Both configurations agree verdict-for-verdict.
  ASSERT_EQ(Report.Verdicts.size(), Plain.Verdicts.size());
  for (size_t I = 0; I != Report.Verdicts.size(); ++I)
    EXPECT_EQ(Report.Verdicts[I].Holds, Plain.Verdicts[I].Holds);
}

TEST(ConvergenceVerify, SymboltableRepStaysConditional) {
  // The paper's representation keeps its exact prior status: RETRIEVE_R
  // blocks the certificate, so no decidable-equality claim appears.
  Workspace WS;
  load(WS, server::builtinSpecText("symboltable"), "symboltable.alg");
  load(WS, server::builtinSpecText("stackarray"), "stackarray.alg");
  auto Rep = buildSymboltableRep(WS.context());
  ASSERT_TRUE(static_cast<bool>(Rep)) << Rep.error().message();
  std::vector<const Spec *> Sources = WS.specPointers();
  for (const Spec &S : Rep->ImplSpecs)
    Sources.push_back(&S);
  const Spec *Abstract = WS.find("Symboltable");
  ASSERT_NE(Abstract, nullptr);
  VerifyOptions Options;
  Options.Depth = 3;
  VerifyReport Report = verifyRepresentation(
      WS.context(), *Abstract, Sources, Rep->Mapping, Options);
  EXPECT_TRUE(Report.AllHold);
  EXPECT_FALSE(Report.DecidableEquality);
}

//===----------------------------------------------------------------------===//
// Determinism across job counts
//===----------------------------------------------------------------------===//

namespace {

server::CommandResult runCheck(const char *Builtin, unsigned Jobs) {
  server::CommandRequest Request;
  Request.Command = "check";
  Request.Sources.push_back(
      {std::string(Builtin) + ".alg",
       std::string(server::builtinSpecText(Builtin))});
  Request.Opts.Jobs = Jobs;
  return server::runCommand(Request);
}

} // namespace

TEST(ConvergenceDeterminism, CheckOutputByteIdenticalAcrossJobs) {
  // Both the certified path (queue: sweep skipped) and the uncertified
  // path (table: full sweep) must render byte-identically at any job
  // count — the certifier itself is serial by construction.
  for (const char *Builtin : {"queue", "table"}) {
    server::CommandResult Serial = runCheck(Builtin, 1);
    server::CommandResult Parallel = runCheck(Builtin, 4);
    EXPECT_EQ(Serial.Out, Parallel.Out) << Builtin;
    EXPECT_EQ(Serial.ExitCode, Parallel.ExitCode) << Builtin;
  }
}

TEST(ConvergenceDeterminism, RepeatedCertificationIsStable) {
  Workspace WS;
  load(WS, OverlapAlg);
  ConvergenceReport First = WS.convergence();
  ConvergenceReport Second = WS.convergence();
  EXPECT_EQ(First.render(WS.context()), Second.render(WS.context()));
}
