//===----------------------------------------------------------------------===//
//
// Part of AlgSpec. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Unit tests for the concrete ADT library: Queue, BoundedQueue (the Φ⁻¹
/// one-to-many demonstration), Stack, HashArray, the three SymbolTable
/// representations, KnowsList, and KnowsSymbolTable.
///
//===----------------------------------------------------------------------===//

#include "adt/BoundedQueue.h"
#include "adt/FlatSymbolTable.h"
#include "adt/HashArray.h"
#include "adt/KnowsList.h"
#include "adt/KnowsSymbolTable.h"
#include "adt/ListSymbolTable.h"
#include "adt/PriorityQueue.h"
#include "adt/Queue.h"
#include "adt/Stack.h"
#include "adt/Table.h"
#include "adt/SymbolTable.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

using namespace algspec::adt;

//===----------------------------------------------------------------------===//
// Queue
//===----------------------------------------------------------------------===//

TEST(QueueTest, NewQueueIsEmpty) {
  Queue<int> Q;
  EXPECT_TRUE(Q.isEmpty());
  EXPECT_EQ(Q.size(), 0u);
  EXPECT_FALSE(Q.front().has_value());
  EXPECT_FALSE(Q.remove());
}

TEST(QueueTest, FifoOrder) {
  Queue<int> Q;
  Q.add(1);
  Q.add(2);
  Q.add(3);
  EXPECT_EQ(Q.front(), 1);
  EXPECT_TRUE(Q.remove());
  EXPECT_EQ(Q.front(), 2);
  EXPECT_TRUE(Q.remove());
  EXPECT_EQ(Q.front(), 3);
  EXPECT_TRUE(Q.remove());
  EXPECT_TRUE(Q.isEmpty());
}

TEST(QueueTest, DeepCopySemantics) {
  Queue<std::string> A;
  A.add("x");
  Queue<std::string> B = A;
  B.add("y");
  EXPECT_EQ(A.size(), 1u);
  EXPECT_EQ(B.size(), 2u);
  A.remove();
  EXPECT_EQ(B.front(), "x");
}

TEST(QueueTest, CopyAssignmentReplaces) {
  Queue<int> A, B;
  A.add(1);
  B.add(9);
  B.add(8);
  B = A;
  EXPECT_EQ(B.size(), 1u);
  EXPECT_EQ(B.front(), 1);
}

TEST(QueueTest, MoveSemantics) {
  Queue<int> A;
  A.add(7);
  Queue<int> B = std::move(A);
  EXPECT_EQ(B.front(), 7);
  EXPECT_TRUE(A.isEmpty()); // NOLINT: moved-from is valid-empty here.
}

TEST(QueueTest, EqualityIsAbstract) {
  Queue<int> A, B;
  for (int I : {1, 2, 3})
    A.add(I);
  B.add(0);
  B.add(1);
  B.remove(); // B went through a different history.
  B.add(2);
  B.add(3);
  EXPECT_EQ(A, B);
  B.add(4);
  EXPECT_FALSE(A == B);
}

TEST(QueueTest, InterleavedAddRemoveStress) {
  Queue<int> Q;
  int NextIn = 0, NextOut = 0;
  for (int Round = 0; Round < 1000; ++Round) {
    Q.add(NextIn++);
    if (Round % 3 == 0) {
      ASSERT_EQ(Q.front(), NextOut);
      Q.remove();
      ++NextOut;
    }
  }
  while (!Q.isEmpty()) {
    ASSERT_EQ(Q.front(), NextOut++);
    Q.remove();
  }
  EXPECT_EQ(NextOut, NextIn);
}

//===----------------------------------------------------------------------===//
// BoundedQueue: the ring-buffer Φ example
//===----------------------------------------------------------------------===//

TEST(BoundedQueueTest, CapacityEnforced) {
  BoundedQueue<char> Q; // Paper's maximum length of three.
  EXPECT_TRUE(Q.add('a'));
  EXPECT_TRUE(Q.add('b'));
  EXPECT_TRUE(Q.add('c'));
  EXPECT_TRUE(Q.isFull());
  EXPECT_FALSE(Q.add('d')); // The algebra's error.
  EXPECT_EQ(Q.size(), 3u);
}

TEST(BoundedQueueTest, WrapAround) {
  BoundedQueue<int> Q;
  Q.add(1);
  Q.add(2);
  Q.add(3);
  Q.remove();
  EXPECT_TRUE(Q.add(4)); // Physically wraps into slot 0.
  EXPECT_EQ(Q.front(), 2);
  Q.remove();
  EXPECT_EQ(Q.front(), 3);
  Q.remove();
  EXPECT_EQ(Q.front(), 4);
}

TEST(BoundedQueueTest, PhiInverseIsOneToMany) {
  // The paper's two program segments: both denote the abstract queue
  // containing (second, third, fourth additions), but the buffers differ
  // physically.
  BoundedQueue<char> X;
  X.add('A');
  X.add('B');
  X.add('C');
  X.remove();
  X.add('D'); // Buffer: [D][B][C], first = 1.

  BoundedQueue<char> Y;
  Y.add('B');
  Y.add('C');
  Y.add('D'); // Buffer: [B][C][D], first = 0.

  // Same abstract value (Φ(X) == Φ(Y))...
  EXPECT_EQ(X, Y);
  // ...different representations: Φ⁻¹ is one-to-many.
  EXPECT_NE(X.rawFirst(), Y.rawFirst());
  EXPECT_NE(X.rawSlot(0), Y.rawSlot(0));
}

TEST(BoundedQueueTest, EmptyBoundaries) {
  BoundedQueue<int> Q;
  EXPECT_TRUE(Q.isEmpty());
  EXPECT_FALSE(Q.remove());
  EXPECT_FALSE(Q.front().has_value());
}

TEST(BoundedQueueTest, OtherCapacities) {
  BoundedQueue<int, 1> Tiny;
  EXPECT_TRUE(Tiny.add(1));
  EXPECT_FALSE(Tiny.add(2));
  Tiny.remove();
  EXPECT_TRUE(Tiny.add(2));
  EXPECT_EQ(Tiny.front(), 2);
}

//===----------------------------------------------------------------------===//
// Stack
//===----------------------------------------------------------------------===//

TEST(StackTest, LifoOrder) {
  Stack<int> S;
  EXPECT_TRUE(S.isEmpty());
  S.push(1);
  S.push(2);
  EXPECT_EQ(S.top(), 2);
  EXPECT_TRUE(S.pop());
  EXPECT_EQ(S.top(), 1);
}

TEST(StackTest, EmptyBoundaries) {
  Stack<int> S;
  EXPECT_FALSE(S.pop());
  EXPECT_FALSE(S.top().has_value());
  EXPECT_FALSE(S.replace(9));
  EXPECT_EQ(S.topMutable(), nullptr);
}

TEST(StackTest, ReplaceSwapsTop) {
  Stack<std::string> S;
  S.push("block1");
  S.push("block2");
  EXPECT_TRUE(S.replace("patched"));
  EXPECT_EQ(S.top(), "patched");
  S.pop();
  EXPECT_EQ(S.top(), "block1"); // Lower frames untouched.
}

TEST(StackTest, DeepCopyPreservesOrder) {
  Stack<int> A;
  for (int I : {1, 2, 3})
    A.push(I);
  Stack<int> B = A;
  A.pop();
  EXPECT_EQ(B.size(), 3u);
  EXPECT_EQ(B.top(), 3);
  B.pop();
  EXPECT_EQ(B.top(), 2);
  B.pop();
  EXPECT_EQ(B.top(), 1);
}

TEST(StackTest, IterationTopDown) {
  Stack<int> S;
  S.push(1);
  S.push(2);
  S.push(3);
  std::vector<int> Seen;
  for (int V : S)
    Seen.push_back(V);
  EXPECT_EQ(Seen, (std::vector<int>{3, 2, 1}));
}

TEST(StackTest, Equality) {
  Stack<int> A, B;
  A.push(1);
  B.push(1);
  EXPECT_EQ(A, B);
  B.push(2);
  EXPECT_FALSE(A == B);
}

//===----------------------------------------------------------------------===//
// HashArray
//===----------------------------------------------------------------------===//

TEST(HashArrayTest, UndefinedByDefault) {
  HashArray<int> A;
  EXPECT_TRUE(A.isUndefined("x"));
  EXPECT_FALSE(A.read("x").has_value());
  EXPECT_EQ(A.entryCount(), 0u);
}

TEST(HashArrayTest, AssignAndRead) {
  HashArray<std::string> A;
  A.assign("x", "int");
  EXPECT_FALSE(A.isUndefined("x"));
  EXPECT_EQ(A.read("x"), "int");
  EXPECT_TRUE(A.isUndefined("y"));
}

TEST(HashArrayTest, NewestAssignmentShadows) {
  // Axiom 20: READ(ASSIGN(arr, id, attrs), id) = attrs — the *latest*.
  HashArray<int> A;
  A.assign("x", 1);
  A.assign("x", 2);
  EXPECT_EQ(A.read("x"), 2);
  EXPECT_EQ(A.entryCount(), 2u); // History kept, not overwritten.
}

TEST(HashArrayTest, SingleBucketForcesCollisions) {
  HashArray<int> A(1); // Every identifier collides.
  A.assign("a", 1);
  A.assign("b", 2);
  A.assign("c", 3);
  EXPECT_EQ(A.read("a"), 1);
  EXPECT_EQ(A.read("b"), 2);
  EXPECT_EQ(A.read("c"), 3);
  EXPECT_TRUE(A.isUndefined("d"));
}

TEST(HashArrayTest, DeepCopyKeepsShadowingOrder) {
  HashArray<int> A(1);
  A.assign("x", 1);
  A.assign("y", 5);
  A.assign("x", 2);
  HashArray<int> B = A;
  A.assign("x", 3);
  EXPECT_EQ(B.read("x"), 2);
  EXPECT_EQ(B.read("y"), 5);
  EXPECT_EQ(B.entryCount(), 3u);
}

TEST(HashArrayTest, ForEachVisibleSkipsShadowed) {
  HashArray<int> A(2);
  A.assign("x", 1);
  A.assign("x", 2);
  A.assign("y", 7);
  int Sum = 0, Count = 0;
  A.forEachVisible([&](std::string_view, const int &V) {
    Sum += V;
    ++Count;
  });
  EXPECT_EQ(Count, 2);
  EXPECT_EQ(Sum, 9); // 2 (visible x) + 7 (y).
}

TEST(HashArrayTest, ManyIdentifiers) {
  HashArray<int> A(16);
  for (int I = 0; I < 500; ++I)
    A.assign("id" + std::to_string(I), I);
  for (int I = 0; I < 500; ++I)
    ASSERT_EQ(A.read("id" + std::to_string(I)), I);
}

//===----------------------------------------------------------------------===//
// SymbolTable (stack of hash arrays) — shared behaviour of all three
// representations, run as typed tests.
//===----------------------------------------------------------------------===//

template <typename Table> class SymbolTableLike : public ::testing::Test {};

using TableTypes =
    ::testing::Types<SymbolTable<std::string>, ListSymbolTable<std::string>,
                     FlatSymbolTable<std::string>>;
TYPED_TEST_SUITE(SymbolTableLike, TableTypes);

TYPED_TEST(SymbolTableLike, FreshTableHasNoBindings) {
  TypeParam T;
  EXPECT_FALSE(T.retrieve("x").has_value());
  EXPECT_FALSE(T.isInBlock("x"));
  EXPECT_EQ(T.depth(), 1u);
}

TYPED_TEST(SymbolTableLike, LeaveOutermostIsError) {
  TypeParam T;
  EXPECT_FALSE(T.leaveBlock()); // LEAVEBLOCK(INIT) = error.
  T.enterBlock();
  EXPECT_TRUE(T.leaveBlock());
  EXPECT_FALSE(T.leaveBlock());
}

TYPED_TEST(SymbolTableLike, RetrieveFindsMostLocal) {
  TypeParam T;
  T.add("x", "outer");
  T.enterBlock();
  T.add("x", "inner");
  EXPECT_EQ(T.retrieve("x"), "inner");
  EXPECT_TRUE(T.leaveBlock());
  EXPECT_EQ(T.retrieve("x"), "outer");
}

TYPED_TEST(SymbolTableLike, IsInBlockIsScopeLocal) {
  TypeParam T;
  T.add("x", "outer");
  T.enterBlock();
  EXPECT_FALSE(T.isInBlock("x")); // Declared, but not in *this* block.
  EXPECT_TRUE(T.retrieve("x").has_value());
  T.add("y", "inner");
  EXPECT_TRUE(T.isInBlock("y"));
}

TYPED_TEST(SymbolTableLike, LeaveBlockDiscardsBindings) {
  TypeParam T;
  T.enterBlock();
  T.add("tmp", "t");
  EXPECT_TRUE(T.retrieve("tmp").has_value());
  T.leaveBlock();
  EXPECT_FALSE(T.retrieve("tmp").has_value());
}

TYPED_TEST(SymbolTableLike, DeepNestingShadowing) {
  TypeParam T;
  for (int Depth = 0; Depth < 20; ++Depth) {
    T.enterBlock();
    T.add("v", "level" + std::to_string(Depth));
  }
  EXPECT_EQ(T.retrieve("v"), "level19");
  for (int Depth = 19; Depth > 0; --Depth) {
    T.leaveBlock();
    EXPECT_EQ(T.retrieve("v"), "level" + std::to_string(Depth - 1));
  }
}

TYPED_TEST(SymbolTableLike, RedeclarationInSameBlockShadows) {
  TypeParam T;
  T.add("x", "first");
  T.add("x", "second");
  EXPECT_EQ(T.retrieve("x"), "second");
  EXPECT_TRUE(T.isInBlock("x"));
}

TYPED_TEST(SymbolTableLike, ManySymbolsAcrossScopes) {
  TypeParam T;
  for (int S = 0; S < 5; ++S) {
    T.enterBlock();
    for (int I = 0; I < 50; ++I)
      T.add("s" + std::to_string(S) + "_" + std::to_string(I),
            std::to_string(S * 100 + I));
  }
  EXPECT_EQ(T.retrieve("s0_0"), "0");
  EXPECT_EQ(T.retrieve("s4_49"), "449");
  T.leaveBlock();
  EXPECT_FALSE(T.retrieve("s4_49").has_value());
  EXPECT_EQ(T.retrieve("s3_10"), "310");
}

//===----------------------------------------------------------------------===//
// KnowsList and KnowsSymbolTable
//===----------------------------------------------------------------------===//

TEST(KnowsListTest, CreateAppendIsIn) {
  KnowsList K;
  EXPECT_FALSE(K.contains("x"));
  K.append("x");
  K.append("y");
  EXPECT_TRUE(K.contains("x"));
  EXPECT_TRUE(K.contains("y"));
  EXPECT_FALSE(K.contains("z"));
  EXPECT_EQ(K.size(), 2u);
}

TEST(KnowsSymbolTableTest, LocalDeclarationsAlwaysVisible) {
  KnowsSymbolTable<std::string> T;
  T.enterBlock(KnowsList()); // Knows nothing.
  T.add("local", "int");
  EXPECT_EQ(T.retrieve("local"), "int");
  EXPECT_TRUE(T.isInBlock("local"));
}

TEST(KnowsSymbolTableTest, InheritanceRequiresKnows) {
  KnowsSymbolTable<std::string> T;
  T.add("x", "int");
  T.add("y", "bool");

  KnowsList OnlyY;
  OnlyY.append("y");
  T.enterBlock(OnlyY);

  EXPECT_EQ(T.retrieve("y"), "bool");          // Known: visible.
  EXPECT_FALSE(T.retrieve("x").has_value());   // Unknown: hidden.
}

TEST(KnowsSymbolTableTest, EveryCrossedBoundaryMustKnow) {
  KnowsSymbolTable<std::string> T;
  T.add("g", "int");

  KnowsList KnowsG;
  KnowsG.append("g");
  T.enterBlock(KnowsG); // Middle block knows g.

  KnowsList Nothing;
  T.enterBlock(Nothing); // Inner block knows nothing.
  EXPECT_FALSE(T.retrieve("g").has_value());
  T.leaveBlock();
  EXPECT_EQ(T.retrieve("g"), "int");
}

TEST(KnowsSymbolTableTest, ShadowingStillWorks) {
  KnowsSymbolTable<std::string> T;
  T.add("x", "outer");
  KnowsList KnowsX;
  KnowsX.append("x");
  T.enterBlock(KnowsX);
  T.add("x", "inner");
  EXPECT_EQ(T.retrieve("x"), "inner");
  T.leaveBlock();
  EXPECT_EQ(T.retrieve("x"), "outer");
}

TEST(KnowsSymbolTableTest, LeaveOutermostIsError) {
  KnowsSymbolTable<int> T;
  EXPECT_FALSE(T.leaveBlock());
}

//===----------------------------------------------------------------------===//
// Table (the section-5 database characterization, E14)
//===----------------------------------------------------------------------===//

TEST(TableTest, InsertOverwritesPerKey) {
  Table<std::string> T;
  T.insertRow("k1", "red");
  T.insertRow("k1", "blue");
  EXPECT_EQ(T.rowCount(), 1u);
  EXPECT_EQ(T.lookup("k1"), "blue");
}

TEST(TableTest, DeleteRemovesOnlyItsKey) {
  Table<std::string> T;
  T.insertRow("a", "x");
  T.insertRow("b", "y");
  T.deleteRow("a");
  EXPECT_FALSE(T.hasRow("a"));
  EXPECT_EQ(T.lookup("b"), "y");
  T.deleteRow("missing"); // No-op, like the spec.
  EXPECT_EQ(T.rowCount(), 1u);
}

TEST(TableTest, SelectValFiltersByValue) {
  Table<std::string> T;
  T.insertRow("a", "red");
  T.insertRow("b", "blue");
  T.insertRow("c", "red");
  Table<std::string> Reds = T.selectVal("red");
  EXPECT_EQ(Reds.rowCount(), 2u);
  EXPECT_TRUE(Reds.hasRow("a"));
  EXPECT_TRUE(Reds.hasRow("c"));
  EXPECT_FALSE(Reds.hasRow("b"));
}

TEST(TableTest, EqualityIsObservational) {
  Table<int> A, B;
  A.insertRow("x", 1);
  A.insertRow("y", 2);
  B.insertRow("y", 2);
  B.insertRow("x", 0);
  B.insertRow("x", 1); // Different history, same visible rows.
  EXPECT_EQ(A, B);
  B.deleteRow("y");
  EXPECT_FALSE(A == B);
}

TEST(TableTest, EmptyTableBoundaries) {
  Table<int> T;
  EXPECT_EQ(T.rowCount(), 0u);
  EXPECT_FALSE(T.lookup("k").has_value());
  EXPECT_FALSE(T.hasRow("k"));
  EXPECT_EQ(T.selectVal(7).rowCount(), 0u);
}

//===----------------------------------------------------------------------===//
// PriorityQueue (binary heap for examples/specs/priority_queue.alg)
//===----------------------------------------------------------------------===//

TEST(PriorityQueueTest, MinOrderAcrossInterleavedOps) {
  PriorityQueue<int> P;
  for (int V : {5, 2, 9, 1, 7})
    P.insert(V);
  EXPECT_EQ(P.min(), 1);
  EXPECT_TRUE(P.deleteMin());
  EXPECT_EQ(P.min(), 2);
  P.insert(0);
  EXPECT_EQ(P.min(), 0);
  EXPECT_TRUE(P.deleteMin());
  EXPECT_TRUE(P.deleteMin());
  EXPECT_EQ(P.min(), 5);
  EXPECT_EQ(P.size(), 3u);
}

TEST(PriorityQueueTest, EmptyBoundaries) {
  PriorityQueue<int> P;
  EXPECT_TRUE(P.isEmpty());
  EXPECT_FALSE(P.min().has_value());
  EXPECT_FALSE(P.deleteMin());
}

TEST(PriorityQueueTest, DuplicatesRemoveOneAtATime) {
  PriorityQueue<int> P;
  P.insert(3);
  P.insert(3);
  P.insert(3);
  EXPECT_TRUE(P.deleteMin());
  EXPECT_EQ(P.size(), 2u);
  EXPECT_EQ(P.min(), 3);
}

TEST(PriorityQueueTest, PhiInverseIsOneToManyAgain) {
  // Different insertion orders, same abstract multiset, (possibly)
  // different heap layouts — operator== sees through the layout.
  PriorityQueue<int> A, B;
  for (int V : {1, 2, 3, 4, 5})
    A.insert(V);
  for (int V : {5, 4, 3, 2, 1})
    B.insert(V);
  EXPECT_EQ(A, B);
  EXPECT_NE(A.rawHeap(), B.rawHeap()); // Physically distinct here.
}

TEST(PriorityQueueTest, HeapSortProperty) {
  PriorityQueue<int> P;
  std::vector<int> Values = {9, 4, 7, 1, 8, 2, 6, 3, 5, 0, 4, 4};
  for (int V : Values)
    P.insert(V);
  std::vector<int> Drained;
  while (!P.isEmpty()) {
    Drained.push_back(*P.min());
    P.deleteMin();
  }
  std::vector<int> Expected = Values;
  std::sort(Expected.begin(), Expected.end());
  EXPECT_EQ(Drained, Expected);
}
