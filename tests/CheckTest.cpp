//===----------------------------------------------------------------------===//
//
// Part of AlgSpec. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Unit tests for the term enumerator, unification, the sufficient-
/// completeness checker (paper section 3), and the consistency checker.
///
//===----------------------------------------------------------------------===//

#include "ast/AlgebraContext.h"
#include "ast/TermPrinter.h"
#include "check/Completeness.h"
#include "check/Consistency.h"
#include "check/TermEnumerator.h"
#include "check/Unify.h"
#include "parser/Parser.h"
#include "specs/BuiltinSpecs.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace algspec;

//===----------------------------------------------------------------------===//
// Term enumerator
//===----------------------------------------------------------------------===//

namespace {
class EnumeratorTest : public ::testing::Test {
protected:
  void SetUp() override {
    auto Loaded = specs::loadQueue(Ctx);
    ASSERT_TRUE(static_cast<bool>(Loaded)) << Loaded.error().message();
    Q = Loaded.take();
  }
  AlgebraContext Ctx;
  Spec Q;
};
} // namespace

TEST_F(EnumeratorTest, AtomUniverse) {
  TermEnumerator Enum(Ctx);
  SortId Item = Ctx.lookupSort("Item");
  const auto &Atoms = Enum.enumerate(Item, 1);
  ASSERT_EQ(Atoms.size(), 2u); // Default universe of two atoms.
  EXPECT_EQ(printTerm(Ctx, Atoms[0]), "'item1");
  EXPECT_EQ(printTerm(Ctx, Atoms[1]), "'item2");
}

TEST_F(EnumeratorTest, BoolSort) {
  TermEnumerator Enum(Ctx);
  const auto &Bools = Enum.enumerate(Ctx.boolSort(), 1);
  ASSERT_EQ(Bools.size(), 2u);
}

TEST_F(EnumeratorTest, IntValuesConfigurable) {
  EnumeratorOptions Opts;
  Opts.IntValues = {7, 8};
  TermEnumerator Enum(Ctx, Opts);
  const auto &Ints = Enum.enumerate(Ctx.intSort(), 3);
  ASSERT_EQ(Ints.size(), 2u);
  EXPECT_EQ(Ctx.intValue(Ints[0]), 7);
}

TEST_F(EnumeratorTest, QueueCountsByDepth) {
  TermEnumerator Enum(Ctx);
  SortId Queue = Ctx.lookupSort("Queue");
  // Depth 1: NEW. Depth 2: NEW + ADD(NEW, i) for 2 atoms = 3.
  // Depth 3: 1 + 2*3 = 7.
  EXPECT_EQ(Enum.enumerate(Queue, 1).size(), 1u);
  EXPECT_EQ(Enum.enumerate(Queue, 2).size(), 3u);
  EXPECT_EQ(Enum.enumerate(Queue, 3).size(), 7u);
  EXPECT_EQ(Enum.enumerate(Queue, 4).size(), 15u);
}

TEST_F(EnumeratorTest, AllEnumeratedTermsAreGroundAndWellSorted) {
  TermEnumerator Enum(Ctx);
  SortId Queue = Ctx.lookupSort("Queue");
  for (TermId Term : Enum.enumerate(Queue, 4)) {
    EXPECT_TRUE(Ctx.isGround(Term));
    EXPECT_EQ(Ctx.sortOf(Term), Queue);
    EXPECT_LE(Ctx.depth(Term), 4u);
  }
}

TEST_F(EnumeratorTest, DepthZeroIsEmpty) {
  TermEnumerator Enum(Ctx);
  EXPECT_TRUE(Enum.enumerate(Ctx.lookupSort("Queue"), 0).empty());
}

TEST_F(EnumeratorTest, TruncationReported) {
  EnumeratorOptions Opts;
  Opts.MaxTermsPerSort = 5;
  TermEnumerator Enum(Ctx, Opts);
  SortId Queue = Ctx.lookupSort("Queue");
  EXPECT_EQ(Enum.enumerate(Queue, 4).size(), 5u);
  EXPECT_TRUE(Enum.wasTruncated(Queue, 4));
  EXPECT_FALSE(Enum.wasTruncated(Queue, 1));
}

TEST_F(EnumeratorTest, SampleReturnsMember) {
  TermEnumerator Enum(Ctx);
  SortId Queue = Ctx.lookupSort("Queue");
  std::mt19937_64 Rng(42);
  const auto &All = Enum.enumerate(Queue, 3);
  for (int I = 0; I < 20; ++I) {
    TermId Term = Enum.sample(Queue, 3, Rng);
    EXPECT_NE(std::find(All.begin(), All.end(), Term), All.end());
  }
}

//===----------------------------------------------------------------------===//
// Unification
//===----------------------------------------------------------------------===//

namespace {
class UnifyTest : public EnumeratorTest {};
} // namespace

TEST_F(UnifyTest, UnifiesVarWithTerm) {
  SortId Queue = Ctx.lookupSort("Queue");
  VarId Q1 = Ctx.addVar("u1", Queue);
  auto New = parseTermText(Ctx, "ADD(NEW, 'a)");
  ASSERT_TRUE(static_cast<bool>(New));
  auto Mgu = unifyTerms(Ctx, Ctx.makeVar(Q1), *New);
  ASSERT_TRUE(Mgu.has_value());
  EXPECT_EQ(*Mgu->lookup(Q1), *New);
}

TEST_F(UnifyTest, UnifiesTwoOpenTerms) {
  // REMOVE(ADD(q, i)) vs REMOVE(ADD(NEW, j)) => q -> NEW, i == j.
  SortId Queue = Ctx.lookupSort("Queue");
  SortId Item = Ctx.lookupSort("Item");
  OpId Add = Ctx.lookupOp("ADD");
  OpId Remove = Ctx.lookupOp("REMOVE");
  OpId New = Ctx.lookupOp("NEW");
  VarId Q = Ctx.addVar("uq", Queue);
  VarId I = Ctx.addVar("ui", Item);
  VarId J = Ctx.addVar("uj", Item);

  TermId A = Ctx.makeOp(
      Remove, {Ctx.makeOp(Add, {Ctx.makeVar(Q), Ctx.makeVar(I)})});
  TermId B = Ctx.makeOp(
      Remove, {Ctx.makeOp(Add, {Ctx.makeOp(New, {}), Ctx.makeVar(J)})});
  auto Mgu = unifyTerms(Ctx, A, B);
  ASSERT_TRUE(Mgu.has_value());
  EXPECT_EQ(applySubstitution(Ctx, A, *Mgu),
            applySubstitution(Ctx, B, *Mgu));
}

TEST_F(UnifyTest, OccursCheckFails) {
  SortId Queue = Ctx.lookupSort("Queue");
  SortId Item = Ctx.lookupSort("Item");
  OpId Add = Ctx.lookupOp("ADD");
  VarId Q = Ctx.addVar("oq", Queue);
  TermId QT = Ctx.makeVar(Q);
  TermId Bigger = Ctx.makeOp(Add, {QT, Ctx.makeAtom("a", Item)});
  EXPECT_FALSE(unifyTerms(Ctx, QT, Bigger).has_value());
}

TEST_F(UnifyTest, ClashFails) {
  auto A = parseTermText(Ctx, "FRONT(NEW)");
  auto B = parseTermText(Ctx, "FRONT(ADD(NEW, 'a))");
  ASSERT_TRUE(static_cast<bool>(A) && static_cast<bool>(B));
  EXPECT_FALSE(unifyTerms(Ctx, *A, *B).has_value());
}

TEST_F(UnifyTest, RenameRuleApartKeepsSharing) {
  SortId Queue = Ctx.lookupSort("Queue");
  VarId Q = Ctx.addVar("rq", Queue);
  OpId Remove = Ctx.lookupOp("REMOVE");
  TermId Lhs = Ctx.makeOp(Remove, {Ctx.makeVar(Q)});
  TermId Rhs = Ctx.makeVar(Q);
  auto [NewLhs, NewRhs] = renameRuleApart(Ctx, Lhs, Rhs);
  EXPECT_NE(NewLhs, Lhs);
  // The fresh variable is shared between both sides.
  EXPECT_EQ(Ctx.children(NewLhs)[0], NewRhs);
  EXPECT_NE(NewRhs, Rhs);
}

//===----------------------------------------------------------------------===//
// Sufficient completeness: the paper's specs are complete
//===----------------------------------------------------------------------===//

TEST(CompletenessTest, QueueIsSufficientlyComplete) {
  AlgebraContext Ctx;
  auto Q = specs::loadQueue(Ctx);
  ASSERT_TRUE(static_cast<bool>(Q));
  CompletenessReport Report = checkCompleteness(Ctx, *Q);
  EXPECT_TRUE(Report.SufficientlyComplete) << Report.renderPrompt(Ctx);
  EXPECT_TRUE(Report.Caveats.empty());
}

TEST(CompletenessTest, SymboltableIsSufficientlyComplete) {
  AlgebraContext Ctx;
  auto S = specs::loadSymboltable(Ctx);
  ASSERT_TRUE(static_cast<bool>(S));
  CompletenessReport Report = checkCompleteness(Ctx, *S);
  EXPECT_TRUE(Report.SufficientlyComplete) << Report.renderPrompt(Ctx);
}

TEST(CompletenessTest, StackAndArrayAreSufficientlyComplete) {
  AlgebraContext Ctx;
  auto Parsed = specs::loadStackArray(Ctx);
  ASSERT_TRUE(static_cast<bool>(Parsed));
  for (const Spec &S : *Parsed) {
    CompletenessReport Report = checkCompleteness(Ctx, S);
    EXPECT_TRUE(Report.SufficientlyComplete)
        << S.name() << ": " << Report.renderPrompt(Ctx);
  }
}

TEST(CompletenessTest, KnowsSymboltableIsSufficientlyComplete) {
  AlgebraContext Ctx;
  auto Parsed = specs::loadKnowsSymboltable(Ctx);
  ASSERT_TRUE(static_cast<bool>(Parsed));
  for (const Spec &S : *Parsed) {
    CompletenessReport Report = checkCompleteness(Ctx, S);
    EXPECT_TRUE(Report.SufficientlyComplete)
        << S.name() << ": " << Report.renderPrompt(Ctx);
  }
}

//===----------------------------------------------------------------------===//
// Sufficient completeness: missing boundary cases are prompted
// (paper: "Boundary conditions, e.g. REMOVE(NEW), are particularly
// likely to be overlooked.")
//===----------------------------------------------------------------------===//

static const char *IncompleteQueueText = R"(
spec Queue
  uses Item
  sorts Queue
  ops
    NEW       : -> Queue
    ADD       : Queue, Item -> Queue
    FRONT     : Queue -> Item
    REMOVE    : Queue -> Queue
    IS_EMPTY? : Queue -> Bool
  constructors NEW, ADD
  vars
    q : Queue
    i : Item
  axioms
    IS_EMPTY?(NEW) = true
    IS_EMPTY?(ADD(q, i)) = false
    FRONT(ADD(q, i)) = if IS_EMPTY?(q) then i else FRONT(q)
    REMOVE(ADD(q, i)) = if IS_EMPTY?(q) then NEW else ADD(REMOVE(q), i)
end
)";

TEST(CompletenessTest, MissingBoundaryCasesPrompted) {
  AlgebraContext Ctx;
  auto Parsed = parseSpecText(Ctx, IncompleteQueueText);
  ASSERT_TRUE(static_cast<bool>(Parsed));
  CompletenessReport Report = checkCompleteness(Ctx, (*Parsed)[0]);
  ASSERT_FALSE(Report.SufficientlyComplete);
  ASSERT_EQ(Report.Missing.size(), 2u);

  std::string Prompt = Report.renderPrompt(Ctx);
  EXPECT_NE(Prompt.find("FRONT(NEW) = ?"), std::string::npos) << Prompt;
  EXPECT_NE(Prompt.find("REMOVE(NEW) = ?"), std::string::npos) << Prompt;
}

TEST(CompletenessTest, MissingNestedCaseFound) {
  // Coverage must recurse into nested constructor patterns: F covers
  // ADD(NEW, i) but not ADD(ADD(q, i), j).
  AlgebraContext Ctx;
  auto Parsed = parseSpecText(Ctx, R"(
spec Q
  uses Item
  sorts Q
  ops
    NEW : -> Q
    ADD : Q, Item -> Q
    F : Q -> Bool
  constructors NEW, ADD
  vars q : Q   i : Item
  axioms
    F(NEW) = true
    F(ADD(NEW, i)) = false
end
)");
  ASSERT_TRUE(static_cast<bool>(Parsed));
  CompletenessReport Report = checkCompleteness(Ctx, (*Parsed)[0]);
  ASSERT_FALSE(Report.SufficientlyComplete);
  ASSERT_EQ(Report.Missing.size(), 1u);
  EXPECT_EQ(printTerm(Ctx, Report.Missing[0].SuggestedLhs),
            "F(ADD(ADD(q, item), item))");
}

TEST(CompletenessTest, AtomLiteralPatternsNeedCatchAll) {
  AlgebraContext Ctx;
  auto Parsed = parseSpecText(Ctx, R"(
spec P
  uses Identifier
  sorts P
  ops
    MK : -> P
    CLASSIFY : P, Identifier -> Bool
  constructors MK
  vars p : P
  axioms
    CLASSIFY(p, 'reserved) = true
end
)");
  ASSERT_TRUE(static_cast<bool>(Parsed));
  CompletenessReport Report = checkCompleteness(Ctx, (*Parsed)[0]);
  ASSERT_FALSE(Report.SufficientlyComplete);
  ASSERT_EQ(Report.Missing.size(), 1u);
  // The witness atom position is a wildcard ("any other identifier").
  EXPECT_EQ(printTerm(Ctx, Report.Missing[0].SuggestedLhs),
            "CLASSIFY(p, identifier)");
}

TEST(CompletenessTest, BoolArgumentCoverage) {
  AlgebraContext Ctx;
  auto Parsed = parseSpecText(Ctx, R"(
spec B
  sorts B
  ops
    MK : -> B
    G : Bool -> B
  constructors MK
  axioms
    G(true) = MK
end
)");
  ASSERT_TRUE(static_cast<bool>(Parsed));
  CompletenessReport Report = checkCompleteness(Ctx, (*Parsed)[0]);
  ASSERT_FALSE(Report.SufficientlyComplete);
  EXPECT_EQ(printTerm(Ctx, Report.Missing[0].SuggestedLhs), "G(false)");
}

TEST(CompletenessTest, NonConstructorPatternIsCaveat) {
  AlgebraContext Ctx;
  auto Parsed = parseSpecText(Ctx, R"(
spec Q
  uses Item
  sorts Q
  ops
    NEW : -> Q
    ADD : Q, Item -> Q
    R : Q -> Q
    F : Q -> Q
  constructors NEW, ADD
  vars q : Q   i : Item
  axioms
    R(NEW) = NEW
    R(ADD(q, i)) = q
    F(R(q)) = NEW
end
)");
  ASSERT_TRUE(static_cast<bool>(Parsed));
  CompletenessReport Report = checkCompleteness(Ctx, (*Parsed)[0]);
  EXPECT_FALSE(Report.Caveats.empty());
  // F's only axiom was unusable, so F is reported uncovered.
  EXPECT_FALSE(Report.SufficientlyComplete);
}

TEST(CompletenessTest, DynamicCheckAgreesOnQueue) {
  AlgebraContext Ctx;
  auto Q = specs::loadQueue(Ctx);
  ASSERT_TRUE(static_cast<bool>(Q));
  CompletenessReport Report =
      checkCompletenessDynamic(Ctx, *Q, {&*Q}, /*MaxDepth=*/4);
  EXPECT_TRUE(Report.SufficientlyComplete) << Report.renderPrompt(Ctx);
}

TEST(CompletenessTest, DynamicCheckFindsStuckBoundary) {
  AlgebraContext Ctx;
  auto Parsed = parseSpecText(Ctx, IncompleteQueueText);
  ASSERT_TRUE(static_cast<bool>(Parsed));
  CompletenessReport Report = checkCompletenessDynamic(
      Ctx, (*Parsed)[0], {&(*Parsed)[0]}, /*MaxDepth=*/3);
  ASSERT_FALSE(Report.SufficientlyComplete);
  // FRONT(NEW) and REMOVE(NEW) are stuck, and so is every deeper term
  // whose recursion bottoms out there.
  bool SawFrontNew = false;
  for (const MissingCase &Case : Report.Missing)
    if (printTerm(Ctx, Case.SuggestedLhs) == "FRONT(NEW)")
      SawFrontNew = true;
  EXPECT_TRUE(SawFrontNew);
}

TEST(CompletenessTest, DynamicCheckSeesCrossOpIncompleteness) {
  // G is covered pattern-wise but its RHS calls uncovered F: only the
  // dynamic check can see this.
  AlgebraContext Ctx;
  auto Parsed = parseSpecText(Ctx, R"(
spec Q
  sorts Q
  ops
    A : -> Q
    B : -> Q
    F : Q -> Q
    G : Q -> Q
  constructors A, B
  vars x : Q
  axioms
    F(A) = A
    G(x) = F(x)
end
)");
  ASSERT_TRUE(static_cast<bool>(Parsed));
  const Spec &S = (*Parsed)[0];
  // Static check: F is incomplete, G is fine.
  CompletenessReport Static = checkCompleteness(Ctx, S);
  ASSERT_EQ(Static.Missing.size(), 1u);
  EXPECT_EQ(Static.Missing[0].Op, Ctx.lookupOp("F"));
  // Dynamic check: both F(B) and G(B) get stuck.
  CompletenessReport Dynamic =
      checkCompletenessDynamic(Ctx, S, {&S}, /*MaxDepth=*/1);
  bool SawG = false;
  for (const MissingCase &Case : Dynamic.Missing)
    if (Case.Op == Ctx.lookupOp("G"))
      SawG = true;
  EXPECT_TRUE(SawG);
}

TEST(CompletenessTest, MissingCaseOrderIsDeterministic) {
  // The reported order is part of the tool's contract (golden JSON files
  // diff against it): missing cases come sorted by operation id, then by
  // the printed suggested left-hand side — never by whatever order the
  // coverage walk or the parallel sweep produced them in.
  AlgebraContext Ctx;
  auto Parsed = parseSpecText(Ctx, R"(
spec M
  uses Item
  sorts M
  ops
    MK : -> M
    C  : M, Item -> M
    G  : M -> Bool
    F  : M -> Bool
  constructors MK, C
  vars m : M   i : Item
  axioms
    G(C(MK, i)) = true
    F(C(MK, i)) = false
end
)");
  ASSERT_TRUE(static_cast<bool>(Parsed));
  const Spec &S = (*Parsed)[0];

  auto SortedByContract = [&Ctx](const std::vector<MissingCase> &Missing) {
    return std::is_sorted(
        Missing.begin(), Missing.end(),
        [&Ctx](const MissingCase &A, const MissingCase &B) {
          if (A.Op != B.Op)
            return A.Op < B.Op;
          return printTerm(Ctx, A.SuggestedLhs) <
                 printTerm(Ctx, B.SuggestedLhs);
        });
  };

  // Static: one witness per incomplete op, G before F (declaration
  // order = op-id order).
  CompletenessReport Static = checkCompleteness(Ctx, S);
  ASSERT_EQ(Static.Missing.size(), 2u);
  EXPECT_EQ(printTerm(Ctx, Static.Missing[0].SuggestedLhs), "G(MK)");
  EXPECT_EQ(printTerm(Ctx, Static.Missing[1].SuggestedLhs), "F(MK)");
  EXPECT_TRUE(SortedByContract(Static.Missing));

  // Dynamic: stuck terms are minimized to the smallest constructor
  // skeleton still uncovered by the axiom rows and deduplicated — the
  // four deep C(C(MK, ...), ...) witnesses per operation collapse onto
  // one skeleton, the same shape the static analysis reports. Grouped by
  // op id, and within each op ordered by the printed term — "X(C(...))"
  // sorts before "X(MK)" — not by the order the sweep hit them.
  CompletenessReport Serial =
      checkCompletenessDynamic(Ctx, S, {&S}, /*MaxDepth=*/3);
  ASSERT_FALSE(Serial.SufficientlyComplete);
  std::vector<std::string> Rendered;
  for (const MissingCase &Case : Serial.Missing)
    Rendered.push_back(printTerm(Ctx, Case.SuggestedLhs));
  EXPECT_EQ(Rendered, (std::vector<std::string>{
                          "G(C(C(m, item), item))",
                          "G(MK)",
                          "F(C(C(m, item), item))",
                          "F(MK)",
                      }));
  EXPECT_TRUE(SortedByContract(Serial.Missing));

  ParallelOptions Par;
  Par.Jobs = 4;
  CompletenessReport Parallel = checkCompletenessDynamic(
      Ctx, S, {&S}, /*MaxDepth=*/3, EnumeratorOptions(), Par);
  ASSERT_EQ(Parallel.Missing.size(), Serial.Missing.size());
  for (size_t I = 0; I < Serial.Missing.size(); ++I) {
    EXPECT_EQ(Parallel.Missing[I].Op, Serial.Missing[I].Op);
    EXPECT_EQ(printTerm(Ctx, Parallel.Missing[I].SuggestedLhs),
              printTerm(Ctx, Serial.Missing[I].SuggestedLhs));
  }
}

//===----------------------------------------------------------------------===//
// Consistency
//===----------------------------------------------------------------------===//

TEST(ConsistencyTest, PaperSpecsAreConsistent) {
  AlgebraContext Ctx;
  auto Q = specs::loadQueue(Ctx);
  auto S = specs::loadSymboltable(Ctx);
  ASSERT_TRUE(static_cast<bool>(Q) && static_cast<bool>(S));
  ConsistencyReport Report = checkConsistency(Ctx, {&*Q, &*S});
  EXPECT_TRUE(Report.Consistent) << Report.render(Ctx);
}

TEST(ConsistencyTest, StackArrayConsistent) {
  AlgebraContext Ctx;
  auto Parsed = specs::loadStackArray(Ctx);
  ASSERT_TRUE(static_cast<bool>(Parsed));
  ConsistencyReport Report =
      checkConsistency(Ctx, {&(*Parsed)[0], &(*Parsed)[1]});
  EXPECT_TRUE(Report.Consistent) << Report.render(Ctx);
}

TEST(ConsistencyTest, DirectContradictionFound) {
  AlgebraContext Ctx;
  auto Parsed = parseSpecText(Ctx, R"(
spec C
  sorts C
  ops
    MK : -> C
    F : C -> Bool
  constructors MK
  vars x : C
  axioms
    F(x) = true
    F(MK) = false
end
)");
  ASSERT_TRUE(static_cast<bool>(Parsed));
  ConsistencyReport Report = checkConsistency(Ctx, {&(*Parsed)[0]});
  ASSERT_FALSE(Report.Consistent);
  ASSERT_EQ(Report.Contradictions.size(), 1u);
  const Contradiction &C = Report.Contradictions[0];
  EXPECT_EQ(C.AxiomA, 1u);
  EXPECT_EQ(C.AxiomB, 2u);
  EXPECT_EQ(printTerm(Ctx, C.Overlap), "F(MK)");
}

TEST(ConsistencyTest, OverlapRequiringUnification) {
  AlgebraContext Ctx;
  auto Parsed = parseSpecText(Ctx, R"(
spec C
  uses Item
  sorts C
  ops
    NIL : -> C
    CONS : C, Item -> C
    LAST : C -> Item
  constructors NIL, CONS
  vars c : C   i, j : Item
  axioms
    LAST(CONS(c, i)) = i
    LAST(CONS(CONS(c, i), j)) = LAST(CONS(c, i))
end
)");
  ASSERT_TRUE(static_cast<bool>(Parsed));
  // The two LHSs unify on CONS(CONS(c, i), j); rule 1 returns j, rule 2
  // returns i — a real contradiction (for i != j).
  ConsistencyReport Report = checkConsistency(Ctx, {&(*Parsed)[0]});
  ASSERT_FALSE(Report.Consistent) << Report.render(Ctx);
}

TEST(ConsistencyTest, GroundOnlyDivergenceFound) {
  // The critical pair joins symbolically only if SAME stays undecided;
  // on concrete distinct atoms the two axioms disagree.
  AlgebraContext Ctx;
  auto Parsed = parseSpecText(Ctx, R"(
spec C
  uses Identifier
  sorts C
  ops
    MK : Identifier -> C
    F : C, Identifier -> Bool
  constructors MK
  vars x, y : Identifier
  axioms
    F(MK(x), y) = SAME(x, y)
    F(MK(x), x) = false
end
)");
  ASSERT_TRUE(static_cast<bool>(Parsed));
  ConsistencyReport Report = checkConsistency(Ctx, {&(*Parsed)[0]});
  ASSERT_FALSE(Report.Consistent) << Report.render(Ctx);
}

TEST(ConsistencyTest, DuplicateAxiomIsNotContradiction) {
  AlgebraContext Ctx;
  auto Parsed = parseSpecText(Ctx, R"(
spec C
  sorts C
  ops
    MK : -> C
    F : C -> C
  constructors MK
  vars x : C
  axioms
    F(x) = MK
    F(MK) = MK
end
)");
  ASSERT_TRUE(static_cast<bool>(Parsed));
  ConsistencyReport Report = checkConsistency(Ctx, {&(*Parsed)[0]});
  EXPECT_TRUE(Report.Consistent) << Report.render(Ctx);
}

TEST(ConsistencyTest, RenderMentionsAxiomNumbers) {
  AlgebraContext Ctx;
  auto Parsed = parseSpecText(Ctx, R"(
spec C
  sorts C
  ops
    MK : -> C
    F : C -> Bool
  constructors MK
  vars x : C
  axioms
    F(x) = true
    F(MK) = false
end
)");
  ASSERT_TRUE(static_cast<bool>(Parsed));
  ConsistencyReport Report = checkConsistency(Ctx, {&(*Parsed)[0]});
  std::string Text = Report.render(Ctx);
  EXPECT_NE(Text.find("axioms 1 of 'C' and 2 of 'C'"), std::string::npos)
      << Text;
}

TEST(ConsistencyTest, NestedCriticalPairFound) {
  // The overlap is *inside* a left-hand side: F(G(x)) rewrites at the
  // root to true, but its subterm G(MK) rewrites to MK, giving F(MK) =
  // false. Only full (Knuth-Bendix) critical pairs, not root overlaps
  // of same-head rules, can see this.
  AlgebraContext Ctx;
  auto Parsed = parseSpecText(Ctx, R"(
spec C
  sorts C
  ops
    MK : -> C
    G  : C -> C
    F  : C -> Bool
  constructors MK
  vars x : C
  axioms
    G(MK) = MK
    F(G(x)) = true
    F(MK) = false
end
)");
  ASSERT_TRUE(static_cast<bool>(Parsed)) << Parsed.error().message();
  ConsistencyReport Report = checkConsistency(Ctx, {&(*Parsed)[0]});
  ASSERT_FALSE(Report.Consistent) << Report.render(Ctx);
  bool SawNested = false;
  for (const Contradiction &C : Report.Contradictions)
    if (printTerm(Ctx, C.Overlap) == "F(G(MK))")
      SawNested = true;
  EXPECT_TRUE(SawNested) << Report.render(Ctx);
}

TEST(ConsistencyTest, SelfOverlapAtProperPosition) {
  // One rule overlapping itself below the root: D(D(x)) = x. The peak
  // D(D(D(x))) reduces to both D(x) (root) and D(x) (inner) — joinable,
  // so no contradiction; the checker must consider and discharge it.
  AlgebraContext Ctx;
  auto Parsed = parseSpecText(Ctx, R"(
spec C
  sorts C
  ops
    MK : -> C
    D  : C -> C
  constructors MK, D
  vars x : C
  axioms
    D(D(x)) = x
end
)");
  ASSERT_TRUE(static_cast<bool>(Parsed)) << Parsed.error().message();
  ConsistencyReport Report = checkConsistency(Ctx, {&(*Parsed)[0]});
  EXPECT_TRUE(Report.Consistent) << Report.render(Ctx);
}

TEST(ConsistencyTest, NonJoinableSelfOverlap) {
  // H(H(x)) = MK overlapping itself: the peak H(H(H(x)))
  // reduces to MK at the root and to H(MK) via the inner redex —
  // genuinely contradictory (take x = MK: H(H(H(MK))) equals both).
  AlgebraContext Ctx;
  auto Parsed = parseSpecText(Ctx, R"(
spec C
  sorts C
  ops
    MK : -> C
    H  : C -> C
  constructors MK, H
  vars x : C
  axioms
    H(H(x)) = MK
end
)");
  ASSERT_TRUE(static_cast<bool>(Parsed)) << Parsed.error().message();
  ConsistencyReport Report = checkConsistency(Ctx, {&(*Parsed)[0]});
  ASSERT_FALSE(Report.Consistent) << Report.render(Ctx);
  // Self-overlap: both axiom numbers are 1.
  EXPECT_EQ(Report.Contradictions[0].AxiomA, 1u);
  EXPECT_EQ(Report.Contradictions[0].AxiomB, 1u);
}
