//===----------------------------------------------------------------------===//
//
// Part of AlgSpec. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Integration tests: whole-pipeline flows across module boundaries.
///
///  - every builtin spec coexisting in one context (overload resolution,
///    cross-spec consistency, one session over everything);
///  - the complete paper walkthrough: signature -> skeleton ->
///    completeness -> consistency -> representation verification ->
///    model testing -> the compiler front end on the spec backend;
///  - failure injection: wrong Φ, fuel exhaustion surfaced as caveats.
///
//===----------------------------------------------------------------------===//

#include "adt/HashArray.h"
#include "adt/Stack.h"
#include "blocklang/ScopedTable.h"
#include "blocklang/Sema.h"
#include "core/AlgSpec.h"
#include "support/SourceMgr.h"

#include <gtest/gtest.h>

using namespace algspec;

//===----------------------------------------------------------------------===//
// All builtin specs in one context
//===----------------------------------------------------------------------===//

namespace {

class OneContext : public ::testing::Test {
protected:
  void SetUp() override {
    // knows_symboltable is omitted: it redefines sort Symboltable.
    for (auto [Text, Name] :
         {std::pair(specs::QueueAlg, "queue"),
          std::pair(specs::SymboltableAlg, "symboltable"),
          std::pair(specs::StackArrayAlg, "stackarray"),
          std::pair(specs::KnowlistAlg, "knowlist"),
          std::pair(specs::NatAlg, "nat"),
          std::pair(specs::SetAlg, "set"),
          std::pair(specs::ListAlg, "list"),
          std::pair(specs::BagAlg, "bag"),
          std::pair(specs::BstAlg, "bst")}) {
      Result<void> R = WS.load(Text, Name);
      ASSERT_TRUE(static_cast<bool>(R))
          << Name << ": " << R.error().message();
    }
  }

  Workspace WS;
};

} // namespace

TEST_F(OneContext, NineSpecsCoexist) {
  EXPECT_EQ(WS.specs().size(), 10u); // stackarray contributes two.
  // Overloads resolved: three different INSERTs, two different ADDs.
  EXPECT_EQ(WS.context().lookupOps("INSERT").size(), 3u);
  EXPECT_EQ(WS.context().lookupOps("ADD").size(), 2u);
  EXPECT_EQ(WS.context().lookupOps("IS_EMPTY?").size(), 2u);
}

TEST_F(OneContext, EverySpecCompleteInSharedContext) {
  for (const Spec &S : WS.specs()) {
    CompletenessReport Report = WS.checkComplete(S);
    EXPECT_TRUE(Report.SufficientlyComplete)
        << S.name() << ":\n" << Report.renderPrompt(WS.context());
  }
}

TEST_F(OneContext, CrossSpecConsistency) {
  ConsistencyReport Report = WS.checkConsistent();
  EXPECT_TRUE(Report.Consistent) << Report.render(WS.context());
}

TEST_F(OneContext, OneSessionServesEveryType) {
  auto SessionOrErr = WS.session();
  ASSERT_TRUE(static_cast<bool>(SessionOrErr))
      << SessionOrErr.error().message();
  Session S = SessionOrErr.take();
  Result<void> R = S.runProgram(R"(
    q := ADD(ADD(NEW, 'x), 'y)
    t := ADD(ENTERBLOCK(INIT), 'x, 'int)
    b := INSERT(INSERT(EMPTYBAG, 'x), 'x)
    tree := INSERT(INSERT(LEAF, 4), 2)
  )");
  ASSERT_TRUE(static_cast<bool>(R)) << R.error().message();
  EXPECT_EQ(printTerm(WS.context(), *S.eval("FRONT(q)")), "'x");
  EXPECT_EQ(printTerm(WS.context(), *S.eval("RETRIEVE(t, 'x)")), "'int");
  EXPECT_EQ(printTerm(WS.context(), *S.eval("COUNT(b, 'x)")), "2");
  EXPECT_EQ(printTerm(WS.context(), *S.eval("TREE_MIN(tree)")), "2");
}

//===----------------------------------------------------------------------===//
// The complete paper walkthrough
//===----------------------------------------------------------------------===//

TEST(PaperWalkthrough, Section3ToSection5EndToEnd) {
  // -- Section 2/3: syntactic specification and axioms.
  AlgebraContext Ctx;
  Spec Abstract = specs::loadSymboltable(Ctx).take();

  // The skeleton generator predicts exactly the paper's nine axiom
  // cases, and the written spec fills all of them.
  SkeletonReport Skeleton = generateSkeletons(Ctx, Abstract);
  EXPECT_EQ(Skeleton.Cases.size(), Abstract.axioms().size());

  CompletenessReport Complete = checkCompleteness(Ctx, Abstract);
  ASSERT_TRUE(Complete.SufficientlyComplete);

  // -- Section 4: refine to Stack of Arrays, prove correctness.
  std::vector<Spec> Concrete = specs::loadStackArray(Ctx).take();
  SymboltableRep Rep = buildSymboltableRep(Ctx).take();
  std::vector<const Spec *> Sources{&Abstract};
  for (const Spec &S : Concrete)
    Sources.push_back(&S);
  for (const Spec &S : Rep.ImplSpecs)
    Sources.push_back(&S);

  ConsistencyReport Consistent = checkConsistency(Ctx, Sources);
  ASSERT_TRUE(Consistent.Consistent) << Consistent.render(Ctx);

  VerifyOptions VOpts;
  VOpts.Domain = ValueDomain::Reachable;
  VOpts.Depth = 4;
  VerifyReport Verified =
      verifyRepresentation(Ctx, Abstract, Sources, Rep.Mapping, VOpts);
  ASSERT_TRUE(Verified.AllHold) << Verified.render(Ctx);

  // -- Section 4 (ground level): the PL/I-style C++ classes satisfy the
  //    concrete specs via model testing.
  using ArrayV = adt::HashArray<std::string>;
  using StackV = adt::Stack<ArrayV>;
  ModelBinding B(Ctx);
  B.bindOp("EMPTY",
           [](std::span<const Value>) { return Value::of(ArrayV(4)); });
  B.bindOp("ASSIGN", [](std::span<const Value> Args) {
    ArrayV A = Args[0].get<ArrayV>();
    A.assign(Args[1].get<std::string>(), Args[2].get<std::string>());
    return Value::of(std::move(A));
  });
  B.bindOp("READ", [](std::span<const Value> Args) {
    auto V = Args[0].get<ArrayV>().read(Args[1].get<std::string>());
    return V ? Value::of(*V) : Value::error();
  });
  B.bindOp("IS_UNDEFINED?", [](std::span<const Value> Args) {
    return Value::of(
        Args[0].get<ArrayV>().isUndefined(Args[1].get<std::string>()));
  });
  B.bindEquals(Ctx.lookupSort("Array"),
               [](const Value &A, const Value &B2) {
                 return A.get<ArrayV>() == B2.get<ArrayV>();
               });
  B.bindOp("NEWSTACK",
           [](std::span<const Value>) { return Value::of(StackV()); });
  B.bindOp("PUSH", [](std::span<const Value> Args) {
    StackV S = Args[0].get<StackV>();
    S.push(Args[1].get<ArrayV>());
    return Value::of(std::move(S));
  });
  B.bindOp("POP", [](std::span<const Value> Args) {
    StackV S = Args[0].get<StackV>();
    return S.pop() ? Value::of(std::move(S)) : Value::error();
  });
  B.bindOp("TOP", [](std::span<const Value> Args) {
    auto T = Args[0].get<StackV>().top();
    return T ? Value::of(std::move(*T)) : Value::error();
  });
  B.bindOp("IS_NEWSTACK?", [](std::span<const Value> Args) {
    return Value::of(Args[0].get<StackV>().isEmpty());
  });
  B.bindOp("REPLACE", [](std::span<const Value> Args) {
    StackV S = Args[0].get<StackV>();
    return S.replace(Args[1].get<ArrayV>()) ? Value::of(std::move(S))
                                            : Value::error();
  });
  B.bindEquals(Ctx.lookupSort("Stack"),
               [](const Value &A, const Value &B2) {
                 return A.get<StackV>() == B2.get<StackV>();
               });
  ModelTestOptions MOpts;
  MOpts.MaxDepth = 3;
  for (const Spec &S : Concrete) {
    ModelTestReport Report = testModel(Ctx, S, B, MOpts);
    ASSERT_TRUE(Report.AllPassed) << S.name() << ":\n" << Report.render();
  }

  // -- Section 5: the compiler front end runs on the bare specification.
  auto SpecBackend = blocklang::SpecScopedTable::create();
  ASSERT_TRUE(static_cast<bool>(SpecBackend));
  SourceMgr SM("walkthrough.bl", R"(
begin
  var x : int;
  begin
    var x : bool;
    x := true;
  end;
  x := x + 1;
end
)");
  DiagnosticEngine Diags;
  EXPECT_TRUE(blocklang::compile(SM, **SpecBackend, Diags))
      << Diags.render(&SM);
}

//===----------------------------------------------------------------------===//
// Failure injection
//===----------------------------------------------------------------------===//

TEST(FailureInjection, WrongPhiIsRejected) {
  // A Φ that forgets to recurse (maps every nonempty stack to INIT) is
  // invisible to the axiom-instance check for this spec — both sides of
  // each abstract-sorted axiom reduce to the same representation value
  // before Φ applies — but the homomorphism check pins Φ directly and
  // must reject it.
  AlgebraContext Ctx;
  Spec Abstract = specs::loadSymboltable(Ctx).take();
  std::vector<Spec> Concrete = specs::loadStackArray(Ctx).take();
  SymboltableRep Rep = buildSymboltableRep(Ctx).take();

  auto WrongPhi = parseSpecText(Ctx, R"(
spec WrongPhi
  ops
    WPHI : Stack -> Symboltable
  vars
    stk : Stack
    arr : Array
  axioms
    WPHI(NEWSTACK) = error
    WPHI(PUSH(stk, arr)) = INIT
end
)");
  ASSERT_TRUE(static_cast<bool>(WrongPhi)) << WrongPhi.error().message();

  RepMapping Mapping = Rep.Mapping;
  Mapping.Phi = Ctx.lookupOp("WPHI");

  std::vector<const Spec *> Sources{&Abstract};
  for (const Spec &S : Concrete)
    Sources.push_back(&S);
  for (const Spec &S : Rep.ImplSpecs)
    Sources.push_back(&S);
  Sources.push_back(&(*WrongPhi)[0]);

  VerifyOptions Options;
  Options.Domain = ValueDomain::Reachable;
  Options.Depth = 3;
  VerifyReport Axioms =
      verifyRepresentation(Ctx, Abstract, Sources, Mapping, Options);
  // The axiom instances alone cannot tell (documented limitation).
  EXPECT_TRUE(Axioms.AllHold) << Axioms.render(Ctx);

  VerifyReport Hom =
      verifyHomomorphism(Ctx, Abstract, Sources, Mapping, Options);
  EXPECT_FALSE(Hom.AllHold) << Hom.render(Ctx);
}

TEST(FailureInjection, FuelExhaustionSurfacesAsCaveat) {
  AlgebraContext Ctx;
  auto Parsed = parseSpecText(Ctx, R"(
spec Spin
  sorts S
  ops
    MK : -> S
    GO : S -> Bool
  constructors MK
  vars x : S
  axioms
    GO(x) = GO(x)
end
)");
  ASSERT_TRUE(static_cast<bool>(Parsed));
  const Spec &S = (*Parsed)[0];
  EnumeratorOptions EOpts;
  CompletenessReport Report =
      checkCompletenessDynamic(Ctx, S, {&S}, 2, EOpts);
  // The divergent axiom exhausts fuel; reported as a caveat, not a hang.
  bool SawFuelCaveat = false;
  for (const std::string &Caveat : Report.Caveats)
    if (Caveat.find("fuel") != std::string::npos ||
        Caveat.find("failed") != std::string::npos)
      SawFuelCaveat = true;
  EXPECT_TRUE(SawFuelCaveat);
}

TEST(FailureInjection, DeeplyNestedTermParses) {
  AlgebraContext Ctx;
  ASSERT_TRUE(static_cast<bool>(specs::loadQueue(Ctx)));
  std::string Term = "NEW";
  for (int I = 0; I < 2000; ++I)
    Term = "REMOVE(" + Term + ")";
  auto Parsed = parseTermText(Ctx, Term);
  ASSERT_TRUE(static_cast<bool>(Parsed)) << Parsed.error().message();
  EXPECT_EQ(Ctx.depth(*Parsed), 2001u);
}
