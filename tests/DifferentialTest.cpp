//===----------------------------------------------------------------------===//
//
// Part of AlgSpec. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Differential tests pinning the compiled rewrite engine (matching
/// automata + RHS templates + work-stack machine) to the reference
/// interpreter. The contract is byte identity of every observable:
/// normal forms, error results and their messages, stuck verdicts,
/// traces (including which Rule object fired), memo behaviour, and the
/// engine-independent counters. The sweep covers every builtin spec and
/// the example spec files, applying every operation to enumerated
/// ground arguments; checker and verifier reports are compared across
/// both engines at several job counts.
///
//===----------------------------------------------------------------------===//

#include "ast/AlgebraContext.h"
#include "ast/TermPrinter.h"
#include "check/Completeness.h"
#include "check/Consistency.h"
#include "check/ErrorFlow.h"
#include "check/TermEnumerator.h"
#include "parser/Parser.h"
#include "rewrite/Engine.h"
#include "specs/BuiltinSpecs.h"
#include "verify/RepVerifier.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

using namespace algspec;

namespace {

std::string readFileOrEmpty(const std::string &Path) {
  std::ifstream In(Path);
  if (!In)
    return {};
  std::ostringstream Buffer;
  Buffer << In.rdbuf();
  return Buffer.str();
}

/// One differential case: a set of spec buffers loaded together.
struct DiffCase {
  const char *Name;
};

/// The buffers of a case, resolved at runtime (example files are read
/// from the source tree).
std::vector<std::pair<std::string, std::string>>
sourcesFor(const std::string &Name) {
  auto Builtin = [](std::string_view Text, const char *Buf) {
    return std::make_pair(std::string(Buf), std::string(Text));
  };
  if (Name == "queue")
    return {Builtin(specs::QueueAlg, "queue.alg")};
  if (Name == "symboltable")
    return {Builtin(specs::SymboltableAlg, "symboltable.alg")};
  if (Name == "stackarray")
    return {Builtin(specs::StackArrayAlg, "stackarray.alg")};
  if (Name == "knowlist")
    return {Builtin(specs::KnowlistAlg, "knowlist.alg")};
  if (Name == "knows_symboltable")
    return {Builtin(specs::KnowsSymboltableAlg, "knows_symboltable.alg")};
  if (Name == "nat")
    return {Builtin(specs::NatAlg, "nat.alg")};
  if (Name == "set")
    return {Builtin(specs::SetAlg, "set.alg")};
  if (Name == "list")
    return {Builtin(specs::ListAlg, "list.alg")};
  if (Name == "bag")
    return {Builtin(specs::BagAlg, "bag.alg")};
  if (Name == "bst")
    return {Builtin(specs::BstAlg, "bst.alg")};
  if (Name == "table")
    return {Builtin(specs::TableAlg, "table.alg")};
  if (Name == "boundedqueue")
    return {Builtin(specs::BoundedQueueAlg, "boundedqueue.alg")};
  if (Name == "symboltable_impl")
    return {Builtin(specs::SymboltableAlg, "symboltable.alg"),
            Builtin(specs::StackArrayAlg, "stackarray.alg"),
            Builtin(specs::SymboltableImplAlg, "symboltable_impl.alg")};
  if (Name == "priority_queue_example")
    return {{"priority_queue.alg",
             readFileOrEmpty(ALGSPEC_SOURCE_DIR
                             "/examples/specs/priority_queue.alg")}};
  if (Name == "symboltable_impl_example")
    return {Builtin(specs::SymboltableAlg, "symboltable.alg"),
            Builtin(specs::StackArrayAlg, "stackarray.alg"),
            {"symboltable_impl.alg",
             readFileOrEmpty(ALGSPEC_SOURCE_DIR
                             "/examples/specs/symboltable_impl.alg")}};
  return {};
}

/// Loads one case into a context and wires a compiled and an interpreted
/// engine over the same rewrite system (rule identity matters: traces
/// record Rule pointers, and the engines must agree on them).
class DiffFixture {
public:
  explicit DiffFixture(const std::string &Name, bool KeepTrace = true) {
    auto Sources = sourcesFor(Name);
    if (Sources.empty()) {
      ADD_FAILURE() << "unknown case " << Name;
      Ok = false;
      return;
    }
    for (auto &[Buf, Text] : Sources) {
      if (Text.empty()) {
        ADD_FAILURE() << Buf << " is empty or unreadable";
        Ok = false;
        return;
      }
      auto Parsed = specs::load(Ctx, Text, Buf);
      if (!Parsed) {
        ADD_FAILURE() << Parsed.error().message();
        Ok = false;
        return;
      }
      for (Spec &S : *Parsed)
        Specs.push_back(std::move(S));
    }
    for (const Spec &S : Specs)
      Ptrs.push_back(&S);
    System = std::make_unique<RewriteSystem>(
        RewriteSystem::buildChecked(Ctx, Ptrs).take());
    EngineOptions CompiledOpts;
    CompiledOpts.Compile = true;
    CompiledOpts.KeepTrace = KeepTrace;
    EngineOptions InterpOpts = CompiledOpts;
    InterpOpts.Compile = false;
    CompiledEng = std::make_unique<RewriteEngine>(Ctx, *System,
                                                  CompiledOpts);
    InterpEng = std::make_unique<RewriteEngine>(Ctx, *System, InterpOpts);
  }

  bool Ok = true;
  AlgebraContext Ctx;
  std::vector<Spec> Specs;
  std::vector<const Spec *> Ptrs;
  std::unique_ptr<RewriteSystem> System;
  std::unique_ptr<RewriteEngine> CompiledEng;
  std::unique_ptr<RewriteEngine> InterpEng;
};

/// Expects the engine-independent counters to agree. MatchAttempts and
/// AutomatonVisits are deliberately excluded: they quantify each
/// engine's own matching work.
void expectCoreStatsEqual(const EngineStats &A, const EngineStats &B,
                          const std::string &Where) {
  EXPECT_EQ(A.Steps, B.Steps) << Where;
  EXPECT_EQ(A.CacheHits, B.CacheHits) << Where;
  EXPECT_EQ(A.CacheMisses, B.CacheMisses) << Where;
  EXPECT_EQ(A.Evictions, B.Evictions) << Where;
  EXPECT_EQ(A.Rebuilds, B.Rebuilds) << Where;
}

/// Normalizes \p Term under both engines and expects byte-identical
/// observables: result kind, error message, normal form, stuck verdict,
/// and the recorded trace (rule pointers included).
void diffOneTerm(DiffFixture &F, TermId Term) {
  std::string Text = printTerm(F.Ctx, Term);
  F.CompiledEng->clearTrace();
  F.InterpEng->clearTrace();
  Result<TermId> C = F.CompiledEng->normalize(Term);
  Result<TermId> I = F.InterpEng->normalize(Term);
  ASSERT_EQ(static_cast<bool>(C), static_cast<bool>(I)) << Text;
  if (!C) {
    EXPECT_EQ(C.error().message(), I.error().message()) << Text;
    return;
  }
  EXPECT_EQ(*C, *I) << Text << "\n  compiled: " << printTerm(F.Ctx, *C)
                    << "\n  interp:   " << printTerm(F.Ctx, *I);
  EXPECT_EQ(F.CompiledEng->isStuck(*C), F.InterpEng->isStuck(*I)) << Text;

  const std::vector<TraceStep> &CT = F.CompiledEng->trace();
  const std::vector<TraceStep> &IT = F.InterpEng->trace();
  ASSERT_EQ(CT.size(), IT.size()) << Text;
  for (size_t S = 0; S != CT.size(); ++S) {
    EXPECT_EQ(CT[S].Before, IT[S].Before) << Text << " step " << S;
    EXPECT_EQ(CT[S].After, IT[S].After) << Text << " step " << S;
    EXPECT_EQ(CT[S].AppliedRule, IT[S].AppliedRule)
        << Text << " step " << S;
  }
}

class EngineDifferential : public ::testing::TestWithParam<DiffCase> {};

} // namespace

//===----------------------------------------------------------------------===//
// Engine-level sweep: every op applied to enumerated ground arguments.
//===----------------------------------------------------------------------===//

TEST_P(EngineDifferential, NormalFormsTracesAndMemoAgree) {
  DiffFixture F(GetParam().Name);
  ASSERT_TRUE(F.Ok);
  TermEnumerator Enum(F.Ctx);
  constexpr unsigned ArgDepth = 2;
  constexpr size_t MaxCombosPerOp = 120;

  for (const Spec *S : F.Ptrs) {
    for (OpId Op : S->operations()) {
      const OpInfo &Info = F.Ctx.op(Op);
      // Cartesian product of the argument enumerations, capped. The cap
      // walks the product in mixed-radix order, so early arguments vary
      // fastest and every argument position sees several values.
      std::vector<const std::vector<TermId> *> Pools;
      bool Inhabited = true;
      for (SortId Arg : Info.ArgSorts) {
        Pools.push_back(&Enum.enumerate(Arg, ArgDepth));
        Inhabited &= !Pools.back()->empty();
      }
      if (!Inhabited)
        continue;
      std::vector<size_t> Index(Pools.size(), 0);
      for (size_t Combo = 0; Combo < MaxCombosPerOp; ++Combo) {
        std::vector<TermId> Args;
        for (size_t A = 0; A != Pools.size(); ++A)
          Args.push_back((*Pools[A])[Index[A]]);
        diffOneTerm(F, F.Ctx.makeOp(Op, Args));
        if (::testing::Test::HasFatalFailure())
          return;
        // Advance the mixed-radix counter; stop after the last combo.
        size_t Pos = 0;
        while (Pos != Index.size() &&
               ++Index[Pos] == Pools[Pos]->size()) {
          Index[Pos] = 0;
          ++Pos;
        }
        if (Pos == Index.size())
          break;
        if (Pools.empty())
          break; // Nullary op: one application only.
      }
    }
  }
  // After the whole sweep the engine-independent counters agree: both
  // engines did the same rewriting work in the same order against their
  // own (identically evolving) memo tables.
  expectCoreStatsEqual(F.CompiledEng->stats(), F.InterpEng->stats(),
                       GetParam().Name);
  EXPECT_EQ(F.InterpEng->stats().AutomatonVisits, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllSpecs, EngineDifferential,
    ::testing::Values(DiffCase{"queue"}, DiffCase{"symboltable"},
                      DiffCase{"stackarray"}, DiffCase{"knowlist"},
                      DiffCase{"knows_symboltable"}, DiffCase{"nat"},
                      DiffCase{"set"}, DiffCase{"list"}, DiffCase{"bag"},
                      DiffCase{"bst"}, DiffCase{"table"},
                      DiffCase{"boundedqueue"},
                      DiffCase{"symboltable_impl"},
                      DiffCase{"priority_queue_example"},
                      DiffCase{"symboltable_impl_example"}),
    [](const ::testing::TestParamInfo<DiffCase> &Info) {
      return std::string(Info.param.Name);
    });

//===----------------------------------------------------------------------===//
// Checker-level differential: identical reports at any job count.
//===----------------------------------------------------------------------===//

namespace {

/// The four configurations every checker report must agree across.
struct CheckerConfig {
  bool Compile;
  unsigned Jobs;
};

const CheckerConfig Configs[] = {
    {true, 1}, {true, 4}, {false, 1}, {false, 4}};

} // namespace

TEST(CheckerDifferential, DynamicCompletenessReportsAgree) {
  for (const char *Name : {"queue", "boundedqueue", "bst"}) {
    std::vector<std::string> Rendered;
    for (const CheckerConfig &Cfg : Configs) {
      DiffFixture F(Name, /*KeepTrace=*/false);
      ASSERT_TRUE(F.Ok);
      EngineOptions Eng;
      Eng.Compile = Cfg.Compile;
      ParallelOptions Par;
      Par.Jobs = Cfg.Jobs;
      CompletenessReport R = checkCompletenessDynamic(
          F.Ctx, F.Specs.front(), F.Ptrs, /*MaxDepth=*/3,
          EnumeratorOptions(), Par, Eng);
      std::string Text = R.renderPrompt(F.Ctx);
      for (const std::string &Caveat : R.Caveats)
        Text += Caveat + "\n";
      Text += R.SufficientlyComplete ? "complete" : "incomplete";
      Rendered.push_back(Text);
    }
    for (size_t C = 1; C != Rendered.size(); ++C)
      EXPECT_EQ(Rendered[0], Rendered[C])
          << Name << ": config " << C << " diverges";
  }
}

TEST(CheckerDifferential, ConsistencyReportsAgree) {
  for (const char *Name : {"queue", "symboltable_impl", "set"}) {
    std::vector<std::string> Rendered;
    for (const CheckerConfig &Cfg : Configs) {
      DiffFixture F(Name, /*KeepTrace=*/false);
      ASSERT_TRUE(F.Ok);
      EngineOptions Eng;
      Eng.Compile = Cfg.Compile;
      ParallelOptions Par;
      Par.Jobs = Cfg.Jobs;
      ConsistencyReport R = checkConsistency(
          F.Ctx, F.Ptrs, /*GroundDepth=*/2, EnumeratorOptions(), Par, Eng);
      Rendered.push_back(R.render(F.Ctx) +
                         (R.Consistent ? "consistent" : "inconsistent"));
    }
    for (size_t C = 1; C != Rendered.size(); ++C)
      EXPECT_EQ(Rendered[0], Rendered[C])
          << Name << ": config " << C << " diverges";
  }
}

TEST(CheckerDifferential, ErrorFlowReportsAndGuardCountersAgree) {
  // The analysis is serial, so beyond report identity the guard engine's
  // engine-independent counters must agree exactly between the compiled
  // and interpreted engines — the strongest form of the differential
  // contract (same rewrites, same memo traffic, same order).
  for (const char *Name :
       {"queue", "symboltable_impl", "boundedqueue", "bst"}) {
    DiffFixture FC(Name, /*KeepTrace=*/false);
    DiffFixture FI(Name, /*KeepTrace=*/false);
    ASSERT_TRUE(FC.Ok && FI.Ok);
    EngineOptions CompiledEng;
    CompiledEng.Compile = true;
    EngineOptions InterpEng;
    InterpEng.Compile = false;
    ErrorFlowReport RC = analyzeErrorFlow(FC.Ctx, FC.Ptrs, CompiledEng);
    ErrorFlowReport RI = analyzeErrorFlow(FI.Ctx, FI.Ptrs, InterpEng);
    EXPECT_EQ(RC.render(FC.Ctx), RI.render(FI.Ctx)) << Name;
    ASSERT_EQ(RC.Obligations.size(), RI.Obligations.size()) << Name;
    for (size_t O = 0; O != RC.Obligations.size(); ++O)
      EXPECT_EQ(RC.Obligations[O].render(FC.Ctx),
                RI.Obligations[O].render(FI.Ctx))
          << Name << " obligation " << O;
    expectCoreStatsEqual(RC.Engine, RI.Engine, Name);
  }
}

//===----------------------------------------------------------------------===//
// Verifier-level differential: the paper's Symboltable proof.
//===----------------------------------------------------------------------===//

TEST(VerifierDifferential, SymboltableReportsAgree) {
  for (const CheckerConfig &Cfg : Configs) {
    SCOPED_TRACE(std::string("compile=") + (Cfg.Compile ? "yes" : "no") +
                 " jobs=" + std::to_string(Cfg.Jobs));
    AlgebraContext Ctx;
    auto Abstract = specs::loadSymboltable(Ctx);
    ASSERT_TRUE(static_cast<bool>(Abstract));
    Spec AbstractSpec = Abstract.take();
    auto Concrete = specs::loadStackArray(Ctx);
    ASSERT_TRUE(static_cast<bool>(Concrete));
    std::vector<Spec> ConcreteSpecs = Concrete.take();
    auto Rep = buildSymboltableRep(Ctx);
    ASSERT_TRUE(static_cast<bool>(Rep));
    SymboltableRep TheRep = Rep.take();
    std::vector<const Spec *> Sources = {&AbstractSpec};
    for (const Spec &S : ConcreteSpecs)
      Sources.push_back(&S);
    for (const Spec &S : TheRep.ImplSpecs)
      Sources.push_back(&S);

    VerifyOptions Options;
    Options.Domain = ValueDomain::Reachable;
    Options.Depth = 3;
    Options.Engine.Compile = Cfg.Compile;
    Options.Par.Jobs = Cfg.Jobs;
    VerifyReport R = verifyRepresentation(Ctx, AbstractSpec, Sources,
                                          TheRep.Mapping, Options);
    static std::string Reference;
    std::string Text = R.render(Ctx);
    if (Reference.empty())
      Reference = Text;
    EXPECT_EQ(Text, Reference);
    EXPECT_TRUE(R.AllHold) << Text;
  }
}
