//===----------------------------------------------------------------------===//
//
// Part of AlgSpec. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Unit tests for the arena epoch lifecycle: mark/truncate round trips,
/// registry unwinding (sorts, ops, vars, interned strings, the lazy
/// sort-indexed builtins), the int side pool, generation counters, and
/// the epoch-aware caches built on top (engine memo, term enumerator).
///
//===----------------------------------------------------------------------===//

#include "ast/AlgebraContext.h"
#include "ast/TermPrinter.h"
#include "check/TermEnumerator.h"
#include "parser/Parser.h"
#include "rewrite/Engine.h"
#include "rewrite/RewriteSystem.h"
#include "specs/BuiltinSpecs.h"

#include <gtest/gtest.h>

using namespace algspec;

namespace {

/// Fixture with the paper's Queue signature and a few pinned terms.
class ArenaEpochs : public ::testing::Test {
protected:
  void SetUp() override {
    QueueSort = Ctx.addSort("Queue", SortKind::User);
    ItemSort = Ctx.getOrAddAtomSort("Item");
    NewOp = Ctx.addOp("NEW", {}, QueueSort, OpKind::Constructor);
    AddOp = Ctx.addOp("ADD", {QueueSort, ItemSort}, QueueSort,
                      OpKind::Constructor);
    NewTerm = Ctx.makeOp(NewOp, {});
    ItemA = Ctx.makeAtom("a", ItemSort);
    Pinned = Ctx.makeOp(AddOp, {NewTerm, ItemA});
  }

  AlgebraContext Ctx;
  SortId QueueSort, ItemSort;
  OpId NewOp, AddOp;
  TermId NewTerm, ItemA, Pinned;
};

} // namespace

//===----------------------------------------------------------------------===//
// Mark / truncate round trips
//===----------------------------------------------------------------------===//

TEST_F(ArenaEpochs, TruncateRestoresEveryHighWaterMark) {
  ArenaEpoch E = Ctx.markEpoch();

  // Scratch: new sort, ops (including the lazy sort-indexed builtins),
  // var, atom with a fresh interned name, terms.
  SortId Scratch = Ctx.addSort("Scratch", SortKind::User);
  Ctx.getIteOp(Scratch);
  Ctx.getSameOp(ItemSort);
  VarId V = Ctx.addVar("q", QueueSort);
  Ctx.makeVar(V);
  TermId B = Ctx.makeAtom("freshatomname", ItemSort);
  Ctx.makeOp(AddOp, {Pinned, B});

  ASSERT_GT(Ctx.numTerms(), E.NumTerms);
  ASSERT_GT(Ctx.numSorts(), E.NumSorts);
  ASSERT_GT(Ctx.numOps(), E.NumOps);
  ASSERT_GT(Ctx.numVars(), E.NumVars);

  TruncationDelta D = Ctx.truncateToEpoch(E);
  EXPECT_GT(D.TermsFreed, 0u);
  EXPECT_GT(D.BytesFreed, 0u);
  EXPECT_EQ(Ctx.numTerms(), E.NumTerms);
  EXPECT_EQ(Ctx.numSorts(), E.NumSorts);
  EXPECT_EQ(Ctx.numOps(), E.NumOps);
  EXPECT_EQ(Ctx.numVars(), E.NumVars);

  // Pinned ids survive untouched and still print.
  EXPECT_EQ(printTerm(Ctx, Pinned), "ADD(NEW, 'a)");
  EXPECT_FALSE(Ctx.lookupSort("Scratch").isValid());
}

TEST_F(ArenaEpochs, HashConsingStillFindsSurvivorsAfterTruncate) {
  ArenaEpoch E = Ctx.markEpoch();
  Ctx.makeOp(AddOp, {Pinned, ItemA});
  Ctx.truncateToEpoch(E);

  // Re-making a pre-epoch term must dedup onto the surviving node, and
  // re-making the freed term must re-intern cleanly at the old index.
  EXPECT_EQ(Ctx.makeOp(AddOp, {NewTerm, ItemA}), Pinned);
  TermId Again = Ctx.makeOp(AddOp, {Pinned, ItemA});
  EXPECT_EQ(Again.index(), E.NumTerms);
  EXPECT_EQ(printTerm(Ctx, Again), "ADD(ADD(NEW, 'a), 'a)");
}

TEST_F(ArenaEpochs, LazyBuiltinsRecreateAfterTruncate) {
  ArenaEpoch E = Ctx.markEpoch();
  OpId Same = Ctx.getSameOp(ItemSort);
  OpId Ite = Ctx.getIteOp(QueueSort);
  Ctx.truncateToEpoch(E);

  // The cached instances were unregistered with the epoch; asking again
  // must mint fresh ops at the old indices, not hand back dangling ids.
  OpId Same2 = Ctx.getSameOp(ItemSort);
  OpId Ite2 = Ctx.getIteOp(QueueSort);
  EXPECT_TRUE(Same2.isValid());
  EXPECT_TRUE(Ite2.isValid());
  EXPECT_EQ(std::min(Same2.index(), Ite2.index()),
            std::min(Same.index(), Ite.index()));
  EXPECT_EQ(Ctx.op(Same2).Builtin, BuiltinOp::Same);
  EXPECT_EQ(Ctx.op(Ite2).Builtin, BuiltinOp::Ite);
}

TEST_F(ArenaEpochs, InternerTruncationFreesOnlyScratchStrings) {
  Symbol Kept = Ctx.intern("kept-before-epoch");
  ArenaEpoch E = Ctx.markEpoch();
  Ctx.intern("scratch-only-string");
  TruncationDelta D = Ctx.truncateToEpoch(E);
  EXPECT_GE(D.BytesFreed, std::string("scratch-only-string").size());
  EXPECT_EQ(Ctx.str(Kept), "kept-before-epoch");
  // The freed name re-interns as a fresh symbol without tripping the
  // table's dangling-view protection.
  Symbol Again = Ctx.intern("scratch-only-string");
  EXPECT_EQ(Ctx.str(Again), "scratch-only-string");
}

TEST_F(ArenaEpochs, IntPoolSurvivesAndDedupsAcrossEpochs) {
  TermId Old = Ctx.makeInt(1234567890123456789LL);
  ArenaEpoch E = Ctx.markEpoch();
  // Dedup onto a pre-epoch literal must not grow the int pool.
  EXPECT_EQ(Ctx.makeInt(1234567890123456789LL), Old);
  EXPECT_EQ(Ctx.markEpoch().IntPoolSize, E.IntPoolSize);
  TermId Fresh = Ctx.makeInt(-42);
  EXPECT_EQ(Ctx.intValue(Fresh), -42);
  Ctx.truncateToEpoch(E);
  EXPECT_EQ(Ctx.intValue(Old), 1234567890123456789LL);
  TermId Fresh2 = Ctx.makeInt(-42);
  EXPECT_EQ(Fresh2.index(), E.NumTerms);
  EXPECT_EQ(Ctx.intValue(Fresh2), -42);
}

//===----------------------------------------------------------------------===//
// Generation counter and stats
//===----------------------------------------------------------------------===//

TEST_F(ArenaEpochs, NoopTruncateKeepsGenerationAndStats) {
  ArenaEpoch E = Ctx.markEpoch();
  uint64_t Gen = Ctx.generation();
  ArenaStats Before = Ctx.arenaStats();
  TruncationDelta D = Ctx.truncateToEpoch(E);
  EXPECT_EQ(D.TermsFreed, 0u);
  EXPECT_EQ(D.BytesFreed, 0u);
  EXPECT_EQ(Ctx.generation(), Gen);
  EXPECT_EQ(Ctx.arenaStats().Truncations, Before.Truncations);
}

TEST_F(ArenaEpochs, TruncationBumpsGenerationAndLowersWaterMark) {
  ArenaEpoch E = Ctx.markEpoch();
  Ctx.makeOp(AddOp, {Pinned, ItemA});
  uint64_t Gen = Ctx.generation();
  Ctx.truncateToEpoch(E);
  EXPECT_EQ(Ctx.generation(), Gen + 1);
  EXPECT_EQ(Ctx.truncateLowWater(), E.NumTerms);

  ArenaStats S = Ctx.arenaStats();
  EXPECT_EQ(S.Truncations, 1u);
  EXPECT_EQ(S.TermsFreed, 1u);
  EXPECT_GT(S.BytesFreed, 0u);
  EXPECT_EQ(S.HighWaterTerms, E.NumTerms + 1);
}

//===----------------------------------------------------------------------===//
// Epoch-aware caches: engine memo, enumerator, stats reset
//===----------------------------------------------------------------------===//

namespace {

/// Fixture with the Queue spec, engine, and a marked post-warmup epoch.
class EngineEpochs : public ::testing::Test {
protected:
  void SetUp() override {
    auto Loaded = specs::loadQueue(Ctx);
    ASSERT_TRUE(static_cast<bool>(Loaded)) << Loaded.error().message();
    Q = Loaded.take();
    auto Sys = RewriteSystem::buildChecked(Ctx, {&Q});
    ASSERT_TRUE(static_cast<bool>(Sys)) << Sys.error().message();
    System = std::make_unique<RewriteSystem>(Sys.take());
    Engine = std::make_unique<RewriteEngine>(Ctx, *System);
    Engine->warmup();
    Base = Ctx.markEpoch();
  }

  TermId parse(const std::string &Text) {
    auto Term = parseTermText(Ctx, Text);
    EXPECT_TRUE(static_cast<bool>(Term)) << Term.error().message();
    return *Term;
  }

  AlgebraContext Ctx;
  Spec Q;
  std::unique_ptr<RewriteSystem> System;
  std::unique_ptr<RewriteEngine> Engine;
  ArenaEpoch Base;
};

} // namespace

TEST_F(EngineEpochs, MemoSurvivesTruncationOfUnrelatedScratch) {
  // Everything here lives below the epoch we truncate to, so its memo
  // entries must keep hitting afterwards.
  TermId Stable = parse("FRONT(ADD(ADD(NEW, 'a), 'b))");
  ASSERT_TRUE(static_cast<bool>(Engine->normalize(Stable)));
  ArenaEpoch Mid = Ctx.markEpoch();
  ASSERT_TRUE(
      static_cast<bool>(Engine->normalize(parse("REMOVE(ADD(NEW, 'c))"))));
  Ctx.truncateToEpoch(Mid);
  Engine->syncArenaStats();

  uint64_t Hits = Engine->stats().CacheHits;
  auto Again = Engine->normalize(Stable);
  ASSERT_TRUE(static_cast<bool>(Again));
  EXPECT_EQ(printTerm(Ctx, *Again), "'a");
  EXPECT_GT(Engine->stats().CacheHits, Hits);
}

TEST_F(EngineEpochs, MemoDropsEntriesForFreedTerms) {
  TermId Scratch = parse("FRONT(ADD(ADD(NEW, 'x), 'y))");
  auto First = Engine->normalize(Scratch);
  ASSERT_TRUE(static_cast<bool>(First));
  Ctx.truncateToEpoch(Base);
  Engine->syncArenaStats();

  // The same text re-parses to the same indices; the stale entry keyed
  // there must not short-circuit normalization with a dangling value.
  TermId Rebuilt = parse("FRONT(ADD(ADD(NEW, 'x), 'y))");
  auto Second = Engine->normalize(Rebuilt);
  ASSERT_TRUE(static_cast<bool>(Second));
  EXPECT_EQ(printTerm(Ctx, *Second), "'x");
}

TEST_F(EngineEpochs, ResetStatsZeroesEveryCounterAndRebaselines) {
  ASSERT_TRUE(static_cast<bool>(
      Engine->normalize(parse("FRONT(ADD(ADD(NEW, 'a), 'b))"))));
  ASSERT_TRUE(static_cast<bool>(
      Engine->normalize(parse("FRONT(ADD(ADD(NEW, 'a), 'b))"))));
  Ctx.truncateToEpoch(Base);
  Engine->syncArenaStats();

  const EngineStats &Dirty = Engine->stats();
  EXPECT_GT(Dirty.Steps, 0u);
  EXPECT_GT(Dirty.CacheHits, 0u);
  EXPECT_GT(Dirty.CacheMisses, 0u);
  EXPECT_GT(Dirty.MatchAttempts, 0u);
  EXPECT_GT(Dirty.ArenaTruncations, 0u);
  EXPECT_GT(Dirty.ArenaTermsFreed, 0u);
  EXPECT_GT(Dirty.ArenaBytesFreed, 0u);

  Engine->resetStats();
  const EngineStats &S = Engine->stats();
  // Every counter added since the stats block grew must be audited here:
  // a field this test does not pin is a field resetStats can miss.
  EXPECT_EQ(S.Steps, 0u);
  EXPECT_EQ(S.CacheHits, 0u);
  EXPECT_EQ(S.CacheMisses, 0u);
  EXPECT_EQ(S.Evictions, 0u);
  EXPECT_EQ(S.Rebuilds, 0u);
  EXPECT_EQ(S.MatchAttempts, 0u);
  EXPECT_EQ(S.AutomatonVisits, 0u);
  // The truncation deltas restart from the re-captured baseline; the
  // arena gauges re-sync to the context's current live state.
  EXPECT_EQ(S.ArenaTruncations, 0u);
  EXPECT_EQ(S.ArenaTermsFreed, 0u);
  EXPECT_EQ(S.ArenaBytesFreed, 0u);
  EXPECT_EQ(S.ArenaTerms, Ctx.numTerms());
  EXPECT_EQ(S.ArenaHighWater, Ctx.numTerms());
}

TEST_F(EngineEpochs, EnumeratorPrunesFreedEntriesAndKeepsSurvivors) {
  TermEnumerator Enum(Ctx);
  SortId Item = Ctx.lookupSort("Item");
  SortId Queue = Ctx.lookupSort("Queue");
  ASSERT_TRUE(Item.isValid());
  ASSERT_TRUE(Queue.isValid());

  size_t Items = Enum.enumerate(Item, 1).size();
  ArenaEpoch Mid = Ctx.markEpoch();
  size_t Queues = Enum.enumerate(Queue, 3).size();
  ASSERT_GT(Queues, 0u);
  ASSERT_GT(Enum.fillHighWater(), Mid.NumTerms);

  Ctx.truncateToEpoch(Mid);
  Enum.onTruncated();
  EXPECT_LE(Enum.fillHighWater(), Mid.NumTerms);

  // The surviving entry still serves; the pruned one rebuilds to the
  // same size (enumeration is deterministic).
  EXPECT_EQ(Enum.enumerate(Item, 1).size(), Items);
  EXPECT_EQ(Enum.enumerate(Queue, 3).size(), Queues);
}

TEST_F(EngineEpochs, EnumeratorLazilyInvalidatesWithoutNotification) {
  TermEnumerator Enum(Ctx);
  SortId Queue = Ctx.lookupSort("Queue");
  size_t Queues = Enum.enumerate(Queue, 3).size();
  Ctx.truncateToEpoch(Base);
  // No onTruncated() here: the generation check alone must catch the
  // stale entry on the next lookup.
  EXPECT_EQ(Enum.enumerate(Queue, 3).size(), Queues);
}
