//===----------------------------------------------------------------------===//
//
// Part of AlgSpec. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the BlockLang compiler front end: lexing, parsing, scope and
/// type checking — and the interchangeability of the symbol-table
/// backends, including the specification-interpreted one.
///
//===----------------------------------------------------------------------===//

#include "adt/FlatSymbolTable.h"
#include "adt/ListSymbolTable.h"
#include "adt/SymbolTable.h"
#include "blocklang/Interp.h"
#include "blocklang/Lexer.h"
#include "blocklang/Parser.h"
#include "blocklang/ScopedTable.h"
#include "blocklang/Sema.h"
#include "support/SourceMgr.h"

#include <gtest/gtest.h>

#include <map>

using namespace algspec;
using namespace algspec::blocklang;

//===----------------------------------------------------------------------===//
// Lexer
//===----------------------------------------------------------------------===//

TEST(BlockLexerTest, TokensAndComments) {
  SourceMgr SM("p.bl", "begin // comment\n  var x : int;\n  x := x + 1;\n"
                       "end");
  Lexer Lex(SM);
  std::vector<TokKind> Kinds;
  while (true) {
    Tok T = Lex.next();
    Kinds.push_back(T.Kind);
    if (T.is(TokKind::Eof))
      break;
  }
  std::vector<TokKind> Expected = {
      TokKind::KwBegin, TokKind::KwVar,   TokKind::Ident, TokKind::Colon,
      TokKind::KwInt,   TokKind::Semi,    TokKind::Ident, TokKind::Assign,
      TokKind::Ident,   TokKind::Plus,    TokKind::IntLit, TokKind::Semi,
      TokKind::KwEnd,   TokKind::Eof};
  EXPECT_EQ(Kinds, Expected);
}

TEST(BlockLexerTest, AssignVsColonVsEqEq) {
  SourceMgr SM("p.bl", ": := = ==");
  Lexer Lex(SM);
  EXPECT_EQ(Lex.next().Kind, TokKind::Colon);
  EXPECT_EQ(Lex.next().Kind, TokKind::Assign);
  EXPECT_EQ(Lex.next().Kind, TokKind::Unknown); // Bare '=' is not a token.
  EXPECT_EQ(Lex.next().Kind, TokKind::EqEq);
}

//===----------------------------------------------------------------------===//
// Parser
//===----------------------------------------------------------------------===//

static Program parse(const std::string &Source, DiagnosticEngine &Diags,
                     Dialect D = Dialect::Plain) {
  SourceMgr SM("p.bl", Source);
  return parseProgram(SM, Diags, D);
}

TEST(BlockParserTest, NestedBlocks) {
  DiagnosticEngine Diags;
  Program P = parse(R"(
begin
  var x : int;
  begin
    var y : bool;
  end;
  x := 1;
end
)",
                    Diags);
  ASSERT_FALSE(Diags.hasErrors()) << Diags.render();
  ASSERT_NE(P.Top, nullptr);
  ASSERT_EQ(P.Top->Body.size(), 3u);
  EXPECT_EQ(P.Top->Body[0].K, Stmt::Kind::Decl);
  EXPECT_EQ(P.Top->Body[1].K, Stmt::Kind::Nested);
  EXPECT_EQ(P.Top->Body[2].K, Stmt::Kind::Assign);
  EXPECT_EQ(P.Top->Body[1].Nested->Body.size(), 1u);
}

TEST(BlockParserTest, ExpressionsLeftAssociative) {
  DiagnosticEngine Diags;
  Program P = parse("begin var x : int; x := 1 + 2 + 3; end", Diags);
  ASSERT_FALSE(Diags.hasErrors()) << Diags.render();
  const Expr &E = *P.Top->Body[1].Value;
  ASSERT_EQ(E.K, Expr::Kind::Binary);
  EXPECT_EQ(E.Rhs->IntValue, 3);
  ASSERT_EQ(E.Lhs->K, Expr::Kind::Binary);
  EXPECT_EQ(E.Lhs->Lhs->IntValue, 1);
}

TEST(BlockParserTest, KnowsClauseParsedInKnowsDialect) {
  DiagnosticEngine Diags;
  Program P = parse("begin var g : int; begin knows g; g := 1; end; end",
                    Diags, Dialect::Knows);
  ASSERT_FALSE(Diags.hasErrors()) << Diags.render();
  const Block &Inner = *P.Top->Body[1].Nested;
  EXPECT_TRUE(Inner.HasKnowsClause);
  ASSERT_EQ(Inner.Knows.size(), 1u);
  EXPECT_EQ(Inner.Knows[0], "g");
}

TEST(BlockParserTest, KnowsClauseRejectedInPlainDialect) {
  DiagnosticEngine Diags;
  parse("begin begin knows g; end; end", Diags, Dialect::Plain);
  EXPECT_TRUE(Diags.hasErrors());
}

TEST(BlockParserTest, SyntaxErrorsDiagnosed) {
  DiagnosticEngine Diags;
  parse("begin var ; end", Diags);
  EXPECT_TRUE(Diags.hasErrors());
  DiagnosticEngine Diags2;
  parse("begin x := ; end", Diags2);
  EXPECT_TRUE(Diags2.hasErrors());
  DiagnosticEngine Diags3;
  parse("begin", Diags3);
  EXPECT_TRUE(Diags3.hasErrors());
}

//===----------------------------------------------------------------------===//
// Sema over every backend (typed tests prove interchangeability)
//===----------------------------------------------------------------------===//

namespace {

/// Factory per backend type so typed tests can instantiate uniformly.
template <typename T> struct MakeTable {
  static std::unique_ptr<ScopedTable> make() {
    return std::make_unique<T>();
  }
};
struct SpecBacked {
  static std::unique_ptr<ScopedTable> make() {
    auto Created = SpecScopedTable::create();
    EXPECT_TRUE(static_cast<bool>(Created));
    return Created ? std::move(*Created) : nullptr;
  }
};
struct HashBacked
    : MakeTable<ConcreteScopedTable<adt::SymbolTable<Type>>> {};
struct ListBacked
    : MakeTable<ConcreteScopedTable<adt::ListSymbolTable<Type>>> {};
struct FlatBacked
    : MakeTable<ConcreteScopedTable<adt::FlatSymbolTable<Type>>> {};

template <typename Backend> class SemaOverBackend : public ::testing::Test {
protected:
  bool compileSource(const std::string &Source) {
    std::unique_ptr<ScopedTable> Table = Backend::make();
    if (!Table)
      return false;
    SourceMgr SM("p.bl", Source);
    Diags.clear();
    return compile(SM, *Table, Diags, Dialect::Plain, &Stats);
  }

  DiagnosticEngine Diags;
  SemaStats Stats;
};

using Backends =
    ::testing::Types<HashBacked, ListBacked, FlatBacked, SpecBacked>;
TYPED_TEST_SUITE(SemaOverBackend, Backends);

} // namespace

TYPED_TEST(SemaOverBackend, WellFormedProgramAccepted) {
  EXPECT_TRUE(this->compileSource(R"(
begin
  var x : int;
  var flag : bool;
  x := 3;
  flag := x < 4;
  begin
    var x : bool;
    x := flag;
  end;
  x := x + 1;
end
)")) << this->Diags.render();
  EXPECT_EQ(this->Stats.Declarations, 3u);
  EXPECT_EQ(this->Stats.BlocksEntered, 1u);
}

TYPED_TEST(SemaOverBackend, DuplicateDeclarationRejected) {
  EXPECT_FALSE(this->compileSource(
      "begin var x : int; var x : bool; end"));
  std::string Out = this->Diags.render();
  EXPECT_NE(Out.find("duplicate declaration of 'x'"), std::string::npos);
}

TYPED_TEST(SemaOverBackend, ShadowingInInnerBlockAllowed) {
  EXPECT_TRUE(this->compileSource(
      "begin var x : int; begin var x : bool; x := true; end; end"))
      << this->Diags.render();
}

TYPED_TEST(SemaOverBackend, UndeclaredUseRejected) {
  EXPECT_FALSE(this->compileSource("begin var x : int; x := y; end"));
  EXPECT_NE(this->Diags.render().find("undeclared"), std::string::npos);
}

TYPED_TEST(SemaOverBackend, InnerDeclarationsExpireWithBlock) {
  EXPECT_FALSE(this->compileSource(
      "begin begin var t : int; t := 1; end; t := 2; end"));
}

TYPED_TEST(SemaOverBackend, TypeMismatchesRejected) {
  EXPECT_FALSE(this->compileSource(
      "begin var x : int; x := true; end"));
  EXPECT_FALSE(this->compileSource(
      "begin var b : bool; b := b + 1; end"));
  EXPECT_FALSE(this->compileSource(
      "begin var b : bool; var x : int; b := b == x; end"));
}

TYPED_TEST(SemaOverBackend, ShadowTypeChangesChecked) {
  // Outer x : int, inner x : bool — the inner assignment must check
  // against bool, the one after the block against int again.
  EXPECT_TRUE(this->compileSource(R"(
begin
  var x : int;
  begin
    var x : bool;
    x := true;
  end;
  x := 5;
end
)")) << this->Diags.render();
  EXPECT_FALSE(this->compileSource(R"(
begin
  var x : int;
  begin
    var x : bool;
    x := 1;
  end;
end
)"));
}

//===----------------------------------------------------------------------===//
// Knows dialect semantics end-to-end
//===----------------------------------------------------------------------===//

namespace {

/// Both knows-dialect backends: the concrete C++ table and the adapted
/// specification interpreted symbolically — the paper's "only the
/// ENTERBLOCK relations changed" claim, demonstrated at the backend
/// boundary.
struct ConcreteKnows {
  static std::unique_ptr<ScopedTable> make() {
    return std::make_unique<KnowsScopedTable>();
  }
};
struct SpecKnows {
  static std::unique_ptr<ScopedTable> make() {
    auto Created = SpecKnowsScopedTable::create();
    EXPECT_TRUE(static_cast<bool>(Created));
    return Created ? std::move(*Created) : nullptr;
  }
};

template <typename Backend> class KnowsDialect : public ::testing::Test {
protected:
  bool compileKnows(const std::string &Source, DiagnosticEngine &Diags) {
    std::unique_ptr<ScopedTable> Table = Backend::make();
    if (!Table)
      return false;
    SourceMgr SM("p.bl", Source);
    return compile(SM, *Table, Diags, Dialect::Knows);
  }
};

using KnowsBackends = ::testing::Types<ConcreteKnows, SpecKnows>;
TYPED_TEST_SUITE(KnowsDialect, KnowsBackends);

} // namespace

TYPED_TEST(KnowsDialect, KnownGlobalVisible) {
  DiagnosticEngine Diags;
  EXPECT_TRUE(this->compileKnows(R"(
begin
  var g : int;
  begin knows g;
    g := 4;
  end;
end
)",
                           Diags))
      << Diags.render();
}

TYPED_TEST(KnowsDialect, UnknownGlobalInvisible) {
  DiagnosticEngine Diags;
  EXPECT_FALSE(this->compileKnows(R"(
begin
  var g : int;
  var h : int;
  begin knows h;
    g := 4;
  end;
end
)",
                            Diags));
  EXPECT_NE(Diags.render().find("invisible"), std::string::npos);
}

TYPED_TEST(KnowsDialect, KnowsDoesNotLeakThroughNesting) {
  // The middle block knows g, the inner one does not.
  DiagnosticEngine Diags;
  EXPECT_FALSE(this->compileKnows(R"(
begin
  var g : int;
  begin knows g;
    begin
      g := 1;
    end;
  end;
end
)",
                            Diags));
}

TYPED_TEST(KnowsDialect, LocalsNeedNoKnows) {
  DiagnosticEngine Diags;
  EXPECT_TRUE(this->compileKnows(R"(
begin
  begin
    var l : bool;
    l := true;
  end;
end
)",
                           Diags))
      << Diags.render();
}

//===----------------------------------------------------------------------===//
// Interpreter
//===----------------------------------------------------------------------===//

namespace {

std::map<std::string, RuntimeValue> runProgram(const std::string &Source) {
  SourceMgr SM("p.bl", Source);
  DiagnosticEngine Diags;
  Program P = parseProgram(SM, Diags);
  EXPECT_FALSE(Diags.hasErrors()) << Diags.render(&SM);
  ConcreteScopedTable<adt::SymbolTable<Type>> Table;
  checkProgram(P, Table, Diags);
  EXPECT_FALSE(Diags.hasErrors()) << Diags.render(&SM);
  auto Result = interpret(P);
  EXPECT_TRUE(static_cast<bool>(Result)) << Result.error().message();
  return Result ? *Result : std::map<std::string, RuntimeValue>();
}

} // namespace

TEST(InterpTest, ArithmeticAndAssignment) {
  auto Vars = runProgram(R"(
begin
  var x : int;
  var y : int;
  x := 1 + 2 + 3;
  y := x + 10;
end
)");
  EXPECT_EQ(Vars.at("x"), RuntimeValue::ofInt(6));
  EXPECT_EQ(Vars.at("y"), RuntimeValue::ofInt(16));
}

TEST(InterpTest, ComparisonsYieldBools) {
  auto Vars = runProgram(R"(
begin
  var a : bool;
  var b : bool;
  var c : bool;
  a := 1 < 2;
  b := 2 < 1;
  c := a == b;
end
)");
  EXPECT_EQ(Vars.at("a"), RuntimeValue::ofBool(true));
  EXPECT_EQ(Vars.at("b"), RuntimeValue::ofBool(false));
  EXPECT_EQ(Vars.at("c"), RuntimeValue::ofBool(false));
}

TEST(InterpTest, ShadowedVariableRestoredAfterBlock) {
  auto Vars = runProgram(R"(
begin
  var x : int;
  x := 1;
  begin
    var x : int;
    x := 99;
  end;
  x := x + 1;
end
)");
  EXPECT_EQ(Vars.at("x"), RuntimeValue::ofInt(2));
}

TEST(InterpTest, InnerBlockUpdatesOuterVariable) {
  auto Vars = runProgram(R"(
begin
  var total : int;
  begin
    total := total + 40;
    begin
      total := total + 2;
    end;
  end;
end
)");
  EXPECT_EQ(Vars.at("total"), RuntimeValue::ofInt(42));
}

TEST(InterpTest, DeclarationsDefaultToZeroFalse) {
  auto Vars = runProgram("begin var n : int; var f : bool; end");
  EXPECT_EQ(Vars.at("n"), RuntimeValue::ofInt(0));
  EXPECT_EQ(Vars.at("f"), RuntimeValue::ofBool(false));
}

TEST(InterpTest, InnerVariablesDoNotEscape) {
  auto Vars = runProgram(R"(
begin
  var keep : int;
  begin
    var gone : int;
    gone := 7;
    keep := gone;
  end;
end
)");
  EXPECT_EQ(Vars.at("keep"), RuntimeValue::ofInt(7));
  EXPECT_EQ(Vars.count("gone"), 0u);
}

TEST(InterpTest, UncheckedBadProgramFailsGracefully) {
  SourceMgr SM("p.bl", "begin x := 1; end");
  DiagnosticEngine Diags;
  Program P = parseProgram(SM, Diags);
  ASSERT_FALSE(Diags.hasErrors());
  auto Result = interpret(P); // Skipped Sema on purpose.
  ASSERT_FALSE(static_cast<bool>(Result));
  EXPECT_NE(Result.error().message().find("not checked"),
            std::string::npos);
}

//===----------------------------------------------------------------------===//
// if / while statements
//===----------------------------------------------------------------------===//

TEST(ControlFlowTest, IfThenElseParsesAndChecks) {
  DiagnosticEngine Diags;
  Program P = parse(R"(
begin
  var x : int;
  if x < 1 then
    x := 10;
  else
    x := 20;
  end;
end
)",
                    Diags);
  ASSERT_FALSE(Diags.hasErrors()) << Diags.render();
  const Stmt &If = P.Top->Body[1];
  ASSERT_EQ(If.K, Stmt::Kind::If);
  EXPECT_EQ(If.ThenBody.size(), 1u);
  EXPECT_EQ(If.ElseBody.size(), 1u);
}

TEST(ControlFlowTest, NonBoolConditionRejected) {
  DiagnosticEngine Diags;
  Program P = parse("begin var x : int; if x + 1 then x := 1; end; end",
                    Diags);
  ASSERT_FALSE(Diags.hasErrors());
  ConcreteScopedTable<adt::SymbolTable<Type>> Table;
  checkProgram(P, Table, Diags);
  EXPECT_TRUE(Diags.hasErrors());
  EXPECT_NE(Diags.render().find("bool condition"), std::string::npos);
}

TEST(ControlFlowTest, DeclarationInsideIfBodyRejected) {
  DiagnosticEngine Diags;
  Program P = parse(
      "begin var b : bool; if b then var x : int; end; end", Diags);
  ASSERT_FALSE(Diags.hasErrors());
  ConcreteScopedTable<adt::SymbolTable<Type>> Table;
  checkProgram(P, Table, Diags);
  EXPECT_TRUE(Diags.hasErrors());
  EXPECT_NE(Diags.render().find("only allowed directly in a block"),
            std::string::npos);
}

TEST(ControlFlowTest, NestedBlockInsideIfOpensScope) {
  // Declarations are fine inside an if body when wrapped in a block.
  auto Vars = runProgram(R"(
begin
  var b : bool;
  var keep : int;
  b := true;
  if b then
    begin
      var t : int;
      t := 5;
      keep := t;
    end;
  end;
end
)");
  EXPECT_EQ(Vars.at("keep"), RuntimeValue::ofInt(5));
}

TEST(ControlFlowTest, IfTakesCorrectBranch) {
  auto Vars = runProgram(R"(
begin
  var x : int;
  var y : int;
  if x == 0 then
    y := 1;
  else
    y := 2;
  end;
  if 0 < x then
    x := 100;
  end;
end
)");
  EXPECT_EQ(Vars.at("y"), RuntimeValue::ofInt(1));
  EXPECT_EQ(Vars.at("x"), RuntimeValue::ofInt(0));
}

TEST(ControlFlowTest, WhileComputesTriangularNumber) {
  auto Vars = runProgram(R"(
begin
  var i : int;
  var sum : int;
  while i < 10 do
    i := i + 1;
    sum := sum + i;
  end;
end
)");
  EXPECT_EQ(Vars.at("sum"), RuntimeValue::ofInt(55));
  EXPECT_EQ(Vars.at("i"), RuntimeValue::ofInt(10));
}

TEST(ControlFlowTest, NestedWhileFibonacci) {
  auto Vars = runProgram(R"(
begin
  var a : int;
  var b : int;
  var t : int;
  var n : int;
  b := 1;
  while n < 10 do
    t := a + b;
    a := b;
    b := t;
    n := n + 1;
  end;
end
)");
  EXPECT_EQ(Vars.at("a"), RuntimeValue::ofInt(55)); // fib(10)
}

TEST(ControlFlowTest, RunawayLoopIsCapped) {
  SourceMgr SM("p.bl", R"(
begin
  var b : bool;
  b := true;
  while b do
    b := true;
  end;
end
)");
  DiagnosticEngine Diags;
  Program P = parseProgram(SM, Diags);
  ASSERT_FALSE(Diags.hasErrors());
  auto Result = interpret(P);
  ASSERT_FALSE(static_cast<bool>(Result));
  EXPECT_NE(Result.error().message().find("iteration limit"),
            std::string::npos);
}

TEST(ControlFlowTest, WhileLookupsGoThroughSymbolTable) {
  // Sema statistics must count the lookups inside statement bodies.
  SourceMgr SM("p.bl", R"(
begin
  var i : int;
  while i < 3 do
    i := i + 1;
  end;
end
)");
  DiagnosticEngine Diags;
  ConcreteScopedTable<adt::SymbolTable<Type>> Table;
  SemaStats Stats;
  ASSERT_TRUE(compile(SM, Table, Diags, Dialect::Plain, &Stats));
  EXPECT_GE(Stats.Lookups, 3u); // Condition + both sides of the assign.
}

TEST(BlockLexerTest, HugeIntegerLiteralIsRejectedNotCrash) {
  SourceMgr SM("p.bl", "99999999999999999999999999");
  Lexer Lex(SM);
  EXPECT_EQ(Lex.next().Kind, TokKind::Unknown);
}
