//===----------------------------------------------------------------------===//
//
// Part of AlgSpec. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Executes docs/TUTORIAL.md step by step, so the tutorial cannot rot:
/// a Dictionary type is specified, skeleton-prompted, checked, executed
/// symbolically, model-tested against a real implementation, refined to
/// a cons-list representation, and verified — including the sabotage the
/// tutorial's last paragraph promises the verifier will catch.
///
//===----------------------------------------------------------------------===//

#include "core/AlgSpec.h"

#include <gtest/gtest.h>

#include <string>
#include <unordered_map>

using namespace algspec;

namespace {

/// Tutorial step 1 + 3: the Dict specification.
const char *DictAlg = R"(
spec Dict
  uses Identifier
  sorts Dict
  ops
    EMPTY_DICT : -> Dict
    BIND       : Dict, Identifier, Int -> Dict
    GET        : Dict, Identifier -> Int
    HAS?       : Dict, Identifier -> Bool
    UNBIND     : Dict, Identifier -> Dict
  constructors EMPTY_DICT, BIND
  vars
    d    : Dict
    k, j : Identifier
    v    : Int
  axioms
    GET(EMPTY_DICT, k) = error
    GET(BIND(d, k, v), j) = if SAME(k, j) then v else GET(d, j)
    HAS?(EMPTY_DICT, k) = false
    HAS?(BIND(d, k, v), j) = if SAME(k, j) then true else HAS?(d, j)
    UNBIND(EMPTY_DICT, k) = EMPTY_DICT
    UNBIND(BIND(d, k, v), j) =
      if SAME(k, j) then UNBIND(d, j) else BIND(UNBIND(d, j), k, v)
end
)";

/// Tutorial step 7: the representation (cons-list of pairs), the
/// implementation map, and the abstraction function.
const char *DictRepAlg = R"(
spec DictList
  uses Identifier
  sorts DictList
  ops
    DNIL  : -> DictList
    DCONS : DictList, Identifier, Int -> DictList
  constructors DNIL, DCONS
end

spec DictImpl
  ops
    EMPTY_DICT_R : -> DictList
    BIND_R       : DictList, Identifier, Int -> DictList
    GET_R        : DictList, Identifier -> Int
    HAS_R?       : DictList, Identifier -> Bool
    UNBIND_R     : DictList, Identifier -> DictList
  vars
    l    : DictList
    k, j : Identifier
    v    : Int
  axioms
    EMPTY_DICT_R = DNIL
    BIND_R(l, k, v) = DCONS(l, k, v)
    GET_R(DNIL, k) = error
    GET_R(DCONS(l, k, v), j) = if SAME(k, j) then v else GET_R(l, j)
    HAS_R?(DNIL, k) = false
    HAS_R?(DCONS(l, k, v), j) = if SAME(k, j) then true else HAS_R?(l, j)
    UNBIND_R(DNIL, k) = DNIL
    UNBIND_R(DCONS(l, k, v), j) =
      if SAME(k, j) then UNBIND_R(l, j)
      else DCONS(UNBIND_R(l, j), k, v)
end

spec DictPhi
  ops
    DPHI : DictList -> Dict
  vars
    l : DictList
    k : Identifier
    v : Int
  axioms
    DPHI(DNIL) = EMPTY_DICT
    DPHI(DCONS(l, k, v)) = BIND(DPHI(l), k, v)
end
)";

/// A broken UNBIND_R that stops at the first match, leaving shadowed
/// older bindings alive (the tutorial's promised sabotage).
const char *BrokenUnbindAlg = R"(
spec BrokenImpl
  ops
    BUNBIND_R : DictList, Identifier -> DictList
  vars
    l    : DictList
    k, j : Identifier
    v    : Int
  axioms
    BUNBIND_R(DNIL, k) = DNIL
    BUNBIND_R(DCONS(l, k, v), j) =
      if SAME(k, j) then l else DCONS(BUNBIND_R(l, j), k, v)
end
)";

/// Step 6's real implementation.
class DictImpl {
public:
  void bind(const std::string &Key, int64_t Value) { Map[Key] = Value; }
  void unbind(const std::string &Key) { Map.erase(Key); }
  std::optional<int64_t> get(const std::string &Key) const {
    auto It = Map.find(Key);
    if (It == Map.end())
      return std::nullopt;
    return It->second;
  }
  bool has(const std::string &Key) const { return Map.count(Key) != 0; }

  friend bool operator==(const DictImpl &A, const DictImpl &B) {
    return A.Map == B.Map;
  }

private:
  std::unordered_map<std::string, int64_t> Map;
};

RepMapping dictMapping(Workspace &WS, const char *UnbindImpl = "UNBIND_R") {
  AlgebraContext &Ctx = WS.context();
  RepMapping Mapping;
  Mapping.AbstractSort = Ctx.lookupSort("Dict");
  Mapping.RepSort = Ctx.lookupSort("DictList");
  Mapping.Phi = Ctx.lookupOp("DPHI");
  Mapping.OpMap.emplace(Ctx.lookupOp("EMPTY_DICT"),
                        Ctx.lookupOp("EMPTY_DICT_R"));
  Mapping.OpMap.emplace(Ctx.lookupOp("BIND"), Ctx.lookupOp("BIND_R"));
  Mapping.OpMap.emplace(Ctx.lookupOp("GET"), Ctx.lookupOp("GET_R"));
  Mapping.OpMap.emplace(Ctx.lookupOp("HAS?"), Ctx.lookupOp("HAS_R?"));
  Mapping.OpMap.emplace(Ctx.lookupOp("UNBIND"),
                        Ctx.lookupOp(UnbindImpl));
  return Mapping;
}

} // namespace

TEST(TutorialTest, Step2SkeletonPromptsTheSixCases) {
  Workspace WS;
  ASSERT_TRUE(static_cast<bool>(WS.load(DictAlg, "dict.alg")));
  SkeletonReport Skeleton =
      generateSkeletons(WS.context(), *WS.find("Dict"));
  EXPECT_EQ(Skeleton.Cases.size(), 6u);
  std::string Text = Skeleton.render(WS.context());
  EXPECT_NE(Text.find("GET(EMPTY_DICT, identifier) = ?"),
            std::string::npos)
      << Text;
  EXPECT_NE(
      Text.find("UNBIND(BIND(dict, identifier, int), identifier1) = ?"),
      std::string::npos)
      << Text;
}

TEST(TutorialTest, Step4ChecksPass) {
  Workspace WS;
  ASSERT_TRUE(static_cast<bool>(WS.load(DictAlg, "dict.alg")));
  CompletenessReport Complete = WS.checkComplete(*WS.find("Dict"));
  EXPECT_TRUE(Complete.SufficientlyComplete)
      << Complete.renderPrompt(WS.context());
  ConsistencyReport Consistent = WS.checkConsistent();
  EXPECT_TRUE(Consistent.Consistent) << Consistent.render(WS.context());
  CompletenessReport Dynamic = checkCompletenessDynamic(
      WS.context(), *WS.find("Dict"), WS.specPointers(), 3);
  EXPECT_TRUE(Dynamic.SufficientlyComplete);
}

TEST(TutorialTest, Step4AnalyzeReadsTheErrorAlgebra) {
  Workspace WS;
  ASSERT_TRUE(static_cast<bool>(WS.load(DictAlg, "dict.alg")));
  ErrorFlowReport Report =
      analyzeErrorFlow(WS.context(), WS.specPointers());
  std::string Text = Report.render(WS.context());
  EXPECT_NE(Text.find("Dict.GET: may-error"), std::string::npos) << Text;
  EXPECT_NE(Text.find("GET(EMPTY_DICT, k): always-error"),
            std::string::npos)
      << Text;
  EXPECT_NE(Text.find("GET(BIND(d, k, v), j): may-error when "
                      "not(SAME(k, j))"),
            std::string::npos)
      << Text;
  EXPECT_NE(Text.find("Dict.HAS?: never-error"), std::string::npos)
      << Text;
  EXPECT_NE(Text.find("Dict.UNBIND: never-error"), std::string::npos)
      << Text;
  // The one definedness obligation: GET is only owed on bound keys.
  ASSERT_EQ(Report.Obligations.size(), 1u);
  EXPECT_EQ(Report.Obligations[0].render(WS.context()),
            "GET(EMPTY_DICT, k) = error");
}

TEST(TutorialTest, Step5SymbolicExecution) {
  Workspace WS;
  ASSERT_TRUE(static_cast<bool>(WS.load(DictAlg, "dict.alg")));
  Session S = WS.session().take();
  ASSERT_TRUE(static_cast<bool>(
      S.runProgram("d := BIND(BIND(EMPTY_DICT, 'x, 1), 'y, 2)")));
  EXPECT_EQ(printTerm(WS.context(), *S.eval("GET(d, 'y)")), "2");
  EXPECT_EQ(printTerm(WS.context(),
                      *S.eval("GET(UNBIND(d, 'x), 'y)")),
            "2");
  EXPECT_TRUE(WS.context().isError(*S.eval("GET(UNBIND(d, 'y), 'y)")));
}

TEST(TutorialTest, Step6ModelTestTheRealImplementation) {
  Workspace WS;
  ASSERT_TRUE(static_cast<bool>(WS.load(DictAlg, "dict.alg")));
  ModelBinding B(WS.context());
  B.bindOp("EMPTY_DICT",
           [](std::span<const Value>) { return Value::of(DictImpl()); });
  B.bindOp("BIND", [](std::span<const Value> Args) {
    DictImpl D = Args[0].get<DictImpl>();
    D.bind(Args[1].get<std::string>(), Args[2].get<int64_t>());
    return Value::of(std::move(D));
  });
  B.bindOp("GET", [](std::span<const Value> Args) {
    auto V = Args[0].get<DictImpl>().get(Args[1].get<std::string>());
    return V ? Value::of(*V) : Value::error();
  });
  B.bindOp("HAS?", [](std::span<const Value> Args) {
    return Value::of(
        Args[0].get<DictImpl>().has(Args[1].get<std::string>()));
  });
  B.bindOp("UNBIND", [](std::span<const Value> Args) {
    DictImpl D = Args[0].get<DictImpl>();
    D.unbind(Args[1].get<std::string>());
    return Value::of(std::move(D));
  });
  B.bindEquals(WS.context().lookupSort("Dict"),
               [](const Value &A, const Value &B2) {
                 return A.get<DictImpl>() == B2.get<DictImpl>();
               });

  ModelTestOptions Options;
  Options.MaxDepth = 4;
  ModelTestReport Report =
      testModel(WS.context(), *WS.find("Dict"), B, Options);
  EXPECT_TRUE(Report.AllPassed) << Report.render();
}

TEST(TutorialTest, Step7RepresentationVerifies) {
  Workspace WS;
  ASSERT_TRUE(static_cast<bool>(WS.load(DictAlg, "dict.alg")));
  ASSERT_TRUE(static_cast<bool>(WS.load(DictRepAlg, "dict_rep.alg")));
  RepMapping Mapping = dictMapping(WS);

  VerifyOptions Options;
  Options.Domain = ValueDomain::Reachable;
  Options.Depth = 4;
  VerifyReport Axioms = verifyRepresentation(
      WS.context(), *WS.find("Dict"), WS.specPointers(), Mapping, Options);
  EXPECT_TRUE(Axioms.AllHold) << Axioms.render(WS.context());

  VerifyReport Hom = verifyHomomorphism(
      WS.context(), *WS.find("Dict"), WS.specPointers(), Mapping, Options);
  EXPECT_TRUE(Hom.AllHold) << Hom.render(WS.context());
}

TEST(TutorialTest, Step7SabotagedUnbindIsCaught) {
  Workspace WS;
  ASSERT_TRUE(static_cast<bool>(WS.load(DictAlg, "dict.alg")));
  ASSERT_TRUE(static_cast<bool>(WS.load(DictRepAlg, "dict_rep.alg")));
  ASSERT_TRUE(static_cast<bool>(WS.load(BrokenUnbindAlg, "broken.alg")));
  RepMapping Mapping = dictMapping(WS, "BUNBIND_R");

  VerifyOptions Options;
  Options.Domain = ValueDomain::Reachable;
  Options.Depth = 4;
  VerifyReport Report = verifyRepresentation(
      WS.context(), *WS.find("Dict"), WS.specPointers(), Mapping, Options);
  EXPECT_FALSE(Report.AllHold)
      << "the shadow-leaking UNBIND should fail\n"
      << Report.render(WS.context());
}
