//===----------------------------------------------------------------------===//
//
// Part of AlgSpec. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Differential tests pinning the equality-saturation oracle to the
/// plain sweeps: every checker and verifier report must be
/// byte-identical between `--egraph=off`, `auto`, and `on`, at any job
/// count. The e-graph is a *screen* — it may only skip work whose
/// outcome it proved, never change a verdict, a finding, or a caveat —
/// and these tests are the contract that keeps it one. The sweep covers
/// every builtin spec and the example spec files for the consistency
/// checker, and the paper's Symboltable representation proof for the
/// verifier.
///
//===----------------------------------------------------------------------===//

#include "ast/AlgebraContext.h"
#include "check/Consistency.h"
#include "check/Convergence.h"
#include "check/TermEnumerator.h"
#include "parser/Parser.h"
#include "rewrite/Engine.h"
#include "specs/BuiltinSpecs.h"
#include "verify/RepVerifier.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

using namespace algspec;

namespace {

std::string readFileOrEmpty(const std::string &Path) {
  std::ifstream In(Path);
  if (!In)
    return {};
  std::ostringstream Buffer;
  Buffer << In.rdbuf();
  return Buffer.str();
}

/// One differential case: a set of spec buffers loaded together.
struct EGraphDiffCase {
  const char *Name;
};

/// The buffers of a case, resolved at runtime (example files are read
/// from the source tree). Mirrors DifferentialTest.cpp's catalogue so
/// the two sweeps cover the same specs.
std::vector<std::pair<std::string, std::string>>
sourcesFor(const std::string &Name) {
  auto Builtin = [](std::string_view Text, const char *Buf) {
    return std::make_pair(std::string(Buf), std::string(Text));
  };
  if (Name == "queue")
    return {Builtin(specs::QueueAlg, "queue.alg")};
  if (Name == "symboltable")
    return {Builtin(specs::SymboltableAlg, "symboltable.alg")};
  if (Name == "stackarray")
    return {Builtin(specs::StackArrayAlg, "stackarray.alg")};
  if (Name == "knowlist")
    return {Builtin(specs::KnowlistAlg, "knowlist.alg")};
  if (Name == "knows_symboltable")
    return {Builtin(specs::KnowsSymboltableAlg, "knows_symboltable.alg")};
  if (Name == "nat")
    return {Builtin(specs::NatAlg, "nat.alg")};
  if (Name == "set")
    return {Builtin(specs::SetAlg, "set.alg")};
  if (Name == "list")
    return {Builtin(specs::ListAlg, "list.alg")};
  if (Name == "bag")
    return {Builtin(specs::BagAlg, "bag.alg")};
  if (Name == "bst")
    return {Builtin(specs::BstAlg, "bst.alg")};
  if (Name == "table")
    return {Builtin(specs::TableAlg, "table.alg")};
  if (Name == "boundedqueue")
    return {Builtin(specs::BoundedQueueAlg, "boundedqueue.alg")};
  if (Name == "symboltable_impl")
    return {Builtin(specs::SymboltableAlg, "symboltable.alg"),
            Builtin(specs::StackArrayAlg, "stackarray.alg"),
            Builtin(specs::SymboltableImplAlg, "symboltable_impl.alg")};
  if (Name == "priority_queue_example")
    return {{"priority_queue.alg",
             readFileOrEmpty(ALGSPEC_SOURCE_DIR
                             "/examples/specs/priority_queue.alg")}};
  if (Name == "symboltable_impl_example")
    return {Builtin(specs::SymboltableAlg, "symboltable.alg"),
            Builtin(specs::StackArrayAlg, "stackarray.alg"),
            {"symboltable_impl.alg",
             readFileOrEmpty(ALGSPEC_SOURCE_DIR
                             "/examples/specs/symboltable_impl.alg")}};
  return {};
}

/// Loads one case fresh (each configuration gets its own context so
/// nothing can leak between runs).
class CaseFixture {
public:
  explicit CaseFixture(const std::string &Name) {
    auto Sources = sourcesFor(Name);
    if (Sources.empty()) {
      ADD_FAILURE() << "unknown case " << Name;
      Ok = false;
      return;
    }
    for (auto &[Buf, Text] : Sources) {
      if (Text.empty()) {
        ADD_FAILURE() << Buf << " is empty or unreadable";
        Ok = false;
        return;
      }
      auto Parsed = specs::load(Ctx, Text, Buf);
      if (!Parsed) {
        ADD_FAILURE() << Parsed.error().message();
        Ok = false;
        return;
      }
      for (Spec &S : *Parsed)
        Specs.push_back(std::move(S));
    }
    for (const Spec &S : Specs)
      Ptrs.push_back(&S);
  }

  bool Ok = true;
  AlgebraContext Ctx;
  std::vector<Spec> Specs;
  std::vector<const Spec *> Ptrs;
};

/// The configurations every report must agree across: the oracle off
/// (the reference), consulted (auto), and forced (on); the screened
/// sweep additionally at several job counts.
struct OracleConfig {
  EqSatMode Mode;
  unsigned Jobs;
};

const OracleConfig Configs[] = {{EqSatMode::Off, 1},
                                {EqSatMode::Auto, 1},
                                {EqSatMode::On, 1},
                                {EqSatMode::Off, 4},
                                {EqSatMode::Auto, 4}};

const char *modeName(EqSatMode M) {
  switch (M) {
  case EqSatMode::Off:
    return "off";
  case EqSatMode::Auto:
    return "auto";
  case EqSatMode::On:
    return "on";
  }
  return "?";
}

class EGraphDifferential : public ::testing::TestWithParam<EGraphDiffCase> {};

TEST_P(EGraphDifferential, ConsistencyReportsAgreeAcrossModes) {
  const std::string Name = GetParam().Name;
  std::vector<std::string> Rendered;
  for (const OracleConfig &Cfg : Configs) {
    SCOPED_TRACE(std::string("egraph=") + modeName(Cfg.Mode) +
                 " jobs=" + std::to_string(Cfg.Jobs));
    CaseFixture F(Name);
    ASSERT_TRUE(F.Ok);
    // The convergence certificate is what arms the screen (its
    // local-joinability gate); passing it in every configuration keeps
    // the only variable the oracle mode itself.
    ConvergenceOptions CO;
    CO.KeepCertificates = false;
    ConvergenceReport Conv = certifyConvergence(F.Ctx, F.Ptrs, CO);
    ParallelOptions Par;
    Par.Jobs = Cfg.Jobs;
    ConsistencyReport R =
        checkConsistency(F.Ctx, F.Ptrs, /*GroundDepth=*/2,
                         EnumeratorOptions(), Par, EngineOptions(), &Conv,
                         Cfg.Mode);
    Rendered.push_back(R.render(F.Ctx) +
                       (R.Consistent ? "consistent" : "inconsistent"));
  }
  for (size_t C = 1; C != Rendered.size(); ++C)
    EXPECT_EQ(Rendered[0], Rendered[C])
        << Name << ": egraph=" << modeName(Configs[C].Mode)
        << " jobs=" << Configs[C].Jobs
        << " diverges from egraph=off jobs=1";
}

INSTANTIATE_TEST_SUITE_P(
    AllSpecs, EGraphDifferential,
    ::testing::Values(EGraphDiffCase{"queue"}, EGraphDiffCase{"symboltable"},
                      EGraphDiffCase{"stackarray"}, EGraphDiffCase{"knowlist"},
                      EGraphDiffCase{"knows_symboltable"},
                      EGraphDiffCase{"nat"}, EGraphDiffCase{"set"},
                      EGraphDiffCase{"list"}, EGraphDiffCase{"bag"},
                      EGraphDiffCase{"bst"}, EGraphDiffCase{"table"},
                      EGraphDiffCase{"boundedqueue"},
                      EGraphDiffCase{"symboltable_impl"},
                      EGraphDiffCase{"priority_queue_example"},
                      EGraphDiffCase{"symboltable_impl_example"}),
    [](const ::testing::TestParamInfo<EGraphDiffCase> &Info) {
      return std::string(Info.param.Name);
    });

//===----------------------------------------------------------------------===//
// Verifier-level differential: the paper's Symboltable proof, oracle on
// against oracle off.
//===----------------------------------------------------------------------===//

TEST(EGraphVerifierDifferential, SymboltableReportsAgreeAcrossModes) {
  std::string Reference;
  for (const OracleConfig &Cfg : Configs) {
    SCOPED_TRACE(std::string("egraph=") + modeName(Cfg.Mode) +
                 " jobs=" + std::to_string(Cfg.Jobs));
    AlgebraContext Ctx;
    auto Abstract = specs::loadSymboltable(Ctx);
    ASSERT_TRUE(static_cast<bool>(Abstract));
    Spec AbstractSpec = Abstract.take();
    auto Concrete = specs::loadStackArray(Ctx);
    ASSERT_TRUE(static_cast<bool>(Concrete));
    std::vector<Spec> ConcreteSpecs = Concrete.take();
    auto Rep = buildSymboltableRep(Ctx);
    ASSERT_TRUE(static_cast<bool>(Rep));
    SymboltableRep TheRep = Rep.take();
    std::vector<const Spec *> Sources = {&AbstractSpec};
    for (const Spec &S : ConcreteSpecs)
      Sources.push_back(&S);
    for (const Spec &S : TheRep.ImplSpecs)
      Sources.push_back(&S);

    VerifyOptions Options;
    Options.Domain = ValueDomain::Reachable;
    Options.Depth = 3;
    Options.EGraph = Cfg.Mode;
    Options.Par.Jobs = Cfg.Jobs;
    VerifyReport R = verifyRepresentation(Ctx, AbstractSpec, Sources,
                                          TheRep.Mapping, Options);
    std::string Text = R.render(Ctx);
    if (Reference.empty())
      Reference = Text;
    EXPECT_EQ(Text, Reference);
    EXPECT_TRUE(R.AllHold) << Text;
    // The flagship workload must actually exercise the oracle: with the
    // gate licensed, saturation runs and its counters land in the
    // report's engine block.
    if (Cfg.Mode != EqSatMode::Off)
      EXPECT_GT(R.Engine.EGraphNodes, 0u);
    else
      EXPECT_EQ(R.Engine.EGraphNodes, 0u);
  }
}

//===----------------------------------------------------------------------===//
// The homomorphism-only entry point goes through the same oracle.
//===----------------------------------------------------------------------===//

TEST(EGraphVerifierDifferential, HomomorphismReportsAgreeAcrossModes) {
  std::string Reference;
  for (EqSatMode Mode : {EqSatMode::Off, EqSatMode::Auto}) {
    SCOPED_TRACE(std::string("egraph=") + modeName(Mode));
    AlgebraContext Ctx;
    auto Abstract = specs::loadSymboltable(Ctx);
    ASSERT_TRUE(static_cast<bool>(Abstract));
    Spec AbstractSpec = Abstract.take();
    auto Concrete = specs::loadStackArray(Ctx);
    ASSERT_TRUE(static_cast<bool>(Concrete));
    std::vector<Spec> ConcreteSpecs = Concrete.take();
    auto Rep = buildSymboltableRep(Ctx);
    ASSERT_TRUE(static_cast<bool>(Rep));
    SymboltableRep TheRep = Rep.take();
    std::vector<const Spec *> Sources = {&AbstractSpec};
    for (const Spec &S : ConcreteSpecs)
      Sources.push_back(&S);
    for (const Spec &S : TheRep.ImplSpecs)
      Sources.push_back(&S);

    VerifyOptions Options;
    Options.Domain = ValueDomain::Reachable;
    Options.Depth = 3;
    Options.EGraph = Mode;
    VerifyReport R = verifyHomomorphism(Ctx, AbstractSpec, Sources,
                                        TheRep.Mapping, Options);
    std::string Text = R.render(Ctx);
    if (Reference.empty())
      Reference = Text;
    EXPECT_EQ(Text, Reference);
  }
}

} // namespace
