//===----------------------------------------------------------------------===//
//
// Part of AlgSpec. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Property-based and differential tests (parameterized sweeps):
///
///  - random op-sequence differential testing of the Queue spec against
///    the concrete Queue<T>;
///  - random workload differential testing of the three symbol-table
///    representations against each other and against the symbolically
///    interpreted specification;
///  - rewrite-engine invariants (idempotent normalization, memoization
///    transparency, no stuck terms under complete specs);
///  - print/parse round-tripping over enumerated ground terms;
///  - enumerator cardinalities against the closed-form counts.
///
//===----------------------------------------------------------------------===//

#include "adt/FlatSymbolTable.h"
#include "adt/ListSymbolTable.h"
#include "adt/Queue.h"
#include "adt/SymbolTable.h"
#include "ast/AlgebraContext.h"
#include "ast/TermPrinter.h"
#include "check/TermEnumerator.h"
#include "interp/Session.h"
#include "parser/Parser.h"
#include "rewrite/Engine.h"
#include "specs/BuiltinSpecs.h"

#include <gtest/gtest.h>

#include <memory>
#include <random>
#include <set>
#include <string>

using namespace algspec;

//===----------------------------------------------------------------------===//
// Differential: Queue spec vs Queue<T> over random op sequences
//===----------------------------------------------------------------------===//

namespace {

class QueueDifferential : public ::testing::TestWithParam<uint64_t> {};

} // namespace

TEST_P(QueueDifferential, SpecAndImplementationAgree) {
  AlgebraContext Ctx;
  Spec Q = specs::loadQueue(Ctx).take();
  Session Sess = Session::create(Ctx, {&Q}).take();
  ASSERT_TRUE(static_cast<bool>(Sess.run("x := NEW")));

  adt::Queue<std::string> Impl;
  std::mt19937_64 Rng(GetParam());
  std::uniform_int_distribution<int> OpDist(0, 99);
  std::uniform_int_distribution<int> ItemDist(0, 4);

  for (int Step = 0; Step < 120; ++Step) {
    int Roll = OpDist(Rng);
    if (Roll < 45) {
      // ADD a random item.
      std::string Item = "i" + std::to_string(ItemDist(Rng));
      ASSERT_TRUE(
          static_cast<bool>(Sess.run("x := ADD(x, '" + Item + ")")));
      Impl.add(Item);
    } else if (Roll < 75) {
      // REMOVE — only when non-empty, to keep the register a value (the
      // error-propagation path has its own tests).
      if (!Impl.isEmpty()) {
        ASSERT_TRUE(static_cast<bool>(Sess.run("x := REMOVE(x)")));
        Impl.remove();
      }
    } else if (Roll < 90) {
      // Observe FRONT.
      Result<TermId> Front = Sess.eval("FRONT(x)");
      ASSERT_TRUE(static_cast<bool>(Front));
      std::optional<std::string> ImplFront = Impl.front();
      if (!ImplFront) {
        EXPECT_TRUE(Ctx.isError(*Front)) << "step " << Step;
      } else {
        ASSERT_FALSE(Ctx.isError(*Front)) << "step " << Step;
        EXPECT_EQ(printTerm(Ctx, *Front), "'" + *ImplFront)
            << "step " << Step;
      }
    } else {
      // Observe IS_EMPTY?.
      Result<TermId> Empty = Sess.eval("IS_EMPTY?(x)");
      ASSERT_TRUE(static_cast<bool>(Empty));
      EXPECT_EQ(*Empty == Ctx.trueTerm(), Impl.isEmpty())
          << "step " << Step;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, QueueDifferential,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

//===----------------------------------------------------------------------===//
// Differential: three representations + spec agree on scope queries
//===----------------------------------------------------------------------===//

namespace {

class SymtabDifferential : public ::testing::TestWithParam<uint64_t> {};

} // namespace

TEST_P(SymtabDifferential, AllBackendsAgree) {
  AlgebraContext Ctx;
  Spec SymSpec = specs::loadSymboltable(Ctx).take();
  Session Sess = Session::create(Ctx, {&SymSpec}).take();
  ASSERT_TRUE(static_cast<bool>(Sess.run("t := INIT")));

  adt::SymbolTable<std::string> Hash(4);
  adt::ListSymbolTable<std::string> List;
  adt::FlatSymbolTable<std::string> Flat;
  unsigned SpecDepth = 1; // Mirror of the concrete tables' depth.

  std::mt19937_64 Rng(GetParam());
  std::uniform_int_distribution<int> OpDist(0, 99);
  std::uniform_int_distribution<int> IdDist(0, 6);
  std::uniform_int_distribution<int> AttrDist(0, 2);

  for (int Step = 0; Step < 150; ++Step) {
    int Roll = OpDist(Rng);
    std::string Id = "v" + std::to_string(IdDist(Rng));
    if (Roll < 12 && SpecDepth < 6) {
      ASSERT_TRUE(static_cast<bool>(Sess.run("t := ENTERBLOCK(t)")));
      Hash.enterBlock();
      List.enterBlock();
      Flat.enterBlock();
      ++SpecDepth;
    } else if (Roll < 22) {
      bool H = Hash.leaveBlock();
      bool L = List.leaveBlock();
      bool F = Flat.leaveBlock();
      EXPECT_EQ(H, L);
      EXPECT_EQ(H, F);
      if (H) {
        ASSERT_TRUE(static_cast<bool>(Sess.run("t := LEAVEBLOCK(t)")));
        --SpecDepth;
      } else {
        // The spec agrees this would be an error.
        Result<TermId> Probe = Sess.eval("LEAVEBLOCK(t)");
        ASSERT_TRUE(static_cast<bool>(Probe));
        // The concrete tables refuse to pop the outermost scope; the
        // algebra errors only on INIT itself (SpecDepth mirrors that).
        if (SpecDepth == 1) {
          EXPECT_TRUE(Ctx.isError(*Probe) ||
                      printTerm(Ctx, *Probe).find("INIT") == 0)
              << printTerm(Ctx, *Probe);
        }
      }
    } else if (Roll < 50) {
      std::string Attr = "a" + std::to_string(AttrDist(Rng));
      ASSERT_TRUE(static_cast<bool>(
          Sess.run("t := ADD(t, '" + Id + ", '" + Attr + ")")));
      Hash.add(Id, Attr);
      List.add(Id, Attr);
      Flat.add(Id, Attr);
    } else if (Roll < 80) {
      std::optional<std::string> H = Hash.retrieve(Id);
      EXPECT_EQ(H, List.retrieve(Id)) << "step " << Step;
      EXPECT_EQ(H, Flat.retrieve(Id)) << "step " << Step;
      Result<TermId> SpecV = Sess.eval("RETRIEVE(t, '" + Id + ")");
      ASSERT_TRUE(static_cast<bool>(SpecV));
      if (!H)
        EXPECT_TRUE(Ctx.isError(*SpecV)) << "step " << Step;
      else
        EXPECT_EQ(printTerm(Ctx, *SpecV), "'" + *H) << "step " << Step;
    } else {
      bool H = Hash.isInBlock(Id);
      EXPECT_EQ(H, List.isInBlock(Id)) << "step " << Step;
      EXPECT_EQ(H, Flat.isInBlock(Id)) << "step " << Step;
      Result<TermId> SpecV = Sess.eval("IS_INBLOCK?(t, '" + Id + ")");
      ASSERT_TRUE(static_cast<bool>(SpecV));
      EXPECT_EQ(*SpecV == Ctx.trueTerm(), H) << "step " << Step;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SymtabDifferential,
                         ::testing::Values(11, 22, 33, 44, 55, 66));

//===----------------------------------------------------------------------===//
// Engine invariants over random ground terms
//===----------------------------------------------------------------------===//

namespace {

class EngineInvariants : public ::testing::TestWithParam<uint64_t> {};

/// Builds a random ground observation over a random queue value.
TermId randomObservation(AlgebraContext &Ctx, TermEnumerator &Enumerator,
                         std::mt19937_64 &Rng) {
  SortId Queue = Ctx.lookupSort("Queue");
  TermId Value = Enumerator.sample(Queue, 5, Rng);
  std::uniform_int_distribution<int> Obs(0, 3);
  switch (Obs(Rng)) {
  case 0:
    return Ctx.makeOp(Ctx.lookupOp("FRONT"), {Value});
  case 1:
    return Ctx.makeOp(Ctx.lookupOp("REMOVE"), {Value});
  case 2:
    return Ctx.makeOp(Ctx.lookupOp("IS_EMPTY?"), {Value});
  default:
    return Ctx.makeOp(
        Ctx.lookupOp("FRONT"),
        {Ctx.makeOp(Ctx.lookupOp("REMOVE"), {Value})});
  }
}

} // namespace

TEST_P(EngineInvariants, NormalizationIdempotentAndMemoTransparent) {
  AlgebraContext Ctx;
  Spec Q = specs::loadQueue(Ctx).take();
  RewriteSystem System = RewriteSystem::buildChecked(Ctx, {&Q}).take();

  RewriteEngine Memoized(Ctx, System);
  EngineOptions NoMemoOpts;
  NoMemoOpts.Memoize = false;
  RewriteEngine Unmemoized(Ctx, System, NoMemoOpts);

  TermEnumerator Enumerator(Ctx);
  std::mt19937_64 Rng(GetParam());

  for (int I = 0; I < 60; ++I) {
    TermId Term = randomObservation(Ctx, Enumerator, Rng);
    Result<TermId> N1 = Memoized.normalize(Term);
    ASSERT_TRUE(static_cast<bool>(N1));
    // Idempotence: a normal form does not rewrite further.
    Result<TermId> N2 = Memoized.normalize(*N1);
    ASSERT_TRUE(static_cast<bool>(N2));
    EXPECT_EQ(*N1, *N2);
    // Memoization transparency.
    Result<TermId> N3 = Unmemoized.normalize(Term);
    ASSERT_TRUE(static_cast<bool>(N3));
    EXPECT_EQ(*N1, *N3);
    // Sufficient completeness of the Queue spec means nothing is stuck.
    EXPECT_FALSE(Memoized.isStuck(*N1)) << printTerm(Ctx, *N1);
    // Normal forms of Queue sort are constructor terms or error.
    if (Ctx.sortOf(*N1) == Ctx.lookupSort("Queue") && !Ctx.isError(*N1)) {
      const TermNode &Node = Ctx.node(*N1);
      ASSERT_EQ(Node.Kind, TermKind::Op);
      EXPECT_TRUE(Ctx.op(Node.Op).isConstructor());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineInvariants,
                         ::testing::Values(7, 17, 27, 37));

//===----------------------------------------------------------------------===//
// Print/parse round-tripping over enumerated ground terms
//===----------------------------------------------------------------------===//

namespace {

struct RoundTripCase {
  const char *SpecName; ///< Which builtin spec to load.
  const char *SortName; ///< Which sort to enumerate.
  unsigned Depth;
};

class PrintParseRoundTrip : public ::testing::TestWithParam<RoundTripCase> {
};

void loadBuiltin(AlgebraContext &Ctx, const std::string &Name) {
  if (Name == "Queue")
    ASSERT_TRUE(static_cast<bool>(specs::loadQueue(Ctx)));
  else if (Name == "Symboltable")
    ASSERT_TRUE(static_cast<bool>(specs::loadSymboltable(Ctx)));
  else if (Name == "StackArray")
    ASSERT_TRUE(static_cast<bool>(specs::loadStackArray(Ctx)));
  else
    FAIL() << "unknown spec " << Name;
}

} // namespace

TEST_P(PrintParseRoundTrip, EnumeratedTermsSurviveRoundTrip) {
  const RoundTripCase &Case = GetParam();
  AlgebraContext Ctx;
  loadBuiltin(Ctx, Case.SpecName);
  SortId Sort = Ctx.lookupSort(Case.SortName);
  ASSERT_TRUE(Sort.isValid());

  TermEnumerator Enumerator(Ctx);
  for (TermId Term : Enumerator.enumerate(Sort, Case.Depth)) {
    std::string Text = printTerm(Ctx, Term);
    Result<TermId> Reparsed = parseTermText(Ctx, Text, nullptr, Sort);
    ASSERT_TRUE(static_cast<bool>(Reparsed)) << Text;
    EXPECT_EQ(*Reparsed, Term) << Text;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweeps, PrintParseRoundTrip,
    ::testing::Values(RoundTripCase{"Queue", "Queue", 4},
                      RoundTripCase{"Symboltable", "Symboltable", 3},
                      RoundTripCase{"StackArray", "Array", 3},
                      RoundTripCase{"StackArray", "Stack", 3}));

//===----------------------------------------------------------------------===//
// Enumerator cardinalities against closed forms
//===----------------------------------------------------------------------===//

namespace {
class EnumeratorCounts : public ::testing::TestWithParam<unsigned> {};
} // namespace

TEST_P(EnumeratorCounts, QueueCountMatchesClosedForm) {
  // With 2 atoms: N(1) = 1 (NEW); N(d) = 1 + 2 * N(d-1).
  AlgebraContext Ctx;
  ASSERT_TRUE(static_cast<bool>(specs::loadQueue(Ctx)));
  TermEnumerator Enumerator(Ctx);
  unsigned Depth = GetParam();
  size_t Expected = 1;
  for (unsigned D = 2; D <= Depth; ++D)
    Expected = 1 + 2 * Expected;
  const auto &Terms =
      Enumerator.enumerate(Ctx.lookupSort("Queue"), Depth);
  EXPECT_EQ(Terms.size(), Expected);
  // All distinct (hash consing makes TermId equality exact).
  std::set<TermId> Unique(Terms.begin(), Terms.end());
  EXPECT_EQ(Unique.size(), Terms.size());
}

INSTANTIATE_TEST_SUITE_P(Depths, EnumeratorCounts,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u));

namespace {
class SymtabCounts : public ::testing::TestWithParam<unsigned> {};
} // namespace

TEST_P(SymtabCounts, SymboltableCountMatchesClosedForm) {
  // Constructors: INIT (leaf), ENTERBLOCK (unary), ADD (S x Id x Attr,
  // with 2 atoms each): N(1) = 1; N(d) = 1 + N(d-1) + 4 * N(d-1).
  AlgebraContext Ctx;
  ASSERT_TRUE(static_cast<bool>(specs::loadSymboltable(Ctx)));
  TermEnumerator Enumerator(Ctx);
  unsigned Depth = GetParam();
  size_t Expected = 1;
  for (unsigned D = 2; D <= Depth; ++D)
    Expected = 1 + 5 * Expected;
  EXPECT_EQ(
      Enumerator.enumerate(Ctx.lookupSort("Symboltable"), Depth).size(),
      Expected);
}

INSTANTIATE_TEST_SUITE_P(Depths, SymtabCounts,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

//===----------------------------------------------------------------------===//
// Error-algebra semantics (paper section 3): strict operations, lazy ITE
//===----------------------------------------------------------------------===//

namespace {

/// Fixture loading Queue with a rewrite engine, for the section 3 error-
/// propagation properties.
class ErrorSemantics : public ::testing::Test {
protected:
  void SetUp() override {
    auto Loaded = specs::loadQueue(Ctx);
    ASSERT_TRUE(static_cast<bool>(Loaded)) << Loaded.error().message();
    Q = Loaded.take();
    auto Built = RewriteSystem::buildChecked(Ctx, {&Q});
    ASSERT_TRUE(static_cast<bool>(Built)) << Built.error().message();
    System = std::make_unique<RewriteSystem>(Built.take());
    Engine = std::make_unique<RewriteEngine>(Ctx, *System);
  }

  TermId normalized(const std::string &Text, SortId Expected = SortId()) {
    Result<TermId> Parsed = parseTermText(Ctx, Text, nullptr, Expected);
    EXPECT_TRUE(static_cast<bool>(Parsed)) << Text;
    Result<TermId> Normal = Engine->normalize(*Parsed);
    EXPECT_TRUE(static_cast<bool>(Normal)) << Text;
    return *Normal;
  }

  AlgebraContext Ctx;
  Spec Q;
  std::unique_ptr<RewriteSystem> System;
  std::unique_ptr<RewriteEngine> Engine;
};

} // namespace

TEST_F(ErrorSemantics, OperationsAreStrictInEveryArgument) {
  // Section 3: "error carriers propagate" — applying any operation to an
  // erroring argument yields error, in whichever argument position.
  EXPECT_TRUE(Ctx.isError(normalized("ADD(REMOVE(NEW), 'item1)")));
  EXPECT_TRUE(Ctx.isError(normalized("ADD(NEW, FRONT(NEW))")));
  EXPECT_TRUE(Ctx.isError(normalized("REMOVE(REMOVE(NEW))")));
  EXPECT_TRUE(Ctx.isError(normalized("FRONT(REMOVE(NEW))")));
  // Even a total observer is poisoned by an erroring argument.
  EXPECT_TRUE(Ctx.isError(normalized("IS_EMPTY?(REMOVE(NEW))")));
}

TEST_F(ErrorSemantics, StrictnessHoldsAtConstructionToo) {
  // makeOp collapses an error argument structurally, before any rewriting:
  // the constructed term already is the error carrier of the result sort.
  SortId Queue = Ctx.lookupSort("Queue");
  TermId Poisoned = Ctx.makeOp(
      Ctx.lookupOp("ADD"),
      {Ctx.makeError(Queue), Ctx.makeAtom("item1", Ctx.lookupSort("Item"))});
  EXPECT_TRUE(Ctx.isError(Poisoned));
  EXPECT_EQ(Ctx.sortOf(Poisoned), Queue);
}

TEST_F(ErrorSemantics, IteConditionIsStrict) {
  // The condition position of if-then-else is strict: an erroring
  // condition poisons the whole conditional even though both branches
  // are fine values.
  EXPECT_TRUE(Ctx.isError(
      normalized("if IS_EMPTY?(REMOVE(NEW)) then 'item1 else 'item2",
                 Ctx.lookupSort("Item"))));
}

TEST_F(ErrorSemantics, IteBranchesAreLazy) {
  // The branches are lazy: an error in the *untaken* branch is discarded
  // rather than propagated.
  EXPECT_EQ(printTerm(Ctx, normalized("if true then 'item1 else FRONT(NEW)")),
            "'item1");
  EXPECT_EQ(printTerm(Ctx, normalized("if false then FRONT(NEW) else 'item2")),
            "'item2");
  // ...while the taken branch still propagates.
  EXPECT_TRUE(
      Ctx.isError(normalized("if false then 'item1 else FRONT(NEW)")));
}

TEST_F(ErrorSemantics, FrontOfNonEmptyNeverErrorsThanksToLaziness) {
  // FRONT(ADD(q, i)) = if IS_EMPTY?(q) then i else FRONT(q). When q is
  // NEW the else branch *mentions* FRONT(NEW) = error, but the lazy ITE
  // never evaluates it — so FRONT and REMOVE of a non-empty queue are
  // error-free for every ground queue value. A strict ITE would poison
  // exactly the q = NEW case.
  TermEnumerator Enumerator(Ctx);
  SortId Queue = Ctx.lookupSort("Queue");
  SortId Item = Ctx.lookupSort("Item");
  OpId Front = Ctx.lookupOp("FRONT");
  OpId Remove = Ctx.lookupOp("REMOVE");
  OpId Add = Ctx.lookupOp("ADD");
  for (TermId Value : Enumerator.enumerate(Queue, 4))
    for (TermId Atom : Enumerator.enumerate(Item, 1)) {
      TermId NonEmpty = Ctx.makeOp(Add, {Value, Atom});
      Result<TermId> F = Engine->normalize(Ctx.makeOp(Front, {NonEmpty}));
      ASSERT_TRUE(static_cast<bool>(F));
      EXPECT_FALSE(Ctx.isError(*F)) << printTerm(Ctx, NonEmpty);
      Result<TermId> R = Engine->normalize(Ctx.makeOp(Remove, {NonEmpty}));
      ASSERT_TRUE(static_cast<bool>(R));
      EXPECT_FALSE(Ctx.isError(*R)) << printTerm(Ctx, NonEmpty);
    }
  // The boundary case the laziness exists for:
  EXPECT_EQ(printTerm(Ctx, normalized("FRONT(ADD(NEW, 'item1))")),
            "'item1");
}

//===----------------------------------------------------------------------===//
// Parser robustness: arbitrary input must diagnose, never crash or hang
//===----------------------------------------------------------------------===//

namespace {
class ParserFuzz : public ::testing::TestWithParam<uint64_t> {};
} // namespace

TEST_P(ParserFuzz, RandomBytesNeverCrashTheSpecParser) {
  std::mt19937_64 Rng(GetParam());
  std::uniform_int_distribution<int> Len(0, 400);
  std::uniform_int_distribution<int> Byte(32, 126);
  for (int Round = 0; Round < 50; ++Round) {
    std::string Garbage;
    int N = Len(Rng);
    for (int I = 0; I < N; ++I)
      Garbage += static_cast<char>(Byte(Rng));
    AlgebraContext Ctx;
    // Must terminate and either parse or diagnose; no crash, no throw.
    (void)parseSpecText(Ctx, Garbage);
  }
}

TEST_P(ParserFuzz, RandomTokenSoupNeverCrashes) {
  static const char *Tokens[] = {
      "spec",  "uses", "sorts",  "ops",  "constructors",
      "vars",  "axioms", "end",  "if",   "then",
      "else",  "error", "Queue", "NEW",  "ADD",
      "q",     "i",     ":",     ",",    "->",
      "(",     ")",     "=",     "'a",   "42",
      "Bool",  "Int",   "SAME",  "addi", "--x\n"};
  std::mt19937_64 Rng(GetParam());
  std::uniform_int_distribution<size_t> Pick(0, std::size(Tokens) - 1);
  std::uniform_int_distribution<int> Len(1, 120);
  for (int Round = 0; Round < 50; ++Round) {
    std::string Soup;
    int N = Len(Rng);
    for (int I = 0; I < N; ++I) {
      Soup += Tokens[Pick(Rng)];
      Soup += ' ';
    }
    AlgebraContext Ctx;
    (void)parseSpecText(Ctx, Soup);
  }
}

TEST_P(ParserFuzz, RandomTermSoupNeverCrashes) {
  static const char *Tokens[] = {"NEW", "ADD", "FRONT", "REMOVE",
                                 "IS_EMPTY?", "(", ")", ",", "'a",
                                 "7", "if", "then", "else", "error",
                                 "q", "SAME"};
  std::mt19937_64 Rng(GetParam());
  std::uniform_int_distribution<size_t> Pick(0, std::size(Tokens) - 1);
  std::uniform_int_distribution<int> Len(1, 60);
  AlgebraContext Ctx;
  ASSERT_TRUE(static_cast<bool>(specs::loadQueue(Ctx)));
  for (int Round = 0; Round < 80; ++Round) {
    std::string Soup;
    int N = Len(Rng);
    for (int I = 0; I < N; ++I) {
      Soup += Tokens[Pick(Rng)];
      Soup += ' ';
    }
    (void)parseTermText(Ctx, Soup);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserFuzz,
                         ::testing::Values(101, 202, 303, 404));
