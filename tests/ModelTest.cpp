//===----------------------------------------------------------------------===//
//
// Part of AlgSpec. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Model-based testing (paper section 5): every concrete ADT is run
/// against the axioms of its algebraic specification. A deliberately
/// broken implementation shows the tester catching real bugs.
///
//===----------------------------------------------------------------------===//

#include "adt/HashArray.h"
#include "adt/KnowsList.h"
#include "adt/KnowsSymbolTable.h"
#include "adt/PriorityQueue.h"
#include "adt/Queue.h"
#include "adt/Stack.h"
#include "adt/Table.h"
#include "adt/SymbolTable.h"
#include "ast/AlgebraContext.h"
#include "model/ModelBinding.h"
#include "model/ModelTester.h"
#include "parser/Parser.h"
#include "specs/BuiltinSpecs.h"

#include <gtest/gtest.h>

#include <string>

using namespace algspec;

using QueueV = adt::Queue<std::string>;
using ArrayV = adt::HashArray<std::string>;
using StackV = adt::Stack<ArrayV>;
using TableV = adt::SymbolTable<std::string>;
using KTableV = adt::KnowsSymbolTable<std::string>;

//===----------------------------------------------------------------------===//
// Queue<T> against the Queue spec (axioms 1-6)
//===----------------------------------------------------------------------===//

namespace {

/// Installs the Queue<std::string> bindings used by several tests.
/// \p BuggyRemove switches in an implementation that removes the *newest*
/// element (a LIFO bug the axioms must catch).
void bindQueue(ModelBinding &B, AlgebraContext &Ctx, bool BuggyRemove) {
  SortId QueueSort = Ctx.lookupSort("Queue");

  B.bindOp("NEW", [](std::span<const Value>) {
    return Value::of(QueueV());
  });
  B.bindOp("ADD", [](std::span<const Value> Args) {
    QueueV Q = Args[0].get<QueueV>();
    Q.add(Args[1].get<std::string>());
    return Value::of(std::move(Q));
  });
  B.bindOp("FRONT", [](std::span<const Value> Args) {
    std::optional<std::string> Front = Args[0].get<QueueV>().front();
    return Front ? Value::of(*Front) : Value::error();
  });
  B.bindOp("REMOVE", [BuggyRemove](std::span<const Value> Args) {
    QueueV Q = Args[0].get<QueueV>();
    if (Q.isEmpty())
      return Value::error();
    if (!BuggyRemove) {
      Q.remove();
      return Value::of(std::move(Q));
    }
    // Buggy variant: drop the most recently added element instead.
    QueueV Rebuilt;
    while (Q.size() > 1) {
      Rebuilt.add(*Q.front());
      Q.remove();
    }
    return Value::of(std::move(Rebuilt));
  });
  B.bindOp("IS_EMPTY?", [](std::span<const Value> Args) {
    return Value::of(Args[0].get<QueueV>().isEmpty());
  });
  B.bindEquals(QueueSort, [](const Value &A, const Value &B2) {
    return A.get<QueueV>() == B2.get<QueueV>();
  });
}

} // namespace

TEST(ModelQueueTest, RealImplementationSatisfiesAllAxioms) {
  AlgebraContext Ctx;
  auto Q = specs::loadQueue(Ctx);
  ASSERT_TRUE(static_cast<bool>(Q));
  ModelBinding B(Ctx);
  bindQueue(B, Ctx, /*BuggyRemove=*/false);

  ModelTestOptions Options;
  Options.MaxDepth = 5; // Queues of up to 4 elements, both atoms each.
  ModelTestReport Report = testModel(Ctx, *Q, B, Options);
  EXPECT_TRUE(Report.AllPassed) << Report.render();
  ASSERT_EQ(Report.Results.size(), 6u);
  for (const AxiomTestResult &R : Report.Results)
    EXPECT_GT(R.InstancesChecked, 0u);
}

TEST(ModelQueueTest, LifoBugCaughtByAxiom6) {
  AlgebraContext Ctx;
  auto Q = specs::loadQueue(Ctx);
  ASSERT_TRUE(static_cast<bool>(Q));
  ModelBinding B(Ctx);
  bindQueue(B, Ctx, /*BuggyRemove=*/true);

  ModelTestOptions Options;
  Options.MaxDepth = 4;
  ModelTestReport Report = testModel(Ctx, *Q, B, Options);
  EXPECT_FALSE(Report.AllPassed);
  // Axiom 6 (REMOVE over a non-empty queue) is the one that pins FIFO.
  bool Axiom6Failed = false;
  for (const AxiomTestResult &R : Report.Results)
    if (R.AxiomNumber == 6 && !R.Passed)
      Axiom6Failed = true;
  EXPECT_TRUE(Axiom6Failed) << Report.render();
}

TEST(ModelQueueTest, EvaluateGroundTermRunsRealCode) {
  AlgebraContext Ctx;
  auto Q = specs::loadQueue(Ctx);
  ASSERT_TRUE(static_cast<bool>(Q));
  ModelBinding B(Ctx);
  bindQueue(B, Ctx, false);

  auto Term = parseTermText(Ctx, "FRONT(REMOVE(ADD(ADD(NEW, 'a), 'b)))");
  ASSERT_TRUE(static_cast<bool>(Term));
  auto V = B.evaluate(*Term);
  ASSERT_TRUE(static_cast<bool>(V));
  EXPECT_EQ(V->get<std::string>(), "b");
}

TEST(ModelQueueTest, ErrorsPropagateThroughEvaluation) {
  AlgebraContext Ctx;
  auto Q = specs::loadQueue(Ctx);
  ASSERT_TRUE(static_cast<bool>(Q));
  ModelBinding B(Ctx);
  bindQueue(B, Ctx, false);

  auto Term = parseTermText(Ctx, "IS_EMPTY?(REMOVE(NEW))");
  ASSERT_TRUE(static_cast<bool>(Term));
  auto V = B.evaluate(*Term);
  ASSERT_TRUE(static_cast<bool>(V));
  EXPECT_TRUE(V->isError());
}

//===----------------------------------------------------------------------===//
// Stack + HashArray against axioms 10-20 (the paper's PL/I code, E6)
//===----------------------------------------------------------------------===//

namespace {

void bindStackArray(ModelBinding &B, AlgebraContext &Ctx) {
  SortId StackSort = Ctx.lookupSort("Stack");
  SortId ArraySort = Ctx.lookupSort("Array");

  // Array: 4 buckets so collisions occur even in small tests.
  B.bindOp("EMPTY", [](std::span<const Value>) {
    return Value::of(ArrayV(4));
  });
  B.bindOp("ASSIGN", [](std::span<const Value> Args) {
    ArrayV A = Args[0].get<ArrayV>();
    A.assign(Args[1].get<std::string>(), Args[2].get<std::string>());
    return Value::of(std::move(A));
  });
  B.bindOp("READ", [](std::span<const Value> Args) {
    std::optional<std::string> V =
        Args[0].get<ArrayV>().read(Args[1].get<std::string>());
    return V ? Value::of(*V) : Value::error();
  });
  B.bindOp("IS_UNDEFINED?", [](std::span<const Value> Args) {
    return Value::of(
        Args[0].get<ArrayV>().isUndefined(Args[1].get<std::string>()));
  });
  B.bindEquals(ArraySort, [](const Value &A, const Value &B2) {
    return A.get<ArrayV>() == B2.get<ArrayV>();
  });

  // Stack of arrays.
  B.bindOp("NEWSTACK", [](std::span<const Value>) {
    return Value::of(StackV());
  });
  B.bindOp("PUSH", [](std::span<const Value> Args) {
    StackV S = Args[0].get<StackV>();
    S.push(Args[1].get<ArrayV>());
    return Value::of(std::move(S));
  });
  B.bindOp("POP", [](std::span<const Value> Args) {
    StackV S = Args[0].get<StackV>();
    if (!S.pop())
      return Value::error();
    return Value::of(std::move(S));
  });
  B.bindOp("TOP", [](std::span<const Value> Args) {
    std::optional<ArrayV> T = Args[0].get<StackV>().top();
    return T ? Value::of(std::move(*T)) : Value::error();
  });
  B.bindOp("IS_NEWSTACK?", [](std::span<const Value> Args) {
    return Value::of(Args[0].get<StackV>().isEmpty());
  });
  B.bindOp("REPLACE", [](std::span<const Value> Args) {
    StackV S = Args[0].get<StackV>();
    if (!S.replace(Args[1].get<ArrayV>()))
      return Value::error();
    return Value::of(std::move(S));
  });
  B.bindEquals(StackSort, [](const Value &A, const Value &B2) {
    return A.get<StackV>() == B2.get<StackV>();
  });
}

} // namespace

TEST(ModelStackArrayTest, PaperImplementationSatisfiesAxioms10To20) {
  AlgebraContext Ctx;
  auto Parsed = specs::loadStackArray(Ctx);
  ASSERT_TRUE(static_cast<bool>(Parsed));
  ModelBinding B(Ctx);
  bindStackArray(B, Ctx);

  ModelTestOptions Options;
  Options.MaxDepth = 3;
  for (const Spec &S : *Parsed) {
    ModelTestReport Report = testModel(Ctx, S, B, Options);
    EXPECT_TRUE(Report.AllPassed) << S.name() << ":\n" << Report.render();
  }
}

//===----------------------------------------------------------------------===//
// SymbolTable against axioms 1-9
//===----------------------------------------------------------------------===//

namespace {

void bindSymbolTable(ModelBinding &B, AlgebraContext &Ctx) {
  SortId TableSort = Ctx.lookupSort("Symboltable");

  B.bindOp("INIT", [](std::span<const Value>) {
    return Value::of(TableV(4));
  });
  B.bindOp("ENTERBLOCK", [](std::span<const Value> Args) {
    TableV T = Args[0].get<TableV>();
    T.enterBlock();
    return Value::of(std::move(T));
  });
  B.bindOp("LEAVEBLOCK", [](std::span<const Value> Args) {
    TableV T = Args[0].get<TableV>();
    if (!T.leaveBlock())
      return Value::error();
    return Value::of(std::move(T));
  });
  B.bindOp("ADD", [](std::span<const Value> Args) {
    TableV T = Args[0].get<TableV>();
    T.add(Args[1].get<std::string>(), Args[2].get<std::string>());
    return Value::of(std::move(T));
  });
  B.bindOp("IS_INBLOCK?", [](std::span<const Value> Args) {
    return Value::of(
        Args[0].get<TableV>().isInBlock(Args[1].get<std::string>()));
  });
  B.bindOp("RETRIEVE", [](std::span<const Value> Args) {
    std::optional<std::string> V =
        Args[0].get<TableV>().retrieve(Args[1].get<std::string>());
    return V ? Value::of(*V) : Value::error();
  });
  B.bindEquals(TableSort, [](const Value &A, const Value &B2) {
    return A.get<TableV>() == B2.get<TableV>();
  });
}

} // namespace

TEST(ModelSymbolTableTest, StackOfArraysSatisfiesAxioms1To9) {
  AlgebraContext Ctx;
  auto S = specs::loadSymboltable(Ctx);
  ASSERT_TRUE(static_cast<bool>(S));
  ModelBinding B(Ctx);
  bindSymbolTable(B, Ctx);

  ModelTestOptions Options;
  Options.MaxDepth = 4;
  ModelTestReport Report = testModel(Ctx, *S, B, Options);
  EXPECT_TRUE(Report.AllPassed) << Report.render();
  EXPECT_EQ(Report.Results.size(), 9u);
}

//===----------------------------------------------------------------------===//
// KnowsSymbolTable against the adapted spec (E7)
//===----------------------------------------------------------------------===//

TEST(ModelKnowsTest, KnowsTableSatisfiesAdaptedAxioms) {
  AlgebraContext Ctx;
  auto Parsed = specs::loadKnowsSymboltable(Ctx);
  ASSERT_TRUE(static_cast<bool>(Parsed));
  ASSERT_EQ(Parsed->size(), 2u);
  const Spec &KnowlistSpec = (*Parsed)[0];
  const Spec &TableSpec = (*Parsed)[1];

  ModelBinding B(Ctx);
  SortId KnowsSort = Ctx.lookupSort("Knowlist");
  SortId TableSort = Ctx.lookupSort("Symboltable");

  B.bindOp("CREATE", [](std::span<const Value>) {
    return Value::of(adt::KnowsList());
  });
  B.bindOp("APPEND", [](std::span<const Value> Args) {
    adt::KnowsList K = Args[0].get<adt::KnowsList>();
    K.append(Args[1].get<std::string>());
    return Value::of(std::move(K));
  });
  B.bindOp("IS_IN?", [](std::span<const Value> Args) {
    return Value::of(
        Args[0].get<adt::KnowsList>().contains(Args[1].get<std::string>()));
  });
  B.bindEquals(KnowsSort, [](const Value &A, const Value &B2) {
    return A.get<adt::KnowsList>() == B2.get<adt::KnowsList>();
  });

  B.bindOp("INIT", [](std::span<const Value>) {
    return Value::of(KTableV(4));
  });
  B.bindOp("ENTERBLOCK", [](std::span<const Value> Args) {
    KTableV T = Args[0].get<KTableV>();
    T.enterBlock(Args[1].get<adt::KnowsList>());
    return Value::of(std::move(T));
  });
  B.bindOp("LEAVEBLOCK", [](std::span<const Value> Args) {
    KTableV T = Args[0].get<KTableV>();
    if (!T.leaveBlock())
      return Value::error();
    return Value::of(std::move(T));
  });
  B.bindOp("ADD", [](std::span<const Value> Args) {
    KTableV T = Args[0].get<KTableV>();
    T.add(Args[1].get<std::string>(), Args[2].get<std::string>());
    return Value::of(std::move(T));
  });
  B.bindOp("IS_INBLOCK?", [](std::span<const Value> Args) {
    return Value::of(
        Args[0].get<KTableV>().isInBlock(Args[1].get<std::string>()));
  });
  B.bindOp("RETRIEVE", [](std::span<const Value> Args) {
    std::optional<std::string> V =
        Args[0].get<KTableV>().retrieve(Args[1].get<std::string>());
    return V ? Value::of(*V) : Value::error();
  });
  B.bindEquals(TableSort, [](const Value &A, const Value &B2) {
    return A.get<KTableV>() == B2.get<KTableV>();
  });

  ModelTestOptions Options;
  Options.MaxDepth = 3;
  ModelTestReport KReport = testModel(Ctx, KnowlistSpec, B, Options);
  EXPECT_TRUE(KReport.AllPassed) << KReport.render();
  ModelTestReport TReport = testModel(Ctx, TableSpec, B, Options);
  EXPECT_TRUE(TReport.AllPassed) << TReport.render();
}

//===----------------------------------------------------------------------===//
// Binding mechanics
//===----------------------------------------------------------------------===//

TEST(ModelBindingTest, UnboundOperationIsReportedNotCrash) {
  AlgebraContext Ctx;
  auto Q = specs::loadQueue(Ctx);
  ASSERT_TRUE(static_cast<bool>(Q));
  ModelBinding B(Ctx); // Nothing bound.
  auto Term = parseTermText(Ctx, "FRONT(NEW)");
  ASSERT_TRUE(static_cast<bool>(Term));
  auto V = B.evaluate(*Term);
  ASSERT_FALSE(static_cast<bool>(V));
  EXPECT_NE(V.error().message().find("no binding"), std::string::npos);
}

TEST(ModelBindingTest, BuiltinsEvaluateWithoutBindings) {
  AlgebraContext Ctx;
  auto Term = parseTermText(Ctx, "addi(2, 3)");
  ASSERT_TRUE(static_cast<bool>(Term));
  ModelBinding B(Ctx);
  auto V = B.evaluate(*Term);
  ASSERT_TRUE(static_cast<bool>(V)) << V.error().message();
  EXPECT_EQ(V->get<int64_t>(), 5);
}

TEST(ModelBindingTest, IteIsLazyOverRealCode) {
  AlgebraContext Ctx;
  auto Q = specs::loadQueue(Ctx);
  ASSERT_TRUE(static_cast<bool>(Q));
  ModelBinding B(Ctx);
  bindQueue(B, Ctx, false);
  // The else-branch would be error; the condition shields it.
  auto Term =
      parseTermText(Ctx, "if IS_EMPTY?(NEW) then 'ok else FRONT(NEW)");
  ASSERT_TRUE(static_cast<bool>(Term)) << Term.error().message();
  auto V = B.evaluate(*Term);
  ASSERT_TRUE(static_cast<bool>(V));
  EXPECT_EQ(V->get<std::string>(), "ok");
}

TEST(ModelBindingTest, SameUsesBoundEquality) {
  AlgebraContext Ctx;
  SortId Ident = Ctx.getOrAddAtomSort("Identifier");
  OpId Same = Ctx.getSameOp(Ident);
  TermId A = Ctx.makeAtom("a", Ident);
  TermId B2 = Ctx.makeAtom("b", Ident);
  ModelBinding B(Ctx);
  auto Eq = B.evaluate(Ctx.makeOp(Same, {A, A}));
  ASSERT_TRUE(static_cast<bool>(Eq));
  EXPECT_TRUE(Eq->get<bool>());
  auto Ne = B.evaluate(Ctx.makeOp(Same, {A, B2}));
  ASSERT_TRUE(static_cast<bool>(Ne));
  EXPECT_FALSE(Ne->get<bool>());
}

//===----------------------------------------------------------------------===//
// Table against TableAlg (the section-5 database characterization, E14)
//===----------------------------------------------------------------------===//

namespace {

using TableImpl = adt::Table<std::string>;

void bindTable(ModelBinding &B, AlgebraContext &Ctx) {
  B.bindOp("EMPTY_TABLE", [](std::span<const Value>) {
    return Value::of(TableImpl());
  });
  B.bindOp("INSERT_ROW", [](std::span<const Value> Args) {
    TableImpl T = Args[0].get<TableImpl>();
    T.insertRow(Args[1].get<std::string>(), Args[2].get<std::string>());
    return Value::of(std::move(T));
  });
  B.bindOp("DELETE_ROW", [](std::span<const Value> Args) {
    TableImpl T = Args[0].get<TableImpl>();
    T.deleteRow(Args[1].get<std::string>());
    return Value::of(std::move(T));
  });
  B.bindOp("LOOKUP", [](std::span<const Value> Args) {
    auto V = Args[0].get<TableImpl>().lookup(Args[1].get<std::string>());
    return V ? Value::of(*V) : Value::error();
  });
  B.bindOp("HAS_ROW?", [](std::span<const Value> Args) {
    return Value::of(
        Args[0].get<TableImpl>().hasRow(Args[1].get<std::string>()));
  });
  B.bindOp("ROW_COUNT", [](std::span<const Value> Args) {
    return Value::of(
        static_cast<int64_t>(Args[0].get<TableImpl>().rowCount()));
  });
  B.bindOp("SELECT_VAL", [](std::span<const Value> Args) {
    return Value::of(
        Args[0].get<TableImpl>().selectVal(Args[1].get<std::string>()));
  });
  B.bindEquals(Ctx.lookupSort("Table"),
               [](const Value &A, const Value &B2) {
                 return A.get<TableImpl>() == B2.get<TableImpl>();
               });
}

} // namespace

TEST(ModelTableTest, DatabaseTableSatisfiesItsSpec) {
  AlgebraContext Ctx;
  auto Parsed = specs::load(Ctx, specs::TableAlg, "table.alg");
  ASSERT_TRUE(static_cast<bool>(Parsed)) << Parsed.error().message();
  ModelBinding B(Ctx);
  bindTable(B, Ctx);

  ModelTestOptions Options;
  Options.MaxDepth = 4;
  ModelTestReport Report = testModel(Ctx, (*Parsed)[0], B, Options);
  EXPECT_TRUE(Report.AllPassed) << Report.render();
  EXPECT_EQ(Report.Results.size(), 10u);
}

TEST(ModelTableTest, SelectValThroughRealCode) {
  AlgebraContext Ctx;
  auto Parsed = specs::load(Ctx, specs::TableAlg, "table.alg");
  ASSERT_TRUE(static_cast<bool>(Parsed));
  ModelBinding B(Ctx);
  bindTable(B, Ctx);

  auto Term = parseTermText(
      Ctx, "ROW_COUNT(SELECT_VAL(INSERT_ROW(INSERT_ROW(INSERT_ROW("
           "EMPTY_TABLE, 'a, 'red), 'b, 'blue), 'c, 'red), 'red))");
  ASSERT_TRUE(static_cast<bool>(Term)) << Term.error().message();
  auto V = B.evaluate(*Term);
  ASSERT_TRUE(static_cast<bool>(V));
  EXPECT_EQ(V->get<int64_t>(), 2);
}

//===----------------------------------------------------------------------===//
// PriorityQueue (binary heap) against the user-written spec file
//===----------------------------------------------------------------------===//

#ifdef ALGSPEC_SOURCE_DIR
#include <fstream>
#include <sstream>

namespace {
using PQ = adt::PriorityQueue<int64_t>;
} // namespace

TEST(ModelPriorityQueueTest, HeapSatisfiesTheSpecFile) {
  // The spec ships as a *file* (exercising the same path a user takes
  // through the CLI), not as embedded text.
  std::ifstream In(std::string(ALGSPEC_SOURCE_DIR) +
                   "/examples/specs/priority_queue.alg");
  ASSERT_TRUE(In.good());
  std::ostringstream Buffer;
  Buffer << In.rdbuf();

  AlgebraContext Ctx;
  auto Parsed = parseSpecText(Ctx, Buffer.str(), "priority_queue.alg");
  ASSERT_TRUE(static_cast<bool>(Parsed)) << Parsed.error().message();
  const Spec &S = (*Parsed)[0];

  ModelBinding B(Ctx);
  B.bindOp("EMPTY_PQ",
           [](std::span<const Value>) { return Value::of(PQ()); });
  B.bindOp("INSERT", [](std::span<const Value> Args) {
    PQ P = Args[0].get<PQ>();
    P.insert(Args[1].get<int64_t>());
    return Value::of(std::move(P));
  });
  B.bindOp("MIN", [](std::span<const Value> Args) {
    auto M = Args[0].get<PQ>().min();
    return M ? Value::of(*M) : Value::error();
  });
  B.bindOp("DELETE_MIN", [](std::span<const Value> Args) {
    PQ P = Args[0].get<PQ>();
    return P.deleteMin() ? Value::of(std::move(P)) : Value::error();
  });
  B.bindOp("IS_EMPTY?", [](std::span<const Value> Args) {
    return Value::of(Args[0].get<PQ>().isEmpty());
  });
  B.bindOp("SIZE", [](std::span<const Value> Args) {
    return Value::of(static_cast<int64_t>(Args[0].get<PQ>().size()));
  });
  B.bindEquals(Ctx.lookupSort("PQueue"),
               [](const Value &A, const Value &B2) {
                 return A.get<PQ>() == B2.get<PQ>();
               });

  ModelTestOptions Options;
  Options.MaxDepth = 5;
  // Duplicate Int values matter for the lei tie-break; widen the pool.
  Options.Enum.IntValues = {0, 1, 1, 2};
  ModelTestReport Report = testModel(Ctx, S, B, Options);
  EXPECT_TRUE(Report.AllPassed) << Report.render();
  EXPECT_EQ(Report.Results.size(), 8u);
}
#endif // ALGSPEC_SOURCE_DIR
