//===----------------------------------------------------------------------===//
//
// Part of AlgSpec. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Model-based testing (paper section 5): every concrete ADT is run
/// against the axioms of its algebraic specification. A deliberately
/// broken implementation shows the tester catching real bugs.
///
//===----------------------------------------------------------------------===//

#include "adt/Bindings.h"
#include "adt/KnowsList.h"
#include "adt/KnowsSymbolTable.h"
#include "adt/PriorityQueue.h"
#include "ast/AlgebraContext.h"
#include "model/ModelBinding.h"
#include "model/ModelTester.h"
#include "parser/Parser.h"
#include "specs/BuiltinSpecs.h"

#include <gtest/gtest.h>

#include <string>

using namespace algspec;

using KTableV = adt::KnowsSymbolTable<std::string>;

namespace {

/// Installs the shared registry binding for \p S (the same wiring the
/// spec_testing example and `algspec testgen` use). \p Mutant selects a
/// seeded defect; empty is the correct implementation.
void installFromRegistry(ModelBinding &B, const Spec &S,
                         std::string_view Mutant = "") {
  const adt::AdtBinding *Row = adt::findAdtBinding(S.name());
  ASSERT_NE(Row, nullptr) << "no registry row for spec " << S.name();
  Result<void> R = Row->Install(B, S, Mutant);
  ASSERT_TRUE(static_cast<bool>(R)) << R.error().message();
}

} // namespace

//===----------------------------------------------------------------------===//
// Queue<T> against the Queue spec (axioms 1-6)
//===----------------------------------------------------------------------===//

TEST(ModelQueueTest, RealImplementationSatisfiesAllAxioms) {
  AlgebraContext Ctx;
  auto Q = specs::loadQueue(Ctx);
  ASSERT_TRUE(static_cast<bool>(Q));
  ModelBinding B(Ctx);
  installFromRegistry(B, *Q);

  ModelTestOptions Options;
  Options.MaxDepth = 5; // Queues of up to 4 elements, both atoms each.
  ModelTestReport Report = testModel(Ctx, *Q, B, Options);
  EXPECT_TRUE(Report.AllPassed) << Report.render();
  ASSERT_EQ(Report.Results.size(), 6u);
  for (const AxiomTestResult &R : Report.Results)
    EXPECT_GT(R.InstancesChecked, 0u);
}

TEST(ModelQueueTest, LifoBugCaughtByAxiom6) {
  AlgebraContext Ctx;
  auto Q = specs::loadQueue(Ctx);
  ASSERT_TRUE(static_cast<bool>(Q));
  ModelBinding B(Ctx);
  installFromRegistry(B, *Q, "remove-lifo");

  ModelTestOptions Options;
  Options.MaxDepth = 4;
  ModelTestReport Report = testModel(Ctx, *Q, B, Options);
  EXPECT_FALSE(Report.AllPassed);
  // Axiom 6 (REMOVE over a non-empty queue) is the one that pins FIFO.
  bool Axiom6Failed = false;
  for (const AxiomTestResult &R : Report.Results)
    if (R.AxiomNumber == 6 && !R.Passed)
      Axiom6Failed = true;
  EXPECT_TRUE(Axiom6Failed) << Report.render();
}

TEST(ModelQueueTest, EvaluateGroundTermRunsRealCode) {
  AlgebraContext Ctx;
  auto Q = specs::loadQueue(Ctx);
  ASSERT_TRUE(static_cast<bool>(Q));
  ModelBinding B(Ctx);
  installFromRegistry(B, *Q);

  auto Term = parseTermText(Ctx, "FRONT(REMOVE(ADD(ADD(NEW, 'a), 'b)))");
  ASSERT_TRUE(static_cast<bool>(Term));
  auto V = B.evaluate(*Term);
  ASSERT_TRUE(static_cast<bool>(V));
  EXPECT_EQ(V->get<std::string>(), "b");
}

TEST(ModelQueueTest, ErrorsPropagateThroughEvaluation) {
  AlgebraContext Ctx;
  auto Q = specs::loadQueue(Ctx);
  ASSERT_TRUE(static_cast<bool>(Q));
  ModelBinding B(Ctx);
  installFromRegistry(B, *Q);

  auto Term = parseTermText(Ctx, "IS_EMPTY?(REMOVE(NEW))");
  ASSERT_TRUE(static_cast<bool>(Term));
  auto V = B.evaluate(*Term);
  ASSERT_TRUE(static_cast<bool>(V));
  EXPECT_TRUE(V->isError());
}

//===----------------------------------------------------------------------===//
// Stack + HashArray against axioms 10-20 (the paper's PL/I code, E6)
//===----------------------------------------------------------------------===//

TEST(ModelStackArrayTest, PaperImplementationSatisfiesAxioms10To20) {
  AlgebraContext Ctx;
  auto Parsed = specs::loadStackArray(Ctx);
  ASSERT_TRUE(static_cast<bool>(Parsed));
  ModelBinding B(Ctx);
  for (const Spec &S : *Parsed)
    installFromRegistry(B, S);

  ModelTestOptions Options;
  Options.MaxDepth = 3;
  for (const Spec &S : *Parsed) {
    ModelTestReport Report = testModel(Ctx, S, B, Options);
    EXPECT_TRUE(Report.AllPassed) << S.name() << ":\n" << Report.render();
  }
}

//===----------------------------------------------------------------------===//
// SymbolTable against axioms 1-9
//===----------------------------------------------------------------------===//

TEST(ModelSymbolTableTest, StackOfArraysSatisfiesAxioms1To9) {
  AlgebraContext Ctx;
  auto S = specs::loadSymboltable(Ctx);
  ASSERT_TRUE(static_cast<bool>(S));
  ModelBinding B(Ctx);
  installFromRegistry(B, *S);

  ModelTestOptions Options;
  Options.MaxDepth = 4;
  ModelTestReport Report = testModel(Ctx, *S, B, Options);
  EXPECT_TRUE(Report.AllPassed) << Report.render();
  EXPECT_EQ(Report.Results.size(), 9u);
}

//===----------------------------------------------------------------------===//
// KnowsSymbolTable against the adapted spec (E7)
//===----------------------------------------------------------------------===//

TEST(ModelKnowsTest, KnowsTableSatisfiesAdaptedAxioms) {
  AlgebraContext Ctx;
  auto Parsed = specs::loadKnowsSymboltable(Ctx);
  ASSERT_TRUE(static_cast<bool>(Parsed));
  ASSERT_EQ(Parsed->size(), 2u);
  const Spec &KnowlistSpec = (*Parsed)[0];
  const Spec &TableSpec = (*Parsed)[1];

  ModelBinding B(Ctx);
  SortId TableSort = Ctx.lookupSort("Symboltable");

  // The Knowlist half comes from the shared registry; the adapted
  // KnowsSymbolTable stays a local binding (it takes a Knowlist argument
  // on ENTERBLOCK, unlike the registry's plain SymbolTable).
  installFromRegistry(B, KnowlistSpec);

  B.bindOp("INIT", [](std::span<const Value>) {
    return Value::of(KTableV(4));
  });
  B.bindOp("ENTERBLOCK", [](std::span<const Value> Args) {
    KTableV T = Args[0].get<KTableV>();
    T.enterBlock(Args[1].get<adt::KnowsList>());
    return Value::of(std::move(T));
  });
  B.bindOp("LEAVEBLOCK", [](std::span<const Value> Args) {
    KTableV T = Args[0].get<KTableV>();
    if (!T.leaveBlock())
      return Value::error();
    return Value::of(std::move(T));
  });
  B.bindOp("ADD", [](std::span<const Value> Args) {
    KTableV T = Args[0].get<KTableV>();
    T.add(Args[1].get<std::string>(), Args[2].get<std::string>());
    return Value::of(std::move(T));
  });
  B.bindOp("IS_INBLOCK?", [](std::span<const Value> Args) {
    return Value::of(
        Args[0].get<KTableV>().isInBlock(Args[1].get<std::string>()));
  });
  B.bindOp("RETRIEVE", [](std::span<const Value> Args) {
    std::optional<std::string> V =
        Args[0].get<KTableV>().retrieve(Args[1].get<std::string>());
    return V ? Value::of(*V) : Value::error();
  });
  B.bindEquals(TableSort, [](const Value &A, const Value &B2) {
    return A.get<KTableV>() == B2.get<KTableV>();
  });

  ModelTestOptions Options;
  Options.MaxDepth = 3;
  ModelTestReport KReport = testModel(Ctx, KnowlistSpec, B, Options);
  EXPECT_TRUE(KReport.AllPassed) << KReport.render();
  ModelTestReport TReport = testModel(Ctx, TableSpec, B, Options);
  EXPECT_TRUE(TReport.AllPassed) << TReport.render();
}

//===----------------------------------------------------------------------===//
// Binding mechanics
//===----------------------------------------------------------------------===//

TEST(ModelBindingTest, UnboundOperationIsReportedNotCrash) {
  AlgebraContext Ctx;
  auto Q = specs::loadQueue(Ctx);
  ASSERT_TRUE(static_cast<bool>(Q));
  ModelBinding B(Ctx); // Nothing bound.
  auto Term = parseTermText(Ctx, "FRONT(NEW)");
  ASSERT_TRUE(static_cast<bool>(Term));
  auto V = B.evaluate(*Term);
  ASSERT_FALSE(static_cast<bool>(V));
  EXPECT_NE(V.error().message().find("no binding"), std::string::npos);
}

TEST(ModelBindingTest, BuiltinsEvaluateWithoutBindings) {
  AlgebraContext Ctx;
  auto Term = parseTermText(Ctx, "addi(2, 3)");
  ASSERT_TRUE(static_cast<bool>(Term));
  ModelBinding B(Ctx);
  auto V = B.evaluate(*Term);
  ASSERT_TRUE(static_cast<bool>(V)) << V.error().message();
  EXPECT_EQ(V->get<int64_t>(), 5);
}

TEST(ModelBindingTest, IteIsLazyOverRealCode) {
  AlgebraContext Ctx;
  auto Q = specs::loadQueue(Ctx);
  ASSERT_TRUE(static_cast<bool>(Q));
  ModelBinding B(Ctx);
  installFromRegistry(B, *Q);
  // The else-branch would be error; the condition shields it.
  auto Term =
      parseTermText(Ctx, "if IS_EMPTY?(NEW) then 'ok else FRONT(NEW)");
  ASSERT_TRUE(static_cast<bool>(Term)) << Term.error().message();
  auto V = B.evaluate(*Term);
  ASSERT_TRUE(static_cast<bool>(V));
  EXPECT_EQ(V->get<std::string>(), "ok");
}

TEST(ModelBindingTest, SameUsesBoundEquality) {
  AlgebraContext Ctx;
  SortId Ident = Ctx.getOrAddAtomSort("Identifier");
  OpId Same = Ctx.getSameOp(Ident);
  TermId A = Ctx.makeAtom("a", Ident);
  TermId B2 = Ctx.makeAtom("b", Ident);
  ModelBinding B(Ctx);
  auto Eq = B.evaluate(Ctx.makeOp(Same, {A, A}));
  ASSERT_TRUE(static_cast<bool>(Eq));
  EXPECT_TRUE(Eq->get<bool>());
  auto Ne = B.evaluate(Ctx.makeOp(Same, {A, B2}));
  ASSERT_TRUE(static_cast<bool>(Ne));
  EXPECT_FALSE(Ne->get<bool>());
}

//===----------------------------------------------------------------------===//
// Table against TableAlg (the section-5 database characterization, E14)
//===----------------------------------------------------------------------===//

TEST(ModelTableTest, DatabaseTableSatisfiesItsSpec) {
  AlgebraContext Ctx;
  auto Parsed = specs::load(Ctx, specs::TableAlg, "table.alg");
  ASSERT_TRUE(static_cast<bool>(Parsed)) << Parsed.error().message();
  ModelBinding B(Ctx);
  installFromRegistry(B, (*Parsed)[0]);

  ModelTestOptions Options;
  Options.MaxDepth = 4;
  ModelTestReport Report = testModel(Ctx, (*Parsed)[0], B, Options);
  EXPECT_TRUE(Report.AllPassed) << Report.render();
  EXPECT_EQ(Report.Results.size(), 10u);
}

TEST(ModelTableTest, SelectValThroughRealCode) {
  AlgebraContext Ctx;
  auto Parsed = specs::load(Ctx, specs::TableAlg, "table.alg");
  ASSERT_TRUE(static_cast<bool>(Parsed));
  ModelBinding B(Ctx);
  installFromRegistry(B, (*Parsed)[0]);

  auto Term = parseTermText(
      Ctx, "ROW_COUNT(SELECT_VAL(INSERT_ROW(INSERT_ROW(INSERT_ROW("
           "EMPTY_TABLE, 'a, 'red), 'b, 'blue), 'c, 'red), 'red))");
  ASSERT_TRUE(static_cast<bool>(Term)) << Term.error().message();
  auto V = B.evaluate(*Term);
  ASSERT_TRUE(static_cast<bool>(V));
  EXPECT_EQ(V->get<int64_t>(), 2);
}

//===----------------------------------------------------------------------===//
// PriorityQueue (binary heap) against the user-written spec file
//===----------------------------------------------------------------------===//

#ifdef ALGSPEC_SOURCE_DIR
#include <fstream>
#include <sstream>

namespace {
using PQ = adt::PriorityQueue<int64_t>;
} // namespace

TEST(ModelPriorityQueueTest, HeapSatisfiesTheSpecFile) {
  // The spec ships as a *file* (exercising the same path a user takes
  // through the CLI), not as embedded text.
  std::ifstream In(std::string(ALGSPEC_SOURCE_DIR) +
                   "/examples/specs/priority_queue.alg");
  ASSERT_TRUE(In.good());
  std::ostringstream Buffer;
  Buffer << In.rdbuf();

  AlgebraContext Ctx;
  auto Parsed = parseSpecText(Ctx, Buffer.str(), "priority_queue.alg");
  ASSERT_TRUE(static_cast<bool>(Parsed)) << Parsed.error().message();
  const Spec &S = (*Parsed)[0];

  ModelBinding B(Ctx);
  B.bindOp("EMPTY_PQ",
           [](std::span<const Value>) { return Value::of(PQ()); });
  B.bindOp("INSERT", [](std::span<const Value> Args) {
    PQ P = Args[0].get<PQ>();
    P.insert(Args[1].get<int64_t>());
    return Value::of(std::move(P));
  });
  B.bindOp("MIN", [](std::span<const Value> Args) {
    auto M = Args[0].get<PQ>().min();
    return M ? Value::of(*M) : Value::error();
  });
  B.bindOp("DELETE_MIN", [](std::span<const Value> Args) {
    PQ P = Args[0].get<PQ>();
    return P.deleteMin() ? Value::of(std::move(P)) : Value::error();
  });
  B.bindOp("IS_EMPTY?", [](std::span<const Value> Args) {
    return Value::of(Args[0].get<PQ>().isEmpty());
  });
  B.bindOp("SIZE", [](std::span<const Value> Args) {
    return Value::of(static_cast<int64_t>(Args[0].get<PQ>().size()));
  });
  B.bindEquals(Ctx.lookupSort("PQueue"),
               [](const Value &A, const Value &B2) {
                 return A.get<PQ>() == B2.get<PQ>();
               });

  ModelTestOptions Options;
  Options.MaxDepth = 5;
  // Duplicate Int values matter for the lei tie-break; widen the pool.
  Options.Enum.IntValues = {0, 1, 1, 2};
  ModelTestReport Report = testModel(Ctx, S, B, Options);
  EXPECT_TRUE(Report.AllPassed) << Report.render();
  EXPECT_EQ(Report.Results.size(), 8u);
}
#endif // ALGSPEC_SOURCE_DIR
