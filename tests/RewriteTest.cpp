//===----------------------------------------------------------------------===//
//
// Part of AlgSpec. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Unit tests for matching, substitution, rule construction, and the
/// rewrite engine, including the paper's Queue and Symboltable semantics
/// derived purely by rewriting.
///
//===----------------------------------------------------------------------===//

#include "ast/AlgebraContext.h"
#include "ast/TermPrinter.h"
#include "parser/Parser.h"
#include "rewrite/Engine.h"
#include "rewrite/Matcher.h"
#include "rewrite/RewriteSystem.h"
#include "rewrite/Substitution.h"
#include "specs/BuiltinSpecs.h"

#include <gtest/gtest.h>

using namespace algspec;

namespace {

/// Fixture loading the paper's Queue spec and a ready engine.
class QueueRewrite : public ::testing::Test {
protected:
  void SetUp() override {
    auto Loaded = specs::loadQueue(Ctx);
    ASSERT_TRUE(static_cast<bool>(Loaded)) << Loaded.error().message();
    Q = Loaded.take();
    auto Sys = RewriteSystem::buildChecked(Ctx, {&Q});
    ASSERT_TRUE(static_cast<bool>(Sys)) << Sys.error().message();
    System = std::make_unique<RewriteSystem>(Sys.take());
    Engine = std::make_unique<RewriteEngine>(Ctx, *System);
  }

  /// Parses and normalizes a ground term, expecting success.
  TermId norm(const std::string &Text) {
    auto Term = parseTermText(Ctx, Text);
    EXPECT_TRUE(static_cast<bool>(Term)) << Term.error().message();
    auto Normal = Engine->normalize(*Term);
    EXPECT_TRUE(static_cast<bool>(Normal)) << Normal.error().message();
    return *Normal;
  }

  std::string normStr(const std::string &Text) {
    return printTerm(Ctx, norm(Text));
  }

  AlgebraContext Ctx;
  Spec Q;
  std::unique_ptr<RewriteSystem> System;
  std::unique_ptr<RewriteEngine> Engine;
};

} // namespace

//===----------------------------------------------------------------------===//
// Matching and substitution
//===----------------------------------------------------------------------===//

TEST_F(QueueRewrite, MatchBindsVariables) {
  const Axiom &Ax4 = Q.axioms()[3]; // FRONT(ADD(q, i)) = ...
  auto Subject = parseTermText(Ctx, "FRONT(ADD(NEW, 'a))");
  ASSERT_TRUE(static_cast<bool>(Subject));
  Substitution Subst;
  ASSERT_TRUE(matchTerm(Ctx, Ax4.Lhs, *Subject, Subst));
  EXPECT_EQ(Subst.size(), 2u);
}

TEST_F(QueueRewrite, MatchRejectsWrongHead) {
  const Axiom &Ax4 = Q.axioms()[3];
  auto Subject = parseTermText(Ctx, "FRONT(NEW)");
  ASSERT_TRUE(static_cast<bool>(Subject));
  Substitution Subst;
  EXPECT_FALSE(matchTerm(Ctx, Ax4.Lhs, *Subject, Subst));
}

TEST_F(QueueRewrite, NonLinearPatternNeedsEqualSubterms) {
  // Build pattern F-like: SAME(i, i) with one variable used twice.
  SortId Item = Ctx.lookupSort("Item");
  VarId I = Ctx.addVar("ii", Item);
  TermId IT = Ctx.makeVar(I);
  OpId Same = Ctx.getSameOp(Item);
  TermId Pattern = Ctx.makeOp(Same, {IT, IT});

  TermId A = Ctx.makeAtom("a", Item);
  TermId B = Ctx.makeAtom("b", Item);
  Substitution S1;
  EXPECT_TRUE(matchTerm(Ctx, Pattern, Ctx.makeOp(Same, {A, A}), S1));
  Substitution S2;
  EXPECT_FALSE(matchTerm(Ctx, Pattern, Ctx.makeOp(Same, {A, B}), S2));
}

TEST_F(QueueRewrite, SubstitutionLeavesUnboundVars) {
  SortId Queue = Ctx.lookupSort("Queue");
  VarId V1 = Ctx.addVar("v1", Queue);
  VarId V2 = Ctx.addVar("v2", Queue);
  OpId Remove = Ctx.lookupOp("REMOVE");
  TermId Term = Ctx.makeOp(Remove, {Ctx.makeVar(V1)});
  Substitution Subst;
  Subst.bind(V2, Ctx.makeOp(Ctx.lookupOp("NEW"), {}));
  EXPECT_EQ(applySubstitution(Ctx, Term, Subst), Term);
}

TEST_F(QueueRewrite, SubstitutionIsIdentityOnGround) {
  auto Ground = parseTermText(Ctx, "ADD(NEW, 'a)");
  ASSERT_TRUE(static_cast<bool>(Ground));
  Substitution Subst;
  EXPECT_EQ(applySubstitution(Ctx, *Ground, Subst), *Ground);
}

//===----------------------------------------------------------------------===//
// Rewrite system construction
//===----------------------------------------------------------------------===//

TEST_F(QueueRewrite, RulesIndexedByHead) {
  EXPECT_EQ(System->size(), 6u);
  EXPECT_EQ(System->rulesFor(Ctx.lookupOp("FRONT")).size(), 2u);
  EXPECT_EQ(System->rulesFor(Ctx.lookupOp("IS_EMPTY?")).size(), 2u);
  EXPECT_TRUE(System->rulesFor(Ctx.lookupOp("ADD")).empty());
}

TEST(RewriteSystemTest, RejectsRhsOnlyVariable) {
  AlgebraContext Ctx;
  auto Parsed = parseSpecText(Ctx, R"(
spec Q
  sorts Q
  ops
    MK : -> Q
    F : Q -> Q
  constructors MK
  vars a, b : Q
  axioms
    F(a) = b
end
)");
  ASSERT_TRUE(static_cast<bool>(Parsed));
  auto Sys = RewriteSystem::buildChecked(Ctx, {&(*Parsed)[0]});
  ASSERT_FALSE(static_cast<bool>(Sys));
  EXPECT_NE(Sys.error().message().find("right-hand side only"),
            std::string::npos);
}

TEST(RewriteSystemTest, RejectsVariableLhs) {
  AlgebraContext Ctx;
  auto Parsed = parseSpecText(Ctx, R"(
spec Q
  sorts Q
  ops MK : -> Q
  constructors MK
  vars a : Q
  axioms
    a = MK
end
)");
  ASSERT_TRUE(static_cast<bool>(Parsed));
  auto Sys = RewriteSystem::buildChecked(Ctx, {&(*Parsed)[0]});
  ASSERT_FALSE(static_cast<bool>(Sys));
  EXPECT_NE(Sys.error().message().find("not an operation application"),
            std::string::npos);
}

//===----------------------------------------------------------------------===//
// Queue semantics by rewriting (paper section 3)
//===----------------------------------------------------------------------===//

TEST_F(QueueRewrite, FrontIsFifo) {
  EXPECT_EQ(normStr("FRONT(ADD(ADD(ADD(NEW, 'a), 'b), 'c))"), "'a");
}

TEST_F(QueueRewrite, RemoveDropsOldest) {
  EXPECT_EQ(normStr("REMOVE(ADD(ADD(NEW, 'a), 'b))"), "ADD(NEW, 'b)");
}

TEST_F(QueueRewrite, FrontAfterRemove) {
  EXPECT_EQ(normStr("FRONT(REMOVE(ADD(ADD(NEW, 'a), 'b)))"), "'b");
}

TEST_F(QueueRewrite, IsEmptyObservations) {
  EXPECT_EQ(norm("IS_EMPTY?(NEW)"), Ctx.trueTerm());
  EXPECT_EQ(norm("IS_EMPTY?(ADD(NEW, 'a))"), Ctx.falseTerm());
  EXPECT_EQ(norm("IS_EMPTY?(REMOVE(ADD(NEW, 'a)))"), Ctx.trueTerm());
}

TEST_F(QueueRewrite, BoundaryConditionsYieldError) {
  EXPECT_TRUE(Ctx.isError(norm("FRONT(NEW)")));
  EXPECT_TRUE(Ctx.isError(norm("REMOVE(NEW)")));
  // Errors propagate strictly through enclosing operations.
  EXPECT_TRUE(Ctx.isError(norm("FRONT(REMOVE(NEW))")));
  EXPECT_TRUE(Ctx.isError(norm("IS_EMPTY?(REMOVE(NEW))")));
}

TEST_F(QueueRewrite, LazyIteShieldsUntakenErrorBranch) {
  // FRONT(ADD(NEW, 'a)) expands to: if IS_EMPTY?(NEW) then 'a else
  // FRONT(NEW); the else-branch is error but must never poison the taken
  // then-branch.
  EXPECT_EQ(normStr("FRONT(ADD(NEW, 'a))"), "'a");
}

TEST_F(QueueRewrite, LongQueueDrain) {
  // Drain a 20-element queue one REMOVE at a time; FRONT follows FIFO.
  std::string Term = "NEW";
  for (char C = 'a'; C < 'a' + 20; ++C)
    Term = "ADD(" + Term + ", 'x" + std::string(1, C) + ")";
  for (int Removed = 0; Removed < 20; ++Removed) {
    std::string Observe = "FRONT(" + Term + ")";
    std::string Expect =
        "'x" + std::string(1, static_cast<char>('a' + Removed));
    EXPECT_EQ(normStr(Observe), Expect);
    Term = "REMOVE(" + Term + ")";
  }
  EXPECT_EQ(norm("IS_EMPTY?(" + Term + ")"), Ctx.trueTerm());
}

TEST_F(QueueRewrite, OpenTermsNormalizeSymbolically) {
  VarScope Scope;
  Scope.emplace("q", Ctx.addVar("q", Ctx.lookupSort("Queue")));
  auto Term = parseTermText(Ctx, "REMOVE(ADD(q, 'a))", &Scope);
  ASSERT_TRUE(static_cast<bool>(Term));
  auto Normal = Engine->normalize(*Term);
  ASSERT_TRUE(static_cast<bool>(Normal));
  // With q unknown, IS_EMPTY?(q) cannot decide; the conditional survives.
  EXPECT_EQ(printTerm(Ctx, *Normal),
            "if IS_EMPTY?(q) then NEW else ADD(REMOVE(q), 'a)");
}

//===----------------------------------------------------------------------===//
// Engine mechanics
//===----------------------------------------------------------------------===//

TEST_F(QueueRewrite, StatsCountSteps) {
  Engine->resetStats();
  norm("IS_EMPTY?(NEW)");
  EXPECT_EQ(Engine->stats().Steps, 1u);
}

TEST_F(QueueRewrite, MemoizationHitsOnRepeat) {
  norm("FRONT(ADD(ADD(NEW, 'a), 'b))");
  Engine->resetStats();
  norm("FRONT(ADD(ADD(NEW, 'a), 'b))");
  EXPECT_EQ(Engine->stats().Steps, 0u);
  EXPECT_GE(Engine->stats().CacheHits, 1u);
}

TEST_F(QueueRewrite, MemoizationDisabledRecomputes) {
  EngineOptions Opts;
  Opts.Memoize = false;
  RewriteEngine Raw(Ctx, *System, Opts);
  auto Term = parseTermText(Ctx, "FRONT(ADD(ADD(NEW, 'a), 'b))");
  ASSERT_TRUE(static_cast<bool>(Term));
  ASSERT_TRUE(static_cast<bool>(Raw.normalize(*Term)));
  uint64_t FirstSteps = Raw.stats().Steps;
  ASSERT_TRUE(static_cast<bool>(Raw.normalize(*Term)));
  EXPECT_EQ(Raw.stats().Steps, 2 * FirstSteps);
}

TEST_F(QueueRewrite, CacheMissesCounted) {
  Engine->resetStats();
  norm("FRONT(ADD(NEW, 'z))");
  EXPECT_GT(Engine->stats().CacheMisses, 0u);
  uint64_t MissesAfterFirst = Engine->stats().CacheMisses;
  norm("FRONT(ADD(NEW, 'z))");
  // The repeat is answered from the memo at the top, adding no misses.
  EXPECT_EQ(Engine->stats().CacheMisses, MissesAfterFirst);
  EXPECT_GE(Engine->stats().CacheHits, 1u);
}

TEST_F(QueueRewrite, MemoBoundEvictsAndStaysCorrect) {
  EngineOptions Opts;
  Opts.MemoLimit = 4;
  RewriteEngine Small(Ctx, *System, Opts);
  // A deep queue creates far more than four memo entries, forcing at
  // least one bulk eviction mid-normalization.
  std::string T = "NEW";
  for (char C = 'a'; C <= 'f'; ++C)
    T = "ADD(" + T + ", '" + std::string(1, C) + ")";
  auto Term = parseTermText(Ctx, "FRONT(" + T + ")");
  ASSERT_TRUE(static_cast<bool>(Term));
  auto Bounded = Small.normalize(*Term);
  ASSERT_TRUE(static_cast<bool>(Bounded));
  EXPECT_GT(Small.stats().Evictions, 0u);
  EXPECT_GT(Small.stats().CacheMisses, 0u);
  // Eviction is a performance event, not a semantic one.
  auto Reference = Engine->normalize(*Term);
  ASSERT_TRUE(static_cast<bool>(Reference));
  EXPECT_EQ(*Bounded, *Reference);
  EXPECT_EQ(printTerm(Ctx, *Bounded), "'a");
}

TEST_F(QueueRewrite, TraceRecordsRuleApplications) {
  EngineOptions Opts;
  Opts.KeepTrace = true;
  RewriteEngine Tracer(Ctx, *System, Opts);
  auto Term = parseTermText(Ctx, "IS_EMPTY?(NEW)");
  ASSERT_TRUE(static_cast<bool>(Term));
  ASSERT_TRUE(static_cast<bool>(Tracer.normalize(*Term)));
  ASSERT_EQ(Tracer.trace().size(), 1u);
  EXPECT_EQ(Tracer.trace()[0].AppliedRule->AxiomNumber, 1u);
  EXPECT_EQ(Tracer.trace()[0].AppliedRule->SpecName, "Queue");
}

TEST(EngineTest, FuelExhaustionOnDivergentSpec) {
  AlgebraContext Ctx;
  auto Parsed = parseSpecText(Ctx, R"(
spec Loop
  sorts L
  ops
    MK : -> L
    SPIN : L -> L
  constructors MK
  vars x : L
  axioms
    SPIN(x) = SPIN(SPIN(x))
end
)");
  ASSERT_TRUE(static_cast<bool>(Parsed));
  auto Sys = RewriteSystem::buildChecked(Ctx, {&(*Parsed)[0]});
  ASSERT_TRUE(static_cast<bool>(Sys));
  EngineOptions Opts;
  Opts.MaxSteps = 100;
  RewriteEngine Engine(Ctx, *Sys, Opts);
  auto Term = parseTermText(Ctx, "SPIN(MK)");
  ASSERT_TRUE(static_cast<bool>(Term));
  auto Normal = Engine.normalize(*Term);
  ASSERT_FALSE(static_cast<bool>(Normal));
  EXPECT_NE(Normal.error().message().find("fuel exhausted"),
            std::string::npos);
}

TEST(EngineTest, StuckTermDetected) {
  AlgebraContext Ctx;
  auto Parsed = parseSpecText(Ctx, R"(
spec Partial
  sorts P
  ops
    A : -> P
    B : -> P
    F : P -> P
  constructors A, B
  vars x : P
  axioms
    F(A) = A
end
)");
  ASSERT_TRUE(static_cast<bool>(Parsed));
  auto Sys = RewriteSystem::buildChecked(Ctx, {&(*Parsed)[0]});
  ASSERT_TRUE(static_cast<bool>(Sys));
  RewriteEngine Engine(Ctx, *Sys);
  auto Covered = parseTermText(Ctx, "F(A)");
  auto Uncovered = parseTermText(Ctx, "F(B)");
  ASSERT_TRUE(static_cast<bool>(Covered) && static_cast<bool>(Uncovered));
  EXPECT_FALSE(Engine.isStuck(*Engine.normalize(*Covered)));
  EXPECT_TRUE(Engine.isStuck(*Engine.normalize(*Uncovered)));
}

//===----------------------------------------------------------------------===//
// Builtin evaluation
//===----------------------------------------------------------------------===//

TEST_F(QueueRewrite, IntBuiltins) {
  EXPECT_EQ(normStr("addi(2, 3)"), "5");
  EXPECT_EQ(normStr("subi(2, 3)"), "-1");
  EXPECT_EQ(norm("lei(2, 2)"), Ctx.trueTerm());
  EXPECT_EQ(norm("lti(2, 2)"), Ctx.falseTerm());
  EXPECT_EQ(norm("eqi(4, 4)"), Ctx.trueTerm());
}

TEST_F(QueueRewrite, BoolBuiltins) {
  EXPECT_EQ(norm("not(true)"), Ctx.falseTerm());
  EXPECT_EQ(norm("and(true, false)"), Ctx.falseTerm());
  EXPECT_EQ(norm("or(false, true)"), Ctx.trueTerm());
}

TEST_F(QueueRewrite, SameOnAtoms) {
  SortId Item = Ctx.lookupSort("Item");
  OpId Same = Ctx.getSameOp(Item);
  TermId A = Ctx.makeAtom("a", Item);
  TermId B = Ctx.makeAtom("b", Item);
  EXPECT_EQ(*Engine->normalize(Ctx.makeOp(Same, {A, A})), Ctx.trueTerm());
  EXPECT_EQ(*Engine->normalize(Ctx.makeOp(Same, {A, B})), Ctx.falseTerm());
}

TEST_F(QueueRewrite, SameOnIdenticalGroundTerms) {
  SortId Queue = Ctx.lookupSort("Queue");
  OpId Same = Ctx.getSameOp(Queue);
  auto Q1 = parseTermText(Ctx, "ADD(NEW, 'a)");
  ASSERT_TRUE(static_cast<bool>(Q1));
  EXPECT_EQ(*Engine->normalize(Ctx.makeOp(Same, {*Q1, *Q1})),
            Ctx.trueTerm());
}

TEST_F(QueueRewrite, SameStaysOpenOnVariables) {
  SortId Item = Ctx.lookupSort("Item");
  VarId X = Ctx.addVar("x", Item);
  OpId Same = Ctx.getSameOp(Item);
  TermId XT = Ctx.makeVar(X);
  TermId A = Ctx.makeAtom("a", Item);
  TermId Open = Ctx.makeOp(Same, {XT, A});
  EXPECT_EQ(*Engine->normalize(Open), Open);
}

TEST_F(QueueRewrite, SameDecidesDistinctFreeConstructorTerms) {
  // No Queue rule rewrites a NEW/ADD-headed term, so Queue is freely
  // generated and distinct constructor normal forms denote distinct
  // values: the disequality evaluates to false instead of leaving SAME
  // stuck.
  SortId Queue = Ctx.lookupSort("Queue");
  OpId Same = Ctx.getSameOp(Queue);
  auto Q1 = parseTermText(Ctx, "ADD(NEW, 'a)");
  auto Q2 = parseTermText(Ctx, "ADD(ADD(NEW, 'a), 'b)");
  auto Q3 = parseTermText(Ctx, "NEW");
  ASSERT_TRUE(static_cast<bool>(Q1) && static_cast<bool>(Q2) &&
              static_cast<bool>(Q3));
  EXPECT_EQ(*Engine->normalize(Ctx.makeOp(Same, {*Q1, *Q2})),
            Ctx.falseTerm());
  EXPECT_EQ(*Engine->normalize(Ctx.makeOp(Same, {*Q3, *Q1})),
            Ctx.falseTerm());
}

TEST(EngineTest, SameStaysOpenOnNonFreeConstructorSort) {
  // S heads a rule (mod-2 naturals: S(S(Z)) collapses to Z), so M is
  // not freely generated: distinct constructor normal forms may still
  // denote equal values under a richer theory, and the fast path must
  // not fire.
  AlgebraContext Ctx;
  auto Parsed = parseSpecText(Ctx, R"(
spec Mod2
  sorts M
  ops
    Z : -> M
    S : M -> M
  constructors Z, S
  vars x : M
  axioms
    S(S(x)) = x
end
)");
  ASSERT_TRUE(static_cast<bool>(Parsed)) << Parsed.error().message();
  auto Sys = RewriteSystem::buildChecked(Ctx, {&(*Parsed)[0]});
  ASSERT_TRUE(static_cast<bool>(Sys)) << Sys.error().message();
  RewriteEngine Engine(Ctx, *Sys);
  SortId M = Ctx.lookupSort("M");
  OpId Same = Ctx.getSameOp(M);
  auto Z = parseTermText(Ctx, "Z");
  auto SZ = parseTermText(Ctx, "S(Z)");
  ASSERT_TRUE(static_cast<bool>(Z) && static_cast<bool>(SZ));
  TermId Diseq = Ctx.makeOp(Same, {*Z, *SZ});
  // Both sides are distinct constructor normal forms, but the sort is
  // not free: SAME must stay stuck rather than answer false.
  EXPECT_EQ(*Engine.normalize(Diseq), Diseq);
}

TEST(EngineTest, SameFreenessOnMutuallyRecursiveSorts) {
  // A and B are mutually recursive (CA : B -> A, CB : A -> B) and A's
  // last constructor heads a rule, so neither sort is free. Freeness
  // must come out the same at any query order: an implementation that
  // memoizes the optimistic in-progress 'true' of A while resolving B
  // would cache B as free when A is queried first — and then decide a
  // disequality of B terms that a richer theory may equate.
  AlgebraContext Ctx;
  auto Parsed = parseSpecText(Ctx, R"(
spec Mutual
  sorts A, B
  ops
    LA : -> A
    CA : B -> A
    NA : A -> A
    LB : -> B
    CB : A -> B
  constructors LA, CA, NA, LB, CB
  vars x : A
  axioms
    NA(NA(x)) = x
end
)");
  ASSERT_TRUE(static_cast<bool>(Parsed)) << Parsed.error().message();
  auto Sys = RewriteSystem::buildChecked(Ctx, {&(*Parsed)[0]});
  ASSERT_TRUE(static_cast<bool>(Sys)) << Sys.error().message();
  RewriteEngine Engine(Ctx, *Sys);
  SortId A = Ctx.lookupSort("A");
  SortId B = Ctx.lookupSort("B");
  auto LA = parseTermText(Ctx, "LA");
  auto CALB = parseTermText(Ctx, "CA(LB)");
  auto LB = parseTermText(Ctx, "LB");
  auto CBLA = parseTermText(Ctx, "CB(LA)");
  ASSERT_TRUE(static_cast<bool>(LA) && static_cast<bool>(CALB) &&
              static_cast<bool>(LB) && static_cast<bool>(CBLA));
  // Query A first — the order that used to poison B's cached verdict.
  TermId DiseqA = Ctx.makeOp(Ctx.getSameOp(A), {*LA, *CALB});
  EXPECT_EQ(*Engine.normalize(DiseqA), DiseqA);
  // B reaches the non-free A through CB, so SAME must stay stuck here
  // too, exactly as if B had been queried directly.
  TermId DiseqB = Ctx.makeOp(Ctx.getSameOp(B), {*LB, *CBLA});
  EXPECT_EQ(*Engine.normalize(DiseqB), DiseqB);
}

//===----------------------------------------------------------------------===//
// Symboltable semantics by rewriting (paper section 4)
//===----------------------------------------------------------------------===//

namespace {
class SymboltableRewrite : public ::testing::Test {
protected:
  void SetUp() override {
    auto Loaded = specs::loadSymboltable(Ctx);
    ASSERT_TRUE(static_cast<bool>(Loaded)) << Loaded.error().message();
    S = Loaded.take();
    auto Sys = RewriteSystem::buildChecked(Ctx, {&S});
    ASSERT_TRUE(static_cast<bool>(Sys)) << Sys.error().message();
    System = std::make_unique<RewriteSystem>(Sys.take());
    Engine = std::make_unique<RewriteEngine>(Ctx, *System);
  }

  TermId norm(const std::string &Text) {
    auto Term = parseTermText(Ctx, Text);
    EXPECT_TRUE(static_cast<bool>(Term)) << Term.error().message();
    auto Normal = Engine->normalize(*Term);
    EXPECT_TRUE(static_cast<bool>(Normal)) << Normal.error().message();
    return *Normal;
  }

  std::string normStr(const std::string &Text) {
    return printTerm(Ctx, norm(Text));
  }

  AlgebraContext Ctx;
  Spec S;
  std::unique_ptr<RewriteSystem> System;
  std::unique_ptr<RewriteEngine> Engine;
};
} // namespace

TEST_F(SymboltableRewrite, RetrieveFindsMostLocalScope) {
  // x declared in outer block with 'int, redeclared in inner with 'bool.
  std::string Table =
      "ADD(ENTERBLOCK(ADD(ENTERBLOCK(INIT), 'x, 'int)), 'x, 'bool)";
  EXPECT_EQ(normStr("RETRIEVE(" + Table + ", 'x)"), "'bool");
  // After leaving the inner block the outer declaration is visible again.
  EXPECT_EQ(normStr("RETRIEVE(LEAVEBLOCK(" + Table + "), 'x)"), "'int");
}

TEST_F(SymboltableRewrite, RetrieveSeesThroughEnterblock) {
  std::string Table = "ENTERBLOCK(ADD(ENTERBLOCK(INIT), 'y, 'int))";
  EXPECT_EQ(normStr("RETRIEVE(" + Table + ", 'y)"), "'int");
}

TEST_F(SymboltableRewrite, IsInblockOnlyChecksCurrentScope) {
  std::string Inner = "ADD(ENTERBLOCK(ADD(ENTERBLOCK(INIT), 'x, 'int)), "
                      "'z, 'bool)";
  EXPECT_EQ(norm("IS_INBLOCK?(" + Inner + ", 'z)"), Ctx.trueTerm());
  // x is declared, but in the *outer* block.
  EXPECT_EQ(norm("IS_INBLOCK?(" + Inner + ", 'x)"), Ctx.falseTerm());
}

TEST_F(SymboltableRewrite, RetrieveUndeclaredIsError) {
  EXPECT_TRUE(Ctx.isError(norm("RETRIEVE(ENTERBLOCK(INIT), 'nope)")));
  EXPECT_TRUE(Ctx.isError(norm("RETRIEVE(INIT, 'x)")));
}

TEST_F(SymboltableRewrite, LeaveblockBoundaries) {
  EXPECT_TRUE(Ctx.isError(norm("LEAVEBLOCK(INIT)")));
  EXPECT_EQ(normStr("LEAVEBLOCK(ENTERBLOCK(INIT))"), "INIT");
  // Leaving a block discards its ADDs (axiom 3 walks past them).
  EXPECT_EQ(normStr("LEAVEBLOCK(ADD(ENTERBLOCK(INIT), 'x, 'int))"), "INIT");
}

TEST_F(SymboltableRewrite, ShadowingDepth3) {
  std::string T = "INIT";
  T = "ADD(ENTERBLOCK(" + T + "), 'v, 'a1)";
  T = "ADD(ENTERBLOCK(" + T + "), 'v, 'a2)";
  T = "ADD(ENTERBLOCK(" + T + "), 'v, 'a3)";
  EXPECT_EQ(normStr("RETRIEVE(" + T + ", 'v)"), "'a3");
  EXPECT_EQ(normStr("RETRIEVE(LEAVEBLOCK(" + T + "), 'v)"), "'a2");
  EXPECT_EQ(normStr("RETRIEVE(LEAVEBLOCK(LEAVEBLOCK(" + T + ")), 'v)"),
            "'a1");
}

//===----------------------------------------------------------------------===//
// Nat and List specs (recursive rules, Int interop)
//===----------------------------------------------------------------------===//

TEST(ExtraSpecsTest, NatArithmetic) {
  AlgebraContext Ctx;
  auto Parsed = specs::load(Ctx, specs::NatAlg, "nat.alg");
  ASSERT_TRUE(static_cast<bool>(Parsed)) << Parsed.error().message();
  auto Sys = RewriteSystem::buildChecked(Ctx, {&(*Parsed)[0]});
  ASSERT_TRUE(static_cast<bool>(Sys));
  RewriteEngine Engine(Ctx, *Sys);

  // 2 * 3 = 6.
  auto Term = parseTermText(
      Ctx, "TIMES(SUCC(SUCC(ZERO)), SUCC(SUCC(SUCC(ZERO))))");
  ASSERT_TRUE(static_cast<bool>(Term));
  auto Normal = Engine.normalize(*Term);
  ASSERT_TRUE(static_cast<bool>(Normal));
  EXPECT_EQ(printTerm(Ctx, *Normal),
            "SUCC(SUCC(SUCC(SUCC(SUCC(SUCC(ZERO))))))");
}

TEST(ExtraSpecsTest, ListAppendAndLength) {
  AlgebraContext Ctx;
  auto Parsed = specs::load(Ctx, specs::ListAlg, "list.alg");
  ASSERT_TRUE(static_cast<bool>(Parsed)) << Parsed.error().message();
  auto Sys = RewriteSystem::buildChecked(Ctx, {&(*Parsed)[0]});
  ASSERT_TRUE(static_cast<bool>(Sys));
  RewriteEngine Engine(Ctx, *Sys);

  auto Term = parseTermText(
      Ctx, "LENGTH(APPEND(CONS(1, CONS(2, NIL)), CONS(3, NIL)))");
  ASSERT_TRUE(static_cast<bool>(Term));
  auto Normal = Engine.normalize(*Term);
  ASSERT_TRUE(static_cast<bool>(Normal));
  EXPECT_EQ(printTerm(Ctx, *Normal), "3");

  auto Head = parseTermText(Ctx, "HEAD(TAIL(CONS(1, CONS(2, NIL))))");
  ASSERT_TRUE(static_cast<bool>(Head));
  EXPECT_EQ(printTerm(Ctx, *Engine.normalize(*Head)), "2");
}

TEST(ExtraSpecsTest, SetMembershipWithDuplicates) {
  AlgebraContext Ctx;
  auto Parsed = specs::load(Ctx, specs::SetAlg, "set.alg");
  ASSERT_TRUE(static_cast<bool>(Parsed)) << Parsed.error().message();
  auto Sys = RewriteSystem::buildChecked(Ctx, {&(*Parsed)[0]});
  ASSERT_TRUE(static_cast<bool>(Sys));
  RewriteEngine Engine(Ctx, *Sys);

  // Delete must remove *every* inserted duplicate.
  auto Term = parseTermText(
      Ctx,
      "MEMBER?(DELETE(INSERT(INSERT(EMPTYSET, 'a), 'a), 'a), 'a)");
  ASSERT_TRUE(static_cast<bool>(Term));
  EXPECT_EQ(*Engine.normalize(*Term), Ctx.falseTerm());
}

TEST(ExtraSpecsTest, KnowsSymboltableRestrictsInheritance) {
  AlgebraContext Ctx;
  auto Parsed = specs::loadKnowsSymboltable(Ctx);
  ASSERT_TRUE(static_cast<bool>(Parsed)) << Parsed.error().message();
  ASSERT_EQ(Parsed->size(), 2u);
  std::vector<const Spec *> Ptrs{&(*Parsed)[0], &(*Parsed)[1]};
  auto Sys = RewriteSystem::buildChecked(Ctx, Ptrs);
  ASSERT_TRUE(static_cast<bool>(Sys));
  RewriteEngine Engine(Ctx, *Sys);

  // x is declared outside; the inner block only "knows" y.
  std::string Outer = "ADD(ADD(INIT, 'x, 'int), 'y, 'bool)";
  std::string Inner =
      "ENTERBLOCK(" + Outer + ", APPEND(CREATE, 'y))";
  auto SeeY = parseTermText(Ctx, "RETRIEVE(" + Inner + ", 'y)");
  auto SeeX = parseTermText(Ctx, "RETRIEVE(" + Inner + ", 'x)");
  ASSERT_TRUE(static_cast<bool>(SeeY) && static_cast<bool>(SeeX));
  EXPECT_EQ(printTerm(Ctx, *Engine.normalize(*SeeY)), "'bool");
  EXPECT_TRUE(Ctx.isError(*Engine.normalize(*SeeX)));
}

//===----------------------------------------------------------------------===//
// Compiled engine: matching automata, templates, work-stack machine
//===----------------------------------------------------------------------===//

namespace {

/// Builds a compiled and an interpreted engine over one parsed spec
/// text; helpers normalize under both and expect identical results.
class EnginePair {
public:
  EnginePair(AlgebraContext &Ctx, std::string_view Text,
             EngineOptions Base = EngineOptions())
      : Ctx(Ctx) {
    auto Parsed = parseSpecText(Ctx, Text);
    EXPECT_TRUE(static_cast<bool>(Parsed)) << Parsed.error().message();
    Specs = Parsed.take();
    std::vector<const Spec *> Ptrs;
    for (const Spec &S : Specs)
      Ptrs.push_back(&S);
    System = std::make_unique<RewriteSystem>(
        RewriteSystem::buildChecked(Ctx, Ptrs).take());
    Base.Compile = true;
    CompiledEng = std::make_unique<RewriteEngine>(Ctx, *System, Base);
    Base.Compile = false;
    InterpEng = std::make_unique<RewriteEngine>(Ctx, *System, Base);
  }

  /// Both engines agree and succeed; returns the printed normal form.
  std::string norm(const std::string &Text) {
    auto Term = parseTermText(Ctx, Text);
    EXPECT_TRUE(static_cast<bool>(Term)) << Term.error().message();
    auto C = CompiledEng->normalize(*Term);
    auto I = InterpEng->normalize(*Term);
    EXPECT_TRUE(static_cast<bool>(C)) << C.error().message();
    EXPECT_TRUE(static_cast<bool>(I)) << I.error().message();
    if (!C || !I)
      return {};
    EXPECT_EQ(*C, *I) << Text;
    return printTerm(Ctx, *C);
  }

  /// Both engines fail; returns the (asserted identical) messages.
  std::string err(const std::string &Text) {
    auto Term = parseTermText(Ctx, Text);
    EXPECT_TRUE(static_cast<bool>(Term)) << Term.error().message();
    auto C = CompiledEng->normalize(*Term);
    auto I = InterpEng->normalize(*Term);
    EXPECT_FALSE(static_cast<bool>(C)) << Text;
    EXPECT_FALSE(static_cast<bool>(I)) << Text;
    if (C || I)
      return {};
    EXPECT_EQ(C.error().message(), I.error().message()) << Text;
    return C.error().message();
  }

  AlgebraContext &Ctx;
  std::vector<Spec> Specs;
  std::unique_ptr<RewriteSystem> System;
  std::unique_ptr<RewriteEngine> CompiledEng;
  std::unique_ptr<RewriteEngine> InterpEng;
};

} // namespace

TEST(CompiledEngineTest, FirstRuleWinsOnOverlappingPatterns) {
  // Axiom order is semantics: the specific F(A) case precedes the
  // catch-all, and the automaton's accept states must preserve that
  // even though both rules reach the same subject.
  AlgebraContext Ctx;
  EnginePair P(Ctx, R"(
spec Overlap
  sorts D
  ops
    A : -> D
    B : -> D
    F : D -> D
  constructors A, B
  vars x : D
  axioms
    F(A) = A
    F(x) = B
end
)");
  EXPECT_EQ(P.norm("F(A)"), "A");
  EXPECT_EQ(P.norm("F(B)"), "B");
}

TEST(CompiledEngineTest, NonLinearPatternsGuardAtAcceptStates) {
  // EQ(x, x) matches only equal subtrees; the automaton compiles the
  // repeated variable into an accept-time position-equality guard.
  AlgebraContext Ctx;
  EnginePair P(Ctx, R"(
spec NonLin
  sorts D
  ops
    A : -> D
    B : -> D
    PAIR : D, D -> D
    EQ : D, D -> D
  constructors A, B, PAIR
  vars x, y : D
  axioms
    EQ(x, x) = A
    EQ(x, y) = B
end
)");
  EXPECT_EQ(P.norm("EQ(A, A)"), "A");
  EXPECT_EQ(P.norm("EQ(A, B)"), "B");
  EXPECT_EQ(P.norm("EQ(PAIR(A, B), PAIR(A, B))"), "A");
  EXPECT_EQ(P.norm("EQ(PAIR(A, B), PAIR(B, A))"), "B");
}

TEST(CompiledEngineTest, NoMatchLeavesTermInNormalForm) {
  AlgebraContext Ctx;
  EnginePair P(Ctx, R"(
spec Partial
  sorts P
  ops
    A : -> P
    B : -> P
    F : P -> P
  constructors A, B
  vars x : P
  axioms
    F(A) = A
end
)");
  EXPECT_EQ(P.norm("F(B)"), "F(B)");
  auto Term = parseTermText(Ctx, "F(B)");
  ASSERT_TRUE(static_cast<bool>(Term));
  EXPECT_TRUE(P.CompiledEng->isStuck(*P.CompiledEng->normalize(*Term)));
}

TEST(CompiledEngineTest, FuelAndDepthErrorsMatchInterpByteForByte) {
  // The machine reports resource exhaustion with the exact message the
  // recursive interpreter would produce, including which term it was
  // working on when the budget ran out.
  EngineOptions Tight;
  Tight.MaxSteps = 50;
  {
    AlgebraContext Ctx;
    EnginePair P(Ctx, R"(
spec Loop
  sorts L
  ops
    MK : -> L
    SPIN : L -> L
  constructors MK
  vars x : L
  axioms
    SPIN(x) = SPIN(SPIN(x))
end
)",
                 Tight);
    EXPECT_NE(P.err("SPIN(MK)").find("fuel exhausted"),
              std::string::npos);
  }
  {
    EngineOptions Shallow;
    Shallow.MaxDepth = 12;
    AlgebraContext Ctx;
    EnginePair P(Ctx, R"(
spec Deep
  sorts L
  ops
    MK : -> L
    GROW : L -> L
  constructors MK
  vars x : L
  axioms
    GROW(x) = GROW(GROW(x))
end
)",
                 Shallow);
    EXPECT_NE(P.err("GROW(MK)").find("depth"), std::string::npos);
  }
}

TEST(CompiledEngineTest, ManyRuleDispatchSkipsImpossibleRules) {
  // One op, one rule per constructor: the interpreter scans rules
  // linearly per redex while the automaton dispatches on the argument's
  // head symbol, so its accept states try exactly one candidate.
  std::string Text = "spec Dispatch\n  sorts D\n  ops\n";
  constexpr int N = 24;
  for (int C = 0; C != N; ++C)
    Text += "    C" + std::to_string(C) + " : -> D\n";
  Text += "    F : D -> D\n  constructors";
  for (int C = 0; C != N; ++C)
    Text += std::string(C ? "," : "") + " C" + std::to_string(C);
  Text += "\n  axioms\n";
  for (int C = 0; C != N; ++C)
    Text += "    F(C" + std::to_string(C) + ") = C" +
            std::to_string((C + 1) % N) + "\n";
  Text += "end\n";

  AlgebraContext Ctx;
  EnginePair P(Ctx, Text);
  // Hit the first, middle, and last rules.
  EXPECT_EQ(P.norm("F(C0)"), "C1");
  EXPECT_EQ(P.norm("F(C11)"), "C12");
  EXPECT_EQ(P.norm("F(C23)"), "C0");

  const EngineStats &C = P.CompiledEng->stats();
  const EngineStats &I = P.InterpEng->stats();
  EXPECT_EQ(C.Steps, I.Steps);
  EXPECT_EQ(C.CacheHits, I.CacheHits);
  EXPECT_EQ(C.CacheMisses, I.CacheMisses);
  EXPECT_EQ(C.Rebuilds, I.Rebuilds);
  // The dispatch win the counters are built to show: the interpreter
  // tried many rules per redex, the automaton one.
  EXPECT_LT(C.MatchAttempts, I.MatchAttempts);
  EXPECT_GT(C.AutomatonVisits, 0u);
  EXPECT_EQ(I.AutomatonVisits, 0u);
}

TEST(CompiledEngineTest, IteStaysConditionStrictBranchLazy) {
  // The machine's ITE staging must not normalize the untaken branch:
  // the taken branch is fine, the untaken one would exhaust fuel.
  EngineOptions Tight;
  Tight.MaxSteps = 200;
  AlgebraContext Ctx;
  EnginePair P(Ctx, R"(
spec Lazy
  sorts L
  ops
    MK : -> L
    SPIN : L -> L
    PICK : Bool, L -> L
  constructors MK
  vars x : L   b : Bool
  axioms
    SPIN(x) = SPIN(SPIN(x))
    PICK(b, x) = if b then x else SPIN(x)
end
)",
               Tight);
  EXPECT_EQ(P.norm("PICK(true, MK)"), "MK");
  EXPECT_NE(P.err("PICK(false, MK)").find("fuel exhausted"),
            std::string::npos);
}
