//===----------------------------------------------------------------------===//
//
// Part of AlgSpec. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// In-process tests for the `algspec serve` daemon: protocol
/// robustness against malformed frames (oversized, truncated, unknown
/// type, bad UTF-8, mid-request disconnects), byte-identity of served
/// responses against the one-shot CLI command layer, backpressure and
/// deadline handling, workspace-cache behavior, stats reconciliation,
/// and graceful drains with requests still in flight.
///
//===----------------------------------------------------------------------===//

#include "server/Client.h"
#include "server/Commands.h"
#include "server/Protocol.h"
#include "server/Server.h"
#include "server/Version.h"
#include "support/Json.h"
#include "support/Socket.h"

#include <gtest/gtest.h>

#include <chrono>
#include <functional>
#include <string>
#include <thread>
#include <unistd.h>
#include <vector>

using namespace algspec;
using namespace algspec::server;

namespace {

ServerOptions tcpOptions() {
  ServerOptions O;
  Result<SocketAddress> A = SocketAddress::parse("tcp:127.0.0.1:0");
  EXPECT_TRUE(bool(A));
  O.Listen.push_back(*A);
  O.Workers = 2;
  O.EnableTestHooks = true;
  return O;
}

/// Starts a server in the fixture's scope and drains it on the way
/// out. Tests must check started() before touching addr().
class LiveServer {
public:
  explicit LiveServer(ServerOptions O) : S(std::move(O)) {
    Result<void> R = S.start();
    Ok = bool(R);
    if (!Ok) {
      Error = R.error().message();
      return;
    }
    Result<SocketAddress> A = SocketAddress::parse(
        "tcp:127.0.0.1:" + std::to_string(S.boundTcpPort()));
    Ok = bool(A);
    if (Ok)
      Addr = *A;
  }

  ~LiveServer() {
    if (Ok) {
      S.requestStop();
      S.wait();
    }
  }

  bool started() const { return Ok; }
  const std::string &startError() const { return Error; }
  const SocketAddress &addr() const { return Addr; }
  Server &server() { return S; }

private:
  Server S;
  SocketAddress Addr;
  bool Ok = false;
  std::string Error;
};

/// One client connection with its own frame reader, for tests that
/// hold a connection across several requests.
struct Conn {
  Socket Sock;
  FrameReader Reader{64u << 20};

  bool connect(const SocketAddress &Addr) {
    Result<Socket> R = connectSocket(Addr);
    if (!R)
      return false;
    Sock = std::move(*R);
    return true;
  }

  Result<WireResponse> rpc(std::string_view Frame) {
    return roundTrip(Sock, Reader, Frame);
  }
};

CommandRequest builtinCommand(std::string_view Command,
                              std::vector<std::string> Builtins) {
  CommandRequest R;
  R.Command = std::string(Command);
  for (const std::string &Name : Builtins)
    R.Sources.push_back({Name + ".alg", std::string(builtinSpecText(Name))});
  R.Opts.Jobs = 1;
  return R;
}

/// Polls the server's stats until \p Pred holds or ~2s pass.
bool waitForStats(
    Server &S,
    const std::function<bool(const ServerStatsSnapshot &)> &Pred) {
  for (int I = 0; I < 400; ++I) {
    if (Pred(S.statsSnapshot()))
      return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return false;
}

} // namespace

//===----------------------------------------------------------------------===//
// Handshake and version stamping
//===----------------------------------------------------------------------===//

TEST(ServerTest, HelloHandshakeReportsBuildIdentity) {
  LiveServer LS(tcpOptions());
  ASSERT_TRUE(LS.started()) << LS.startError();

  Result<WireResponse> R =
      requestOnce(LS.addr(), encodeControlRequest("1", "hello"));
  ASSERT_TRUE(bool(R)) << R.error().message();
  EXPECT_EQ(R->Type, "hello");

  Result<JsonValue> Doc = parseJson(R->Raw);
  ASSERT_TRUE(bool(Doc));
  EXPECT_EQ(Doc->get("id")->asInt(), 1);
  EXPECT_EQ(Doc->get("version")->asString(), gitVersion());
  EXPECT_EQ(Doc->get("build")->asString(), buildType());
  EXPECT_EQ(Doc->get("engine")->asString(), defaultEngineName());
  EXPECT_FALSE(Doc->get("version")->asString().empty());
  EXPECT_EQ(Doc->get("workers")->asInt(), 2);
  EXPECT_EQ(Doc->get("queueMax")->asInt(), 64);
}

//===----------------------------------------------------------------------===//
// Byte-identity against the one-shot command layer
//===----------------------------------------------------------------------===//

TEST(ServerTest, ServedResponsesAreByteIdenticalToRunCommand) {
  LiveServer LS(tcpOptions());
  ASSERT_TRUE(LS.started()) << LS.startError();

  std::vector<CommandRequest> Requests;
  CommandRequest Eval = builtinCommand("eval", {"queue"});
  Eval.Opts.TermText = "FRONT(ADD(ADD(NEW, 'a), 'b))";
  Requests.push_back(Eval);
  CommandRequest Lint = builtinCommand("lint", {"bst"});
  Lint.Opts.Json = true;
  Requests.push_back(Lint);
  CommandRequest Analyze = builtinCommand("analyze", {"boundedqueue"});
  Requests.push_back(Analyze);
  CommandRequest Check = builtinCommand("check", {"queue", "symboltable"});
  Requests.push_back(Check);

  Conn C;
  ASSERT_TRUE(C.connect(LS.addr()));
  for (const CommandRequest &Req : Requests) {
    CommandResult Expected = runCommand(Req);
    Result<WireResponse> Got = C.rpc(encodeCommandRequest("7", Req));
    ASSERT_TRUE(bool(Got)) << Got.error().message();
    EXPECT_EQ(Got->Type, "response") << Got->Raw;
    EXPECT_EQ(Got->Exit, Expected.ExitCode) << Req.Command;
    EXPECT_EQ(Got->Out, Expected.Out) << Req.Command;
    EXPECT_EQ(Got->Err, Expected.Err) << Req.Command;
  }
}

TEST(ServerTest, EmptySourceListMatchesCliUsageError) {
  LiveServer LS(tcpOptions());
  ASSERT_TRUE(LS.started()) << LS.startError();

  CommandRequest Req;
  Req.Command = "check";
  Req.Opts.Jobs = 1;
  CommandResult Expected = runCommand(Req);

  Result<WireResponse> Got =
      requestOnce(LS.addr(), encodeCommandRequest("", Req));
  ASSERT_TRUE(bool(Got)) << Got.error().message();
  EXPECT_EQ(Got->Type, "response");
  EXPECT_EQ(Got->Exit, Expected.ExitCode);
  EXPECT_EQ(Got->Err, Expected.Err);
  EXPECT_NE(Expected.Err.find("no specs loaded"), std::string::npos);
}

TEST(ServerTest, BrokenSpecMatchesCliDiagnosticsAndCachesTheFailure) {
  LiveServer LS(tcpOptions());
  ASSERT_TRUE(LS.started()) << LS.startError();

  CommandRequest Req;
  Req.Command = "check";
  Req.Sources.push_back({"broken.alg", "spec Broken\n  sorts\nend\n"});
  Req.Opts.Jobs = 1;
  CommandResult Expected = runCommand(Req);
  ASSERT_EQ(Expected.ExitCode, 1);

  Conn C;
  ASSERT_TRUE(C.connect(LS.addr()));
  Result<WireResponse> First = C.rpc(encodeCommandRequest("1", Req));
  ASSERT_TRUE(bool(First)) << First.error().message();
  EXPECT_EQ(First->Exit, 1);
  EXPECT_EQ(First->Err, Expected.Err);
  EXPECT_FALSE(First->Cached);

  // The failed load is cached too: same bytes, now a cache hit.
  Result<WireResponse> Second = C.rpc(encodeCommandRequest("2", Req));
  ASSERT_TRUE(bool(Second)) << Second.error().message();
  EXPECT_EQ(Second->Err, Expected.Err);
  EXPECT_TRUE(Second->Cached);
}

TEST(ServerTest, RepeatedWorkspaceIsACacheHit) {
  LiveServer LS(tcpOptions());
  ASSERT_TRUE(LS.started()) << LS.startError();

  CommandRequest Req = builtinCommand("check", {"queue"});
  Conn C;
  ASSERT_TRUE(C.connect(LS.addr()));

  Result<WireResponse> First = C.rpc(encodeCommandRequest("1", Req));
  ASSERT_TRUE(bool(First)) << First.error().message();
  EXPECT_FALSE(First->Cached);
  Result<WireResponse> Second = C.rpc(encodeCommandRequest("2", Req));
  ASSERT_TRUE(bool(Second)) << Second.error().message();
  EXPECT_TRUE(Second->Cached);
  EXPECT_EQ(First->Out, Second->Out);

  ServerStatsSnapshot S = LS.server().statsSnapshot();
  EXPECT_EQ(S.Cache.Misses, 1u);
  EXPECT_EQ(S.Cache.Hits, 1u);
  EXPECT_EQ(S.RequestsServed, 2u);
}

TEST(ServerTest, EvictionChurnStaysByteIdenticalAndTruncatesArenas) {
  // A one-entry cache makes every alternation evict the other spec set,
  // so this exercises eviction of entries whose slots served requests
  // moments ago — the shared_ptr pin must keep any in-flight workspace
  // alive, and the per-request truncation must only ever free terms the
  // finished request minted.
  ServerOptions O = tcpOptions();
  O.CacheMaxEntries = 1;
  LiveServer LS(O);
  ASSERT_TRUE(LS.started()) << LS.startError();

  CommandRequest EvalQ = builtinCommand("eval", {"queue"});
  EvalQ.Opts.TermText = "FRONT(ADD(ADD(NEW, 'a), 'b))";
  CommandRequest CheckS = builtinCommand("check", {"symboltable"});
  CommandResult ExpectedEval = runCommand(EvalQ);
  CommandResult ExpectedCheck = runCommand(CheckS);

  Conn C;
  ASSERT_TRUE(C.connect(LS.addr()));
  for (int I = 0; I < 8; ++I) {
    const CommandRequest &Req = (I % 2) ? CheckS : EvalQ;
    const CommandResult &Expected = (I % 2) ? ExpectedCheck : ExpectedEval;
    Result<WireResponse> Got =
        C.rpc(encodeCommandRequest(std::to_string(I), Req));
    ASSERT_TRUE(bool(Got)) << Got.error().message();
    EXPECT_EQ(Got->Exit, Expected.ExitCode) << I;
    EXPECT_EQ(Got->Out, Expected.Out) << I;
    EXPECT_EQ(Got->Err, Expected.Err) << I;
  }

  ServerStatsSnapshot S = LS.server().statsSnapshot();
  EXPECT_GT(S.Cache.Evictions, 0u);
  // Every dispatch truncated its workspace back to the post-elaboration
  // epoch, so the arena counters must show real reclamation.
  EXPECT_GT(S.Arena.Truncations, 0u);
  EXPECT_GT(S.Arena.TermsFreed, 0u);
  EXPECT_GT(S.Arena.BytesFreed, 0u);
  EXPECT_GT(S.Arena.HighWaterTerms, 0u);
}

TEST(ServerTest, StressSurvivesConstantEviction) {
  // The concurrent stress driver against a one-entry cache: workers race
  // acquire/evict/elaborate/truncate constantly. The sanitizer CI matrix
  // runs this under ASan and TSan, which is what pins "eviction never
  // frees a workspace a pooled request still holds".
  ServerOptions O = tcpOptions();
  O.CacheMaxEntries = 1;
  LiveServer LS(O);
  ASSERT_TRUE(LS.started()) << LS.startError();

  StressOptions SO;
  SO.Connections = 4;
  SO.RequestsPerConnection = 8;
  Result<StressReport> R = runStress(LS.addr(), SO);
  ASSERT_TRUE(bool(R)) << R.error().message();
  EXPECT_EQ(R->Mismatched, 0u) << R->FirstMismatch;
  EXPECT_EQ(R->TransportErrors, 0u);
  EXPECT_TRUE(R->ok());
}

//===----------------------------------------------------------------------===//
// Malformed input: every bad frame is a structured error or a clean
// close, never a crash.
//===----------------------------------------------------------------------===//

TEST(ServerTest, UnknownRequestTypeIsStructuredError) {
  LiveServer LS(tcpOptions());
  ASSERT_TRUE(LS.started()) << LS.startError();

  Conn C;
  ASSERT_TRUE(C.connect(LS.addr()));
  Result<WireResponse> R =
      C.rpc("{\"id\": 3, \"type\": \"frobnicate\"}\n");
  ASSERT_TRUE(bool(R)) << R.error().message();
  EXPECT_EQ(R->Type, "error");
  EXPECT_EQ(R->ErrorCode, "unknown_type");
  EXPECT_NE(R->ErrorMessage.find("frobnicate"), std::string::npos);

  // The id is echoed even on errors, and the connection survives.
  Result<JsonValue> Doc = parseJson(R->Raw);
  ASSERT_TRUE(bool(Doc));
  EXPECT_EQ(Doc->get("id")->asInt(), 3);
  Result<WireResponse> After = C.rpc(encodeControlRequest("4", "hello"));
  ASSERT_TRUE(bool(After)) << After.error().message();
  EXPECT_EQ(After->Type, "hello");
}

TEST(ServerTest, MalformedJsonAndBadShapesAreStructuredErrors) {
  LiveServer LS(tcpOptions());
  ASSERT_TRUE(LS.started()) << LS.startError();

  Conn C;
  ASSERT_TRUE(C.connect(LS.addr()));
  struct Case {
    const char *Frame;
    const char *Code;
  } Cases[] = {
      {"this is not json\n", "parse_error"},
      {"{\"type\": \"check\", \"trailing\": }\n", "parse_error"},
      {"[1, 2, 3]\n", "invalid_request"},
      {"{\"no\": \"type\"}\n", "invalid_request"},
      {"{\"type\": 5}\n", "invalid_request"},
      {"{\"id\": {}, \"type\": \"hello\"}\n", "invalid_request"},
      {"{\"type\": \"check\", \"builtins\": [\"nope\"]}\n",
       "invalid_request"},
      {"{\"type\": \"check\", \"sources\": [\"notanobject\"]}\n",
       "invalid_request"},
  };
  for (const Case &TC : Cases) {
    Result<WireResponse> R = C.rpc(TC.Frame);
    ASSERT_TRUE(bool(R)) << TC.Frame << ": " << R.error().message();
    EXPECT_EQ(R->Type, "error") << TC.Frame;
    EXPECT_EQ(R->ErrorCode, TC.Code) << TC.Frame;
  }

  ServerStatsSnapshot S = LS.server().statsSnapshot();
  EXPECT_EQ(S.ProtocolErrors, sizeof(Cases) / sizeof(Cases[0]));

  // All of that left the connection healthy.
  Result<WireResponse> After = C.rpc(encodeControlRequest("", "hello"));
  ASSERT_TRUE(bool(After)) << After.error().message();
  EXPECT_EQ(After->Type, "hello");
}

TEST(ServerTest, BadUtf8FrameIsRejectedAndConnectionSurvives) {
  LiveServer LS(tcpOptions());
  ASSERT_TRUE(LS.started()) << LS.startError();

  Conn C;
  ASSERT_TRUE(C.connect(LS.addr()));
  std::string Frame = "{\"type\": \"\xff\xfe\"}\n";
  Result<WireResponse> R = C.rpc(Frame);
  ASSERT_TRUE(bool(R)) << R.error().message();
  EXPECT_EQ(R->Type, "error");
  EXPECT_EQ(R->ErrorCode, "bad_utf8");
  // The error frame itself must be valid UTF-8 and parseable.
  EXPECT_TRUE(isValidUtf8(R->Raw));

  Result<WireResponse> After = C.rpc(encodeControlRequest("", "stats"));
  ASSERT_TRUE(bool(After)) << After.error().message();
  EXPECT_EQ(After->Type, "stats");
}

TEST(ServerTest, OversizedFrameIsAnsweredThenConnectionDropped) {
  ServerOptions O = tcpOptions();
  O.MaxFrameBytes = 256;
  LiveServer LS(std::move(O));
  ASSERT_TRUE(LS.started()) << LS.startError();

  Conn C;
  ASSERT_TRUE(C.connect(LS.addr()));
  std::string Big = "{\"type\": \"check\", \"pad\": \"";
  Big.append(1024, 'x');
  Big += "\"}\n";
  Result<WireResponse> R = C.rpc(Big);
  ASSERT_TRUE(bool(R)) << R.error().message();
  EXPECT_EQ(R->Type, "error");
  EXPECT_EQ(R->ErrorCode, "oversized_frame");

  // Past an oversized frame the stream is out of sync; the server
  // closes, so the next round trip fails cleanly.
  Result<WireResponse> After = C.rpc(encodeControlRequest("", "hello"));
  EXPECT_FALSE(bool(After));

  // And the server is still fine for everyone else.
  Result<WireResponse> Fresh =
      requestOnce(LS.addr(), encodeControlRequest("", "hello"));
  ASSERT_TRUE(bool(Fresh)) << Fresh.error().message();
  EXPECT_EQ(Fresh->Type, "hello");
}

TEST(ServerTest, MidRequestDisconnectLeavesServerHealthy) {
  LiveServer LS(tcpOptions());
  ASSERT_TRUE(LS.started()) << LS.startError();

  {
    // A frame with no terminating newline, then a hard close.
    Conn C;
    ASSERT_TRUE(C.connect(LS.addr()));
    ASSERT_TRUE(bool(sendAll(C.Sock, "{\"type\": \"che")));
  }

  EXPECT_TRUE(waitForStats(LS.server(), [](const ServerStatsSnapshot &S) {
    return S.ProtocolErrors >= 1;
  }));

  Result<WireResponse> After =
      requestOnce(LS.addr(), encodeControlRequest("", "hello"));
  ASSERT_TRUE(bool(After)) << After.error().message();
  EXPECT_EQ(After->Type, "hello");
}

TEST(ServerTest, SleepHookRequiresTestHooks) {
  ServerOptions O = tcpOptions();
  O.EnableTestHooks = false;
  LiveServer LS(std::move(O));
  ASSERT_TRUE(LS.started()) << LS.startError();

  Result<WireResponse> R =
      requestOnce(LS.addr(), encodeControlRequest("1", "sleep", 10));
  ASSERT_TRUE(bool(R)) << R.error().message();
  EXPECT_EQ(R->Type, "error");
  EXPECT_EQ(R->ErrorCode, "unknown_type");
}

//===----------------------------------------------------------------------===//
// Backpressure and deadlines
//===----------------------------------------------------------------------===//

TEST(ServerTest, QueueHighWaterMarkRejectsWithOverloaded) {
  ServerOptions O = tcpOptions();
  O.Workers = 1;
  O.QueueMax = 1;
  LiveServer LS(std::move(O));
  ASSERT_TRUE(LS.started()) << LS.startError();

  Conn C;
  ASSERT_TRUE(C.connect(LS.addr()));

  // Occupy the lone worker, then wait until the queue is empty again
  // (the sleep has been dequeued and is running).
  ASSERT_TRUE(bool(sendAll(C.Sock, encodeControlRequest("1", "sleep", 700))));
  ASSERT_TRUE(waitForStats(LS.server(), [](const ServerStatsSnapshot &S) {
    return S.QueueDepth == 0 && S.QueueHighWater >= 1;
  }));

  // One more sleep fills the queue to its high-water mark; the command
  // after it must be rejected immediately, before the sleeps finish.
  ASSERT_TRUE(bool(sendAll(C.Sock, encodeControlRequest("2", "sleep", 50))));
  ASSERT_TRUE(waitForStats(LS.server(), [](const ServerStatsSnapshot &S) {
    return S.QueueDepth == 1;
  }));
  CommandRequest Req = builtinCommand("check", {"queue"});
  ASSERT_TRUE(bool(sendAll(C.Sock, encodeCommandRequest("3", Req))));

  int Responses = 0, Overloaded = 0;
  for (int I = 0; I < 3; ++I) {
    std::string Line;
    ASSERT_EQ(C.Reader.readFrame(C.Sock, Line), FrameStatus::Frame);
    Result<JsonValue> Doc = parseJson(Line);
    ASSERT_TRUE(bool(Doc)) << Line;
    const std::string &Type = Doc->get("type")->asString();
    if (Type == "response") {
      ++Responses;
    } else {
      ++Overloaded;
      EXPECT_EQ(Doc->get("error")->get("code")->asString(), "overloaded");
      EXPECT_EQ(Doc->get("id")->asInt(), 3);
    }
  }
  EXPECT_EQ(Responses, 2);
  EXPECT_EQ(Overloaded, 1);
  EXPECT_EQ(LS.server().statsSnapshot().RequestsRejected, 1u);
}

TEST(ServerTest, DeadlineExpiresWhileQueued) {
  ServerOptions O = tcpOptions();
  O.Workers = 1;
  LiveServer LS(std::move(O));
  ASSERT_TRUE(LS.started()) << LS.startError();

  Conn C;
  ASSERT_TRUE(C.connect(LS.addr()));
  ASSERT_TRUE(bool(sendAll(C.Sock, encodeControlRequest("1", "sleep", 400))));
  ASSERT_TRUE(waitForStats(LS.server(), [](const ServerStatsSnapshot &S) {
    return S.QueueDepth == 0 && S.QueueHighWater >= 1;
  }));

  // Queued behind a 400ms sleep with a 50ms deadline: by the time the
  // worker frees up the deadline has long passed.
  CommandRequest Req = builtinCommand("check", {"queue"});
  ASSERT_TRUE(bool(
      sendAll(C.Sock, encodeCommandRequest("2", Req, /*DeadlineMs=*/50))));

  for (int I = 0; I < 2; ++I) {
    std::string Line;
    ASSERT_EQ(C.Reader.readFrame(C.Sock, Line), FrameStatus::Frame);
    Result<JsonValue> Doc = parseJson(Line);
    ASSERT_TRUE(bool(Doc)) << Line;
    if (Doc->get("id")->asInt() != 2)
      continue;
    EXPECT_EQ(Doc->get("type")->asString(), "error");
    EXPECT_EQ(Doc->get("error")->get("code")->asString(),
              "deadline_exceeded");
  }
  EXPECT_EQ(LS.server().statsSnapshot().DeadlinesExpired, 1u);
}

//===----------------------------------------------------------------------===//
// Drain and stress
//===----------------------------------------------------------------------===//

TEST(ServerTest, GracefulDrainFinishesInFlightAndQueuedWork) {
  ServerOptions O = tcpOptions();
  O.Workers = 1;
  LiveServer LS(std::move(O));
  ASSERT_TRUE(LS.started()) << LS.startError();

  Conn C;
  ASSERT_TRUE(C.connect(LS.addr()));
  CommandRequest Req = builtinCommand("check", {"queue"});
  std::string Frames = encodeControlRequest("1", "sleep", 200);
  Frames += encodeCommandRequest("2", Req);
  ASSERT_TRUE(bool(sendAll(C.Sock, Frames)));

  // Sleep in flight, check queued behind it — now start the drain.
  ASSERT_TRUE(waitForStats(LS.server(), [](const ServerStatsSnapshot &S) {
    return S.QueueDepth == 1 && S.RequestsServed == 0;
  }));
  LS.server().requestStop();

  // Both responses still arrive: a drain finishes accepted work.
  for (int I = 0; I < 2; ++I) {
    std::string Line;
    ASSERT_EQ(C.Reader.readFrame(C.Sock, Line), FrameStatus::Frame) << I;
    Result<JsonValue> Doc = parseJson(Line);
    ASSERT_TRUE(bool(Doc)) << Line;
    EXPECT_EQ(Doc->get("type")->asString(), "response") << Line;
    EXPECT_EQ(Doc->get("id")->asInt(), I + 1) << Line;
  }
  std::string Line;
  EXPECT_NE(C.Reader.readFrame(C.Sock, Line), FrameStatus::Frame);

  LS.server().wait();
  EXPECT_EQ(LS.server().statsSnapshot().RequestsServed, 2u);
}

TEST(ServerTest, StressRunMatchesAndReconciles) {
  LiveServer LS(tcpOptions());
  ASSERT_TRUE(LS.started()) << LS.startError();

  StressOptions SO;
  SO.Connections = 2;
  SO.RequestsPerConnection = 4;
  Result<StressReport> R = runStress(LS.addr(), SO);
  ASSERT_TRUE(bool(R)) << R.error().message();
  EXPECT_EQ(R->Sent, 8u);
  EXPECT_EQ(R->Matched, 8u);
  EXPECT_EQ(R->Mismatched, 0u) << R->FirstMismatch;
  EXPECT_EQ(R->TransportErrors, 0u);
  EXPECT_TRUE(R->StatsReconciled) << R->StatsDetail;
  EXPECT_TRUE(R->ok());
}

//===----------------------------------------------------------------------===//
// Unix-domain transport
//===----------------------------------------------------------------------===//

TEST(ServerTest, UnixSocketServesAndUnlinksOnShutdown) {
  std::string Path =
      "/tmp/algspec-servertest-" + std::to_string(getpid()) + ".sock";
  std::string Spec = "unix:" + Path;

  {
    ServerOptions O;
    Result<SocketAddress> A = SocketAddress::parse(Spec);
    ASSERT_TRUE(bool(A));
    O.Listen.push_back(*A);
    O.Workers = 2;
    LiveServer LS(std::move(O));
    ASSERT_TRUE(LS.started()) << LS.startError();

    CommandRequest Req = builtinCommand("eval", {"queue"});
    Req.Opts.TermText = "FRONT(ADD(ADD(NEW, 'a), 'b))";
    CommandResult Expected = runCommand(Req);

    Result<WireResponse> Got =
        requestOnce(*A, encodeCommandRequest("\"u-1\"", Req));
    ASSERT_TRUE(bool(Got)) << Got.error().message();
    EXPECT_EQ(Got->Exit, Expected.ExitCode);
    EXPECT_EQ(Got->Out, Expected.Out);
    EXPECT_EQ(Got->Err, Expected.Err);

    Result<JsonValue> Doc = parseJson(Got->Raw);
    ASSERT_TRUE(bool(Doc));
    EXPECT_EQ(Doc->get("id")->asString(), "u-1");
  }

  // The drain removed the socket file.
  EXPECT_NE(access(Path.c_str(), F_OK), 0);
}

//===----------------------------------------------------------------------===//
// Protocol encode/decode round trips (no live server needed)
//===----------------------------------------------------------------------===//

TEST(ServerProtocolTest, CommandRequestRoundTrips) {
  CommandRequest Req = builtinCommand("verify", {"symboltable"});
  Req.Sources.push_back({"impl.alg", "spec X\nend\n"});
  Req.Opts.AbstractSpec = "Symboltable";
  Req.Opts.RepSort = "Stack";
  Req.Opts.PhiName = "PHI";
  Req.Opts.OpMap = {{"INIT", "INIT_R"}, {"ADD", "ADD_R"}};
  Req.Opts.Depth = 4;
  Req.Opts.Json = true;
  Req.Opts.MaxSteps = 1234;

  std::string Frame = encodeCommandRequest("42", Req, /*DeadlineMs=*/250);
  ASSERT_FALSE(Frame.empty());
  EXPECT_EQ(Frame.back(), '\n');
  EXPECT_EQ(Frame.find('\n'), Frame.size() - 1) << "frame must be one line";

  Request Decoded;
  ProtocolError Err;
  ASSERT_TRUE(parseRequest(
      std::string_view(Frame.data(), Frame.size() - 1), Decoded, Err))
      << Err.Message;
  EXPECT_EQ(Decoded.IdJson, "42");
  EXPECT_EQ(Decoded.Type, "verify");
  EXPECT_EQ(Decoded.DeadlineMs, 250);
  ASSERT_EQ(Decoded.Command.Sources.size(), 2u);
  EXPECT_EQ(Decoded.Command.Sources[0].Name, "symboltable.alg");
  EXPECT_EQ(Decoded.Command.Sources[0].Text,
            std::string(builtinSpecText("symboltable")));
  EXPECT_EQ(Decoded.Command.Sources[1].Name, "impl.alg");
  EXPECT_EQ(Decoded.Command.Opts.AbstractSpec, "Symboltable");
  EXPECT_EQ(Decoded.Command.Opts.Depth, 4u);
  EXPECT_EQ(Decoded.Command.Opts.MaxSteps, 1234u);
  EXPECT_TRUE(Decoded.Command.Opts.Json);
  ASSERT_EQ(Decoded.Command.Opts.OpMap.size(), 2u);
  EXPECT_EQ(Decoded.Command.Opts.OpMap[0].first, "INIT");
  EXPECT_EQ(Decoded.Command.Opts.OpMap[0].second, "INIT_R");
}

TEST(ServerProtocolTest, ResponsesEscapeEmbeddedNewlines) {
  CommandResult R;
  R.ExitCode = 1;
  R.Out = "line one\nline two\n";
  R.Err = "warn: \"quoted\"\n";
  std::string Frame = encodeCommandResponse("\"x\"", R, /*CacheHit=*/true);
  EXPECT_EQ(Frame.back(), '\n');
  EXPECT_EQ(Frame.find('\n'), Frame.size() - 1) << "frame must be one line";

  Result<JsonValue> Doc =
      parseJson(std::string_view(Frame.data(), Frame.size() - 1));
  ASSERT_TRUE(bool(Doc)) << Doc.error().message();
  EXPECT_EQ(Doc->get("id")->asString(), "x");
  EXPECT_EQ(Doc->get("exit")->asInt(), 1);
  EXPECT_EQ(Doc->get("stdout")->asString(), R.Out);
  EXPECT_EQ(Doc->get("stderr")->asString(), R.Err);
  EXPECT_TRUE(Doc->get("cached")->asBool());
}

TEST(ServerProtocolTest, ErrorCodeNamesAreStable) {
  EXPECT_EQ(errorCodeName(ErrorCode::ParseError), "parse_error");
  EXPECT_EQ(errorCodeName(ErrorCode::InvalidRequest), "invalid_request");
  EXPECT_EQ(errorCodeName(ErrorCode::UnknownType), "unknown_type");
  EXPECT_EQ(errorCodeName(ErrorCode::OversizedFrame), "oversized_frame");
  EXPECT_EQ(errorCodeName(ErrorCode::BadUtf8), "bad_utf8");
  EXPECT_EQ(errorCodeName(ErrorCode::Overloaded), "overloaded");
  EXPECT_EQ(errorCodeName(ErrorCode::DeadlineExceeded), "deadline_exceeded");
  EXPECT_EQ(errorCodeName(ErrorCode::ShuttingDown), "shutting_down");
  EXPECT_EQ(errorCodeName(ErrorCode::Internal), "internal");
}
