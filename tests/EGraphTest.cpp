//===----------------------------------------------------------------------===//
//
// Part of AlgSpec. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Unit tests for the e-graph (union-find + congruence over hash-consed
/// terms) and the equality-saturation prover: class mechanics, rebuild
/// congruence, the builtin semantics applied during canonicalization,
/// contradiction detection, proof search over the builtin specs, fuel
/// honesty (zero fuel must report FuelExhausted, never Saturated), and
/// the reachability-invariant derivation that closes the paper's
/// Symboltable obligations.
///
//===----------------------------------------------------------------------===//

#include "ast/AlgebraContext.h"
#include "egraph/EGraph.h"
#include "egraph/EqSat.h"
#include "rewrite/Engine.h"
#include "rewrite/RewriteSystem.h"
#include "specs/BuiltinSpecs.h"
#include "verify/RepVerifier.h"

#include <gtest/gtest.h>

using namespace algspec;

namespace {

/// Loads the Queue builtin and wires a rewrite system + engine; the
/// engine is only ever used as the e-graph's builtin evaluator here.
class QueueFixture {
public:
  QueueFixture() {
    auto Loaded = specs::loadQueue(Ctx);
    EXPECT_TRUE(static_cast<bool>(Loaded));
    TheSpec = Loaded.take();
    Ptrs = {&TheSpec};
    System = std::make_unique<RewriteSystem>(
        RewriteSystem::buildChecked(Ctx, Ptrs).take());
    Engine = std::make_unique<RewriteEngine>(Ctx, *System, EngineOptions());
    ItemSort = Ctx.lookupSort("Item");
    QueueSort = Ctx.lookupSort("Queue");
    New = Ctx.makeOp(Ctx.lookupOp("NEW"), {});
    A = Ctx.makeAtom("a", ItemSort);
    B = Ctx.makeAtom("b", ItemSort);
  }

  TermId add(TermId Q, TermId I) {
    return Ctx.makeOp(Ctx.lookupOp("ADD"), {Q, I});
  }
  TermId front(TermId Q) { return Ctx.makeOp(Ctx.lookupOp("FRONT"), {Q}); }
  TermId isEmpty(TermId Q) {
    return Ctx.makeOp(Ctx.lookupOp("IS_EMPTY?"), {Q});
  }

  AlgebraContext Ctx;
  Spec TheSpec;
  std::vector<const Spec *> Ptrs;
  std::unique_ptr<RewriteSystem> System;
  std::unique_ptr<RewriteEngine> Engine;
  SortId ItemSort, QueueSort;
  TermId New, A, B;
};

//===----------------------------------------------------------------------===//
// EGraph mechanics
//===----------------------------------------------------------------------===//

TEST(EGraph, AddRegistersSubtermsAsSingletons) {
  QueueFixture F;
  EGraph G(F.Ctx);
  TermId Term = F.front(F.add(F.New, F.A));
  G.add(Term);
  // FRONT(ADD(NEW, a)) registers itself plus ADD(NEW, a), NEW, and a.
  EXPECT_TRUE(G.contains(Term));
  EXPECT_TRUE(G.contains(F.New));
  EXPECT_TRUE(G.contains(F.A));
  EXPECT_EQ(G.numNodes(), 4u);
  EXPECT_EQ(G.numClasses(), 4u);
  EXPECT_EQ(G.merges(), 0u);
  EXPECT_TRUE(G.same(Term, Term));
  EXPECT_FALSE(G.same(F.New, F.A));
}

TEST(EGraph, MergeUnionsAndRebuildClosesCongruence) {
  QueueFixture F;
  EGraph G(F.Ctx);
  TermId X = F.Ctx.makeVar(F.Ctx.addVar("x", F.QueueSort));
  TermId Y = F.Ctx.makeVar(F.Ctx.addVar("y", F.QueueSort));
  TermId Fx = F.front(X);
  TermId Fy = F.front(Y);
  G.add(Fx);
  G.add(Fy);
  ASSERT_FALSE(G.same(Fx, Fy));
  EXPECT_TRUE(G.merge(X, Y));
  EXPECT_FALSE(G.merge(X, Y)); // already one class
  G.rebuild();
  // x = y forces FRONT(x) = FRONT(y) by congruence.
  EXPECT_TRUE(G.same(Fx, Fy));
  EXPECT_GE(G.merges(), 2u);
  EXPECT_GE(G.rebuildRounds(), 1u);
}

TEST(EGraph, RepresentativePrefersGroundConstructorTerm) {
  QueueFixture F;
  EGraph G(F.Ctx);
  TermId X = F.Ctx.makeVar(F.Ctx.addVar("x", F.QueueSort));
  TermId Ground = F.add(F.New, F.A);
  G.add(X);
  G.add(Ground);
  G.merge(X, Ground);
  G.rebuild();
  // Ground constructor term outranks a variable as class representative.
  EXPECT_EQ(G.repr(X), Ground);
}

TEST(EGraph, IteCollapsesOnceConditionDecides) {
  QueueFixture F;
  EGraph G(F.Ctx);
  TermId C = F.Ctx.makeVar(F.Ctx.addVar("c", F.Ctx.boolSort()));
  TermId Ite = F.Ctx.makeIte(C, F.A, F.B);
  G.add(Ite);
  G.add(F.Ctx.trueTerm());
  ASSERT_FALSE(G.same(Ite, F.A));
  G.merge(C, F.Ctx.trueTerm());
  G.rebuild();
  // Condition class resolved to true: the if-then-else folds into the
  // then-branch.
  EXPECT_TRUE(G.same(Ite, F.A));
}

TEST(EGraph, SameOverOneClassIsTrue) {
  QueueFixture F;
  EGraph G(F.Ctx);
  TermId X = F.Ctx.makeVar(F.Ctx.addVar("x", F.ItemSort));
  TermId Y = F.Ctx.makeVar(F.Ctx.addVar("y", F.ItemSort));
  TermId Same = F.Ctx.makeOp(F.Ctx.getSameOp(F.ItemSort), {X, Y});
  G.add(Same);
  G.add(F.Ctx.trueTerm());
  G.merge(X, Y);
  G.rebuild();
  EXPECT_TRUE(G.same(Same, F.Ctx.trueTerm()));
}

TEST(EGraph, BuiltinEvaluatorDecidesSameOnLiterals) {
  QueueFixture F;
  EGraph G(F.Ctx);
  G.setEvaluator(F.Engine.get());
  TermId Same = F.Ctx.makeOp(F.Ctx.getSameOp(F.ItemSort), {F.A, F.B});
  G.add(Same);
  G.add(F.Ctx.falseTerm());
  G.rebuild();
  // SAME on two distinct atoms evaluates through the engine's native
  // semantics: false, with no contradiction.
  EXPECT_TRUE(G.same(Same, F.Ctx.falseTerm()));
  EXPECT_FALSE(G.contradiction());
}

TEST(EGraph, MergingDistinctValuesIsAContradiction) {
  QueueFixture F;
  EGraph G(F.Ctx);
  G.add(F.Ctx.trueTerm());
  G.add(F.Ctx.falseTerm());
  ASSERT_FALSE(G.contradiction());
  G.merge(F.Ctx.trueTerm(), F.Ctx.falseTerm());
  G.rebuild();
  EXPECT_TRUE(G.contradiction());
}

TEST(EGraph, MergingValueWithErrorIsAContradiction) {
  QueueFixture F;
  EGraph G(F.Ctx);
  TermId Err = F.Ctx.makeError(F.ItemSort);
  G.add(F.A);
  G.add(Err);
  G.merge(F.A, Err);
  G.rebuild();
  EXPECT_TRUE(G.contradiction());
}

//===----------------------------------------------------------------------===//
// EqSatProver
//===----------------------------------------------------------------------===//

TEST(EqSatProver, ProvesGroundInstanceThroughGuardFolding) {
  QueueFixture F;
  EqSatProver Prover(F.Ctx, *F.System, *F.Engine);
  // FRONT(ADD(NEW, a)) = a needs axiom 4 plus IS_EMPTY?(NEW) = true and
  // the if-then-else fold — one saturation, no case splits.
  EXPECT_TRUE(Prover.prove(F.front(F.add(F.New, F.A)), F.A));
  EXPECT_EQ(Prover.lastVerdict(), SatVerdict::Saturated);
  EqSatProverStats S = Prover.stats();
  EXPECT_EQ(S.Proofs, 1u);
  EXPECT_EQ(S.Failures, 0u);
  EXPECT_GT(S.Graph.Merges, 0u);
}

TEST(EqSatProver, ProvesOpenTheoremOverConstructorShapes) {
  QueueFixture F;
  EqSatProver Prover(F.Ctx, *F.System, *F.Engine);
  TermId Q = F.Ctx.makeVar(F.Ctx.addVar("q", F.QueueSort));
  TermId I = F.Ctx.makeVar(F.Ctx.addVar("i", F.ItemSort));
  TermId J = F.Ctx.makeVar(F.Ctx.addVar("j", F.ItemSort));
  // FRONT(ADD(ADD(q, i), j)) = FRONT(ADD(q, i)): axiom 4 unfolds the
  // outer FRONT, axiom 2 decides IS_EMPTY?(ADD(q, i)) = false, and the
  // guard folds into the else-branch — an open theorem a single
  // directed normalization also reaches, proved here by saturation.
  TermId Inner = F.add(Q, I);
  EXPECT_TRUE(Prover.prove(F.front(F.add(Inner, J)), F.front(Inner)));
}

TEST(EqSatProver, RefusesUnprovableGoal) {
  QueueFixture F;
  EqSatProver Prover(F.Ctx, *F.System, *F.Engine);
  // FRONT(NEW) = a is false (axiom 3 sends it to error).
  EXPECT_FALSE(Prover.prove(F.front(F.New), F.A));
  EXPECT_EQ(Prover.stats().Proofs, 0u);
  EXPECT_GE(Prover.stats().Failures, 1u);
}

TEST(EqSatProver, ZeroFuelIsFuelExhaustedNotSaturated) {
  QueueFixture F;
  EqSatOptions O;
  O.MaxRounds = 0;
  O.MaxSplitDepth = 0;
  EqSatProver Prover(F.Ctx, *F.System, *F.Engine, O);
  // With no rounds the prover may not claim a fixpoint: the verdict
  // must be an honest FuelExhausted, and the goal stays open.
  EXPECT_FALSE(Prover.prove(F.front(F.add(F.New, F.A)), F.A));
  EXPECT_EQ(Prover.lastVerdict(), SatVerdict::FuelExhausted);
  EXPECT_GE(Prover.stats().FuelExhausted, 1u);
}

TEST(EqSatProver, ZeroFuelStillProvesSyntacticIdentity) {
  QueueFixture F;
  EqSatOptions O;
  O.MaxRounds = 0;
  EqSatProver Prover(F.Ctx, *F.System, *F.Engine, O);
  TermId T = F.front(F.add(F.New, F.A));
  EXPECT_TRUE(Prover.prove(T, T));
}

TEST(EqSatProver, BatchScreensPairsOverOneSaturation) {
  QueueFixture F;
  EqSatProver Prover(F.Ctx, *F.System, *F.Engine);
  std::vector<std::pair<TermId, TermId>> Pairs = {
      {F.front(F.add(F.New, F.A)), F.A},
      {F.isEmpty(F.New), F.Ctx.trueTerm()},
      {F.front(F.New), F.Ctx.makeError(F.ItemSort)},
      {F.front(F.add(F.New, F.A)), F.B}, // false: FRONT yields a, not b
  };
  std::vector<uint8_t> Proved = Prover.proveBatch(Pairs);
  ASSERT_EQ(Proved.size(), 4u);
  EXPECT_EQ(Proved[0], 1u);
  EXPECT_EQ(Proved[1], 1u);
  EXPECT_EQ(Proved[2], 1u);
  EXPECT_EQ(Proved[3], 0u);
  EXPECT_EQ(Prover.stats().Proofs, 3u);
  EXPECT_EQ(Prover.stats().Failures, 1u);
}

TEST(EqSatProver, DerivesSymboltableReachabilityInvariant) {
  AlgebraContext Ctx;
  auto Abstract = specs::loadSymboltable(Ctx);
  ASSERT_TRUE(static_cast<bool>(Abstract));
  Spec AbstractSpec = Abstract.take();
  auto Concrete = specs::loadStackArray(Ctx);
  ASSERT_TRUE(static_cast<bool>(Concrete));
  std::vector<Spec> ConcreteSpecs = Concrete.take();
  auto Rep = buildSymboltableRep(Ctx);
  ASSERT_TRUE(static_cast<bool>(Rep));
  SymboltableRep TheRep = Rep.take();
  std::vector<const Spec *> Sources = {&AbstractSpec};
  for (const Spec &S : ConcreteSpecs)
    Sources.push_back(&S);
  for (const Spec &S : TheRep.ImplSpecs)
    Sources.push_back(&S);
  RewriteSystem System = RewriteSystem::buildChecked(Ctx, Sources).take();
  RewriteEngine Engine(Ctx, System, EngineOptions());
  EqSatProver Prover(Ctx, System, Engine);

  // The mapped images of every abstract constructor generate the
  // Reachable representation domain — exactly what the verifier feeds
  // enableInduction.
  std::vector<OpId> Gens;
  for (OpId Ctor :
       AbstractSpec.constructorsOf(Ctx, TheRep.Mapping.AbstractSort)) {
    auto It = TheRep.Mapping.OpMap.find(Ctor);
    ASSERT_NE(It, TheRep.Mapping.OpMap.end());
    Gens.push_back(It->second);
  }
  Prover.enableInduction(TheRep.Mapping.RepSort, Gens);
  // Structural induction over the generators derives the paper's
  // Assumption 1: IS_NEWSTACK? is false on every reachable value.
  EXPECT_GE(Prover.stats().Invariants, 1u);

  // With the invariant in place the mapped axiom-2 obligation
  // LEAVEBLOCK_R(ENTERBLOCK_R(v)) = v closes for an open v — the case
  // that regresses into unbounded generator splits without it.
  OpId Leave = TheRep.Mapping.OpMap.at(Ctx.lookupOp("LEAVEBLOCK"));
  OpId Enter = TheRep.Mapping.OpMap.at(Ctx.lookupOp("ENTERBLOCK"));
  TermId V = Ctx.makeVar(Ctx.addVar("v", TheRep.Mapping.RepSort));
  TermId Lhs = Ctx.makeOp(Leave, {Ctx.makeOp(Enter, {V})});
  EXPECT_TRUE(Prover.prove(Lhs, V));
  EXPECT_EQ(Prover.stats().GenSplits, 0u);
}

} // namespace
