//===----------------------------------------------------------------------===//
//
// Part of AlgSpec. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Unit tests for the support library: Result/Error, string interning,
/// source management, diagnostics.
///
//===----------------------------------------------------------------------===//

#include "support/Diagnostic.h"
#include "support/Error.h"
#include "support/Json.h"
#include "support/SourceMgr.h"
#include "support/StringInterner.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>

using namespace algspec;

//===----------------------------------------------------------------------===//
// Error / Result
//===----------------------------------------------------------------------===//

TEST(ErrorTest, MessageOnly) {
  Error E("something went wrong");
  EXPECT_EQ(E.message(), "something went wrong");
  EXPECT_FALSE(E.location().isValid());
  EXPECT_EQ(E.str(), "something went wrong");
}

TEST(ErrorTest, WithLocation) {
  Error E("bad token", SourceLoc(3, 7));
  EXPECT_TRUE(E.location().isValid());
  EXPECT_EQ(E.str(), "3:7: bad token");
}

TEST(ResultTest, SuccessHoldsValue) {
  Result<int> R(42);
  ASSERT_TRUE(static_cast<bool>(R));
  EXPECT_EQ(*R, 42);
}

TEST(ResultTest, FailureHoldsError) {
  Result<int> R(makeError("nope"));
  ASSERT_FALSE(static_cast<bool>(R));
  EXPECT_EQ(R.error().message(), "nope");
}

TEST(ResultTest, TakeMovesValue) {
  Result<std::string> R(std::string("payload"));
  std::string S = R.take();
  EXPECT_EQ(S, "payload");
}

TEST(ResultTest, VoidSpecialization) {
  Result<void> Ok;
  EXPECT_TRUE(static_cast<bool>(Ok));
  Result<void> Bad(makeError("failed"));
  ASSERT_FALSE(static_cast<bool>(Bad));
  EXPECT_EQ(Bad.error().message(), "failed");
}

TEST(ResultTest, ArrowAccess) {
  Result<std::string> R(std::string("abc"));
  EXPECT_EQ(R->size(), 3u);
}

//===----------------------------------------------------------------------===//
// StringInterner
//===----------------------------------------------------------------------===//

TEST(StringInternerTest, InternDeduplicates) {
  StringInterner Interner;
  Symbol A = Interner.intern("queue");
  Symbol B = Interner.intern("queue");
  Symbol C = Interner.intern("stack");
  EXPECT_EQ(A, B);
  EXPECT_NE(A, C);
  EXPECT_EQ(Interner.size(), 2u);
}

TEST(StringInternerTest, RoundTrip) {
  StringInterner Interner;
  Symbol Sym = Interner.intern("ENTERBLOCK");
  EXPECT_EQ(Interner.str(Sym), "ENTERBLOCK");
}

TEST(StringInternerTest, LookupMissing) {
  StringInterner Interner;
  Interner.intern("present");
  EXPECT_TRUE(Interner.lookup("present").isValid());
  EXPECT_FALSE(Interner.lookup("absent").isValid());
}

TEST(StringInternerTest, DefaultSymbolInvalid) {
  Symbol Sym;
  EXPECT_FALSE(Sym.isValid());
}

TEST(StringInternerTest, ManyStringsStayStable) {
  StringInterner Interner;
  std::vector<Symbol> Syms;
  for (int I = 0; I < 1000; ++I)
    Syms.push_back(Interner.intern("sym" + std::to_string(I)));
  for (int I = 0; I < 1000; ++I) {
    EXPECT_EQ(Interner.str(Syms[I]), "sym" + std::to_string(I));
    EXPECT_EQ(Interner.lookup("sym" + std::to_string(I)), Syms[I]);
  }
}

TEST(StringInternerTest, ShortStringsSurviveGrowth) {
  // SSO strings must stay resolvable after many inserts (buffer stability).
  StringInterner Interner;
  Symbol A = Interner.intern("a");
  for (int I = 0; I < 5000; ++I)
    Interner.intern(std::to_string(I));
  EXPECT_EQ(Interner.str(A), "a");
  EXPECT_EQ(Interner.lookup("a"), A);
}

//===----------------------------------------------------------------------===//
// SourceMgr
//===----------------------------------------------------------------------===//

TEST(SourceMgrTest, SingleLine) {
  SourceMgr SM("buf", "hello");
  EXPECT_EQ(SM.numLines(), 1u);
  SourceLoc Loc = SM.locForOffset(2);
  EXPECT_EQ(Loc.line(), 1u);
  EXPECT_EQ(Loc.column(), 3u);
  EXPECT_EQ(SM.lineText(1), "hello");
}

TEST(SourceMgrTest, MultiLine) {
  SourceMgr SM("buf", "ab\ncdef\ng");
  EXPECT_EQ(SM.numLines(), 3u);
  EXPECT_EQ(SM.lineText(2), "cdef");
  SourceLoc Loc = SM.locForOffset(5); // 'e'
  EXPECT_EQ(Loc.line(), 2u);
  EXPECT_EQ(Loc.column(), 3u);
}

TEST(SourceMgrTest, OffsetAtLineStart) {
  SourceMgr SM("buf", "ab\ncd");
  SourceLoc Loc = SM.locForOffset(3);
  EXPECT_EQ(Loc.line(), 2u);
  EXPECT_EQ(Loc.column(), 1u);
}

TEST(SourceMgrTest, OffsetPastEndClamps) {
  SourceMgr SM("buf", "ab\ncd");
  SourceLoc Loc = SM.locForOffset(1000);
  EXPECT_EQ(Loc.line(), 2u);
}

TEST(SourceMgrTest, TrailingNewlineDoesNotAddLine) {
  SourceMgr SM("buf", "ab\ncd\n");
  EXPECT_EQ(SM.numLines(), 2u);
}

TEST(SourceMgrTest, LineTextOutOfRange) {
  SourceMgr SM("buf", "ab");
  EXPECT_EQ(SM.lineText(0), "");
  EXPECT_EQ(SM.lineText(9), "");
}

TEST(SourceMgrTest, EmptyBuffer) {
  SourceMgr SM("buf", "");
  SourceLoc Loc = SM.locForOffset(0);
  EXPECT_EQ(Loc.line(), 1u);
  EXPECT_EQ(Loc.column(), 1u);
}

//===----------------------------------------------------------------------===//
// DiagnosticEngine
//===----------------------------------------------------------------------===//

TEST(DiagnosticTest, CountsErrorsOnly) {
  DiagnosticEngine Diags;
  Diags.warning(SourceLoc(1, 1), "meh");
  Diags.note(SourceLoc(1, 2), "fyi");
  EXPECT_FALSE(Diags.hasErrors());
  Diags.error(SourceLoc(2, 1), "boom");
  EXPECT_TRUE(Diags.hasErrors());
  EXPECT_EQ(Diags.errorCount(), 1u);
  EXPECT_EQ(Diags.diagnostics().size(), 3u);
}

TEST(DiagnosticTest, RenderWithoutSourceMgr) {
  DiagnosticEngine Diags;
  Diags.error(SourceLoc(2, 5), "unexpected token");
  std::string Out = Diags.render();
  EXPECT_NE(Out.find("2:5: error: unexpected token"), std::string::npos);
}

TEST(DiagnosticTest, RenderWithCaret) {
  SourceMgr SM("spec.alg", "spec Queue\n  oops here\n");
  DiagnosticEngine Diags;
  Diags.error(SourceLoc(2, 3), "unknown keyword 'oops'");
  std::string Out = Diags.render(&SM);
  EXPECT_NE(Out.find("spec.alg:2:3: error: unknown keyword 'oops'"),
            std::string::npos);
  EXPECT_NE(Out.find("  oops here"), std::string::npos);
  EXPECT_NE(Out.find("  ^"), std::string::npos);
}

TEST(DiagnosticTest, ClearResets) {
  DiagnosticEngine Diags;
  Diags.error(SourceLoc(), "x");
  Diags.clear();
  EXPECT_FALSE(Diags.hasErrors());
  EXPECT_TRUE(Diags.diagnostics().empty());
}

TEST(DiagnosticTest, RenderCaretClampsPastEndOfLine) {
  // Locations may point one past the end of a line (EOF, or a token
  // spanning the newline); the caret padding must clamp instead of
  // reading past the line text.
  SourceMgr SM("spec.alg", "ab\ncd\n");
  DiagnosticEngine Diags;
  Diags.error(SourceLoc(1, 9), "way out there");
  std::string Out = Diags.render(&SM);
  EXPECT_NE(Out.find("spec.alg:1:9: error: way out there"),
            std::string::npos);
  EXPECT_NE(Out.find("ab\n  ^\n"), std::string::npos);
}

TEST(DiagnosticTest, RenderCaretPreservesTabs) {
  // Tabs before the caret column are copied through so the caret lines up
  // under the offending token regardless of the terminal's tab stops.
  SourceMgr SM("spec.alg", "\t\tbad\n");
  DiagnosticEngine Diags;
  Diags.error(SourceLoc(1, 3), "bad token");
  std::string Out = Diags.render(&SM);
  EXPECT_NE(Out.find("\t\tbad\n\t\t^\n"), std::string::npos);
}

TEST(DiagnosticTest, RenderCaretOnMiddleLineOfBuffer) {
  SourceMgr SM("spec.alg", "spec Q\n  sorts Q\n  axioms\nend\n");
  DiagnosticEngine Diags;
  Diags.warning(SourceLoc(2, 9), "trailing sort");
  std::string Out = Diags.render(&SM);
  // Only the offending line is echoed, not its neighbors.
  EXPECT_NE(Out.find("  sorts Q\n        ^\n"), std::string::npos);
  EXPECT_EQ(Out.find("axioms"), std::string::npos);
}

TEST(DiagnosticTest, RenderAtEofLocation) {
  // locForOffset(size) on a buffer without a trailing newline lands one
  // column past the last character; rendering must not read out of
  // bounds.
  SourceMgr SM("spec.alg", "end");
  SourceLoc Eof = SM.locForOffset(3);
  EXPECT_EQ(Eof.line(), 1u);
  EXPECT_EQ(Eof.column(), 4u);
  DiagnosticEngine Diags;
  Diags.error(Eof, "unexpected end of input");
  std::string Out = Diags.render(&SM);
  EXPECT_NE(Out.find("end\n   ^\n"), std::string::npos);
}

TEST(DiagnosticTest, RenderOnEmptyLineOmitsCaret) {
  SourceMgr SM("spec.alg", "ab\n\ncd\n");
  DiagnosticEngine Diags;
  Diags.error(SourceLoc(2, 1), "blank surprise");
  std::string Out = Diags.render(&SM);
  EXPECT_NE(Out.find("2:1: error: blank surprise"), std::string::npos);
  // An empty source line has nothing to point at; no caret block.
  EXPECT_EQ(Out.find('^'), std::string::npos);
}

//===----------------------------------------------------------------------===//
// JSON writer
//===----------------------------------------------------------------------===//

TEST(JsonTest, EscapesSpecialCharacters) {
  EXPECT_EQ(jsonEscape("plain"), "plain");
  EXPECT_EQ(jsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(jsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(jsonEscape("line\nbreak"), "line\\nbreak");
  EXPECT_EQ(jsonEscape("tab\there"), "tab\\there");
  EXPECT_EQ(jsonEscape(std::string_view("\x01", 1)), "\\u0001");
}

TEST(JsonTest, WriterNestsAndPlacesCommas) {
  JsonWriter W;
  W.beginObject();
  W.key("a").value(1);
  W.key("b").beginArray();
  W.value(true);
  W.value("x");
  W.endArray();
  W.key("c").beginObject();
  W.endObject();
  W.endObject();
  EXPECT_EQ(W.str(), "{\n"
                     "  \"a\": 1,\n"
                     "  \"b\": [\n"
                     "    true,\n"
                     "    \"x\"\n"
                     "  ],\n"
                     "  \"c\": {}\n"
                     "}");
}

TEST(JsonTest, WriterEmptyContainers) {
  JsonWriter W;
  W.beginArray();
  W.endArray();
  EXPECT_EQ(W.str(), "[]");
}

TEST(JsonTest, WriterNumericValues) {
  JsonWriter W;
  W.beginArray();
  W.value(int64_t(-7));
  W.value(uint64_t(42));
  W.value(false);
  W.endArray();
  EXPECT_EQ(W.str(), "[\n  -7,\n  42,\n  false\n]");
}

TEST(JsonTest, WriterCompactModeIsOneLine) {
  JsonWriter W(/*Compact=*/true);
  W.beginObject();
  W.key("a").value(1);
  W.key("b").beginArray();
  W.value("x");
  W.endArray();
  W.endObject();
  EXPECT_EQ(W.str(), "{\"a\": 1,\"b\": [\"x\"]}");
  EXPECT_EQ(W.str().find('\n'), std::string::npos);
}

TEST(JsonTest, WriterNonFiniteDoublesBecomeNull) {
  JsonWriter W(/*Compact=*/true);
  W.beginArray();
  W.value(0.5);
  W.value(std::numeric_limits<double>::infinity());
  W.value(std::numeric_limits<double>::quiet_NaN());
  W.endArray();
  EXPECT_EQ(W.str(), "[0.5,null,null]");
}

TEST(JsonTest, EscapeReplacesInvalidUtf8WithReplacementChar) {
  // One escaped U+FFFD per offending byte: the output is always a
  // valid UTF-8 JSON fragment no matter what bytes came in.
  EXPECT_EQ(jsonEscape(std::string_view("a\xff\xfe!", 4)),
            "a\\ufffd\\ufffd!");
  // A valid multi-byte sequence passes through untouched.
  EXPECT_EQ(jsonEscape("caf\xc3\xa9"), "caf\xc3\xa9");
  // A truncated sequence is replaced, not emitted raw.
  EXPECT_EQ(jsonEscape(std::string_view("\xc3", 1)), "\\ufffd");
}

TEST(JsonTest, IsValidUtf8RejectsTheSharpEdges) {
  EXPECT_TRUE(isValidUtf8("plain ascii"));
  EXPECT_TRUE(isValidUtf8("caf\xc3\xa9"));              // U+00E9
  EXPECT_TRUE(isValidUtf8("\xe2\x82\xac"));             // U+20AC
  EXPECT_TRUE(isValidUtf8("\xf0\x9f\x98\x80"));         // U+1F600
  EXPECT_FALSE(isValidUtf8(std::string_view("\xff", 1)));
  EXPECT_FALSE(isValidUtf8(std::string_view("\xc3", 1)));     // truncated
  EXPECT_FALSE(isValidUtf8(std::string_view("\xc0\xaf", 2))); // overlong
  EXPECT_FALSE(isValidUtf8("\xed\xa0\x80"));            // surrogate half
  EXPECT_FALSE(isValidUtf8("\xf4\x90\x80\x80"));        // > U+10FFFF
}

//===----------------------------------------------------------------------===//
// JSON reader
//===----------------------------------------------------------------------===//

TEST(JsonReaderTest, ParsesScalarsAndContainers) {
  Result<JsonValue> R = parseJson(
      " {\"n\": null, \"t\": true, \"i\": -42, \"d\": 2.5, "
      "\"s\": \"hi\", \"a\": [1, [2]], \"o\": {\"k\": \"v\"}} ");
  ASSERT_TRUE(bool(R)) << R.error().message();
  EXPECT_TRUE(R->get("n")->isNull());
  EXPECT_TRUE(R->get("t")->asBool());
  EXPECT_EQ(R->get("i")->asInt(), -42);
  EXPECT_EQ(R->get("d")->asDouble(), 2.5);
  EXPECT_EQ(R->get("s")->asString(), "hi");
  ASSERT_TRUE(R->get("a")->isArray());
  EXPECT_EQ((*R->get("a")->array())[0].asInt(), 1);
  EXPECT_EQ(R->get("o")->get("k")->asString(), "v");
}

TEST(JsonReaderTest, DecodesEscapesAndSurrogatePairs) {
  Result<JsonValue> R =
      parseJson("\"a\\n\\t\\\"\\\\\\/\\u0041\\ud83d\\ude00\"");
  ASSERT_TRUE(bool(R)) << R.error().message();
  EXPECT_EQ(R->asString(), "a\n\t\"\\/A\xf0\x9f\x98\x80");
}

TEST(JsonReaderTest, Int64BoundariesStayIntegral) {
  Result<JsonValue> Max = parseJson("9223372036854775807");
  ASSERT_TRUE(bool(Max));
  EXPECT_TRUE(Max->isInt());
  EXPECT_EQ(Max->asInt(), INT64_MAX);
  // One past the edge degrades to a double rather than failing.
  Result<JsonValue> Over = parseJson("9223372036854775808");
  ASSERT_TRUE(bool(Over));
  EXPECT_TRUE(Over->isDouble());
}

TEST(JsonReaderTest, RejectsMalformedDocuments) {
  const char *Bad[] = {
      "",                     // no value at all
      "{\"a\": 1,}",          // trailing comma
      "[1 2]",                // missing comma
      "{\"a\" 1}",            // missing colon
      "{a: 1}",               // unquoted key
      "\"unterminated",       // unterminated string
      "01",                   // leading zero
      "1.",                   // digits required after the point
      "1e",                   // digits required in the exponent
      "nul",                  // truncated keyword
      "// comment\n1",        // comments are not JSON
      "1 2",                  // trailing garbage
      "\"\\ud83d\"",          // unpaired high surrogate
      "\"\\ude00\"",          // unpaired low surrogate
      "\"\x01\"",             // raw control byte inside a string
      "\"\xff\xfe\"",         // invalid UTF-8 inside a string
  };
  for (const char *Text : Bad)
    EXPECT_FALSE(bool(parseJson(Text))) << Text;
}

TEST(JsonReaderTest, BoundsNestingDepth) {
  std::string Deep;
  for (int I = 0; I < 70; ++I)
    Deep += '[';
  for (int I = 0; I < 70; ++I)
    Deep += ']';
  EXPECT_FALSE(bool(parseJson(Deep)));
  JsonParseLimits Limits;
  Limits.MaxDepth = 80;
  EXPECT_TRUE(bool(parseJson(Deep, Limits)));
}

TEST(JsonReaderTest, DumpParseRoundTripIsStable) {
  const char *Docs[] = {
      "{\"a\": [1, 2.5, true, null], \"s\": \"x\\ny\"}",
      "[{\"nested\": {\"deep\": [\"\\u0001\", -7]}}]",
      "\"caf\xc3\xa9 \xf0\x9f\x98\x80\"",
      "-0.125",
  };
  for (const char *Text : Docs) {
    Result<JsonValue> First = parseJson(Text);
    ASSERT_TRUE(bool(First)) << Text;
    std::string Dumped = dumpJson(*First);
    Result<JsonValue> Second = parseJson(Dumped);
    ASSERT_TRUE(bool(Second)) << Dumped;
    // encode(parse(x)) is a fixed point: one more round trip changes
    // nothing.
    EXPECT_EQ(dumpJson(*Second), Dumped) << Text;
  }
}
