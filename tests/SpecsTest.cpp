//===----------------------------------------------------------------------===//
//
// Part of AlgSpec. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the embedded specification library (every builtin spec
/// parses, is sufficiently complete, and is consistent; behavioural
/// spot checks for Bag and Bst) and for the axiom-skeleton generator.
///
//===----------------------------------------------------------------------===//

#include "ast/AlgebraContext.h"
#include "ast/TermPrinter.h"
#include "check/Completeness.h"
#include "check/Consistency.h"
#include "ast/SpecPrinter.h"
#include "check/Skeleton.h"
#include "parser/Parser.h"
#include "rewrite/Engine.h"
#include "specs/BuiltinSpecs.h"

#include <gtest/gtest.h>

using namespace algspec;

//===----------------------------------------------------------------------===//
// Every builtin spec parses, checks complete, and checks consistent.
//===----------------------------------------------------------------------===//

namespace {

struct BuiltinCase {
  const char *Name;
  std::string_view Text;
  size_t ExpectedSpecs;
};

class BuiltinSpecSweep : public ::testing::TestWithParam<BuiltinCase> {};

} // namespace

TEST_P(BuiltinSpecSweep, ParsesCompleteAndConsistent) {
  const BuiltinCase &Case = GetParam();
  AlgebraContext Ctx;
  auto Parsed = specs::load(Ctx, Case.Text, std::string(Case.Name));
  ASSERT_TRUE(static_cast<bool>(Parsed)) << Parsed.error().message();
  EXPECT_EQ(Parsed->size(), Case.ExpectedSpecs);

  std::vector<const Spec *> Ptrs;
  for (const Spec &S : *Parsed) {
    Ptrs.push_back(&S);
    CompletenessReport Report = checkCompleteness(Ctx, S);
    EXPECT_TRUE(Report.SufficientlyComplete)
        << S.name() << ":\n" << Report.renderPrompt(Ctx);
  }
  ConsistencyReport Consistency = checkConsistency(Ctx, Ptrs);
  EXPECT_TRUE(Consistency.Consistent) << Consistency.render(Ctx);
}

INSTANTIATE_TEST_SUITE_P(
    AllBuiltins, BuiltinSpecSweep,
    ::testing::Values(
        BuiltinCase{"queue", specs::QueueAlg, 1},
        BuiltinCase{"symboltable", specs::SymboltableAlg, 1},
        BuiltinCase{"stackarray", specs::StackArrayAlg, 2},
        BuiltinCase{"knowlist", specs::KnowlistAlg, 1},
        BuiltinCase{"knows_symboltable", specs::KnowsSymboltableAlg, 2},
        BuiltinCase{"nat", specs::NatAlg, 1},
        BuiltinCase{"set", specs::SetAlg, 1},
        BuiltinCase{"list", specs::ListAlg, 1},
        BuiltinCase{"bag", specs::BagAlg, 1},
        BuiltinCase{"bst", specs::BstAlg, 1},
        BuiltinCase{"table", specs::TableAlg, 1}),
    [](const ::testing::TestParamInfo<BuiltinCase> &Info) {
      return std::string(Info.param.Name);
    });

//===----------------------------------------------------------------------===//
// Bag behaviour
//===----------------------------------------------------------------------===//

namespace {

/// Loads one builtin spec text and wires an engine over it.
class SpecFixture {
public:
  SpecFixture(std::string_view Text, const char *Name) {
    auto Parsed = specs::load(Ctx, Text, Name);
    EXPECT_TRUE(static_cast<bool>(Parsed)) << Parsed.error().message();
    Specs = Parsed.take();
    std::vector<const Spec *> Ptrs;
    for (const Spec &S : Specs)
      Ptrs.push_back(&S);
    System = std::make_unique<RewriteSystem>(
        RewriteSystem::buildChecked(Ctx, Ptrs).take());
    Engine = std::make_unique<RewriteEngine>(Ctx, *System);
  }

  std::string norm(const std::string &Text) {
    auto Term = parseTermText(Ctx, Text);
    EXPECT_TRUE(static_cast<bool>(Term)) << Term.error().message();
    auto Normal = Engine->normalize(*Term);
    EXPECT_TRUE(static_cast<bool>(Normal)) << Normal.error().message();
    return printTerm(Ctx, *Normal);
  }

  AlgebraContext Ctx;
  std::vector<Spec> Specs;
  std::unique_ptr<RewriteSystem> System;
  std::unique_ptr<RewriteEngine> Engine;
};

} // namespace

TEST(BagSpecTest, CountsMultiplicity) {
  SpecFixture F(specs::BagAlg, "bag.alg");
  EXPECT_EQ(F.norm("COUNT(INSERT(INSERT(INSERT(EMPTYBAG, 'a), 'b), 'a), "
                   "'a)"),
            "2");
  EXPECT_EQ(F.norm("COUNT(EMPTYBAG, 'a)"), "0");
}

TEST(BagSpecTest, DeleteOneRemovesExactlyOne) {
  SpecFixture F(specs::BagAlg, "bag.alg");
  std::string TwoAs = "INSERT(INSERT(EMPTYBAG, 'a), 'a)";
  EXPECT_EQ(F.norm("COUNT(DELETE_ONE(" + TwoAs + ", 'a), 'a)"), "1");
  EXPECT_EQ(
      F.norm("COUNT(DELETE_ONE(DELETE_ONE(" + TwoAs + ", 'a), 'a), 'a)"),
      "0");
  // Deleting an absent element is the identity.
  EXPECT_EQ(F.norm("COUNT(DELETE_ONE(" + TwoAs + ", 'b), 'a)"), "2");
}

//===----------------------------------------------------------------------===//
// Bst behaviour
//===----------------------------------------------------------------------===//

TEST(BstSpecTest, InsertMaintainsSearchOrder) {
  SpecFixture F(specs::BstAlg, "bst.alg");
  std::string Tree = "INSERT(INSERT(INSERT(LEAF, 5), 2), 8)";
  EXPECT_EQ(F.norm(Tree),
            "NODE(NODE(LEAF, 2, LEAF), 5, NODE(LEAF, 8, LEAF))");
}

TEST(BstSpecTest, ContainsFollowsOrder) {
  SpecFixture F(specs::BstAlg, "bst.alg");
  std::string Tree = "INSERT(INSERT(INSERT(INSERT(LEAF, 5), 2), 8), 1)";
  EXPECT_EQ(F.norm("CONTAINS?(" + Tree + ", 8)"), "true");
  EXPECT_EQ(F.norm("CONTAINS?(" + Tree + ", 1)"), "true");
  EXPECT_EQ(F.norm("CONTAINS?(" + Tree + ", 7)"), "false");
}

TEST(BstSpecTest, DuplicateInsertIsIdentity) {
  SpecFixture F(specs::BstAlg, "bst.alg");
  EXPECT_EQ(F.norm("SIZE(INSERT(INSERT(INSERT(LEAF, 5), 5), 5))"), "1");
}

TEST(BstSpecTest, TreeMinFindsLeftmost) {
  SpecFixture F(specs::BstAlg, "bst.alg");
  std::string Tree = "INSERT(INSERT(INSERT(INSERT(LEAF, 5), 2), 8), 1)";
  EXPECT_EQ(F.norm("TREE_MIN(" + Tree + ")"), "1");
  EXPECT_EQ(F.norm("TREE_MIN(LEAF)"), "error");
}

//===----------------------------------------------------------------------===//
// Skeleton generation (paper section 3's presentation heuristics)
//===----------------------------------------------------------------------===//

TEST(SkeletonTest, QueueSkeletonsMatchThePaperAxiomCases) {
  AlgebraContext Ctx;
  Spec Q = specs::loadQueue(Ctx).take();
  SkeletonReport Report = generateSkeletons(Ctx, Q);
  // 3 defined ops x 2 constructors = 6 cases — the paper's axioms 1-6.
  ASSERT_EQ(Report.Cases.size(), 6u);
  EXPECT_TRUE(Report.NoCaseAnalysis.empty());

  std::string Text = Report.render(Ctx);
  EXPECT_NE(Text.find("FRONT(NEW) = ?"), std::string::npos) << Text;
  EXPECT_NE(Text.find("FRONT(ADD(queue, item)) = ?"), std::string::npos)
      << Text;
  EXPECT_NE(Text.find("REMOVE(NEW) = ?"), std::string::npos) << Text;
  EXPECT_NE(Text.find("IS_EMPTY?(ADD(queue, item)) = ?"),
            std::string::npos)
      << Text;
}

TEST(SkeletonTest, SymboltableSkeletonsCoverNineCases) {
  AlgebraContext Ctx;
  Spec S = specs::loadSymboltable(Ctx).take();
  SkeletonReport Report = generateSkeletons(Ctx, S);
  // 3 defined ops x 3 constructors = 9 — exactly the paper's axioms 1-9.
  EXPECT_EQ(Report.Cases.size(), 9u);
}

TEST(SkeletonTest, SignatureOnlySpecDrivesTheWorkflow) {
  // The intended workflow: write the signature, generate the skeleton,
  // fill in the right-hand sides, pass the completeness check.
  AlgebraContext Ctx;
  auto Parsed = parseSpecText(Ctx, R"(
spec Pair
  uses Item
  sorts Pair
  ops
    MK  : Item, Item -> Pair
    FST : Pair -> Item
    SND : Pair -> Item
  constructors MK
end
)");
  ASSERT_TRUE(static_cast<bool>(Parsed));
  SkeletonReport Report = generateSkeletons(Ctx, (*Parsed)[0]);
  ASSERT_EQ(Report.Cases.size(), 2u);
  std::string Text = Report.render(Ctx);
  EXPECT_NE(Text.find("FST(MK(item, item1)) = ?"), std::string::npos)
      << Text;
  EXPECT_NE(Text.find("SND(MK(item, item1)) = ?"), std::string::npos)
      << Text;
}

TEST(SkeletonTest, FreshVariablesAreNumberedPerCase) {
  AlgebraContext Ctx;
  auto Parsed = parseSpecText(Ctx, R"(
spec T
  uses Item
  sorts T
  ops
    MK : Item -> T
    F  : T, T -> Bool
  constructors MK
end
)");
  ASSERT_TRUE(static_cast<bool>(Parsed));
  SkeletonReport Report = generateSkeletons(Ctx, (*Parsed)[0]);
  ASSERT_EQ(Report.Cases.size(), 1u);
  // Case analysis on the first T argument; the second stays a variable
  // named after its sort.
  EXPECT_EQ(printTerm(Ctx, Report.Cases[0].Lhs), "F(MK(item), t)");
}

TEST(SkeletonTest, NoCaseAnalysisReported) {
  AlgebraContext Ctx;
  auto Parsed = parseSpecText(Ctx, R"(
spec P
  uses Identifier
  sorts P
  ops
    MK : -> P
    H  : Identifier -> Bool
  constructors MK
end
)");
  ASSERT_TRUE(static_cast<bool>(Parsed));
  SkeletonReport Report = generateSkeletons(Ctx, (*Parsed)[0]);
  // H's only argument is an atom sort: no constructors to split on.
  ASSERT_EQ(Report.NoCaseAnalysis.size(), 1u);
  ASSERT_EQ(Report.Cases.size(), 1u);
  EXPECT_EQ(printTerm(Ctx, Report.Cases[0].Lhs), "H(identifier)");
}

//===----------------------------------------------------------------------===//
// SpecPrinter round-tripping
//===----------------------------------------------------------------------===//

namespace {
class SpecRoundTrip : public ::testing::TestWithParam<BuiltinCase> {};
} // namespace

TEST_P(SpecRoundTrip, PrintedSpecReparsesIdentically) {
  const BuiltinCase &Case = GetParam();

  // Parse the original buffer.
  AlgebraContext Ctx1;
  auto Parsed1 = specs::load(Ctx1, Case.Text, std::string(Case.Name));
  ASSERT_TRUE(static_cast<bool>(Parsed1)) << Parsed1.error().message();

  // Print every spec of the buffer, in order, into one new buffer.
  std::string Printed;
  for (const Spec &S : *Parsed1)
    Printed += printSpec(Ctx1, S) + "\n";

  // Reparse into a fresh context.
  AlgebraContext Ctx2;
  auto Parsed2 = specs::load(Ctx2, Printed, "printed.alg");
  ASSERT_TRUE(static_cast<bool>(Parsed2))
      << Parsed2.error().message() << "\nprinted text:\n" << Printed;
  ASSERT_EQ(Parsed2->size(), Parsed1->size());

  for (size_t I = 0; I != Parsed1->size(); ++I) {
    const Spec &A = (*Parsed1)[I];
    const Spec &B = (*Parsed2)[I];
    EXPECT_EQ(A.name(), B.name());
    EXPECT_EQ(A.definedSorts().size(), B.definedSorts().size());
    EXPECT_EQ(A.operations().size(), B.operations().size());
    ASSERT_EQ(A.axioms().size(), B.axioms().size());
    // Axioms agree textually (printed via each spec's own context).
    for (size_t J = 0; J != A.axioms().size(); ++J)
      EXPECT_EQ(printAxiom(Ctx1, A.axioms()[J]),
                printAxiom(Ctx2, B.axioms()[J]))
          << A.name() << " axiom " << J + 1;
    // Constructor sets agree.
    for (size_t J = 0; J != A.operations().size(); ++J)
      EXPECT_EQ(Ctx1.op(A.operations()[J]).isConstructor(),
                Ctx2.op(B.operations()[J]).isConstructor());
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllBuiltins, SpecRoundTrip,
    ::testing::Values(
        BuiltinCase{"queue", specs::QueueAlg, 1},
        BuiltinCase{"symboltable", specs::SymboltableAlg, 1},
        BuiltinCase{"stackarray", specs::StackArrayAlg, 2},
        BuiltinCase{"knowlist", specs::KnowlistAlg, 1},
        BuiltinCase{"knows_symboltable", specs::KnowsSymboltableAlg, 2},
        BuiltinCase{"nat", specs::NatAlg, 1},
        BuiltinCase{"set", specs::SetAlg, 1},
        BuiltinCase{"list", specs::ListAlg, 1},
        BuiltinCase{"bag", specs::BagAlg, 1},
        BuiltinCase{"bst", specs::BstAlg, 1},
        BuiltinCase{"table", specs::TableAlg, 1}),
    [](const ::testing::TestParamInfo<BuiltinCase> &Info) {
      return std::string(Info.param.Name);
    });
