//===----------------------------------------------------------------------===//
//
// Part of AlgSpec. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Unit tests for the algebra AST: sorts, operations, hash-consed terms,
/// structural error propagation, printing, and Spec objects.
///
//===----------------------------------------------------------------------===//

#include "ast/AlgebraContext.h"
#include "ast/Spec.h"
#include "ast/SpecPrinter.h"
#include "ast/TermPrinter.h"

#include <gtest/gtest.h>

using namespace algspec;

namespace {

/// Shared fixture: a context with the paper's Queue signature (section 3).
class QueueContext : public ::testing::Test {
protected:
  void SetUp() override {
    QueueSort = Ctx.addSort("Queue", SortKind::User);
    ItemSort = Ctx.getOrAddAtomSort("Item");
    NewOp = Ctx.addOp("NEW", {}, QueueSort, OpKind::Constructor);
    AddOp = Ctx.addOp("ADD", {QueueSort, ItemSort}, QueueSort,
                      OpKind::Constructor);
    FrontOp = Ctx.addOp("FRONT", {QueueSort}, ItemSort, OpKind::Defined);
    RemoveOp = Ctx.addOp("REMOVE", {QueueSort}, QueueSort, OpKind::Defined);
    IsEmptyOp = Ctx.addOp("IS_EMPTY", {QueueSort}, Ctx.boolSort(),
                          OpKind::Defined);
  }

  AlgebraContext Ctx;
  SortId QueueSort, ItemSort;
  OpId NewOp, AddOp, FrontOp, RemoveOp, IsEmptyOp;
};

} // namespace

//===----------------------------------------------------------------------===//
// Sorts and operations
//===----------------------------------------------------------------------===//

TEST_F(QueueContext, BuiltinSortsExist) {
  EXPECT_TRUE(Ctx.boolSort().isValid());
  EXPECT_TRUE(Ctx.intSort().isValid());
  EXPECT_EQ(Ctx.sort(Ctx.boolSort()).Kind, SortKind::Bool);
  EXPECT_EQ(Ctx.sort(Ctx.intSort()).Kind, SortKind::Int);
}

TEST_F(QueueContext, SortLookup) {
  EXPECT_EQ(Ctx.lookupSort("Queue"), QueueSort);
  EXPECT_EQ(Ctx.lookupSort("Item"), ItemSort);
  EXPECT_FALSE(Ctx.lookupSort("Stack").isValid());
}

TEST_F(QueueContext, AtomSortIdempotent) {
  EXPECT_EQ(Ctx.getOrAddAtomSort("Item"), ItemSort);
  EXPECT_EQ(Ctx.sort(ItemSort).Kind, SortKind::Atom);
}

TEST_F(QueueContext, OpLookupAndMetadata) {
  EXPECT_EQ(Ctx.lookupOp("ADD"), AddOp);
  const OpInfo &Add = Ctx.op(AddOp);
  EXPECT_EQ(Add.arity(), 2u);
  EXPECT_EQ(Add.ResultSort, QueueSort);
  EXPECT_TRUE(Add.isConstructor());
  EXPECT_TRUE(Ctx.op(FrontOp).isDefined());
  EXPECT_FALSE(Ctx.lookupOp("POP").isValid());
}

TEST_F(QueueContext, ConstructorsOfSort) {
  std::vector<OpId> Ctors = Ctx.constructorsOf(QueueSort);
  ASSERT_EQ(Ctors.size(), 2u);
  EXPECT_EQ(Ctors[0], NewOp);
  EXPECT_EQ(Ctors[1], AddOp);
}

TEST_F(QueueContext, BoolConstructors) {
  std::vector<OpId> Ctors = Ctx.constructorsOf(Ctx.boolSort());
  ASSERT_EQ(Ctors.size(), 2u);
  EXPECT_EQ(Ctors[0], Ctx.trueOp());
  EXPECT_EQ(Ctors[1], Ctx.falseOp());
}

//===----------------------------------------------------------------------===//
// Hash consing
//===----------------------------------------------------------------------===//

TEST_F(QueueContext, HashConsingDeduplicates) {
  TermId New1 = Ctx.makeOp(NewOp, {});
  TermId New2 = Ctx.makeOp(NewOp, {});
  EXPECT_EQ(New1, New2);

  TermId ItemX = Ctx.makeAtom("x", ItemSort);
  TermId Add1 = Ctx.makeOp(AddOp, {New1, ItemX});
  TermId Add2 = Ctx.makeOp(AddOp, {New2, Ctx.makeAtom("x", ItemSort)});
  EXPECT_EQ(Add1, Add2);
}

TEST_F(QueueContext, DistinctTermsDistinctIds) {
  TermId New = Ctx.makeOp(NewOp, {});
  TermId A = Ctx.makeOp(AddOp, {New, Ctx.makeAtom("a", ItemSort)});
  TermId B = Ctx.makeOp(AddOp, {New, Ctx.makeAtom("b", ItemSort)});
  EXPECT_NE(A, B);
}

TEST_F(QueueContext, AtomsInternBySortAndName) {
  TermId X1 = Ctx.makeAtom("x", ItemSort);
  TermId X2 = Ctx.makeAtom("x", ItemSort);
  EXPECT_EQ(X1, X2);
  SortId Other = Ctx.getOrAddAtomSort("Identifier");
  EXPECT_NE(X1, Ctx.makeAtom("x", Other));
}

TEST_F(QueueContext, IntLiterals) {
  TermId A = Ctx.makeInt(7);
  TermId B = Ctx.makeInt(7);
  TermId C = Ctx.makeInt(-7);
  EXPECT_EQ(A, B);
  EXPECT_NE(A, C);
  EXPECT_EQ(Ctx.intValue(A), 7);
  EXPECT_EQ(Ctx.sortOf(A), Ctx.intSort());
}

TEST_F(QueueContext, ErrorsInternPerSort) {
  EXPECT_EQ(Ctx.makeError(QueueSort), Ctx.makeError(QueueSort));
  EXPECT_NE(Ctx.makeError(QueueSort), Ctx.makeError(ItemSort));
}

TEST_F(QueueContext, VariablesInternPerVarId) {
  VarId Q1 = Ctx.addVar("q", QueueSort);
  VarId Q2 = Ctx.addVar("q", QueueSort);
  EXPECT_EQ(Ctx.makeVar(Q1), Ctx.makeVar(Q1));
  // Distinct declarations are distinct variables even with equal names.
  EXPECT_NE(Ctx.makeVar(Q1), Ctx.makeVar(Q2));
}

//===----------------------------------------------------------------------===//
// Error propagation (paper section 3: f(..., error, ...) = error)
//===----------------------------------------------------------------------===//

TEST_F(QueueContext, StrictErrorPropagation) {
  TermId ErrQueue = Ctx.makeError(QueueSort);
  TermId ItemX = Ctx.makeAtom("x", ItemSort);
  TermId Applied = Ctx.makeOp(AddOp, {ErrQueue, ItemX});
  EXPECT_TRUE(Ctx.isError(Applied));
  EXPECT_EQ(Ctx.sortOf(Applied), QueueSort);

  // The error's sort follows the applied op's *result* sort.
  TermId FrontOfErr = Ctx.makeOp(FrontOp, {ErrQueue});
  EXPECT_TRUE(Ctx.isError(FrontOfErr));
  EXPECT_EQ(Ctx.sortOf(FrontOfErr), ItemSort);
}

TEST_F(QueueContext, IteLazyInBranches) {
  TermId ErrItem = Ctx.makeError(ItemSort);
  TermId ItemX = Ctx.makeAtom("x", ItemSort);
  TermId Ite = Ctx.makeIte(Ctx.trueTerm(), ItemX, ErrItem);
  // An error in an (untaken) branch must not poison the conditional.
  EXPECT_FALSE(Ctx.isError(Ite));
}

TEST_F(QueueContext, IteStrictInCondition) {
  TermId ErrBool = Ctx.makeError(Ctx.boolSort());
  TermId ItemX = Ctx.makeAtom("x", ItemSort);
  TermId Ite = Ctx.makeIte(ErrBool, ItemX, ItemX);
  EXPECT_TRUE(Ctx.isError(Ite));
}

//===----------------------------------------------------------------------===//
// Term structure and metrics
//===----------------------------------------------------------------------===//

TEST_F(QueueContext, ChildrenSpan) {
  TermId New = Ctx.makeOp(NewOp, {});
  TermId ItemX = Ctx.makeAtom("x", ItemSort);
  TermId Add = Ctx.makeOp(AddOp, {New, ItemX});
  auto Children = Ctx.children(Add);
  ASSERT_EQ(Children.size(), 2u);
  EXPECT_EQ(Children[0], New);
  EXPECT_EQ(Children[1], ItemX);
}

TEST_F(QueueContext, GroundnessTest) {
  TermId New = Ctx.makeOp(NewOp, {});
  EXPECT_TRUE(Ctx.isGround(New));
  VarId Q = Ctx.addVar("q", QueueSort);
  TermId WithVar = Ctx.makeOp(RemoveOp, {Ctx.makeVar(Q)});
  EXPECT_FALSE(Ctx.isGround(WithVar));
}

TEST_F(QueueContext, SizeMetrics) {
  TermId New = Ctx.makeOp(NewOp, {});
  TermId X = Ctx.makeAtom("x", ItemSort);
  TermId Add1 = Ctx.makeOp(AddOp, {New, X});
  TermId Add2 = Ctx.makeOp(AddOp, {Add1, X});
  EXPECT_EQ(Ctx.depth(New), 1u);
  EXPECT_EQ(Ctx.depth(Add2), 3u);
  EXPECT_EQ(Ctx.treeSize(Add2), 5u);
  EXPECT_EQ(Ctx.dagSize(Add2), 4u); // X shared.
}

//===----------------------------------------------------------------------===//
// Sort-indexed builtins
//===----------------------------------------------------------------------===//

TEST_F(QueueContext, IteOpPerSort) {
  OpId IteQueue = Ctx.getIteOp(QueueSort);
  OpId IteQueue2 = Ctx.getIteOp(QueueSort);
  OpId IteItem = Ctx.getIteOp(ItemSort);
  EXPECT_EQ(IteQueue, IteQueue2);
  EXPECT_NE(IteQueue, IteItem);
  EXPECT_EQ(Ctx.op(IteQueue).Builtin, BuiltinOp::Ite);
}

TEST_F(QueueContext, SameOpPerSort) {
  OpId SameItem = Ctx.getSameOp(ItemSort);
  EXPECT_EQ(Ctx.getSameOp(ItemSort), SameItem);
  EXPECT_EQ(Ctx.op(SameItem).ResultSort, Ctx.boolSort());
  EXPECT_EQ(Ctx.op(SameItem).Builtin, BuiltinOp::Same);
}

TEST_F(QueueContext, IntBuiltinsRegistered) {
  OpId Add = Ctx.intOp(BuiltinOp::IntAdd);
  EXPECT_EQ(Ctx.op(Add).ResultSort, Ctx.intSort());
  OpId Le = Ctx.intOp(BuiltinOp::IntLe);
  EXPECT_EQ(Ctx.op(Le).ResultSort, Ctx.boolSort());
}

//===----------------------------------------------------------------------===//
// Printing
//===----------------------------------------------------------------------===//

TEST_F(QueueContext, PrintNullaryOp) {
  EXPECT_EQ(printTerm(Ctx, Ctx.makeOp(NewOp, {})), "NEW");
}

TEST_F(QueueContext, PrintNestedTerm) {
  TermId New = Ctx.makeOp(NewOp, {});
  TermId Add = Ctx.makeOp(AddOp, {New, Ctx.makeAtom("x", ItemSort)});
  EXPECT_EQ(printTerm(Ctx, Ctx.makeOp(FrontOp, {Add})), "FRONT(ADD(NEW, 'x))");
}

TEST_F(QueueContext, PrintErrorAndLiterals) {
  EXPECT_EQ(printTerm(Ctx, Ctx.makeError(QueueSort)), "error");
  EXPECT_EQ(printTerm(Ctx, Ctx.makeInt(42)), "42");
  EXPECT_EQ(printTerm(Ctx, Ctx.trueTerm()), "true");
}

TEST_F(QueueContext, PrintIteAndSame) {
  VarId Q = Ctx.addVar("q", QueueSort);
  VarId I = Ctx.addVar("i", ItemSort);
  TermId QT = Ctx.makeVar(Q);
  TermId IT = Ctx.makeVar(I);
  TermId Cond = Ctx.makeOp(IsEmptyOp, {QT});
  TermId Ite = Ctx.makeIte(Cond, IT, Ctx.makeOp(FrontOp, {QT}));
  EXPECT_EQ(printTerm(Ctx, Ite), "if IS_EMPTY(q) then i else FRONT(q)");

  OpId Same = Ctx.getSameOp(ItemSort);
  TermId SameT = Ctx.makeOp(Same, {IT, IT});
  EXPECT_EQ(printTerm(Ctx, SameT), "SAME(i, i)");
}

TEST_F(QueueContext, PrintNestedIteParenthesized) {
  VarId I = Ctx.addVar("i", ItemSort);
  TermId IT = Ctx.makeVar(I);
  TermId Inner = Ctx.makeIte(Ctx.trueTerm(), IT, IT);
  TermId Outer = Ctx.makeIte(Ctx.falseTerm(), Inner, IT);
  EXPECT_EQ(printTerm(Ctx, Outer),
            "if false then (if true then i else i) else i");
}

//===----------------------------------------------------------------------===//
// Spec objects
//===----------------------------------------------------------------------===//

TEST_F(QueueContext, SpecBookkeeping) {
  Spec S("Queue");
  S.addDefinedSort(QueueSort);
  S.addUsedSort(ItemSort);
  for (OpId Op : {NewOp, AddOp, FrontOp, RemoveOp, IsEmptyOp})
    S.addOperation(Op);

  EXPECT_EQ(S.principalSort(), QueueSort);
  EXPECT_EQ(S.constructorsOf(Ctx, QueueSort).size(), 2u);
  std::vector<OpId> Defined = S.definedOps(Ctx);
  ASSERT_EQ(Defined.size(), 3u);
  EXPECT_EQ(Defined[0], FrontOp);
}

TEST_F(QueueContext, AxiomNumbering) {
  Spec S("Queue");
  TermId New = Ctx.makeOp(NewOp, {});
  const Axiom &A1 = S.addAxiom(Ctx.makeOp(IsEmptyOp, {New}), Ctx.trueTerm());
  EXPECT_EQ(A1.Number, 1u);
  const Axiom &A2 =
      S.addAxiom(Ctx.makeOp(FrontOp, {New}), Ctx.makeError(ItemSort));
  EXPECT_EQ(A2.Number, 2u);
  EXPECT_EQ(S.axioms().size(), 2u);
}

TEST_F(QueueContext, PrintAxiom) {
  Spec S("Queue");
  TermId New = Ctx.makeOp(NewOp, {});
  const Axiom &A = S.addAxiom(Ctx.makeOp(IsEmptyOp, {New}), Ctx.trueTerm());
  EXPECT_EQ(printAxiom(Ctx, A), "IS_EMPTY(NEW) = true");
}

//===----------------------------------------------------------------------===//
// SpecPrinter on a programmatically built spec (no parser involved)
//===----------------------------------------------------------------------===//

TEST_F(QueueContext, PrintProgrammaticSpec) {
  Spec S("Queue");
  S.addDefinedSort(QueueSort);
  S.addUsedSort(ItemSort);
  for (OpId Op : {NewOp, AddOp, FrontOp})
    S.addOperation(Op);
  VarId Q = Ctx.addVar("q", QueueSort);
  VarId I = Ctx.addVar("i", ItemSort);
  S.addVariable(Q);
  S.addVariable(I);
  S.addAxiom(Ctx.makeOp(FrontOp, {Ctx.makeOp(AddOp, {Ctx.makeVar(Q),
                                                     Ctx.makeVar(I)})}),
             Ctx.makeVar(I));

  std::string Text = printSpec(Ctx, S);
  EXPECT_NE(Text.find("spec Queue"), std::string::npos) << Text;
  EXPECT_NE(Text.find("uses Item"), std::string::npos) << Text;
  EXPECT_NE(Text.find("ADD : Queue, Item -> Queue"), std::string::npos)
      << Text;
  EXPECT_NE(Text.find("constructors NEW, ADD"), std::string::npos) << Text;
  EXPECT_NE(Text.find("FRONT(ADD(q, i)) = i"), std::string::npos) << Text;
  EXPECT_NE(Text.find("end"), std::string::npos) << Text;
}
