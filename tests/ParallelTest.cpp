//===----------------------------------------------------------------------===//
//
// Part of AlgSpec. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the parallel verification engine: the work-stealing thread
/// pool, the replica driver, and — the property everything else rests
/// on — that every checker's report is byte-identical between the
/// serial sweep and a sharded run at any job count.
///
//===----------------------------------------------------------------------===//

#include "adt/Queue.h"
#include "ast/AlgebraContext.h"
#include "ast/TermPrinter.h"
#include "check/Completeness.h"
#include "check/Consistency.h"
#include "check/ReplicaWorker.h"
#include "model/ModelBinding.h"
#include "model/ModelTester.h"
#include "parser/Parser.h"
#include "parser/Replicator.h"
#include "specs/BuiltinSpecs.h"
#include "support/Parallel.h"
#include "support/ThreadPool.h"
#include "verify/RepVerifier.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <string>
#include <thread>

using namespace algspec;

//===----------------------------------------------------------------------===//
// ThreadPool
//===----------------------------------------------------------------------===//

TEST(ThreadPoolTest, RunsEveryTask) {
  ThreadPool Pool(4);
  EXPECT_EQ(Pool.numThreads(), 4u);
  std::atomic<int> Count{0};
  for (int I = 0; I != 1000; ++I)
    Pool.submit([&Count] { Count.fetch_add(1, std::memory_order_relaxed); });
  Pool.wait();
  EXPECT_EQ(Count.load(), 1000);

  // The pool is reusable after a wait().
  for (int I = 0; I != 100; ++I)
    Pool.submit([&Count] { Count.fetch_add(1, std::memory_order_relaxed); });
  Pool.wait();
  EXPECT_EQ(Count.load(), 1100);
}

TEST(ThreadPoolTest, WaitWithNoWorkReturns) {
  ThreadPool Pool(2);
  Pool.wait(); // Must not hang.
}

TEST(ThreadPoolTest, WorkerIndexIsInRangeAndMainThreadIsNot) {
  EXPECT_EQ(ThreadPool::currentWorkerIndex(), unsigned(-1));
  ThreadPool Pool(3);
  std::vector<std::atomic<int>> PerWorker(3);
  std::atomic<bool> OutOfRange{false};
  for (int I = 0; I != 300; ++I)
    Pool.submit([&] {
      unsigned W = ThreadPool::currentWorkerIndex();
      if (W >= 3)
        OutOfRange = true;
      else
        PerWorker[W].fetch_add(1);
    });
  Pool.wait();
  EXPECT_FALSE(OutOfRange.load());
  int Total = 0;
  for (auto &C : PerWorker)
    Total += C.load();
  EXPECT_EQ(Total, 300);
}

/// Racy by construction: many tiny tasks submitted in bursts so workers
/// spend most of their time stealing from each other, with wait()
/// boundaries in between. Under ThreadSanitizer this exercises the
/// submit/steal/wait synchronization; the assertions also catch lost or
/// double-run tasks in a normal build.
TEST(ThreadPoolTest, StealStressManyTinyTasks) {
  ThreadPool Pool(4);
  std::vector<std::atomic<uint8_t>> Ran(20000);
  std::atomic<size_t> Sum{0};
  for (int Round = 0; Round != 4; ++Round) {
    size_t Begin = Round * 5000, End = Begin + 5000;
    for (size_t I = Begin; I != End; ++I)
      Pool.submit([&, I] {
        // fetch_add on a per-task slot detects a task run twice.
        if (Ran[I].fetch_add(1) == 0)
          Sum.fetch_add(I, std::memory_order_relaxed);
      });
    Pool.wait();
    // The happens-before edge from wait(): a plain (non-atomic-feeling)
    // read of everything this round wrote must be consistent.
    for (size_t I = Begin; I != End; ++I)
      ASSERT_EQ(Ran[I].load(std::memory_order_relaxed), 1u);
  }
  size_t Expected = (20000 * 19999) / 2;
  EXPECT_EQ(Sum.load(), Expected);
}

//===----------------------------------------------------------------------===//
// ParallelDriver
//===----------------------------------------------------------------------===//

TEST(ParallelDriverTest, MapReturnsResultsInIndexOrder) {
  ParallelOptions Par;
  Par.Jobs = 4;
  Par.MinChunk = 16; // Force many chunks on the small space below.
  std::atomic<int> Factories{0};
  ParallelDriver<int> Driver(Par, [&Factories] {
    int Id = Factories.fetch_add(1);
    return std::make_unique<int>(Id);
  });
  ASSERT_TRUE(Driver.enabled());
  std::vector<size_t> Out = Driver.map<size_t>(
      10000, [](int &, size_t I) { return I * 2; });
  ASSERT_EQ(Out.size(), 10000u);
  for (size_t I = 0; I != Out.size(); ++I)
    ASSERT_EQ(Out[I], I * 2);
  // States are built lazily, at most one per worker.
  EXPECT_LE(Factories.load(), 4);
  EXPECT_GE(Factories.load(), 1);
  EXPECT_EQ(Driver.states().size(), size_t(Factories.load()));
}

TEST(ParallelDriverTest, SingleJobRunsInline) {
  ParallelOptions Par;
  Par.Jobs = 1;
  ParallelDriver<int> Driver(Par, [] { return std::make_unique<int>(7); });
  EXPECT_FALSE(Driver.enabled());
  std::vector<int> Out =
      Driver.map<int>(5, [](int &S, size_t I) { return S + int(I); });
  EXPECT_EQ(Out, (std::vector<int>{7, 8, 9, 10, 11}));
}

TEST(ParallelDriverTest, EmptySpace) {
  ParallelOptions Par;
  Par.Jobs = 4;
  ParallelDriver<int> Driver(Par, [] { return std::make_unique<int>(0); });
  EXPECT_TRUE(Driver.map<int>(0, [](int &, size_t) { return 1; }).empty());
}

//===----------------------------------------------------------------------===//
// Replica
//===----------------------------------------------------------------------===//

TEST(ReplicaTest, RoundTripsPaperSpecs) {
  AlgebraContext Ctx;
  Spec Q = specs::loadQueue(Ctx).take();
  Spec Sym = specs::loadSymboltable(Ctx).take();
  std::vector<Spec> SA = specs::loadStackArray(Ctx).take();
  std::vector<const Spec *> All{&Q, &Sym};
  for (const Spec &S : SA)
    All.push_back(&S);

  auto Rep = Replica::create(Ctx, All);
  ASSERT_TRUE(static_cast<bool>(Rep)) << Rep.error().message();
  EXPECT_EQ((*Rep)->specs().size(), All.size());

  // A ground term maps to the structurally identical term in the
  // replica's arena (printed forms agree).
  auto Term = parseTermText(Ctx, "FRONT(ADD(ADD(NEW, 'a), 'b))");
  ASSERT_TRUE(static_cast<bool>(Term));
  TermId Mapped = (*Rep)->mapTerm(*Term);
  EXPECT_EQ(printTerm((*Rep)->context(), Mapped), printTerm(Ctx, *Term));
}

TEST(ReplicaTest, MapTermReturnsInvalidForUnreplicatedOp) {
  AlgebraContext Ctx;
  Spec Q = specs::loadQueue(Ctx).take();
  Spec Sym = specs::loadSymboltable(Ctx).take();
  auto Rep = Replica::create(Ctx, {&Q});
  ASSERT_TRUE(static_cast<bool>(Rep)) << Rep.error().message();
  // A term headed by a Symboltable operation has no image in a replica
  // built from the Queue spec alone: mapTerm reports the miss with an
  // invalid id (the caller falls back to the serial path) instead of
  // building a term over an invalid operation.
  auto Term = parseTermText(Ctx, "INIT");
  ASSERT_TRUE(static_cast<bool>(Term)) << Term.error().message();
  EXPECT_FALSE((*Rep)->mapTerm(*Term).isValid());
}

TEST(ReplicaWorkerTest, DriverIsNullForOneJob) {
  AlgebraContext Ctx;
  Spec Q = specs::loadQueue(Ctx).take();
  ParallelOptions Par;
  Par.Jobs = 1;
  EXPECT_EQ(makeReplicaDriver(Par, Ctx, {&Q}), nullptr);
}

//===----------------------------------------------------------------------===//
// Determinism: every checker's report is identical at any job count
//===----------------------------------------------------------------------===//

namespace {

ParallelOptions fourJobs() {
  ParallelOptions Par;
  Par.Jobs = 4;
  // Small chunks so even the modest test workloads actually shard.
  Par.MinChunk = 8;
  return Par;
}

/// An incomplete spec (G's C1 case is missing) so the dynamic check has
/// stuck terms to report, plus a SIZE op making the space deeper.
constexpr std::string_view IncompleteSpec = R"(
spec Part
  sorts T
  ops
    C0 : -> T
    C1 : T -> T
    G  : T -> Bool
    SIZE : T -> Int
  constructors C0, C1
  vars x : T
  axioms
    G(C0) = true
    SIZE(C0) = 0
    SIZE(C1(x)) = addi(1, SIZE(x))
end
)";

/// A spec with a genuine critical-pair contradiction (two axioms match
/// H(C0) with different results).
constexpr std::string_view InconsistentSpec = R"(
spec Clash
  sorts T
  ops
    C0 : -> T
    C1 : T -> T
    H  : T -> Bool
  constructors C0, C1
  vars x : T
  axioms
    H(x) = true
    H(C0) = false
    H(C1(x)) = H(x)
end
)";

std::string renderCompleteness(const AlgebraContext &Ctx,
                               const CompletenessReport &R) {
  std::string Out = R.SufficientlyComplete ? "complete\n" : "incomplete\n";
  Out += R.renderPrompt(Ctx);
  for (const std::string &C : R.Caveats)
    Out += "note: " + C + "\n";
  return Out;
}

} // namespace

TEST(ParallelDeterminism, DynamicCompletenessCleanSpec) {
  AlgebraContext Ctx;
  Spec Q = specs::loadQueue(Ctx).take();
  CompletenessReport Serial = checkCompletenessDynamic(Ctx, Q, {&Q}, 4);
  CompletenessReport Sharded = checkCompletenessDynamic(
      Ctx, Q, {&Q}, 4, EnumeratorOptions(), fourJobs());
  EXPECT_EQ(renderCompleteness(Ctx, Serial),
            renderCompleteness(Ctx, Sharded));
  EXPECT_TRUE(Sharded.SufficientlyComplete);
  // The sweep really ran: the aggregated engine counters moved.
  EXPECT_GT(Sharded.Engine.Steps, 0u);
}

TEST(ParallelDeterminism, DynamicCompletenessFindsSameStuckTerms) {
  AlgebraContext Ctx;
  auto Parsed = parseSpecText(Ctx, IncompleteSpec);
  ASSERT_TRUE(static_cast<bool>(Parsed)) << Parsed.error().message();
  Spec &S = Parsed->front();
  CompletenessReport Serial = checkCompletenessDynamic(Ctx, S, {&S}, 5);
  CompletenessReport Sharded = checkCompletenessDynamic(
      Ctx, S, {&S}, 5, EnumeratorOptions(), fourJobs());
  EXPECT_FALSE(Serial.SufficientlyComplete);
  ASSERT_FALSE(Serial.Missing.empty());
  EXPECT_EQ(renderCompleteness(Ctx, Serial),
            renderCompleteness(Ctx, Sharded));
  ASSERT_EQ(Serial.Missing.size(), Sharded.Missing.size());
  // Byte-identical includes the TermIds: the merge re-runs flagged
  // indices on the main context, so suggested terms live in the main
  // arena exactly as the serial sweep would have created them.
  for (size_t I = 0; I != Serial.Missing.size(); ++I)
    EXPECT_EQ(Serial.Missing[I].SuggestedLhs, Sharded.Missing[I].SuggestedLhs);
}

TEST(ParallelDeterminism, FlatSpaceBoundFallsBackToSerial) {
  // A tiny MaxFlatSpace sends every sweep back down the serial path
  // (the parallel path preallocates one result slot per index, so an
  // unbounded space must not reach it); the report stays identical.
  AlgebraContext Ctx;
  auto Parsed = parseSpecText(Ctx, IncompleteSpec);
  ASSERT_TRUE(static_cast<bool>(Parsed)) << Parsed.error().message();
  Spec &S = Parsed->front();
  ParallelOptions Bounded = fourJobs();
  Bounded.MaxFlatSpace = 1;
  CompletenessReport Serial = checkCompletenessDynamic(Ctx, S, {&S}, 5);
  CompletenessReport Capped = checkCompletenessDynamic(
      Ctx, S, {&S}, 5, EnumeratorOptions(), Bounded);
  EXPECT_EQ(renderCompleteness(Ctx, Serial),
            renderCompleteness(Ctx, Capped));
  EXPECT_FALSE(Capped.SufficientlyComplete);
}

TEST(ParallelDeterminism, ConsistencyCleanAndContradictory) {
  AlgebraContext Ctx;
  Spec Q = specs::loadQueue(Ctx).take();
  ConsistencyReport Serial = checkConsistency(Ctx, {&Q});
  ConsistencyReport Sharded = checkConsistency(
      Ctx, {&Q}, 2, EnumeratorOptions(), fourJobs());
  EXPECT_TRUE(Sharded.Consistent);
  EXPECT_EQ(Serial.render(Ctx), Sharded.render(Ctx));

  AlgebraContext Ctx2;
  auto Parsed = parseSpecText(Ctx2, InconsistentSpec);
  ASSERT_TRUE(static_cast<bool>(Parsed)) << Parsed.error().message();
  Spec &Bad = Parsed->front();
  ConsistencyReport Serial2 = checkConsistency(Ctx2, {&Bad});
  ConsistencyReport Sharded2 = checkConsistency(
      Ctx2, {&Bad}, 2, EnumeratorOptions(), fourJobs());
  EXPECT_FALSE(Serial2.Consistent);
  ASSERT_FALSE(Serial2.Contradictions.empty());
  EXPECT_EQ(Serial2.render(Ctx2), Sharded2.render(Ctx2));
}

namespace {

/// Queue<std::string> bindings for the model-test determinism check.
/// \p BuggyRemove drops the newest element instead of the oldest, which
/// axiom 6 catches — giving the parallel merge a failure to reproduce.
void bindQueueModel(ModelBinding &B, AlgebraContext &Ctx, bool BuggyRemove) {
  using QueueV = adt::Queue<std::string>;
  B.bindOp("NEW", [](std::span<const Value>) {
    return Value::of(QueueV());
  });
  B.bindOp("ADD", [](std::span<const Value> Args) {
    QueueV Q = Args[0].get<QueueV>();
    Q.add(Args[1].get<std::string>());
    return Value::of(std::move(Q));
  });
  B.bindOp("FRONT", [](std::span<const Value> Args) {
    std::optional<std::string> Front = Args[0].get<QueueV>().front();
    return Front ? Value::of(*Front) : Value::error();
  });
  B.bindOp("REMOVE", [BuggyRemove](std::span<const Value> Args) {
    QueueV Q = Args[0].get<QueueV>();
    if (Q.isEmpty())
      return Value::error();
    if (!BuggyRemove) {
      Q.remove();
      return Value::of(std::move(Q));
    }
    QueueV Rebuilt;
    while (Q.size() > 1) {
      Rebuilt.add(*Q.front());
      Q.remove();
    }
    return Value::of(std::move(Rebuilt));
  });
  B.bindOp("IS_EMPTY?", [](std::span<const Value> Args) {
    return Value::of(Args[0].get<QueueV>().isEmpty());
  });
  B.bindEquals(Ctx.lookupSort("Queue"),
               [](const Value &A, const Value &B2) {
                 return A.get<adt::Queue<std::string>>() ==
                        B2.get<adt::Queue<std::string>>();
               });
}

ModelTestReport runQueueModel(bool BuggyRemove, unsigned Jobs) {
  AlgebraContext Ctx;
  Spec Q = specs::loadQueue(Ctx).take();
  ModelBinding B(Ctx);
  bindQueueModel(B, Ctx, BuggyRemove);
  ModelTestOptions Options;
  Options.MaxDepth = 4;
  Options.Par.Jobs = Jobs;
  Options.Par.MinChunk = 8;
  Options.BindingFactory =
      [BuggyRemove](AlgebraContext &RCtx) -> std::unique_ptr<ModelBinding> {
    auto RB = std::make_unique<ModelBinding>(RCtx);
    bindQueueModel(*RB, RCtx, BuggyRemove);
    return RB;
  };
  return testModel(Ctx, Q, B, Options);
}

} // namespace

TEST(ParallelDeterminism, ModelTesterPassingAndFailing) {
  ModelTestReport SerialOk = runQueueModel(false, 1);
  ModelTestReport ShardedOk = runQueueModel(false, 4);
  EXPECT_TRUE(ShardedOk.AllPassed) << ShardedOk.render();
  EXPECT_EQ(SerialOk.render(), ShardedOk.render());

  ModelTestReport SerialBad = runQueueModel(true, 1);
  ModelTestReport ShardedBad = runQueueModel(true, 4);
  EXPECT_FALSE(ShardedBad.AllPassed);
  EXPECT_EQ(SerialBad.render(), ShardedBad.render());
}

namespace {

/// The paper's Symboltable-as-Stack-of-Arrays fixture.
struct RepFixture {
  RepFixture() {
    Abstract = specs::loadSymboltable(Ctx).take();
    Concrete = specs::loadStackArray(Ctx).take();
    Rep = buildSymboltableRep(Ctx).take();
    Sources.push_back(&Abstract);
    for (const Spec &S : Concrete)
      Sources.push_back(&S);
    for (const Spec &S : Rep.ImplSpecs)
      Sources.push_back(&S);
  }

  AlgebraContext Ctx;
  Spec Abstract;
  std::vector<Spec> Concrete;
  SymboltableRep Rep;
  std::vector<const Spec *> Sources;
};

} // namespace

TEST(ParallelDeterminism, RepVerifierAxiomsAndHomomorphism) {
  RepFixture F;
  VerifyOptions Options;
  Options.Depth = 3;
  // Disable the symbolic shortcut so the instance sweeps do real work.
  Options.TrySymbolic = false;

  VerifyReport Serial = verifyRepresentation(F.Ctx, F.Abstract, F.Sources,
                                             F.Rep.Mapping, Options);
  Options.Par = fourJobs();
  VerifyReport Sharded = verifyRepresentation(F.Ctx, F.Abstract, F.Sources,
                                              F.Rep.Mapping, Options);
  EXPECT_EQ(Serial.render(F.Ctx), Sharded.render(F.Ctx));
  EXPECT_GT(Sharded.Engine.Steps, 0u);

  Options.Par = ParallelOptions();
  VerifyReport SerialHom = verifyHomomorphism(F.Ctx, F.Abstract, F.Sources,
                                              F.Rep.Mapping, Options);
  Options.Par = fourJobs();
  VerifyReport ShardedHom = verifyHomomorphism(F.Ctx, F.Abstract, F.Sources,
                                               F.Rep.Mapping, Options);
  EXPECT_EQ(SerialHom.render(F.Ctx), ShardedHom.render(F.Ctx));
}

TEST(ParallelDeterminism, RepVerifierCounterexampleIdentical) {
  // A broken Φ (degenerate map through a fresh abstract constant is not
  // available, so break the mapping instead: map LEAVEBLOCK to ADD_R's
  // wrong arity is rejected at elaboration — use a wrong impl op with a
  // compatible signature: ENTERBLOCK_R for LEAVEBLOCK).
  RepFixture F;
  auto Broken = F.Rep.Mapping;
  OpId Leave, Enter;
  for (auto &[Abs, Impl] : F.Rep.Mapping.OpMap) {
    if (F.Ctx.opName(Abs) == "LEAVEBLOCK")
      Leave = Abs;
    if (F.Ctx.opName(Abs) == "ENTERBLOCK")
      Enter = Impl;
  }
  ASSERT_TRUE(Leave.isValid());
  ASSERT_TRUE(Enter.isValid());
  Broken.OpMap[Leave] = Enter;

  VerifyOptions Options;
  Options.Depth = 3;
  Options.TrySymbolic = false;
  VerifyReport Serial = verifyRepresentation(F.Ctx, F.Abstract, F.Sources,
                                             Broken, Options);
  Options.Par = fourJobs();
  VerifyReport Sharded = verifyRepresentation(F.Ctx, F.Abstract, F.Sources,
                                              Broken, Options);
  EXPECT_FALSE(Sharded.AllHold);
  EXPECT_EQ(Serial.render(F.Ctx), Sharded.render(F.Ctx));
  // The first counterexample (axiom, assignment, instance count) is the
  // serial one, not merely some failing instance.
  ASSERT_EQ(Serial.Verdicts.size(), Sharded.Verdicts.size());
  for (size_t I = 0; I != Serial.Verdicts.size(); ++I) {
    EXPECT_EQ(Serial.Verdicts[I].InstancesChecked,
              Sharded.Verdicts[I].InstancesChecked);
    EXPECT_EQ(Serial.Verdicts[I].Failure.has_value(),
              Sharded.Verdicts[I].Failure.has_value());
    if (Serial.Verdicts[I].Failure && Sharded.Verdicts[I].Failure)
      EXPECT_EQ(Serial.Verdicts[I].Failure->Assignment,
                Sharded.Verdicts[I].Failure->Assignment);
  }
}
