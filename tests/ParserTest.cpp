//===----------------------------------------------------------------------===//
//
// Part of AlgSpec. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Unit tests for the .alg lexer, parser, and elaborator.
///
//===----------------------------------------------------------------------===//

#include "ast/AlgebraContext.h"
#include "ast/TermPrinter.h"
#include "parser/Lexer.h"
#include "parser/Parser.h"
#include "support/SourceMgr.h"

#include <gtest/gtest.h>

using namespace algspec;

//===----------------------------------------------------------------------===//
// Lexer
//===----------------------------------------------------------------------===//

namespace {
/// Token texts view into the SourceMgr buffer, so the helper keeps the
/// buffer alive alongside the tokens.
struct LexedBuffer {
  explicit LexedBuffer(const std::string &Text) : SM("test", Text) {
    Lexer Lex(SM);
    while (true) {
      Token Tok = Lex.next();
      Tokens.push_back(Tok);
      if (Tok.is(TokenKind::Eof))
        break;
    }
  }
  const Token &operator[](size_t I) const { return Tokens[I]; }
  size_t size() const { return Tokens.size(); }

  SourceMgr SM;
  std::vector<Token> Tokens;
};
} // namespace

static LexedBuffer lexAll(const std::string &Text) {
  return LexedBuffer(Text);
}

TEST(LexerTest, Keywords) {
  auto Tokens = lexAll("spec uses sorts ops constructors vars axioms end "
                       "if then else error");
  ASSERT_EQ(Tokens.size(), 13u);
  EXPECT_EQ(Tokens[0].Kind, TokenKind::KwSpec);
  EXPECT_EQ(Tokens[7].Kind, TokenKind::KwEnd);
  EXPECT_EQ(Tokens[8].Kind, TokenKind::KwIf);
  EXPECT_EQ(Tokens[11].Kind, TokenKind::KwError);
}

TEST(LexerTest, IdentifiersWithQuestionMark) {
  auto Tokens = lexAll("IS_EMPTY? FRONT q2");
  EXPECT_EQ(Tokens[0].Kind, TokenKind::Identifier);
  EXPECT_EQ(Tokens[0].Text, "IS_EMPTY?");
  EXPECT_EQ(Tokens[1].Text, "FRONT");
  EXPECT_EQ(Tokens[2].Text, "q2");
}

TEST(LexerTest, PunctuationAndArrow) {
  auto Tokens = lexAll(": , -> ( ) =");
  EXPECT_EQ(Tokens[0].Kind, TokenKind::Colon);
  EXPECT_EQ(Tokens[1].Kind, TokenKind::Comma);
  EXPECT_EQ(Tokens[2].Kind, TokenKind::Arrow);
  EXPECT_EQ(Tokens[3].Kind, TokenKind::LParen);
  EXPECT_EQ(Tokens[4].Kind, TokenKind::RParen);
  EXPECT_EQ(Tokens[5].Kind, TokenKind::Equal);
}

TEST(LexerTest, AtomAndIntLiterals) {
  auto Tokens = lexAll("'x 'foo_1 42 -7");
  EXPECT_EQ(Tokens[0].Kind, TokenKind::AtomLit);
  EXPECT_EQ(Tokens[0].Text, "x");
  EXPECT_EQ(Tokens[1].Text, "foo_1");
  EXPECT_EQ(Tokens[2].Kind, TokenKind::IntLit);
  EXPECT_EQ(Tokens[2].IntValue, 42);
  EXPECT_EQ(Tokens[3].IntValue, -7);
}

TEST(LexerTest, CommentsSkipped) {
  auto Tokens = lexAll("NEW -- a queue\nADD");
  ASSERT_EQ(Tokens.size(), 3u);
  EXPECT_EQ(Tokens[0].Text, "NEW");
  EXPECT_EQ(Tokens[1].Text, "ADD");
}

TEST(LexerTest, LocationsAreAccurate) {
  auto Tokens = lexAll("ab\n  cd");
  EXPECT_EQ(Tokens[0].Loc.line(), 1u);
  EXPECT_EQ(Tokens[0].Loc.column(), 1u);
  EXPECT_EQ(Tokens[1].Loc.line(), 2u);
  EXPECT_EQ(Tokens[1].Loc.column(), 3u);
}

TEST(LexerTest, UnknownByte) {
  auto Tokens = lexAll("$");
  EXPECT_EQ(Tokens[0].Kind, TokenKind::Unknown);
}

TEST(LexerTest, PeekDoesNotConsume) {
  SourceMgr SM("test", "NEW ADD");
  Lexer Lex(SM);
  EXPECT_EQ(Lex.peek().Text, "NEW");
  EXPECT_EQ(Lex.peek().Text, "NEW");
  EXPECT_EQ(Lex.next().Text, "NEW");
  EXPECT_EQ(Lex.next().Text, "ADD");
}

//===----------------------------------------------------------------------===//
// Spec parsing: the paper's Queue spec (section 3)
//===----------------------------------------------------------------------===//

static const char *QueueSpecText = R"(
-- Paper section 3, axioms 1-6.
spec Queue
  uses Item
  sorts Queue
  ops
    NEW : -> Queue
    ADD : Queue, Item -> Queue
    FRONT : Queue -> Item
    REMOVE : Queue -> Queue
    IS_EMPTY? : Queue -> Bool
  constructors NEW, ADD
  vars
    q : Queue
    i : Item
  axioms
    IS_EMPTY?(NEW) = true
    IS_EMPTY?(ADD(q, i)) = false
    FRONT(NEW) = error
    FRONT(ADD(q, i)) = if IS_EMPTY?(q) then i else FRONT(q)
    REMOVE(NEW) = error
    REMOVE(ADD(q, i)) = if IS_EMPTY?(q) then NEW else ADD(REMOVE(q), i)
end
)";

namespace {
class QueueSpecParse : public ::testing::Test {
protected:
  void SetUp() override {
    auto Parsed = parseSpecText(Ctx, QueueSpecText, "queue.alg");
    ASSERT_TRUE(static_cast<bool>(Parsed)) << Parsed.error().message();
    Specs = Parsed.take();
    ASSERT_EQ(Specs.size(), 1u);
  }

  AlgebraContext Ctx;
  std::vector<Spec> Specs;
};
} // namespace

TEST_F(QueueSpecParse, SpecStructure) {
  const Spec &S = Specs[0];
  EXPECT_EQ(S.name(), "Queue");
  ASSERT_EQ(S.definedSorts().size(), 1u);
  EXPECT_EQ(Ctx.sortName(S.definedSorts()[0]), "Queue");
  ASSERT_EQ(S.usedSorts().size(), 1u);
  EXPECT_EQ(Ctx.sort(S.usedSorts()[0]).Kind, SortKind::Atom);
  EXPECT_EQ(S.operations().size(), 5u);
  EXPECT_EQ(S.variables().size(), 2u);
  EXPECT_EQ(S.axioms().size(), 6u);
}

TEST_F(QueueSpecParse, ConstructorsMarked) {
  EXPECT_TRUE(Ctx.op(Ctx.lookupOp("NEW")).isConstructor());
  EXPECT_TRUE(Ctx.op(Ctx.lookupOp("ADD")).isConstructor());
  EXPECT_TRUE(Ctx.op(Ctx.lookupOp("FRONT")).isDefined());
  EXPECT_TRUE(Ctx.op(Ctx.lookupOp("REMOVE")).isDefined());
}

TEST_F(QueueSpecParse, AxiomsRoundTripThroughPrinter) {
  const Spec &S = Specs[0];
  EXPECT_EQ(printAxiom(Ctx, S.axioms()[0]), "IS_EMPTY?(NEW) = true");
  EXPECT_EQ(printAxiom(Ctx, S.axioms()[2]), "FRONT(NEW) = error");
  EXPECT_EQ(printAxiom(Ctx, S.axioms()[3]),
            "FRONT(ADD(q, i)) = if IS_EMPTY?(q) then i else FRONT(q)");
  EXPECT_EQ(printAxiom(Ctx, S.axioms()[5]),
            "REMOVE(ADD(q, i)) = if IS_EMPTY?(q) then NEW else "
            "ADD(REMOVE(q), i)");
}

TEST_F(QueueSpecParse, ErrorTakesLhsSort) {
  const Axiom &FrontNew = Specs[0].axioms()[2];
  EXPECT_TRUE(Ctx.isError(FrontNew.Rhs));
  EXPECT_EQ(Ctx.sortName(Ctx.sortOf(FrontNew.Rhs)), "Item");
  const Axiom &RemoveNew = Specs[0].axioms()[4];
  EXPECT_EQ(Ctx.sortName(Ctx.sortOf(RemoveNew.Rhs)), "Queue");
}

//===----------------------------------------------------------------------===//
// Multiple specs per buffer, overloads, SAME
//===----------------------------------------------------------------------===//

TEST(ParserTest, TwoSpecsShareContext) {
  AlgebraContext Ctx;
  auto Parsed = parseSpecText(Ctx, R"(
spec Stack
  uses Elem
  sorts Stack
  ops
    NEWSTACK : -> Stack
    PUSH : Stack, Elem -> Stack
    POP : Stack -> Stack
  constructors NEWSTACK, PUSH
  vars s : Stack   e : Elem
  axioms
    POP(NEWSTACK) = error
    POP(PUSH(s, e)) = s
end

spec StackPair
  sorts Pair
  ops
    MK : Stack, Stack -> Pair
  constructors MK
end
)");
  ASSERT_TRUE(static_cast<bool>(Parsed)) << Parsed.error().message();
  EXPECT_EQ(Parsed->size(), 2u);
  EXPECT_TRUE(Ctx.lookupSort("Pair").isValid());
}

TEST(ParserTest, OverloadedOpsResolveByArity) {
  AlgebraContext Ctx;
  auto Parsed = parseSpecText(Ctx, R"(
spec A
  uses Item
  sorts A
  ops
    MK : -> A
    F : A -> A
    F : A, Item -> A
  constructors MK
  vars a : A   i : Item
  axioms
    F(MK) = MK
    F(MK, i) = MK
end
)");
  ASSERT_TRUE(static_cast<bool>(Parsed)) << Parsed.error().message();
  EXPECT_EQ((*Parsed)[0].axioms().size(), 2u);
}

TEST(ParserTest, SameResolvesFromArguments) {
  AlgebraContext Ctx;
  auto Parsed = parseSpecText(Ctx, R"(
spec S
  uses Identifier
  sorts S
  ops
    NIL : -> S
    CONS : S, Identifier -> S
    HAS : S, Identifier -> Bool
  constructors NIL, CONS
  vars s : S   x, y : Identifier
  axioms
    HAS(NIL, x) = false
    HAS(CONS(s, x), y) = if SAME(x, y) then true else HAS(s, y)
end
)");
  ASSERT_TRUE(static_cast<bool>(Parsed)) << Parsed.error().message();
  const Axiom &Ax = (*Parsed)[0].axioms()[1];
  EXPECT_EQ(printAxiom(Ctx, Ax),
            "HAS(CONS(s, x), y) = if SAME(x, y) then true else HAS(s, y)");
}

//===----------------------------------------------------------------------===//
// Diagnostics
//===----------------------------------------------------------------------===//

static std::string expectParseFailure(const std::string &Text) {
  AlgebraContext Ctx;
  auto Parsed = parseSpecText(Ctx, Text);
  EXPECT_FALSE(static_cast<bool>(Parsed)) << "expected a parse failure";
  return Parsed ? std::string() : Parsed.error().message();
}

TEST(ParserDiagTest, UnknownSortInOps) {
  std::string Msg = expectParseFailure(R"(
spec Q
  sorts Q
  ops F : Quue -> Q
  constructors F
end
)");
  EXPECT_NE(Msg.find("unknown sort 'Quue'"), std::string::npos);
}

TEST(ParserDiagTest, UnknownOperationInAxiom) {
  std::string Msg = expectParseFailure(R"(
spec Q
  sorts Q
  ops MK : -> Q
  constructors MK
  axioms
    FOO(MK) = MK
end
)");
  EXPECT_NE(Msg.find("unknown operation 'FOO'"), std::string::npos);
}

TEST(ParserDiagTest, SortMismatchInAxiom) {
  std::string Msg = expectParseFailure(R"(
spec Q
  uses Item
  sorts Q
  ops
    MK : -> Q
    F : Q -> Q
  constructors MK
  vars i : Item
  axioms
    F(i) = MK
end
)");
  EXPECT_NE(Msg.find("variable 'i' has sort 'Item'"), std::string::npos);
}

TEST(ParserDiagTest, DuplicateOpSameDomain) {
  std::string Msg = expectParseFailure(R"(
spec Q
  sorts Q
  ops
    MK : -> Q
    MK : -> Q
  constructors MK
end
)");
  EXPECT_NE(Msg.find("already exists"), std::string::npos);
}

TEST(ParserDiagTest, DuplicateSort) {
  std::string Msg = expectParseFailure(R"(
spec A
  sorts X, X
  ops MK : -> X
  constructors MK
end
)");
  EXPECT_NE(Msg.find("sort 'X' already exists"), std::string::npos);
}

TEST(ParserDiagTest, ConstructorNotAnOp) {
  std::string Msg = expectParseFailure(R"(
spec Q
  sorts Q
  ops MK : -> Q
  constructors MK, NOPE
end
)");
  EXPECT_NE(Msg.find("'NOPE' is not an operation of this spec"),
            std::string::npos);
}

TEST(ParserDiagTest, MissingEnd) {
  std::string Msg = expectParseFailure(R"(
spec Q
  sorts Q
  ops MK : -> Q
  constructors MK
)");
  EXPECT_NE(Msg.find("missing 'end'"), std::string::npos);
}

TEST(ParserDiagTest, SyntaxErrorHasLocation) {
  std::string Msg = expectParseFailure("spec Q\n  sorts Q\n  ops MK : : Q\n"
                                       "end\n");
  // Line 3: the second colon.
  EXPECT_NE(Msg.find("3:"), std::string::npos);
}

TEST(ParserDiagTest, NoConstructorsWarnsButParses) {
  AlgebraContext Ctx;
  SourceMgr SM("w.alg", R"(
spec Q
  sorts Q
  ops MK : -> Q
end
)");
  DiagnosticEngine Diags;
  std::vector<Spec> Specs = parseSpecs(Ctx, SM, Diags);
  EXPECT_EQ(Specs.size(), 1u);
  EXPECT_FALSE(Diags.hasErrors());
  ASSERT_EQ(Diags.diagnostics().size(), 1u);
  EXPECT_EQ(Diags.diagnostics()[0].Kind, DiagKind::Warning);
}

TEST(ParserDiagTest, RecoverToNextSpec) {
  AlgebraContext Ctx;
  SourceMgr SM("r.alg", R"(
spec Broken
  sorts B
  ops junk junk junk
end

spec Fine
  sorts F
  ops MK : -> F
  constructors MK
end
)");
  DiagnosticEngine Diags;
  std::vector<Spec> Specs = parseSpecs(Ctx, SM, Diags);
  EXPECT_TRUE(Diags.hasErrors());
  ASSERT_EQ(Specs.size(), 1u);
  EXPECT_EQ(Specs[0].name(), "Fine");
}

//===----------------------------------------------------------------------===//
// Standalone term parsing
//===----------------------------------------------------------------------===//

namespace {
class TermParse : public QueueSpecParse {};
} // namespace

TEST_F(TermParse, GroundTerm) {
  auto Term = parseTermText(Ctx, "ADD(ADD(NEW, 'a), 'b)");
  ASSERT_TRUE(static_cast<bool>(Term)) << Term.error().message();
  EXPECT_EQ(printTerm(Ctx, *Term), "ADD(ADD(NEW, 'a), 'b)");
  EXPECT_TRUE(Ctx.isGround(*Term));
}

TEST_F(TermParse, AtomGetsSortFromPosition) {
  auto Term = parseTermText(Ctx, "ADD(NEW, 'x)");
  ASSERT_TRUE(static_cast<bool>(Term));
  TermId Atom = Ctx.children(*Term)[1];
  EXPECT_EQ(Ctx.sortName(Ctx.sortOf(Atom)), "Item");
}

TEST_F(TermParse, ExpectedSortChecked) {
  SortId Queue = Ctx.lookupSort("Queue");
  auto Good = parseTermText(Ctx, "NEW", nullptr, Queue);
  EXPECT_TRUE(static_cast<bool>(Good));
  auto Bad = parseTermText(Ctx, "FRONT(NEW)", nullptr, Queue);
  EXPECT_FALSE(static_cast<bool>(Bad));
}

TEST_F(TermParse, VariablesFromScope) {
  VarScope Scope;
  Scope.emplace("q", Ctx.addVar("q", Ctx.lookupSort("Queue")));
  auto Term = parseTermText(Ctx, "REMOVE(q)", &Scope);
  ASSERT_TRUE(static_cast<bool>(Term));
  EXPECT_FALSE(Ctx.isGround(*Term));
}

TEST_F(TermParse, BareAtomRejectedWithoutExpectation) {
  auto Term = parseTermText(Ctx, "'x");
  EXPECT_FALSE(static_cast<bool>(Term));
}

TEST_F(TermParse, TrailingInputRejected) {
  auto Term = parseTermText(Ctx, "NEW NEW");
  EXPECT_FALSE(static_cast<bool>(Term));
}

TEST_F(TermParse, ParenthesizedTerm) {
  auto Term = parseTermText(Ctx, "(REMOVE((ADD(NEW, 'a))))");
  ASSERT_TRUE(static_cast<bool>(Term)) << Term.error().message();
  EXPECT_EQ(printTerm(Ctx, *Term), "REMOVE(ADD(NEW, 'a))");
}

TEST_F(TermParse, IntLiteralsAndBuiltins) {
  auto Term = parseTermText(Ctx, "addi(2, subi(5, 3))");
  ASSERT_TRUE(static_cast<bool>(Term)) << Term.error().message();
  EXPECT_EQ(Ctx.sortOf(*Term), Ctx.intSort());
}

//===----------------------------------------------------------------------===//
// Overload-resolution diagnostics
//===----------------------------------------------------------------------===//

TEST(ParserDiagTest, AmbiguousOverloadDiagnosed) {
  AlgebraContext Ctx;
  auto Parsed = parseSpecText(Ctx, R"(
spec A
  uses Item
  sorts S1, S2
  ops
    MK1 : Item -> S1
    MK2 : Item -> S2
    F   : S1 -> Bool
    F   : S2 -> Bool
  constructors MK1, MK2
  vars i : Item
end
)");
  ASSERT_TRUE(static_cast<bool>(Parsed)) << Parsed.error().message();
  // F(MK1(i)) is fine; F applied to something both overloads could
  // accept after speculative elaboration cannot occur here, but a bare
  // ambiguous nullary reference can:
  auto Bad = parseTermText(Ctx, "F(MK1('a))");
  EXPECT_TRUE(static_cast<bool>(Bad)) << Bad.error().message();
}

TEST(ParserDiagTest, AmbiguousNullaryName) {
  AlgebraContext Ctx;
  auto Parsed = parseSpecText(Ctx, R"(
spec A
  sorts S1, S2
  ops
    MK : -> S1
    MK : -> S2
    F  : S1 -> Bool
  constructors MK
  axioms
    F(MK) = true
end
)");
  // Inside the axiom, F's argument sort disambiguates MK; the spec
  // parses. A bare `MK` with no expectation is ambiguous.
  ASSERT_TRUE(static_cast<bool>(Parsed)) << Parsed.error().message();
  auto Bad = parseTermText(Ctx, "MK");
  ASSERT_FALSE(static_cast<bool>(Bad));
  EXPECT_NE(Bad.error().message().find("ambiguous"), std::string::npos);
}

TEST(ParserDiagTest, NoOverloadMatchesArgumentSorts) {
  AlgebraContext Ctx;
  auto Parsed = parseSpecText(Ctx, R"(
spec A
  uses Item
  sorts S
  ops
    MK : -> S
    F  : S, S -> Bool
  constructors MK
end
)");
  ASSERT_TRUE(static_cast<bool>(Parsed));
  auto Bad = parseTermText(Ctx, "F(MK, 7)");
  ASSERT_FALSE(static_cast<bool>(Bad));
}

TEST(LexerTest, HugeIntegerLiteralIsRejectedNotCrash) {
  auto Tokens = lexAll("999999999999999999999999999999");
  EXPECT_EQ(Tokens[0].Kind, TokenKind::Unknown);
  // In-range 64-bit values still lex.
  auto Ok = lexAll("9223372036854775807");
  EXPECT_EQ(Ok[0].Kind, TokenKind::IntLit);
  EXPECT_EQ(Ok[0].IntValue, INT64_MAX);
}
