//===----------------------------------------------------------------------===//
//
// Part of AlgSpec. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Axiom-derived test generation (the testgen subsystem): campaigns
/// against the real ADT implementations, seeded-mutant catching, shrinker
/// minimality, seeded-generator determinism, and obstruction reporting.
///
//===----------------------------------------------------------------------===//

#include "adt/Bindings.h"
#include "ast/AlgebraContext.h"
#include "model/ModelBinding.h"
#include "specs/BuiltinSpecs.h"
#include "support/Json.h"
#include "testgen/Shrink.h"
#include "testgen/TestGen.h"

#include <gtest/gtest.h>

#include <string>

using namespace algspec;

namespace {

/// Installs the registry binding for \p S; fails the test on a missing
/// row or an install error.
void install(ModelBinding &B, const Spec &S, std::string_view Mutant = "") {
  const adt::AdtBinding *Row = adt::findAdtBinding(S.name());
  ASSERT_NE(Row, nullptr) << "no registry row for spec " << S.name();
  Result<void> R = Row->Install(B, S, Mutant);
  ASSERT_TRUE(static_cast<bool>(R)) << R.error().message();
}

/// A BindingFactory installing the registry row for \p SpecName in a
/// worker's replica context.
std::unique_ptr<ModelBinding>
makeReplicaBinding(std::string_view SpecName, std::string_view Mutant,
                   AlgebraContext &RCtx, std::span<const Spec> RSpecs) {
  for (const Spec &S : RSpecs) {
    if (S.name() != SpecName)
      continue;
    const adt::AdtBinding *Row = adt::findAdtBinding(S.name());
    if (!Row)
      return nullptr;
    auto B = std::make_unique<ModelBinding>(RCtx);
    if (!Row->Install(*B, S, Mutant))
      return nullptr;
    return B;
  }
  return nullptr;
}

std::string reportJson(const TestGenReport &Report,
                       const TestGenOptions &Options) {
  JsonWriter W;
  Report.writeJson(W, Options);
  return W.str();
}

} // namespace

//===----------------------------------------------------------------------===//
// Campaigns against the correct implementations
//===----------------------------------------------------------------------===//

TEST(TestgenCampaignTest, CorrectQueuePassesEveryAxiom) {
  AlgebraContext Ctx;
  auto Q = specs::loadQueue(Ctx);
  ASSERT_TRUE(static_cast<bool>(Q));
  ModelBinding B(Ctx);
  install(B, *Q);

  const Spec *All[] = {&*Q};
  TestGenReport Report = runTestGen(Ctx, *Q, All, B);
  EXPECT_TRUE(Report.AllPassed) << Report.render(TestGenOptions());
  EXPECT_EQ(Report.Axioms.size(), 6u);
  EXPECT_EQ(Report.TotalFailures, 0u);
  EXPECT_GT(Report.TotalRun, 0u);
  EXPECT_EQ(Report.TotalRun, Report.TotalPlanned);
  for (const AxiomCampaign &A : Report.Axioms) {
    EXPECT_FALSE(A.Skipped);
    EXPECT_GT(A.SpaceAtDepth, 0u);
  }
}

TEST(TestgenCampaignTest, SymboltableAndStackPassToo) {
  AlgebraContext Ctx;
  auto Sym = specs::loadSymboltable(Ctx);
  ASSERT_TRUE(static_cast<bool>(Sym));
  ModelBinding B(Ctx);
  install(B, *Sym);
  const Spec *All[] = {&*Sym};
  TestGenReport Report = runTestGen(Ctx, *Sym, All, B);
  EXPECT_TRUE(Report.AllPassed) << Report.render(TestGenOptions());
  EXPECT_EQ(Report.Axioms.size(), 9u);

  AlgebraContext Ctx2;
  auto Parsed = specs::loadStackArray(Ctx2);
  ASSERT_TRUE(static_cast<bool>(Parsed));
  std::vector<const Spec *> All2;
  for (const Spec &S : *Parsed)
    All2.push_back(&S);
  for (const Spec &S : *Parsed) {
    ModelBinding B2(Ctx2);
    install(B2, S);
    TestGenReport R2 = runTestGen(Ctx2, S, All2, B2);
    EXPECT_TRUE(R2.AllPassed) << R2.render(TestGenOptions());
  }
}

//===----------------------------------------------------------------------===//
// Seeded mutants must be caught, with a minimal shrunk counterexample
//===----------------------------------------------------------------------===//

TEST(TestgenMutantTest, LifoRemoveCaughtAndShrunkToMinimal) {
  AlgebraContext Ctx;
  auto Q = specs::loadQueue(Ctx);
  ASSERT_TRUE(static_cast<bool>(Q));
  ModelBinding B(Ctx);
  install(B, *Q, "remove-lifo");

  const Spec *All[] = {&*Q};
  TestGenOptions Options;
  Options.MaxDepth = 4;
  TestGenReport Report = runTestGen(Ctx, *Q, All, B, Options);
  EXPECT_FALSE(Report.AllPassed);
  EXPECT_GE(Report.TotalFailures, 1u);

  const AxiomCampaign *Failed = nullptr;
  for (const AxiomCampaign &A : Report.Axioms)
    if (!A.Passed)
      Failed = &A;
  ASSERT_NE(Failed, nullptr);
  // Axiom 6 (REMOVE of a non-empty queue) pins FIFO.
  EXPECT_EQ(Failed->AxiomNumber, 6u);
  ASSERT_TRUE(Failed->Failure.has_value());
  EXPECT_FALSE(Failed->Failure->Assignment.empty());
  EXPECT_FALSE(Failed->Failure->Lhs.empty());
  EXPECT_FALSE(Failed->Failure->ImplAnswer.empty());
  // The campaign stops at the failing instance.
  EXPECT_LE(Failed->Run, Failed->Planned);
  // The render mentions the counterexample.
  EXPECT_NE(Report.render(Options).find("counterexample"),
            std::string::npos);
}

TEST(TestgenShrinkTest, ShrunkAssignmentIsLocallyMinimal) {
  AlgebraContext Ctx;
  auto Q = specs::loadQueue(Ctx);
  ASSERT_TRUE(static_cast<bool>(Q));
  ModelBinding B(Ctx);
  install(B, *Q, "remove-lifo");

  // Axiom 6 of the Queue spec: REMOVE(ADD(q, i)) = ...
  const Axiom *Ax6 = nullptr;
  for (const Axiom &Ax : Q->axioms())
    if (Ax.Number == 6)
      Ax6 = &Ax;
  ASSERT_NE(Ax6, nullptr);

  TermEnumerator Enum(Ctx);
  SortId QueueSort = Ctx.lookupSort("Queue");
  SortId ItemSort = Ctx.lookupSort("Item");
  ASSERT_TRUE(QueueSort.isValid());
  ASSERT_TRUE(ItemSort.isValid());
  const unsigned Depth = 4;

  // Start from the deepest failing assignment and shrink it by hand
  // with the same predicate the campaign uses.
  const Spec *All[] = {&*Q};
  Oracle Judge = Oracle::build(Ctx, All, Ctx.sortOf(Ax6->Lhs), B, Enum,
                               /*ForceObservers=*/false, OracleOptions());

  // Minimality of the shrunk assignment: every single-variable
  // replacement from the candidate neighborhood must make the instance
  // pass. We verify through the generic shrinker API on a known failing
  // assignment: q := deepest queue, i := first item.
  const std::vector<TermId> &Queues = Enum.enumerate(QueueSort, Depth);
  const std::vector<TermId> &Items = Enum.enumerate(ItemSort, Depth);
  ASSERT_FALSE(Queues.empty());
  ASSERT_FALSE(Items.empty());

  VarId QVar = Ctx.addVar("q_shrink", QueueSort);
  VarId IVar = Ctx.addVar("i_shrink", ItemSort);
  VarId ShrinkVars[] = {QVar, IVar};
  // REMOVE(ADD(q, i)) vs ADD(REMOVE(q), i) — a hand-built failing pair
  // under the LIFO mutant whenever q is non-empty.
  OpId Remove = Ctx.lookupOp("REMOVE");
  OpId Add = Ctx.lookupOp("ADD");
  ASSERT_TRUE(Remove.isValid());
  ASSERT_TRUE(Add.isValid());

  auto StillFails = [&](std::span<const TermId> Assignment) {
    TermId L = Ctx.makeOp(Remove, {Ctx.makeOp(Add, {Assignment[0],
                                                    Assignment[1]})});
    TermId R = Ctx.makeOp(Add, {Ctx.makeOp(Remove, {Assignment[0]}),
                                Assignment[1]});
    Result<OracleVerdict> V = Judge.compare(B, L, R);
    return V && !V->Equal;
  };

  // The deepest queue fails; shrink it.
  std::vector<TermId> Start = {Queues.back(), Items.front()};
  ASSERT_TRUE(StillFails(Start));
  ShrinkOutcome Out = shrinkAssignment(Ctx, Enum, Depth, ShrinkVars,
                                       Start, StillFails);
  EXPECT_GT(Out.Steps, 0u);
  EXPECT_TRUE(StillFails(Out.Assignment));
  // Strictly smaller than where we started.
  EXPECT_LT(Ctx.treeSize(Out.Assignment[0]) +
                Ctx.treeSize(Out.Assignment[1]),
            Ctx.treeSize(Start[0]) + Ctx.treeSize(Start[1]));
  // Local minimality: no single replacement still fails.
  for (size_t V = 0; V != 2; ++V) {
    for (TermId Candidate :
         shrinkCandidates(Ctx, Enum, Depth, Out.Assignment[V])) {
      std::vector<TermId> Trial = Out.Assignment;
      Trial[V] = Candidate;
      EXPECT_FALSE(StillFails(Trial))
          << "replacement still fails; shrunk assignment was not minimal";
    }
  }
}

//===----------------------------------------------------------------------===//
// Determinism: seeded generation, and --jobs sharding
//===----------------------------------------------------------------------===//

TEST(TestgenDeterminismTest, SeededRandomCampaignsAreByteIdentical) {
  AlgebraContext Ctx;
  auto Q = specs::loadQueue(Ctx);
  ASSERT_TRUE(static_cast<bool>(Q));
  ModelBinding B(Ctx);
  install(B, *Q);

  const Spec *All[] = {&*Q};
  TestGenOptions Options;
  Options.RandomCount = 25;
  Options.Seed = 42;
  TestGenReport First = runTestGen(Ctx, *Q, All, B, Options);
  TestGenReport Second = runTestGen(Ctx, *Q, All, B, Options);
  EXPECT_EQ(First.render(Options), Second.render(Options));
  EXPECT_EQ(reportJson(First, Options), reportJson(Second, Options));
  EXPECT_EQ(First.TotalRun, Second.TotalRun);
}

TEST(TestgenDeterminismTest, JobsOneAndFourProduceIdenticalReports) {
  AlgebraContext Ctx;
  auto Q = specs::loadQueue(Ctx);
  ASSERT_TRUE(static_cast<bool>(Q));

  auto runAt = [&Ctx, &Q](unsigned Jobs, std::string_view Mutant) {
    ModelBinding B(Ctx);
    const adt::AdtBinding *Row = adt::findAdtBinding("Queue");
    EXPECT_NE(Row, nullptr);
    EXPECT_TRUE(static_cast<bool>(Row->Install(B, *Q, Mutant)));
    const Spec *All[] = {&*Q};
    TestGenOptions Options;
    Options.MaxDepth = 4;
    Options.Par.Jobs = Jobs;
    Options.Par.MinChunk = 1; // Shard even the small campaign.
    Options.BindingFactory = [Mutant](AlgebraContext &RCtx,
                                      std::span<const Spec> RSpecs) {
      return makeReplicaBinding("Queue", Mutant, RCtx, RSpecs);
    };
    TestGenReport Report = runTestGen(Ctx, *Q, All, B, Options);
    JsonWriter W;
    Report.writeJson(W, Options);
    return Report.render(Options) + "\n" + W.str();
  };

  EXPECT_EQ(runAt(1, ""), runAt(4, ""));
  // The failing campaign must also be byte-identical: same first
  // failure, same shrunk counterexample, same stop point.
  EXPECT_EQ(runAt(1, "remove-lifo"), runAt(4, "remove-lifo"));
}

//===----------------------------------------------------------------------===//
// Hypotheses accounting
//===----------------------------------------------------------------------===//

TEST(TestgenUniformityTest, CellsShrinkThePlanAndStillCatchTheMutant) {
  AlgebraContext Ctx;
  auto Q = specs::loadQueue(Ctx);
  ASSERT_TRUE(static_cast<bool>(Q));
  ModelBinding B(Ctx);
  install(B, *Q, "remove-lifo");

  const Spec *All[] = {&*Q};
  TestGenOptions Options;
  Options.MaxDepth = 4;
  Options.Uniformity = true;
  TestGenReport Report = runTestGen(Ctx, *Q, All, B, Options);
  EXPECT_FALSE(Report.AllPassed) << "uniformity must keep one "
                                    "representative per constructor case, "
                                    "which still exposes the LIFO bug";
  EXPECT_GT(Report.TotalUniformityCells, 0u);
  for (const AxiomCampaign &A : Report.Axioms) {
    if (A.Skipped)
      continue;
    EXPECT_GT(A.UniformityCells, 0u);
    EXPECT_LE(A.Planned, A.UniformityCells);
    EXPECT_LE(A.UniformityCells, A.SpaceAtDepth);
  }
}

TEST(TestgenOracleTest, ObserverContextsDecideWithoutBoundEquality) {
  AlgebraContext Ctx;
  auto Q = specs::loadQueue(Ctx);
  ASSERT_TRUE(static_cast<bool>(Q));
  ModelBinding B(Ctx);
  install(B, *Q, "remove-lifo");

  const Spec *All[] = {&*Q};
  TestGenOptions Options;
  Options.MaxDepth = 4;
  Options.ForceObservers = true;
  TestGenReport Report = runTestGen(Ctx, *Q, All, B, Options);
  // Queue-sorted axioms now judge through FRONT/IS_EMPTY?/... contexts
  // — and the LIFO bug is still observable.
  EXPECT_FALSE(Report.AllPassed);
  bool SawObservers = false;
  for (const AxiomCampaign &A : Report.Axioms)
    SawObservers |= A.UsedObservers && A.ObserverContexts > 0;
  EXPECT_TRUE(SawObservers);
  const AxiomCampaign *Failed = nullptr;
  for (const AxiomCampaign &A : Report.Axioms)
    if (!A.Passed)
      Failed = &A;
  ASSERT_NE(Failed, nullptr);
  ASSERT_TRUE(Failed->Failure.has_value());
  // The distinguishing observation names the observer context.
  EXPECT_NE(Failed->Failure->ImplAnswer.find("observer"),
            std::string::npos);
}

//===----------------------------------------------------------------------===//
// Obstructions
//===----------------------------------------------------------------------===//

TEST(TestgenObstructionTest, UnboundOperationsAreNamedNotFatal) {
  AlgebraContext Ctx;
  auto Q = specs::loadQueue(Ctx);
  ASSERT_TRUE(static_cast<bool>(Q));
  ModelBinding B(Ctx); // Nothing bound.

  const Spec *All[] = {&*Q};
  TestGenReport Report = runTestGen(Ctx, *Q, All, B);
  EXPECT_FALSE(Report.AllPassed);
  ASSERT_FALSE(Report.Obstructions.empty());
  for (const TestGenObstruction &O : Report.Obstructions)
    EXPECT_EQ(O.Name, "unbound-operation");
  // Every campaign operation appears; NEW is one of them.
  bool SawNew = false;
  for (const TestGenObstruction &O : Report.Obstructions)
    SawNew |= O.Detail.find("'NEW'") != std::string::npos;
  EXPECT_TRUE(SawNew);
  // No instances ran at all.
  EXPECT_EQ(Report.TotalRun, 0u);
}

TEST(TestgenObstructionTest, BindOpByNameReportsUnknownNames) {
  AlgebraContext Ctx;
  auto Q = specs::loadQueue(Ctx);
  ASSERT_TRUE(static_cast<bool>(Q));
  ModelBinding B(Ctx);
  Result<void> R = B.bindOp("NO_SUCH_OPERATION",
                            [](std::span<const Value>) {
                              return Value::error();
                            });
  ASSERT_FALSE(static_cast<bool>(R));
  EXPECT_NE(R.error().message().find("unbound operation"),
            std::string::npos);
}
