//===----------------------------------------------------------------------===//
//
// Part of AlgSpec. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the SpecLint pass framework and the RPO termination prover:
/// each standard rule has a triggering and a clean case, every shipped
/// spec self-hosts (lints clean), and the prover discharges the paper's
/// specs while pinning the two honest RPO-incompleteness witnesses.
///
//===----------------------------------------------------------------------===//

#include "core/AlgSpec.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <sstream>

using namespace algspec;

namespace {

testing::AssertionResult load(Workspace &WS, std::string_view Text,
                              std::string Name = "<test>") {
  Result<void> R = WS.load(Text, std::move(Name));
  if (!R)
    return testing::AssertionFailure() << R.error().message();
  return testing::AssertionSuccess();
}

std::string readFileOrEmpty(const std::string &Path) {
  std::ifstream In(Path);
  if (!In)
    return std::string();
  std::ostringstream Buf;
  Buf << In.rdbuf();
  return Buf.str();
}

unsigned countRule(const LintReport &R, std::string_view Rule) {
  return static_cast<unsigned>(
      std::count_if(R.Findings.begin(), R.Findings.end(),
                    [&](const LintFinding &F) { return F.Rule == Rule; }));
}

const LintFinding *findRule(const LintReport &R, std::string_view Rule) {
  for (const LintFinding &F : R.Findings)
    if (F.Rule == Rule)
      return &F;
  return nullptr;
}

} // namespace

//===----------------------------------------------------------------------===//
// Individual rules: one triggering spec each; the Queue spec doubles as
// the clean case for all of them (see SelfHost below).
//===----------------------------------------------------------------------===//

TEST(LintRuleTest, UnusedVariable) {
  Workspace WS;
  ASSERT_TRUE(load(WS, R"(
spec Spare
  sorts P
  ops
    MKP : -> P
    IDP : P -> P
  constructors MKP
  vars
    p, q : P
  axioms
    IDP(p) = p
end
)"));
  LintReport Report = WS.lint();
  ASSERT_EQ(countRule(Report, "unused-variable"), 1u);
  const LintFinding &F = *findRule(Report, "unused-variable");
  EXPECT_EQ(F.Kind, DiagKind::Warning);
  EXPECT_NE(F.Message.find("'q'"), std::string::npos);
  // The finding points at the declaration of q, not at an axiom.
  EXPECT_EQ(F.Loc.line(), 9u);
  EXPECT_NE(F.FixIt.find("please"), std::string::npos);
  EXPECT_FALSE(Report.failed(LintOptions{}));
  EXPECT_TRUE(Report.failed(LintOptions{/*WarningsAsErrors=*/true}));
}

TEST(LintRuleTest, UnboundRhsVariableIsError) {
  Workspace WS;
  ASSERT_TRUE(load(WS, R"(
spec Invent
  uses Item
  sorts V
  ops
    MKV  : -> V
    PICK : V -> Item
  constructors MKV
  vars
    x : Item
  axioms
    PICK(MKV) = x
end
)"));
  LintReport Report = WS.lint();
  ASSERT_EQ(countRule(Report, "unbound-rhs-variable"), 1u);
  const LintFinding &F = *findRule(Report, "unbound-rhs-variable");
  EXPECT_EQ(F.Kind, DiagKind::Error);
  EXPECT_NE(F.Message.find("'x'"), std::string::npos);
  // Errors gate the run even without -Werror.
  EXPECT_TRUE(Report.failed(LintOptions{}));
}

TEST(LintRuleTest, NonLeftLinear) {
  Workspace WS;
  ASSERT_TRUE(load(WS, R"(
spec Twin
  uses Item
  sorts T
  ops
    MKT  : -> T
    PAIR : Item, Item -> T
    EQ?  : T -> Bool
  constructors MKT, PAIR
  vars
    i : Item
  axioms
    EQ?(PAIR(i, i)) = true
    EQ?(MKT) = false
end
)"));
  LintReport Report = WS.lint();
  ASSERT_EQ(countRule(Report, "non-left-linear"), 1u);
  const LintFinding &F = *findRule(Report, "non-left-linear");
  EXPECT_EQ(F.Kind, DiagKind::Warning);
  EXPECT_NE(F.Message.find("'i'"), std::string::npos);
  EXPECT_NE(F.FixIt.find("SAME"), std::string::npos);

  // The certification-blocking variant fires on the same axiom: it
  // orients into a rule, so the repeated variable is a convergence
  // obstruction, not just a coverage approximation.
  ASSERT_EQ(countRule(Report, "non-left-linear-lhs"), 1u);
  const LintFinding &G = *findRule(Report, "non-left-linear-lhs");
  EXPECT_EQ(G.Kind, DiagKind::Warning);
  EXPECT_NE(G.Message.find("'i'"), std::string::npos);
  EXPECT_NE(G.Message.find("left-linear"), std::string::npos);
}

TEST(LintRuleTest, NonLeftLinearLhsCleanOnLinearSpec) {
  Workspace WS;
  ASSERT_TRUE(load(WS, specs::QueueAlg, "queue.alg"));
  EXPECT_EQ(countRule(WS.lint(), "non-left-linear-lhs"), 0u);
}

TEST(LintRuleTest, UnjoinableCriticalPair) {
  Workspace WS;
  ASSERT_TRUE(load(WS, R"(
spec Choice
  sorts Pick
  ops
    RED  : -> Pick
    BLUE : -> Pick
    PICK : -> Pick
  constructors RED, BLUE
  axioms
    PICK = RED
    PICK = BLUE
end
)"));
  LintReport Report = WS.lint();
  // One root overlap, reported at both axioms.
  ASSERT_EQ(countRule(Report, "unjoinable-critical-pair"), 2u);
  const LintFinding &F = *findRule(Report, "unjoinable-critical-pair");
  EXPECT_EQ(F.Kind, DiagKind::Warning);
  EXPECT_NE(F.Message.find("PICK"), std::string::npos);
  EXPECT_NE(F.Message.find("RED"), std::string::npos);
  EXPECT_NE(F.Message.find("BLUE"), std::string::npos);
}

TEST(LintRuleTest, UnjoinableCriticalPairCleanOnOverlapThatJoins) {
  Workspace WS;
  ASSERT_TRUE(load(WS, R"(
spec Overlap
  sorts O
  ops
    A : -> O
    F : O -> O
    G : O -> O
  constructors A
  vars
    x : O
  axioms
    F(A) = A
    F(x) = G(x)
    G(A) = A
end
)"));
  EXPECT_EQ(countRule(WS.lint(), "unjoinable-critical-pair"), 0u);
}

TEST(LintRuleTest, SubsumedAxiom) {
  Workspace WS;
  ASSERT_TRUE(load(WS, R"(
spec Shadow
  uses Item
  sorts S
  ops
    MKS  : -> S
    PUTS : S, Item -> S
    GETS : S -> Item
  constructors MKS, PUTS
  vars
    s : S
    i : Item
  axioms
    GETS(s) = error
    GETS(PUTS(s, i)) = i
end
)"));
  LintReport Report = WS.lint();
  ASSERT_EQ(countRule(Report, "subsumed-axiom"), 1u);
  const LintFinding &F = *findRule(Report, "subsumed-axiom");
  // The *later* axiom is the dead one.
  EXPECT_NE(F.Message.find("axiom (2) is subsumed by axiom (1)"),
            std::string::npos);
}

TEST(LintRuleTest, SubsumedAxiomNotFiredAcrossConstructors) {
  // FRONT(NEW) and FRONT(ADD(...)) overlap in head only; neither matches
  // the other's instances, so no subsumption.
  Workspace WS;
  ASSERT_TRUE(load(WS, specs::QueueAlg, "queue.alg"));
  EXPECT_EQ(countRule(WS.lint(), "subsumed-axiom"), 0u);
}

TEST(LintRuleTest, NonConstructorLhsBelowRoot) {
  Workspace WS;
  ASSERT_TRUE(load(WS, R"(
spec DeepDef
  sorts D
  ops
    MKD  : -> D
    STEP : D -> D
    NORM : D -> D
  constructors MKD
  vars
    d : D
  axioms
    STEP(MKD) = MKD
    NORM(STEP(d)) = NORM(d)
end
)"));
  LintReport Report = WS.lint();
  ASSERT_EQ(countRule(Report, "non-constructor-lhs"), 1u);
  const LintFinding &F = *findRule(Report, "non-constructor-lhs");
  EXPECT_EQ(F.Kind, DiagKind::Warning);
  EXPECT_NE(F.Message.find("'STEP'"), std::string::npos);
  EXPECT_NE(F.Message.find("below the root"), std::string::npos);
}

TEST(LintRuleTest, ConstructorAtRoot) {
  Workspace WS;
  ASSERT_TRUE(load(WS, R"(
spec CtorRoot
  sorts C
  ops
    MKC  : -> C
    ADDC : C -> C
  constructors MKC, ADDC
  axioms
    ADDC(MKC) = MKC
end
)"));
  LintReport Report = WS.lint();
  ASSERT_EQ(countRule(Report, "non-constructor-lhs"), 1u);
  EXPECT_NE(findRule(Report, "non-constructor-lhs")
                ->Message.find("constructor 'ADDC'"),
            std::string::npos);
}

TEST(LintRuleTest, UnusedDeclaration) {
  Workspace WS;
  ASSERT_TRUE(load(WS, R"(
spec Lonely
  uses Ghost
  sorts L
  ops
    MKL  : -> L
    FLIP : L -> L
    DEAD : L -> L
  constructors MKL
  axioms
    FLIP(MKL) = MKL
end
)"));
  LintReport Report = WS.lint();
  // The Ghost sort appears in no signature; DEAD appears in no axiom.
  EXPECT_EQ(countRule(Report, "unused-declaration"), 2u);
  bool SawGhost = false, SawDead = false;
  for (const LintFinding &F : Report.Findings) {
    SawGhost |= F.Message.find("'Ghost'") != std::string::npos;
    SawDead |= F.Message.find("'DEAD'") != std::string::npos;
  }
  EXPECT_TRUE(SawGhost);
  EXPECT_TRUE(SawDead);
}

TEST(LintRuleTest, UsageIsWorkspaceWide) {
  // Stack's REPLACE axiom uses POP and PUSH of the sibling Array/Stack
  // buffer; nothing in the combined workspace is unused.
  Workspace WS;
  ASSERT_TRUE(load(WS, specs::StackArrayAlg, "stackarray.alg"));
  EXPECT_EQ(countRule(WS.lint(), "unused-declaration"), 0u);
}

//===----------------------------------------------------------------------===//
// Analysis-backed rules (built on check/ErrorFlow.h)
//===----------------------------------------------------------------------===//

TEST(LintRuleTest, ErrorSwallowed) {
  // DRAIN's right-hand side contains REMOVE(NEW) = error in a strict
  // position of ADD, so every application rewrites to error — without
  // the axiom ever saying `error`.
  Workspace WS;
  ASSERT_TRUE(load(WS, specs::QueueAlg, "queue.alg"));
  ASSERT_TRUE(load(WS, R"(
spec Sink
  ops
    DRAIN : Queue -> Queue
  vars
    q : Queue
  axioms
    DRAIN(q) = ADD(REMOVE(NEW), 'item1)
end
)"));
  LintReport Report = WS.lint();
  ASSERT_EQ(countRule(Report, "error-swallowed"), 1u);
  const LintFinding &F = *findRule(Report, "error-swallowed");
  EXPECT_EQ(F.Kind, DiagKind::Warning);
  EXPECT_NE(F.Message.find("'DRAIN'"), std::string::npos);
  EXPECT_NE(F.FixIt.find("= error"), std::string::npos);
}

TEST(LintRuleTest, AlwaysErrorOp) {
  Workspace WS;
  ASSERT_TRUE(load(WS, R"(
spec Dead
  sorts D
  ops
    MKD  : -> D
    KILL : D -> D
  constructors MKD
  axioms
    KILL(MKD) = error
end
)"));
  LintReport Report = WS.lint();
  ASSERT_EQ(countRule(Report, "always-error-op"), 1u);
  const LintFinding &F = *findRule(Report, "always-error-op");
  EXPECT_EQ(F.Kind, DiagKind::Warning);
  EXPECT_NE(F.Message.find("'KILL'"), std::string::npos);
  // The axiom says `error` explicitly, so error-swallowed stays quiet.
  EXPECT_EQ(countRule(Report, "error-swallowed"), 0u);
}

TEST(LintRuleTest, RedundantErrorAxiom) {
  // With the explicit axiom removed, DROP2(NEW) still rewrites to error
  // through the general axiom and strict propagation: the spelling is
  // redundant.
  Workspace WS;
  ASSERT_TRUE(load(WS, specs::QueueAlg, "queue.alg"));
  ASSERT_TRUE(load(WS, R"(
spec Drops
  ops
    DROP2 : Queue -> Queue
  vars
    q : Queue
  axioms
    DROP2(q) = REMOVE(REMOVE(q))
    DROP2(NEW) = error
end
)"));
  LintReport Report = WS.lint();
  ASSERT_EQ(countRule(Report, "redundant-error-axiom"), 1u);
  const LintFinding &F = *findRule(Report, "redundant-error-axiom");
  EXPECT_EQ(F.Kind, DiagKind::Warning);
  EXPECT_NE(F.Message.find("DROP2(NEW)"), std::string::npos);
  EXPECT_NE(F.FixIt.find("removed"), std::string::npos);
}

TEST(LintRuleTest, NecessaryErrorAxiomNotFlagged) {
  // Queue's own FRONT(NEW) = error is load-bearing: dropping it leaves
  // FRONT(NEW) stuck, not erroring, so the rule must not fire on it.
  Workspace WS;
  ASSERT_TRUE(load(WS, specs::QueueAlg, "queue.alg"));
  EXPECT_EQ(countRule(WS.lint(), "redundant-error-axiom"), 0u);
}

//===----------------------------------------------------------------------===//
// Framework behavior
//===----------------------------------------------------------------------===//

TEST(LintFrameworkTest, StandardRegistryHasThirteenPasses) {
  Linter L = Linter::standard();
  EXPECT_EQ(L.passes().size(), 13u);
  for (const auto &Pass : L.passes()) {
    EXPECT_FALSE(Pass->name().empty());
    EXPECT_FALSE(Pass->description().empty());
  }
}

namespace {
class AlwaysFirePass : public LintPass {
public:
  std::string_view name() const override { return "always-fire"; }
  std::string_view description() const override { return "test pass"; }
  void run(LintContext &LC) override {
    LC.report(name(), DiagKind::Warning, SourceLoc(),
              "spec '" + LC.spec().name() + "' visited");
  }
};
} // namespace

TEST(LintFrameworkTest, CustomPassRunsPerSpec) {
  Workspace WS;
  ASSERT_TRUE(load(WS, specs::StackArrayAlg, "stackarray.alg"));
  Linter L;
  L.addPass(std::make_unique<AlwaysFirePass>());
  LintReport Report = L.run(WS.context(), WS.specPointers());
  ASSERT_EQ(Report.Findings.size(), 2u); // Array and Stack.
  EXPECT_EQ(Report.Findings[0].SpecName, "Array");
  EXPECT_EQ(Report.Findings[1].SpecName, "Stack");
}

TEST(LintFrameworkTest, FindingsSortedByLocationWithinSpec) {
  Workspace WS;
  ASSERT_TRUE(load(WS, R"(
spec Messy
  uses Item
  sorts M
  ops
    MKM  : -> M
    PUTM : M, Item -> M
    GETM : M -> Item
    DEAD : M -> M
  constructors MKM, PUTM
  vars
    m, spare : M
    i : Item
  axioms
    GETM(PUTM(m, i)) = i
    GETM(m) = error
end
)"));
  LintReport Report = WS.lint();
  ASSERT_GE(Report.Findings.size(), 2u);
  for (size_t I = 1; I < Report.Findings.size(); ++I) {
    SourceLoc A = Report.Findings[I - 1].Loc;
    SourceLoc B = Report.Findings[I].Loc;
    EXPECT_TRUE(A.line() < B.line() ||
                (A.line() == B.line() && A.column() <= B.column()));
  }
}

TEST(LintFrameworkTest, RenderShowsCaretAndRule) {
  Workspace WS;
  ASSERT_TRUE(load(WS, R"(
spec Spare
  sorts P
  ops
    MKP : -> P
    IDP : P -> P
  constructors MKP
  vars
    p, q : P
  axioms
    IDP(p) = p
end
)",
                   "spare.alg"));
  std::string Out = WS.renderLint(WS.lint());
  EXPECT_NE(Out.find("spare.alg:9:"), std::string::npos);
  EXPECT_NE(Out.find("[unused-variable]"), std::string::npos);
  EXPECT_NE(Out.find("^"), std::string::npos);
  EXPECT_NE(Out.find("note: please"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Self-hosting: every shipped spec lints clean, even under -Werror.
//===----------------------------------------------------------------------===//

namespace {
struct NamedSpecText {
  const char *Name;
  std::string_view Text;
};

const NamedSpecText AllBuiltins[] = {
    {"queue.alg", specs::QueueAlg},
    {"symboltable.alg", specs::SymboltableAlg},
    {"stackarray.alg", specs::StackArrayAlg},
    {"knowlist.alg", specs::KnowlistAlg},
    {"knows_symboltable.alg", specs::KnowsSymboltableAlg},
    {"nat.alg", specs::NatAlg},
    {"set.alg", specs::SetAlg},
    {"list.alg", specs::ListAlg},
    {"bag.alg", specs::BagAlg},
    {"bst.alg", specs::BstAlg},
    {"boundedqueue.alg", specs::BoundedQueueAlg},
    {"table.alg", specs::TableAlg},
};
} // namespace

TEST(LintSelfHostTest, EveryBuiltinSpecLintsClean) {
  for (const NamedSpecText &B : AllBuiltins) {
    Workspace WS;
    ASSERT_TRUE(load(WS, B.Text, B.Name)) << B.Name;
    LintReport Report = WS.lint();
    EXPECT_TRUE(Report.clean())
        << B.Name << ":\n"
        << WS.renderLint(Report);
  }
}

TEST(LintSelfHostTest, ExampleSpecFilesLintClean) {
  const std::string Base = ALGSPEC_SOURCE_DIR "/examples/specs/";
  {
    Workspace WS;
    std::string Text = readFileOrEmpty(Base + "priority_queue.alg");
    ASSERT_FALSE(Text.empty());
    ASSERT_TRUE(load(WS, Text, "priority_queue.alg"));
    LintReport Report = WS.lint();
    EXPECT_TRUE(Report.clean()) << WS.renderLint(Report);
  }
  {
    // The representation file needs the abstract specs it implements.
    Workspace WS;
    ASSERT_TRUE(load(WS, specs::SymboltableAlg, "symboltable.alg"));
    ASSERT_TRUE(load(WS, specs::StackArrayAlg, "stackarray.alg"));
    std::string Text = readFileOrEmpty(Base + "symboltable_impl.alg");
    ASSERT_FALSE(Text.empty());
    ASSERT_TRUE(load(WS, Text, "symboltable_impl.alg"));
    LintReport Report = WS.lint();
    EXPECT_TRUE(Report.clean()) << WS.renderLint(Report);
  }
}

//===----------------------------------------------------------------------===//
// Termination prover
//===----------------------------------------------------------------------===//

TEST(TerminationTest, ProvesThePaperSpecs) {
  // Every paper spec (and the extras except Table) admits an RPO proof.
  for (const NamedSpecText &B : AllBuiltins) {
    if (std::string_view(B.Name) == "table.alg")
      continue;
    Workspace WS;
    ASSERT_TRUE(load(WS, B.Text, B.Name)) << B.Name;
    TerminationReport Report = WS.termination();
    EXPECT_TRUE(Report.AllProved)
        << B.Name << ":\n"
        << Report.render(WS.context());
  }
}

TEST(TerminationTest, ProvedSpecsByName) {
  Workspace WS;
  ASSERT_TRUE(load(WS, specs::QueueAlg, "queue.alg"));
  ASSERT_TRUE(load(WS, specs::SymboltableAlg, "symboltable.alg"));
  ASSERT_TRUE(load(WS, specs::StackArrayAlg, "stackarray.alg"));
  ASSERT_TRUE(load(WS, specs::KnowlistAlg, "knowlist.alg"));
  ASSERT_TRUE(load(WS, specs::BoundedQueueAlg, "boundedqueue.alg"));
  TerminationReport Report = WS.termination();
  EXPECT_TRUE(Report.AllProved) << Report.render(WS.context());
  for (const char *Name :
       {"Queue", "Symboltable", "Array", "Stack", "Knowlist", "BoundedQueue"})
    EXPECT_TRUE(Report.provedFor(Name)) << Name;
  EXPECT_FALSE(Report.provedFor("NoSuchSpec"));
}

TEST(TerminationTest, PrecedenceFollowsDependencies) {
  Workspace WS;
  ASSERT_TRUE(load(WS, specs::QueueAlg, "queue.alg"));
  TerminationReport Report = WS.termination();
  ASSERT_FALSE(Report.Precedence.empty());
  auto Position = [&](std::string_view Name) {
    for (size_t I = 0; I < Report.Precedence.size(); ++I)
      if (WS.context().opName(Report.Precedence[I]) == Name)
        return I;
    return Report.Precedence.size();
  };
  // REMOVE's axioms apply IS_EMPTY? and NEW, so it stands above both.
  EXPECT_LT(Position("REMOVE"), Position("IS_EMPTY?"));
  EXPECT_LT(Position("REMOVE"), Position("NEW"));
  EXPECT_LT(Position("IS_EMPTY?"), Position("NEW"));
}

TEST(TerminationTest, TableSelectValIsBeyondRpo) {
  // SELECT_VAL recurses through DELETE_ROW, but DELETE_ROW's own axioms
  // rebuild INSERT_ROW forms — RPO would need INSERT_ROW above DELETE_ROW
  // and below it at once. A pinned incompleteness witness: the spec
  // terminates in practice, the ordering cannot see it.
  Workspace WS;
  ASSERT_TRUE(load(WS, specs::TableAlg, "table.alg"));
  TerminationReport Report = WS.termination();
  EXPECT_FALSE(Report.AllProved);
  EXPECT_FALSE(Report.provedFor("Table"));
  ASSERT_EQ(Report.Failures.size(), 1u);
  EXPECT_EQ(Report.Failures[0].SpecName, "Table");
  EXPECT_NE(Report.Failures[0].Reason.find("SELECT_VAL"), std::string::npos);
  // Termination is a verdict, not a lint finding: the spec still lints
  // clean, so `lint --Werror` does not gate on RPO incompleteness.
  EXPECT_TRUE(WS.lint().clean());
}

TEST(TerminationTest, GuardedVariableRecursionStaysUnproved) {
  // RETRIEVE_R recurses on POP(stk) with stk a bare variable: only the
  // IS_NEWSTACK? guard makes it terminate, which a path ordering cannot
  // see. The other representation-layer specs all prove.
  Workspace WS;
  ASSERT_TRUE(load(WS, specs::SymboltableAlg, "symboltable.alg"));
  ASSERT_TRUE(load(WS, specs::StackArrayAlg, "stackarray.alg"));
  std::string Text = readFileOrEmpty(
      ALGSPEC_SOURCE_DIR "/examples/specs/symboltable_impl.alg");
  ASSERT_FALSE(Text.empty());
  ASSERT_TRUE(load(WS, Text, "symboltable_impl.alg"));
  TerminationReport Report = WS.termination();
  EXPECT_FALSE(Report.provedFor("SymboltableImpl"));
  EXPECT_TRUE(Report.provedFor("Symboltable"));
  EXPECT_TRUE(Report.provedFor("Array"));
  EXPECT_TRUE(Report.provedFor("Stack"));
  EXPECT_TRUE(Report.provedFor("Phi"));
  ASSERT_EQ(Report.Failures.size(), 1u);
  EXPECT_EQ(Report.Failures[0].AxiomNumber, 6u);
  EXPECT_NE(Report.Failures[0].Reason.find("RETRIEVE_R(POP(stk), id)"),
            std::string::npos);
}

TEST(TerminationTest, MutualRecursionReportsTheCycle) {
  Workspace WS;
  ASSERT_TRUE(load(WS, R"(
spec PingPong
  sorts G
  ops
    MKG  : -> G
    PING : G -> G
    PONG : G -> G
  constructors MKG
  vars
    g : G
  axioms
    PING(g) = PONG(g)
    PONG(g) = PING(g)
end
)"));
  TerminationReport Report = WS.termination();
  EXPECT_FALSE(Report.AllProved);
  ASSERT_EQ(Report.Cycles.size(), 1u);
  ASSERT_EQ(Report.Cycles[0].size(), 2u);
  EXPECT_EQ(WS.context().opName(Report.Cycles[0][0]), "PING");
  EXPECT_EQ(WS.context().opName(Report.Cycles[0][1]), "PONG");
  // Both axioms are implicated, each naming the cycle.
  ASSERT_EQ(Report.Failures.size(), 2u);
  for (const TerminationFailure &F : Report.Failures)
    EXPECT_NE(F.Reason.find("mutually recursive"), std::string::npos);
  EXPECT_NE(Report.render(WS.context()).find("PING <-> PONG"),
            std::string::npos);
}

TEST(TerminationTest, NonDecreasingRecursionFails) {
  Workspace WS;
  ASSERT_TRUE(load(WS, R"(
spec Spinner
  sorts W
  ops
    MKW  : -> W
    GROW : W -> W
  constructors MKW
  axioms
    GROW(MKW) = GROW(GROW(MKW))
end
)"));
  TerminationReport Report = WS.termination();
  EXPECT_FALSE(Report.AllProved);
  EXPECT_TRUE(Report.Cycles.empty()); // Self-recursion is not a cycle.
  ASSERT_EQ(Report.Failures.size(), 1u);
  EXPECT_NE(Report.Failures[0].Reason.find(
                "recursive call is not applied to structurally smaller"),
            std::string::npos);
}

TEST(TerminationTest, StructuralRecursionThroughSelfLoopProves) {
  // Direct recursion on a smaller argument is fine: the self-loop stays a
  // singleton component and the lexicographic case discharges it.
  Workspace WS;
  ASSERT_TRUE(load(WS, specs::NatAlg, "nat.alg"));
  TerminationReport Report = WS.termination();
  EXPECT_TRUE(Report.AllProved) << Report.render(WS.context());
}
