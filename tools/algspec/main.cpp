//===----------------------------------------------------------------------===//
//
// Part of AlgSpec. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The algspec command-line driver.
///
///   algspec check <file.alg>...          parse + completeness + consistency
///                                        + termination verdicts
///   algspec lint  <file.alg>...          static-analysis lint passes and
///                                        the RPO termination prover
///   algspec analyze <file.alg>...        error-flow analysis: per-operation
///                                        definedness summaries and the
///                                        inferred preconditions
///   algspec eval  <file.alg> -e <term>   normalize a term against the specs
///   algspec run   <file.alg> <prog>      run an assignment program (x := ...)
///   algspec trace <file.alg> -e <term>   normalize, printing every step
///   algspec enum  <file.alg> -s <sort> -d <depth>
///                                        enumerate ground constructor terms
///   algspec axioms <file.alg>            pretty-print the parsed axioms
///
/// `--builtin <name>` (queue, symboltable, stackarray, knowlist,
/// knows_symboltable, nat, set, list, bag, bst, table, boundedqueue,
/// symboltable_impl) loads an embedded paper spec instead of (or in
/// addition to) files.
///
//===----------------------------------------------------------------------===//

#include "check/ErrorFlow.h"
#include "core/AlgSpec.h"
#include "support/Json.h"
#include "support/SourceMgr.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
// This is tool code, not library code: std::cin is the natural way to
// support `algspec run specs.alg -`.
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

using namespace algspec;

namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage: algspec <command> [options] [files...]\n"
      "\n"
      "commands:\n"
      "  check   parse the specs, then run the sufficient-completeness\n"
      "          and consistency checkers and the termination prover\n"
      "  lint    run the static-analysis lint passes (unused variables,\n"
      "          unbound RHS variables, non-left-linear patterns,\n"
      "          subsumed axioms, constructor discipline, unused\n"
      "          declarations, error-flow rules) and the RPO termination\n"
      "          prover\n"
      "  analyze run the error-flow analysis: per-operation definedness\n"
      "          summaries (never/may/always-error per constructor case)\n"
      "          and the inferred definedness obligations\n"
      "  axioms  pretty-print every parsed spec and its axioms\n"
      "  eval    normalize a term: algspec eval q.alg -e 'FRONT(ADD(NEW, "
      "'x))'\n"
      "  trace   like eval, printing each rewrite step\n"
      "  run     execute an assignment program file (or - for stdin)\n"
      "  enum    enumerate ground terms: algspec enum q.alg -s Queue -d 3\n"
      "  skeleton  generate the axiom left-hand sides a new spec needs\n"
      "            (one per defined-op/constructor pair)\n"
      "  fmt     reprint the specs in canonical form\n"
      "  verify  check a representation: --abstract <spec> --rep-sort\n"
      "          <sort> --phi <op> --map ABSTRACT=IMPL... [--free]\n"
      "          [--invariant <op>] [--hom] [-d <depth>]\n"
      "\n"
      "options:\n"
      "  --builtin <name>   load an embedded paper spec (queue,\n"
      "                     symboltable, stackarray, knowlist,\n"
      "                     knows_symboltable, nat, set, list, bag,\n"
      "                     bst, table, boundedqueue, symboltable_impl)\n"
      "  -e <term>          the term for eval/trace\n"
      "  -s <sort>          the sort for enum\n"
      "  -d <depth>         the depth for enum (default 3)\n"
      "  --dynamic <depth>  also run the dynamic completeness check\n"
      "  --jobs <n>         worker threads for the check/verify instance\n"
      "                     sweeps (0 = hardware concurrency, the\n"
      "                     default; reports are identical at any n)\n"
      "  --engine <which>   rewrite engine: 'compiled' (matching\n"
      "                     automata + RHS templates, the default) or\n"
      "                     'interp' (the reference interpreter);\n"
      "                     results are identical either way\n"
      "  --json             machine-readable output (check, lint,\n"
      "                     analyze, verify)\n"
      "  --Werror           lint/analyze: treat warnings as errors\n");
  return 2;
}

Result<std::string> readFile(const std::string &Path) {
  if (Path == "-") {
    std::ostringstream Buffer;
    Buffer << std::cin.rdbuf();
    return Buffer.str();
  }
  std::ifstream In(Path);
  if (!In)
    return makeError("cannot open '" + Path + "'");
  std::ostringstream Buffer;
  Buffer << In.rdbuf();
  return Buffer.str();
}

std::string_view builtinText(const std::string &Name) {
  if (Name == "queue")
    return specs::QueueAlg;
  if (Name == "symboltable")
    return specs::SymboltableAlg;
  if (Name == "stackarray")
    return specs::StackArrayAlg;
  if (Name == "knowlist")
    return specs::KnowlistAlg;
  if (Name == "knows_symboltable")
    return specs::KnowsSymboltableAlg;
  if (Name == "nat")
    return specs::NatAlg;
  if (Name == "set")
    return specs::SetAlg;
  if (Name == "list")
    return specs::ListAlg;
  if (Name == "bag")
    return specs::BagAlg;
  if (Name == "bst")
    return specs::BstAlg;
  if (Name == "table")
    return specs::TableAlg;
  if (Name == "boundedqueue")
    return specs::BoundedQueueAlg;
  if (Name == "symboltable_impl")
    return specs::SymboltableImplAlg;
  return {};
}

struct Options {
  std::string Command;
  std::vector<std::string> Files;
  std::vector<std::string> Builtins;
  std::string TermText;
  std::string SortName;
  unsigned Depth = 3;
  int DynamicDepth = -1;
  unsigned Jobs = 0; ///< 0 = hardware concurrency.
  /// --engine: compiled automata (default) vs the reference interpreter.
  bool CompileEngine = true;
  bool Json = false;
  bool WarningsAsErrors = false;
  // verify options.
  std::string AbstractSpec;
  std::string RepSort;
  std::string PhiName;
  std::vector<std::pair<std::string, std::string>> OpMap;
  std::string InvariantName;
  bool FreeDomain = false;
  bool Homomorphism = false;
};

bool parseArgs(int Argc, char **Argv, Options &Opts) {
  if (Argc < 2)
    return false;
  Opts.Command = Argv[1];
  for (int I = 2; I < Argc; ++I) {
    std::string Arg = Argv[I];
    auto needValue = [&](const char *Flag) -> const char * {
      if (I + 1 >= Argc) {
        std::fprintf(stderr, "error: %s needs a value\n", Flag);
        return nullptr;
      }
      return Argv[++I];
    };
    if (Arg == "--builtin") {
      const char *V = needValue("--builtin");
      if (!V)
        return false;
      Opts.Builtins.push_back(V);
    } else if (Arg == "-e") {
      const char *V = needValue("-e");
      if (!V)
        return false;
      Opts.TermText = V;
    } else if (Arg == "-s") {
      const char *V = needValue("-s");
      if (!V)
        return false;
      Opts.SortName = V;
    } else if (Arg == "-d") {
      const char *V = needValue("-d");
      if (!V)
        return false;
      Opts.Depth = static_cast<unsigned>(std::atoi(V));
    } else if (Arg == "--dynamic") {
      const char *V = needValue("--dynamic");
      if (!V)
        return false;
      Opts.DynamicDepth = std::atoi(V);
    } else if (Arg == "--jobs") {
      const char *V = needValue("--jobs");
      if (!V)
        return false;
      Opts.Jobs = static_cast<unsigned>(std::atoi(V));
    } else if (Arg == "--engine" || Arg.rfind("--engine=", 0) == 0) {
      // Both `--engine interp` and `--engine=interp` are accepted; the
      // inline form is what the docs show.
      std::string Which;
      if (Arg == "--engine") {
        const char *V = needValue("--engine");
        if (!V)
          return false;
        Which = V;
      } else {
        Which = Arg.substr(std::string("--engine=").size());
      }
      if (Which == "compiled") {
        Opts.CompileEngine = true;
      } else if (Which == "interp") {
        Opts.CompileEngine = false;
      } else {
        std::fprintf(stderr,
                     "error: --engine wants 'compiled' or 'interp'\n");
        return false;
      }
    } else if (Arg == "--abstract") {
      const char *V = needValue("--abstract");
      if (!V)
        return false;
      Opts.AbstractSpec = V;
    } else if (Arg == "--rep-sort") {
      const char *V = needValue("--rep-sort");
      if (!V)
        return false;
      Opts.RepSort = V;
    } else if (Arg == "--phi") {
      const char *V = needValue("--phi");
      if (!V)
        return false;
      Opts.PhiName = V;
    } else if (Arg == "--map") {
      const char *V = needValue("--map");
      if (!V)
        return false;
      std::string Pair = V;
      size_t Eq = Pair.find('=');
      if (Eq == std::string::npos) {
        std::fprintf(stderr, "error: --map wants ABSTRACT=IMPL\n");
        return false;
      }
      Opts.OpMap.emplace_back(Pair.substr(0, Eq), Pair.substr(Eq + 1));
    } else if (Arg == "--invariant") {
      const char *V = needValue("--invariant");
      if (!V)
        return false;
      Opts.InvariantName = V;
    } else if (Arg == "--free") {
      Opts.FreeDomain = true;
    } else if (Arg == "--hom") {
      Opts.Homomorphism = true;
    } else if (Arg == "--json") {
      Opts.Json = true;
    } else if (Arg == "--Werror") {
      Opts.WarningsAsErrors = true;
    } else if (!Arg.empty() && Arg[0] == '-' && Arg != "-") {
      std::fprintf(stderr, "error: unknown option '%s'\n", Arg.c_str());
      return false;
    } else {
      Opts.Files.push_back(Arg);
    }
  }
  return true;
}

/// Loads every requested builtin and file into \p WS. Returns false (with
/// diagnostics printed) on any failure.
bool loadAll(Workspace &WS, const Options &Opts,
             const std::vector<std::string> &Files) {
  for (const std::string &Name : Opts.Builtins) {
    std::string_view Text = builtinText(Name);
    if (Text.empty()) {
      std::fprintf(stderr, "error: unknown builtin spec '%s'\n",
                   Name.c_str());
      return false;
    }
    if (Result<void> R = WS.load(Text, Name + ".alg"); !R) {
      std::fprintf(stderr, "%s", R.error().message().c_str());
      return false;
    }
  }
  for (const std::string &Path : Files) {
    Result<std::string> Text = readFile(Path);
    if (!Text) {
      std::fprintf(stderr, "error: %s\n", Text.error().message().c_str());
      return false;
    }
    if (Result<void> R = WS.load(*Text, Path); !R) {
      std::fprintf(stderr, "%s", R.error().message().c_str());
      return false;
    }
  }
  if (WS.specs().empty()) {
    std::fprintf(stderr, "error: no specs loaded; pass files or "
                         "--builtin\n");
    return false;
  }
  return true;
}

const char *severityName(DiagKind Kind) {
  switch (Kind) {
  case DiagKind::Error:
    return "error";
  case DiagKind::Warning:
    return "warning";
  case DiagKind::Note:
    return "note";
  }
  return "unknown";
}

/// Emits the rewrite-engine counters as `"engine": {...}`. Aggregated
/// over the main engine and every worker replica; informational only —
/// the counters vary with the job count even though the verdicts do not.
void writeEngineStats(JsonWriter &W, const EngineStats &S) {
  W.key("engine").beginObject();
  W.key("steps").value(S.Steps);
  W.key("cacheHits").value(S.CacheHits);
  W.key("cacheMisses").value(S.CacheMisses);
  W.key("evictions").value(S.Evictions);
  W.key("rebuilds").value(S.Rebuilds);
  W.key("matchAttempts").value(S.MatchAttempts);
  W.key("automatonVisits").value(S.AutomatonVisits);
  W.endObject();
}

/// Emits the error-flow obligations as `"obligations": [...]`. Shared by
/// analyze and check. The guard-engine counters are emitted separately
/// (analyze appends them after the report) so this block stays
/// byte-identical across build configurations and job counts (CI diffs
/// it against golden files).
void writeObligationsJson(JsonWriter &W, const AlgebraContext &Ctx,
                          const std::vector<DefinednessObligation> &Obs) {
  W.key("obligations").beginArray();
  for (const DefinednessObligation &O : Obs) {
    W.beginObject();
    W.key("spec").value(O.SpecName);
    W.key("op").value(std::string(Ctx.opName(O.Op)));
    W.key("axiom").value(O.AxiomNumber);
    W.key("case").value(printTerm(Ctx, O.CaseLhs));
    W.key("verdict").value(std::string(errorVerdictName(O.Verdict)));
    if (O.ErrorCondition.isValid()) {
      W.key("condition").value(printTerm(Ctx, O.ErrorCondition));
      W.key("exact").value(O.ConditionExact);
    }
    W.key("rendered").value(O.render(Ctx));
    W.endObject();
  }
  W.endArray();
}

int cmdCheck(Workspace &WS, const Options &Opts) {
  bool AllGood = true;
  TerminationReport Term = WS.termination();
  ParallelOptions Par;
  Par.Jobs = Opts.Jobs;
  EngineOptions Eng;
  Eng.Compile = Opts.CompileEngine;

  if (Opts.Json) {
    JsonWriter W;
    W.beginObject();
    W.key("specs").beginArray();
    for (const Spec &S : WS.specs()) {
      CompletenessReport Report = WS.checkComplete(S);
      AllGood &= Report.SufficientlyComplete;
      W.beginObject();
      W.key("name").value(S.name());
      W.key("operations").value(S.operations().size());
      W.key("axioms").value(S.axioms().size());
      W.key("sufficientlyComplete").value(Report.SufficientlyComplete);
      W.key("missing").beginArray();
      for (const MissingCase &M : Report.Missing)
        W.value(printTerm(WS.context(), M.SuggestedLhs));
      W.endArray();
      W.key("caveats").beginArray();
      for (const std::string &Caveat : Report.Caveats)
        W.value(Caveat);
      W.endArray();
      W.key("terminationProved").value(Term.provedFor(S.name()));
      if (Opts.DynamicDepth > 0) {
        CompletenessReport Dynamic = checkCompletenessDynamic(
            WS.context(), S, WS.specPointers(),
            static_cast<unsigned>(Opts.DynamicDepth), EnumeratorOptions(),
            Par, Eng);
        AllGood &= Dynamic.SufficientlyComplete;
        W.key("dynamic").beginObject();
        W.key("depth").value(Opts.DynamicDepth);
        W.key("sufficientlyComplete").value(Dynamic.SufficientlyComplete);
        W.key("stuck").beginArray();
        for (const MissingCase &M : Dynamic.Missing)
          W.value(printTerm(WS.context(), M.SuggestedLhs));
        W.endArray();
        W.key("caveats").beginArray();
        for (const std::string &Caveat : Dynamic.Caveats)
          W.value(Caveat);
        W.endArray();
        writeEngineStats(W, Dynamic.Engine);
        W.endObject();
      }
      W.endObject();
    }
    W.endArray();
    ConsistencyReport Consistency = WS.checkConsistent(2, Par, Eng);
    AllGood &= Consistency.Consistent;
    W.key("consistency").beginObject();
    W.key("consistent").value(Consistency.Consistent);
    W.key("contradictions").value(Consistency.Contradictions.size());
    writeEngineStats(W, Consistency.Engine);
    W.endObject();
    ErrorFlowReport Flow =
        analyzeErrorFlow(WS.context(), WS.specPointers(), Eng);
    writeObligationsJson(W, WS.context(), Flow.Obligations);
    W.endObject();
    std::printf("%s\n", W.str().c_str());
    return AllGood ? 0 : 1;
  }

  for (const Spec &S : WS.specs()) {
    CompletenessReport Report = WS.checkComplete(S);
    std::printf("spec '%s': %zu operations, %zu axioms\n",
                S.name().c_str(), S.operations().size(),
                S.axioms().size());
    std::printf("  sufficient completeness: %s\n",
                Report.SufficientlyComplete ? "yes" : "NO");
    if (!Report.SufficientlyComplete) {
      AllGood = false;
      std::printf("%s", Report.renderPrompt(WS.context()).c_str());
    }
    for (const std::string &Caveat : Report.Caveats)
      std::printf("  note: %s\n", Caveat.c_str());
    // A proved spec terminates under any strategy, so the engine's fuel
    // bound is no longer a caveat of its verdicts.
    if (Term.provedFor(S.name())) {
      std::printf("  termination: proved unconditionally (recursive path "
                  "ordering)\n");
    } else {
      std::printf("  termination: not proved\n");
      std::printf("  note: normalization relies on the rewrite engine's "
                  "fuel bound\n");
    }
    if (Opts.DynamicDepth > 0) {
      CompletenessReport Dynamic = checkCompletenessDynamic(
          WS.context(), S, WS.specPointers(),
          static_cast<unsigned>(Opts.DynamicDepth), EnumeratorOptions(),
          Par, Eng);
      std::printf("  dynamic check (depth %d): %zu stuck term(s)\n",
                  Opts.DynamicDepth, Dynamic.Missing.size());
      AllGood &= Dynamic.SufficientlyComplete;
    }
  }
  ConsistencyReport Consistency = WS.checkConsistent(2, Par, Eng);
  std::printf("consistency: %s", Consistency.render(WS.context()).c_str());
  AllGood &= Consistency.Consistent;
  ErrorFlowReport Flow =
      analyzeErrorFlow(WS.context(), WS.specPointers(), Eng);
  if (!Flow.Obligations.empty()) {
    std::printf("definedness obligations:\n");
    for (const DefinednessObligation &O : Flow.Obligations)
      std::printf("  %s: %s\n", O.SpecName.c_str(),
                  O.render(WS.context()).c_str());
  }
  return AllGood ? 0 : 1;
}

void writeLintJson(const LintReport &Report, const TerminationReport &Term) {
  JsonWriter W;
  W.beginObject();
  W.key("findings").beginArray();
  for (const LintFinding &F : Report.Findings) {
    W.beginObject();
    W.key("rule").value(F.Rule);
    W.key("severity").value(severityName(F.Kind));
    W.key("spec").value(F.SpecName);
    // Programmatically built specs have no source location; omit the
    // fields instead of emitting a bogus 0:0.
    if (F.Loc.isValid()) {
      W.key("line").value(F.Loc.line());
      W.key("column").value(F.Loc.column());
    }
    W.key("message").value(F.Message);
    if (!F.FixIt.empty())
      W.key("fixit").value(F.FixIt);
    W.endObject();
  }
  W.endArray();
  W.key("termination").beginArray();
  for (const SpecTermination &ST : Term.PerSpec) {
    W.beginObject();
    W.key("spec").value(ST.SpecName);
    W.key("proved").value(ST.Proved);
    W.endObject();
  }
  W.endArray();
  W.key("terminationFailures").beginArray();
  for (const TerminationFailure &F : Term.Failures) {
    W.beginObject();
    W.key("spec").value(F.SpecName);
    W.key("axiom").value(F.AxiomNumber);
    W.key("reason").value(F.Reason);
    W.endObject();
  }
  W.endArray();
  W.key("errors").value(Report.errorCount());
  W.key("warnings").value(Report.warningCount());
  W.endObject();
  std::printf("%s\n", W.str().c_str());
}

int cmdLint(Workspace &WS, const Options &Opts) {
  LintOptions LOpts;
  LOpts.WarningsAsErrors = Opts.WarningsAsErrors;
  LintReport Report = WS.lint();
  TerminationReport Term = WS.termination();
  if (Opts.Json) {
    writeLintJson(Report, Term);
  } else {
    std::printf("%s", WS.renderLint(Report).c_str());
    std::printf("%s", Term.render(WS.context()).c_str());
    if (Report.clean())
      std::printf("lint: no findings.\n");
    else
      std::printf("%u error(s), %u warning(s) generated.\n",
                  Report.errorCount(), Report.warningCount());
  }
  // Termination verdicts inform but do not gate: an unproved spec may
  // still terminate under the engine's strategy (RPO is incomplete).
  return Report.failed(LOpts) ? 1 : 0;
}

/// `algspec analyze`: the error-flow analysis on its own — definedness
/// summaries, obligations, and the three analysis-backed lint rules.
int cmdAnalyze(Workspace &WS, const Options &Opts) {
  EngineOptions Eng;
  Eng.Compile = Opts.CompileEngine;
  ErrorFlowReport Report =
      analyzeErrorFlow(WS.context(), WS.specPointers(), Eng);

  // Only the analysis-backed rules; `algspec lint` runs the full set.
  Linter L;
  L.addPass(makeErrorSwallowedPass());
  L.addPass(makeAlwaysErrorOpPass());
  L.addPass(makeRedundantErrorAxiomPass());
  LintReport Findings = L.run(WS.context(), WS.specPointers());
  LintOptions LOpts;
  LOpts.WarningsAsErrors = Opts.WarningsAsErrors;

  if (Opts.Json) {
    JsonWriter W;
    W.beginObject();
    W.key("summaries").beginArray();
    for (const OpSummary &Sum : Report.Summaries) {
      W.beginObject();
      W.key("spec").value(Sum.SpecName);
      W.key("op").value(std::string(WS.context().opName(Sum.Op)));
      W.key("overall").value(std::string(errorVerdictName(Sum.Overall)));
      W.key("cases").beginArray();
      for (const ErrorCase &C : Sum.Cases) {
        W.beginObject();
        W.key("axiom").value(C.AxiomNumber);
        W.key("lhs").value(printTerm(WS.context(), C.Lhs));
        W.key("verdict").value(std::string(errorVerdictName(C.Verdict)));
        if (C.ErrorCondition.isValid()) {
          W.key("condition")
              .value(printTerm(WS.context(), C.ErrorCondition));
          W.key("exact").value(C.ConditionExact);
        }
        W.endObject();
      }
      W.endArray();
      W.endObject();
    }
    W.endArray();
    writeObligationsJson(W, WS.context(), Report.Obligations);
    W.key("findings").beginArray();
    for (const LintFinding &F : Findings.Findings) {
      W.beginObject();
      W.key("rule").value(F.Rule);
      W.key("severity").value(severityName(F.Kind));
      W.key("spec").value(F.SpecName);
      if (F.Loc.isValid()) {
        W.key("line").value(F.Loc.line());
        W.key("column").value(F.Loc.column());
      }
      W.key("message").value(F.Message);
      if (!F.FixIt.empty())
        W.key("fixit").value(F.FixIt);
      W.endObject();
    }
    W.endArray();
    W.key("caveats").beginArray();
    for (const std::string &Caveat : Report.Caveats)
      W.value(Caveat);
    W.endArray();
    // The guard engine is serial and visits operations in declaration
    // order, so these counters — unlike check/verify's — are identical
    // at any --jobs and across build configurations; goldens may pin
    // them (engine choice still changes the engine-specific counters).
    writeEngineStats(W, Report.Engine);
    W.endObject();
    std::printf("%s\n", W.str().c_str());
  } else {
    std::printf("%s", Report.render(WS.context()).c_str());
    if (!Findings.clean())
      std::printf("%s", WS.renderLint(Findings).c_str());
  }
  return Findings.failed(LOpts) ? 1 : 0;
}

int cmdAxioms(Workspace &WS) {
  for (const Spec &S : WS.specs()) {
    std::printf("spec %s\n", S.name().c_str());
    for (OpId Op : S.operations()) {
      const OpInfo &Info = WS.context().op(Op);
      std::string Domain;
      for (size_t I = 0; I != Info.ArgSorts.size(); ++I) {
        if (I)
          Domain += ", ";
        Domain += WS.context().sortName(Info.ArgSorts[I]);
      }
      std::printf("  %s%-14s : %s -> %s\n",
                  Info.isConstructor() ? "*" : " ",
                  std::string(WS.context().opName(Op)).c_str(),
                  Domain.c_str(),
                  std::string(WS.context().sortName(Info.ResultSort))
                      .c_str());
    }
    for (const Axiom &Ax : S.axioms())
      std::printf("  (%u) %s\n", Ax.Number,
                  printAxiom(WS.context(), Ax).c_str());
    std::printf("(* marks constructors)\n\n");
  }
  return 0;
}

int cmdEval(Workspace &WS, const Options &Opts, bool Trace) {
  if (Opts.TermText.empty()) {
    std::fprintf(stderr, "error: eval/trace need -e <term>\n");
    return 2;
  }
  EngineOptions EngineOpts;
  EngineOpts.KeepTrace = Trace;
  EngineOpts.Compile = Opts.CompileEngine;
  auto SessionOrErr = WS.session(EngineOpts);
  if (!SessionOrErr) {
    std::fprintf(stderr, "%s\n", SessionOrErr.error().message().c_str());
    return 1;
  }
  Session S = SessionOrErr.take();
  Result<TermId> Term = parseTermText(WS.context(), Opts.TermText);
  if (!Term) {
    std::fprintf(stderr, "%s", Term.error().message().c_str());
    return 1;
  }
  Result<TermId> Normal = S.engine().normalize(*Term);
  if (!Normal) {
    std::fprintf(stderr, "error: %s\n", Normal.error().message().c_str());
    return 1;
  }
  if (Trace)
    for (const TraceStep &Step : S.engine().trace())
      std::printf("%s ~> %s  [axiom %u of %s]\n",
                  printTerm(WS.context(), Step.Before).c_str(),
                  printTerm(WS.context(), Step.After).c_str(),
                  Step.AppliedRule->AxiomNumber,
                  Step.AppliedRule->SpecName.c_str());
  std::printf("%s\n", printTerm(WS.context(), *Normal).c_str());
  return 0;
}

int cmdRun(Workspace &WS, const Options &Opts,
           const std::string &ProgramPath) {
  Result<std::string> Program = readFile(ProgramPath);
  if (!Program) {
    std::fprintf(stderr, "error: %s\n", Program.error().message().c_str());
    return 1;
  }
  EngineOptions EngineOpts;
  EngineOpts.Compile = Opts.CompileEngine;
  auto SessionOrErr = WS.session(EngineOpts);
  if (!SessionOrErr) {
    std::fprintf(stderr, "%s\n", SessionOrErr.error().message().c_str());
    return 1;
  }
  Session S = SessionOrErr.take();
  if (Result<void> R = S.runProgram(*Program); !R) {
    std::fprintf(stderr, "error: %s\n", R.error().message().c_str());
    return 1;
  }
  // Print the final value of every register assigned by the program, in
  // program order of first assignment (approximated by scanning lines).
  std::string Line;
  std::istringstream In(*Program);
  std::vector<std::string> Printed;
  while (std::getline(In, Line)) {
    size_t Pos = Line.find(":=");
    if (Pos == std::string::npos)
      continue;
    std::string Name = Line.substr(0, Pos);
    Name.erase(0, Name.find_first_not_of(" \t"));
    Name.erase(Name.find_last_not_of(" \t") + 1);
    if (Name.empty() ||
        std::find(Printed.begin(), Printed.end(), Name) != Printed.end())
      continue;
    Printed.push_back(Name);
    TermId Value = S.lookup(Name);
    if (Value.isValid())
      std::printf("%s = %s\n", Name.c_str(),
                  printTerm(WS.context(), Value).c_str());
  }
  (void)Opts;
  return 0;
}

int cmdVerify(Workspace &WS, const Options &Opts) {
  if (Opts.AbstractSpec.empty() || Opts.RepSort.empty() ||
      Opts.PhiName.empty() || Opts.OpMap.empty()) {
    std::fprintf(stderr,
                 "error: verify needs --abstract <spec>, --rep-sort "
                 "<sort>, --phi <op>, and --map ABSTRACT=IMPL pairs\n");
    return 2;
  }
  const Spec *Abstract = WS.find(Opts.AbstractSpec);
  if (!Abstract) {
    std::fprintf(stderr, "error: no loaded spec named '%s'\n",
                 Opts.AbstractSpec.c_str());
    return 1;
  }

  RepMapping Mapping;
  Mapping.AbstractSort = Abstract->principalSort();
  Mapping.RepSort = WS.context().lookupSort(Opts.RepSort);
  Mapping.Phi = WS.context().lookupOp(Opts.PhiName);
  if (!Mapping.RepSort.isValid() || !Mapping.Phi.isValid()) {
    std::fprintf(stderr, "error: unknown representation sort or phi\n");
    return 1;
  }
  for (const auto &[AbstractName, ImplName] : Opts.OpMap) {
    OpId AbstractOp;
    for (OpId Op : WS.context().lookupOps(AbstractName)) {
      const OpInfo &Info = WS.context().op(Op);
      bool Involves = Info.ResultSort == Mapping.AbstractSort;
      for (SortId S : Info.ArgSorts)
        Involves |= S == Mapping.AbstractSort;
      if (Involves)
        AbstractOp = Op;
    }
    OpId ImplOp = WS.context().lookupOp(ImplName);
    if (!AbstractOp.isValid() || !ImplOp.isValid()) {
      std::fprintf(stderr, "error: cannot resolve --map %s=%s\n",
                   AbstractName.c_str(), ImplName.c_str());
      return 1;
    }
    Mapping.OpMap.emplace(AbstractOp, ImplOp);
  }

  VerifyOptions VOpts;
  VOpts.Domain =
      Opts.FreeDomain ? ValueDomain::FreeTerms : ValueDomain::Reachable;
  VOpts.Depth = Opts.Depth;
  if (!Opts.InvariantName.empty()) {
    VOpts.Invariant = WS.context().lookupOp(Opts.InvariantName);
    if (!VOpts.Invariant.isValid()) {
      std::fprintf(stderr, "error: unknown invariant operation '%s'\n",
                   Opts.InvariantName.c_str());
      return 1;
    }
  }

  VOpts.Par.Jobs = Opts.Jobs;
  VOpts.Engine.Compile = Opts.CompileEngine;

  VerifyReport Report =
      Opts.Homomorphism
          ? verifyHomomorphism(WS.context(), *Abstract, WS.specPointers(),
                               Mapping, VOpts)
          : verifyRepresentation(WS.context(), *Abstract,
                                 WS.specPointers(), Mapping, VOpts);
  if (Opts.Json) {
    JsonWriter W;
    W.beginObject();
    W.key("allHold").value(Report.AllHold);
    W.key("repValues").value(Report.NumRepValues);
    W.key("verdicts").beginArray();
    for (const AxiomVerdict &V : Report.Verdicts) {
      W.beginObject();
      W.key("number").value(V.AxiomNumber);
      W.key("label").value(V.Label);
      W.key("holds").value(V.Holds);
      W.key("provedSymbolically").value(V.ProvedSymbolically);
      W.key("instancesChecked").value(V.InstancesChecked);
      if (V.Failure) {
        W.key("counterexample").beginObject();
        W.key("lhs").value(printTerm(WS.context(), V.Failure->Lhs));
        W.key("rhs").value(printTerm(WS.context(), V.Failure->Rhs));
        W.key("lhsNormal")
            .value(printTerm(WS.context(), V.Failure->LhsNormal));
        W.key("rhsNormal")
            .value(printTerm(WS.context(), V.Failure->RhsNormal));
        W.key("assignment").value(V.Failure->Assignment);
        W.endObject();
      }
      W.endObject();
    }
    W.endArray();
    W.key("allObligationsDischarged")
        .value(Report.AllObligationsDischarged);
    W.key("obligationVerdicts").beginArray();
    for (const ObligationVerdict &O : Report.Obligations) {
      W.beginObject();
      W.key("callee").value(std::string(WS.context().opName(O.Callee)));
      W.key("calleeSpec").value(O.CalleeSpec);
      W.key("case").value(printTerm(WS.context(), O.CaseLhs));
      if (O.Condition.isValid())
        W.key("condition").value(printTerm(WS.context(), O.Condition));
      W.key("hostSpec").value(O.HostSpec);
      W.key("hostAxiom").value(O.HostAxiom);
      W.key("site").value(printTerm(WS.context(), O.Site));
      W.key("status").value(O.Status == ObligationStatus::Discharged
                                ? "discharged"
                                : "assumed");
      W.key("note").value(O.Note);
      W.endObject();
    }
    W.endArray();
    W.key("caveats").beginArray();
    for (const std::string &Caveat : Report.Caveats)
      W.value(Caveat);
    W.endArray();
    writeEngineStats(W, Report.Engine);
    W.endObject();
    std::printf("%s\n", W.str().c_str());
  } else {
    std::printf("%s", Report.render(WS.context()).c_str());
  }
  return Report.AllHold ? 0 : 1;
}

int cmdEnum(Workspace &WS, const Options &Opts) {
  if (Opts.SortName.empty()) {
    std::fprintf(stderr, "error: enum needs -s <sort>\n");
    return 2;
  }
  SortId Sort = WS.context().lookupSort(Opts.SortName);
  if (!Sort.isValid()) {
    std::fprintf(stderr, "error: unknown sort '%s'\n",
                 Opts.SortName.c_str());
    return 1;
  }
  TermEnumerator Enumerator(WS.context());
  const std::vector<TermId> &Terms = Enumerator.enumerate(Sort, Opts.Depth);
  for (TermId Term : Terms)
    std::printf("%s\n", printTerm(WS.context(), Term).c_str());
  std::fprintf(stderr, "%zu term(s) of sort %s up to depth %u%s\n",
               Terms.size(), Opts.SortName.c_str(), Opts.Depth,
               Enumerator.wasTruncated(Sort, Opts.Depth) ? " (truncated)"
                                                         : "");
  return 0;
}

} // namespace

int main(int Argc, char **Argv) {
  Options Opts;
  if (!parseArgs(Argc, Argv, Opts))
    return usage();

  Workspace WS;

  if (Opts.Command == "check") {
    if (!loadAll(WS, Opts, Opts.Files))
      return 1;
    return cmdCheck(WS, Opts);
  }
  if (Opts.Command == "lint") {
    if (!loadAll(WS, Opts, Opts.Files))
      return 1;
    return cmdLint(WS, Opts);
  }
  if (Opts.Command == "analyze") {
    if (!loadAll(WS, Opts, Opts.Files))
      return 1;
    return cmdAnalyze(WS, Opts);
  }
  if (Opts.Command == "axioms") {
    if (!loadAll(WS, Opts, Opts.Files))
      return 1;
    return cmdAxioms(WS);
  }
  if (Opts.Command == "fmt") {
    if (!loadAll(WS, Opts, Opts.Files))
      return 1;
    for (const Spec &S : WS.specs())
      std::printf("%s\n", printSpec(WS.context(), S).c_str());
    return 0;
  }
  if (Opts.Command == "eval" || Opts.Command == "trace") {
    if (!loadAll(WS, Opts, Opts.Files))
      return 1;
    return cmdEval(WS, Opts, Opts.Command == "trace");
  }
  if (Opts.Command == "run") {
    // The last file is the program; the rest are specs.
    if (Opts.Files.empty() && Opts.Builtins.empty()) {
      std::fprintf(stderr, "error: run needs specs and a program file\n");
      return 2;
    }
    std::vector<std::string> SpecFiles = Opts.Files;
    if (SpecFiles.empty()) {
      std::fprintf(stderr, "error: run needs a program file\n");
      return 2;
    }
    std::string ProgramPath = SpecFiles.back();
    SpecFiles.pop_back();
    if (!loadAll(WS, Opts, SpecFiles))
      return 1;
    return cmdRun(WS, Opts, ProgramPath);
  }
  if (Opts.Command == "enum") {
    if (!loadAll(WS, Opts, Opts.Files))
      return 1;
    return cmdEnum(WS, Opts);
  }
  if (Opts.Command == "verify") {
    if (!loadAll(WS, Opts, Opts.Files))
      return 1;
    return cmdVerify(WS, Opts);
  }
  if (Opts.Command == "skeleton") {
    if (!loadAll(WS, Opts, Opts.Files))
      return 1;
    for (const Spec &S : WS.specs()) {
      std::printf("-- skeleton for spec %s\n", S.name().c_str());
      SkeletonReport Report = generateSkeletons(WS.context(), S);
      std::printf("%s\n", Report.render(WS.context()).c_str());
    }
    return 0;
  }
  return usage();
}
