//===----------------------------------------------------------------------===//
//
// Part of AlgSpec. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The algspec command-line driver.
///
///   algspec check <file.alg>...          parse + completeness + consistency
///                                        + termination verdicts
///   algspec lint  <file.alg>...          static-analysis lint passes and
///                                        the RPO termination prover
///   algspec analyze <file.alg>...        error-flow analysis: per-operation
///                                        definedness summaries and the
///                                        inferred preconditions
///   algspec eval  <file.alg> -e <term>   normalize a term against the specs
///   algspec run   <file.alg> <prog>      run an assignment program (x := ...)
///   algspec trace <file.alg> -e <term>   normalize, printing every step
///   algspec enum  <file.alg> -s <sort> -d <depth>
///                                        enumerate ground constructor terms
///   algspec testgen --builtin <name>...  run axiom-derived test campaigns
///                                        against the registered C++ ADT
///                                        implementations
///   algspec axioms <file.alg>            pretty-print the parsed axioms
///
/// `--builtin <name>` (queue, symboltable, stackarray, knowlist,
/// knows_symboltable, nat, set, list, bag, bst, table, boundedqueue,
/// symboltable_impl) loads an embedded paper spec instead of (or in
/// addition to) files.
///
//===----------------------------------------------------------------------===//

#include "adt/Bindings.h"
#include "check/ErrorFlow.h"
#include "core/AlgSpec.h"
#include "model/ModelBinding.h"
#include "testgen/TestGen.h"
#include "server/Client.h"
#include "server/Server.h"
#include "server/Version.h"
#include "support/Json.h"
#include "support/SourceMgr.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
// This is tool code, not library code: std::cin is the natural way to
// support `algspec run specs.alg -`.
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

using namespace algspec;

namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage: algspec <command> [options] [files...]\n"
      "\n"
      "commands:\n"
      "  check   parse the specs, then run the sufficient-completeness\n"
      "          and consistency checkers and the termination prover\n"
      "  lint    run the static-analysis lint passes (unused variables,\n"
      "          unbound RHS variables, non-left-linear patterns,\n"
      "          subsumed axioms, constructor discipline, unused\n"
      "          declarations, error-flow rules) and the RPO termination\n"
      "          prover\n"
      "  analyze run the error-flow analysis: per-operation definedness\n"
      "          summaries (never/may/always-error per constructor case)\n"
      "          and the inferred definedness obligations\n"
      "  axioms  pretty-print every parsed spec and its axioms\n"
      "  eval    normalize a term: algspec eval q.alg -e 'FRONT(ADD(NEW, "
      "'x))'\n"
      "  trace   like eval, printing each rewrite step\n"
      "  run     execute an assignment program file (or - for stdin)\n"
      "  enum    enumerate ground terms: algspec enum q.alg -s Queue -d 3\n"
      "  testgen compile the loaded specs into axiom-derived test\n"
      "          campaigns and run them against the registered C++ ADT\n"
      "          implementations (depth bound -d; --uniformity or\n"
      "          --random <n> shrink the instance set under explicit\n"
      "          hypotheses; --mutant <name> seeds a known bug)\n"
      "  skeleton  generate the axiom left-hand sides a new spec needs\n"
      "            (one per defined-op/constructor pair)\n"
      "  fmt     reprint the specs in canonical form\n"
      "  verify  check a representation: --abstract <spec> --rep-sort\n"
      "          <sort> --phi <op> --map ABSTRACT=IMPL... [--free]\n"
      "          [--invariant <op>] [--hom] [-d <depth>]\n"
      "  serve   run the request daemon: --listen unix:<path> and/or\n"
      "          --listen tcp:<host>:<port> [--workers <n>]\n"
      "          [--queue-max <n>] [--cache-max <n>] [--max-steps <n>]\n"
      "          [--deadline-ms <n>]\n"
      "  client  talk to a daemon: --connect <addr> followed by hello,\n"
      "          stats, or a command with its usual flags; or\n"
      "          --stress NxM for the differential load driver\n"
      "  version print the build identification (also reported by the\n"
      "          serve protocol's hello handshake)\n"
      "\n"
      "options:\n"
      "  --builtin <name>   load an embedded paper spec (queue,\n"
      "                     symboltable, stackarray, knowlist,\n"
      "                     knows_symboltable, nat, set, list, bag,\n"
      "                     bst, table, boundedqueue, symboltable_impl)\n"
      "  -e <term>          the term for eval/trace\n"
      "  -s <sort>          the sort for enum\n"
      "  -d <depth>         the depth for enum (default 3)\n"
      "  --dynamic <depth>  also run the dynamic completeness check\n"
      "  --jobs <n>         worker threads for the check/verify instance\n"
      "                     sweeps (0 = hardware concurrency, the\n"
      "                     default; reports are identical at any n)\n"
      "  --engine <which>   rewrite engine: 'compiled' (matching\n"
      "                     automata + RHS templates, the default) or\n"
      "                     'interp' (the reference interpreter);\n"
      "                     results are identical either way\n"
      "  --egraph <mode>    equality-saturation oracle behind the\n"
      "                     check/verify sweeps: 'auto' (when the\n"
      "                     convergence gate licenses it, the default),\n"
      "                     'off', or 'on' (saturation counters even\n"
      "                     ungated); verdicts are identical either way\n"
      "  --json             machine-readable output (check, lint,\n"
      "                     analyze, verify, testgen)\n"
      "  --random <n>       testgen: sample n instances per axiom from\n"
      "                     the depth-bounded space instead of\n"
      "                     enumerating it (deterministic under --seed)\n"
      "  --seed <n>         testgen: seed for --random (default 0)\n"
      "  --uniformity       testgen: keep one representative per\n"
      "                     variable/constructor-case cell\n"
      "  --oracle <which>   testgen: 'auto' (bound equality where\n"
      "                     available, the default) or 'observers'\n"
      "                     (observable-context oracles even where an\n"
      "                     equality is bound)\n"
      "  --mutant <name>    testgen: install a seeded implementation\n"
      "                     bug (the campaign should catch it)\n"
      "  --Werror           lint/analyze: treat warnings as errors\n"
      "  --listen <addr>    serve: listen address (repeatable)\n"
      "  --connect <addr>   client: daemon address\n"
      "  --stress NxM       client: N connections x M requests each\n"
      "  --workers <n>      serve: worker threads (0 = hw concurrency)\n"
      "  --queue-max <n>    serve: queue high-water mark (default 64)\n"
      "  --cache-max <n>    serve: workspace-cache entries (default 16)\n"
      "  --max-steps <n>    serve: per-request engine fuel cap\n"
      "  --deadline-ms <n>  client: per-request deadline;\n"
      "                     serve: default deadline for requests\n"
      "                     that carry none\n");
  return 2;
}

Result<std::string> readFile(const std::string &Path) {
  if (Path == "-") {
    std::ostringstream Buffer;
    Buffer << std::cin.rdbuf();
    return Buffer.str();
  }
  std::ifstream In(Path);
  if (!In)
    return makeError("cannot open '" + Path + "'");
  std::ostringstream Buffer;
  Buffer << In.rdbuf();
  return Buffer.str();
}

struct Options {
  std::string Command;
  std::vector<std::string> Files;
  std::vector<std::string> Builtins;
  std::string TermText;
  std::string SortName;
  unsigned Depth = 3;
  int DynamicDepth = -1;
  unsigned Jobs = 0; ///< 0 = hardware concurrency.
  /// --engine: compiled automata (default) vs the reference interpreter.
  bool CompileEngine = true;
  /// --egraph: the equality-saturation oracle mode.
  EqSatMode EGraph = EqSatMode::Auto;
  bool Json = false;
  bool WarningsAsErrors = false;
  // verify options.
  std::string AbstractSpec;
  std::string RepSort;
  std::string PhiName;
  std::vector<std::pair<std::string, std::string>> OpMap;
  std::string InvariantName;
  bool FreeDomain = false;
  bool Homomorphism = false;
  // testgen options.
  size_t RandomCount = 0;
  uint64_t Seed = 0;
  bool Uniformity = false;
  bool ForceObservers = false;
  std::string Mutant;
  // serve/client options.
  std::vector<std::string> ListenAddrs;
  std::string ConnectAddr;
  std::string StressSpec; ///< "NxM"; empty = single-shot client.
  unsigned ServeWorkers = 0;
  unsigned QueueMax = 64;
  unsigned CacheMax = 16;
  uint64_t MaxSteps = 0;
  int64_t DeadlineMs = 0;
};

bool parseArgs(int Argc, char **Argv, Options &Opts) {
  if (Argc < 2)
    return false;
  Opts.Command = Argv[1];
  for (int I = 2; I < Argc; ++I) {
    std::string Arg = Argv[I];
    auto needValue = [&](const char *Flag) -> const char * {
      if (I + 1 >= Argc) {
        std::fprintf(stderr, "error: %s needs a value\n", Flag);
        return nullptr;
      }
      return Argv[++I];
    };
    if (Arg == "--builtin") {
      const char *V = needValue("--builtin");
      if (!V)
        return false;
      Opts.Builtins.push_back(V);
    } else if (Arg == "-e") {
      const char *V = needValue("-e");
      if (!V)
        return false;
      Opts.TermText = V;
    } else if (Arg == "-s") {
      const char *V = needValue("-s");
      if (!V)
        return false;
      Opts.SortName = V;
    } else if (Arg == "-d") {
      const char *V = needValue("-d");
      if (!V)
        return false;
      Opts.Depth = static_cast<unsigned>(std::atoi(V));
    } else if (Arg == "--dynamic") {
      const char *V = needValue("--dynamic");
      if (!V)
        return false;
      Opts.DynamicDepth = std::atoi(V);
    } else if (Arg == "--jobs") {
      const char *V = needValue("--jobs");
      if (!V)
        return false;
      Opts.Jobs = static_cast<unsigned>(std::atoi(V));
    } else if (Arg == "--engine" || Arg.rfind("--engine=", 0) == 0) {
      // Both `--engine interp` and `--engine=interp` are accepted; the
      // inline form is what the docs show.
      std::string Which;
      if (Arg == "--engine") {
        const char *V = needValue("--engine");
        if (!V)
          return false;
        Which = V;
      } else {
        Which = Arg.substr(std::string("--engine=").size());
      }
      if (Which == "compiled") {
        Opts.CompileEngine = true;
      } else if (Which == "interp") {
        Opts.CompileEngine = false;
      } else {
        std::fprintf(stderr,
                     "error: --engine wants 'compiled' or 'interp'\n");
        return false;
      }
    } else if (Arg == "--egraph" || Arg.rfind("--egraph=", 0) == 0) {
      std::string Mode;
      if (Arg == "--egraph") {
        const char *V = needValue("--egraph");
        if (!V)
          return false;
        Mode = V;
      } else {
        Mode = Arg.substr(std::string("--egraph=").size());
      }
      if (Mode == "auto") {
        Opts.EGraph = EqSatMode::Auto;
      } else if (Mode == "off") {
        Opts.EGraph = EqSatMode::Off;
      } else if (Mode == "on") {
        Opts.EGraph = EqSatMode::On;
      } else {
        std::fprintf(stderr,
                     "error: --egraph wants 'on', 'off', or 'auto'\n");
        return false;
      }
    } else if (Arg == "--abstract") {
      const char *V = needValue("--abstract");
      if (!V)
        return false;
      Opts.AbstractSpec = V;
    } else if (Arg == "--rep-sort") {
      const char *V = needValue("--rep-sort");
      if (!V)
        return false;
      Opts.RepSort = V;
    } else if (Arg == "--phi") {
      const char *V = needValue("--phi");
      if (!V)
        return false;
      Opts.PhiName = V;
    } else if (Arg == "--map") {
      const char *V = needValue("--map");
      if (!V)
        return false;
      std::string Pair = V;
      size_t Eq = Pair.find('=');
      if (Eq == std::string::npos) {
        std::fprintf(stderr, "error: --map wants ABSTRACT=IMPL\n");
        return false;
      }
      Opts.OpMap.emplace_back(Pair.substr(0, Eq), Pair.substr(Eq + 1));
    } else if (Arg == "--invariant") {
      const char *V = needValue("--invariant");
      if (!V)
        return false;
      Opts.InvariantName = V;
    } else if (Arg == "--free") {
      Opts.FreeDomain = true;
    } else if (Arg == "--hom") {
      Opts.Homomorphism = true;
    } else if (Arg == "--random") {
      const char *V = needValue("--random");
      if (!V)
        return false;
      Opts.RandomCount = static_cast<size_t>(std::atoll(V));
    } else if (Arg == "--seed") {
      const char *V = needValue("--seed");
      if (!V)
        return false;
      Opts.Seed = static_cast<uint64_t>(std::atoll(V));
    } else if (Arg == "--uniformity") {
      Opts.Uniformity = true;
    } else if (Arg == "--oracle" || Arg.rfind("--oracle=", 0) == 0) {
      std::string Which;
      if (Arg == "--oracle") {
        const char *V = needValue("--oracle");
        if (!V)
          return false;
        Which = V;
      } else {
        Which = Arg.substr(std::string("--oracle=").size());
      }
      if (Which == "auto") {
        Opts.ForceObservers = false;
      } else if (Which == "observers") {
        Opts.ForceObservers = true;
      } else {
        std::fprintf(stderr,
                     "error: --oracle wants 'auto' or 'observers'\n");
        return false;
      }
    } else if (Arg == "--mutant") {
      const char *V = needValue("--mutant");
      if (!V)
        return false;
      Opts.Mutant = V;
    } else if (Arg == "--listen") {
      const char *V = needValue("--listen");
      if (!V)
        return false;
      Opts.ListenAddrs.push_back(V);
    } else if (Arg == "--connect") {
      const char *V = needValue("--connect");
      if (!V)
        return false;
      Opts.ConnectAddr = V;
    } else if (Arg == "--stress") {
      const char *V = needValue("--stress");
      if (!V)
        return false;
      Opts.StressSpec = V;
    } else if (Arg == "--workers") {
      const char *V = needValue("--workers");
      if (!V)
        return false;
      Opts.ServeWorkers = static_cast<unsigned>(std::atoi(V));
    } else if (Arg == "--queue-max") {
      const char *V = needValue("--queue-max");
      if (!V)
        return false;
      Opts.QueueMax = static_cast<unsigned>(std::atoi(V));
    } else if (Arg == "--cache-max") {
      const char *V = needValue("--cache-max");
      if (!V)
        return false;
      Opts.CacheMax = static_cast<unsigned>(std::atoi(V));
    } else if (Arg == "--max-steps") {
      const char *V = needValue("--max-steps");
      if (!V)
        return false;
      Opts.MaxSteps = static_cast<uint64_t>(std::atoll(V));
    } else if (Arg == "--deadline-ms") {
      const char *V = needValue("--deadline-ms");
      if (!V)
        return false;
      Opts.DeadlineMs = std::atoll(V);
    } else if (Arg == "--json") {
      Opts.Json = true;
    } else if (Arg == "--Werror") {
      Opts.WarningsAsErrors = true;
    } else if (!Arg.empty() && Arg[0] == '-' && Arg != "-") {
      std::fprintf(stderr, "error: unknown option '%s'\n", Arg.c_str());
      return false;
    } else {
      Opts.Files.push_back(Arg);
    }
  }
  return true;
}

/// Loads every requested builtin and file into \p WS. Returns false (with
/// diagnostics printed) on any failure.
bool loadAll(Workspace &WS, const Options &Opts,
             const std::vector<std::string> &Files) {
  for (const std::string &Name : Opts.Builtins) {
    std::string_view Text = server::builtinSpecText(Name);
    if (Text.empty()) {
      std::fprintf(stderr, "error: unknown builtin spec '%s'\n",
                   Name.c_str());
      return false;
    }
    if (Result<void> R = WS.load(Text, Name + ".alg"); !R) {
      std::fprintf(stderr, "%s", R.error().message().c_str());
      return false;
    }
  }
  for (const std::string &Path : Files) {
    Result<std::string> Text = readFile(Path);
    if (!Text) {
      std::fprintf(stderr, "error: %s\n", Text.error().message().c_str());
      return false;
    }
    if (Result<void> R = WS.load(*Text, Path); !R) {
      std::fprintf(stderr, "%s", R.error().message().c_str());
      return false;
    }
  }
  if (WS.specs().empty()) {
    std::fprintf(stderr, "error: no specs loaded; pass files or "
                         "--builtin\n");
    return false;
  }
  return true;
}


int cmdAxioms(Workspace &WS) {
  for (const Spec &S : WS.specs()) {
    std::printf("spec %s\n", S.name().c_str());
    for (OpId Op : S.operations()) {
      const OpInfo &Info = WS.context().op(Op);
      std::string Domain;
      for (size_t I = 0; I != Info.ArgSorts.size(); ++I) {
        if (I)
          Domain += ", ";
        Domain += WS.context().sortName(Info.ArgSorts[I]);
      }
      std::printf("  %s%-14s : %s -> %s\n",
                  Info.isConstructor() ? "*" : " ",
                  std::string(WS.context().opName(Op)).c_str(),
                  Domain.c_str(),
                  std::string(WS.context().sortName(Info.ResultSort))
                      .c_str());
    }
    for (const Axiom &Ax : S.axioms())
      std::printf("  (%u) %s\n", Ax.Number,
                  printAxiom(WS.context(), Ax).c_str());
    std::printf("(* marks constructors)\n\n");
  }
  return 0;
}


int cmdRun(Workspace &WS, const Options &Opts,
           const std::string &ProgramPath) {
  Result<std::string> Program = readFile(ProgramPath);
  if (!Program) {
    std::fprintf(stderr, "error: %s\n", Program.error().message().c_str());
    return 1;
  }
  EngineOptions EngineOpts;
  EngineOpts.Compile = Opts.CompileEngine;
  auto SessionOrErr = WS.session(EngineOpts);
  if (!SessionOrErr) {
    std::fprintf(stderr, "%s\n", SessionOrErr.error().message().c_str());
    return 1;
  }
  Session S = SessionOrErr.take();
  if (Result<void> R = S.runProgram(*Program); !R) {
    std::fprintf(stderr, "error: %s\n", R.error().message().c_str());
    return 1;
  }
  // Print the final value of every register assigned by the program, in
  // program order of first assignment (approximated by scanning lines).
  std::string Line;
  std::istringstream In(*Program);
  std::vector<std::string> Printed;
  while (std::getline(In, Line)) {
    size_t Pos = Line.find(":=");
    if (Pos == std::string::npos)
      continue;
    std::string Name = Line.substr(0, Pos);
    Name.erase(0, Name.find_first_not_of(" \t"));
    Name.erase(Name.find_last_not_of(" \t") + 1);
    if (Name.empty() ||
        std::find(Printed.begin(), Printed.end(), Name) != Printed.end())
      continue;
    Printed.push_back(Name);
    TermId Value = S.lookup(Name);
    if (Value.isValid())
      std::printf("%s = %s\n", Name.c_str(),
                  printTerm(WS.context(), Value).c_str());
  }
  (void)Opts;
  return 0;
}


int cmdEnum(Workspace &WS, const Options &Opts) {
  if (Opts.SortName.empty()) {
    std::fprintf(stderr, "error: enum needs -s <sort>\n");
    return 2;
  }
  SortId Sort = WS.context().lookupSort(Opts.SortName);
  if (!Sort.isValid()) {
    std::fprintf(stderr, "error: unknown sort '%s'\n",
                 Opts.SortName.c_str());
    return 1;
  }
  TermEnumerator Enumerator(WS.context());
  const std::vector<TermId> &Terms = Enumerator.enumerate(Sort, Opts.Depth);
  for (TermId Term : Terms)
    std::printf("%s\n", printTerm(WS.context(), Term).c_str());
  std::fprintf(stderr, "%zu term(s) of sort %s up to depth %u%s\n",
               Terms.size(), Opts.SortName.c_str(), Opts.Depth,
               Enumerator.wasTruncated(Sort, Opts.Depth) ? " (truncated)"
                                                         : "");
  return 0;
}

/// `algspec testgen`: compile every loaded spec into an axiom-derived
/// test campaign and run it against the C++ implementation the registry
/// binds to that spec name. Exit 0 when every campaign passes, 1 on any
/// counterexample or obstruction, 2 on usage errors.
int cmdTestgen(Workspace &WS, const Options &Opts) {
  if (Opts.Uniformity && Opts.RandomCount) {
    std::fprintf(stderr, "error: --uniformity and --random are different "
                         "selection hypotheses; pick one\n");
    return 2;
  }
  if (!Opts.Mutant.empty()) {
    bool Known = false;
    for (const adt::AdtBinding &Row : adt::adtBindings())
      for (const adt::MutantInfo &M : Row.Mutants)
        Known |= M.Name == Opts.Mutant;
    if (!Known) {
      std::fprintf(stderr, "error: unknown mutant '%s'; known mutants:\n",
                   Opts.Mutant.c_str());
      for (const adt::AdtBinding &Row : adt::adtBindings())
        for (const adt::MutantInfo &M : Row.Mutants)
          std::fprintf(stderr, "  %s (%s): %s\n",
                       std::string(M.Name).c_str(),
                       std::string(Row.SpecName).c_str(),
                       std::string(M.Description).c_str());
      return 2;
    }
  }

  // Spec-side engine, so counterexamples carry the normal form the
  // axioms compute for the failing instance.
  EngineOptions EngineOpts;
  EngineOpts.Compile = Opts.CompileEngine;
  auto SessionOrErr = WS.session(EngineOpts);
  if (!SessionOrErr) {
    std::fprintf(stderr, "%s\n", SessionOrErr.error().message().c_str());
    return 1;
  }
  Session Sess = SessionOrErr.take();

  TestGenOptions TG;
  TG.MaxDepth = Opts.Depth;
  TG.RandomCount = Opts.RandomCount;
  TG.Seed = Opts.Seed;
  TG.Uniformity = Opts.Uniformity;
  TG.ForceObservers = Opts.ForceObservers;
  TG.Par.Jobs = Opts.Jobs;
  TG.SpecEngine = &Sess.engine();

  std::vector<const Spec *> AllSpecs = WS.specPointers();
  bool AllPassed = true;
  uint64_t Planned = 0, Run = 0, Failures = 0, ShrinkSteps = 0;
  JsonWriter W;
  if (Opts.Json) {
    W.beginObject();
    W.key("command").value("testgen");
    W.key("specs").beginArray();
  }
  for (const Spec &S : WS.specs()) {
    TestGenReport Report;
    const adt::AdtBinding *Row = adt::findAdtBinding(S.name());
    if (!Row) {
      Report.SpecName = S.name();
      Report.AllPassed = false;
      Report.Obstructions.push_back(
          {"unknown-implementation",
           "no C++ implementation is registered for spec '" + S.name() +
               "'"});
    } else {
      // The mutant applies only to the row that declares it; the other
      // campaigns run against the healthy implementations.
      std::string_view Mutant;
      for (const adt::MutantInfo &M : Row->Mutants)
        if (M.Name == Opts.Mutant)
          Mutant = Opts.Mutant;
      ModelBinding B(WS.context());
      if (Result<void> R = Row->Install(B, S, Mutant); !R) {
        Report.SpecName = S.name();
        Report.Impl = Row->Impl;
        Report.AllPassed = false;
        Report.Obstructions.push_back(
            {"binding-install", R.error().message()});
      } else {
        TestGenOptions Local = TG;
        Local.BindingFactory =
            [Row, Mutant, SpecName = S.name()](AlgebraContext &RCtx,
                                               std::span<const Spec> RSpecs)
            -> std::unique_ptr<ModelBinding> {
          const Spec *RS = nullptr;
          for (const Spec &Candidate : RSpecs)
            if (Candidate.name() == SpecName)
              RS = &Candidate;
          if (!RS)
            return nullptr;
          auto RB = std::make_unique<ModelBinding>(RCtx);
          if (!Row->Install(*RB, *RS, Mutant))
            return nullptr;
          return RB;
        };
        Report = runTestGen(WS.context(), S, AllSpecs, B, Local);
        Report.Impl = Row->Impl;
      }
    }
    AllPassed &= Report.AllPassed;
    Planned += Report.TotalPlanned;
    Run += Report.TotalRun;
    Failures += Report.TotalFailures;
    ShrinkSteps += Report.TotalShrinkSteps;
    if (Opts.Json)
      Report.writeJson(W, TG);
    else
      std::printf("%s", Report.render(TG).c_str());
  }
  if (Opts.Json) {
    W.endArray();
    W.key("stats").beginObject();
    W.key("campaign").beginObject();
    W.key("planned").value(Planned);
    W.key("run").value(Run);
    W.key("failures").value(Failures);
    W.key("shrinkSteps").value(ShrinkSteps);
    W.endObject();
    W.endObject();
    W.endObject();
    std::printf("%s\n", W.str().c_str());
  }
  return AllPassed ? 0 : 1;
}

//===----------------------------------------------------------------------===//
// The servable subcommands (check, lint, analyze, eval, trace, verify)
// run through the shared command layer in src/server/Commands — the
// same code `algspec serve` dispatches, which is what makes a served
// response byte-identical to the one-shot CLI by construction.
//===----------------------------------------------------------------------===//

/// Resolves builtins and reads files into the command layer's source
/// list, printing the CLI's usual diagnostics on failure.
bool gatherSources(const Options &Opts,
                   const std::vector<std::string> &Files,
                   std::vector<server::SourceFile> &Out) {
  for (const std::string &Name : Opts.Builtins) {
    std::string_view Text = server::builtinSpecText(Name);
    if (Text.empty()) {
      std::fprintf(stderr, "error: unknown builtin spec '%s'\n",
                   Name.c_str());
      return false;
    }
    Out.push_back({Name + ".alg", std::string(Text)});
  }
  for (const std::string &Path : Files) {
    Result<std::string> Text = readFile(Path);
    if (!Text) {
      std::fprintf(stderr, "error: %s\n", Text.error().message().c_str());
      return false;
    }
    Out.push_back({Path, Text.take()});
  }
  return true;
}

server::CommandOptions toCommandOptions(const Options &Opts) {
  server::CommandOptions C;
  C.TermText = Opts.TermText;
  C.Depth = Opts.Depth;
  C.DynamicDepth = Opts.DynamicDepth;
  C.Jobs = Opts.Jobs;
  C.CompileEngine = Opts.CompileEngine;
  C.EGraph = Opts.EGraph;
  C.Json = Opts.Json;
  C.WarningsAsErrors = Opts.WarningsAsErrors;
  C.AbstractSpec = Opts.AbstractSpec;
  C.RepSort = Opts.RepSort;
  C.PhiName = Opts.PhiName;
  C.OpMap = Opts.OpMap;
  C.InvariantName = Opts.InvariantName;
  C.FreeDomain = Opts.FreeDomain;
  C.Homomorphism = Opts.Homomorphism;
  return C;
}

int runServable(const Options &Opts) {
  server::CommandRequest R;
  R.Command = Opts.Command;
  if (!gatherSources(Opts, Opts.Files, R.Sources))
    return 1;
  R.Opts = toCommandOptions(Opts);
  server::CommandResult Res = server::runCommand(R);
  std::fwrite(Res.Out.data(), 1, Res.Out.size(), stdout);
  std::fwrite(Res.Err.data(), 1, Res.Err.size(), stderr);
  return Res.ExitCode;
}

int cmdVersion() {
  std::printf("algspec %s (%s build, %s engine)\n",
              server::gitVersion().c_str(), server::buildType().c_str(),
              server::defaultEngineName());
  return 0;
}

int cmdServe(const Options &Opts) {
  server::ServerOptions SO;
  for (const std::string &Text : Opts.ListenAddrs) {
    Result<SocketAddress> Addr = SocketAddress::parse(Text);
    if (!Addr) {
      std::fprintf(stderr, "error: %s\n", Addr.error().message().c_str());
      return 2;
    }
    SO.Listen.push_back(*Addr);
  }
  if (SO.Listen.empty()) {
    std::fprintf(stderr, "error: serve needs --listen unix:<path> or "
                         "--listen tcp:<host>:<port>\n");
    return 2;
  }
  SO.Workers = Opts.ServeWorkers;
  SO.QueueMax = Opts.QueueMax;
  SO.CacheMaxEntries = Opts.CacheMax;
  SO.MaxSteps = Opts.MaxSteps;
  SO.DefaultDeadlineMs = Opts.DeadlineMs;
  SO.Verbose = true;
  if (Result<void> R = server::serveForever(std::move(SO)); !R) {
    std::fprintf(stderr, "error: %s\n", R.error().message().c_str());
    return 1;
  }
  return 0;
}

int cmdClient(const Options &Opts) {
  if (Opts.ConnectAddr.empty()) {
    std::fprintf(stderr, "error: client needs --connect <addr>\n");
    return 2;
  }
  Result<SocketAddress> Addr = SocketAddress::parse(Opts.ConnectAddr);
  if (!Addr) {
    std::fprintf(stderr, "error: %s\n", Addr.error().message().c_str());
    return 2;
  }

  if (!Opts.StressSpec.empty()) {
    unsigned Connections = 0, Requests = 0;
    if (std::sscanf(Opts.StressSpec.c_str(), "%ux%u", &Connections,
                    &Requests) != 2 ||
        Connections == 0 || Requests == 0) {
      std::fprintf(stderr, "error: --stress wants NxM, got '%s'\n",
                   Opts.StressSpec.c_str());
      return 2;
    }
    server::StressOptions SO;
    SO.Connections = Connections;
    SO.RequestsPerConnection = Requests;
    SO.Jobs = Opts.Jobs ? Opts.Jobs : 1;
    Result<server::StressReport> Report = server::runStress(*Addr, SO);
    if (!Report) {
      std::fprintf(stderr, "error: %s\n",
                   Report.error().message().c_str());
      return 1;
    }
    std::printf("stress: %llu sent, %llu byte-identical, %llu mismatched, "
                "%llu transport error(s); stats %s (%s)\n",
                static_cast<unsigned long long>(Report->Sent),
                static_cast<unsigned long long>(Report->Matched),
                static_cast<unsigned long long>(Report->Mismatched),
                static_cast<unsigned long long>(Report->TransportErrors),
                Report->StatsReconciled ? "reconciled" : "OFF",
                Report->StatsDetail.c_str());
    if (!Report->ok()) {
      if (!Report->FirstMismatch.empty())
        std::fprintf(stderr, "first failure: %s\n",
                     Report->FirstMismatch.c_str());
      return 1;
    }
    return 0;
  }

  if (Opts.Files.empty()) {
    std::fprintf(stderr, "error: client needs a request type (hello, "
                         "stats, or a command)\n");
    return 2;
  }
  std::string Type = Opts.Files.front();
  std::vector<std::string> Rest(Opts.Files.begin() + 1, Opts.Files.end());

  if (server::isControlRequest(Type)) {
    Result<server::WireResponse> Resp = server::requestOnce(
        *Addr, server::encodeControlRequest("", Type));
    if (!Resp) {
      std::fprintf(stderr, "error: %s\n", Resp.error().message().c_str());
      return 1;
    }
    std::printf("%s\n", Resp->Raw.c_str());
    return 0;
  }

  if (!server::isServableCommand(Type)) {
    std::fprintf(stderr, "error: unknown request type '%s'\n",
                 Type.c_str());
    return 2;
  }
  server::CommandRequest R;
  R.Command = Type;
  if (!gatherSources(Opts, Rest, R.Sources))
    return 1;
  R.Opts = toCommandOptions(Opts);
  Result<server::WireResponse> Resp = server::requestOnce(
      *Addr, server::encodeCommandRequest("", R, Opts.DeadlineMs));
  if (!Resp) {
    std::fprintf(stderr, "error: %s\n", Resp.error().message().c_str());
    return 1;
  }
  if (Resp->Type != "response") {
    std::fprintf(stderr, "error: server replied %s: %s\n",
                 Resp->ErrorCode.c_str(), Resp->ErrorMessage.c_str());
    return 1;
  }
  std::fwrite(Resp->Out.data(), 1, Resp->Out.size(), stdout);
  std::fwrite(Resp->Err.data(), 1, Resp->Err.size(), stderr);
  return Resp->Exit;
}

} // namespace

int main(int Argc, char **Argv) {
  Options Opts;
  if (!parseArgs(Argc, Argv, Opts))
    return usage();

  if (server::isServableCommand(Opts.Command))
    return runServable(Opts);
  if (Opts.Command == "serve")
    return cmdServe(Opts);
  if (Opts.Command == "client")
    return cmdClient(Opts);
  if (Opts.Command == "version")
    return cmdVersion();

  Workspace WS;

  if (Opts.Command == "axioms") {
    if (!loadAll(WS, Opts, Opts.Files))
      return 1;
    return cmdAxioms(WS);
  }
  if (Opts.Command == "fmt") {
    if (!loadAll(WS, Opts, Opts.Files))
      return 1;
    for (const Spec &S : WS.specs())
      std::printf("%s\n", printSpec(WS.context(), S).c_str());
    return 0;
  }
  if (Opts.Command == "run") {
    // The last file is the program; the rest are specs.
    if (Opts.Files.empty() && Opts.Builtins.empty()) {
      std::fprintf(stderr, "error: run needs specs and a program file\n");
      return 2;
    }
    std::vector<std::string> SpecFiles = Opts.Files;
    if (SpecFiles.empty()) {
      std::fprintf(stderr, "error: run needs a program file\n");
      return 2;
    }
    std::string ProgramPath = SpecFiles.back();
    SpecFiles.pop_back();
    if (!loadAll(WS, Opts, SpecFiles))
      return 1;
    return cmdRun(WS, Opts, ProgramPath);
  }
  if (Opts.Command == "enum") {
    if (!loadAll(WS, Opts, Opts.Files))
      return 1;
    return cmdEnum(WS, Opts);
  }
  if (Opts.Command == "testgen") {
    if (!loadAll(WS, Opts, Opts.Files))
      return 1;
    return cmdTestgen(WS, Opts);
  }
  if (Opts.Command == "skeleton") {
    if (!loadAll(WS, Opts, Opts.Files))
      return 1;
    for (const Spec &S : WS.specs()) {
      std::printf("-- skeleton for spec %s\n", S.name().c_str());
      SkeletonReport Report = generateSkeletons(WS.context(), S);
      std::printf("%s\n", Report.render(WS.context()).c_str());
    }
    return 0;
  }
  return usage();
}
