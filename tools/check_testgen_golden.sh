#!/usr/bin/env bash
#===----------------------------------------------------------------------===//
#
# Part of AlgSpec. MIT license.
#
#===----------------------------------------------------------------------===//
#
# Diffs every committed testgen golden corpus against the live CLI.
#
# Each corpus under tests/testgen_golden/<name>/ holds the campaign's
# arguments (inputs/cmd) and its committed outputs (expected/report.txt,
# expected/report.json, expected/exit). For each corpus the script runs
# the campaign at --jobs 1, byte-diffs the text and JSON reports and
# compares the exit code, then re-runs both at --jobs 4: a testgen
# report must be byte-identical at any job count, so the sharded runs
# diff against the same committed files.
#
# Usage: check_testgen_golden.sh <algspec-binary> [corpus-root]
#
set -u

BIN=${1:?usage: check_testgen_golden.sh <algspec-binary> [corpus-root]}
ROOT=${2:-$(cd "$(dirname "$0")/.." && pwd)/tests/testgen_golden}

if [ ! -d "$ROOT" ]; then
  echo "error: corpus root '$ROOT' not found" >&2
  exit 2
fi

WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT

failures=0
corpora=0

check() { # check <corpus> <label> <expected-file> <got-file>
  if ! diff -u "$3" "$4" > "$WORK/diff.out" 2>&1; then
    echo "FAIL $1: $2 differs from committed golden"
    sed 's/^/  /' "$WORK/diff.out"
    failures=$((failures + 1))
  fi
}

for dir in "$ROOT"/*/; do
  name=$(basename "$dir")
  corpora=$((corpora + 1))
  # shellcheck disable=SC2086 # the cmd file is a flat argument list
  args=$(cat "$dir/inputs/cmd")
  want_exit=$(cat "$dir/expected/exit")

  for jobs in 1 4; do
    "$BIN" testgen $args --jobs $jobs \
      > "$WORK/report.txt" 2>&1
    got_exit=$?
    if [ "$got_exit" != "$want_exit" ]; then
      echo "FAIL $name: exit $got_exit at --jobs $jobs," \
        "expected $want_exit"
      failures=$((failures + 1))
    fi
    check "$name" "text report (--jobs $jobs)" \
      "$dir/expected/report.txt" "$WORK/report.txt"

    "$BIN" testgen $args --jobs $jobs --json \
      > "$WORK/report.json" 2>&1
    got_exit=$?
    if [ "$got_exit" != "$want_exit" ]; then
      echo "FAIL $name: --json exit $got_exit at --jobs $jobs," \
        "expected $want_exit"
      failures=$((failures + 1))
    fi
    check "$name" "JSON report (--jobs $jobs)" \
      "$dir/expected/report.json" "$WORK/report.json"
  done
done

if [ "$corpora" -eq 0 ]; then
  echo "error: no corpora under '$ROOT'" >&2
  exit 2
fi

if [ "$failures" -ne 0 ]; then
  echo "testgen goldens: $failures mismatch(es) across $corpora corpora"
  exit 1
fi
echo "testgen goldens: $corpora corpora byte-identical at --jobs 1 and 4"
