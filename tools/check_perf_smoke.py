#!/usr/bin/env python3
"""Advisory compiled-vs-interp perf smoke over a bench_rewrite JSON report.

Reads a google-benchmark JSON file and pairs every
BM_ManyRuleDispatch/<rules>/1 (compiled) entry with its /<rules>/0
(interp) twin. Prints the speedup table and emits a GitHub Actions
``::warning`` line when the compiled engine is slower than the
interpreter on any rule count. The exit code is always 0: short
CI timings on shared runners are too noisy to gate a merge, so this
step logs regressions instead of flaking builds.

usage: tools/check_perf_smoke.py <bench_rewrite.json>
"""

import json
import sys


def main() -> int:
    if len(sys.argv) != 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    with open(sys.argv[1]) as f:
        report = json.load(f)

    # name -> cpu_time, only aggregate-free real runs.
    times = {}
    for bench in report.get("benchmarks", []):
        if bench.get("run_type") == "iteration":
            times[bench["name"]] = bench["cpu_time"]

    rows = []
    for name, compiled in sorted(times.items()):
        parts = name.split("/")
        if parts[0] != "BM_ManyRuleDispatch" or parts[-1] != "1":
            continue
        twin = "/".join(parts[:-1]) + "/0"
        if twin not in times:
            continue
        rows.append((parts[1], times[twin], compiled))

    if not rows:
        print("::warning::perf smoke found no BM_ManyRuleDispatch "
              "compiled/interp pairs in the report")
        return 0

    slower = []
    print(f"{'rules':>8} {'interp ns':>12} {'compiled ns':>12} {'speedup':>8}")
    for rules, interp, compiled in rows:
        speedup = interp / compiled if compiled else float("inf")
        print(f"{rules:>8} {interp:>12.1f} {compiled:>12.1f} {speedup:>7.2f}x")
        if compiled > interp:
            slower.append(rules)

    if slower:
        print("::warning::compiled engine slower than interpreter on "
              f"BM_ManyRuleDispatch rule counts: {', '.join(slower)} "
              "(advisory; timings on shared runners are noisy)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
