#!/usr/bin/env python3
"""Advisory perf smoke over google-benchmark JSON reports.

Two series are understood, each optional in the input:

* ``BM_ManyRuleDispatch/<rules>/1`` (compiled) against its
  ``/<rules>/0`` (interp) twin — the compiled rewrite engine must not
  be slower than the reference interpreter on the many-rule dispatch
  workload it exists to win;
* ``BM_ConsistencyCertified/<depth>`` against
  ``BM_ConsistencyGroundSweep/<depth>`` — a consistency check holding
  a convergence certificate skips the R x R critical-pair sweep, so
  it must beat the uncertified sweep at every depth;
* ``BM_EpochTruncateReuse`` against ``BM_FreshContextRebuild`` —
  truncating a warm arena back to a marked epoch and reusing it must
  beat re-elaborating a fresh context per request, which is the whole
  point of the epoch lifecycle;
* ``BM_CompletenessCertified/<depth>`` against
  ``BM_CompletenessGroundSweep/<depth>`` — a completeness check holding
  a covering exhaustiveness certificate skips the bounded ground sweep,
  so it must beat the uncertified sweep at every depth;
* ``BM_VerifyScreened/<depth>`` against ``BM_VerifySweepOnly/<depth>``
  — the equality-saturation oracle discharges verification obligations
  for every instance at once, so the screened verify must beat the
  per-instance sweep at every depth; ``BM_VerifyReachable/<depth>``
  (bench_verify's series, which runs with the oracle's default
  ``--egraph=auto``) is held to the same twin when both reports are
  given, pinning the shipped default to the win;
* ``BM_TestgenUniform/<depth>`` against ``BM_TestgenFull/<depth>`` —
  a testgen campaign under the uniformity hypothesis plans one
  representative per variable/constructor-case cell while the full
  enumerative plan grows exponentially with depth, so uniformity must
  beat the full sweep at every depth.

Reads one or more JSON files (their benchmark lists are merged),
prints a speedup table per series, and emits a GitHub Actions
``::warning`` line on regression. The exit code is always 0: short
CI timings on shared runners are too noisy to gate a merge, so this
step logs regressions instead of flaking builds.

usage: tools/check_perf_smoke.py <bench.json> [<bench.json> ...]
"""

import json
import sys


def load_times(paths):
    """name -> (cpu_time, time_unit), only aggregate-free real runs."""
    times = {}
    for path in paths:
        with open(path) as f:
            report = json.load(f)
        for bench in report.get("benchmarks", []):
            if bench.get("run_type") == "iteration":
                times[bench["name"]] = (bench["cpu_time"],
                                        bench.get("time_unit", "ns"))
    return times


def paired_rows(times, fast_of):
    """(label, slow_time, fast_time, unit) rows; fast_of: name -> twin."""
    rows = []
    for name, (fast, unit) in sorted(times.items()):
        pair = fast_of(name)
        if pair is None:
            continue
        label, twin = pair
        if twin in times:
            rows.append((label, times[twin][0], fast, unit))
    return rows


def dispatch_pair(name):
    parts = name.split("/")
    if parts[0] != "BM_ManyRuleDispatch" or parts[-1] != "1":
        return None
    return parts[1], "/".join(parts[:-1]) + "/0"


def certified_pair(name):
    parts = name.split("/")
    if parts[0] != "BM_ConsistencyCertified" or len(parts) != 2:
        return None
    return parts[1], "BM_ConsistencyGroundSweep/" + parts[1]


def epoch_pair(name):
    if name != "BM_EpochTruncateReuse":
        return None
    return "reuse", "BM_FreshContextRebuild"


def completeness_pair(name):
    parts = name.split("/")
    if parts[0] != "BM_CompletenessCertified" or len(parts) != 2:
        return None
    return parts[1], "BM_CompletenessGroundSweep/" + parts[1]


def egraph_pair(name):
    parts = name.split("/")
    if parts[0] != "BM_VerifyScreened" or len(parts) != 2:
        return None
    return parts[1], "BM_VerifySweepOnly/" + parts[1]


def verify_default_pair(name):
    parts = name.split("/")
    if parts[0] != "BM_VerifyReachable" or len(parts) != 2:
        return None
    return parts[1], "BM_VerifySweepOnly/" + parts[1]


def testgen_pair(name):
    parts = name.split("/")
    if parts[0] != "BM_TestgenUniform" or len(parts) != 2:
        return None
    return parts[1], "BM_TestgenFull/" + parts[1]


def report_series(title, key, rows, slow_name, fast_name):
    """Print one speedup table; return labels where fast lost."""
    print(title)
    slower = []
    unit = rows[0][3]
    print(f"{key:>8} {slow_name + ' ' + unit:>14} "
          f"{fast_name + ' ' + unit:>14} {'speedup':>8}")
    for label, slow, fast, _ in rows:
        speedup = slow / fast if fast else float("inf")
        print(f"{label:>8} {slow:>14.3f} {fast:>14.3f} {speedup:>7.2f}x")
        if fast > slow:
            slower.append(label)
    return slower


def main() -> int:
    if len(sys.argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    times = load_times(sys.argv[1:])

    found_any = False

    rows = paired_rows(times, dispatch_pair)
    if rows:
        found_any = True
        slower = report_series("compiled engine vs interpreter:", "rules",
                               rows, "interp", "compiled")
        if slower:
            print("::warning::compiled engine slower than interpreter on "
                  f"BM_ManyRuleDispatch rule counts: {', '.join(slower)} "
                  "(advisory; timings on shared runners are noisy)")

    rows = paired_rows(times, certified_pair)
    if rows:
        found_any = True
        slower = report_series("certified consistency vs ground sweep:",
                               "depth", rows, "sweep", "certified")
        if slower:
            print("::warning::certified consistency check slower than the "
                  "uncertified ground sweep at depths: "
                  f"{', '.join(slower)} (advisory; timings on shared "
                  "runners are noisy)")

    rows = paired_rows(times, epoch_pair)
    if rows:
        found_any = True
        slower = report_series("epoch truncate+reuse vs fresh rebuild:",
                               "mode", rows, "rebuild", "reuse")
        if slower:
            print("::warning::epoch truncate+reuse slower than rebuilding "
                  "a fresh context per request (advisory; timings on "
                  "shared runners are noisy)")

    rows = paired_rows(times, completeness_pair)
    if rows:
        found_any = True
        slower = report_series("certified completeness vs ground sweep:",
                               "depth", rows, "sweep", "certified")
        if slower:
            print("::warning::certified completeness check slower than the "
                  "uncertified ground sweep at depths: "
                  f"{', '.join(slower)} (advisory; timings on shared "
                  "runners are noisy)")

    rows = paired_rows(times, egraph_pair)
    if rows:
        found_any = True
        slower = report_series("eq-saturation screen vs instance sweep:",
                               "depth", rows, "sweep", "screened")
        if slower:
            print("::warning::screened verification slower than the "
                  "per-instance sweep at depths: "
                  f"{', '.join(slower)} (advisory; timings on shared "
                  "runners are noisy)")

    rows = paired_rows(times, verify_default_pair)
    if rows:
        found_any = True
        slower = report_series("default verify (egraph=auto) vs "
                               "instance sweep:",
                               "depth", rows, "sweep", "default")
        if slower:
            print("::warning::default verify (egraph=auto) slower than "
                  "the per-instance sweep at depths: "
                  f"{', '.join(slower)} (advisory; timings on shared "
                  "runners are noisy)")

    rows = paired_rows(times, testgen_pair)
    if rows:
        found_any = True
        slower = report_series("uniformity campaign vs full enumeration:",
                               "depth", rows, "full", "uniform")
        if slower:
            print("::warning::uniformity testgen campaign slower than the "
                  "full enumerative sweep at depths: "
                  f"{', '.join(slower)} (advisory; timings on shared "
                  "runners are noisy)")

    if not found_any:
        print("::warning::perf smoke found no known benchmark pairs "
              "in the report")
    return 0


if __name__ == "__main__":
    sys.exit(main())
