#!/usr/bin/env bash
# Runs every benchmark binary in build/bench/ and records one JSON file
# per binary at the repository root: BENCH_<name>.json. Committing these
# gives every change a recorded baseline to diff against.
#
# usage: tools/run_benches.sh [--allow-debug] [build-dir] [extra benchmark args...]
#
# The build directory must be configured with CMAKE_BUILD_TYPE=Release:
# numbers from an unoptimized build are not baselines, and the stock
# "library_build_type" context key only describes the (possibly
# distro-packaged) benchmark library, not this project. The script reads
# the real build type from CMakeCache.txt and refuses anything else
# unless --allow-debug is given (in which case nothing is recorded to
# the repository root — the JSON lands in BENCH_DEBUG_<name>.json so a
# debug sweep can never silently become the committed baseline).
#
# Extra arguments are passed to every binary, e.g.
#   tools/run_benches.sh build --benchmark_min_time=0.05
# for a quick sweep, or
#   tools/run_benches.sh build --benchmark_filter=Jobs
# for just the thread-scaling series.
#
# Every report is stamped with the detected core count
# (algspec_detected_cores). On machines with fewer cores than the
# largest jobs-scaling argument the BM_*Jobs* series are skipped — an
# oversubscribed "scaling" curve is not a baseline — and the reason is
# stamped as algspec_jobs_series_skipped. An explicit
# --benchmark_filter in the extra arguments overrides the skip.
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"

ALLOW_DEBUG=0
if [ "${1:-}" = "--allow-debug" ]; then
    ALLOW_DEBUG=1
    shift
fi

BUILD_DIR="${1:-build}"
shift $(( $# > 0 ? 1 : 0 ))
BENCH_DIR="$REPO_ROOT/$BUILD_DIR/bench"
CACHE="$REPO_ROOT/$BUILD_DIR/CMakeCache.txt"

if [ ! -d "$BENCH_DIR" ]; then
    echo "error: $BENCH_DIR does not exist; build the project first" >&2
    echo "  cmake -S . -B $BUILD_DIR -DCMAKE_BUILD_TYPE=Release && cmake --build $BUILD_DIR -j" >&2
    exit 1
fi

BUILD_TYPE=""
if [ -f "$CACHE" ]; then
    BUILD_TYPE="$(sed -n 's/^CMAKE_BUILD_TYPE:[^=]*=//p' "$CACHE" | head -n 1)"
fi
BUILD_TYPE_LOWER="$(printf '%s' "$BUILD_TYPE" | tr '[:upper:]' '[:lower:]')"

if [ "$BUILD_TYPE_LOWER" != "release" ]; then
    if [ "$ALLOW_DEBUG" = 1 ]; then
        echo "warning: build type is '${BUILD_TYPE:-<unset>}', not Release;" >&2
        echo "warning: recording to BENCH_DEBUG_*.json only (not baselines)" >&2
    else
        echo "error: $BUILD_DIR has CMAKE_BUILD_TYPE='${BUILD_TYPE:-<unset>}', not Release." >&2
        echo "error: benchmark baselines must come from an optimized build:" >&2
        echo "  cmake -S . -B $BUILD_DIR -DCMAKE_BUILD_TYPE=Release && cmake --build $BUILD_DIR -j" >&2
        echo "error: pass --allow-debug to run anyway (results are NOT recorded as baselines)" >&2
        exit 1
    fi
fi

# The jobs-scaling series (BM_*Jobs*) measure the worker-pool speedup
# up to this many jobs; on a machine with fewer cores the "scaling"
# numbers are just oversubscription noise. Detect the core count, stamp
# it into every report (algspec_detected_cores), and when it cannot
# carry the series, skip the series and stamp the reason instead of
# recording misleading flat curves as baselines.
MAX_SCALING_JOBS=8
CORES="$(nproc 2>/dev/null || getconf _NPROCESSORS_ONLN 2>/dev/null || echo 1)"
SKIP_JOBS_NOTE=""
SKIP_JOBS_FILTER=()
if [ "$CORES" -lt "$MAX_SCALING_JOBS" ]; then
    SKIP_JOBS_NOTE="jobs-scaling series skipped: detected $CORES core(s) < $MAX_SCALING_JOBS max jobs"
    # A leading '-' makes the filter an exclusion; user-supplied
    # --benchmark_filter args come later and override it.
    SKIP_JOBS_FILTER=("--benchmark_filter=-.*Jobs.*")
    echo "note: $SKIP_JOBS_NOTE" >&2
fi

STATUS=0
FOUND=0
for BIN in "$BENCH_DIR"/*; do
    [ -f "$BIN" ] && [ -x "$BIN" ] || continue
    FOUND=1
    NAME="$(basename "$BIN")"
    if [ "$BUILD_TYPE_LOWER" = "release" ]; then
        OUT="$REPO_ROOT/BENCH_${NAME}.json"
    else
        OUT="$REPO_ROOT/BENCH_DEBUG_${NAME}.json"
    fi
    echo "== $NAME -> $(basename "$OUT")"
    # One interpreter per binary so RUSAGE_CHILDREN is exactly this run:
    # the wrapper records the binary's peak RSS into the report context
    # (algspec_peak_rss_kb) so committed baselines carry a memory curve
    # next to the timings.
    if ! ALGSPEC_DETECTED_CORES="$CORES" \
         ALGSPEC_JOBS_SKIP_NOTE="$SKIP_JOBS_NOTE" \
         python3 - "$BIN" "$OUT.tmp" ${SKIP_JOBS_FILTER[@]+"${SKIP_JOBS_FILTER[@]}"} "$@" <<'PYEOF'
import json, os, resource, subprocess, sys

bin_path, out_path, *extra = sys.argv[1:]
with open(out_path, "w") as out:
    rc = subprocess.call([bin_path, "--benchmark_format=json", *extra],
                         stdout=out)
if rc != 0:
    sys.exit(rc)
peak_kb = resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss
with open(out_path) as f:
    data = json.load(f)
ctx = data.setdefault("context", {})
ctx["algspec_peak_rss_kb"] = peak_kb
ctx["algspec_detected_cores"] = int(os.environ["ALGSPEC_DETECTED_CORES"])
note = os.environ.get("ALGSPEC_JOBS_SKIP_NOTE", "")
if note:
    ctx["algspec_jobs_series_skipped"] = note
with open(out_path, "w") as f:
    json.dump(data, f, indent=2)
    f.write("\n")
PYEOF
    then
        echo "error: $NAME failed; leaving $(basename "$OUT") untouched" >&2
        rm -f "$OUT.tmp"
        STATUS=1
        continue
    fi
    # The library_build_type key describes how the *benchmark library*
    # was compiled (a distro libbenchmark reports its own packaging).
    # Having verified the project's build type from CMakeCache.txt —
    # and with BenchMain.h stamping algspec_build_type from the compile
    # itself — rewrite the misleading key to the verified truth.
    if [ "$BUILD_TYPE_LOWER" = "release" ]; then
        python3 - "$OUT.tmp" <<'PYEOF'
import json, sys
path = sys.argv[1]
with open(path) as f:
    data = json.load(f)
ctx = data.get("context", {})
ctx["library_build_type"] = "release"
with open(path, "w") as f:
    json.dump(data, f, indent=2)
    f.write("\n")
PYEOF
    fi
    mv "$OUT.tmp" "$OUT"
done

if [ "$FOUND" = 0 ]; then
    echo "error: no benchmark binaries in $BENCH_DIR" >&2
    exit 1
fi
exit $STATUS
