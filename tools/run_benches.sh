#!/usr/bin/env bash
# Runs every benchmark binary in build/bench/ and records one JSON file
# per binary at the repository root: BENCH_<name>.json. Committing these
# gives every change a recorded baseline to diff against.
#
# usage: tools/run_benches.sh [build-dir] [extra benchmark args...]
#
# Extra arguments are passed to every binary, e.g.
#   tools/run_benches.sh build --benchmark_min_time=0.05
# for a quick sweep, or
#   tools/run_benches.sh build --benchmark_filter=Jobs
# for just the thread-scaling series.
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="${1:-build}"
shift $(( $# > 0 ? 1 : 0 ))
BENCH_DIR="$REPO_ROOT/$BUILD_DIR/bench"

if [ ! -d "$BENCH_DIR" ]; then
    echo "error: $BENCH_DIR does not exist; build the project first" >&2
    echo "  cmake -S . -B $BUILD_DIR && cmake --build $BUILD_DIR -j" >&2
    exit 1
fi

STATUS=0
FOUND=0
for BIN in "$BENCH_DIR"/*; do
    [ -f "$BIN" ] && [ -x "$BIN" ] || continue
    FOUND=1
    NAME="$(basename "$BIN")"
    OUT="$REPO_ROOT/BENCH_${NAME}.json"
    echo "== $NAME -> $(basename "$OUT")"
    if ! "$BIN" --benchmark_format=json "$@" > "$OUT.tmp"; then
        echo "error: $NAME failed; leaving $(basename "$OUT") untouched" >&2
        rm -f "$OUT.tmp"
        STATUS=1
        continue
    fi
    mv "$OUT.tmp" "$OUT"
done

if [ "$FOUND" = 0 ]; then
    echo "error: no benchmark binaries in $BENCH_DIR" >&2
    exit 1
fi
exit $STATUS
