//===----------------------------------------------------------------------===//
//
// Part of AlgSpec. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// AlgSpec umbrella API: one include for the common workflow
///
///   load specs -> check completeness/consistency -> execute or verify.
///
/// The fine-grained headers remain the primary API; this facade wires the
/// usual pipeline together for tools and examples.
///
//===----------------------------------------------------------------------===//

#ifndef ALGSPEC_CORE_ALGSPEC_H
#define ALGSPEC_CORE_ALGSPEC_H

#include "ast/AlgebraContext.h"
#include "ast/Spec.h"
#include "ast/SpecPrinter.h"
#include "ast/TermPrinter.h"
#include "check/Completeness.h"
#include "check/Consistency.h"
#include "check/Convergence.h"
#include "check/ErrorFlow.h"
#include "check/Exhaustiveness.h"
#include "check/Lint.h"
#include "check/Skeleton.h"
#include "check/Termination.h"
#include "interp/Session.h"
#include "model/ModelBinding.h"
#include "model/ModelTester.h"
#include "parser/Parser.h"
#include "rewrite/Engine.h"
#include "specs/BuiltinSpecs.h"
#include "support/Diagnostic.h"
#include "support/SourceMgr.h"
#include "verify/RepVerifier.h"

#include <memory>
#include <string>
#include <vector>

namespace algspec {

/// A context plus every spec loaded into it, with the standard checks a
/// spec author runs before trusting an axiom set.
class Workspace {
public:
  Workspace() : Ctx(std::make_unique<AlgebraContext>()) {}

  AlgebraContext &context() { return *Ctx; }

  /// Parses spec text into the workspace and appends the specs. The
  /// workspace keeps the source buffer so later diagnostics (lint
  /// findings) can render the offending line.
  Result<void> load(std::string_view Text,
                    std::string BufferName = "<spec>") {
    auto SM = std::make_unique<SourceMgr>(std::move(BufferName),
                                          std::string(Text));
    DiagnosticEngine Diags;
    std::vector<Spec> Parsed = parseSpecs(*Ctx, *SM, Diags);
    if (Diags.hasErrors())
      return makeError(Diags.render(SM.get()));
    Buffers.push_back(std::move(SM));
    for (Spec &S : Parsed) {
      Specs.push_back(std::move(S));
      SpecBuffer.push_back(Buffers.size() - 1);
    }
    return Result<void>();
  }

  const std::vector<Spec> &specs() const { return Specs; }

  /// Finds a loaded spec by name; nullptr when absent.
  const Spec *find(std::string_view Name) const {
    for (const Spec &S : Specs)
      if (S.name() == Name)
        return &S;
    return nullptr;
  }

  /// Static sufficient-completeness check of one loaded spec.
  CompletenessReport checkComplete(const Spec &S) {
    return checkCompleteness(*Ctx, S);
  }

  /// Consistency check over every loaded spec. A convergence certificate
  /// is computed first: when it proves the workspace confluent and
  /// terminating, the report upgrades to "proven consistent" and the
  /// critical-pair sweep is skipped. Short of that, \p EGraph controls
  /// the equality-saturation screen over the critical pairs.
  ConsistencyReport checkConsistent(unsigned GroundDepth = 2,
                                    ParallelOptions Par = ParallelOptions(),
                                    EngineOptions Eng = EngineOptions(),
                                    EqSatMode EGraph = EqSatMode::Auto) {
    ConvergenceReport Certificate = convergence(Eng);
    return checkConsistency(*Ctx, specPointers(), GroundDepth,
                            EnumeratorOptions(), Par, Eng, &Certificate,
                            EGraph);
  }

  /// Runs the standard lint passes over every loaded spec.
  LintReport lint() { return lintSpecs(*Ctx, specPointers()); }

  /// Attempts a recursive-path-ordering termination proof over every
  /// loaded spec's axioms.
  TerminationReport termination() {
    return proveTermination(*Ctx, specPointers());
  }

  /// Certifies convergence (confluence + termination) of the loaded
  /// specs' combined rule set.
  ConvergenceReport convergence(EngineOptions Eng = EngineOptions()) {
    ConvergenceOptions Options;
    Options.Engine = Eng;
    return certifyConvergence(*Ctx, specPointers(), Options);
  }

  /// Certifies static sufficient-completeness (constructor-case
  /// exhaustiveness) of every loaded spec's defined operations. A spec
  /// whose verdict is complete lets checkCompletenessDynamic skip its
  /// ground sweep.
  ExhaustivenessReport exhaustiveness(EngineOptions Eng = EngineOptions()) {
    ExhaustivenessOptions Options;
    Options.Engine = Eng;
    return certifyExhaustiveness(*Ctx, specPointers(), Options);
  }

  /// The source buffer \p S was parsed from; null for specs the workspace
  /// did not load itself.
  const SourceMgr *bufferFor(const Spec &S) const {
    for (size_t I = 0; I < Specs.size(); ++I)
      if (&Specs[I] == &S)
        return Buffers[SpecBuffer[I]].get();
    return nullptr;
  }

  /// Renders a lint report, resolving each finding's source buffer by its
  /// spec name (one workspace may hold buffers from several files).
  std::string renderLint(const LintReport &Report) const {
    std::string Out;
    for (const LintFinding &F : Report.Findings) {
      const Spec *S = find(F.SpecName);
      Out += renderFinding(F, S != nullptr ? bufferFor(*S) : nullptr);
    }
    return Out;
  }

  /// A symbolic-interpretation session over every loaded spec.
  Result<Session> session(EngineOptions Options = EngineOptions()) {
    return Session::create(*Ctx, specPointers(), Options);
  }

  /// Pointers to every loaded spec (valid until the next load()).
  std::vector<const Spec *> specPointers() const {
    std::vector<const Spec *> Ptrs;
    Ptrs.reserve(Specs.size());
    for (const Spec &S : Specs)
      Ptrs.push_back(&S);
    return Ptrs;
  }

private:
  std::unique_ptr<AlgebraContext> Ctx;
  std::vector<Spec> Specs;
  /// Buffers loaded so far; SpecBuffer[I] is the index of the buffer
  /// Specs[I] was parsed from.
  std::vector<std::unique_ptr<SourceMgr>> Buffers;
  std::vector<size_t> SpecBuffer;
};

} // namespace algspec

#endif // ALGSPEC_CORE_ALGSPEC_H
