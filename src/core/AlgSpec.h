//===----------------------------------------------------------------------===//
//
// Part of AlgSpec. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// AlgSpec umbrella API: one include for the common workflow
///
///   load specs -> check completeness/consistency -> execute or verify.
///
/// The fine-grained headers remain the primary API; this facade wires the
/// usual pipeline together for tools and examples.
///
//===----------------------------------------------------------------------===//

#ifndef ALGSPEC_CORE_ALGSPEC_H
#define ALGSPEC_CORE_ALGSPEC_H

#include "ast/AlgebraContext.h"
#include "ast/Spec.h"
#include "ast/SpecPrinter.h"
#include "ast/TermPrinter.h"
#include "check/Completeness.h"
#include "check/Consistency.h"
#include "check/Skeleton.h"
#include "interp/Session.h"
#include "model/ModelBinding.h"
#include "model/ModelTester.h"
#include "parser/Parser.h"
#include "rewrite/Engine.h"
#include "specs/BuiltinSpecs.h"
#include "verify/RepVerifier.h"

#include <memory>
#include <string>
#include <vector>

namespace algspec {

/// A context plus every spec loaded into it, with the standard checks a
/// spec author runs before trusting an axiom set.
class Workspace {
public:
  Workspace() : Ctx(std::make_unique<AlgebraContext>()) {}

  AlgebraContext &context() { return *Ctx; }

  /// Parses spec text into the workspace and appends the specs.
  Result<void> load(std::string_view Text,
                    std::string BufferName = "<spec>") {
    auto Parsed = parseSpecText(*Ctx, Text, std::move(BufferName));
    if (!Parsed)
      return Parsed.error();
    for (Spec &S : *Parsed)
      Specs.push_back(std::move(S));
    return Result<void>();
  }

  const std::vector<Spec> &specs() const { return Specs; }

  /// Finds a loaded spec by name; nullptr when absent.
  const Spec *find(std::string_view Name) const {
    for (const Spec &S : Specs)
      if (S.name() == Name)
        return &S;
    return nullptr;
  }

  /// Static sufficient-completeness check of one loaded spec.
  CompletenessReport checkComplete(const Spec &S) {
    return checkCompleteness(*Ctx, S);
  }

  /// Consistency check over every loaded spec.
  ConsistencyReport checkConsistent(unsigned GroundDepth = 2) {
    return checkConsistency(*Ctx, specPointers(), GroundDepth);
  }

  /// A symbolic-interpretation session over every loaded spec.
  Result<Session> session(EngineOptions Options = EngineOptions()) {
    return Session::create(*Ctx, specPointers(), Options);
  }

  /// Pointers to every loaded spec (valid until the next load()).
  std::vector<const Spec *> specPointers() const {
    std::vector<const Spec *> Ptrs;
    Ptrs.reserve(Specs.size());
    for (const Spec &S : Specs)
      Ptrs.push_back(&S);
    return Ptrs;
  }

private:
  std::unique_ptr<AlgebraContext> Ctx;
  std::vector<Spec> Specs;
};

} // namespace algspec

#endif // ALGSPEC_CORE_ALGSPEC_H
