//===----------------------------------------------------------------------===//
//
// Part of AlgSpec. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's specifications (and a few extras used by tests), embedded
/// as .alg source text, plus loaders that parse them into a context.
///
/// Inventory:
///  - QueueAlg          — section 3, axioms 1-6.
///  - SymboltableAlg    — section 4, axioms 1-9.
///  - StackArrayAlg     — section 4, axioms 10-16 (Stack) and 17-20
///                        (Array); one buffer, Stack is a stack of Arrays.
///  - KnowlistAlg       — section 4 (knows-list extension), Knowlist only.
///  - KnowsSymboltableAlg — the adapted Symboltable whose ENTERBLOCK takes
///                        a Knowlist; exactly the ENTERBLOCK axioms differ
///                        from SymboltableAlg.
///  - NatAlg, SetAlg, ListAlg, BagAlg, BstAlg — extra types exercising
///    the checkers, the engine's Int builtins, and nested conditionals.
///  - BoundedQueueAlg   — the BoundedQueue ADT's capacity-bounded Queue.
///  - TableAlg          — section 5's database characterization.
///  - SymboltableImplAlg — section 4's implementation of Symboltable as a
///    Stack of Arrays (SymboltableImpl and the abstraction function Phi);
///    requires SymboltableAlg and StackArrayAlg to be loaded first.
///
//===----------------------------------------------------------------------===//

#ifndef ALGSPEC_SPECS_BUILTINSPECS_H
#define ALGSPEC_SPECS_BUILTINSPECS_H

#include "ast/Spec.h"
#include "support/Error.h"

#include <string_view>
#include <vector>

namespace algspec {

class AlgebraContext;

namespace specs {

extern const std::string_view QueueAlg;
extern const std::string_view SymboltableAlg;
extern const std::string_view StackArrayAlg;
extern const std::string_view KnowlistAlg;
extern const std::string_view KnowsSymboltableAlg;
extern const std::string_view NatAlg;
extern const std::string_view SetAlg;
extern const std::string_view ListAlg;
extern const std::string_view BagAlg;
extern const std::string_view BstAlg;
extern const std::string_view BoundedQueueAlg;
extern const std::string_view TableAlg;
extern const std::string_view SymboltableImplAlg;

/// Parses one embedded spec text into \p Ctx. The builtin texts are
/// well-formed by construction (tests pin this), so failures indicate
/// context clashes (e.g. loading two specs that define the same sort).
Result<std::vector<Spec>> load(AlgebraContext &Ctx, std::string_view Text,
                               std::string BufferName);

/// Loads QueueAlg and returns its single spec.
Result<Spec> loadQueue(AlgebraContext &Ctx);
/// Loads SymboltableAlg and returns its single spec.
Result<Spec> loadSymboltable(AlgebraContext &Ctx);
/// Loads StackArrayAlg and returns {Array, Stack}.
Result<std::vector<Spec>> loadStackArray(AlgebraContext &Ctx);
/// Loads KnowlistAlg and returns its single spec.
Result<Spec> loadKnowlist(AlgebraContext &Ctx);
/// Loads KnowsSymboltableAlg (which includes Knowlist) and returns
/// {Knowlist, Symboltable}.
Result<std::vector<Spec>> loadKnowsSymboltable(AlgebraContext &Ctx);

} // namespace specs
} // namespace algspec

#endif // ALGSPEC_SPECS_BUILTINSPECS_H
