//===----------------------------------------------------------------------===//
//
// Part of AlgSpec. MIT license.
//
//===----------------------------------------------------------------------===//

#include "specs/BuiltinSpecs.h"

#include "ast/AlgebraContext.h"
#include "parser/Parser.h"

using namespace algspec;

//===----------------------------------------------------------------------===//
// Paper section 3: type Queue (of Items), axioms 1-6.
//===----------------------------------------------------------------------===//

const std::string_view specs::QueueAlg = R"(
-- Guttag (CACM 1977), section 3: type Queue (of Items).
spec Queue
  uses Item
  sorts Queue
  ops
    NEW       : -> Queue
    ADD       : Queue, Item -> Queue
    FRONT     : Queue -> Item
    REMOVE    : Queue -> Queue
    IS_EMPTY? : Queue -> Bool
  constructors NEW, ADD
  vars
    q : Queue
    i : Item
  axioms
    IS_EMPTY?(NEW) = true                                       -- (1)
    IS_EMPTY?(ADD(q, i)) = false                                -- (2)
    FRONT(NEW) = error                                          -- (3)
    FRONT(ADD(q, i)) = if IS_EMPTY?(q) then i else FRONT(q)     -- (4)
    REMOVE(NEW) = error                                         -- (5)
    REMOVE(ADD(q, i)) =
      if IS_EMPTY?(q) then NEW else ADD(REMOVE(q), i)           -- (6)
end
)";

//===----------------------------------------------------------------------===//
// Paper section 4: type Symboltable, axioms 1-9.
//===----------------------------------------------------------------------===//

const std::string_view specs::SymboltableAlg = R"(
-- Guttag (CACM 1977), section 4: type Symboltable.
spec Symboltable
  uses Identifier, Attributelist
  sorts Symboltable
  ops
    INIT        : -> Symboltable
    ENTERBLOCK  : Symboltable -> Symboltable
    LEAVEBLOCK  : Symboltable -> Symboltable
    ADD         : Symboltable, Identifier, Attributelist -> Symboltable
    IS_INBLOCK? : Symboltable, Identifier -> Bool
    RETRIEVE    : Symboltable, Identifier -> Attributelist
  constructors INIT, ENTERBLOCK, ADD
  vars
    symtab   : Symboltable
    id, id1  : Identifier
    attrs    : Attributelist
  axioms
    LEAVEBLOCK(INIT) = error                                    -- (1)
    LEAVEBLOCK(ENTERBLOCK(symtab)) = symtab                     -- (2)
    LEAVEBLOCK(ADD(symtab, id, attrs)) = LEAVEBLOCK(symtab)     -- (3)
    IS_INBLOCK?(INIT, id) = false                               -- (4)
    IS_INBLOCK?(ENTERBLOCK(symtab), id) = false                 -- (5)
    IS_INBLOCK?(ADD(symtab, id, attrs), id1) =
      if SAME(id, id1) then true else IS_INBLOCK?(symtab, id1)  -- (6)
    RETRIEVE(INIT, id) = error                                  -- (7)
    RETRIEVE(ENTERBLOCK(symtab), id) = RETRIEVE(symtab, id)     -- (8)
    RETRIEVE(ADD(symtab, id, attrs), id1) =
      if SAME(id, id1) then attrs else RETRIEVE(symtab, id1)    -- (9)
end
)";

//===----------------------------------------------------------------------===//
// Paper section 4: the representation types, axioms 10-16 (Stack) and
// 17-20 (Array). Stack is a stack of Arrays, exactly as in the paper's
// Symboltable representation.
//===----------------------------------------------------------------------===//

const std::string_view specs::StackArrayAlg = R"(
-- Guttag (CACM 1977), section 4: type Array (of attributelists, indexed
-- by Identifier), axioms 17-20.
spec Array
  uses Identifier, Attributelist
  sorts Array
  ops
    EMPTY         : -> Array
    ASSIGN        : Array, Identifier, Attributelist -> Array
    READ          : Array, Identifier -> Attributelist
    IS_UNDEFINED? : Array, Identifier -> Bool
  constructors EMPTY, ASSIGN
  vars
    arr      : Array
    id, id1  : Identifier
    attrs    : Attributelist
  axioms
    IS_UNDEFINED?(EMPTY, id) = true                             -- (17)
    IS_UNDEFINED?(ASSIGN(arr, id, attrs), id1) =
      if SAME(id, id1) then false else IS_UNDEFINED?(arr, id1)  -- (18)
    READ(EMPTY, id) = error                                     -- (19)
    READ(ASSIGN(arr, id, attrs), id1) =
      if SAME(id, id1) then attrs else READ(arr, id1)           -- (20)
end

-- Guttag (CACM 1977), section 4: type Stack (of Arrays), axioms 10-16.
spec Stack
  sorts Stack
  ops
    NEWSTACK      : -> Stack
    PUSH          : Stack, Array -> Stack
    POP           : Stack -> Stack
    TOP           : Stack -> Array
    IS_NEWSTACK?  : Stack -> Bool
    REPLACE       : Stack, Array -> Stack
  constructors NEWSTACK, PUSH
  vars
    stk : Stack
    arr : Array
  axioms
    IS_NEWSTACK?(NEWSTACK) = true                               -- (10)
    IS_NEWSTACK?(PUSH(stk, arr)) = false                        -- (11)
    POP(NEWSTACK) = error                                       -- (12)
    POP(PUSH(stk, arr)) = stk                                   -- (13)
    TOP(NEWSTACK) = error                                       -- (14)
    TOP(PUSH(stk, arr)) = arr                                   -- (15)
    REPLACE(stk, arr) =
      if IS_NEWSTACK?(stk) then error else PUSH(POP(stk), arr)  -- (16)
end
)";

//===----------------------------------------------------------------------===//
// Paper section 4 (end): the knows-list extension.
//===----------------------------------------------------------------------===//

const std::string_view specs::KnowlistAlg = R"(
-- Guttag (CACM 1977), section 4: type Knowlist.
spec Knowlist
  uses Identifier
  sorts Knowlist
  ops
    CREATE : -> Knowlist
    APPEND : Knowlist, Identifier -> Knowlist
    IS_IN? : Knowlist, Identifier -> Bool
  constructors CREATE, APPEND
  vars
    klist    : Knowlist
    id, id1  : Identifier
  axioms
    IS_IN?(CREATE, id) = false
    IS_IN?(APPEND(klist, id), id1) =
      if SAME(id, id1) then true else IS_IN?(klist, id1)
end
)";

const std::string_view specs::KnowsSymboltableAlg = R"(
-- Guttag (CACM 1977), section 4: the Symboltable adapted to a language
-- with knows-lists. Relative to the plain spec, exactly the relations
-- that mention ENTERBLOCK changed (and RETRIEVE through an ENTERBLOCK now
-- consults the knows-list).
spec Knowlist
  uses Identifier
  sorts Knowlist
  ops
    CREATE : -> Knowlist
    APPEND : Knowlist, Identifier -> Knowlist
    IS_IN? : Knowlist, Identifier -> Bool
  constructors CREATE, APPEND
  vars
    klist    : Knowlist
    id, id1  : Identifier
  axioms
    IS_IN?(CREATE, id) = false
    IS_IN?(APPEND(klist, id), id1) =
      if SAME(id, id1) then true else IS_IN?(klist, id1)
end

spec Symboltable
  uses Identifier, Attributelist
  sorts Symboltable
  ops
    INIT        : -> Symboltable
    ENTERBLOCK  : Symboltable, Knowlist -> Symboltable
    LEAVEBLOCK  : Symboltable -> Symboltable
    ADD         : Symboltable, Identifier, Attributelist -> Symboltable
    IS_INBLOCK? : Symboltable, Identifier -> Bool
    RETRIEVE    : Symboltable, Identifier -> Attributelist
  constructors INIT, ENTERBLOCK, ADD
  vars
    symtab   : Symboltable
    klist    : Knowlist
    id, id1  : Identifier
    attrs    : Attributelist
  axioms
    LEAVEBLOCK(INIT) = error
    LEAVEBLOCK(ENTERBLOCK(symtab, klist)) = symtab
    LEAVEBLOCK(ADD(symtab, id, attrs)) = LEAVEBLOCK(symtab)
    IS_INBLOCK?(INIT, id) = false
    IS_INBLOCK?(ENTERBLOCK(symtab, klist), id) = false
    IS_INBLOCK?(ADD(symtab, id, attrs), id1) =
      if SAME(id, id1) then true else IS_INBLOCK?(symtab, id1)
    RETRIEVE(INIT, id) = error
    RETRIEVE(ENTERBLOCK(symtab, klist), id) =
      if IS_IN?(klist, id) then RETRIEVE(symtab, id) else error
    RETRIEVE(ADD(symtab, id, attrs), id1) =
      if SAME(id, id1) then attrs else RETRIEVE(symtab, id1)
end
)";

//===----------------------------------------------------------------------===//
// Extra types exercising checkers and the enumerator.
//===----------------------------------------------------------------------===//

const std::string_view specs::NatAlg = R"(
-- Peano naturals as a pure user type (the builtin Int is native; this
-- one exercises recursive constructor specs).
spec Nat
  sorts Nat
  ops
    ZERO    : -> Nat
    SUCC    : Nat -> Nat
    PLUS    : Nat, Nat -> Nat
    TIMES   : Nat, Nat -> Nat
    IS_ZERO? : Nat -> Bool
  constructors ZERO, SUCC
  vars
    m, n : Nat
  axioms
    PLUS(m, ZERO) = m
    PLUS(m, SUCC(n)) = SUCC(PLUS(m, n))
    TIMES(m, ZERO) = ZERO
    TIMES(m, SUCC(n)) = PLUS(TIMES(m, n), m)
    IS_ZERO?(ZERO) = true
    IS_ZERO?(SUCC(n)) = false
end
)";

const std::string_view specs::SetAlg = R"(
-- A set of identifiers with an observer-style size. INSERT is a free
-- constructor; observers treat duplicates correctly.
spec Set
  uses Identifier
  sorts Set
  ops
    EMPTYSET : -> Set
    INSERT   : Set, Identifier -> Set
    MEMBER?  : Set, Identifier -> Bool
    DELETE   : Set, Identifier -> Set
  constructors EMPTYSET, INSERT
  vars
    s      : Set
    x, y   : Identifier
  axioms
    MEMBER?(EMPTYSET, x) = false
    MEMBER?(INSERT(s, x), y) = if SAME(x, y) then true else MEMBER?(s, y)
    DELETE(EMPTYSET, x) = EMPTYSET
    DELETE(INSERT(s, x), y) =
      if SAME(x, y) then DELETE(s, y) else INSERT(DELETE(s, y), x)
end
)";

const std::string_view specs::ListAlg = R"(
-- Cons-lists of Int with append and length (uses the native Int sort).
spec List
  sorts List
  ops
    NIL    : -> List
    CONS   : Int, List -> List
    APPEND : List, List -> List
    LENGTH : List -> Int
    HEAD   : List -> Int
    TAIL   : List -> List
  constructors NIL, CONS
  vars
    l, l1 : List
    n     : Int
  axioms
    APPEND(NIL, l1) = l1
    APPEND(CONS(n, l), l1) = CONS(n, APPEND(l, l1))
    LENGTH(NIL) = 0
    LENGTH(CONS(n, l)) = addi(1, LENGTH(l))
    HEAD(NIL) = error
    HEAD(CONS(n, l)) = n
    TAIL(NIL) = error
    TAIL(CONS(n, l)) = l
end
)";

const std::string_view specs::BagAlg = R"(
-- A multiset of identifiers with integer multiplicities (uses the
-- native Int sort for counting).
spec Bag
  uses Identifier
  sorts Bag
  ops
    EMPTYBAG   : -> Bag
    INSERT     : Bag, Identifier -> Bag
    COUNT      : Bag, Identifier -> Int
    DELETE_ONE : Bag, Identifier -> Bag
    IS_EMPTY?  : Bag -> Bool
  constructors EMPTYBAG, INSERT
  vars
    b    : Bag
    x, y : Identifier
  axioms
    COUNT(EMPTYBAG, x) = 0
    COUNT(INSERT(b, x), y) =
      if SAME(x, y) then addi(1, COUNT(b, y)) else COUNT(b, y)
    DELETE_ONE(EMPTYBAG, x) = EMPTYBAG
    DELETE_ONE(INSERT(b, x), y) =
      if SAME(x, y) then b else INSERT(DELETE_ONE(b, y), x)
    IS_EMPTY?(EMPTYBAG) = true
    IS_EMPTY?(INSERT(b, x)) = false
end
)";

const std::string_view specs::BstAlg = R"(
-- A binary search tree over Int. INSERT is a *defined* operation that
-- produces constructor forms maintaining the order invariant; the spec
-- exercises nested conditionals and the Int comparison builtins.
spec Bst
  sorts Bst
  ops
    LEAF      : -> Bst
    NODE      : Bst, Int, Bst -> Bst
    INSERT    : Bst, Int -> Bst
    CONTAINS? : Bst, Int -> Bool
    SIZE      : Bst -> Int
    IS_LEAF?  : Bst -> Bool
    TREE_MIN  : Bst -> Int
  constructors LEAF, NODE
  vars
    l, r : Bst
    m, n : Int
  axioms
    INSERT(LEAF, n) = NODE(LEAF, n, LEAF)
    INSERT(NODE(l, m, r), n) =
      if lti(n, m) then NODE(INSERT(l, n), m, r)
      else if lti(m, n) then NODE(l, m, INSERT(r, n))
      else NODE(l, m, r)
    CONTAINS?(LEAF, n) = false
    CONTAINS?(NODE(l, m, r), n) =
      if eqi(n, m) then true
      else if lti(n, m) then CONTAINS?(l, n)
      else CONTAINS?(r, n)
    SIZE(LEAF) = 0
    SIZE(NODE(l, m, r)) = addi(1, addi(SIZE(l), SIZE(r)))
    IS_LEAF?(LEAF) = true
    IS_LEAF?(NODE(l, m, r)) = false
    TREE_MIN(LEAF) = error
    TREE_MIN(NODE(l, m, r)) =
      if IS_LEAF?(l) then m else TREE_MIN(l)
end
)";

const std::string_view specs::BoundedQueueAlg = R"(
-- A capacity-bounded Queue in the style of section 3, mirroring the
-- BoundedQueue ADT (src/adt/BoundedQueue.h): ENQUEUE on a full queue is
-- error, everything else behaves like the paper's Queue. The capacity
-- rides along in the BNEW constructor, so the observers can recover it
-- from any constructor form.
spec BoundedQueue
  uses Item
  sorts BoundedQueue
  ops
    BNEW       : Int -> BoundedQueue
    BADD       : BoundedQueue, Item -> BoundedQueue
    CAPACITY   : BoundedQueue -> Int
    BSIZE      : BoundedQueue -> Int
    IS_BEMPTY? : BoundedQueue -> Bool
    IS_FULL?   : BoundedQueue -> Bool
    ENQUEUE    : BoundedQueue, Item -> BoundedQueue
    BFRONT     : BoundedQueue -> Item
    BREMOVE    : BoundedQueue -> BoundedQueue
  constructors BNEW, BADD
  vars
    q : BoundedQueue
    i : Item
    n : Int
  axioms
    CAPACITY(BNEW(n)) = n                                       -- (1)
    CAPACITY(BADD(q, i)) = CAPACITY(q)                          -- (2)
    BSIZE(BNEW(n)) = 0                                          -- (3)
    BSIZE(BADD(q, i)) = addi(1, BSIZE(q))                       -- (4)
    IS_BEMPTY?(BNEW(n)) = true                                  -- (5)
    IS_BEMPTY?(BADD(q, i)) = false                              -- (6)
    IS_FULL?(q) = lei(CAPACITY(q), BSIZE(q))                    -- (7)
    ENQUEUE(q, i) = if IS_FULL?(q) then error else BADD(q, i)   -- (8)
    BFRONT(BNEW(n)) = error                                     -- (9)
    BFRONT(BADD(q, i)) =
      if IS_BEMPTY?(q) then i else BFRONT(q)                    -- (10)
    BREMOVE(BNEW(n)) = error                                    -- (11)
    BREMOVE(BADD(q, i)) =
      if IS_BEMPTY?(q) then BNEW(CAPACITY(q))
      else BADD(BREMOVE(q), i)                                  -- (12)
end
)";

const std::string_view specs::TableAlg = R"(
-- Paper section 5 (conclusions): "A database management system, for
-- example, might be completely characterized by an algebraic
-- specification of the various operations available to users." This is
-- that characterization for a single keyed table: rows are (key, value)
-- pairs, INSERT_ROW overwrites per key (enforced by the observers),
-- SELECT_VAL produces a sub-table — an operation whose *result* is
-- again a value of the type, which none of the paper's own examples
-- exercise.
spec Table
  uses Key, Val
  sorts Table
  ops
    EMPTY_TABLE : -> Table
    INSERT_ROW  : Table, Key, Val -> Table
    DELETE_ROW  : Table, Key -> Table
    LOOKUP      : Table, Key -> Val
    HAS_ROW?    : Table, Key -> Bool
    ROW_COUNT   : Table -> Int
    SELECT_VAL  : Table, Val -> Table
  constructors EMPTY_TABLE, INSERT_ROW
  vars
    t    : Table
    k, j : Key
    v, w : Val
  axioms
    HAS_ROW?(EMPTY_TABLE, k) = false
    HAS_ROW?(INSERT_ROW(t, k, v), j) =
      if SAME(k, j) then true else HAS_ROW?(t, j)
    LOOKUP(EMPTY_TABLE, k) = error
    LOOKUP(INSERT_ROW(t, k, v), j) =
      if SAME(k, j) then v else LOOKUP(t, j)
    DELETE_ROW(EMPTY_TABLE, k) = EMPTY_TABLE
    DELETE_ROW(INSERT_ROW(t, k, v), j) =
      if SAME(k, j) then DELETE_ROW(t, j)
      else INSERT_ROW(DELETE_ROW(t, j), k, v)
    ROW_COUNT(EMPTY_TABLE) = 0
    ROW_COUNT(INSERT_ROW(t, k, v)) =
      if HAS_ROW?(t, k) then ROW_COUNT(t) else addi(1, ROW_COUNT(t))
    SELECT_VAL(EMPTY_TABLE, w) = EMPTY_TABLE
    SELECT_VAL(INSERT_ROW(t, k, v), w) =
      if SAME(v, w)
      then INSERT_ROW(SELECT_VAL(DELETE_ROW(t, k), w), k, v)
      else SELECT_VAL(DELETE_ROW(t, k), w)
end
)";

const std::string_view specs::SymboltableImplAlg = R"(
-- Guttag (CACM 1977), section 4: the implementation of type Symboltable
-- as a Stack of Arrays. Each f' of the paper is spelled f_R.
spec SymboltableImpl
  ops
    INIT_R        : -> Stack
    ENTERBLOCK_R  : Stack -> Stack
    LEAVEBLOCK_R  : Stack -> Stack
    ADD_R         : Stack, Identifier, Attributelist -> Stack
    IS_INBLOCK_R? : Stack, Identifier -> Bool
    RETRIEVE_R    : Stack, Identifier -> Attributelist
    VALID_REP?    : Stack -> Bool
  vars
    stk   : Stack
    id    : Identifier
    attrs : Attributelist
  axioms
    INIT_R = PUSH(NEWSTACK, EMPTY)
    ENTERBLOCK_R(stk) = PUSH(stk, EMPTY)
    LEAVEBLOCK_R(stk) =
      if IS_NEWSTACK?(POP(stk)) then error else POP(stk)
    ADD_R(stk, id, attrs) = REPLACE(stk, ASSIGN(TOP(stk), id, attrs))
    IS_INBLOCK_R?(stk, id) =
      if IS_NEWSTACK?(stk) then error
      else not(IS_UNDEFINED?(TOP(stk), id))
    RETRIEVE_R(stk, id) =
      if IS_NEWSTACK?(stk) then error
      else if IS_UNDEFINED?(TOP(stk), id)
           then RETRIEVE_R(POP(stk), id)
           else READ(TOP(stk), id)
    -- The representation invariant behind Assumption 1: a valid
    -- symbol-table representation has at least one (pushed) block.
    VALID_REP?(stk) = not(IS_NEWSTACK?(stk))
end

-- The interpretation function PHI (the paper's abstraction function).
spec Phi
  ops
    PHI : Stack -> Symboltable
  vars
    stk   : Stack
    arr   : Array
    id    : Identifier
    attrs : Attributelist
  axioms
    PHI(NEWSTACK) = error
    PHI(PUSH(stk, EMPTY)) =
      if IS_NEWSTACK?(stk) then INIT else ENTERBLOCK(PHI(stk))
    PHI(PUSH(stk, ASSIGN(arr, id, attrs))) =
      ADD(PHI(PUSH(stk, arr)), id, attrs)
end
)";

//===----------------------------------------------------------------------===//
// Loaders
//===----------------------------------------------------------------------===//

Result<std::vector<Spec>> specs::load(AlgebraContext &Ctx,
                                      std::string_view Text,
                                      std::string BufferName) {
  return parseSpecText(Ctx, Text, std::move(BufferName));
}

static Result<Spec> loadSingle(AlgebraContext &Ctx, std::string_view Text,
                               std::string BufferName) {
  auto Parsed = specs::load(Ctx, Text, std::move(BufferName));
  if (!Parsed)
    return Parsed.error();
  if (Parsed->size() != 1)
    return makeError("expected exactly one spec in buffer");
  return std::move(Parsed->front());
}

Result<Spec> specs::loadQueue(AlgebraContext &Ctx) {
  return loadSingle(Ctx, QueueAlg, "queue.alg");
}

Result<Spec> specs::loadSymboltable(AlgebraContext &Ctx) {
  return loadSingle(Ctx, SymboltableAlg, "symboltable.alg");
}

Result<std::vector<Spec>> specs::loadStackArray(AlgebraContext &Ctx) {
  return load(Ctx, StackArrayAlg, "stackarray.alg");
}

Result<Spec> specs::loadKnowlist(AlgebraContext &Ctx) {
  return loadSingle(Ctx, KnowlistAlg, "knowlist.alg");
}

Result<std::vector<Spec>> specs::loadKnowsSymboltable(AlgebraContext &Ctx) {
  return load(Ctx, KnowsSymboltableAlg, "knows_symboltable.alg");
}
