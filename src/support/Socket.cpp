//===----------------------------------------------------------------------===//
//
// Part of AlgSpec. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Socket.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace algspec;

namespace {

Error errnoError(const std::string &What) {
  return makeError(What + ": " + std::strerror(errno));
}

} // namespace

//===----------------------------------------------------------------------===//
// Socket
//===----------------------------------------------------------------------===//

void Socket::close() {
  if (Fd >= 0) {
    ::close(Fd);
    Fd = -1;
  }
}

void Socket::shutdownRead() {
  if (Fd >= 0)
    ::shutdown(Fd, SHUT_RD);
}

//===----------------------------------------------------------------------===//
// Addresses
//===----------------------------------------------------------------------===//

Result<SocketAddress> SocketAddress::parse(std::string_view Text) {
  SocketAddress Addr;
  if (Text.rfind("unix:", 0) == 0) {
    Addr.AddrKind = Kind::Unix;
    Addr.Path = std::string(Text.substr(5));
    if (Addr.Path.empty())
      return makeError("empty unix socket path in '" + std::string(Text) +
                       "'");
    return Addr;
  }
  if (Text.rfind("tcp:", 0) == 0) {
    std::string_view Rest = Text.substr(4);
    size_t Colon = Rest.rfind(':');
    if (Colon == std::string_view::npos)
      return makeError("tcp address wants tcp:<host>:<port>, got '" +
                       std::string(Text) + "'");
    Addr.AddrKind = Kind::Tcp;
    Addr.Host = std::string(Rest.substr(0, Colon));
    std::string PortText(Rest.substr(Colon + 1));
    char *End = nullptr;
    long Port = std::strtol(PortText.c_str(), &End, 10);
    if (PortText.empty() || *End != '\0' || Port < 0 || Port > 65535)
      return makeError("invalid tcp port '" + PortText + "'");
    Addr.Port = static_cast<int>(Port);
    if (Addr.Host.empty())
      Addr.Host = "127.0.0.1";
    return Addr;
  }
  return makeError("address wants unix:<path> or tcp:<host>:<port>, got '" +
                   std::string(Text) + "'");
}

std::string SocketAddress::str() const {
  if (AddrKind == Kind::Unix)
    return "unix:" + Path;
  return "tcp:" + Host + ":" + std::to_string(Port);
}

//===----------------------------------------------------------------------===//
// Listeners and connectors
//===----------------------------------------------------------------------===//

Result<Socket> algspec::listenUnix(const std::string &Path, int Backlog) {
  sockaddr_un Addr;
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sun_family = AF_UNIX;
  if (Path.size() >= sizeof(Addr.sun_path))
    return makeError("unix socket path too long: '" + Path + "'");
  std::memcpy(Addr.sun_path, Path.c_str(), Path.size() + 1);

  Socket Sock(::socket(AF_UNIX, SOCK_STREAM, 0));
  if (!Sock.valid())
    return errnoError("socket(AF_UNIX)");
  // A previous server instance that crashed leaves the socket file
  // behind; bind() would fail with EADDRINUSE on a dead path.
  ::unlink(Path.c_str());
  if (::bind(Sock.fd(), reinterpret_cast<sockaddr *>(&Addr),
             sizeof(Addr)) != 0)
    return errnoError("bind('" + Path + "')");
  if (::listen(Sock.fd(), Backlog) != 0)
    return errnoError("listen('" + Path + "')");
  return Sock;
}

Result<Socket> algspec::listenTcp(const std::string &Host, int Port,
                                  int *BoundPort, int Backlog) {
  sockaddr_in Addr;
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sin_family = AF_INET;
  Addr.sin_port = htons(static_cast<uint16_t>(Port));
  if (::inet_pton(AF_INET, Host.c_str(), &Addr.sin_addr) != 1)
    return makeError("invalid IPv4 address '" + Host + "'");

  Socket Sock(::socket(AF_INET, SOCK_STREAM, 0));
  if (!Sock.valid())
    return errnoError("socket(AF_INET)");
  int One = 1;
  ::setsockopt(Sock.fd(), SOL_SOCKET, SO_REUSEADDR, &One, sizeof(One));
  if (::bind(Sock.fd(), reinterpret_cast<sockaddr *>(&Addr),
             sizeof(Addr)) != 0)
    return errnoError("bind(" + Host + ":" + std::to_string(Port) + ")");
  if (::listen(Sock.fd(), Backlog) != 0)
    return errnoError("listen(" + Host + ":" + std::to_string(Port) + ")");
  if (BoundPort != nullptr) {
    sockaddr_in Bound;
    socklen_t Len = sizeof(Bound);
    if (::getsockname(Sock.fd(), reinterpret_cast<sockaddr *>(&Bound),
                      &Len) != 0)
      return errnoError("getsockname");
    *BoundPort = ntohs(Bound.sin_port);
  }
  return Sock;
}

Result<Socket> algspec::acceptSocket(const Socket &Listener) {
  while (true) {
    int Fd = ::accept(Listener.fd(), nullptr, nullptr);
    if (Fd >= 0)
      return Socket(Fd);
    if (errno == EINTR)
      continue;
    return errnoError("accept");
  }
}

Result<Socket> algspec::connectSocket(const SocketAddress &Address) {
  if (Address.AddrKind == SocketAddress::Kind::Unix) {
    sockaddr_un Addr;
    std::memset(&Addr, 0, sizeof(Addr));
    Addr.sun_family = AF_UNIX;
    if (Address.Path.size() >= sizeof(Addr.sun_path))
      return makeError("unix socket path too long: '" + Address.Path + "'");
    std::memcpy(Addr.sun_path, Address.Path.c_str(),
                Address.Path.size() + 1);
    Socket Sock(::socket(AF_UNIX, SOCK_STREAM, 0));
    if (!Sock.valid())
      return errnoError("socket(AF_UNIX)");
    if (::connect(Sock.fd(), reinterpret_cast<sockaddr *>(&Addr),
                  sizeof(Addr)) != 0)
      return errnoError("connect('" + Address.Path + "')");
    return Sock;
  }
  sockaddr_in Addr;
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sin_family = AF_INET;
  Addr.sin_port = htons(static_cast<uint16_t>(Address.Port));
  if (::inet_pton(AF_INET, Address.Host.c_str(), &Addr.sin_addr) != 1)
    return makeError("invalid IPv4 address '" + Address.Host + "'");
  Socket Sock(::socket(AF_INET, SOCK_STREAM, 0));
  if (!Sock.valid())
    return errnoError("socket(AF_INET)");
  if (::connect(Sock.fd(), reinterpret_cast<sockaddr *>(&Addr),
                sizeof(Addr)) != 0)
    return errnoError("connect(" + Address.str() + ")");
  return Sock;
}

Result<void> algspec::sendAll(const Socket &Sock, std::string_view Data) {
  size_t Sent = 0;
  while (Sent < Data.size()) {
    ssize_t N = ::send(Sock.fd(), Data.data() + Sent, Data.size() - Sent,
                       MSG_NOSIGNAL);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return errnoError("send");
    }
    Sent += static_cast<size_t>(N);
  }
  return Result<void>();
}

//===----------------------------------------------------------------------===//
// FrameReader
//===----------------------------------------------------------------------===//

FrameStatus FrameReader::readFrame(const Socket &Sock, std::string &Frame) {
  while (true) {
    size_t Newline = Buffer.find('\n');
    if (Newline != std::string::npos) {
      Frame.assign(Buffer, 0, Newline);
      Buffer.erase(0, Newline + 1);
      if (!Frame.empty() && Frame.back() == '\r')
        Frame.pop_back();
      if (Frame.size() > MaxBytes)
        return FrameStatus::Oversized;
      return FrameStatus::Frame;
    }
    if (Buffer.size() > MaxBytes)
      return FrameStatus::Oversized;
    char Chunk[4096];
    ssize_t N = ::recv(Sock.fd(), Chunk, sizeof(Chunk), 0);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return FrameStatus::Error;
    }
    if (N == 0)
      return Buffer.empty() ? FrameStatus::Eof : FrameStatus::Truncated;
    Buffer.append(Chunk, static_cast<size_t>(N));
  }
}

//===----------------------------------------------------------------------===//
// SignalWatcher
//===----------------------------------------------------------------------===//

namespace {

/// Write end of the self-pipe; -1 until install(). Written from signal
/// context, so it must be async-signal-safe plain int (write(2) is on
/// the async-signal-safe list).
volatile sig_atomic_t WatcherInstalled = 0;
int WatcherPipe[2] = {-1, -1};

void signalHandler(int Sig) {
  if (!WatcherInstalled)
    return;
  unsigned char Byte = static_cast<unsigned char>(Sig);
  // A full pipe just drops the notification; one pending byte is
  // enough to wake the drain loop.
  [[maybe_unused]] ssize_t N = ::write(WatcherPipe[1], &Byte, 1);
}

} // namespace

Result<void> SignalWatcher::install(const std::vector<int> &Signals) {
  if (!WatcherInstalled) {
    if (::pipe(WatcherPipe) != 0)
      return errnoError("pipe");
    // Non-blocking read end: take() must never hang when called
    // without a pending notification.
    int Flags = ::fcntl(WatcherPipe[0], F_GETFL, 0);
    ::fcntl(WatcherPipe[0], F_SETFL, Flags | O_NONBLOCK);
    WatcherInstalled = 1;
  }
  struct sigaction Action;
  std::memset(&Action, 0, sizeof(Action));
  Action.sa_handler = signalHandler;
  sigemptyset(&Action.sa_mask);
  for (int Sig : Signals)
    if (::sigaction(Sig, &Action, nullptr) != 0)
      return errnoError("sigaction(" + std::to_string(Sig) + ")");
  return Result<void>();
}

int SignalWatcher::fd() { return WatcherInstalled ? WatcherPipe[0] : -1; }

int SignalWatcher::take() {
  if (!WatcherInstalled)
    return 0;
  unsigned char Byte = 0;
  ssize_t N = ::read(WatcherPipe[0], &Byte, 1);
  return N == 1 ? Byte : 0;
}

//===----------------------------------------------------------------------===//
// pollTwo
//===----------------------------------------------------------------------===//

int algspec::pollTwo(int FdA, int FdB, int TimeoutMs) {
  pollfd Fds[2];
  nfds_t Count = 0;
  if (FdA >= 0) {
    Fds[Count].fd = FdA;
    Fds[Count].events = POLLIN;
    Fds[Count].revents = 0;
    ++Count;
  }
  if (FdB >= 0) {
    Fds[Count].fd = FdB;
    Fds[Count].events = POLLIN;
    Fds[Count].revents = 0;
    ++Count;
  }
  int N = ::poll(Fds, Count, TimeoutMs);
  if (N < 0)
    return errno == EINTR ? -1 : -2;
  if (N == 0)
    return -1;
  for (nfds_t I = 0; I != Count; ++I)
    if (Fds[I].revents != 0)
      return Fds[I].fd;
  return -1;
}
