//===----------------------------------------------------------------------===//
//
// Part of AlgSpec. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Error.h"

// Error and Result are header-only; this file exists so the support library
// always has at least one object file and provides a home for any future
// out-of-line error utilities.
