//===----------------------------------------------------------------------===//
//
// Part of AlgSpec. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Source locations for diagnostics over specification text.
///
//===----------------------------------------------------------------------===//

#ifndef ALGSPEC_SUPPORT_SOURCELOC_H
#define ALGSPEC_SUPPORT_SOURCELOC_H

#include <cstdint>

namespace algspec {

/// A 1-based (line, column) position in a spec buffer. Line 0 means
/// "no location" (e.g. errors about programmatically built signatures).
class SourceLoc {
public:
  SourceLoc() = default;
  SourceLoc(uint32_t Line, uint32_t Column) : Line(Line), Column(Column) {}

  bool isValid() const { return Line != 0; }
  uint32_t line() const { return Line; }
  uint32_t column() const { return Column; }

  friend bool operator==(SourceLoc A, SourceLoc B) {
    return A.Line == B.Line && A.Column == B.Column;
  }

private:
  uint32_t Line = 0;
  uint32_t Column = 0;
};

/// A half-open [Begin, End) range of positions.
struct SourceRange {
  SourceLoc Begin;
  SourceLoc End;

  SourceRange() = default;
  SourceRange(SourceLoc Begin, SourceLoc End) : Begin(Begin), End(End) {}
  bool isValid() const { return Begin.isValid(); }
};

} // namespace algspec

#endif // ALGSPEC_SUPPORT_SOURCELOC_H
