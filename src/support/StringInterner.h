//===----------------------------------------------------------------------===//
//
// Part of AlgSpec. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// String interning. Sorts, operations, variables, and identifier literals
/// are all referred to by small integer \c Symbol handles; the interner is
/// the single owner of the underlying strings.
///
//===----------------------------------------------------------------------===//

#ifndef ALGSPEC_SUPPORT_STRINGINTERNER_H
#define ALGSPEC_SUPPORT_STRINGINTERNER_H

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <string_view>
#include <unordered_map>

namespace algspec {

/// An interned string handle. Symbols from the same interner compare equal
/// iff the strings are equal. The default-constructed Symbol is invalid.
class Symbol {
public:
  Symbol() = default;

  bool isValid() const { return Index != InvalidIndex; }
  uint32_t index() const { return Index; }

  friend bool operator==(Symbol A, Symbol B) { return A.Index == B.Index; }
  friend bool operator!=(Symbol A, Symbol B) { return A.Index != B.Index; }
  friend bool operator<(Symbol A, Symbol B) { return A.Index < B.Index; }

private:
  friend class StringInterner;
  static constexpr uint32_t InvalidIndex = ~0u;
  explicit Symbol(uint32_t Index) : Index(Index) {}
  uint32_t Index = InvalidIndex;
};

/// Deduplicating string table. Not thread-safe; each AlgebraContext owns one.
class StringInterner {
public:
  /// Interns \p Str, returning its (possibly pre-existing) handle.
  Symbol intern(std::string_view Str);

  /// Returns the handle for \p Str if already interned, otherwise an
  /// invalid Symbol.
  Symbol lookup(std::string_view Str) const;

  /// Resolves a handle back to its string. The view stays valid for the
  /// interner's lifetime (or, if the symbol is younger than a later
  /// truncate() point, until that truncate).
  std::string_view str(Symbol Sym) const;

  size_t size() const { return Strings.size(); }

  /// Drops every string interned at or past \p Size (handles are handed
  /// out in insertion order, so this frees a pure suffix), removing the
  /// lookup entries first. Symbols below \p Size stay valid. Returns the
  /// number of string bytes released. AlgebraContext::truncateToEpoch is
  /// the only caller.
  size_t truncate(size_t Size);

private:
  std::deque<std::string> Strings;
  std::unordered_map<std::string_view, uint32_t> Table;
};

} // namespace algspec

namespace std {
template <> struct hash<algspec::Symbol> {
  size_t operator()(algspec::Symbol Sym) const noexcept {
    return std::hash<uint32_t>()(Sym.index());
  }
};
} // namespace std

#endif // ALGSPEC_SUPPORT_STRINGINTERNER_H
