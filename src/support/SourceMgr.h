//===----------------------------------------------------------------------===//
//
// Part of AlgSpec. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Owns a specification text buffer and maps byte offsets to (line, column)
/// positions for diagnostics.
///
//===----------------------------------------------------------------------===//

#ifndef ALGSPEC_SUPPORT_SOURCEMGR_H
#define ALGSPEC_SUPPORT_SOURCEMGR_H

#include "support/SourceLoc.h"

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace algspec {

/// Holds one spec buffer (plus an optional name, e.g. a file path) and a
/// lazily built table of line-start offsets used to resolve locations.
class SourceMgr {
public:
  SourceMgr() = default;
  SourceMgr(std::string BufferName, std::string Text);

  std::string_view text() const { return Text; }
  const std::string &name() const { return BufferName; }

  /// Translates a byte offset into a 1-based (line, column) location.
  /// Offsets past the end resolve to the end of the last line.
  SourceLoc locForOffset(size_t Offset) const;

  /// Returns the full text of the (1-based) line \p Line, without the
  /// trailing newline; empty if out of range.
  std::string_view lineText(uint32_t Line) const;

  /// Number of lines in the buffer (a trailing newline does not start a
  /// new line).
  uint32_t numLines() const;

private:
  std::string BufferName;
  std::string Text;
  /// Byte offset of the first character of each line; LineStarts[0] == 0.
  std::vector<size_t> LineStarts;
};

} // namespace algspec

#endif // ALGSPEC_SUPPORT_SOURCEMGR_H
