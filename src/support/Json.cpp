//===----------------------------------------------------------------------===//
//
// Part of AlgSpec. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Json.h"

#include <cassert>
#include <cmath>
#include <cstdio>
#include <cstdlib>

using namespace algspec;

//===----------------------------------------------------------------------===//
// UTF-8 validation and escaping
//===----------------------------------------------------------------------===//

namespace {

/// Decodes the UTF-8 sequence starting at Str[I]. On success returns
/// its length (1..4) and writes the code point; returns 0 on any
/// malformation (truncation, bad continuation, overlong encoding,
/// surrogate, > U+10FFFF).
size_t decodeUtf8(std::string_view Str, size_t I, uint32_t &CodePoint) {
  unsigned char C0 = static_cast<unsigned char>(Str[I]);
  if (C0 < 0x80) {
    CodePoint = C0;
    return 1;
  }
  size_t Len;
  uint32_t Min;
  if ((C0 & 0xE0) == 0xC0) {
    Len = 2;
    Min = 0x80;
    CodePoint = C0 & 0x1F;
  } else if ((C0 & 0xF0) == 0xE0) {
    Len = 3;
    Min = 0x800;
    CodePoint = C0 & 0x0F;
  } else if ((C0 & 0xF8) == 0xF0) {
    Len = 4;
    Min = 0x10000;
    CodePoint = C0 & 0x07;
  } else {
    return 0; // Bare continuation byte or 0xFE/0xFF.
  }
  if (I + Len > Str.size())
    return 0;
  for (size_t K = 1; K != Len; ++K) {
    unsigned char C = static_cast<unsigned char>(Str[I + K]);
    if ((C & 0xC0) != 0x80)
      return 0;
    CodePoint = (CodePoint << 6) | (C & 0x3F);
  }
  if (CodePoint < Min)
    return 0; // Overlong encoding.
  if (CodePoint >= 0xD800 && CodePoint <= 0xDFFF)
    return 0; // Surrogate half.
  if (CodePoint > 0x10FFFF)
    return 0;
  return Len;
}

/// Appends \p CodePoint to \p Out as UTF-8. \p CodePoint must be a
/// scalar value (the string parser checks surrogate pairing first).
void appendUtf8(std::string &Out, uint32_t CodePoint) {
  if (CodePoint < 0x80) {
    Out += static_cast<char>(CodePoint);
  } else if (CodePoint < 0x800) {
    Out += static_cast<char>(0xC0 | (CodePoint >> 6));
    Out += static_cast<char>(0x80 | (CodePoint & 0x3F));
  } else if (CodePoint < 0x10000) {
    Out += static_cast<char>(0xE0 | (CodePoint >> 12));
    Out += static_cast<char>(0x80 | ((CodePoint >> 6) & 0x3F));
    Out += static_cast<char>(0x80 | (CodePoint & 0x3F));
  } else {
    Out += static_cast<char>(0xF0 | (CodePoint >> 18));
    Out += static_cast<char>(0x80 | ((CodePoint >> 12) & 0x3F));
    Out += static_cast<char>(0x80 | ((CodePoint >> 6) & 0x3F));
    Out += static_cast<char>(0x80 | (CodePoint & 0x3F));
  }
}

} // namespace

bool algspec::isValidUtf8(std::string_view Str) {
  for (size_t I = 0; I < Str.size();) {
    uint32_t CodePoint;
    size_t Len = decodeUtf8(Str, I, CodePoint);
    if (Len == 0)
      return false;
    I += Len;
  }
  return true;
}

std::string algspec::jsonEscape(std::string_view Str) {
  std::string Out;
  Out.reserve(Str.size());
  static const char Hex[] = "0123456789abcdef";
  for (size_t I = 0; I < Str.size();) {
    char C = Str[I];
    switch (C) {
    case '"':
      Out += "\\\"";
      ++I;
      continue;
    case '\\':
      Out += "\\\\";
      ++I;
      continue;
    case '\n':
      Out += "\\n";
      ++I;
      continue;
    case '\r':
      Out += "\\r";
      ++I;
      continue;
    case '\t':
      Out += "\\t";
      ++I;
      continue;
    default:
      break;
    }
    unsigned char U = static_cast<unsigned char>(C);
    if (U < 0x20) {
      Out += "\\u00";
      Out += Hex[(U >> 4) & 0xF];
      Out += Hex[U & 0xF];
      ++I;
      continue;
    }
    if (U < 0x80) {
      Out += C;
      ++I;
      continue;
    }
    // Multi-byte sequence: copy only if well-formed; otherwise emit one
    // escaped replacement character per offending byte so the output is
    // always valid UTF-8 and the corruption stays visible.
    uint32_t CodePoint;
    size_t Len = decodeUtf8(Str, I, CodePoint);
    if (Len == 0) {
      Out += "\\ufffd";
      ++I;
    } else {
      Out.append(Str.substr(I, Len));
      I += Len;
    }
  }
  return Out;
}

//===----------------------------------------------------------------------===//
// JsonWriter
//===----------------------------------------------------------------------===//

void JsonWriter::newline() {
  if (Compact)
    return;
  Out += '\n';
  Out.append(2 * Stack.size(), ' ');
}

void JsonWriter::beforeValue() {
  if (PendingKey) {
    PendingKey = false;
    return;
  }
  if (Stack.empty())
    return;
  assert(Stack.back().Kind == Scope::Array &&
         "object members need a key() before each value");
  if (Stack.back().HasEntries)
    Out += ',';
  Stack.back().HasEntries = true;
  newline();
}

JsonWriter &JsonWriter::beginObject() {
  beforeValue();
  Stack.push_back(Frame{Scope::Object, false});
  Out += '{';
  return *this;
}

JsonWriter &JsonWriter::endObject() {
  assert(!Stack.empty() && Stack.back().Kind == Scope::Object);
  bool HadEntries = Stack.back().HasEntries;
  Stack.pop_back();
  if (HadEntries)
    newline();
  Out += '}';
  return *this;
}

JsonWriter &JsonWriter::beginArray() {
  beforeValue();
  Stack.push_back(Frame{Scope::Array, false});
  Out += '[';
  return *this;
}

JsonWriter &JsonWriter::endArray() {
  assert(!Stack.empty() && Stack.back().Kind == Scope::Array);
  bool HadEntries = Stack.back().HasEntries;
  Stack.pop_back();
  if (HadEntries)
    newline();
  Out += ']';
  return *this;
}

JsonWriter &JsonWriter::key(std::string_view Name) {
  assert(!Stack.empty() && Stack.back().Kind == Scope::Object &&
         "key() is only valid inside an object");
  assert(!PendingKey && "key() already pending a value");
  if (Stack.back().HasEntries)
    Out += ',';
  Stack.back().HasEntries = true;
  newline();
  Out += '"';
  Out += jsonEscape(Name);
  Out += "\": ";
  PendingKey = true;
  return *this;
}

JsonWriter &JsonWriter::value(std::string_view Str) {
  beforeValue();
  Out += '"';
  Out += jsonEscape(Str);
  Out += '"';
  return *this;
}

JsonWriter &JsonWriter::value(bool B) {
  beforeValue();
  Out += B ? "true" : "false";
  return *this;
}

JsonWriter &JsonWriter::value(int64_t N) {
  beforeValue();
  Out += std::to_string(N);
  return *this;
}

JsonWriter &JsonWriter::value(uint64_t N) {
  beforeValue();
  Out += std::to_string(N);
  return *this;
}

JsonWriter &JsonWriter::value(double D) {
  if (!std::isfinite(D))
    return null();
  beforeValue();
  char Buffer[64];
  std::snprintf(Buffer, sizeof(Buffer), "%.17g", D);
  Out += Buffer;
  return *this;
}

JsonWriter &JsonWriter::null() {
  beforeValue();
  Out += "null";
  return *this;
}

//===----------------------------------------------------------------------===//
// Parser
//===----------------------------------------------------------------------===//

namespace {

class JsonParser {
public:
  JsonParser(std::string_view Text, JsonParseLimits Limits)
      : Text(Text), Limits(Limits) {}

  Result<JsonValue> parse() {
    skipSpace();
    Result<JsonValue> V = parseValue(0);
    if (!V)
      return V;
    skipSpace();
    if (Pos != Text.size())
      return fail("trailing bytes after JSON value");
    return V;
  }

private:
  Error fail(const std::string &Why) const {
    return makeError("JSON parse error at byte " + std::to_string(Pos) +
                     ": " + Why);
  }

  void skipSpace() {
    while (Pos < Text.size()) {
      char C = Text[Pos];
      if (C != ' ' && C != '\t' && C != '\n' && C != '\r')
        break;
      ++Pos;
    }
  }

  bool consume(char C) {
    if (Pos < Text.size() && Text[Pos] == C) {
      ++Pos;
      return true;
    }
    return false;
  }

  Result<JsonValue> parseValue(size_t Depth) {
    if (Depth > Limits.MaxDepth)
      return fail("nesting deeper than " + std::to_string(Limits.MaxDepth));
    if (Pos >= Text.size())
      return fail("unexpected end of input");
    switch (Text[Pos]) {
    case '{':
      return parseObject(Depth);
    case '[':
      return parseArray(Depth);
    case '"': {
      Result<std::string> S = parseString();
      if (!S)
        return S.error();
      return JsonValue(S.take());
    }
    case 't':
      return parseKeyword("true", JsonValue(true));
    case 'f':
      return parseKeyword("false", JsonValue(false));
    case 'n':
      return parseKeyword("null", JsonValue());
    default:
      return parseNumber();
    }
  }

  Result<JsonValue> parseKeyword(std::string_view Word, JsonValue V) {
    if (Text.substr(Pos, Word.size()) != Word)
      return fail("invalid literal");
    Pos += Word.size();
    return V;
  }

  Result<JsonValue> parseObject(size_t Depth) {
    ++Pos; // '{'
    JsonValue::Object Members;
    skipSpace();
    if (consume('}'))
      return JsonValue(std::move(Members));
    while (true) {
      skipSpace();
      if (Pos >= Text.size() || Text[Pos] != '"')
        return fail("expected object key string");
      Result<std::string> Key = parseString();
      if (!Key)
        return Key.error();
      skipSpace();
      if (!consume(':'))
        return fail("expected ':' after object key");
      skipSpace();
      Result<JsonValue> V = parseValue(Depth + 1);
      if (!V)
        return V;
      Members.emplace_back(Key.take(), V.take());
      skipSpace();
      if (consume(','))
        continue;
      if (consume('}'))
        return JsonValue(std::move(Members));
      return fail("expected ',' or '}' in object");
    }
  }

  Result<JsonValue> parseArray(size_t Depth) {
    ++Pos; // '['
    JsonValue::Array Elements;
    skipSpace();
    if (consume(']'))
      return JsonValue(std::move(Elements));
    while (true) {
      skipSpace();
      Result<JsonValue> V = parseValue(Depth + 1);
      if (!V)
        return V;
      Elements.push_back(V.take());
      skipSpace();
      if (consume(','))
        continue;
      if (consume(']'))
        return JsonValue(std::move(Elements));
      return fail("expected ',' or ']' in array");
    }
  }

  Result<uint32_t> parseHex4() {
    if (Pos + 4 > Text.size())
      return fail("truncated \\u escape");
    uint32_t V = 0;
    for (int K = 0; K != 4; ++K) {
      char C = Text[Pos + K];
      V <<= 4;
      if (C >= '0' && C <= '9')
        V |= static_cast<uint32_t>(C - '0');
      else if (C >= 'a' && C <= 'f')
        V |= static_cast<uint32_t>(C - 'a' + 10);
      else if (C >= 'A' && C <= 'F')
        V |= static_cast<uint32_t>(C - 'A' + 10);
      else
        return fail("invalid \\u escape digit");
    }
    Pos += 4;
    return V;
  }

  Result<std::string> parseString() {
    ++Pos; // '"'
    std::string Out;
    while (true) {
      if (Pos >= Text.size())
        return fail("unterminated string");
      unsigned char C = static_cast<unsigned char>(Text[Pos]);
      if (C == '"') {
        ++Pos;
        return Out;
      }
      if (C == '\\') {
        ++Pos;
        if (Pos >= Text.size())
          return fail("unterminated escape");
        char E = Text[Pos++];
        switch (E) {
        case '"':
          Out += '"';
          break;
        case '\\':
          Out += '\\';
          break;
        case '/':
          Out += '/';
          break;
        case 'b':
          Out += '\b';
          break;
        case 'f':
          Out += '\f';
          break;
        case 'n':
          Out += '\n';
          break;
        case 'r':
          Out += '\r';
          break;
        case 't':
          Out += '\t';
          break;
        case 'u': {
          Result<uint32_t> Hi = parseHex4();
          if (!Hi)
            return Hi.error();
          uint32_t CodePoint = *Hi;
          if (CodePoint >= 0xD800 && CodePoint <= 0xDBFF) {
            // High surrogate: a low surrogate escape must follow.
            if (!consume('\\') || !consume('u'))
              return fail("unpaired high surrogate");
            Result<uint32_t> Lo = parseHex4();
            if (!Lo)
              return Lo.error();
            if (*Lo < 0xDC00 || *Lo > 0xDFFF)
              return fail("invalid low surrogate");
            CodePoint =
                0x10000 + ((CodePoint - 0xD800) << 10) + (*Lo - 0xDC00);
          } else if (CodePoint >= 0xDC00 && CodePoint <= 0xDFFF) {
            return fail("unpaired low surrogate");
          }
          appendUtf8(Out, CodePoint);
          break;
        }
        default:
          return fail("invalid escape character");
        }
        continue;
      }
      if (C < 0x20)
        return fail("unescaped control byte in string");
      if (C < 0x80) {
        Out += static_cast<char>(C);
        ++Pos;
        continue;
      }
      uint32_t CodePoint;
      size_t Len = decodeUtf8(Text, Pos, CodePoint);
      if (Len == 0)
        return fail("invalid UTF-8 in string");
      Out.append(Text.substr(Pos, Len));
      Pos += Len;
    }
  }

  Result<JsonValue> parseNumber() {
    size_t Start = Pos;
    (void)consume('-');
    if (Pos >= Text.size() || !(Text[Pos] >= '0' && Text[Pos] <= '9'))
      return fail("invalid number");
    // No leading zeros: "0" or [1-9][0-9]*.
    if (Text[Pos] == '0') {
      ++Pos;
    } else {
      while (Pos < Text.size() && Text[Pos] >= '0' && Text[Pos] <= '9')
        ++Pos;
    }
    bool Integral = true;
    if (Pos < Text.size() && Text[Pos] == '.') {
      Integral = false;
      ++Pos;
      if (Pos >= Text.size() || !(Text[Pos] >= '0' && Text[Pos] <= '9'))
        return fail("digits required after decimal point");
      while (Pos < Text.size() && Text[Pos] >= '0' && Text[Pos] <= '9')
        ++Pos;
    }
    if (Pos < Text.size() && (Text[Pos] == 'e' || Text[Pos] == 'E')) {
      Integral = false;
      ++Pos;
      if (Pos < Text.size() && (Text[Pos] == '+' || Text[Pos] == '-'))
        ++Pos;
      if (Pos >= Text.size() || !(Text[Pos] >= '0' && Text[Pos] <= '9'))
        return fail("digits required in exponent");
      while (Pos < Text.size() && Text[Pos] >= '0' && Text[Pos] <= '9')
        ++Pos;
    }
    std::string Token(Text.substr(Start, Pos - Start));
    if (Integral) {
      errno = 0;
      char *End = nullptr;
      long long V = std::strtoll(Token.c_str(), &End, 10);
      if (errno == 0 && End == Token.c_str() + Token.size())
        return JsonValue(static_cast<int64_t>(V));
      // Out of int64 range: fall through to double.
    }
    errno = 0;
    char *End = nullptr;
    double D = std::strtod(Token.c_str(), &End);
    if (End != Token.c_str() + Token.size() || !std::isfinite(D))
      return fail("number out of range");
    return JsonValue(D);
  }

  std::string_view Text;
  JsonParseLimits Limits;
  size_t Pos = 0;
};

void dumpValue(JsonWriter &W, const JsonValue &V) {
  switch (V.kind()) {
  case JsonValue::Kind::Null:
    W.null();
    break;
  case JsonValue::Kind::Bool:
    W.value(V.asBool());
    break;
  case JsonValue::Kind::Int:
    W.value(static_cast<int64_t>(V.asInt()));
    break;
  case JsonValue::Kind::Double:
    W.value(V.asDouble());
    break;
  case JsonValue::Kind::String:
    W.value(V.asString());
    break;
  case JsonValue::Kind::Array:
    W.beginArray();
    for (const JsonValue &E : *V.array())
      dumpValue(W, E);
    W.endArray();
    break;
  case JsonValue::Kind::Object:
    W.beginObject();
    for (const JsonValue::Member &M : *V.object()) {
      W.key(M.first);
      dumpValue(W, M.second);
    }
    W.endObject();
    break;
  }
}

} // namespace

Result<JsonValue> algspec::parseJson(std::string_view Text,
                                     JsonParseLimits Limits) {
  return JsonParser(Text, Limits).parse();
}

std::string algspec::dumpJson(const JsonValue &Value, bool Compact) {
  JsonWriter W(Compact);
  dumpValue(W, Value);
  return W.str();
}
