//===----------------------------------------------------------------------===//
//
// Part of AlgSpec. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Json.h"

#include <cassert>

using namespace algspec;

std::string algspec::jsonEscape(std::string_view Str) {
  std::string Out;
  Out.reserve(Str.size());
  for (char C : Str) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        static const char Hex[] = "0123456789abcdef";
        Out += "\\u00";
        Out += Hex[(C >> 4) & 0xF];
        Out += Hex[C & 0xF];
      } else {
        Out += C;
      }
    }
  }
  return Out;
}

void JsonWriter::newline() {
  Out += '\n';
  Out.append(2 * Stack.size(), ' ');
}

void JsonWriter::beforeValue() {
  if (PendingKey) {
    PendingKey = false;
    return;
  }
  if (Stack.empty())
    return;
  assert(Stack.back().Kind == Scope::Array &&
         "object members need a key() before each value");
  if (Stack.back().HasEntries)
    Out += ',';
  Stack.back().HasEntries = true;
  newline();
}

JsonWriter &JsonWriter::beginObject() {
  beforeValue();
  Stack.push_back(Frame{Scope::Object, false});
  Out += '{';
  return *this;
}

JsonWriter &JsonWriter::endObject() {
  assert(!Stack.empty() && Stack.back().Kind == Scope::Object);
  bool HadEntries = Stack.back().HasEntries;
  Stack.pop_back();
  if (HadEntries)
    newline();
  Out += '}';
  return *this;
}

JsonWriter &JsonWriter::beginArray() {
  beforeValue();
  Stack.push_back(Frame{Scope::Array, false});
  Out += '[';
  return *this;
}

JsonWriter &JsonWriter::endArray() {
  assert(!Stack.empty() && Stack.back().Kind == Scope::Array);
  bool HadEntries = Stack.back().HasEntries;
  Stack.pop_back();
  if (HadEntries)
    newline();
  Out += ']';
  return *this;
}

JsonWriter &JsonWriter::key(std::string_view Name) {
  assert(!Stack.empty() && Stack.back().Kind == Scope::Object &&
         "key() is only valid inside an object");
  assert(!PendingKey && "key() already pending a value");
  if (Stack.back().HasEntries)
    Out += ',';
  Stack.back().HasEntries = true;
  newline();
  Out += '"';
  Out += jsonEscape(Name);
  Out += "\": ";
  PendingKey = true;
  return *this;
}

JsonWriter &JsonWriter::value(std::string_view Str) {
  beforeValue();
  Out += '"';
  Out += jsonEscape(Str);
  Out += '"';
  return *this;
}

JsonWriter &JsonWriter::value(bool B) {
  beforeValue();
  Out += B ? "true" : "false";
  return *this;
}

JsonWriter &JsonWriter::value(int64_t N) {
  beforeValue();
  Out += std::to_string(N);
  return *this;
}

JsonWriter &JsonWriter::value(uint64_t N) {
  beforeValue();
  Out += std::to_string(N);
  return *this;
}
