//===----------------------------------------------------------------------===//
//
// Part of AlgSpec. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small work-stealing thread pool for the verification sweeps.
///
/// Every checker workload is an embarrassingly parallel sweep over an
/// enumerated ground-term space, but the chunks are *not* uniform: a
/// deep instance can take orders of magnitude longer to normalize than
/// its neighbours. Each worker therefore owns a deque of tasks (pushed
/// round-robin at submit time) and steals from the other workers' deques
/// when its own runs dry, so a slow chunk never leaves the rest of the
/// pool idle.
///
/// Determinism does not depend on the pool: callers write results into
/// per-index slots and merge them in index order after wait().
///
//===----------------------------------------------------------------------===//

#ifndef ALGSPEC_SUPPORT_THREADPOOL_H
#define ALGSPEC_SUPPORT_THREADPOOL_H

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace algspec {

class ThreadPool {
public:
  /// Spawns \p NumThreads workers (at least one).
  explicit ThreadPool(unsigned NumThreads);

  /// Drains outstanding work, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  /// Enqueues \p Task onto the next worker's deque (round-robin). Tasks
  /// must not throw; a throwing task terminates via std::terminate like
  /// any unhandled exception on a thread.
  void submit(std::function<void()> Task);

  /// Blocks until every submitted task has finished. Establishes
  /// happens-before with all task effects, so the caller may read
  /// results written by the workers without further synchronization.
  void wait();

  unsigned numThreads() const {
    return static_cast<unsigned>(Workers.size());
  }

  /// Index of the calling pool worker in [0, numThreads()), or
  /// unsigned(-1) when called from a non-pool thread. Per-worker state
  /// (the checker replicas) is keyed by this.
  static unsigned currentWorkerIndex();

  /// The number of workers a default-configured pool would spawn:
  /// std::thread::hardware_concurrency(), at least 1.
  static unsigned defaultConcurrency();

private:
  /// One worker's deque. The owner pops from the back (LIFO, warm
  /// caches); thieves steal from the front (FIFO, oldest chunks first).
  struct WorkQueue {
    std::mutex Mutex;
    std::deque<std::function<void()>> Tasks;
  };

  void workerLoop(unsigned Index);
  bool popOwn(unsigned Index, std::function<void()> &Task);
  bool steal(unsigned Index, std::function<void()> &Task);

  std::vector<std::unique_ptr<WorkQueue>> Queues;
  std::vector<std::thread> Workers;

  std::mutex Mutex;
  std::condition_variable WorkAvailable;
  std::condition_variable AllDone;
  size_t Outstanding = 0; ///< Submitted but not yet finished.
  size_t NextQueue = 0;   ///< Round-robin submit cursor.
  bool ShuttingDown = false;
};

} // namespace algspec

#endif // ALGSPEC_SUPPORT_THREADPOOL_H
