//===----------------------------------------------------------------------===//
//
// Part of AlgSpec. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Diagnostic.h"

#include "support/SourceMgr.h"

using namespace algspec;

static const char *kindString(DiagKind Kind) {
  switch (Kind) {
  case DiagKind::Error:
    return "error";
  case DiagKind::Warning:
    return "warning";
  case DiagKind::Note:
    return "note";
  }
  return "unknown";
}

std::string DiagnosticEngine::render(const SourceMgr *SM) const {
  std::string Out;
  for (const Diagnostic &D : Diags) {
    if (SM && !SM->name().empty()) {
      Out += SM->name();
      Out += ':';
    }
    if (D.Loc.isValid()) {
      Out += std::to_string(D.Loc.line());
      Out += ':';
      Out += std::to_string(D.Loc.column());
      Out += ':';
      Out += ' ';
    }
    Out += kindString(D.Kind);
    Out += ": ";
    Out += D.Message;
    Out += '\n';
    if (SM && D.Loc.isValid()) {
      std::string_view Line = SM->lineText(D.Loc.line());
      if (!Line.empty()) {
        Out.append(Line);
        Out += '\n';
        // A location may point one past the end of the line (EOF, or a
        // token spanning the newline); clamp so the padding loop never
        // reads past the line text.
        for (uint32_t I = 1; I < D.Loc.column() && I <= Line.size(); ++I)
          Out += Line[I - 1] == '\t' ? '\t' : ' ';
        Out += "^\n";
      }
    }
  }
  return Out;
}
