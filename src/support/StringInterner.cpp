//===----------------------------------------------------------------------===//
//
// Part of AlgSpec. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/StringInterner.h"

#include <cassert>

using namespace algspec;

Symbol StringInterner::intern(std::string_view Str) {
  auto It = Table.find(Str);
  if (It != Table.end())
    return Symbol(It->second);
  uint32_t Index = static_cast<uint32_t>(Strings.size());
  // std::deque never moves existing elements, so a view into the stored
  // string stays valid for the interner's lifetime (even for SSO strings,
  // whose buffer lives inside the stable string object).
  const std::string &Stored = Strings.emplace_back(Str);
  Table.emplace(std::string_view(Stored), Index);
  return Symbol(Index);
}

Symbol StringInterner::lookup(std::string_view Str) const {
  auto It = Table.find(Str);
  if (It == Table.end())
    return Symbol();
  return Symbol(It->second);
}

std::string_view StringInterner::str(Symbol Sym) const {
  assert(Sym.isValid() && Sym.index() < Strings.size() &&
         "resolving foreign or invalid symbol");
  return Strings[Sym.index()];
}

size_t StringInterner::truncate(size_t Size) {
  assert(Size <= Strings.size() && "truncating to a future size");
  size_t Bytes = 0;
  while (Strings.size() > Size) {
    const std::string &Doomed = Strings.back();
    Bytes += Doomed.size();
    // The table key is a view into the stored string; erase it before
    // the string goes away.
    Table.erase(std::string_view(Doomed));
    Strings.pop_back();
  }
  return Bytes;
}
