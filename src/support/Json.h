//===----------------------------------------------------------------------===//
//
// Part of AlgSpec. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Streaming JSON writer and a small strict reader.
///
/// The writer produces the machine-readable CLI outputs (`algspec check
/// --json`, `algspec lint --json`) and the server's wire frames; it
/// tracks nesting and comma placement, and has a compact mode (no
/// newlines) for single-line wire frames. The reader exists for the
/// `algspec serve` protocol: it is strict (no comments, no trailing
/// commas, UTF-8 validated, bounded nesting depth) because it parses
/// bytes from untrusted network peers.
///
//===----------------------------------------------------------------------===//

#ifndef ALGSPEC_SUPPORT_JSON_H
#define ALGSPEC_SUPPORT_JSON_H

#include "support/Error.h"

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

namespace algspec {

/// Escapes \p Str for inclusion inside a JSON string literal: quotes,
/// backslashes, and control characters are escaped, and any byte
/// sequence that is not well-formed UTF-8 is replaced by the escaped
/// replacement character (\\ufffd, one per offending byte) so the
/// output is always a valid UTF-8 JSON document no matter what bytes a
/// spec file or network peer fed in.
std::string jsonEscape(std::string_view Str);

/// True when \p Str is well-formed UTF-8 (rejects overlong encodings,
/// surrogates, and code points past U+10FFFF). The wire protocol
/// validates every inbound frame with this before parsing.
bool isValidUtf8(std::string_view Str);

/// Streaming JSON writer with automatic comma and indent handling.
///
///   JsonWriter W;
///   W.beginObject();
///   W.key("findings").beginArray();
///   ...
///   W.endArray();
///   W.endObject();
///   std::string Out = W.str();
class JsonWriter {
public:
  /// \p Compact suppresses newlines and indentation: the document fits
  /// on one line, as the newline-delimited wire framing requires.
  explicit JsonWriter(bool Compact = false) : Compact(Compact) {}

  JsonWriter &beginObject();
  JsonWriter &endObject();
  JsonWriter &beginArray();
  JsonWriter &endArray();

  /// Emits "name": — must be followed by exactly one value.
  JsonWriter &key(std::string_view Name);

  JsonWriter &value(std::string_view Str);
  JsonWriter &value(const char *Str) { return value(std::string_view(Str)); }
  JsonWriter &value(bool B);
  JsonWriter &value(int64_t N);
  JsonWriter &value(uint64_t N);
  JsonWriter &value(int N) { return value(static_cast<int64_t>(N)); }
  JsonWriter &value(unsigned N) { return value(static_cast<uint64_t>(N)); }
  /// Emits a double with round-trip precision (%.17g); non-finite
  /// values, which JSON cannot represent, are emitted as null.
  JsonWriter &value(double D);
  /// Emits a literal null.
  JsonWriter &null();

  const std::string &str() const { return Out; }

private:
  void beforeValue();
  void newline();

  enum class Scope : uint8_t { Object, Array };
  struct Frame {
    Scope Kind;
    bool HasEntries = false;
  };

  std::string Out;
  std::vector<Frame> Stack;
  bool PendingKey = false;
  bool Compact = false;
};

/// One parsed JSON value. Objects preserve member order; lookup is
/// linear, which is fine for the protocol's small frames.
class JsonValue {
public:
  enum class Kind : uint8_t { Null, Bool, Int, Double, String, Array, Object };

  using Array = std::vector<JsonValue>;
  using Member = std::pair<std::string, JsonValue>;
  using Object = std::vector<Member>;

  JsonValue() : Store(nullptr) {}
  /*implicit*/ JsonValue(bool B) : Store(B) {}
  /*implicit*/ JsonValue(int64_t N) : Store(N) {}
  /*implicit*/ JsonValue(double D) : Store(D) {}
  /*implicit*/ JsonValue(std::string S) : Store(std::move(S)) {}
  /*implicit*/ JsonValue(Array A) : Store(std::move(A)) {}
  /*implicit*/ JsonValue(Object O) : Store(std::move(O)) {}

  Kind kind() const { return static_cast<Kind>(Store.index()); }
  bool isNull() const { return kind() == Kind::Null; }
  bool isBool() const { return kind() == Kind::Bool; }
  bool isInt() const { return kind() == Kind::Int; }
  bool isDouble() const { return kind() == Kind::Double; }
  bool isNumber() const { return isInt() || isDouble(); }
  bool isString() const { return kind() == Kind::String; }
  bool isArray() const { return kind() == Kind::Array; }
  bool isObject() const { return kind() == Kind::Object; }

  /// Loose accessors: return the value when the kind matches, the
  /// default otherwise (protocol fields are all optional-with-default).
  bool asBool(bool Default = false) const {
    return isBool() ? std::get<bool>(Store) : Default;
  }
  int64_t asInt(int64_t Default = 0) const {
    if (isInt())
      return std::get<int64_t>(Store);
    if (isDouble())
      return static_cast<int64_t>(std::get<double>(Store));
    return Default;
  }
  double asDouble(double Default = 0) const {
    if (isDouble())
      return std::get<double>(Store);
    if (isInt())
      return static_cast<double>(std::get<int64_t>(Store));
    return Default;
  }
  const std::string &asString() const {
    static const std::string Empty;
    return isString() ? std::get<std::string>(Store) : Empty;
  }

  const Array *array() const {
    return isArray() ? &std::get<Array>(Store) : nullptr;
  }
  const Object *object() const {
    return isObject() ? &std::get<Object>(Store) : nullptr;
  }

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue *get(std::string_view Key) const {
    if (const Object *O = object())
      for (const Member &M : *O)
        if (M.first == Key)
          return &M.second;
    return nullptr;
  }

private:
  std::variant<std::nullptr_t, bool, int64_t, double, std::string, Array,
               Object>
      Store;
};

/// Limits for parseJson. The defaults fit the wire protocol; the frame
/// size itself is bounded upstream by the server's read loop.
struct JsonParseLimits {
  /// Maximum container nesting depth (a deeply nested frame is an
  /// attack, not a request).
  size_t MaxDepth = 64;
};

/// Parses one complete JSON document (anything but whitespace after the
/// value is an error). Strict: UTF-8 is validated, control bytes inside
/// strings must be escaped, surrogate escapes must pair correctly.
Result<JsonValue> parseJson(std::string_view Text,
                            JsonParseLimits Limits = JsonParseLimits());

/// Re-encodes a parsed value (compact by default). With the writer's
/// escaping this gives encode(parse(x)) round-trip stability, pinned by
/// the support tests.
std::string dumpJson(const JsonValue &Value, bool Compact = true);

} // namespace algspec

#endif // ALGSPEC_SUPPORT_JSON_H
