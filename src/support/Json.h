//===----------------------------------------------------------------------===//
//
// Part of AlgSpec. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A minimal streaming JSON writer for the machine-readable CLI outputs
/// (`algspec check --json`, `algspec lint --json`).
///
/// The writer tracks nesting and comma placement; callers emit keys and
/// values in order. There is no reader — the toolkit only produces JSON.
///
//===----------------------------------------------------------------------===//

#ifndef ALGSPEC_SUPPORT_JSON_H
#define ALGSPEC_SUPPORT_JSON_H

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace algspec {

/// Escapes \p Str for inclusion inside a JSON string literal (quotes,
/// backslashes, control characters).
std::string jsonEscape(std::string_view Str);

/// Streaming JSON writer with automatic comma and indent handling.
///
///   JsonWriter W;
///   W.beginObject();
///   W.key("findings").beginArray();
///   ...
///   W.endArray();
///   W.endObject();
///   std::string Out = W.str();
class JsonWriter {
public:
  JsonWriter &beginObject();
  JsonWriter &endObject();
  JsonWriter &beginArray();
  JsonWriter &endArray();

  /// Emits "name": — must be followed by exactly one value.
  JsonWriter &key(std::string_view Name);

  JsonWriter &value(std::string_view Str);
  JsonWriter &value(const char *Str) { return value(std::string_view(Str)); }
  JsonWriter &value(bool B);
  JsonWriter &value(int64_t N);
  JsonWriter &value(uint64_t N);
  JsonWriter &value(int N) { return value(static_cast<int64_t>(N)); }
  JsonWriter &value(unsigned N) { return value(static_cast<uint64_t>(N)); }

  const std::string &str() const { return Out; }

private:
  void beforeValue();
  void newline();

  enum class Scope : uint8_t { Object, Array };
  struct Frame {
    Scope Kind;
    bool HasEntries = false;
  };

  std::string Out;
  std::vector<Frame> Stack;
  bool PendingKey = false;
};

} // namespace algspec

#endif // ALGSPEC_SUPPORT_JSON_H
