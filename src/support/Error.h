//===----------------------------------------------------------------------===//
//
// Part of AlgSpec, a reproduction of Guttag's algebraic-specification system
// (CACM 20(6), 1977). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lightweight error handling for a library built without exceptions.
///
/// The library reports recoverable failures (malformed specs, rewrite fuel
/// exhaustion, failed verification preconditions) through \c Result<T>, a
/// value-or-error sum type. Programmatic errors are handled with \c assert.
///
//===----------------------------------------------------------------------===//

#ifndef ALGSPEC_SUPPORT_ERROR_H
#define ALGSPEC_SUPPORT_ERROR_H

#include "support/SourceLoc.h"

#include <cassert>
#include <optional>
#include <string>
#include <utility>
#include <variant>

namespace algspec {

/// A recoverable error: a human-readable message plus an optional source
/// location pointing into the spec text that caused it.
class Error {
public:
  Error() = default;
  explicit Error(std::string Message, SourceLoc Loc = SourceLoc())
      : Message(std::move(Message)), Loc(Loc) {}

  const std::string &message() const { return Message; }
  SourceLoc location() const { return Loc; }

  /// Renders "<line>:<col>: <message>" when a location is attached.
  std::string str() const {
    if (!Loc.isValid())
      return Message;
    return std::to_string(Loc.line()) + ":" + std::to_string(Loc.column()) +
           ": " + Message;
  }

private:
  std::string Message;
  SourceLoc Loc;
};

/// Value-or-error result type.
///
/// Modeled on llvm::Expected but simplified: the error state is a plain
/// \c Error value and there is no mandatory-check machinery. Converts to
/// true on success; \c operator* / \c operator-> access the value and
/// assert on misuse.
template <typename T> class Result {
public:
  /*implicit*/ Result(T Value) : Storage(std::move(Value)) {}
  /*implicit*/ Result(Error Err) : Storage(std::move(Err)) {}

  explicit operator bool() const { return std::holds_alternative<T>(Storage); }

  const T &operator*() const & {
    assert(*this && "accessing value of failed Result");
    return std::get<T>(Storage);
  }
  T &operator*() & {
    assert(*this && "accessing value of failed Result");
    return std::get<T>(Storage);
  }
  T &&operator*() && {
    assert(*this && "accessing value of failed Result");
    return std::move(std::get<T>(Storage));
  }
  const T *operator->() const {
    assert(*this && "accessing value of failed Result");
    return &std::get<T>(Storage);
  }
  T *operator->() {
    assert(*this && "accessing value of failed Result");
    return &std::get<T>(Storage);
  }

  const Error &error() const {
    assert(!*this && "accessing error of successful Result");
    return std::get<Error>(Storage);
  }

  /// Moves the value out, asserting success.
  T take() {
    assert(*this && "taking value of failed Result");
    return std::move(std::get<T>(Storage));
  }

private:
  std::variant<T, Error> Storage;
};

/// Result specialization for operations that produce no value.
template <> class Result<void> {
public:
  Result() = default;
  /*implicit*/ Result(Error Err) : Err(std::move(Err)) {}

  explicit operator bool() const { return !Err.has_value(); }
  const Error &error() const {
    assert(Err && "accessing error of successful Result");
    return *Err;
  }

private:
  std::optional<Error> Err;
};

/// Convenience factory mirroring llvm::createStringError.
inline Error makeError(std::string Message, SourceLoc Loc = SourceLoc()) {
  return Error(std::move(Message), Loc);
}

} // namespace algspec

#endif // ALGSPEC_SUPPORT_ERROR_H
