//===----------------------------------------------------------------------===//
//
// Part of AlgSpec. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/SourceMgr.h"

#include <algorithm>
#include <cassert>

using namespace algspec;

SourceMgr::SourceMgr(std::string BufferName, std::string Text)
    : BufferName(std::move(BufferName)), Text(std::move(Text)) {
  LineStarts.push_back(0);
  for (size_t I = 0, E = this->Text.size(); I != E; ++I)
    if (this->Text[I] == '\n' && I + 1 != E)
      LineStarts.push_back(I + 1);
}

SourceLoc SourceMgr::locForOffset(size_t Offset) const {
  if (LineStarts.empty())
    return SourceLoc(1, 1);
  Offset = std::min(Offset, Text.size());
  // Find the last line start <= Offset.
  auto It = std::upper_bound(LineStarts.begin(), LineStarts.end(), Offset);
  assert(It != LineStarts.begin() && "LineStarts[0] must be 0");
  size_t LineIndex = static_cast<size_t>(It - LineStarts.begin()) - 1;
  uint32_t Column = static_cast<uint32_t>(Offset - LineStarts[LineIndex]) + 1;
  return SourceLoc(static_cast<uint32_t>(LineIndex) + 1, Column);
}

std::string_view SourceMgr::lineText(uint32_t Line) const {
  if (Line == 0 || Line > numLines())
    return {};
  size_t Begin = LineStarts[Line - 1];
  size_t End = Line < LineStarts.size() ? LineStarts[Line] : Text.size();
  std::string_view View(Text);
  View = View.substr(Begin, End - Begin);
  while (!View.empty() && (View.back() == '\n' || View.back() == '\r'))
    View.remove_suffix(1);
  return View;
}

uint32_t SourceMgr::numLines() const {
  return static_cast<uint32_t>(LineStarts.size());
}
