//===----------------------------------------------------------------------===//
//
// Part of AlgSpec. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Diagnostic collection for the spec front end and the checkers.
///
/// Parsing and checking never abort on the first problem: they emit
/// diagnostics into a \c DiagnosticEngine so a user fixing a spec sees every
/// issue at once, the way the paper's interactive completion system keeps
/// prompting for all missing cases.
///
//===----------------------------------------------------------------------===//

#ifndef ALGSPEC_SUPPORT_DIAGNOSTIC_H
#define ALGSPEC_SUPPORT_DIAGNOSTIC_H

#include "support/SourceLoc.h"

#include <string>
#include <vector>

namespace algspec {

class SourceMgr;

/// Severity of a diagnostic.
enum class DiagKind {
  Error,   ///< The spec is unusable (syntax error, unknown sort, ...).
  Warning, ///< Suspicious but usable (unused variable, shadowed op, ...).
  Note,    ///< Attached explanation or suggestion (missing axiom LHS, ...).
};

/// One diagnostic message with an optional location.
struct Diagnostic {
  DiagKind Kind = DiagKind::Error;
  SourceLoc Loc;
  std::string Message;

  Diagnostic() = default;
  Diagnostic(DiagKind Kind, SourceLoc Loc, std::string Message)
      : Kind(Kind), Loc(Loc), Message(std::move(Message)) {}
};

/// Accumulates diagnostics produced while processing one spec buffer.
class DiagnosticEngine {
public:
  void error(SourceLoc Loc, std::string Message) {
    Diags.emplace_back(DiagKind::Error, Loc, std::move(Message));
    ++NumErrors;
  }
  void warning(SourceLoc Loc, std::string Message) {
    Diags.emplace_back(DiagKind::Warning, Loc, std::move(Message));
  }
  void note(SourceLoc Loc, std::string Message) {
    Diags.emplace_back(DiagKind::Note, Loc, std::move(Message));
  }

  bool hasErrors() const { return NumErrors != 0; }
  unsigned errorCount() const { return NumErrors; }
  const std::vector<Diagnostic> &diagnostics() const { return Diags; }
  void clear() {
    Diags.clear();
    NumErrors = 0;
  }

  /// Renders all diagnostics, one per line, in the conventional
  /// "name:line:col: severity: message" form. When \p SM is non-null the
  /// offending source line and a caret are appended, clang-style.
  std::string render(const SourceMgr *SM = nullptr) const;

private:
  std::vector<Diagnostic> Diags;
  unsigned NumErrors = 0;
};

} // namespace algspec

#endif // ALGSPEC_SUPPORT_DIAGNOSTIC_H
