//===----------------------------------------------------------------------===//
//
// Part of AlgSpec. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// ParallelDriver: shards an index space across a work-stealing pool
/// with one replica state per worker.
///
/// The shape every checker shares: a deterministic enumeration defines
/// an index space [0, Total); checking index i needs mutable engine
/// state (term arena, memo table) but no other index; the serial report
/// visits indices in ascending order. The driver parallelizes exactly
/// that shape:
///
///  - each pool worker lazily builds its own State (for the checkers: a
///    re-elaborated AlgebraContext + RewriteSystem + RewriteEngine — the
///    shared, hash-consed arena is mutated during normalization and is
///    deliberately non-copyable, so workers never share one);
///  - the index space is cut into contiguous chunks, large enough to
///    amortize dispatch, small enough for the pool to steal;
///  - every index writes its result into a preallocated slot, so after
///    wait() the caller merges in ascending index order and produces
///    output byte-identical to the serial sweep at any worker count.
///
//===----------------------------------------------------------------------===//

#ifndef ALGSPEC_SUPPORT_PARALLEL_H
#define ALGSPEC_SUPPORT_PARALLEL_H

#include "support/ThreadPool.h"

#include <algorithm>
#include <cassert>
#include <functional>
#include <memory>
#include <vector>

namespace algspec {

/// Degree-of-parallelism knob shared by every checker entry point.
struct ParallelOptions {
  /// Worker threads for the ground-term sweeps. 1 (the default) keeps
  /// the serial code path; 0 asks for one worker per hardware thread.
  unsigned Jobs = 1;
  /// Smallest number of indices handed to one task; chunks below this
  /// are not worth the dispatch and the per-worker replica state.
  size_t MinChunk = 64;
  /// Largest flattened index space a checker hands to the parallel
  /// path. map() preallocates one result slot per index, so an
  /// uncapped enumeration product (the dynamic completeness sweep has
  /// no instance cap) would allocate its whole result vector up front;
  /// above this bound callers keep the serial sweep, which may run
  /// long but stays O(1) in memory.
  size_t MaxFlatSpace = size_t(1) << 26;
};

/// The worker count \p Opts actually asks for.
inline unsigned resolveJobs(const ParallelOptions &Opts) {
  return Opts.Jobs == 0 ? ThreadPool::defaultConcurrency() : Opts.Jobs;
}

template <typename State> class ParallelDriver {
public:
  using StateFactory = std::function<std::unique_ptr<State>()>;

  /// \p MakeState is called at most once per worker, from that worker's
  /// thread; it must only read shared data (the main context).
  ParallelDriver(const ParallelOptions &Opts, StateFactory MakeState)
      : Opts(Opts), MakeState(std::move(MakeState)),
        Jobs(resolveJobs(Opts)) {
    if (Jobs > 1) {
      Pool = std::make_unique<ThreadPool>(Jobs);
      States.resize(Jobs);
    } else {
      States.resize(1);
    }
  }

  /// True when the driver runs on a pool (callers pick the serial code
  /// path otherwise).
  bool enabled() const { return Pool != nullptr; }

  /// Optional hook run by the chunk's own worker after it finishes each
  /// contiguous chunk (and once after the whole loop on the in-driver
  /// serial path). The replica drivers use it to truncate per-worker
  /// scratch arenas between shards; anything the hook frees must not be
  /// referenced by already-written result slots.
  std::function<void(State &)> AfterChunk;

  /// Runs Body(State, I) for every I in [0, Total) and returns the
  /// results in index order. R must be default-constructible; slots are
  /// written exactly once, so no result-side locking is needed. The
  /// whole result vector is preallocated, so callers must bound Total
  /// (ParallelOptions::MaxFlatSpace) and take their serial path above
  /// the bound.
  template <typename R>
  std::vector<R> map(size_t Total,
                     const std::function<R(State &, size_t)> &Body) {
    std::vector<R> Results(Total);
    if (Total == 0)
      return Results;
    if (!Pool) {
      State &S = stateFor(0);
      for (size_t I = 0; I != Total; ++I)
        Results[I] = Body(S, I);
      if (AfterChunk)
        AfterChunk(S);
      return Results;
    }
    // Aim for several chunks per worker so stealing can rebalance
    // non-uniform normalization costs.
    size_t Chunk = std::max<size_t>(
        1, std::max(Opts.MinChunk, Total / (size_t(Jobs) * 8)));
    for (size_t Begin = 0; Begin < Total; Begin += Chunk) {
      size_t End = std::min(Begin + Chunk, Total);
      Pool->submit([this, &Results, &Body, Begin, End] {
        State &S = stateFor(ThreadPool::currentWorkerIndex());
        for (size_t I = Begin; I != End; ++I)
          Results[I] = Body(S, I);
        if (AfterChunk)
          AfterChunk(S);
      });
    }
    Pool->wait();
    return Results;
  }

  /// Every per-worker state built so far (for stats aggregation). Only
  /// valid between map() calls — i.e. with no tasks in flight.
  std::vector<State *> states() {
    std::vector<State *> Out;
    for (auto &S : States)
      if (S)
        Out.push_back(S.get());
    return Out;
  }

private:
  State &stateFor(unsigned Worker) {
    assert(Worker < States.size() && "not a pool worker thread");
    if (!States[Worker])
      States[Worker] = MakeState();
    return *States[Worker];
  }

  ParallelOptions Opts;
  StateFactory MakeState;
  unsigned Jobs;
  std::unique_ptr<ThreadPool> Pool;
  std::vector<std::unique_ptr<State>> States;
};

} // namespace algspec

#endif // ALGSPEC_SUPPORT_PARALLEL_H
