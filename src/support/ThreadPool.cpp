//===----------------------------------------------------------------------===//
//
// Part of AlgSpec. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/ThreadPool.h"

#include <cassert>

using namespace algspec;

namespace {
/// Worker index of the current thread; unsigned(-1) off the pool.
thread_local unsigned CurrentWorker = static_cast<unsigned>(-1);
} // namespace

unsigned ThreadPool::currentWorkerIndex() { return CurrentWorker; }

unsigned ThreadPool::defaultConcurrency() {
  unsigned N = std::thread::hardware_concurrency();
  return N == 0 ? 1 : N;
}

ThreadPool::ThreadPool(unsigned NumThreads) {
  if (NumThreads == 0)
    NumThreads = 1;
  Queues.reserve(NumThreads);
  for (unsigned I = 0; I != NumThreads; ++I)
    Queues.push_back(std::make_unique<WorkQueue>());
  Workers.reserve(NumThreads);
  for (unsigned I = 0; I != NumThreads; ++I)
    Workers.emplace_back([this, I] { workerLoop(I); });
}

ThreadPool::~ThreadPool() {
  wait();
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    ShuttingDown = true;
  }
  WorkAvailable.notify_all();
  for (std::thread &Worker : Workers)
    Worker.join();
}

void ThreadPool::submit(std::function<void()> Task) {
  assert(Task && "cannot submit an empty task");
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    WorkQueue &Q = *Queues[NextQueue];
    NextQueue = (NextQueue + 1) % Queues.size();
    ++Outstanding;
    std::lock_guard<std::mutex> QLock(Q.Mutex);
    Q.Tasks.push_back(std::move(Task));
  }
  WorkAvailable.notify_one();
}

void ThreadPool::wait() {
  std::unique_lock<std::mutex> Lock(Mutex);
  AllDone.wait(Lock, [this] { return Outstanding == 0; });
}

bool ThreadPool::popOwn(unsigned Index, std::function<void()> &Task) {
  WorkQueue &Q = *Queues[Index];
  std::lock_guard<std::mutex> Lock(Q.Mutex);
  if (Q.Tasks.empty())
    return false;
  Task = std::move(Q.Tasks.back());
  Q.Tasks.pop_back();
  return true;
}

bool ThreadPool::steal(unsigned Index, std::function<void()> &Task) {
  for (size_t Offset = 1; Offset < Queues.size(); ++Offset) {
    WorkQueue &Victim = *Queues[(Index + Offset) % Queues.size()];
    std::lock_guard<std::mutex> Lock(Victim.Mutex);
    if (Victim.Tasks.empty())
      continue;
    Task = std::move(Victim.Tasks.front());
    Victim.Tasks.pop_front();
    return true;
  }
  return false;
}

void ThreadPool::workerLoop(unsigned Index) {
  CurrentWorker = Index;
  while (true) {
    std::function<void()> Task;
    if (popOwn(Index, Task) || steal(Index, Task)) {
      Task();
      std::lock_guard<std::mutex> Lock(Mutex);
      if (--Outstanding == 0)
        AllDone.notify_all();
      continue;
    }
    std::unique_lock<std::mutex> Lock(Mutex);
    if (ShuttingDown)
      return;
    // Re-check the deques under the pool lock: a submit between our
    // failed scan and this wait would otherwise be missed.
    bool AnyWork = false;
    for (const auto &Q : Queues) {
      std::lock_guard<std::mutex> QLock(Q->Mutex);
      if (!Q->Tasks.empty()) {
        AnyWork = true;
        break;
      }
    }
    if (AnyWork)
      continue;
    WorkAvailable.wait(Lock);
  }
}
