//===----------------------------------------------------------------------===//
//
// Part of AlgSpec. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Thin POSIX socket layer for the `algspec serve` wire protocol:
/// RAII file descriptors, TCP and Unix-domain listeners/connectors,
/// newline-delimited frame reading with a hard size bound, and a
/// self-pipe signal watcher for graceful SIGTERM drains.
///
/// Everything here is transport: no JSON, no request semantics. Writes
/// use MSG_NOSIGNAL so a peer that disappears mid-response surfaces as
/// an error return, never a SIGPIPE.
///
//===----------------------------------------------------------------------===//

#ifndef ALGSPEC_SUPPORT_SOCKET_H
#define ALGSPEC_SUPPORT_SOCKET_H

#include "support/Error.h"

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace algspec {

/// A file descriptor with unique ownership. Move-only; closes on
/// destruction.
class Socket {
public:
  Socket() = default;
  explicit Socket(int Fd) : Fd(Fd) {}
  ~Socket() { close(); }

  Socket(Socket &&Other) noexcept : Fd(Other.Fd) { Other.Fd = -1; }
  Socket &operator=(Socket &&Other) noexcept {
    if (this != &Other) {
      close();
      Fd = Other.Fd;
      Other.Fd = -1;
    }
    return *this;
  }
  Socket(const Socket &) = delete;
  Socket &operator=(const Socket &) = delete;

  bool valid() const { return Fd >= 0; }
  int fd() const { return Fd; }

  /// Closes the descriptor now (idempotent).
  void close();

  /// shutdown(2) the read side: a reader blocked in recv() on this
  /// socket wakes with EOF. Used to drain connections on SIGTERM.
  void shutdownRead();

private:
  int Fd = -1;
};

/// A parsed listen/connect address: "unix:<path>" or
/// "tcp:<host>:<port>".
struct SocketAddress {
  enum class Kind { Unix, Tcp } AddrKind = Kind::Unix;
  std::string Path; ///< Unix socket path.
  std::string Host; ///< TCP host.
  int Port = 0;     ///< TCP port.

  static Result<SocketAddress> parse(std::string_view Text);
  std::string str() const;
};

/// Binds and listens on a Unix-domain socket, unlinking any stale
/// socket file at \p Path first.
Result<Socket> listenUnix(const std::string &Path, int Backlog = 64);

/// Binds and listens on TCP \p Host:\p Port (port 0 picks an ephemeral
/// port; \p BoundPort receives the resolved one when non-null).
Result<Socket> listenTcp(const std::string &Host, int Port,
                         int *BoundPort = nullptr, int Backlog = 64);

/// Accepts one connection from a listener.
Result<Socket> acceptSocket(const Socket &Listener);

/// Connects to \p Address (either kind).
Result<Socket> connectSocket(const SocketAddress &Address);

/// Writes all of \p Data, retrying on EINTR and short writes; uses
/// MSG_NOSIGNAL so a vanished peer is an error, not a signal.
Result<void> sendAll(const Socket &Sock, std::string_view Data);

/// Outcome of one readFrame() call.
enum class FrameStatus {
  Frame,     ///< A complete newline-terminated frame was read.
  Eof,       ///< Peer closed with no partial frame pending.
  Truncated, ///< Peer closed mid-frame (bytes after the last newline).
  Oversized, ///< Frame exceeded the size bound before its newline.
  Error,     ///< recv(2) failed.
};

/// Buffered newline-delimited frame reader over one socket. A frame is
/// everything up to (and excluding) the next '\n'; a trailing '\r' is
/// stripped so both \n and \r\n peers work. Frames longer than
/// \p MaxBytes yield Oversized without buffering the remainder — the
/// caller is expected to drop the connection, since the stream can no
/// longer be trusted to be in sync.
class FrameReader {
public:
  explicit FrameReader(size_t MaxBytes) : MaxBytes(MaxBytes) {}

  FrameStatus readFrame(const Socket &Sock, std::string &Frame);

private:
  size_t MaxBytes;
  std::string Buffer;
};

/// Self-pipe signal watcher: installs handlers for the given signals;
/// the handler writes the signal number to a pipe whose read end can be
/// polled alongside sockets. Process-global (signal dispositions are),
/// so only one instance may be installed at a time.
class SignalWatcher {
public:
  /// Installs handlers for \p Signals (e.g. {SIGTERM, SIGINT}).
  static Result<void> install(const std::vector<int> &Signals);

  /// The pollable read end of the pipe; -1 before install().
  static int fd();

  /// Consumes and returns one delivered signal number, or 0 if none is
  /// pending.
  static int take();
};

/// poll(2) for readability on up to two descriptors (pass -1 to skip
/// one). Returns the ready fd, -1 on timeout, -2 on poll error.
int pollTwo(int FdA, int FdB, int TimeoutMs);

} // namespace algspec

#endif // ALGSPEC_SUPPORT_SOCKET_H
