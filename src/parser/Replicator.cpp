//===----------------------------------------------------------------------===//
//
// Part of AlgSpec. MIT license.
//
//===----------------------------------------------------------------------===//

#include "parser/Replicator.h"

#include "ast/AlgebraContext.h"
#include "ast/SpecPrinter.h"
#include "parser/Parser.h"

using namespace algspec;

Result<std::unique_ptr<Replica>>
Replica::create(const AlgebraContext &Main,
                const std::vector<const Spec *> &Specs) {
  // One buffer, caller order: later specs may use sorts and operations
  // of earlier ones, exactly like the original elaboration.
  std::string Text;
  for (const Spec *S : Specs)
    Text += printSpec(Main, *S) + "\n";

  auto R = std::unique_ptr<Replica>(new Replica());
  R->Main = &Main;
  R->Ctx = std::make_unique<AlgebraContext>();
  Result<std::vector<Spec>> Parsed =
      parseSpecText(*R->Ctx, Text, "<replica>");
  if (!Parsed)
    return makeError("spec set does not round-trip for replication: " +
                     Parsed.error().message());
  if (Parsed->size() != Specs.size())
    return makeError("spec set does not round-trip for replication: "
                     "spec count changed");
  R->ReplicaSpecs = Parsed.take();
  return R;
}

std::vector<const Spec *> Replica::specPointers() const {
  std::vector<const Spec *> Ptrs;
  Ptrs.reserve(ReplicaSpecs.size());
  for (const Spec &S : ReplicaSpecs)
    Ptrs.push_back(&S);
  return Ptrs;
}


void Replica::syncGeneration() {
  if (Ctx->generation() == SeenGeneration)
    return;
  SortMap.clear();
  OpMap.clear();
  VarMap.clear();
  TermMap.clear();
  SeenGeneration = Ctx->generation();
}

SortId Replica::mapSort(SortId MainSort) {
  syncGeneration();
  auto It = SortMap.find(MainSort);
  if (It != SortMap.end())
    return It->second;
  const SortInfo &Info = Main->sort(MainSort);
  std::string_view Name = Main->str(Info.Name);
  SortId Mapped = Ctx->lookupSort(Name);
  if (!Mapped.isValid())
    Mapped = Info.Kind == SortKind::Atom ? Ctx->getOrAddAtomSort(Name)
                                         : Ctx->addSort(Name, Info.Kind);
  SortMap.emplace(MainSort, Mapped);
  return Mapped;
}

OpId Replica::mapOp(OpId MainOp) {
  syncGeneration();
  auto It = OpMap.find(MainOp);
  if (It != OpMap.end())
    return It->second;
  const OpInfo &Info = Main->op(MainOp);

  OpId Mapped;
  if (Info.Builtin == BuiltinOp::Ite) {
    Mapped = Ctx->getIteOp(mapSort(Info.ResultSort));
  } else if (Info.Builtin == BuiltinOp::Same) {
    Mapped = Ctx->getSameOp(mapSort(Info.ArgSorts[0]));
  } else if (Info.Builtin != BuiltinOp::None) {
    Mapped = Ctx->intOp(Info.Builtin);
  } else {
    // Resolve by name + mapped signature (operations may be overloaded).
    std::vector<SortId> WantArgs;
    WantArgs.reserve(Info.ArgSorts.size());
    for (SortId Arg : Info.ArgSorts)
      WantArgs.push_back(mapSort(Arg));
    SortId WantResult = mapSort(Info.ResultSort);
    for (OpId Candidate : Ctx->lookupOps(Main->str(Info.Name))) {
      const OpInfo &CandInfo = Ctx->op(Candidate);
      if (CandInfo.ResultSort == WantResult &&
          CandInfo.ArgSorts == WantArgs) {
        Mapped = Candidate;
        break;
      }
    }
    // No candidate: the operation is absent from the replicated spec
    // set. The invalid id is cached (the miss is deterministic) and
    // returned for the caller to check; mapTerm propagates it.
  }
  OpMap.emplace(MainOp, Mapped);
  return Mapped;
}

VarId Replica::mapVar(VarId MainVar) {
  syncGeneration();
  auto It = VarMap.find(MainVar);
  if (It != VarMap.end())
    return It->second;
  const VarInfo &Info = Main->var(MainVar);
  VarId Mapped = Ctx->addVar(Main->str(Info.Name), mapSort(Info.Sort));
  VarMap.emplace(MainVar, Mapped);
  return Mapped;
}

TermId Replica::mapTerm(TermId MainTerm) {
  syncGeneration();
  auto It = TermMap.find(MainTerm);
  if (It != TermMap.end())
    return It->second;
  const TermNode Node = Main->node(MainTerm);
  TermId Mapped;
  switch (Node.Kind) {
  case TermKind::Var:
    Mapped = Ctx->makeVar(mapVar(Node.Var));
    break;
  case TermKind::Error:
    Mapped = Ctx->makeError(mapSort(Node.Sort));
    break;
  case TermKind::Atom:
    Mapped = Ctx->makeAtom(Main->str(Node.AtomName), mapSort(Node.Sort));
    break;
  case TermKind::Int:
    Mapped = Ctx->makeInt(Main->intValue(MainTerm));
    break;
  case TermKind::Op: {
    OpId Op = mapOp(Node.Op);
    if (!Op.isValid())
      break; // Cache and return the invalid id; callers check.
    auto Span = Main->children(MainTerm);
    std::vector<TermId> Children(Span.begin(), Span.end());
    bool ChildrenOk = true;
    for (TermId &Child : Children) {
      Child = mapTerm(Child);
      ChildrenOk &= Child.isValid();
    }
    if (ChildrenOk)
      Mapped = Ctx->makeOp(Op, Children);
    break;
  }
  }
  TermMap.emplace(MainTerm, Mapped);
  return Mapped;
}
