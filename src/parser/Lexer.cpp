//===----------------------------------------------------------------------===//
//
// Part of AlgSpec. MIT license.
//
//===----------------------------------------------------------------------===//

#include "parser/Lexer.h"

#include <cctype>
#include <unordered_map>

using namespace algspec;

Lexer::Lexer(const SourceMgr &SM) : SM(SM), Text(SM.text()) {}

const Token &Lexer::peek() {
  if (!HasLookahead) {
    Lookahead = lexImpl();
    HasLookahead = true;
  }
  return Lookahead;
}

Token Lexer::next() {
  if (HasLookahead) {
    HasLookahead = false;
    return Lookahead;
  }
  return lexImpl();
}

void Lexer::skipTrivia() {
  while (Pos < Text.size()) {
    char C = Text[Pos];
    if (std::isspace(static_cast<unsigned char>(C))) {
      ++Pos;
      continue;
    }
    if (C == '-' && Pos + 1 < Text.size() && Text[Pos + 1] == '-') {
      while (Pos < Text.size() && Text[Pos] != '\n')
        ++Pos;
      continue;
    }
    break;
  }
}

static bool isIdentStart(char C) {
  return std::isalpha(static_cast<unsigned char>(C)) || C == '_';
}

static bool isIdentBody(char C) {
  return std::isalnum(static_cast<unsigned char>(C)) || C == '_';
}

static TokenKind keywordKind(std::string_view Word) {
  static const std::unordered_map<std::string_view, TokenKind> Keywords = {
      {"spec", TokenKind::KwSpec},
      {"uses", TokenKind::KwUses},
      {"sorts", TokenKind::KwSorts},
      {"ops", TokenKind::KwOps},
      {"constructors", TokenKind::KwConstructors},
      {"vars", TokenKind::KwVars},
      {"axioms", TokenKind::KwAxioms},
      {"end", TokenKind::KwEnd},
      {"if", TokenKind::KwIf},
      {"then", TokenKind::KwThen},
      {"else", TokenKind::KwElse},
      {"error", TokenKind::KwError},
  };
  auto It = Keywords.find(Word);
  return It == Keywords.end() ? TokenKind::Identifier : It->second;
}

Token Lexer::lexImpl() {
  skipTrivia();

  Token Tok;
  Tok.Loc = SM.locForOffset(Pos);
  if (Pos >= Text.size()) {
    Tok.Kind = TokenKind::Eof;
    return Tok;
  }

  size_t Start = Pos;
  char C = Text[Pos];

  if (isIdentStart(C)) {
    ++Pos;
    while (Pos < Text.size() && isIdentBody(Text[Pos]))
      ++Pos;
    if (Pos < Text.size() && Text[Pos] == '?') // IS_EMPTY?, IS_IN?, ...
      ++Pos;
    Tok.Text = Text.substr(Start, Pos - Start);
    Tok.Kind = keywordKind(Tok.Text);
    return Tok;
  }

  if (std::isdigit(static_cast<unsigned char>(C)) ||
      (C == '-' && Pos + 1 < Text.size() &&
       std::isdigit(static_cast<unsigned char>(Text[Pos + 1])))) {
    bool Negative = C == '-';
    if (Negative)
      ++Pos;
    // Accumulate manually, saturating on overflow (std::stoll would
    // throw, and the library builds without exception handling paths).
    int64_t Value = 0;
    bool Overflow = false;
    while (Pos < Text.size() &&
           std::isdigit(static_cast<unsigned char>(Text[Pos]))) {
      int Digit = Text[Pos] - '0';
      if (Value > (INT64_MAX - Digit) / 10)
        Overflow = true;
      else
        Value = Value * 10 + Digit;
      ++Pos;
    }
    Tok.Text = Text.substr(Start, Pos - Start);
    Tok.Kind = Overflow ? TokenKind::Unknown : TokenKind::IntLit;
    Tok.IntValue = Negative ? -Value : Value;
    return Tok;
  }

  if (C == '\'') {
    ++Pos;
    size_t NameStart = Pos;
    while (Pos < Text.size() && isIdentBody(Text[Pos]))
      ++Pos;
    Tok.Text = Text.substr(NameStart, Pos - NameStart);
    Tok.Kind = Tok.Text.empty() ? TokenKind::Unknown : TokenKind::AtomLit;
    return Tok;
  }

  ++Pos;
  switch (C) {
  case ':':
    Tok.Kind = TokenKind::Colon;
    break;
  case ',':
    Tok.Kind = TokenKind::Comma;
    break;
  case '(':
    Tok.Kind = TokenKind::LParen;
    break;
  case ')':
    Tok.Kind = TokenKind::RParen;
    break;
  case '=':
    Tok.Kind = TokenKind::Equal;
    break;
  case '-':
    if (Pos < Text.size() && Text[Pos] == '>') {
      ++Pos;
      Tok.Kind = TokenKind::Arrow;
      break;
    }
    Tok.Kind = TokenKind::Unknown;
    break;
  default:
    Tok.Kind = TokenKind::Unknown;
    break;
  }
  Tok.Text = Text.substr(Start, Pos - Start);
  return Tok;
}

const char *algspec::tokenKindName(TokenKind Kind) {
  switch (Kind) {
  case TokenKind::Eof:
    return "end of file";
  case TokenKind::Identifier:
    return "identifier";
  case TokenKind::AtomLit:
    return "atom literal";
  case TokenKind::IntLit:
    return "integer literal";
  case TokenKind::KwSpec:
    return "'spec'";
  case TokenKind::KwUses:
    return "'uses'";
  case TokenKind::KwSorts:
    return "'sorts'";
  case TokenKind::KwOps:
    return "'ops'";
  case TokenKind::KwConstructors:
    return "'constructors'";
  case TokenKind::KwVars:
    return "'vars'";
  case TokenKind::KwAxioms:
    return "'axioms'";
  case TokenKind::KwEnd:
    return "'end'";
  case TokenKind::KwIf:
    return "'if'";
  case TokenKind::KwThen:
    return "'then'";
  case TokenKind::KwElse:
    return "'else'";
  case TokenKind::KwError:
    return "'error'";
  case TokenKind::Colon:
    return "':'";
  case TokenKind::Comma:
    return "','";
  case TokenKind::Arrow:
    return "'->'";
  case TokenKind::LParen:
    return "'('";
  case TokenKind::RParen:
    return "')'";
  case TokenKind::Equal:
    return "'='";
  case TokenKind::Unknown:
    return "unrecognized character";
  }
  return "token";
}
