//===----------------------------------------------------------------------===//
//
// Part of AlgSpec. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Untyped concrete syntax tree for terms.
///
/// Terms are parsed to this CST first and elaborated to hash-consed,
/// sort-checked TermIds second. The split exists because elaboration is
/// bidirectional: resolving an overloaded operation needs its argument
/// sorts, while typing an atom literal needs the sort expected by its
/// context, so neither can be decided in a single left-to-right pass.
///
//===----------------------------------------------------------------------===//

#ifndef ALGSPEC_PARSER_CST_H
#define ALGSPEC_PARSER_CST_H

#include "support/SourceLoc.h"

#include <cstdint>
#include <string_view>
#include <vector>

namespace algspec {

/// One untyped term node. \c Text views into the SourceMgr buffer (or the
/// caller's string for standalone term parsing) and must outlive
/// elaboration.
struct CstTerm {
  enum class Kind : uint8_t {
    Apply, ///< Name(Children...); Children may be empty for F().
    Name,  ///< Bare identifier: variable or nullary operation.
    Atom,  ///< 'name literal.
    Int,   ///< Integer literal.
    Error, ///< The distinguished error value.
    Ite,   ///< Children = {condition, then, else}.
  };

  Kind K = Kind::Error;
  std::string_view Text;
  int64_t IntValue = 0;
  SourceLoc Loc;
  std::vector<CstTerm> Children;
};

} // namespace algspec

#endif // ALGSPEC_PARSER_CST_H
