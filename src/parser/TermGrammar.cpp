//===----------------------------------------------------------------------===//
//
// Part of AlgSpec. MIT license.
//
//===----------------------------------------------------------------------===//

#include "parser/TermGrammar.h"

#include "parser/Lexer.h"
#include "support/Diagnostic.h"

using namespace algspec;

static bool expectToken(Lexer &Lex, DiagnosticEngine &Diags, TokenKind Kind,
                        const char *Context) {
  const Token &Tok = Lex.peek();
  if (Tok.is(Kind)) {
    Lex.next();
    return true;
  }
  Diags.error(Tok.Loc, std::string("expected ") + tokenKindName(Kind) + " " +
                           Context + ", found " + tokenKindName(Tok.Kind));
  return false;
}

CstTerm algspec::parseCstTerm(Lexer &Lex, DiagnosticEngine &Diags, bool &Ok) {
  CstTerm Term;
  Token Tok = Lex.peek();
  Term.Loc = Tok.Loc;

  switch (Tok.Kind) {
  case TokenKind::KwError:
    Lex.next();
    Term.K = CstTerm::Kind::Error;
    return Term;

  case TokenKind::IntLit:
    Lex.next();
    Term.K = CstTerm::Kind::Int;
    Term.IntValue = Tok.IntValue;
    return Term;

  case TokenKind::AtomLit:
    Lex.next();
    Term.K = CstTerm::Kind::Atom;
    Term.Text = Tok.Text;
    return Term;

  case TokenKind::KwIf: {
    Lex.next();
    Term.K = CstTerm::Kind::Ite;
    Term.Children.push_back(parseCstTerm(Lex, Diags, Ok));
    if (!Ok || !expectToken(Lex, Diags, TokenKind::KwThen,
                            "in if-then-else")) {
      Ok = false;
      return Term;
    }
    Term.Children.push_back(parseCstTerm(Lex, Diags, Ok));
    if (!Ok || !expectToken(Lex, Diags, TokenKind::KwElse,
                            "in if-then-else")) {
      Ok = false;
      return Term;
    }
    Term.Children.push_back(parseCstTerm(Lex, Diags, Ok));
    return Term;
  }

  case TokenKind::LParen: {
    Lex.next();
    Term = parseCstTerm(Lex, Diags, Ok);
    if (Ok && !expectToken(Lex, Diags, TokenKind::RParen,
                           "after parenthesized term"))
      Ok = false;
    return Term;
  }

  case TokenKind::Identifier: {
    Lex.next();
    Term.Text = Tok.Text;
    if (!Lex.peek().is(TokenKind::LParen)) {
      Term.K = CstTerm::Kind::Name;
      return Term;
    }
    Lex.next(); // '('
    Term.K = CstTerm::Kind::Apply;
    if (Lex.peek().is(TokenKind::RParen)) {
      Lex.next();
      return Term;
    }
    while (true) {
      Term.Children.push_back(parseCstTerm(Lex, Diags, Ok));
      if (!Ok)
        return Term;
      if (Lex.peek().is(TokenKind::Comma)) {
        Lex.next();
        continue;
      }
      if (!expectToken(Lex, Diags, TokenKind::RParen,
                       "after operation arguments"))
        Ok = false;
      return Term;
    }
  }

  default:
    Diags.error(Tok.Loc, std::string("expected a term, found ") +
                             tokenKindName(Tok.Kind));
    Ok = false;
    return Term;
  }
}
