//===----------------------------------------------------------------------===//
//
// Part of AlgSpec. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Replica: a private re-elaboration of a set of specs into a fresh
/// AlgebraContext, for the parallel checkers' per-worker state.
///
/// The hash-consed term arena inside an AlgebraContext is mutated by
/// every normalization step and is deliberately non-copyable, so worker
/// threads cannot share the caller's context. Instead each worker
/// rebuilds its own: the specs are printed to canonical .alg text and
/// re-parsed into a fresh context (the same elaboration path the
/// original specs took, so sorts, operations, constructors, and axioms
/// come back in identical order — which keeps the replica's rewrite
/// rules and term enumerations index-aligned with the caller's).
///
/// On top of the re-elaborated context, the Replica maps the caller's
/// ids into its own — by name for sorts, by name + mapped signature for
/// operations (overloads resolve correctly), structurally for terms —
/// so a worker can take main-context work items (an enumerated argument
/// tuple, a translated proof obligation) and normalize them privately.
///
//===----------------------------------------------------------------------===//

#ifndef ALGSPEC_PARSER_REPLICATOR_H
#define ALGSPEC_PARSER_REPLICATOR_H

#include "ast/Ids.h"
#include "ast/Spec.h"
#include "support/Error.h"

#include <memory>
#include <unordered_map>
#include <vector>

namespace algspec {

class AlgebraContext;

class Replica {
public:
  /// Re-elaborates \p Specs (in order) into a fresh context. \p Main is
  /// only read; concurrent create() calls from several workers are safe
  /// as long as nothing mutates \p Main meanwhile. Fails when a spec
  /// does not round-trip through print + parse (e.g. it references
  /// sorts of a spec missing from \p Specs); callers fall back to the
  /// serial sweep then.
  static Result<std::unique_ptr<Replica>>
  create(const AlgebraContext &Main, const std::vector<const Spec *> &Specs);

  AlgebraContext &context() { return *Ctx; }
  const std::vector<Spec> &specs() const { return ReplicaSpecs; }
  std::vector<const Spec *> specPointers() const;

  /// Maps a main-context sort by name. Sorts absent from the replica
  /// (possible only for ids never mentioned by the replicated specs)
  /// are created on demand with the same name and kind.
  SortId mapSort(SortId MainSort);

  /// Maps a main-context operation by name and (mapped) signature.
  /// Sort-indexed builtins (if-then-else, SAME) and the Bool/Int
  /// builtins map onto the replica's own instances. Returns an invalid
  /// id when the operation is absent from the replicated spec set
  /// (possible when the caller replicates a subset of the specs);
  /// callers fall back to the serial path then.
  OpId mapOp(OpId MainOp);

  /// Maps a main-context variable; one fresh replica variable per main
  /// variable, cached, so shared variables stay shared across terms.
  VarId mapVar(VarId MainVar);

  /// Structurally rebuilds a main-context term in the replica. Returns
  /// an invalid id when any operation inside the term does not map (see
  /// mapOp); callers fall back to the serial path then.
  TermId mapTerm(TermId MainTerm);

private:
  Replica() = default;

  /// Drops the id caches when the replica context was truncated since the
  /// last map call: the cached values are replica ids, and any minted
  /// during a scratch epoch dangle after the epoch is freed. Re-mapping
  /// is deterministic, so a wholesale clear is safe (and cheap next to
  /// the re-elaboration the maps exist to avoid).
  void syncGeneration();

  const AlgebraContext *Main = nullptr;
  std::unique_ptr<AlgebraContext> Ctx;
  std::vector<Spec> ReplicaSpecs;

  std::unordered_map<SortId, SortId> SortMap;
  std::unordered_map<OpId, OpId> OpMap;
  std::unordered_map<VarId, VarId> VarMap;
  std::unordered_map<TermId, TermId> TermMap;
  /// Replica-context generation the caches were last valid for.
  uint64_t SeenGeneration = 0;
};

} // namespace algspec

#endif // ALGSPEC_PARSER_REPLICATOR_H
