//===----------------------------------------------------------------------===//
//
// Part of AlgSpec. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The term grammar shared by the spec parser (axiom sides) and the
/// standalone term parser (programs, tests). Internal to the parser
/// library.
///
//===----------------------------------------------------------------------===//

#ifndef ALGSPEC_PARSER_TERMGRAMMAR_H
#define ALGSPEC_PARSER_TERMGRAMMAR_H

#include "parser/Cst.h"

namespace algspec {

class Lexer;
class DiagnosticEngine;

/// Parses one term:
///   term := 'if' term 'then' term 'else' term
///         | 'error' | ATOM | INT
///         | IDENT [ '(' term (',' term)* ')' ]
///         | '(' term ')'
/// On syntax error emits a diagnostic, sets \p Ok to false, and returns a
/// partial node.
CstTerm parseCstTerm(Lexer &Lex, DiagnosticEngine &Diags, bool &Ok);

} // namespace algspec

#endif // ALGSPEC_PARSER_TERMGRAMMAR_H
