//===----------------------------------------------------------------------===//
//
// Part of AlgSpec. MIT license.
//
//===----------------------------------------------------------------------===//

#include "parser/Parser.h"

#include "ast/AlgebraContext.h"
#include "parser/Cst.h"
#include "parser/Lexer.h"
#include "parser/TermGrammar.h"
#include "support/SourceMgr.h"

#include <cassert>

using namespace algspec;

namespace {

/// Parser state for one buffer. Error recovery is coarse: a syntax error
/// inside a spec skips to the next `spec` / `end`, so independent specs in
/// one file are diagnosed independently.
class SpecParserImpl {
public:
  SpecParserImpl(AlgebraContext &Ctx, const SourceMgr &SM,
                 DiagnosticEngine &Diags)
      : Ctx(Ctx), Diags(Diags), Lex(SM) {}

  std::vector<Spec> parseFile();

private:
  bool parseSpec(Spec &S);
  void parseUses(Spec &S);
  void parseSorts(Spec &S);
  void parseOps(Spec &S);
  void parseConstructors();
  void parseVars(Spec &S);
  void parseAxioms(Spec &S);

  SortId lookupSortOrDiagnose(const Token &NameTok);
  bool expect(TokenKind Kind, const char *Context);
  void skipToSpecBoundary();

  AlgebraContext &Ctx;
  DiagnosticEngine &Diags;
  Lexer Lex;

  /// Per-spec parse state.
  VarScope Scope;
  std::vector<Token> PendingConstructors;
};

} // namespace

bool SpecParserImpl::expect(TokenKind Kind, const char *Context) {
  const Token &Tok = Lex.peek();
  if (Tok.is(Kind)) {
    Lex.next();
    return true;
  }
  Diags.error(Tok.Loc, std::string("expected ") + tokenKindName(Kind) + " " +
                           Context + ", found " + tokenKindName(Tok.Kind));
  return false;
}

void SpecParserImpl::skipToSpecBoundary() {
  while (true) {
    const Token &Tok = Lex.peek();
    if (Tok.is(TokenKind::Eof) || Tok.is(TokenKind::KwSpec))
      return;
    if (Tok.is(TokenKind::KwEnd)) {
      Lex.next();
      return;
    }
    Lex.next();
  }
}

std::vector<Spec> SpecParserImpl::parseFile() {
  std::vector<Spec> Specs;
  while (!Lex.peek().is(TokenKind::Eof)) {
    if (!Lex.peek().is(TokenKind::KwSpec)) {
      Diags.error(Lex.peek().Loc, std::string("expected 'spec', found ") +
                                      tokenKindName(Lex.peek().Kind));
      skipToSpecBoundary();
      continue;
    }
    unsigned ErrorsBefore = Diags.errorCount();
    Spec S;
    if (parseSpec(S) && Diags.errorCount() == ErrorsBefore)
      Specs.push_back(std::move(S));
  }
  return Specs;
}

bool SpecParserImpl::parseSpec(Spec &S) {
  Scope.clear();
  PendingConstructors.clear();

  assert(Lex.peek().is(TokenKind::KwSpec));
  Lex.next();

  Token NameTok = Lex.peek();
  if (!expect(TokenKind::Identifier, "after 'spec'")) {
    skipToSpecBoundary();
    return false;
  }
  S.setName(std::string(NameTok.Text));

  bool Done = false;
  while (!Done) {
    const Token &Tok = Lex.peek();
    switch (Tok.Kind) {
    case TokenKind::KwEnd:
      Lex.next();
      Done = true;
      break;
    case TokenKind::Eof:
      Diags.error(Tok.Loc, "missing 'end' at end of spec '" + S.name() + "'");
      Done = true;
      break;
    case TokenKind::KwUses:
      parseUses(S);
      break;
    case TokenKind::KwSorts:
      parseSorts(S);
      break;
    case TokenKind::KwOps:
      parseOps(S);
      break;
    case TokenKind::KwConstructors:
      parseConstructors();
      break;
    case TokenKind::KwVars:
      parseVars(S);
      break;
    case TokenKind::KwAxioms:
      parseAxioms(S);
      break;
    default:
      Diags.error(Tok.Loc, std::string("expected a spec section, found ") +
                               tokenKindName(Tok.Kind));
      skipToSpecBoundary();
      return false;
    }
  }

  // Apply the constructors clause now that all ops are registered.
  for (const Token &CtorTok : PendingConstructors) {
    bool Found = false;
    for (OpId Op : S.operations())
      if (Ctx.opName(Op) == CtorTok.Text) {
        Ctx.setOpKind(Op, OpKind::Constructor);
        Found = true;
      }
    if (!Found)
      Diags.error(CtorTok.Loc, "constructor '" + std::string(CtorTok.Text) +
                                   "' is not an operation of this spec");
  }
  if (PendingConstructors.empty() && !S.definedSorts().empty())
    Diags.warning(NameTok.Loc,
                  "spec '" + S.name() +
                      "' declares no constructors; the completeness "
                      "checker and the term enumerator need them");
  return true;
}

SortId SpecParserImpl::lookupSortOrDiagnose(const Token &NameTok) {
  SortId Sort = Ctx.lookupSort(NameTok.Text);
  if (!Sort.isValid())
    Diags.error(NameTok.Loc,
                "unknown sort '" + std::string(NameTok.Text) +
                    "'; declare it in 'sorts' or import it with 'uses'");
  return Sort;
}

void SpecParserImpl::parseUses(Spec &S) {
  Lex.next(); // 'uses'
  while (true) {
    Token NameTok = Lex.peek();
    if (!expect(TokenKind::Identifier, "in 'uses' list"))
      return;
    S.addUsedSort(Ctx.getOrAddAtomSort(NameTok.Text));
    if (!Lex.peek().is(TokenKind::Comma))
      return;
    Lex.next();
  }
}

void SpecParserImpl::parseSorts(Spec &S) {
  Lex.next(); // 'sorts'
  while (true) {
    Token NameTok = Lex.peek();
    if (!expect(TokenKind::Identifier, "in 'sorts' list"))
      return;
    if (Ctx.lookupSort(NameTok.Text).isValid())
      Diags.error(NameTok.Loc,
                  "sort '" + std::string(NameTok.Text) + "' already exists");
    else
      S.addDefinedSort(Ctx.addSort(NameTok.Text, SortKind::User,
                                   NameTok.Loc));
    if (!Lex.peek().is(TokenKind::Comma))
      return;
    Lex.next();
  }
}

void SpecParserImpl::parseOps(Spec &S) {
  Lex.next(); // 'ops'
  while (Lex.peek().is(TokenKind::Identifier)) {
    Token NameTok = Lex.next();
    if (!expect(TokenKind::Colon, "after operation name"))
      return;

    std::vector<SortId> ArgSorts;
    bool ArgsOk = true;
    if (!Lex.peek().is(TokenKind::Arrow)) {
      while (true) {
        Token SortTok = Lex.peek();
        if (!expect(TokenKind::Identifier, "in operation domain"))
          return;
        SortId Sort = lookupSortOrDiagnose(SortTok);
        if (Sort.isValid())
          ArgSorts.push_back(Sort);
        else
          ArgsOk = false;
        if (!Lex.peek().is(TokenKind::Comma))
          break;
        Lex.next();
      }
    }
    if (!expect(TokenKind::Arrow, "in operation declaration"))
      return;
    Token ResultTok = Lex.peek();
    if (!expect(TokenKind::Identifier, "as operation range"))
      return;
    SortId ResultSort = lookupSortOrDiagnose(ResultTok);
    if (!ResultSort.isValid() || !ArgsOk)
      continue;

    // Reject an exact redeclaration (same name, domain, and range);
    // overloads differing in range alone are legal — the elaborator
    // resolves them from the expected sort.
    bool Duplicate = false;
    for (OpId Existing : Ctx.lookupOps(NameTok.Text))
      if (Ctx.op(Existing).ArgSorts == ArgSorts &&
          Ctx.op(Existing).ResultSort == ResultSort) {
        Diags.error(NameTok.Loc, "operation '" + std::string(NameTok.Text) +
                                     "' with this signature already exists");
        Duplicate = true;
      }
    if (Duplicate)
      continue;
    S.addOperation(Ctx.addOp(NameTok.Text, std::move(ArgSorts), ResultSort,
                             OpKind::Defined, NameTok.Loc));
  }
}

void SpecParserImpl::parseConstructors() {
  Lex.next(); // 'constructors'
  while (true) {
    Token NameTok = Lex.peek();
    if (!expect(TokenKind::Identifier, "in 'constructors' list"))
      return;
    PendingConstructors.push_back(NameTok);
    if (!Lex.peek().is(TokenKind::Comma))
      return;
    Lex.next();
  }
}

void SpecParserImpl::parseVars(Spec &S) {
  Lex.next(); // 'vars'
  while (Lex.peek().is(TokenKind::Identifier)) {
    std::vector<Token> Names;
    Names.push_back(Lex.next());
    while (Lex.peek().is(TokenKind::Comma)) {
      Lex.next();
      Token NameTok = Lex.peek();
      if (!expect(TokenKind::Identifier, "in variable declaration"))
        return;
      Names.push_back(NameTok);
    }
    if (!expect(TokenKind::Colon, "after variable name(s)"))
      return;
    Token SortTok = Lex.peek();
    if (!expect(TokenKind::Identifier, "as variable sort"))
      return;
    SortId Sort = lookupSortOrDiagnose(SortTok);
    if (!Sort.isValid())
      continue;
    for (const Token &NameTok : Names) {
      std::string Key(NameTok.Text);
      if (Scope.count(Key)) {
        Diags.error(NameTok.Loc, "variable '" + Key + "' is already declared");
        continue;
      }
      VarId Var = Ctx.addVar(NameTok.Text, Sort, NameTok.Loc);
      Scope.emplace(std::move(Key), Var);
      S.addVariable(Var);
    }
  }
}

void SpecParserImpl::parseAxioms(Spec &S) {
  Lex.next(); // 'axioms'
  Elaborator Elab(Ctx, Diags, &Scope);
  while (!Lex.peek().startsSection()) {
    bool Ok = true;
    SourceLoc AxiomLoc = Lex.peek().Loc;
    CstTerm LhsCst = parseCstTerm(Lex, Diags, Ok);
    if (!Ok || !expect(TokenKind::Equal, "between axiom sides")) {
      skipToSpecBoundary();
      return;
    }
    CstTerm RhsCst = parseCstTerm(Lex, Diags, Ok);
    if (!Ok) {
      skipToSpecBoundary();
      return;
    }
    // The left-hand side determines the axiom's sort; the right-hand side
    // (which may be a bare `error` or an atom) is checked against it.
    TermId Lhs = Elab.elaborate(LhsCst, SortId());
    if (!Lhs.isValid())
      continue;
    TermId Rhs = Elab.elaborate(RhsCst, Ctx.sortOf(Lhs));
    if (!Rhs.isValid())
      continue;
    S.addAxiom(Lhs, Rhs, AxiomLoc);
  }
}

//===----------------------------------------------------------------------===//
// Public entry points
//===----------------------------------------------------------------------===//

std::vector<Spec> algspec::parseSpecs(AlgebraContext &Ctx,
                                      const SourceMgr &SM,
                                      DiagnosticEngine &Diags) {
  SpecParserImpl Parser(Ctx, SM, Diags);
  return Parser.parseFile();
}

Result<std::vector<Spec>> algspec::parseSpecText(AlgebraContext &Ctx,
                                                 std::string_view Text,
                                                 std::string BufferName) {
  SourceMgr SM(std::move(BufferName), std::string(Text));
  DiagnosticEngine Diags;
  std::vector<Spec> Specs = parseSpecs(Ctx, SM, Diags);
  if (Diags.hasErrors())
    return makeError(Diags.render(&SM));
  return Specs;
}

Result<TermId> algspec::parseTermText(AlgebraContext &Ctx,
                                      std::string_view Text,
                                      const VarScope *Scope,
                                      SortId Expected) {
  SourceMgr SM("<term>", std::string(Text));
  DiagnosticEngine Diags;
  Lexer Lex(SM);

  bool Ok = true;
  CstTerm Cst = parseCstTerm(Lex, Diags, Ok);
  if (Ok && !Lex.peek().is(TokenKind::Eof))
    Diags.error(Lex.peek().Loc, "trailing input after term");
  if (Diags.hasErrors())
    return makeError(Diags.render(&SM));

  Elaborator Elab(Ctx, Diags, Scope);
  TermId Term = Elab.elaborate(Cst, Expected);
  if (!Term.isValid() || Diags.hasErrors())
    return makeError(Diags.render(&SM));
  return Term;
}
