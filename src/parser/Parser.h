//===----------------------------------------------------------------------===//
//
// Part of AlgSpec. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Recursive-descent parser for the .alg specification language.
///
/// One buffer may define several specs (the Symboltable representation file
/// defines Stack, Array, and Symboltable together); they share the
/// AlgebraContext, so later specs can use sorts and operations of earlier
/// ones. See Lexer.h for the surface grammar.
///
//===----------------------------------------------------------------------===//

#ifndef ALGSPEC_PARSER_PARSER_H
#define ALGSPEC_PARSER_PARSER_H

#include "ast/Spec.h"
#include "parser/Elaborator.h"
#include "support/Error.h"

#include <string_view>
#include <vector>

namespace algspec {

class AlgebraContext;
class SourceMgr;

/// Parses every spec in \p SM into \p Ctx. Diagnostics (including
/// warnings) accumulate in \p Diags; the returned list contains only specs
/// that parsed without errors.
std::vector<Spec> parseSpecs(AlgebraContext &Ctx, const SourceMgr &SM,
                             DiagnosticEngine &Diags);

/// Convenience wrapper: parses \p Text as spec source and fails with the
/// rendered diagnostics if anything went wrong.
Result<std::vector<Spec>> parseSpecText(AlgebraContext &Ctx,
                                        std::string_view Text,
                                        std::string BufferName = "<spec>");

/// Parses a standalone term (for programs, tests, and the REPL-ish
/// examples). \p Scope supplies free variables (may be null for ground
/// terms); \p Expected constrains the term's sort (may be invalid).
Result<TermId> parseTermText(AlgebraContext &Ctx, std::string_view Text,
                             const VarScope *Scope = nullptr,
                             SortId Expected = SortId());

} // namespace algspec

#endif // ALGSPEC_PARSER_PARSER_H
