//===----------------------------------------------------------------------===//
//
// Part of AlgSpec. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lexer for the .alg specification language.
///
/// The surface syntax transliterates the paper's notation:
///
///   spec Queue
///     uses Item
///     sorts Queue
///     ops
///       NEW : -> Queue
///       ADD : Queue, Item -> Queue
///       FRONT : Queue -> Item
///     constructors NEW, ADD
///     vars
///       q : Queue
///       i : Item
///     axioms
///       FRONT(NEW) = error
///       FRONT(ADD(q, i)) = if IS_EMPTY(q) then i else FRONT(q)
///   end
///
/// `--` starts a comment running to end of line. Atom literals (ground
/// values of parameter sorts such as Identifier) are written 'name.
///
//===----------------------------------------------------------------------===//

#ifndef ALGSPEC_PARSER_LEXER_H
#define ALGSPEC_PARSER_LEXER_H

#include "support/SourceLoc.h"
#include "support/SourceMgr.h"

#include <cstdint>
#include <string_view>

namespace algspec {

/// Token kinds of the spec language.
enum class TokenKind : uint8_t {
  Eof,
  Identifier, ///< Names: sorts, ops, vars. `?` may end a name (IS_EMPTY?).
  AtomLit,    ///< 'name — the text excludes the quote.
  IntLit,
  // Keywords.
  KwSpec,
  KwUses,
  KwSorts,
  KwOps,
  KwConstructors,
  KwVars,
  KwAxioms,
  KwEnd,
  KwIf,
  KwThen,
  KwElse,
  KwError,
  // Punctuation.
  Colon,
  Comma,
  Arrow, ///< ->
  LParen,
  RParen,
  Equal,
  Unknown, ///< Any byte the lexer cannot classify.
};

/// One token; \c Text views into the SourceMgr buffer.
struct Token {
  TokenKind Kind = TokenKind::Eof;
  std::string_view Text;
  SourceLoc Loc;
  int64_t IntValue = 0; ///< Valid iff Kind == IntLit.

  bool is(TokenKind K) const { return Kind == K; }
  /// True for tokens that start a spec section or close a spec; used to
  /// detect the end of headerless item lists (ops, vars, axioms).
  bool startsSection() const {
    switch (Kind) {
    case TokenKind::KwUses:
    case TokenKind::KwSorts:
    case TokenKind::KwOps:
    case TokenKind::KwConstructors:
    case TokenKind::KwVars:
    case TokenKind::KwAxioms:
    case TokenKind::KwEnd:
    case TokenKind::KwSpec:
    case TokenKind::Eof:
      return true;
    default:
      return false;
    }
  }
};

/// Hand-written single-pass lexer.
class Lexer {
public:
  explicit Lexer(const SourceMgr &SM);

  /// Lexes and consumes the next token.
  Token next();
  /// Lexes the next token without consuming it.
  const Token &peek();

private:
  Token lexImpl();
  void skipTrivia();

  const SourceMgr &SM;
  std::string_view Text;
  size_t Pos = 0;
  Token Lookahead;
  bool HasLookahead = false;
};

/// Human-readable token kind name for diagnostics.
const char *tokenKindName(TokenKind Kind);

} // namespace algspec

#endif // ALGSPEC_PARSER_LEXER_H
