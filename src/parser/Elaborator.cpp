//===----------------------------------------------------------------------===//
//
// Part of AlgSpec. MIT license.
//
//===----------------------------------------------------------------------===//

#include "parser/Elaborator.h"

#include "ast/AlgebraContext.h"

#include <cassert>

using namespace algspec;

TermId Elaborator::elaborate(const CstTerm &Term, SortId Expected) {
  return elaborateImpl(Term, Expected, /*Quiet=*/false);
}

TermId Elaborator::elaborateImpl(const CstTerm &Term, SortId Expected,
                                 bool Quiet) {
  switch (Term.K) {
  case CstTerm::Kind::Error: {
    if (!Expected.isValid()) {
      emitError(Quiet, Term.Loc,
                "cannot determine the sort of 'error' here; it takes the "
                "sort expected by its context");
      return TermId();
    }
    return Ctx.makeError(Expected);
  }

  case CstTerm::Kind::Int: {
    if (Expected.isValid() && Expected != Ctx.intSort()) {
      emitError(Quiet, Term.Loc,
                "integer literal where sort '" +
                    std::string(Ctx.sortName(Expected)) + "' is expected");
      return TermId();
    }
    return Ctx.makeInt(Term.IntValue);
  }

  case CstTerm::Kind::Atom: {
    if (!Expected.isValid()) {
      emitError(Quiet, Term.Loc,
                "cannot determine the sort of atom literal '" +
                    std::string(Term.Text) +
                    "'; atoms take the sort expected by their context");
      return TermId();
    }
    if (Ctx.sort(Expected).Kind != SortKind::Atom) {
      emitError(Quiet, Term.Loc,
                "atom literal where sort '" +
                    std::string(Ctx.sortName(Expected)) +
                    "' (not a parameter sort) is expected");
      return TermId();
    }
    return Ctx.makeAtom(Term.Text, Expected);
  }

  case CstTerm::Kind::Ite: {
    assert(Term.Children.size() == 3 && "malformed if-then-else CST");
    TermId Cond =
        elaborateImpl(Term.Children[0], Ctx.boolSort(), Quiet);
    if (!Cond.isValid())
      return TermId();
    // Branch sorts: propagate the expectation. When unconstrained, infer
    // the sort from whichever branch elaborates without an expectation
    // (probed quietly) and check the other against it.
    if (Expected.isValid()) {
      TermId Then = elaborateImpl(Term.Children[1], Expected, Quiet);
      if (!Then.isValid())
        return TermId();
      TermId Else = elaborateImpl(Term.Children[2], Expected, Quiet);
      if (!Else.isValid())
        return TermId();
      return Ctx.makeIte(Cond, Then, Else);
    }
    TermId Then =
        elaborateImpl(Term.Children[1], SortId(), /*Quiet=*/true);
    if (Then.isValid()) {
      TermId Else =
          elaborateImpl(Term.Children[2], Ctx.sortOf(Then), Quiet);
      if (!Else.isValid())
        return TermId();
      return Ctx.makeIte(Cond, Then, Else);
    }
    // The then-branch alone was unelaboratable without an expectation
    // (e.g. a bare atom literal); infer from the else-branch instead.
    TermId Else =
        elaborateImpl(Term.Children[2], SortId(), /*Quiet=*/true);
    if (!Else.isValid()) {
      emitError(Quiet, Term.Loc,
                "cannot determine the sort of this if-then-else; neither "
                "branch has a determinable sort");
      return TermId();
    }
    Then = elaborateImpl(Term.Children[1], Ctx.sortOf(Else), Quiet);
    if (!Then.isValid())
      return TermId();
    return Ctx.makeIte(Cond, Then, Else);
  }

  case CstTerm::Kind::Name:
    return elaborateName(Term, Expected, Quiet);

  case CstTerm::Kind::Apply:
    return elaborateApply(Term, Expected, Quiet);
  }
  return TermId();
}

TermId Elaborator::elaborateName(const CstTerm &Term, SortId Expected,
                                 bool Quiet) {
  // Variables shadow nullary operations.
  if (Scope) {
    auto It = Scope->find(std::string(Term.Text));
    if (It != Scope->end()) {
      VarId Var = It->second;
      SortId VarSort = Ctx.var(Var).Sort;
      if (Expected.isValid() && VarSort != Expected) {
        emitError(Quiet, Term.Loc,
                  "variable '" + std::string(Term.Text) + "' has sort '" +
                      std::string(Ctx.sortName(VarSort)) +
                      "' but sort '" +
                      std::string(Ctx.sortName(Expected)) +
                      "' is expected");
        return TermId();
      }
      return Ctx.makeVar(Var);
    }
  }

  // Nullary operation.
  std::vector<OpId> Candidates = Ctx.lookupOps(Term.Text);
  std::vector<OpId> Viable;
  for (OpId Op : Candidates) {
    const OpInfo &Info = Ctx.op(Op);
    if (Info.arity() != 0)
      continue;
    if (Expected.isValid() && Info.ResultSort != Expected)
      continue;
    Viable.push_back(Op);
  }
  if (Viable.size() == 1)
    return Ctx.makeOp(Viable.front(), {});
  if (Viable.empty()) {
    emitError(Quiet, Term.Loc,
              "unknown name '" + std::string(Term.Text) +
                  "'; not a variable in scope or a matching nullary "
                  "operation");
    return TermId();
  }
  emitError(Quiet, Term.Loc,
            "ambiguous name '" + std::string(Term.Text) +
                "'; several nullary operations match");
  return TermId();
}

/// Elaborates \p Term as an application of exactly \p Op, with diagnostics
/// suppressed. Invalid TermId means this candidate does not fit.
TermId Elaborator::tryCandidate(OpId Op, const CstTerm &Term) {
  const OpInfo &Info = Ctx.op(Op);
  std::vector<TermId> Args;
  Args.reserve(Term.Children.size());
  for (size_t I = 0; I != Term.Children.size(); ++I) {
    TermId Arg =
        elaborateImpl(Term.Children[I], Info.ArgSorts[I], /*Quiet=*/true);
    if (!Arg.isValid())
      return TermId();
    Args.push_back(Arg);
  }
  return Ctx.makeOp(Op, Args);
}

TermId Elaborator::elaborateSame(const CstTerm &Term, bool Quiet) {
  if (Term.Children.size() != 2) {
    emitError(Quiet, Term.Loc, "SAME takes exactly two arguments");
    return TermId();
  }
  // The argument sort comes from whichever argument elaborates without an
  // expectation (a variable or an operation application); the other is
  // then checked against it. Two bare atom literals are rejected: the
  // paper types SAME via the independently defined type Identifier, and
  // at least one side must pin the sort.
  TermId First = elaborateImpl(Term.Children[0], SortId(), /*Quiet=*/true);
  TermId Second;
  if (First.isValid()) {
    Second = elaborateImpl(Term.Children[1], Ctx.sortOf(First), Quiet);
    if (!Second.isValid())
      return TermId();
  } else {
    Second = elaborateImpl(Term.Children[1], SortId(), /*Quiet=*/true);
    if (!Second.isValid()) {
      emitError(Quiet, Term.Loc,
                "cannot determine the argument sort of SAME; neither "
                "argument has a determinable sort");
      return TermId();
    }
    First = elaborateImpl(Term.Children[0], Ctx.sortOf(Second), Quiet);
    if (!First.isValid())
      return TermId();
  }
  SortId ArgSort = Ctx.sortOf(First);
  OpId Same = Ctx.getSameOp(ArgSort);
  TermId Args[2] = {First, Second};
  return Ctx.makeOp(Same, std::span<const TermId>(Args, 2));
}

TermId Elaborator::elaborateApply(const CstTerm &Term, SortId Expected,
                                  bool Quiet) {
  if (Term.Text == "SAME") {
    TermId Result = elaborateSame(Term, Quiet);
    if (Result.isValid() && Expected.isValid() &&
        Ctx.sortOf(Result) != Expected) {
      emitError(Quiet, Term.Loc, "SAME yields Bool but sort '" +
                                     std::string(Ctx.sortName(Expected)) +
                                     "' is expected");
      return TermId();
    }
    return Result;
  }

  std::vector<OpId> Candidates = Ctx.lookupOps(Term.Text);
  std::vector<OpId> Viable;
  for (OpId Op : Candidates) {
    const OpInfo &Info = Ctx.op(Op);
    if (Info.arity() != Term.Children.size())
      continue;
    if (Expected.isValid() && Info.ResultSort != Expected)
      continue;
    Viable.push_back(Op);
  }

  if (Viable.empty()) {
    if (Candidates.empty())
      emitError(Quiet, Term.Loc,
                "unknown operation '" + std::string(Term.Text) + "'");
    else
      emitError(Quiet, Term.Loc,
                "no overload of '" + std::string(Term.Text) + "' takes " +
                    std::to_string(Term.Children.size()) +
                    " argument(s)" +
                    (Expected.isValid()
                         ? " and yields sort '" +
                               std::string(Ctx.sortName(Expected)) + "'"
                         : std::string()));
    return TermId();
  }

  if (Viable.size() == 1) {
    // Single candidate: elaborate loudly so argument errors point at the
    // precise subterm.
    const OpInfo &Info = Ctx.op(Viable.front());
    std::vector<TermId> Args;
    Args.reserve(Term.Children.size());
    for (size_t I = 0; I != Term.Children.size(); ++I) {
      TermId Arg =
          elaborateImpl(Term.Children[I], Info.ArgSorts[I], Quiet);
      if (!Arg.isValid())
        return TermId();
      Args.push_back(Arg);
    }
    return Ctx.makeOp(Viable.front(), Args);
  }

  // Several candidates: speculative elaboration; exactly one must fit.
  TermId Winner;
  OpId WinnerOp;
  unsigned NumFits = 0;
  for (OpId Op : Viable) {
    TermId Attempt = tryCandidate(Op, Term);
    if (Attempt.isValid()) {
      ++NumFits;
      Winner = Attempt;
      WinnerOp = Op;
    }
  }
  if (NumFits == 1)
    return Winner;
  if (NumFits == 0) {
    emitError(Quiet, Term.Loc,
              "no overload of '" + std::string(Term.Text) +
                  "' matches these argument sorts");
    return TermId();
  }
  (void)WinnerOp;
  emitError(Quiet, Term.Loc,
            "ambiguous call to overloaded operation '" +
                std::string(Term.Text) + "'");
  return TermId();
}
