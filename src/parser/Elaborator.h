//===----------------------------------------------------------------------===//
//
// Part of AlgSpec. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Elaboration of untyped CST terms into sort-checked TermIds.
///
//===----------------------------------------------------------------------===//

#ifndef ALGSPEC_PARSER_ELABORATOR_H
#define ALGSPEC_PARSER_ELABORATOR_H

#include "ast/Ids.h"
#include "parser/Cst.h"
#include "support/Diagnostic.h"

#include <string>
#include <unordered_map>

namespace algspec {

class AlgebraContext;

/// Maps variable names in scope to their declarations.
using VarScope = std::unordered_map<std::string, VarId>;

/// Bidirectional sort checker / overload resolver.
///
/// Elaboration proceeds against an optional *expected sort*:
///  - bare names resolve as variables first, then as nullary operations;
///  - applications resolve their overload set by arity, expected result
///    sort, and (when several candidates remain) by speculative
///    elaboration of the arguments — exactly one candidate must survive;
///  - atom literals, integer literals, and \c error take the expected sort
///    of their context (an atom with no expected sort is an error);
///  - SAME(a, b) resolves to the sort-indexed builtin from its arguments;
///  - if-then-else checks Bool for the condition and propagates the
///    expected sort into both branches.
class Elaborator {
public:
  Elaborator(AlgebraContext &Ctx, DiagnosticEngine &Diags,
             const VarScope *Scope = nullptr)
      : Ctx(Ctx), Diags(Diags), Scope(Scope) {}

  /// Elaborates \p Term. \p Expected may be invalid (unconstrained).
  /// Returns an invalid TermId after emitting diagnostics on failure.
  TermId elaborate(const CstTerm &Term, SortId Expected);

private:
  TermId elaborateImpl(const CstTerm &Term, SortId Expected, bool Quiet);
  TermId elaborateApply(const CstTerm &Term, SortId Expected, bool Quiet);
  TermId elaborateSame(const CstTerm &Term, bool Quiet);
  TermId elaborateName(const CstTerm &Term, SortId Expected, bool Quiet);
  TermId tryCandidate(OpId Op, const CstTerm &Term);

  void emitError(bool Quiet, SourceLoc Loc, std::string Message) {
    if (!Quiet)
      Diags.error(Loc, std::move(Message));
  }

  AlgebraContext &Ctx;
  DiagnosticEngine &Diags;
  const VarScope *Scope;
};

} // namespace algspec

#endif // ALGSPEC_PARSER_ELABORATOR_H
