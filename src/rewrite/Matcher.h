//===----------------------------------------------------------------------===//
//
// Part of AlgSpec. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// First-order syntactic matching of axiom left-hand sides against terms.
///
//===----------------------------------------------------------------------===//

#ifndef ALGSPEC_REWRITE_MATCHER_H
#define ALGSPEC_REWRITE_MATCHER_H

#include "ast/Ids.h"

namespace algspec {

class AlgebraContext;
class Substitution;

/// Attempts to match \p Pattern against \p Subject, extending \p Subst
/// with the variable bindings. Returns false (leaving \p Subst in a
/// partially extended state — callers reset it) when the terms disagree.
/// Non-linear patterns are supported: a variable occurring twice must bind
/// the same subterm both times.
bool matchTerm(const AlgebraContext &Ctx, TermId Pattern, TermId Subject,
               Substitution &Subst);

} // namespace algspec

#endif // ALGSPEC_REWRITE_MATCHER_H
