//===----------------------------------------------------------------------===//
//
// Part of AlgSpec. MIT license.
//
//===----------------------------------------------------------------------===//

#include "rewrite/Compiled.h"

#include "ast/AlgebraContext.h"
#include "rewrite/RewriteSystem.h"

#include <cassert>

using namespace algspec;

RhsTemplate
RhsTemplate::compile(const AlgebraContext &Ctx, TermId Rhs,
                     const std::vector<std::pair<VarId, uint16_t>> &Slots) {
  RhsTemplate T;
  auto Emit = [&](auto &&Self, TermId Term) -> void {
    // A variable-free subtree is one prebuilt push: instantiation cannot
    // change it, and applySubstitution would return it unchanged.
    if (Ctx.isGround(Term)) {
      T.Code.push_back({TemplateInstr::Kind::PushTerm, Term, 0, OpId(), 0});
      return;
    }
    const TermNode &Node = Ctx.node(Term);
    if (Node.Kind == TermKind::Var) {
      for (const auto &[Var, Slot] : Slots) {
        if (Var == Node.Var) {
          T.Code.push_back(
              {TemplateInstr::Kind::PushSlot, TermId(), Slot, OpId(), 0});
          return;
        }
      }
      // A RHS variable absent from the LHS: RewriteSystem::build rejects
      // such axioms, but mirror applySubstitution (unbound variables stay
      // in place) rather than trusting that invariant here.
      T.Code.push_back({TemplateInstr::Kind::PushTerm, Term, 0, OpId(), 0});
      return;
    }
    assert(Node.Kind == TermKind::Op && "non-ground non-var must be an op");
    for (TermId Child : Ctx.children(Term))
      Self(Self, Child);
    T.Code.push_back({TemplateInstr::Kind::Build, TermId(), 0, Node.Op,
                      static_cast<uint16_t>(Node.NumChildren)});
  };
  Emit(Emit, Rhs);
  return T;
}

TermId RhsTemplate::instantiate(AlgebraContext &Ctx,
                                std::span<const TermId> Slots,
                                std::vector<TermId> &Stack) const {
  Stack.clear();
  for (const TemplateInstr &I : Code) {
    switch (I.K) {
    case TemplateInstr::Kind::PushTerm:
      Stack.push_back(I.Term);
      break;
    case TemplateInstr::Kind::PushSlot:
      Stack.push_back(Slots[I.Slot]);
      break;
    case TemplateInstr::Kind::Build: {
      // makeOp copies the operands before interning, so handing it a span
      // into our own scratch stack is safe; strict error propagation
      // happens inside, exactly as when applySubstitution rebuilds.
      std::span<const TermId> Operands(Stack.data() +
                                           (Stack.size() - I.Arity),
                                       I.Arity);
      TermId Built = Ctx.makeOp(I.Op, Operands);
      Stack.resize(Stack.size() - I.Arity);
      Stack.push_back(Built);
      break;
    }
    }
  }
  assert(Stack.size() == 1 && "a template builds exactly one term");
  return Stack.back();
}

CompiledRuleSet::CompiledRuleSet(const AlgebraContext &Ctx,
                                 const RewriteSystem &System) {
  for (const Rule &R : System.rules()) {
    if (Programs.count(R.HeadOp) != 0)
      continue;
    const std::vector<Rule> &Rules = System.rulesFor(R.HeadOp);
    OpProgram P;
    P.Automaton = MatchAutomaton::compile(Ctx, Rules);
    P.Templates.reserve(Rules.size());
    for (const Rule &Each : Rules)
      P.Templates.push_back(
          RhsTemplate::compile(Ctx, Each.Rhs, patternVarSlots(Ctx, Each.Lhs)));
    P.Rules = &Rules;
    Programs.emplace(R.HeadOp, std::move(P));
  }
}
