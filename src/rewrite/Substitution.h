//===----------------------------------------------------------------------===//
//
// Part of AlgSpec. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Variable substitutions and their application to terms.
///
//===----------------------------------------------------------------------===//

#ifndef ALGSPEC_REWRITE_SUBSTITUTION_H
#define ALGSPEC_REWRITE_SUBSTITUTION_H

#include "ast/Ids.h"

#include <optional>
#include <utility>
#include <vector>

namespace algspec {

class AlgebraContext;

/// A finite map from variables to terms. Axiom left-hand sides bind at
/// most a handful of variables, so a flat vector beats a hash map.
class Substitution {
public:
  /// Returns the binding for \p Var, if any.
  std::optional<TermId> lookup(VarId Var) const {
    for (const auto &[BoundVar, Term] : Bindings)
      if (BoundVar == Var)
        return Term;
    return std::nullopt;
  }

  /// Binds \p Var to \p Term. If \p Var is already bound, returns true iff
  /// the existing binding equals \p Term (hash-consing makes this one
  /// compare); a conflicting rebind is refused. This is what makes
  /// non-linear patterns like SAME(x, x) work during matching.
  bool bind(VarId Var, TermId Term) {
    if (std::optional<TermId> Existing = lookup(Var))
      return *Existing == Term;
    Bindings.emplace_back(Var, Term);
    return true;
  }

  void clear() { Bindings.clear(); }
  size_t size() const { return Bindings.size(); }
  bool empty() const { return Bindings.empty(); }

  const std::vector<std::pair<VarId, TermId>> &bindings() const {
    return Bindings;
  }

private:
  std::vector<std::pair<VarId, TermId>> Bindings;
};

/// Replaces every variable in \p Term by its binding in \p Subst.
/// Unbound variables stay in place (the caller decides whether open
/// results are acceptable).
TermId applySubstitution(AlgebraContext &Ctx, TermId Term,
                         const Substitution &Subst);

} // namespace algspec

#endif // ALGSPEC_REWRITE_SUBSTITUTION_H
