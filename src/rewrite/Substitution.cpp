//===----------------------------------------------------------------------===//
//
// Part of AlgSpec. MIT license.
//
//===----------------------------------------------------------------------===//

#include "rewrite/Substitution.h"

#include "ast/AlgebraContext.h"

#include <vector>

using namespace algspec;

TermId algspec::applySubstitution(AlgebraContext &Ctx, TermId Term,
                                  const Substitution &Subst) {
  // Taken by value: recursive substitution may reallocate the term table.
  const TermNode Node = Ctx.node(Term);
  switch (Node.Kind) {
  case TermKind::Var:
    if (std::optional<TermId> Bound = Subst.lookup(Node.Var))
      return *Bound;
    return Term;
  case TermKind::Error:
  case TermKind::Atom:
  case TermKind::Int:
    return Term;
  case TermKind::Op: {
    // Copy the children out: recursive substitution creates terms, which
    // may reallocate the context's child pool under a live span.
    auto ChildSpan = Ctx.children(Term);
    std::vector<TermId> Children(ChildSpan.begin(), ChildSpan.end());
    std::vector<TermId> NewChildren;
    NewChildren.reserve(Children.size());
    bool Changed = false;
    for (TermId Child : Children) {
      TermId NewChild = applySubstitution(Ctx, Child, Subst);
      Changed |= NewChild != Child;
      NewChildren.push_back(NewChild);
    }
    if (!Changed)
      return Term;
    return Ctx.makeOp(Node.Op, NewChildren);
  }
  }
  return Term;
}
