//===----------------------------------------------------------------------===//
//
// Part of AlgSpec. MIT license.
//
//===----------------------------------------------------------------------===//

#include "rewrite/Engine.h"

#include "ast/AlgebraContext.h"
#include "ast/TermPrinter.h"
#include "rewrite/Compiled.h"
#include "rewrite/Matcher.h"
#include "rewrite/Substitution.h"

#include <cassert>

using namespace algspec;

RewriteEngine::RewriteEngine(AlgebraContext &Ctx,
                             const RewriteSystem &System,
                             EngineOptions Options)
    : Ctx(Ctx), System(System), Options(Options),
      BaseArena(Ctx.arenaStats()) {
  syncArenaStats();
}

RewriteEngine::~RewriteEngine() = default;

void RewriteEngine::resetStats() {
  Stats = EngineStats();
  BaseArena = Ctx.arenaStats();
  syncArenaStats();
}

void RewriteEngine::warmup() {
  if (Options.Compile && !Compiled)
    Compiled = std::make_unique<CompiledRuleSet>(Ctx, System);
  if (Ctx.numSorts() > 0)
    (void)isFreeSort(SortId(0));
}

void RewriteEngine::syncArenaStats() {
  Stats.ArenaTerms = Ctx.numTerms();
  Stats.ArenaHighWater =
      std::max<uint64_t>(Stats.ArenaHighWater, Ctx.numTerms());
  ArenaStats Now = Ctx.arenaStats();
  Stats.ArenaTruncations = Now.Truncations - BaseArena.Truncations;
  Stats.ArenaTermsFreed = Now.TermsFreed - BaseArena.TermsFreed;
  Stats.ArenaBytesFreed = Now.BytesFreed - BaseArena.BytesFreed;
}

const TermId *RewriteEngine::memoLookup(TermId Key) {
  auto It = Memo.find(Key);
  if (It == Memo.end())
    return nullptr;
  if (It->second.Gen != Ctx.generation() &&
      (Key.index() >= Ctx.truncateLowWater() ||
       It->second.Value.index() >= Ctx.truncateLowWater())) {
    // Written before a truncation and possibly pointing into freed
    // arena: drop it. Counted as an ordinary miss by the caller.
    Memo.erase(It);
    return nullptr;
  }
  return &It->second.Value;
}

void RewriteEngine::memoInsert(TermId Key, TermId Value) {
  // First write wins, like the emplace this grew out of — except that a
  // stale survivor of a truncation is fair game to overwrite. The size
  // bound stays with the callers (checked once per memoized return, as
  // before, so eviction timing is unchanged).
  auto [It, Inserted] =
      Memo.try_emplace(Key, MemoEntry{Value, Ctx.generation()});
  if (!Inserted && It->second.Gen != Ctx.generation() &&
      (Key.index() >= Ctx.truncateLowWater() ||
       It->second.Value.index() >= Ctx.truncateLowWater()))
    It->second = MemoEntry{Value, Ctx.generation()};
}

Result<TermId> RewriteEngine::normalize(TermId Term) {
  uint64_t Fuel = Options.MaxSteps;
  Result<TermId> Normal = Options.Compile ? normalizeMachine(Term, Fuel)
                                          : normalizeImpl(Term, Fuel, 0);
  syncArenaStats();
  return Normal;
}

Result<bool> RewriteEngine::normalizesToError(TermId Term) {
  Result<TermId> Normal = normalize(Term);
  if (!Normal)
    return Normal.error();
  return Ctx.isError(*Normal);
}

TermId RewriteEngine::evalBuiltin(OpId Op, std::span<const TermId> Args) {
  const OpInfo &Info = Ctx.op(Op);
  auto intArg = [&](size_t I, int64_t &Out) {
    if (Ctx.node(Args[I]).Kind != TermKind::Int)
      return false;
    Out = Ctx.intValue(Args[I]);
    return true;
  };

  switch (Info.Builtin) {
  case BuiltinOp::Same: {
    const TermNode &A = Ctx.node(Args[0]);
    const TermNode &B = Ctx.node(Args[1]);
    if (A.Kind == TermKind::Atom && B.Kind == TermKind::Atom)
      return Ctx.makeBool(A.AtomName == B.AtomName);
    if (A.Kind == TermKind::Int && B.Kind == TermKind::Int)
      return Ctx.makeBool(Ctx.intValue(Args[0]) == Ctx.intValue(Args[1]));
    // Identical ground normal forms denote the same value.
    if (Args[0] == Args[1] && Ctx.isGround(Args[0]))
      return Ctx.makeBool(true);
    // Distinct constructor-ground normal forms of a freely generated
    // sort denote distinct values: no rule can rewrite either side, so
    // the disequality is decided here instead of leaving SAME stuck.
    if (Args[0] != Args[1] && isConstructorGround(Args[0]) &&
        isConstructorGround(Args[1]) && isFreeSort(Ctx.sortOf(Args[0])))
      return Ctx.makeBool(false);
    return TermId();
  }
  case BuiltinOp::IntAdd:
  case BuiltinOp::IntSub:
  case BuiltinOp::IntLe:
  case BuiltinOp::IntLt:
  case BuiltinOp::IntEq: {
    int64_t A, B;
    if (!intArg(0, A) || !intArg(1, B))
      return TermId();
    switch (Info.Builtin) {
    case BuiltinOp::IntAdd:
      return Ctx.makeInt(A + B);
    case BuiltinOp::IntSub:
      return Ctx.makeInt(A - B);
    case BuiltinOp::IntLe:
      return Ctx.makeBool(A <= B);
    case BuiltinOp::IntLt:
      return Ctx.makeBool(A < B);
    case BuiltinOp::IntEq:
      return Ctx.makeBool(A == B);
    default:
      break;
    }
    return TermId();
  }
  case BuiltinOp::BoolNot: {
    if (Args[0] == Ctx.trueTerm())
      return Ctx.falseTerm();
    if (Args[0] == Ctx.falseTerm())
      return Ctx.trueTerm();
    return TermId();
  }
  case BuiltinOp::BoolAnd: {
    if (Args[0] == Ctx.falseTerm() || Args[1] == Ctx.falseTerm())
      return Ctx.falseTerm();
    if (Args[0] == Ctx.trueTerm())
      return Args[1];
    if (Args[1] == Ctx.trueTerm())
      return Args[0];
    return TermId();
  }
  case BuiltinOp::BoolOr: {
    if (Args[0] == Ctx.trueTerm() || Args[1] == Ctx.trueTerm())
      return Ctx.trueTerm();
    if (Args[0] == Ctx.falseTerm())
      return Args[1];
    if (Args[1] == Ctx.falseTerm())
      return Args[0];
    return TermId();
  }
  case BuiltinOp::Ite:
  case BuiltinOp::None:
    break;
  }
  return TermId();
}

Result<TermId> RewriteEngine::normalizeImpl(TermId Term, uint64_t &Fuel,
                                             unsigned Depth) {
  if (Depth > Options.MaxDepth)
    return makeError("rewrite recursion depth exceeded " +
                     std::to_string(Options.MaxDepth) +
                     " while normalizing " + printTerm(Ctx, Term));
  // Rule application and branch selection loop here instead of recursing:
  // a divergent axiom set must run out of fuel, not out of stack. Only
  // child normalization recurses (bounded by term height).
  TermId Current = Term;

  Result<TermId> Normal = [&]() -> Result<TermId> {
    while (true) {
      // Take the node by value: the term table reallocates as
      // normalization creates terms.
      const TermNode Node = Ctx.node(Current);
      if (Node.Kind != TermKind::Op)
        return Current;

      if (Options.Memoize) {
        if (const TermId *Hit = memoLookup(Current)) {
          ++Stats.CacheHits;
          return *Hit;
        }
        ++Stats.CacheMisses;
      }

      const OpInfo &Info = Ctx.op(Node.Op); // Ops are stable here.

      if (Info.Builtin == BuiltinOp::Ite) {
        // Copy children out: recursion may reallocate the child pool.
        auto ChildSpan = Ctx.children(Current);
        std::vector<TermId> Children(ChildSpan.begin(), ChildSpan.end());
        Result<TermId> Cond = normalizeImpl(Children[0], Fuel, Depth + 1);
        if (!Cond)
          return Cond;
        if (Ctx.isError(*Cond))
          return Ctx.makeError(Node.Sort);
        if (*Cond == Ctx.trueTerm()) {
          Current = Children[1];
          continue;
        }
        if (*Cond == Ctx.falseTerm()) {
          Current = Children[2];
          continue;
        }
        // Open condition (symbolic use): normalize both branches, keep
        // the conditional node.
        Result<TermId> Then = normalizeImpl(Children[1], Fuel, Depth + 1);
        if (!Then)
          return Then;
        Result<TermId> Else = normalizeImpl(Children[2], Fuel, Depth + 1);
        if (!Else)
          return Else;
        ++Stats.Rebuilds;
        return Ctx.makeIte(*Cond, *Then, *Else);
      }

      // Leftmost-innermost: arguments first.
      auto ChildSpan = Ctx.children(Current);
      std::vector<TermId> Children(ChildSpan.begin(), ChildSpan.end());
      std::vector<TermId> NormChildren;
      NormChildren.reserve(Children.size());
      bool Changed = false;
      for (TermId Child : Children) {
        Result<TermId> NormChild = normalizeImpl(Child, Fuel, Depth + 1);
        if (!NormChild)
          return NormChild;
        Changed |= *NormChild != Child;
        NormChildren.push_back(*NormChild);
      }
      if (Changed) {
        ++Stats.Rebuilds;
        Current = Ctx.makeOp(Node.Op, NormChildren);
        // Child normalization may have exposed an error; strict
        // propagation happens inside makeOp.
        if (Ctx.isError(Current))
          return Current;
      }

      if (Info.isBuiltin()) {
        TermId Evaluated = evalBuiltin(Node.Op, Ctx.children(Current));
        return Evaluated.isValid() ? Evaluated : Current;
      }

      // Outermost step: first matching rule fires; loop to renormalize.
      Substitution Subst;
      bool Fired = false;
      for (const Rule &R : System.rulesFor(Node.Op)) {
        Subst.clear();
        ++Stats.MatchAttempts;
        if (!matchTerm(Ctx, R.Lhs, Current, Subst))
          continue;
        if (Fuel == 0)
          return makeError("rewrite fuel exhausted after " +
                           std::to_string(Options.MaxSteps) +
                           " steps while normalizing " +
                           printTerm(Ctx, Term));
        --Fuel;
        ++Stats.Steps;
        TermId Redex = applySubstitution(Ctx, R.Rhs, Subst);
        if (Options.KeepTrace)
          Trace.emplace_back(Current, Redex, &R);
        Current = Redex;
        Fired = true;
        break;
      }
      if (!Fired)
        return Current; // Normal form (possibly stuck).
    }
  }();

  if (Normal && Options.Memoize) {
    if (Memo.size() >= Options.MemoLimit) {
      Stats.Evictions += Memo.size();
      Memo.clear();
    }
    memoInsert(Term, *Normal);
    if (Current != Term)
      memoInsert(Current, *Normal);
  }
  return Normal;
}

namespace {

/// One activation of the explicit normalization machine. Stage says what
/// the frame is waiting for; Orig/Current mirror normalizeImpl's Term
/// parameter and Current local (the two memo keys).
struct Frame {
  enum Stage : uint8_t {
    StEnter,   ///< (Re-)examine Current from the top of the head loop.
    StIteCond, ///< Waiting on the normalized ITE condition.
    StIteThen, ///< Waiting on the normalized then-branch (open cond).
    StIteElse, ///< Waiting on the normalized else-branch (open cond).
    StChild,   ///< Waiting on the next argument's normal form.
  };
  TermId Orig;
  TermId Current;
  unsigned Depth = 0;
  Stage St = StEnter;
  std::vector<TermId> Children;
  std::vector<TermId> NormChildren;
  bool Changed = false;
  TermId IteCond;
  TermId IteThen;
};

} // namespace

Result<TermId> RewriteEngine::normalizeMachine(TermId Root, uint64_t &Fuel) {
  if (!Compiled)
    Compiled = std::make_unique<CompiledRuleSet>(Ctx, System);

  std::vector<Frame> Stack;
  Frame RootFrame;
  RootFrame.Orig = RootFrame.Current = Root;
  Stack.push_back(std::move(RootFrame));
  // The normal form produced by the frame that finished last; the parent
  // frame's stage says which slot it fills.
  TermId Ret;

  MatchScratch Scratch;
  std::vector<TermId> Slots;
  std::vector<TermId> BuildStack;

  // Pops the top frame with normal form \p Normal, memoizing under both
  // keys exactly like normalizeImpl does on return.
  auto Finish = [&](TermId Normal) {
    Frame &F = Stack.back();
    if (Options.Memoize) {
      if (Memo.size() >= Options.MemoLimit) {
        Stats.Evictions += Memo.size();
        Memo.clear();
      }
      memoInsert(F.Orig, Normal);
      if (F.Current != F.Orig)
        memoInsert(F.Current, Normal);
    }
    Ret = Normal;
    Stack.pop_back();
  };

  // Enters \p Term at \p Depth, mirroring normalizeImpl's entry depth
  // check (same error text, printed for the term being entered). Any
  // error aborts the machine without memoizing, like a propagated
  // Result error unwinding the recursion.
  auto PushFrame = [&](TermId Term, unsigned Depth) -> Result<void> {
    if (Depth > Options.MaxDepth)
      return makeError("rewrite recursion depth exceeded " +
                       std::to_string(Options.MaxDepth) +
                       " while normalizing " + printTerm(Ctx, Term));
    Frame F;
    F.Orig = F.Current = Term;
    F.Depth = Depth;
    Stack.push_back(std::move(F));
    return Result<void>();
  };

  while (!Stack.empty()) {
    Frame &F = Stack.back();
    switch (F.St) {
    case Frame::StEnter: {
      const TermNode Node = Ctx.node(F.Current);
      if (Node.Kind != TermKind::Op) {
        Finish(F.Current);
        continue;
      }
      if (Options.Memoize) {
        if (const TermId *Hit = memoLookup(F.Current)) {
          ++Stats.CacheHits;
          Finish(*Hit);
          continue;
        }
        ++Stats.CacheMisses;
      }
      const OpInfo &Info = Ctx.op(Node.Op);
      auto ChildSpan = Ctx.children(F.Current);
      F.Children.assign(ChildSpan.begin(), ChildSpan.end());
      if (Info.Builtin == BuiltinOp::Ite) {
        F.St = Frame::StIteCond;
        TermId Cond = F.Children[0];
        unsigned ChildDepth = F.Depth + 1;
        // F may dangle after the push (the frame vector reallocates).
        if (Result<void> Pushed = PushFrame(Cond, ChildDepth); !Pushed)
          return Pushed.error();
        continue;
      }
      // Leftmost-innermost: arguments first.
      F.NormChildren.clear();
      F.Changed = false;
      F.St = Frame::StChild;
      if (!F.Children.empty()) {
        TermId First = F.Children.front();
        unsigned ChildDepth = F.Depth + 1;
        if (Result<void> Pushed = PushFrame(First, ChildDepth); !Pushed)
          return Pushed.error();
      }
      continue;
    }
    case Frame::StIteCond: {
      TermId Cond = Ret;
      if (Ctx.isError(Cond)) {
        Finish(Ctx.makeError(Ctx.node(F.Current).Sort));
        continue;
      }
      if (Cond == Ctx.trueTerm()) {
        F.Current = F.Children[1];
        F.St = Frame::StEnter;
        continue;
      }
      if (Cond == Ctx.falseTerm()) {
        F.Current = F.Children[2];
        F.St = Frame::StEnter;
        continue;
      }
      // Open condition (symbolic use): normalize both branches, keep the
      // conditional node.
      F.IteCond = Cond;
      F.St = Frame::StIteThen;
      TermId Then = F.Children[1];
      unsigned ChildDepth = F.Depth + 1;
      if (Result<void> Pushed = PushFrame(Then, ChildDepth); !Pushed)
        return Pushed.error();
      continue;
    }
    case Frame::StIteThen: {
      F.IteThen = Ret;
      F.St = Frame::StIteElse;
      TermId Else = F.Children[2];
      unsigned ChildDepth = F.Depth + 1;
      if (Result<void> Pushed = PushFrame(Else, ChildDepth); !Pushed)
        return Pushed.error();
      continue;
    }
    case Frame::StIteElse: {
      ++Stats.Rebuilds;
      Finish(Ctx.makeIte(F.IteCond, F.IteThen, Ret));
      continue;
    }
    case Frame::StChild: {
      if (F.NormChildren.size() != F.Children.size()) {
        // A child frame just finished; Ret holds its normal form.
        TermId Before = F.Children[F.NormChildren.size()];
        F.Changed |= Ret != Before;
        F.NormChildren.push_back(Ret);
        if (F.NormChildren.size() != F.Children.size()) {
          TermId Next = F.Children[F.NormChildren.size()];
          unsigned ChildDepth = F.Depth + 1;
          if (Result<void> Pushed = PushFrame(Next, ChildDepth); !Pushed)
            return Pushed.error();
          continue;
        }
      }
      // All arguments normal: rebuild, evaluate, or rewrite the head.
      const TermNode Node = Ctx.node(F.Current);
      if (F.Changed) {
        ++Stats.Rebuilds;
        F.Current = Ctx.makeOp(Node.Op, F.NormChildren);
        // Child normalization may have exposed an error; strict
        // propagation happens inside makeOp.
        if (Ctx.isError(F.Current)) {
          Finish(F.Current);
          continue;
        }
      }
      const OpInfo &Info = Ctx.op(Node.Op);
      if (Info.isBuiltin()) {
        TermId Evaluated = evalBuiltin(Node.Op, Ctx.children(F.Current));
        Finish(Evaluated.isValid() ? Evaluated : F.Current);
        continue;
      }
      // Outermost step: the automaton finds the first matching rule in
      // one traversal; the template assembles the redex contractum.
      const CompiledRuleSet::OpProgram *Program =
          Compiled->programFor(Node.Op);
      int Ordinal =
          Program != nullptr
              ? Program->Automaton.match(Ctx, F.Current, Scratch, Slots,
                                         Stats.AutomatonVisits,
                                         Stats.MatchAttempts)
              : -1;
      if (Ordinal < 0) {
        Finish(F.Current); // Normal form (possibly stuck).
        continue;
      }
      if (Fuel == 0)
        return makeError("rewrite fuel exhausted after " +
                         std::to_string(Options.MaxSteps) +
                         " steps while normalizing " +
                         printTerm(Ctx, F.Orig));
      --Fuel;
      ++Stats.Steps;
      TermId Redex =
          Program->Templates[Ordinal].instantiate(Ctx, Slots, BuildStack);
      if (Options.KeepTrace)
        Trace.emplace_back(F.Current, Redex, &(*Program->Rules)[Ordinal]);
      F.Current = Redex;
      F.St = Frame::StEnter; // Loop to renormalize the contractum.
      continue;
    }
    }
  }
  return Ret;
}

std::vector<bool> algspec::computeFreeSorts(const AlgebraContext &Ctx,
                                            const RewriteSystem &System) {
  const unsigned N = Ctx.numSorts();
  std::vector<bool> FreeSorts(N, true);
  // Start with every sort free and demote until stable: a sort is not
  // free when a constructor of it heads a rule, or a constructor
  // argument reaches a non-free sort.
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (unsigned I = 0; I != N; ++I) {
      if (!FreeSorts[I])
        continue;
      SortId S(I);
      if (Ctx.sort(S).Kind == SortKind::Atom || S == Ctx.intSort())
        continue;
      bool Free = true;
      for (OpId Ctor : Ctx.constructorsOf(S)) {
        if (!System.rulesFor(Ctor).empty()) {
          Free = false;
          break;
        }
        for (SortId Arg : Ctx.op(Ctor).ArgSorts) {
          if (!FreeSorts[Arg.index()]) {
            Free = false;
            break;
          }
        }
        if (!Free)
          break;
      }
      if (!Free) {
        FreeSorts[I] = false;
        Changed = true;
      }
    }
  }
  return FreeSorts;
}

bool RewriteEngine::isFreeSort(SortId Sort) {
  // Freeness is a greatest fixpoint over the constructor-argument
  // graph, so it is computed for every sort at once: with per-sort
  // memoization, a query issued mid-recursion observes the optimistic
  // in-progress 'true' of the sort that triggered it and caches an
  // answer that a later constructor refutes — wrong for mutually
  // recursive sorts, and dependent on query order. The table is rebuilt
  // when sorts were added since the last computation (replica contexts
  // create sorts on demand); the rule set is fixed for the engine's
  // lifetime.
  if (FreeSortsComputedFor != Ctx.numSorts()) {
    FreeSorts = computeFreeSorts(Ctx, System);
    FreeSortsComputedFor = Ctx.numSorts();
  }
  return FreeSorts[Sort.index()];
}

bool RewriteEngine::isConstructorGround(TermId Term) const {
  const TermNode &Node = Ctx.node(Term);
  switch (Node.Kind) {
  case TermKind::Atom:
  case TermKind::Int:
    return true;
  case TermKind::Var:
  case TermKind::Error:
    return false;
  case TermKind::Op:
    break;
  }
  if (!Ctx.op(Node.Op).isConstructor())
    return false;
  for (TermId Child : Ctx.children(Term))
    if (!isConstructorGround(Child))
      return false;
  return true;
}

bool RewriteEngine::isStuck(TermId Term) const {
  const TermNode &Node = Ctx.node(Term);
  if (Node.Kind != TermKind::Op)
    return false;
  for (TermId Child : Ctx.children(Term))
    if (isStuck(Child))
      return true;
  const OpInfo &Info = Ctx.op(Node.Op);
  if (!Info.isDefined())
    return false;
  // A defined op surviving normalization over ground arguments has no
  // axiom covering this case.
  return Ctx.isGround(Term);
}
