//===----------------------------------------------------------------------===//
//
// Part of AlgSpec. MIT license.
//
//===----------------------------------------------------------------------===//

#include "rewrite/Engine.h"

#include "ast/AlgebraContext.h"
#include "ast/TermPrinter.h"
#include "rewrite/Matcher.h"
#include "rewrite/Substitution.h"

#include <cassert>

using namespace algspec;

Result<TermId> RewriteEngine::normalize(TermId Term) {
  uint64_t Fuel = Options.MaxSteps;
  return normalizeImpl(Term, Fuel, 0);
}

Result<bool> RewriteEngine::normalizesToError(TermId Term) {
  Result<TermId> Normal = normalize(Term);
  if (!Normal)
    return Normal.error();
  return Ctx.isError(*Normal);
}

TermId RewriteEngine::evalBuiltin(OpId Op, std::span<const TermId> Args) {
  const OpInfo &Info = Ctx.op(Op);
  auto intArg = [&](size_t I, int64_t &Out) {
    const TermNode &Node = Ctx.node(Args[I]);
    if (Node.Kind != TermKind::Int)
      return false;
    Out = Node.IntValue;
    return true;
  };

  switch (Info.Builtin) {
  case BuiltinOp::Same: {
    const TermNode &A = Ctx.node(Args[0]);
    const TermNode &B = Ctx.node(Args[1]);
    if (A.Kind == TermKind::Atom && B.Kind == TermKind::Atom)
      return Ctx.makeBool(A.AtomName == B.AtomName);
    if (A.Kind == TermKind::Int && B.Kind == TermKind::Int)
      return Ctx.makeBool(A.IntValue == B.IntValue);
    // Identical ground normal forms denote the same value.
    if (Args[0] == Args[1] && Ctx.isGround(Args[0]))
      return Ctx.makeBool(true);
    // Distinct constructor-ground normal forms of a freely generated
    // sort denote distinct values: no rule can rewrite either side, so
    // the disequality is decided here instead of leaving SAME stuck.
    if (Args[0] != Args[1] && isConstructorGround(Args[0]) &&
        isConstructorGround(Args[1]) && isFreeSort(Ctx.sortOf(Args[0])))
      return Ctx.makeBool(false);
    return TermId();
  }
  case BuiltinOp::IntAdd:
  case BuiltinOp::IntSub:
  case BuiltinOp::IntLe:
  case BuiltinOp::IntLt:
  case BuiltinOp::IntEq: {
    int64_t A, B;
    if (!intArg(0, A) || !intArg(1, B))
      return TermId();
    switch (Info.Builtin) {
    case BuiltinOp::IntAdd:
      return Ctx.makeInt(A + B);
    case BuiltinOp::IntSub:
      return Ctx.makeInt(A - B);
    case BuiltinOp::IntLe:
      return Ctx.makeBool(A <= B);
    case BuiltinOp::IntLt:
      return Ctx.makeBool(A < B);
    case BuiltinOp::IntEq:
      return Ctx.makeBool(A == B);
    default:
      break;
    }
    return TermId();
  }
  case BuiltinOp::BoolNot: {
    if (Args[0] == Ctx.trueTerm())
      return Ctx.falseTerm();
    if (Args[0] == Ctx.falseTerm())
      return Ctx.trueTerm();
    return TermId();
  }
  case BuiltinOp::BoolAnd: {
    if (Args[0] == Ctx.falseTerm() || Args[1] == Ctx.falseTerm())
      return Ctx.falseTerm();
    if (Args[0] == Ctx.trueTerm())
      return Args[1];
    if (Args[1] == Ctx.trueTerm())
      return Args[0];
    return TermId();
  }
  case BuiltinOp::BoolOr: {
    if (Args[0] == Ctx.trueTerm() || Args[1] == Ctx.trueTerm())
      return Ctx.trueTerm();
    if (Args[0] == Ctx.falseTerm())
      return Args[1];
    if (Args[1] == Ctx.falseTerm())
      return Args[0];
    return TermId();
  }
  case BuiltinOp::Ite:
  case BuiltinOp::None:
    break;
  }
  return TermId();
}

Result<TermId> RewriteEngine::normalizeImpl(TermId Term, uint64_t &Fuel,
                                             unsigned Depth) {
  if (Depth > Options.MaxDepth)
    return makeError("rewrite recursion depth exceeded " +
                     std::to_string(Options.MaxDepth) +
                     " while normalizing " + printTerm(Ctx, Term));
  // Rule application and branch selection loop here instead of recursing:
  // a divergent axiom set must run out of fuel, not out of stack. Only
  // child normalization recurses (bounded by term height).
  TermId Current = Term;

  Result<TermId> Normal = [&]() -> Result<TermId> {
    while (true) {
      // Take the node by value: the term table reallocates as
      // normalization creates terms.
      const TermNode Node = Ctx.node(Current);
      if (Node.Kind != TermKind::Op)
        return Current;

      if (Options.Memoize) {
        auto It = Memo.find(Current);
        if (It != Memo.end()) {
          ++Stats.CacheHits;
          return It->second;
        }
        ++Stats.CacheMisses;
      }

      const OpInfo &Info = Ctx.op(Node.Op); // Ops are stable here.

      if (Info.Builtin == BuiltinOp::Ite) {
        // Copy children out: recursion may reallocate the child pool.
        auto ChildSpan = Ctx.children(Current);
        std::vector<TermId> Children(ChildSpan.begin(), ChildSpan.end());
        Result<TermId> Cond = normalizeImpl(Children[0], Fuel, Depth + 1);
        if (!Cond)
          return Cond;
        if (Ctx.isError(*Cond))
          return Ctx.makeError(Node.Sort);
        if (*Cond == Ctx.trueTerm()) {
          Current = Children[1];
          continue;
        }
        if (*Cond == Ctx.falseTerm()) {
          Current = Children[2];
          continue;
        }
        // Open condition (symbolic use): normalize both branches, keep
        // the conditional node.
        Result<TermId> Then = normalizeImpl(Children[1], Fuel, Depth + 1);
        if (!Then)
          return Then;
        Result<TermId> Else = normalizeImpl(Children[2], Fuel, Depth + 1);
        if (!Else)
          return Else;
        ++Stats.Rebuilds;
        return Ctx.makeIte(*Cond, *Then, *Else);
      }

      // Leftmost-innermost: arguments first.
      auto ChildSpan = Ctx.children(Current);
      std::vector<TermId> Children(ChildSpan.begin(), ChildSpan.end());
      std::vector<TermId> NormChildren;
      NormChildren.reserve(Children.size());
      bool Changed = false;
      for (TermId Child : Children) {
        Result<TermId> NormChild = normalizeImpl(Child, Fuel, Depth + 1);
        if (!NormChild)
          return NormChild;
        Changed |= *NormChild != Child;
        NormChildren.push_back(*NormChild);
      }
      if (Changed) {
        ++Stats.Rebuilds;
        Current = Ctx.makeOp(Node.Op, NormChildren);
        // Child normalization may have exposed an error; strict
        // propagation happens inside makeOp.
        if (Ctx.isError(Current))
          return Current;
      }

      if (Info.isBuiltin()) {
        TermId Evaluated = evalBuiltin(Node.Op, Ctx.children(Current));
        return Evaluated.isValid() ? Evaluated : Current;
      }

      // Outermost step: first matching rule fires; loop to renormalize.
      Substitution Subst;
      bool Fired = false;
      for (const Rule &R : System.rulesFor(Node.Op)) {
        Subst.clear();
        if (!matchTerm(Ctx, R.Lhs, Current, Subst))
          continue;
        if (Fuel == 0)
          return makeError("rewrite fuel exhausted after " +
                           std::to_string(Options.MaxSteps) +
                           " steps while normalizing " +
                           printTerm(Ctx, Term));
        --Fuel;
        ++Stats.Steps;
        TermId Redex = applySubstitution(Ctx, R.Rhs, Subst);
        if (Options.KeepTrace)
          Trace.emplace_back(Current, Redex, &R);
        Current = Redex;
        Fired = true;
        break;
      }
      if (!Fired)
        return Current; // Normal form (possibly stuck).
    }
  }();

  if (Normal && Options.Memoize) {
    if (Memo.size() >= Options.MemoLimit) {
      Stats.Evictions += Memo.size();
      Memo.clear();
    }
    Memo.emplace(Term, *Normal);
    if (Current != Term)
      Memo.emplace(Current, *Normal);
  }
  return Normal;
}

bool RewriteEngine::isFreeSort(SortId Sort) {
  // Freeness is a greatest fixpoint over the constructor-argument
  // graph, so it is computed for every sort at once: with per-sort
  // memoization, a query issued mid-recursion observes the optimistic
  // in-progress 'true' of the sort that triggered it and caches an
  // answer that a later constructor refutes — wrong for mutually
  // recursive sorts, and dependent on query order. The table is rebuilt
  // when sorts were added since the last computation (replica contexts
  // create sorts on demand); the rule set is fixed for the engine's
  // lifetime.
  if (FreeSortsComputedFor != Ctx.numSorts()) {
    const unsigned N = Ctx.numSorts();
    FreeSorts.assign(N, true);
    // Start with every sort free and demote until stable: a sort is not
    // free when a constructor of it heads a rule, or a constructor
    // argument reaches a non-free sort.
    bool Changed = true;
    while (Changed) {
      Changed = false;
      for (unsigned I = 0; I != N; ++I) {
        if (!FreeSorts[I])
          continue;
        SortId S(I);
        if (Ctx.sort(S).Kind == SortKind::Atom || S == Ctx.intSort())
          continue;
        bool Free = true;
        for (OpId Ctor : Ctx.constructorsOf(S)) {
          if (!System.rulesFor(Ctor).empty()) {
            Free = false;
            break;
          }
          for (SortId Arg : Ctx.op(Ctor).ArgSorts) {
            if (!FreeSorts[Arg.index()]) {
              Free = false;
              break;
            }
          }
          if (!Free)
            break;
        }
        if (!Free) {
          FreeSorts[I] = false;
          Changed = true;
        }
      }
    }
    FreeSortsComputedFor = N;
  }
  return FreeSorts[Sort.index()];
}

bool RewriteEngine::isConstructorGround(TermId Term) const {
  const TermNode &Node = Ctx.node(Term);
  switch (Node.Kind) {
  case TermKind::Atom:
  case TermKind::Int:
    return true;
  case TermKind::Var:
  case TermKind::Error:
    return false;
  case TermKind::Op:
    break;
  }
  if (!Ctx.op(Node.Op).isConstructor())
    return false;
  for (TermId Child : Ctx.children(Term))
    if (!isConstructorGround(Child))
      return false;
  return true;
}

bool RewriteEngine::isStuck(TermId Term) const {
  const TermNode &Node = Ctx.node(Term);
  if (Node.Kind != TermKind::Op)
    return false;
  for (TermId Child : Ctx.children(Term))
    if (isStuck(Child))
      return true;
  const OpInfo &Info = Ctx.op(Node.Op);
  if (!Info.isDefined())
    return false;
  // A defined op surviving normalization over ground arguments has no
  // axiom covering this case.
  return Ctx.isGround(Term);
}
