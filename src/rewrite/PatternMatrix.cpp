//===----------------------------------------------------------------------===//
//
// Part of AlgSpec. MIT license.
//
//===----------------------------------------------------------------------===//

#include "rewrite/PatternMatrix.h"

#include <algorithm>
#include <cassert>
#include <cctype>
#include <unordered_set>

using namespace algspec;

TermId PatternMatrix::wildcard(SortId Sort) {
  auto It = Wildcards.find(Sort);
  if (It != Wildcards.end())
    return It->second;
  std::string Name(Ctx.sortName(Sort));
  for (char &C : Name)
    C = static_cast<char>(std::tolower(static_cast<unsigned char>(C)));
  // Reuse an existing variable of the right name and sort before minting
  // a new one: witness TermIds then agree across matrix instances in one
  // context (serial vs sharded sweeps, static vs minimized reports).
  Symbol Sym = Ctx.intern(Name);
  VarId Var;
  for (unsigned I = 0; I != Ctx.numVars(); ++I) {
    const VarInfo &VI = Ctx.var(VarId(I));
    if (VI.Name == Sym && VI.Sort == Sort) {
      Var = VarId(I);
      break;
    }
  }
  if (!Var.isValid())
    Var = Ctx.addVar(Name, Sort);
  TermId Term = Ctx.makeVar(Var);
  Wildcards.emplace(Sort, Term);
  return Term;
}

bool PatternMatrix::isConstructorPattern(const AlgebraContext &Ctx,
                                         TermId Pattern) {
  const TermNode &Node = Ctx.node(Pattern);
  switch (Node.Kind) {
  case TermKind::Var:
  case TermKind::Atom:
  case TermKind::Int:
    return true;
  case TermKind::Error:
    return false; // error never appears in a meaningful LHS.
  case TermKind::Op: {
    if (!Ctx.op(Node.Op).isConstructor())
      return false;
    for (TermId Child : Ctx.children(Pattern))
      if (!isConstructorPattern(Ctx, Child))
        return false;
    return true;
  }
  }
  return false;
}

bool PatternMatrix::isLinearRow(const AlgebraContext &Ctx, const Row &R) {
  std::unordered_set<VarId> Seen;
  bool Linear = true;
  auto Walk = [&](auto &&Self, TermId Term) -> void {
    const TermNode &Node = Ctx.node(Term);
    if (Node.Kind == TermKind::Var) {
      if (!Seen.insert(Node.Var).second)
        Linear = false;
      return;
    }
    for (TermId Child : Ctx.children(Term))
      Self(Self, Child);
  };
  for (TermId Pattern : R)
    Walk(Walk, Pattern);
  return Linear;
}

//===----------------------------------------------------------------------===//
// Exhaustiveness
//===----------------------------------------------------------------------===//

PatternMatrix::Coverage
PatternMatrix::findUncovered(std::vector<Row> Rows,
                             std::vector<SortId> Sorts) {
  Coverage Out;
  Out.Witness =
      findUncoveredImpl(std::move(Rows), std::move(Sorts), Out.BlockedSorts);
  return Out;
}

std::optional<PatternMatrix::Row>
PatternMatrix::findUncoveredImpl(std::vector<Row> Rows,
                                 std::vector<SortId> Sorts,
                                 std::vector<SortId> &Blocked) {
  // No rows: everything is uncovered; the all-wildcards tuple witnesses it.
  if (Rows.empty()) {
    Row Witness;
    Witness.reserve(Sorts.size());
    for (SortId Sort : Sorts)
      Witness.push_back(wildcard(Sort));
    return Witness;
  }

  // A row of variables matches every tuple.
  for (const Row &R : Rows)
    if (std::all_of(R.begin(), R.end(),
                    [&](TermId P) { return isVar(P); }))
      return std::nullopt;

  // Pick the first column with a non-variable pattern and case-split on it.
  size_t Col = 0;
  while (Col < Sorts.size()) {
    bool HasNonVar = false;
    for (const Row &R : Rows)
      if (!isVar(R[Col])) {
        HasNonVar = true;
        break;
      }
    if (HasNonVar)
      break;
    ++Col;
  }
  assert(Col < Sorts.size() && "non-wildcard row must have a pattern");

  SortId ColSort = Sorts[Col];
  const SortInfo &ColInfo = Ctx.sort(ColSort);

  // Helper: the matrix with column Col fixed and (optionally) replaced by
  // expansion columns; returns the witness with the column re-wrapped.
  auto specializeByConstructor = [&](OpId Ctor) -> std::optional<Row> {
    const OpInfo &CtorInfo = Ctx.op(Ctor);
    std::vector<Row> NewRows;
    for (const Row &R : Rows) {
      TermId Pat = R[Col];
      Row NewRow;
      if (isVar(Pat)) {
        NewRow = R;
        NewRow.erase(NewRow.begin() + Col);
        for (SortId ArgSort : CtorInfo.ArgSorts)
          NewRow.push_back(wildcard(ArgSort));
        NewRows.push_back(std::move(NewRow));
        continue;
      }
      const TermNode &PatNode = Ctx.node(Pat);
      if (PatNode.Kind != TermKind::Op || PatNode.Op != Ctor)
        continue; // Other constructor: row cannot match this case.
      NewRow = R;
      NewRow.erase(NewRow.begin() + Col);
      for (TermId Child : Ctx.children(Pat))
        NewRow.push_back(Child);
      NewRows.push_back(std::move(NewRow));
    }
    std::vector<SortId> NewSorts = Sorts;
    NewSorts.erase(NewSorts.begin() + Col);
    for (SortId ArgSort : CtorInfo.ArgSorts)
      NewSorts.push_back(ArgSort);

    auto Sub =
        findUncoveredImpl(std::move(NewRows), std::move(NewSorts), Blocked);
    if (!Sub)
      return std::nullopt;
    // Reassemble: the expansion columns sit at the tail of the witness.
    size_t Arity = CtorInfo.arity();
    std::vector<TermId> CtorArgs(Sub->end() - Arity, Sub->end());
    Sub->resize(Sub->size() - Arity);
    TermId Wrapped = Ctx.makeOp(Ctor, CtorArgs);
    Sub->insert(Sub->begin() + Col, Wrapped);
    return Sub;
  };

  if (ColInfo.Kind == SortKind::User || ColInfo.Kind == SortKind::Bool) {
    std::vector<OpId> Ctors = Ctx.constructorsOf(ColSort);
    if (Ctors.empty()) {
      Blocked.push_back(ColSort);
      return std::nullopt;
    }
    for (OpId Ctor : Ctors)
      if (auto Witness = specializeByConstructor(Ctor))
        return Witness;
    return std::nullopt;
  }

  // Literal-inhabited sorts (Atom, Int): case-split on each literal
  // appearing in the column, plus the "any other literal" case, which
  // only variable rows can cover.
  std::vector<TermId> Literals;
  for (const Row &R : Rows) {
    TermId Pat = R[Col];
    if (!isVar(Pat) &&
        std::find(Literals.begin(), Literals.end(), Pat) == Literals.end())
      Literals.push_back(Pat);
  }

  auto specializeByLiteral =
      [&](std::optional<TermId> Literal) -> std::optional<Row> {
    std::vector<Row> NewRows;
    for (const Row &R : Rows) {
      TermId Pat = R[Col];
      bool Matches = isVar(Pat) || (Literal && Pat == *Literal);
      if (!Matches)
        continue;
      Row NewRow = R;
      NewRow.erase(NewRow.begin() + Col);
      NewRows.push_back(std::move(NewRow));
    }
    std::vector<SortId> NewSorts = Sorts;
    NewSorts.erase(NewSorts.begin() + Col);
    auto Sub =
        findUncoveredImpl(std::move(NewRows), std::move(NewSorts), Blocked);
    if (!Sub)
      return std::nullopt;
    Sub->insert(Sub->begin() + Col, Literal ? *Literal : wildcard(ColSort));
    return Sub;
  };

  for (TermId Literal : Literals)
    if (auto Witness = specializeByLiteral(Literal))
      return Witness;
  return specializeByLiteral(std::nullopt);
}

//===----------------------------------------------------------------------===//
// Usefulness
//===----------------------------------------------------------------------===//

bool PatternMatrix::isUseful(std::vector<Row> Rows, Row Query,
                             std::vector<SortId> Sorts) {
  assert(Query.size() == Sorts.size() && "query/sort arity mismatch");
  if (Query.empty())
    return Rows.empty();

  TermId Q0 = Query[0];
  const TermNode &QNode = Ctx.node(Q0);
  SortId ColSort = Sorts[0];

  // Specializes one row to constructor \p Ctor at column 0: the pattern's
  // children (or fresh wildcards for a variable row) replace the column
  // in place; rows headed by another constructor drop out.
  auto specializeRow = [&](const Row &R, OpId Ctor) -> std::optional<Row> {
    const OpInfo &CtorInfo = Ctx.op(Ctor);
    TermId Pat = R[0];
    Row Out;
    Out.reserve(CtorInfo.arity() + R.size() - 1);
    if (isVar(Pat)) {
      for (SortId ArgSort : CtorInfo.ArgSorts)
        Out.push_back(wildcard(ArgSort));
    } else {
      const TermNode &PatNode = Ctx.node(Pat);
      if (PatNode.Kind != TermKind::Op || PatNode.Op != Ctor)
        return std::nullopt;
      auto Children = Ctx.children(Pat);
      Out.assign(Children.begin(), Children.end());
    }
    Out.insert(Out.end(), R.begin() + 1, R.end());
    return Out;
  };

  auto specializedSorts = [&](OpId Ctor) {
    const OpInfo &CtorInfo = Ctx.op(Ctor);
    std::vector<SortId> Out(CtorInfo.ArgSorts.begin(),
                            CtorInfo.ArgSorts.end());
    Out.insert(Out.end(), Sorts.begin() + 1, Sorts.end());
    return Out;
  };

  if (QNode.Kind == TermKind::Op) {
    OpId Ctor = QNode.Op;
    std::vector<Row> SRows;
    for (const Row &R : Rows)
      if (auto SR = specializeRow(R, Ctor))
        SRows.push_back(std::move(*SR));
    Row SQuery = *specializeRow(Query, Ctor);
    return isUseful(std::move(SRows), std::move(SQuery),
                    specializedSorts(Ctor));
  }

  if (QNode.Kind == TermKind::Atom || QNode.Kind == TermKind::Int) {
    std::vector<Row> SRows;
    for (const Row &R : Rows) {
      TermId Pat = R[0];
      if (!isVar(Pat) && Pat != Q0)
        continue;
      Row NewRow(R.begin() + 1, R.end());
      SRows.push_back(std::move(NewRow));
    }
    return isUseful(std::move(SRows), Row(Query.begin() + 1, Query.end()),
                    std::vector<SortId>(Sorts.begin() + 1, Sorts.end()));
  }

  // Query wildcard. When the column's row heads form a complete
  // constructor signature, the wildcard is useful iff it is useful under
  // some constructor; otherwise the default matrix (variable rows only)
  // decides. Literal sorts and sorts without constructors never have a
  // complete signature.
  const SortInfo &ColInfo = Ctx.sort(ColSort);
  if (ColInfo.Kind == SortKind::User || ColInfo.Kind == SortKind::Bool) {
    std::vector<OpId> Ctors = Ctx.constructorsOf(ColSort);
    std::unordered_set<OpId> Heads;
    for (const Row &R : Rows) {
      const TermNode &PatNode = Ctx.node(R[0]);
      if (PatNode.Kind == TermKind::Op)
        Heads.insert(PatNode.Op);
    }
    bool Complete = !Ctors.empty();
    for (OpId Ctor : Ctors)
      Complete &= Heads.count(Ctor) != 0;
    if (Complete) {
      for (OpId Ctor : Ctors) {
        std::vector<Row> SRows;
        for (const Row &R : Rows)
          if (auto SR = specializeRow(R, Ctor))
            SRows.push_back(std::move(*SR));
        Row SQuery = *specializeRow(Query, Ctor);
        if (isUseful(std::move(SRows), std::move(SQuery),
                     specializedSorts(Ctor)))
          return true;
      }
      return false;
    }
  }

  std::vector<Row> DRows;
  for (const Row &R : Rows) {
    if (!isVar(R[0]))
      continue;
    DRows.push_back(Row(R.begin() + 1, R.end()));
  }
  return isUseful(std::move(DRows), Row(Query.begin() + 1, Query.end()),
                  std::vector<SortId>(Sorts.begin() + 1, Sorts.end()));
}

//===----------------------------------------------------------------------===//
// Overlap and witness minimization
//===----------------------------------------------------------------------===//

bool PatternMatrix::patternOverlaps(TermId Pattern, TermId Candidate,
                                    bool OtherLiteralWildcards) const {
  if (isVar(Pattern))
    return true;
  const TermNode &CNode = Ctx.node(Candidate);
  const TermNode &PNode = Ctx.node(Pattern);
  if (CNode.Kind == TermKind::Var) {
    if (!OtherLiteralWildcards)
      return true;
    // An "any other literal" wildcard never meets an explicit literal.
    return PNode.Kind != TermKind::Atom && PNode.Kind != TermKind::Int;
  }
  if (PNode.Kind != CNode.Kind)
    return false;
  switch (PNode.Kind) {
  case TermKind::Atom:
  case TermKind::Int:
    return Pattern == Candidate; // Literals are interned.
  case TermKind::Op: {
    if (PNode.Op != CNode.Op)
      return false;
    auto PC = Ctx.children(Pattern);
    auto CC = Ctx.children(Candidate);
    for (size_t I = 0; I != PC.size(); ++I)
      if (!patternOverlaps(PC[I], CC[I], OtherLiteralWildcards))
        return false;
    return true;
  }
  default:
    return false;
  }
}

bool PatternMatrix::rowOverlaps(const Row &Pattern, const Row &Candidate,
                                bool OtherLiteralWildcards) const {
  assert(Pattern.size() == Candidate.size() && "row arity mismatch");
  for (size_t I = 0; I != Pattern.size(); ++I)
    if (!patternOverlaps(Pattern[I], Candidate[I], OtherLiteralWildcards))
      return false;
  return true;
}

/// \p Term with the subterm at \p Pos replaced by \p Repl, rebuilding the
/// spine above it.
static TermId replaceAtPath(AlgebraContext &Ctx, TermId Term,
                            const std::vector<uint32_t> &Pos, TermId Repl,
                            size_t Depth = 0) {
  if (Depth == Pos.size())
    return Repl;
  // Copy the children out: rebuilding below creates terms, which may
  // reallocate the child pool under a live span.
  auto Span = Ctx.children(Term);
  std::vector<TermId> Children(Span.begin(), Span.end());
  Children[Pos[Depth]] =
      replaceAtPath(Ctx, Children[Pos[Depth]], Pos, Repl, Depth + 1);
  return Ctx.makeOp(Ctx.node(Term).Op, Children);
}

PatternMatrix::Row PatternMatrix::generalize(const std::vector<Row> &Rows,
                                             const Row &Ground) {
  auto Accepted = [&](const Row &Tuple) {
    for (const Row &R : Rows)
      if (rowOverlaps(R, Tuple, /*OtherLiteralWildcards=*/true))
        return false;
    return true;
  };
  // The ground tuple matching a row means the stuckness that produced it
  // lives inside the arguments (another operation's missing case), not in
  // this operation's patterns: nothing here to generalize.
  if (!Accepted(Ground))
    return Ground;

  Row Cur = Ground;
  for (size_t Col = 0; Col != Cur.size(); ++Col) {
    std::vector<uint32_t> Path;
    auto Walk = [&](auto &&Self, TermId Term) -> void {
      Row Trial = Cur;
      Trial[Col] =
          replaceAtPath(Ctx, Cur[Col], Path, wildcard(Ctx.sortOf(Term)));
      if (Accepted(Trial)) {
        Cur = std::move(Trial);
        return; // Maximally general here; nothing below survives.
      }
      if (Ctx.node(Term).Kind != TermKind::Op)
        return;
      auto Span = Ctx.children(Term);
      std::vector<TermId> Children(Span.begin(), Span.end());
      for (uint32_t I = 0; I != Children.size(); ++I) {
        Path.push_back(I);
        Self(Self, Children[I]);
        Path.pop_back();
      }
    };
    Walk(Walk, Ground[Col]);
  }
  return Cur;
}
