//===----------------------------------------------------------------------===//
//
// Part of AlgSpec. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Pattern-matrix algorithms over constructor signatures, shared by the
/// sufficient-completeness checkers (check/Completeness.h) and the static
/// exhaustiveness certifier (check/Exhaustiveness.h).
///
/// A *row* is the tuple of argument patterns of one axiom left-hand side;
/// a matrix stacks every row of one defined operation. Three questions
/// are answered, all in the style of usefulness checking for ML pattern
/// matching (Maranget):
///
///  - **findUncovered** — is there a constructor-term tuple no row
///    matches? The witness comes back as a minimal constructor skeleton
///    with wildcard variables, ready to render as the left-hand side of
///    the axiom the user still has to write.
///  - **isUseful** — does a query row match anything the matrix does
///    not? A row that is not useful relative to the rows above it is
///    dead code under first-matching-rule-wins semantics.
///  - **generalize** — given a ground tuple no row matches, the smallest
///    constructor skeleton (prefix of the ground term, wildcards below)
///    that still matches no row. The dynamic sweep uses it to minimize
///    its first-found deep witnesses into the same shape the static
///    analysis reports.
///
/// Variables are treated as independent wildcards throughout; a
/// non-linear row is thereby over-approximated (it appears to match
/// more), which is the sound direction for usefulness and for overlap
/// queries but not for claiming exhaustiveness — callers drop non-linear
/// rows before trusting a "covered" verdict.
///
//===----------------------------------------------------------------------===//

#ifndef ALGSPEC_REWRITE_PATTERNMATRIX_H
#define ALGSPEC_REWRITE_PATTERNMATRIX_H

#include "ast/AlgebraContext.h"
#include "ast/Ids.h"

#include <optional>
#include <unordered_map>
#include <vector>

namespace algspec {

class PatternMatrix {
public:
  /// One axiom's argument patterns, in declaration order.
  using Row = std::vector<TermId>;

  explicit PatternMatrix(AlgebraContext &Ctx) : Ctx(Ctx) {}

  /// Outcome of an exhaustiveness query.
  struct Coverage {
    /// A tuple (over wildcard variables) no row matches; nullopt when
    /// the matrix covers every constructor tuple.
    std::optional<Row> Witness;
    /// Sorts with no constructors the case split ran into, in hit
    /// order (repeats included). Coverage over such a column cannot be
    /// decided; the subproblem is treated as covered and the caller
    /// must weaken its verdict.
    std::vector<SortId> BlockedSorts;
  };

  /// Searches for a constructor tuple no row matches, column-wise
  /// case-splitting on constructor signatures (literal-inhabited sorts
  /// split per literal plus an "any other literal" case only variable
  /// rows cover).
  Coverage findUncovered(std::vector<Row> Rows, std::vector<SortId> Sorts);

  /// True when some constructor tuple matches \p Query but no row of
  /// \p Rows — i.e. \p Query adds coverage. Variables on both sides
  /// are wildcards; a sort with no constructors (or a literal sort,
  /// whose signature is never complete) takes the default-matrix path,
  /// which under-approximates the matrix's coverage — sound for dead-
  /// row claims (fewer rows reported dead, never a live row).
  bool isUseful(std::vector<Row> Rows, Row Query, std::vector<SortId> Sorts);

  /// Greedy pre-order minimization of a ground tuple no row matches:
  /// outermost-first, each subterm is replaced by a wildcard whenever
  /// the result still overlaps no row. Wildcards at literal-sorted
  /// positions mean "any literal other than those in the rows" (the
  /// same reading findUncovered gives its witness wildcards). When the
  /// ground tuple itself overlaps a row — the stuckness that produced
  /// it lives deeper than this operation's patterns — it is returned
  /// unchanged.
  Row generalize(const std::vector<Row> &Rows, const Row &Ground);

  /// True when some tuple matches both \p Pattern (a pattern row, its
  /// variables matching anything) and \p Candidate. With
  /// \p OtherLiteralWildcards set, a variable in \p Candidate at a
  /// literal position is read as "any literal not named by the rows"
  /// and so never meets an explicit literal pattern.
  bool rowOverlaps(const Row &Pattern, const Row &Candidate,
                   bool OtherLiteralWildcards = false) const;

  /// One cached wildcard variable per sort, named after the sort so
  /// witnesses read like the paper's axioms (queue, item, symboltable
  /// ...). Shared across queries: repeated wildcard positions of one
  /// sort render identically.
  TermId wildcard(SortId Sort);

  /// True when \p Pattern consists only of constructors, literals, and
  /// variables — the shape the matrix can case-split on.
  static bool isConstructorPattern(const AlgebraContext &Ctx,
                                   TermId Pattern);

  /// True when no variable occurs twice across the row's patterns.
  static bool isLinearRow(const AlgebraContext &Ctx, const Row &R);

private:
  std::optional<Row> findUncoveredImpl(std::vector<Row> Rows,
                                       std::vector<SortId> Sorts,
                                       std::vector<SortId> &Blocked);
  bool patternOverlaps(TermId Pattern, TermId Candidate,
                       bool OtherLiteralWildcards) const;
  bool isVar(TermId Term) const {
    return Ctx.node(Term).Kind == TermKind::Var;
  }

  AlgebraContext &Ctx;
  std::unordered_map<SortId, TermId> Wildcards;
};

} // namespace algspec

#endif // ALGSPEC_REWRITE_PATTERNMATRIX_H
