//===----------------------------------------------------------------------===//
//
// Part of AlgSpec. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A rewrite system: spec axioms oriented left-to-right and indexed by
/// their head operation.
///
//===----------------------------------------------------------------------===//

#ifndef ALGSPEC_REWRITE_REWRITESYSTEM_H
#define ALGSPEC_REWRITE_REWRITESYSTEM_H

#include "ast/Ids.h"
#include "support/Diagnostic.h"
#include "support/Error.h"

#include <string>
#include <unordered_map>
#include <vector>

namespace algspec {

class AlgebraContext;
class Spec;

/// One oriented rule Lhs -> Rhs.
struct Rule {
  TermId Lhs;
  TermId Rhs;
  OpId HeadOp;          ///< Head operation of Lhs (index key).
  unsigned AxiomNumber; ///< Paper-style number within its spec.
  std::string SpecName; ///< Owning spec, for traces and diagnostics.
};

/// An immutable set of rules built from one or more specs.
///
/// Construction validates each axiom as a rule:
///  - the left-hand side must be an operation application (not a variable
///    or a literal) whose head is not a builtin;
///  - every variable of the right-hand side must occur in the left-hand
///    side (axioms are executable equations, not general relations).
/// Violations are diagnosed and the axiom is skipped, mirroring how the
/// paper's system would reject a malformed relation.
class RewriteSystem {
public:
  /// Builds a system from \p Specs. Diagnostics go to \p Diags.
  static RewriteSystem build(const AlgebraContext &Ctx,
                             const std::vector<const Spec *> &Specs,
                             DiagnosticEngine &Diags);

  /// Convenience: builds from specs and fails if any axiom was rejected.
  static Result<RewriteSystem>
  buildChecked(const AlgebraContext &Ctx,
               const std::vector<const Spec *> &Specs);

  /// Rules whose left-hand side is headed by \p Op (possibly empty).
  const std::vector<Rule> &rulesFor(OpId Op) const;

  const std::vector<Rule> &rules() const { return AllRules; }
  size_t size() const { return AllRules.size(); }

  /// Monotonically increasing stamp distinguishing rule sets; engines use
  /// it to invalidate memo tables when switching systems.
  uint64_t stamp() const { return Stamp; }

private:
  RewriteSystem();

  std::vector<Rule> AllRules;
  std::unordered_map<OpId, std::vector<Rule>> RulesByHead;
  uint64_t Stamp;
};

} // namespace algspec

#endif // ALGSPEC_REWRITE_REWRITESYSTEM_H
