//===----------------------------------------------------------------------===//
//
// Part of AlgSpec. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The compiled form of a rewrite system: one matching automaton plus one
/// right-hand-side instruction template per rule, indexed by head op.
///
/// A template is the axiom's right-hand side flattened into a postorder
/// build plan: variable-free subtrees are prebuilt once at compile time
/// (hash-consing makes them plain TermId pushes), variable occurrences
/// become slot reads filled by the automaton, and each remaining operation
/// node becomes one makeOp over the value stack — so rule application
/// assembles its result without re-walking the RHS term, while strict
/// error propagation still happens inside makeOp exactly as it does for
/// applySubstitution.
///
//===----------------------------------------------------------------------===//

#ifndef ALGSPEC_REWRITE_COMPILED_H
#define ALGSPEC_REWRITE_COMPILED_H

#include "ast/Ids.h"
#include "rewrite/MatchAutomaton.h"

#include <cstdint>
#include <span>
#include <unordered_map>
#include <utility>
#include <vector>

namespace algspec {

class AlgebraContext;
class RewriteSystem;
struct Rule;

/// One step of a right-hand-side build plan.
struct TemplateInstr {
  enum class Kind : uint8_t {
    PushTerm, ///< Push a prebuilt variable-free subterm.
    PushSlot, ///< Push the subject subterm the automaton bound to a slot.
    Build,    ///< Pop Arity operands, push makeOp(Op, operands).
  };
  Kind K = Kind::PushTerm;
  TermId Term;       ///< Valid for PushTerm.
  uint16_t Slot = 0; ///< Valid for PushSlot.
  OpId Op;           ///< Valid for Build.
  uint16_t Arity = 0;
};

/// A compiled right-hand side. Instantiation over a slot assignment
/// produces the same TermId applySubstitution would (pinned by the
/// differential tests): hash-consing makes "build bottom-up" and
/// "substitute into the stored term" literally the same term.
class RhsTemplate {
public:
  /// Compiles \p Rhs against the LHS slot map \p Slots (from
  /// patternVarSlots on the rule's left-hand side).
  static RhsTemplate
  compile(const AlgebraContext &Ctx, TermId Rhs,
          const std::vector<std::pair<VarId, uint16_t>> &Slots);

  /// Runs the plan. \p Stack is caller-provided scratch.
  TermId instantiate(AlgebraContext &Ctx, std::span<const TermId> Slots,
                     std::vector<TermId> &Stack) const;

  const std::vector<TemplateInstr> &code() const { return Code; }

private:
  std::vector<TemplateInstr> Code;
};

/// Every rule of a rewrite system compiled for execution: the per-op
/// automata and templates the machine dispatches through. Built once per
/// engine (each worker replica compiles its own over its private
/// context); the rule set is immutable for the engine's lifetime.
class CompiledRuleSet {
public:
  CompiledRuleSet(const AlgebraContext &Ctx, const RewriteSystem &System);

  struct OpProgram {
    MatchAutomaton Automaton;
    /// Templates[i] corresponds to rulesFor(op)[i].
    std::vector<RhsTemplate> Templates;
    /// The rules compiled from, for trace steps and fuel accounting —
    /// trace entries must point at the same Rule objects the interpreted
    /// engine would record.
    const std::vector<Rule> *Rules = nullptr;
  };

  /// The compiled program for \p Op; null when no rule is headed by it.
  const OpProgram *programFor(OpId Op) const {
    auto It = Programs.find(Op);
    return It != Programs.end() ? &It->second : nullptr;
  }

  size_t numPrograms() const { return Programs.size(); }

private:
  std::unordered_map<OpId, OpProgram> Programs;
};

} // namespace algspec

#endif // ALGSPEC_REWRITE_COMPILED_H
