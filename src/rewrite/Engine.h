//===----------------------------------------------------------------------===//
//
// Part of AlgSpec. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The rewrite engine: executes algebraic specifications by normalizing
/// terms with leftmost-innermost rewriting.
///
/// Semantics implemented here, all pinned by tests:
///  - if-then-else is strict in its condition and lazy in its branches
///    (required for the paper's FRONT/REMOVE axioms to mean what they
///    should on boundary values);
///  - error is strict everywhere else, structurally enforced at term
///    construction;
///  - SAME evaluates natively on literal atoms / integers, and on
///    identical ground terms;
///  - Int and Bool builtins evaluate natively on literals;
///  - every rule application consumes fuel; exhausting fuel reports an
///    error instead of hanging on a divergent axiom set;
///  - normal forms are memoized per (engine, rule set); the memo makes
///    repeated observations of one value cheap and is ablatable for the
///    bench that quantifies it.
///
//===----------------------------------------------------------------------===//

#ifndef ALGSPEC_REWRITE_ENGINE_H
#define ALGSPEC_REWRITE_ENGINE_H

#include "ast/AlgebraContext.h"
#include "ast/Ids.h"
#include "rewrite/RewriteSystem.h"
#include "support/Error.h"

#include <cstdint>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

namespace algspec {

class CompiledRuleSet;

/// Tunables for a RewriteEngine.
struct EngineOptions {
  /// Maximum number of rule applications per normalize() call.
  uint64_t MaxSteps = 1u << 20;
  /// Maximum child-recursion depth (terms are at most this high after
  /// rewriting). Exceeding it reports an error instead of overflowing
  /// the stack; open recursive definitions can grow terms unboundedly.
  unsigned MaxDepth = 8000;
  /// Cache normal forms across calls.
  bool Memoize = true;
  /// Maximum entries in the normal-form memo. When an insert would pass
  /// the bound the whole table is dropped (bulk clear: deterministic and
  /// amortized O(1), unlike per-entry LRU), so a long verification sweep
  /// over millions of distinct terms cannot grow the memo without bound.
  size_t MemoLimit = 1u << 18;
  /// Record every rule application into the trace buffer.
  bool KeepTrace = false;
  /// Use the compiled engine: per-op matching automata, right-hand-side
  /// instruction templates, and an explicit work-stack machine whose
  /// height is bounded by MaxDepth instead of the C++ stack. Off selects
  /// the reference interpreter (rule-by-rule recursive matching). Both
  /// paths produce byte-identical normal forms, traces, memo behavior,
  /// and reports (pinned by the differential tests); the knob exists for
  /// ablation and differential testing (CLI: --engine=compiled|interp).
  bool Compile = true;
};

/// Counters accumulated across normalize() calls (reset on demand).
struct EngineStats {
  uint64_t Steps = 0;       ///< Rule applications.
  uint64_t CacheHits = 0;   ///< Memo hits.
  uint64_t CacheMisses = 0; ///< Memo lookups that found nothing.
  uint64_t Evictions = 0;   ///< Memo entries dropped at the size bound.
  uint64_t Rebuilds = 0; ///< Term nodes rebuilt after child normalization.
  /// Match candidates tried against a redex: rules scanned by the
  /// interpreter, accept-state candidates by the compiled engine (whose
  /// decision tree has already excluded structurally impossible rules).
  uint64_t MatchAttempts = 0;
  /// Subject positions consumed by the compiled matching automaton; zero
  /// on the interpreted path. Visits per attempted redex quantify how
  /// much traversal the shared prefix tests save.
  uint64_t AutomatonVisits = 0;
  // Arena-footprint gauges, refreshed by syncArenaStats() after every
  // normalize() (and by the checkers' per-shard scratch resets). The
  // truncation triplet is engine-relative — deltas against a baseline
  // captured at engine construction / resetStats() — so a warm server
  // workspace reports the same values as a fresh CLI one.
  uint64_t ArenaTerms = 0;     ///< Live terms in the context at last sync.
  uint64_t ArenaHighWater = 0; ///< Peak live terms this engine observed.
  uint64_t ArenaTruncations = 0; ///< Epoch truncations since the baseline.
  uint64_t ArenaTermsFreed = 0;  ///< Terms those truncations released.
  uint64_t ArenaBytesFreed = 0;  ///< Bytes those truncations released.
  // Equality-saturation counters (src/egraph/), folded in by the
  // checkers that consult the e-graph oracle; all zero when the oracle
  // never ran. Deterministic: the oracle is main-thread only.
  uint64_t EGraphClasses = 0;  ///< Live e-classes (all graphs summed).
  uint64_t EGraphNodes = 0;    ///< Registered e-nodes (terms).
  uint64_t EGraphMerges = 0;   ///< Class unions performed.
  uint64_t EGraphRebuilds = 0; ///< Congruence worklist rounds run.
};

/// Accumulates \p B into \p A (aggregating worker-replica engines). The
/// arena gauges sum too: every engine in an aggregate runs over its own
/// context in practice, so the sums read as total footprint across the
/// main context and all worker replicas.
inline EngineStats &operator+=(EngineStats &A, const EngineStats &B) {
  A.Steps += B.Steps;
  A.CacheHits += B.CacheHits;
  A.CacheMisses += B.CacheMisses;
  A.Evictions += B.Evictions;
  A.Rebuilds += B.Rebuilds;
  A.MatchAttempts += B.MatchAttempts;
  A.AutomatonVisits += B.AutomatonVisits;
  A.ArenaTerms += B.ArenaTerms;
  A.ArenaHighWater += B.ArenaHighWater;
  A.ArenaTruncations += B.ArenaTruncations;
  A.ArenaTermsFreed += B.ArenaTermsFreed;
  A.ArenaBytesFreed += B.ArenaBytesFreed;
  A.EGraphClasses += B.EGraphClasses;
  A.EGraphNodes += B.EGraphNodes;
  A.EGraphMerges += B.EGraphMerges;
  A.EGraphRebuilds += B.EGraphRebuilds;
  return A;
}

/// Freeness verdict per sort index of \p Ctx under \p System: a sort is
/// freely generated when no rule rewrites a constructor of it or of any
/// sort reachable through constructor arguments, so distinct ground
/// constructor terms denote distinct values. Atom and Int literals are
/// always free. Computed as a whole-table greatest fixpoint (per-sort
/// memoization would be query-order-dependent for mutually recursive
/// sorts); the engine caches it internally, and the static completeness
/// analyses call it directly.
std::vector<bool> computeFreeSorts(const AlgebraContext &Ctx,
                                   const RewriteSystem &System);

/// One recorded rule application, for traces and debugging.
struct TraceStep {
  TermId Before;
  TermId After;
  const Rule *AppliedRule;
};

/// Normalizes terms against one rewrite system.
class RewriteEngine {
public:
  /// \p System must outlive the engine. Defined out of line (with the
  /// destructor) because CompiledRuleSet is incomplete here.
  RewriteEngine(AlgebraContext &Ctx, const RewriteSystem &System,
                EngineOptions Options = EngineOptions());
  ~RewriteEngine();

  /// Rewrites \p Term to normal form. Fails when fuel runs out. Open
  /// terms are normalized as far as the rules allow (variables are inert).
  Result<TermId> normalize(TermId Term);

  /// True when \p Term normalizes to the distinguished error value of its
  /// sort. Fails when fuel runs out, like normalize. The error-flow
  /// analysis and its lint rules use this to decide guards and spot
  /// axioms implied by strict error propagation.
  Result<bool> normalizesToError(TermId Term);

  /// True when \p Term (assumed normal) is a defined operation applied to
  /// normal arguments, i.e. the axioms gave it no meaning. Sufficient-
  /// completeness failures surface as stuck terms at runtime; the static
  /// checker reports them ahead of time.
  bool isStuck(TermId Term) const;

  const EngineStats &stats() const { return Stats; }
  /// Zeroes every counter and re-captures the arena baselines, so the
  /// truncation deltas restart from the context's current state.
  void resetStats();

  /// Forces the lazy one-time work — rule-set compilation and the
  /// sort-freeness fixpoint — to happen now. The replica workers call
  /// this before marking their base epoch so none of it ever lands in
  /// (and gets truncated with) a scratch epoch.
  void warmup();

  /// Refreshes the EngineStats arena gauges from the context. Called
  /// after every normalize(); exposed for the per-shard scratch resets,
  /// which truncate between normalize() calls.
  void syncArenaStats();

  const std::vector<TraceStep> &trace() const { return Trace; }
  void clearTrace() { Trace.clear(); }

  /// Applies the native semantics of a builtin op to arguments assumed
  /// representative (normalized or class-canonical); invalid TermId when
  /// the builtin does not reduce. Public so the e-graph's saturation
  /// shares the engine's builtin semantics instead of reimplementing
  /// them (SAME's free-sort disequality reasoning included). Touches no
  /// counters.
  TermId evalBuiltinApp(OpId Op, std::span<const TermId> Args) {
    return evalBuiltin(Op, Args);
  }

  const EngineOptions &options() const { return Options; }

private:
  Result<TermId> normalizeImpl(TermId Term, uint64_t &Fuel,
                               unsigned Depth);
  /// The compiled path: an explicit work-stack machine over the per-op
  /// automata and templates, mirroring normalizeImpl activation for
  /// activation so every observable (results, traces, memo contents,
  /// counters other than the match-attempt pair, error messages) is
  /// byte-identical.
  Result<TermId> normalizeMachine(TermId Root, uint64_t &Fuel);
  /// Applies the native semantics of a builtin op to normalized
  /// arguments; invalid TermId when the builtin does not reduce.
  TermId evalBuiltin(OpId Op, std::span<const TermId> Args);

  /// True when \p Sort is freely generated under this rule set: no rule
  /// rewrites a constructor of the sort (or of any sort reachable
  /// through constructor arguments), so distinct ground constructor
  /// terms denote distinct values. Atom and Int literals are free.
  /// Computed as a whole-table fixpoint on first use (per-sort caching
  /// would be query-order-dependent for mutually recursive sorts); the
  /// rule set is fixed for the engine's lifetime.
  bool isFreeSort(SortId Sort);
  /// True when \p Term is ground and built from constructors and
  /// literals only (no stuck defined operation inside).
  bool isConstructorGround(TermId Term) const;

  /// One normal-form memo entry, stamped with the context generation it
  /// was written under. After an arena truncation the stamp no longer
  /// matches; the entry stays usable only when both its key and value
  /// provably survived every truncation (ids below the context's
  /// truncate low-water mark), and is dropped lazily on lookup
  /// otherwise — invalidation by counter, never by scan.
  struct MemoEntry {
    TermId Value;
    uint64_t Gen = 0;
  };

  /// Memo lookup honoring generation validity; drops stale entries.
  /// Returns nullptr on miss.
  const TermId *memoLookup(TermId Key);
  /// Memo insert with the size-bound bulk clear (counted in Evictions),
  /// stamping the current generation.
  void memoInsert(TermId Key, TermId Value);

  AlgebraContext &Ctx;
  const RewriteSystem &System;
  EngineOptions Options;
  EngineStats Stats;
  /// Context arena counters at construction / last resetStats(); the
  /// published arena stats are deltas against this.
  ArenaStats BaseArena;
  std::unordered_map<TermId, MemoEntry> Memo;
  /// Freeness verdict per sort index; valid for the first
  /// FreeSortsComputedFor sorts of the context.
  std::vector<bool> FreeSorts;
  unsigned FreeSortsComputedFor = 0;
  std::vector<TraceStep> Trace;
  /// Lazily compiled on the first normalize() with Compile set; the rule
  /// set is fixed for the engine's lifetime, so one compilation serves
  /// every call (and worker replicas each compile their own).
  std::unique_ptr<CompiledRuleSet> Compiled;
};

} // namespace algspec

#endif // ALGSPEC_REWRITE_ENGINE_H
