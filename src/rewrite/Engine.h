//===----------------------------------------------------------------------===//
//
// Part of AlgSpec. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The rewrite engine: executes algebraic specifications by normalizing
/// terms with leftmost-innermost rewriting.
///
/// Semantics implemented here, all pinned by tests:
///  - if-then-else is strict in its condition and lazy in its branches
///    (required for the paper's FRONT/REMOVE axioms to mean what they
///    should on boundary values);
///  - error is strict everywhere else, structurally enforced at term
///    construction;
///  - SAME evaluates natively on literal atoms / integers, and on
///    identical ground terms;
///  - Int and Bool builtins evaluate natively on literals;
///  - every rule application consumes fuel; exhausting fuel reports an
///    error instead of hanging on a divergent axiom set;
///  - normal forms are memoized per (engine, rule set); the memo makes
///    repeated observations of one value cheap and is ablatable for the
///    bench that quantifies it.
///
//===----------------------------------------------------------------------===//

#ifndef ALGSPEC_REWRITE_ENGINE_H
#define ALGSPEC_REWRITE_ENGINE_H

#include "ast/Ids.h"
#include "rewrite/RewriteSystem.h"
#include "support/Error.h"

#include <cstdint>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

namespace algspec {

class AlgebraContext;
class CompiledRuleSet;

/// Tunables for a RewriteEngine.
struct EngineOptions {
  /// Maximum number of rule applications per normalize() call.
  uint64_t MaxSteps = 1u << 20;
  /// Maximum child-recursion depth (terms are at most this high after
  /// rewriting). Exceeding it reports an error instead of overflowing
  /// the stack; open recursive definitions can grow terms unboundedly.
  unsigned MaxDepth = 8000;
  /// Cache normal forms across calls.
  bool Memoize = true;
  /// Maximum entries in the normal-form memo. When an insert would pass
  /// the bound the whole table is dropped (bulk clear: deterministic and
  /// amortized O(1), unlike per-entry LRU), so a long verification sweep
  /// over millions of distinct terms cannot grow the memo without bound.
  size_t MemoLimit = 1u << 18;
  /// Record every rule application into the trace buffer.
  bool KeepTrace = false;
  /// Use the compiled engine: per-op matching automata, right-hand-side
  /// instruction templates, and an explicit work-stack machine whose
  /// height is bounded by MaxDepth instead of the C++ stack. Off selects
  /// the reference interpreter (rule-by-rule recursive matching). Both
  /// paths produce byte-identical normal forms, traces, memo behavior,
  /// and reports (pinned by the differential tests); the knob exists for
  /// ablation and differential testing (CLI: --engine=compiled|interp).
  bool Compile = true;
};

/// Counters accumulated across normalize() calls (reset on demand).
struct EngineStats {
  uint64_t Steps = 0;       ///< Rule applications.
  uint64_t CacheHits = 0;   ///< Memo hits.
  uint64_t CacheMisses = 0; ///< Memo lookups that found nothing.
  uint64_t Evictions = 0;   ///< Memo entries dropped at the size bound.
  uint64_t Rebuilds = 0; ///< Term nodes rebuilt after child normalization.
  /// Match candidates tried against a redex: rules scanned by the
  /// interpreter, accept-state candidates by the compiled engine (whose
  /// decision tree has already excluded structurally impossible rules).
  uint64_t MatchAttempts = 0;
  /// Subject positions consumed by the compiled matching automaton; zero
  /// on the interpreted path. Visits per attempted redex quantify how
  /// much traversal the shared prefix tests save.
  uint64_t AutomatonVisits = 0;
};

/// Accumulates \p B into \p A (aggregating worker-replica engines).
inline EngineStats &operator+=(EngineStats &A, const EngineStats &B) {
  A.Steps += B.Steps;
  A.CacheHits += B.CacheHits;
  A.CacheMisses += B.CacheMisses;
  A.Evictions += B.Evictions;
  A.Rebuilds += B.Rebuilds;
  A.MatchAttempts += B.MatchAttempts;
  A.AutomatonVisits += B.AutomatonVisits;
  return A;
}

/// One recorded rule application, for traces and debugging.
struct TraceStep {
  TermId Before;
  TermId After;
  const Rule *AppliedRule;
};

/// Normalizes terms against one rewrite system.
class RewriteEngine {
public:
  /// \p System must outlive the engine. Defined out of line (with the
  /// destructor) because CompiledRuleSet is incomplete here.
  RewriteEngine(AlgebraContext &Ctx, const RewriteSystem &System,
                EngineOptions Options = EngineOptions());
  ~RewriteEngine();

  /// Rewrites \p Term to normal form. Fails when fuel runs out. Open
  /// terms are normalized as far as the rules allow (variables are inert).
  Result<TermId> normalize(TermId Term);

  /// True when \p Term normalizes to the distinguished error value of its
  /// sort. Fails when fuel runs out, like normalize. The error-flow
  /// analysis and its lint rules use this to decide guards and spot
  /// axioms implied by strict error propagation.
  Result<bool> normalizesToError(TermId Term);

  /// True when \p Term (assumed normal) is a defined operation applied to
  /// normal arguments, i.e. the axioms gave it no meaning. Sufficient-
  /// completeness failures surface as stuck terms at runtime; the static
  /// checker reports them ahead of time.
  bool isStuck(TermId Term) const;

  const EngineStats &stats() const { return Stats; }
  void resetStats() { Stats = EngineStats(); }

  const std::vector<TraceStep> &trace() const { return Trace; }
  void clearTrace() { Trace.clear(); }

  const EngineOptions &options() const { return Options; }

private:
  Result<TermId> normalizeImpl(TermId Term, uint64_t &Fuel,
                               unsigned Depth);
  /// The compiled path: an explicit work-stack machine over the per-op
  /// automata and templates, mirroring normalizeImpl activation for
  /// activation so every observable (results, traces, memo contents,
  /// counters other than the match-attempt pair, error messages) is
  /// byte-identical.
  Result<TermId> normalizeMachine(TermId Root, uint64_t &Fuel);
  /// Applies the native semantics of a builtin op to normalized
  /// arguments; invalid TermId when the builtin does not reduce.
  TermId evalBuiltin(OpId Op, std::span<const TermId> Args);

  /// True when \p Sort is freely generated under this rule set: no rule
  /// rewrites a constructor of the sort (or of any sort reachable
  /// through constructor arguments), so distinct ground constructor
  /// terms denote distinct values. Atom and Int literals are free.
  /// Computed as a whole-table fixpoint on first use (per-sort caching
  /// would be query-order-dependent for mutually recursive sorts); the
  /// rule set is fixed for the engine's lifetime.
  bool isFreeSort(SortId Sort);
  /// True when \p Term is ground and built from constructors and
  /// literals only (no stuck defined operation inside).
  bool isConstructorGround(TermId Term) const;

  AlgebraContext &Ctx;
  const RewriteSystem &System;
  EngineOptions Options;
  EngineStats Stats;
  std::unordered_map<TermId, TermId> Memo;
  /// Freeness verdict per sort index; valid for the first
  /// FreeSortsComputedFor sorts of the context.
  std::vector<bool> FreeSorts;
  unsigned FreeSortsComputedFor = 0;
  std::vector<TraceStep> Trace;
  /// Lazily compiled on the first normalize() with Compile set; the rule
  /// set is fixed for the engine's lifetime, so one compilation serves
  /// every call (and worker replicas each compile their own).
  std::unique_ptr<CompiledRuleSet> Compiled;
};

} // namespace algspec

#endif // ALGSPEC_REWRITE_ENGINE_H
