//===----------------------------------------------------------------------===//
//
// Part of AlgSpec. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A left-to-right matching decision tree over the rules of one head
/// operation (a Maranget-style pattern-matrix automaton).
///
/// The interpreted engine tries each rule in turn, re-walking the subject
/// once per rule. The automaton walks the subject's argument positions in
/// preorder exactly once: every node consumes one position and branches on
/// the symbol found there, so overlapping left-hand sides share their
/// prefix tests and a subject that matches no rule is rejected in a single
/// traversal.
///
/// Construction follows pattern-matrix specialization rather than a
/// backtracking trie: all rules still viable for the subject travel down
/// the same (unique) path together, with variable rows duplicated under
/// every constructor edge as wildcard fillers. That is what preserves
/// first-rule-wins order — an accept state holds every rule whose
/// structural tests succeeded along the path, in axiom order, and the
/// first whose non-linearity guards pass is the rule the interpreted
/// scan would have fired.
///
//===----------------------------------------------------------------------===//

#ifndef ALGSPEC_REWRITE_MATCHAUTOMATON_H
#define ALGSPEC_REWRITE_MATCHAUTOMATON_H

#include "ast/Ids.h"

#include <cstdint>
#include <utility>
#include <vector>

namespace algspec {

class AlgebraContext;
struct Rule;

/// Slot numbers for the variables of \p Pattern, assigned by first
/// occurrence in preorder. The automaton fills slots while matching; RHS
/// templates read them when instantiating. Shared so both sides agree.
std::vector<std::pair<VarId, uint16_t>>
patternVarSlots(const AlgebraContext &Ctx, TermId Pattern);

/// Reusable traversal buffers for MatchAutomaton::match, so a long
/// normalization run does not reallocate per redex.
struct MatchScratch {
  std::vector<TermId> Visited; ///< Subject subterm at each consumed position.
  std::vector<TermId> Cursor;  ///< Pending positions (preorder worklist).
};

/// The compiled decision tree for one head operation's rule list.
class MatchAutomaton {
public:
  /// Compiles the decision tree for \p Rules (all headed by one op, in
  /// axiom order — the order rulesFor() returns).
  static MatchAutomaton compile(const AlgebraContext &Ctx,
                                const std::vector<Rule> &Rules);

  /// Runs the tree over \p Subject, whose head must be this automaton's
  /// operation. Returns the ordinal (index into the compiled rule list)
  /// of the first matching rule and fills \p Slots with its variable
  /// bindings; returns -1 when no rule matches. \p NodeVisits counts
  /// consumed subject positions and \p Attempts counts accept candidates
  /// tried (both feed EngineStats).
  int match(const AlgebraContext &Ctx, TermId Subject, MatchScratch &Scratch,
            std::vector<TermId> &Slots, uint64_t &NodeVisits,
            uint64_t &Attempts) const;

  size_t numNodes() const { return Nodes.size(); }

  /// Construction-time pattern row (defined in the .cpp; public only so
  /// file-local helpers there can take it by reference).
  struct BuildRow;

private:
  /// Branch on an operation symbol: descend into the subject's children.
  struct OpEdge {
    OpId Op;
    uint32_t Target;
  };
  /// Branch on an exact leaf term (atom / int / error literal in a
  /// pattern): hash-consing makes the test one handle compare, and the
  /// subject subtree is consumed whole.
  struct LeafEdge {
    TermId Leaf;
    uint32_t Target;
  };
  /// One rule whose structural tests all passed on the path to an accept
  /// node, plus the bindings and non-linearity guards accumulated there.
  struct Accept {
    uint32_t RuleOrdinal;
    uint32_t BindBegin, BindCount;   ///< (slot, position) pairs.
    uint32_t GuardBegin, GuardCount; ///< (position, position) pairs.
  };
  struct Node {
    uint32_t OpEdgeBegin = 0, OpEdgeCount = 0;
    uint32_t LeafEdgeBegin = 0, LeafEdgeCount = 0;
    /// Fallback when no edge matches the subject's symbol; -1 = reject.
    /// Only variable/wildcard rows survive into the default subtree.
    int32_t Default = -1;
    uint32_t AcceptBegin = 0, AcceptCount = 0;
    /// Accept nodes have consumed every pattern column; inner nodes
    /// consume exactly one more position.
    bool IsAccept = false;
  };

  uint32_t buildNode(const AlgebraContext &Ctx, std::vector<BuildRow> Rows,
                     uint16_t CurPos);

  std::vector<Node> Nodes; ///< Nodes[0] is the root.
  std::vector<OpEdge> OpEdges;     ///< Sorted by OpId per node.
  std::vector<LeafEdge> LeafEdges; ///< Sorted by TermId per node.
  std::vector<Accept> Accepts;     ///< Sorted by RuleOrdinal per node.
  std::vector<std::pair<uint16_t, uint16_t>> BindPool;
  std::vector<std::pair<uint16_t, uint16_t>> GuardPool;
  /// Slot count per rule ordinal (sizes the Slots output).
  std::vector<uint16_t> RuleSlotCount;
};

} // namespace algspec

#endif // ALGSPEC_REWRITE_MATCHAUTOMATON_H
