//===----------------------------------------------------------------------===//
//
// Part of AlgSpec. MIT license.
//
//===----------------------------------------------------------------------===//

#include "rewrite/RewriteSystem.h"

#include "ast/AlgebraContext.h"
#include "ast/Spec.h"
#include "ast/TermPrinter.h"

#include <atomic>
#include <unordered_set>

using namespace algspec;

static std::atomic<uint64_t> NextStamp{1};

RewriteSystem::RewriteSystem() : Stamp(NextStamp.fetch_add(1)) {}

/// Collects the variables occurring in \p Term into \p Vars.
static void collectVars(const AlgebraContext &Ctx, TermId Term,
                        std::unordered_set<VarId> &Vars) {
  const TermNode &Node = Ctx.node(Term);
  if (Node.Kind == TermKind::Var) {
    Vars.insert(Node.Var);
    return;
  }
  for (TermId Child : Ctx.children(Term))
    collectVars(Ctx, Child, Vars);
}

RewriteSystem RewriteSystem::build(const AlgebraContext &Ctx,
                                   const std::vector<const Spec *> &Specs,
                                   DiagnosticEngine &Diags) {
  RewriteSystem System;
  for (const Spec *S : Specs) {
    for (const Axiom &Ax : S->axioms()) {
      const TermNode &LhsNode = Ctx.node(Ax.Lhs);
      if (LhsNode.Kind != TermKind::Op) {
        Diags.error(Ax.Loc, "axiom " + std::to_string(Ax.Number) +
                                " of spec '" + S->name() +
                                "' cannot be oriented: its left-hand side "
                                "is not an operation application");
        continue;
      }
      if (Ctx.op(LhsNode.Op).isBuiltin()) {
        Diags.error(Ax.Loc, "axiom " + std::to_string(Ax.Number) +
                                " of spec '" + S->name() +
                                "' redefines builtin operation '" +
                                std::string(Ctx.opName(LhsNode.Op)) + "'");
        continue;
      }

      std::unordered_set<VarId> LhsVars, RhsVars;
      collectVars(Ctx, Ax.Lhs, LhsVars);
      collectVars(Ctx, Ax.Rhs, RhsVars);
      bool Extraneous = false;
      for (VarId Var : RhsVars)
        if (!LhsVars.count(Var)) {
          Diags.error(Ax.Loc,
                      "axiom " + std::to_string(Ax.Number) + " of spec '" +
                          S->name() + "' uses variable '" +
                          std::string(Ctx.varName(Var)) +
                          "' on the right-hand side only");
          Extraneous = true;
        }
      if (Extraneous)
        continue;

      Rule R{Ax.Lhs, Ax.Rhs, LhsNode.Op, Ax.Number, S->name()};
      System.RulesByHead[R.HeadOp].push_back(R);
      System.AllRules.push_back(std::move(R));
    }
  }
  return System;
}

Result<RewriteSystem>
RewriteSystem::buildChecked(const AlgebraContext &Ctx,
                            const std::vector<const Spec *> &Specs) {
  DiagnosticEngine Diags;
  RewriteSystem System = build(Ctx, Specs, Diags);
  if (Diags.hasErrors())
    return makeError(Diags.render());
  return System;
}

const std::vector<Rule> &RewriteSystem::rulesFor(OpId Op) const {
  static const std::vector<Rule> Empty;
  auto It = RulesByHead.find(Op);
  return It == RulesByHead.end() ? Empty : It->second;
}
