//===----------------------------------------------------------------------===//
//
// Part of AlgSpec. MIT license.
//
//===----------------------------------------------------------------------===//

#include "rewrite/MatchAutomaton.h"

#include "ast/AlgebraContext.h"
#include "rewrite/RewriteSystem.h"

#include <algorithm>
#include <cassert>

using namespace algspec;

std::vector<std::pair<VarId, uint16_t>>
algspec::patternVarSlots(const AlgebraContext &Ctx, TermId Pattern) {
  std::vector<std::pair<VarId, uint16_t>> Slots;
  auto Walk = [&](auto &&Self, TermId Term) -> void {
    const TermNode &Node = Ctx.node(Term);
    if (Node.Kind == TermKind::Var) {
      for (const auto &[Var, Slot] : Slots)
        if (Var == Node.Var)
          return;
      Slots.emplace_back(Node.Var, static_cast<uint16_t>(Slots.size()));
      return;
    }
    for (TermId Child : Ctx.children(Term))
      Self(Self, Child);
  };
  Walk(Walk, Pattern);
  return Slots;
}

/// One pattern row during construction: the columns still to be tested
/// (aligned with the subject positions the node path will consume) plus
/// the variable bindings and non-linearity guards accumulated so far.
/// An invalid TermId column is a wildcard filler: it constrains nothing
/// and binds nothing (it stands for a subject subtree an earlier
/// variable of this row already swallowed whole, duplicated under a
/// constructor edge another row forced).
struct MatchAutomaton::BuildRow {
  std::vector<TermId> Cols;
  uint32_t RuleOrdinal = 0;
  const std::vector<std::pair<VarId, uint16_t>> *Slots = nullptr;
  std::vector<std::pair<uint16_t, uint16_t>> Binds;
  std::vector<std::pair<uint16_t, uint16_t>> Guards;
};

/// Records that \p Row's variable \p Var stands at position \p Pos: a
/// first occurrence binds its slot, a repeat becomes an equality guard
/// against the position of the first occurrence (how SAME(x, x) style
/// non-linear patterns keep their matchTerm semantics).
static void recordVar(MatchAutomaton::BuildRow &Row, VarId Var,
                      uint16_t Pos) {
  uint16_t Slot = 0;
  bool Found = false;
  for (const auto &[V, S] : *Row.Slots) {
    if (V == Var) {
      Slot = S;
      Found = true;
      break;
    }
  }
  assert(Found && "pattern variable missing from its own slot map");
  if (!Found)
    return;
  for (const auto &[BoundSlot, BoundPos] : Row.Binds) {
    if (BoundSlot == Slot) {
      Row.Guards.emplace_back(BoundPos, Pos);
      return;
    }
  }
  Row.Binds.emplace_back(Slot, Pos);
}

uint32_t MatchAutomaton::buildNode(const AlgebraContext &Ctx,
                                   std::vector<BuildRow> Rows,
                                   uint16_t CurPos) {
  assert(!Rows.empty() && "a node always keeps at least one viable row");
  const uint32_t Index = static_cast<uint32_t>(Nodes.size());
  Nodes.emplace_back();

  if (Rows.front().Cols.empty()) {
    // Every column consumed: accept state. Specialization preserves the
    // relative order of surviving rows, so candidates are already in
    // axiom order; sort anyway to keep first-rule-wins independent of
    // construction details.
    std::stable_sort(Rows.begin(), Rows.end(),
                     [](const BuildRow &A, const BuildRow &B) {
                       return A.RuleOrdinal < B.RuleOrdinal;
                     });
    Node N;
    N.IsAccept = true;
    N.AcceptBegin = static_cast<uint32_t>(Accepts.size());
    N.AcceptCount = static_cast<uint32_t>(Rows.size());
    for (const BuildRow &R : Rows) {
      Accept A;
      A.RuleOrdinal = R.RuleOrdinal;
      A.BindBegin = static_cast<uint32_t>(BindPool.size());
      A.BindCount = static_cast<uint32_t>(R.Binds.size());
      BindPool.insert(BindPool.end(), R.Binds.begin(), R.Binds.end());
      A.GuardBegin = static_cast<uint32_t>(GuardPool.size());
      A.GuardCount = static_cast<uint32_t>(R.Guards.size());
      GuardPool.insert(GuardPool.end(), R.Guards.begin(), R.Guards.end());
      Accepts.push_back(A);
    }
    Nodes[Index] = N;
    return Index;
  }

  // Distinct rigid symbols in the first column, in order of first
  // appearance. Operation applications branch by head op and descend;
  // atom/int/error pattern leaves branch by exact hash-consed term.
  struct Head {
    bool IsOp;
    OpId Op;
    TermId Leaf;
    unsigned Arity;
  };
  std::vector<Head> Heads;
  for (const BuildRow &R : Rows) {
    TermId C = R.Cols.front();
    if (!C.isValid())
      continue;
    const TermNode &PN = Ctx.node(C);
    if (PN.Kind == TermKind::Var)
      continue;
    Head H;
    if (PN.Kind == TermKind::Op)
      H = {true, PN.Op, TermId(), PN.NumChildren};
    else
      H = {false, OpId(), C, 0};
    bool Seen = false;
    for (const Head &E : Heads) {
      if (E.IsOp == H.IsOp && (H.IsOp ? E.Op == H.Op : E.Leaf == H.Leaf)) {
        Seen = true;
        break;
      }
    }
    if (!Seen)
      Heads.push_back(H);
  }

  // Specialize per rigid head. Variable and filler rows survive under
  // every edge (with the constructor's children as fresh fillers) — the
  // pattern-matrix move that keeps all still-viable rules on one
  // deterministic path, which a backtracking trie would not.
  struct PendingEdge {
    Head H;
    uint32_t Target;
  };
  std::vector<PendingEdge> Pending;
  Pending.reserve(Heads.size());
  for (const Head &H : Heads) {
    std::vector<BuildRow> Spec;
    for (const BuildRow &R : Rows) {
      TermId C = R.Cols.front();
      BuildRow NR;
      NR.RuleOrdinal = R.RuleOrdinal;
      NR.Slots = R.Slots;
      NR.Binds = R.Binds;
      NR.Guards = R.Guards;
      if (!C.isValid()) {
        NR.Cols.assign(H.Arity, TermId());
      } else {
        const TermNode &PN = Ctx.node(C);
        if (PN.Kind == TermKind::Var) {
          recordVar(NR, PN.Var, CurPos);
          NR.Cols.assign(H.Arity, TermId());
        } else if (H.IsOp && PN.Kind == TermKind::Op && PN.Op == H.Op) {
          auto Ch = Ctx.children(C);
          NR.Cols.assign(Ch.begin(), Ch.end());
        } else if (!H.IsOp && C == H.Leaf) {
          // Leaf consumed whole; nothing new to test.
        } else {
          continue; // Incompatible rigid symbol: this rule cannot match.
        }
      }
      NR.Cols.insert(NR.Cols.end(), R.Cols.begin() + 1, R.Cols.end());
      Spec.push_back(std::move(NR));
    }
    uint32_t Target = buildNode(Ctx, std::move(Spec), CurPos + 1);
    Pending.push_back({H, Target});
  }

  // Default branch: the subject's symbol matched no rigid edge, so only
  // variable/filler rows stay viable; the subject subtree at this
  // position is consumed whole without descending.
  std::vector<BuildRow> Def;
  for (const BuildRow &R : Rows) {
    TermId C = R.Cols.front();
    if (C.isValid()) {
      const TermNode &PN = Ctx.node(C);
      if (PN.Kind != TermKind::Var)
        continue;
    }
    BuildRow NR;
    NR.RuleOrdinal = R.RuleOrdinal;
    NR.Slots = R.Slots;
    NR.Binds = R.Binds;
    NR.Guards = R.Guards;
    if (C.isValid())
      recordVar(NR, Ctx.node(C).Var, CurPos);
    NR.Cols.assign(R.Cols.begin() + 1, R.Cols.end());
    Def.push_back(std::move(NR));
  }
  int32_t DefaultTarget =
      Def.empty() ? -1
                  : static_cast<int32_t>(
                        buildNode(Ctx, std::move(Def), CurPos + 1));

  // Child subtrees appended their own edges while recursing; emit this
  // node's edge blocks contiguously now, sorted for binary search.
  Node N;
  N.Default = DefaultTarget;
  std::vector<PendingEdge> Ops, Leaves;
  for (const PendingEdge &P : Pending)
    (P.H.IsOp ? Ops : Leaves).push_back(P);
  std::sort(Ops.begin(), Ops.end(),
            [](const PendingEdge &A, const PendingEdge &B) {
              return A.H.Op.index() < B.H.Op.index();
            });
  std::sort(Leaves.begin(), Leaves.end(),
            [](const PendingEdge &A, const PendingEdge &B) {
              return A.H.Leaf.index() < B.H.Leaf.index();
            });
  N.OpEdgeBegin = static_cast<uint32_t>(OpEdges.size());
  N.OpEdgeCount = static_cast<uint32_t>(Ops.size());
  for (const PendingEdge &P : Ops)
    OpEdges.push_back({P.H.Op, P.Target});
  N.LeafEdgeBegin = static_cast<uint32_t>(LeafEdges.size());
  N.LeafEdgeCount = static_cast<uint32_t>(Leaves.size());
  for (const PendingEdge &P : Leaves)
    LeafEdges.push_back({P.H.Leaf, P.Target});
  Nodes[Index] = N;
  return Index;
}

MatchAutomaton MatchAutomaton::compile(const AlgebraContext &Ctx,
                                       const std::vector<Rule> &Rules) {
  assert(!Rules.empty() && "compile an automaton only for ops with rules");
  MatchAutomaton A;
  // Slot maps must outlive construction: rows hold pointers into them.
  std::vector<std::vector<std::pair<VarId, uint16_t>>> SlotMaps;
  SlotMaps.reserve(Rules.size());
  A.RuleSlotCount.reserve(Rules.size());
  for (const Rule &R : Rules) {
    SlotMaps.push_back(patternVarSlots(Ctx, R.Lhs));
    A.RuleSlotCount.push_back(static_cast<uint16_t>(SlotMaps.back().size()));
  }
  std::vector<BuildRow> Rows;
  Rows.reserve(Rules.size());
  for (size_t I = 0; I != Rules.size(); ++I) {
    BuildRow R;
    R.RuleOrdinal = static_cast<uint32_t>(I);
    R.Slots = &SlotMaps[I];
    auto Ch = Ctx.children(Rules[I].Lhs);
    R.Cols.assign(Ch.begin(), Ch.end());
    Rows.push_back(std::move(R));
  }
  A.buildNode(Ctx, std::move(Rows), 0);
  return A;
}

int MatchAutomaton::match(const AlgebraContext &Ctx, TermId Subject,
                          MatchScratch &Scratch, std::vector<TermId> &Slots,
                          uint64_t &NodeVisits, uint64_t &Attempts) const {
  std::vector<TermId> &Visited = Scratch.Visited;
  std::vector<TermId> &Cursor = Scratch.Cursor;
  Visited.clear();
  Cursor.clear();
  // Matching creates no terms, so child spans stay valid throughout.
  auto Args = Ctx.children(Subject);
  for (size_t I = Args.size(); I != 0; --I)
    Cursor.push_back(Args[I - 1]);

  const Node *N = &Nodes.front();
  while (!N->IsAccept) {
    TermId T = Cursor.back();
    Cursor.pop_back();
    Visited.push_back(T);
    ++NodeVisits;
    const TermNode &TN = Ctx.node(T);
    uint32_t Target = UINT32_MAX;
    if (TN.Kind == TermKind::Op) {
      const OpEdge *B = OpEdges.data() + N->OpEdgeBegin;
      const OpEdge *E = B + N->OpEdgeCount;
      const OpEdge *It = std::lower_bound(
          B, E, TN.Op, [](const OpEdge &Edge, OpId Op) {
            return Edge.Op.index() < Op.index();
          });
      if (It != E && It->Op == TN.Op) {
        Target = It->Target;
        for (size_t I = TN.NumChildren; I != 0; --I)
          Cursor.push_back(Ctx.children(T)[I - 1]);
      }
    } else {
      const LeafEdge *B = LeafEdges.data() + N->LeafEdgeBegin;
      const LeafEdge *E = B + N->LeafEdgeCount;
      const LeafEdge *It = std::lower_bound(
          B, E, T, [](const LeafEdge &Edge, TermId Leaf) {
            return Edge.Leaf.index() < Leaf.index();
          });
      if (It != E && It->Leaf == T)
        Target = It->Target;
    }
    if (Target == UINT32_MAX) {
      if (N->Default < 0)
        return -1;
      Target = static_cast<uint32_t>(N->Default);
    }
    N = &Nodes[Target];
  }

  // First candidate (axiom order) whose non-linearity guards hold wins —
  // exactly the rule the interpreted per-rule scan would fire.
  for (uint32_t I = 0; I != N->AcceptCount; ++I) {
    const Accept &A = Accepts[N->AcceptBegin + I];
    ++Attempts;
    bool GuardsHold = true;
    for (uint32_t G = 0; G != A.GuardCount; ++G) {
      const auto &[P0, P1] = GuardPool[A.GuardBegin + G];
      if (Visited[P0] != Visited[P1]) {
        GuardsHold = false;
        break;
      }
    }
    if (!GuardsHold)
      continue;
    Slots.assign(RuleSlotCount[A.RuleOrdinal], TermId());
    for (uint32_t B = 0; B != A.BindCount; ++B) {
      const auto &[Slot, Pos] = BindPool[A.BindBegin + B];
      Slots[Slot] = Visited[Pos];
    }
    return static_cast<int>(A.RuleOrdinal);
  }
  return -1;
}
