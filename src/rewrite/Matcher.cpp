//===----------------------------------------------------------------------===//
//
// Part of AlgSpec. MIT license.
//
//===----------------------------------------------------------------------===//

#include "rewrite/Matcher.h"

#include "ast/AlgebraContext.h"
#include "rewrite/Substitution.h"

using namespace algspec;

bool algspec::matchTerm(const AlgebraContext &Ctx, TermId Pattern,
                        TermId Subject, Substitution &Subst) {
  const TermNode &PatNode = Ctx.node(Pattern);

  if (PatNode.Kind == TermKind::Var)
    return Subst.bind(PatNode.Var, Subject);

  // Ground pattern leaves: hash-consing makes equality a handle compare,
  // covering Error, Atom, Int, and nullary ops in one shot.
  if (Pattern == Subject)
    return true;

  const TermNode &SubNode = Ctx.node(Subject);
  if (PatNode.Kind != SubNode.Kind)
    return false;

  switch (PatNode.Kind) {
  case TermKind::Op: {
    if (PatNode.Op != SubNode.Op)
      return false;
    auto PatChildren = Ctx.children(Pattern);
    auto SubChildren = Ctx.children(Subject);
    for (size_t I = 0, E = PatChildren.size(); I != E; ++I)
      if (!matchTerm(Ctx, PatChildren[I], SubChildren[I], Subst))
        return false;
    return true;
  }
  case TermKind::Var:
  case TermKind::Error:
  case TermKind::Atom:
  case TermKind::Int:
    // Non-identical leaves never match (identical ones returned above).
    return false;
  }
  return false;
}
