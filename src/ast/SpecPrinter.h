//===----------------------------------------------------------------------===//
//
// Part of AlgSpec. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Serializes a Spec back into .alg source text. The output re-parses to
/// a structurally identical spec (round-trip property, pinned by tests),
/// which makes specs first-class artifacts: generated or programmatically
/// transformed specs can be written out, diffed, and version-controlled.
///
//===----------------------------------------------------------------------===//

#ifndef ALGSPEC_AST_SPECPRINTER_H
#define ALGSPEC_AST_SPECPRINTER_H

#include <string>

namespace algspec {

class AlgebraContext;
class Spec;

/// Renders \p S as .alg text (spec ... end, one section per clause).
std::string printSpec(const AlgebraContext &Ctx, const Spec &S);

} // namespace algspec

#endif // ALGSPEC_AST_SPECPRINTER_H
