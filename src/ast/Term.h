//===----------------------------------------------------------------------===//
//
// Part of AlgSpec. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Term node representation.
///
/// A term is one of:
///   - an operation applied to argument terms,
///   - a typed free variable (only inside axioms and patterns),
///   - the distinguished \c error value of some sort (paper, section 3),
///   - an atom literal (ground value of an uninterpreted parameter sort
///     such as Identifier or Attributelist; written 'name in specs), or
///   - an integer literal (ground value of the builtin Int sort).
///
/// Nodes live in the \c AlgebraContext arena and are immutable after
/// creation; children are stored in one contiguous pool.
///
//===----------------------------------------------------------------------===//

#ifndef ALGSPEC_AST_TERM_H
#define ALGSPEC_AST_TERM_H

#include "ast/Ids.h"
#include "support/StringInterner.h"

#include <cstdint>
#include <span>

namespace algspec {

/// Discriminator for TermNode.
enum class TermKind : uint8_t {
  Op,    ///< Operation application.
  Var,   ///< Typed free variable.
  Error, ///< The distinguished error value.
  Atom,  ///< Interned-symbol literal of an atom sort.
  Int,   ///< Integer literal of the builtin Int sort.
};

/// One immutable term node. Exactly one payload alternative is active,
/// selected by \c Kind: Op uses \c Op + the child range, Var uses \c Var,
/// Atom uses \c AtomName, Int uses \c IntSlot (an index into the owning
/// context's side pool of 64-bit values — see AlgebraContext::intValue);
/// Error carries only its sort.
///
/// The payload alternatives share one 32-bit union slot: normalization
/// sweeps are bound by how many nodes fit a cache line, and the four
/// fields are mutually exclusive by construction. All four wrap a plain
/// uint32_t, so the inactive members stay readable through the common
/// initial sequence (hashNode/nodeEquals switch on Kind regardless).
struct TermNode {
  TermKind Kind = TermKind::Error;
  SortId Sort;

  uint32_t ChildBegin = 0; ///< Index into the context child pool.
  uint32_t NumChildren = 0;

  union {
    OpId Op;          ///< Valid iff Kind == Op.
    VarId Var;        ///< Valid iff Kind == Var.
    Symbol AtomName;  ///< Valid iff Kind == Atom.
    uint32_t IntSlot; ///< Valid iff Kind == Int.
  };

  /// The id wrappers' defaulted constructors are non-trivial, so the
  /// union needs one variant picked by hand; an invalid Op matches the
  /// Error default of Kind.
  TermNode() : Op() {}
};

static_assert(sizeof(TermNode) == 20,
              "TermNode is deliberately packed: the arena's traversal "
              "speed tracks bytes per node");

} // namespace algspec

#endif // ALGSPEC_AST_TERM_H
