//===----------------------------------------------------------------------===//
//
// Part of AlgSpec. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Term node representation.
///
/// A term is one of:
///   - an operation applied to argument terms,
///   - a typed free variable (only inside axioms and patterns),
///   - the distinguished \c error value of some sort (paper, section 3),
///   - an atom literal (ground value of an uninterpreted parameter sort
///     such as Identifier or Attributelist; written 'name in specs), or
///   - an integer literal (ground value of the builtin Int sort).
///
/// Nodes live in the \c AlgebraContext arena and are immutable after
/// creation; children are stored in one contiguous pool.
///
//===----------------------------------------------------------------------===//

#ifndef ALGSPEC_AST_TERM_H
#define ALGSPEC_AST_TERM_H

#include "ast/Ids.h"
#include "support/StringInterner.h"

#include <cstdint>
#include <span>

namespace algspec {

/// Discriminator for TermNode.
enum class TermKind : uint8_t {
  Op,    ///< Operation application.
  Var,   ///< Typed free variable.
  Error, ///< The distinguished error value.
  Atom,  ///< Interned-symbol literal of an atom sort.
  Int,   ///< Integer literal of the builtin Int sort.
};

/// One immutable term node. Payload interpretation depends on \c Kind:
/// Op uses \c Op + the child range, Var uses \c Var, Atom uses \c AtomName,
/// Int uses \c IntValue; Error carries only its sort.
struct TermNode {
  TermKind Kind = TermKind::Error;
  SortId Sort;

  OpId Op;             ///< Valid iff Kind == Op.
  VarId Var;           ///< Valid iff Kind == Var.
  Symbol AtomName;     ///< Valid iff Kind == Atom.
  int64_t IntValue =0; ///< Valid iff Kind == Int.

  uint32_t ChildBegin = 0; ///< Index into the context child pool.
  uint32_t NumChildren = 0;
};

} // namespace algspec

#endif // ALGSPEC_AST_TERM_H
