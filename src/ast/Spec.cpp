//===----------------------------------------------------------------------===//
//
// Part of AlgSpec. MIT license.
//
//===----------------------------------------------------------------------===//

#include "ast/Spec.h"

#include "ast/AlgebraContext.h"

using namespace algspec;

std::vector<OpId> Spec::constructorsOf(const AlgebraContext &Ctx,
                                       SortId Sort) const {
  std::vector<OpId> Result;
  for (OpId Op : Operations) {
    const OpInfo &Info = Ctx.op(Op);
    if (Info.isConstructor() && Info.ResultSort == Sort)
      Result.push_back(Op);
  }
  return Result;
}

std::vector<OpId> Spec::definedOps(const AlgebraContext &Ctx) const {
  std::vector<OpId> Result;
  for (OpId Op : Operations)
    if (Ctx.op(Op).isDefined())
      Result.push_back(Op);
  return Result;
}
