//===----------------------------------------------------------------------===//
//
// Part of AlgSpec. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Operation (function symbol) descriptors: the "syntactic specification"
/// half of an algebraic type definition (paper, section 2).
///
//===----------------------------------------------------------------------===//

#ifndef ALGSPEC_AST_OPERATION_H
#define ALGSPEC_AST_OPERATION_H

#include "ast/Ids.h"
#include "support/SourceLoc.h"
#include "support/StringInterner.h"

#include <vector>

namespace algspec {

/// Semantic role of an operation within its spec.
enum class OpKind : uint8_t {
  /// Generates values of its range sort (NEW, ADD, INIT, ENTERBLOCK, ...).
  /// Ground constructor terms are the canonical values of a sort; the
  /// sufficient-completeness checker and the term enumerator rely on this.
  Constructor,
  /// Defined entirely by axioms over constructor forms (FRONT, REMOVE,
  /// RETRIEVE, ...).
  Defined,
  /// Evaluated natively by the rewrite engine (if-then-else, SAME on
  /// atoms, Int arithmetic).
  Builtin,
};

/// Which native evaluation rule a Builtin operation uses.
enum class BuiltinOp : uint8_t {
  None,
  Ite,    ///< if-then-else: strict in the condition, lazy in branches.
  Same,   ///< Literal equality on two atoms (or two ints) of one sort.
  IntAdd, ///< Int addition.
  IntSub, ///< Int subtraction (total: may go negative).
  IntLe,  ///< Int <= returning Bool.
  IntLt,  ///< Int <  returning Bool.
  IntEq,  ///< Int == returning Bool.
  BoolNot,///< Bool negation.
  BoolAnd,///< Bool conjunction (strict).
  BoolOr, ///< Bool disjunction (strict).
};

/// Descriptor for one operation.
struct OpInfo {
  Symbol Name;
  std::vector<SortId> ArgSorts;
  SortId ResultSort;
  OpKind Kind = OpKind::Defined;
  BuiltinOp Builtin = BuiltinOp::None;
  SourceLoc Loc;

  unsigned arity() const { return static_cast<unsigned>(ArgSorts.size()); }
  bool isConstructor() const { return Kind == OpKind::Constructor; }
  bool isDefined() const { return Kind == OpKind::Defined; }
  bool isBuiltin() const { return Kind == OpKind::Builtin; }
};

} // namespace algspec

#endif // ALGSPEC_AST_OPERATION_H
