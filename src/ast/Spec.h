//===----------------------------------------------------------------------===//
//
// Part of AlgSpec. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Specification objects: an algebraic type definition consisting of a
/// syntactic specification (sorts + operations) and a set of axioms
/// (paper, section 2).
///
//===----------------------------------------------------------------------===//

#ifndef ALGSPEC_AST_SPEC_H
#define ALGSPEC_AST_SPEC_H

#include "ast/Ids.h"
#include "support/SourceLoc.h"

#include <string>
#include <vector>

namespace algspec {

class AlgebraContext;

/// One axiom: Lhs = Rhs over typed free variables, numbered like the paper
/// numbers its relations.
struct Axiom {
  TermId Lhs;
  TermId Rhs;
  SourceLoc Loc;
  unsigned Number = 0; ///< 1-based position within the spec.
};

/// One parsed or programmatically built specification.
///
/// All ids refer into the AlgebraContext the spec was built against. A Spec
/// is a value type: cheap to copy, trivially composable (the Symboltable
/// representation layer combines the Stack, Array, and Symboltable specs
/// into one rewrite system).
class Spec {
public:
  Spec() = default;
  explicit Spec(std::string Name) : Name(std::move(Name)) {}

  const std::string &name() const { return Name; }
  void setName(std::string NewName) { Name = std::move(NewName); }

  /// The sort of interest: the first sort the spec declares (Queue for the
  /// Queue spec, Symboltable for the Symboltable spec).
  SortId principalSort() const {
    return DefinedSorts.empty() ? SortId() : DefinedSorts.front();
  }

  void addDefinedSort(SortId Sort) { DefinedSorts.push_back(Sort); }
  void addUsedSort(SortId Sort) { UsedSorts.push_back(Sort); }
  void addOperation(OpId Op) { Operations.push_back(Op); }
  void addVariable(VarId Var) { Variables.push_back(Var); }

  /// Appends an axiom, assigning it the next paper-style number.
  const Axiom &addAxiom(TermId Lhs, TermId Rhs, SourceLoc Loc = SourceLoc()) {
    Axioms.push_back(
        Axiom{Lhs, Rhs, Loc, static_cast<unsigned>(Axioms.size()) + 1});
    return Axioms.back();
  }

  const std::vector<SortId> &definedSorts() const { return DefinedSorts; }
  const std::vector<SortId> &usedSorts() const { return UsedSorts; }
  const std::vector<OpId> &operations() const { return Operations; }
  const std::vector<VarId> &variables() const { return Variables; }
  const std::vector<Axiom> &axioms() const { return Axioms; }

  /// Operations declared by this spec whose range is \p Sort and which are
  /// constructors.
  std::vector<OpId> constructorsOf(const AlgebraContext &Ctx,
                                   SortId Sort) const;

  /// Operations declared by this spec that are defined (non-constructor,
  /// non-builtin).
  std::vector<OpId> definedOps(const AlgebraContext &Ctx) const;

private:
  std::string Name;
  std::vector<SortId> DefinedSorts;
  std::vector<SortId> UsedSorts;
  std::vector<OpId> Operations;
  std::vector<VarId> Variables;
  std::vector<Axiom> Axioms;
};

} // namespace algspec

#endif // ALGSPEC_AST_SPEC_H
