//===----------------------------------------------------------------------===//
//
// Part of AlgSpec. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// AlgebraContext: the single owner of sorts, operations, variables, and
/// hash-consed terms.
///
/// Hash-consing gives O(1) structural equality (TermId compare), which the
/// rewrite engine exploits for memoized normalization and the verifier for
/// cheap cross-checking of large ground terms.
///
/// The context pre-registers the builtin Bool and Int sorts and their
/// operations. \c if-then-else and \c SAME are sort-indexed and created
/// lazily per sort on first request.
///
//===----------------------------------------------------------------------===//

#ifndef ALGSPEC_AST_ALGEBRACONTEXT_H
#define ALGSPEC_AST_ALGEBRACONTEXT_H

#include "ast/Ids.h"
#include "ast/Operation.h"
#include "ast/Sort.h"
#include "ast/Term.h"
#include "support/StringInterner.h"

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <span>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace algspec {

/// Descriptor for one typed free variable.
struct VarInfo {
  Symbol Name;
  SortId Sort;
  /// Where the variable was declared (invalid for programmatically built
  /// or renamed-apart variables). Lint diagnostics point here.
  SourceLoc Loc;
};

/// A snapshot of every arena high-water mark. Registrations and term
/// creation are strictly append-only between epochs, so restoring these
/// seven sizes (truncateToEpoch) restores the context exactly to the
/// marked state.
struct ArenaEpoch {
  uint32_t NumSorts = 0;
  uint32_t NumOps = 0;
  uint32_t NumVars = 0;
  uint32_t NumTerms = 0;
  uint32_t ChildPoolSize = 0;
  uint32_t IntPoolSize = 0;
  uint32_t InternedStrings = 0;
};

/// What one truncateToEpoch call released.
struct TruncationDelta {
  uint64_t TermsFreed = 0;
  uint64_t BytesFreed = 0;
};

/// Cumulative per-context arena accounting, surfaced through EngineStats
/// and the server's stats request.
struct ArenaStats {
  uint64_t Truncations = 0;   ///< truncateToEpoch calls that freed anything.
  uint64_t TermsFreed = 0;    ///< Term nodes released across all truncations.
  uint64_t BytesFreed = 0;    ///< Arena bytes released across all truncations.
  uint64_t HighWaterTerms = 0; ///< Peak live term count ever observed.
};

class AlgebraContext {
public:
  AlgebraContext();

  AlgebraContext(const AlgebraContext &) = delete;
  AlgebraContext &operator=(const AlgebraContext &) = delete;

  //===--------------------------------------------------------------------===
  // Interning
  //===--------------------------------------------------------------------===

  StringInterner &interner() { return Interner; }
  Symbol intern(std::string_view Str) { return Interner.intern(Str); }
  std::string_view str(Symbol Sym) const { return Interner.str(Sym); }

  //===--------------------------------------------------------------------===
  // Sorts
  //===--------------------------------------------------------------------===

  /// Registers a new sort. Asserts the name is not already a sort.
  SortId addSort(std::string_view Name, SortKind Kind,
                 SourceLoc Loc = SourceLoc());

  /// Finds a sort by name; invalid id when absent.
  SortId lookupSort(std::string_view Name) const;

  /// Finds a sort by name, or registers it as an Atom (parameter) sort.
  /// This is how `uses Identifier, Attributelist` introduces parameter
  /// sorts of a type schema.
  SortId getOrAddAtomSort(std::string_view Name);

  const SortInfo &sort(SortId Id) const;
  std::string_view sortName(SortId Id) const { return str(sort(Id).Name); }
  unsigned numSorts() const { return static_cast<unsigned>(Sorts.size()); }

  SortId boolSort() const { return BoolSortId; }
  SortId intSort() const { return IntSortId; }

  //===--------------------------------------------------------------------===
  // Operations
  //===--------------------------------------------------------------------===

  /// Registers a new operation. Operations may be overloaded by domain
  /// or range (the paper reuses ADD for both Queue and Symboltable);
  /// registering two ops with identical signatures asserts.
  OpId addOp(std::string_view Name, std::vector<SortId> ArgSorts,
             SortId ResultSort, OpKind Kind, SourceLoc Loc = SourceLoc());

  /// Finds the unique operation with this name. Returns an invalid id when
  /// the name is absent or ambiguous (overloaded); use \c lookupOps to
  /// resolve overloads by argument sorts.
  OpId lookupOp(std::string_view Name) const;

  /// All operations sharing this name (overload set), in registration
  /// order; empty when absent.
  std::vector<OpId> lookupOps(std::string_view Name) const;

  const OpInfo &op(OpId Id) const;

  /// Reclassifies an operation (the parser registers ops as Defined and
  /// upgrades those listed in a `constructors` clause). Builtins cannot be
  /// reclassified.
  void setOpKind(OpId Id, OpKind Kind);

  std::string_view opName(OpId Id) const { return str(op(Id).Name); }
  unsigned numOps() const { return static_cast<unsigned>(Ops.size()); }

  /// All operations whose result sort is \p Sort and which are
  /// constructors; the canonical generators of the sort's values.
  std::vector<OpId> constructorsOf(SortId Sort) const;

  /// The lazily created sort-indexed builtins.
  OpId getIteOp(SortId ResultSort);
  OpId getSameOp(SortId ArgSort);

  /// True/false constructor ops of Bool.
  OpId trueOp() const { return TrueOpId; }
  OpId falseOp() const { return FalseOpId; }

  /// Builtin Int operations (registered eagerly).
  OpId intOp(BuiltinOp Which) const;

  //===--------------------------------------------------------------------===
  // Variables
  //===--------------------------------------------------------------------===

  VarId addVar(std::string_view Name, SortId Sort,
               SourceLoc Loc = SourceLoc());
  const VarInfo &var(VarId Id) const;
  std::string_view varName(VarId Id) const { return str(var(Id).Name); }
  unsigned numVars() const { return static_cast<unsigned>(Vars.size()); }

  //===--------------------------------------------------------------------===
  // Terms (hash-consed; all creation funnels through these)
  //===--------------------------------------------------------------------===

  /// Builds Op(Children...). Asserts arity and argument sorts. Strict
  /// error propagation is structural: if any child is \c error the result
  /// is \c error of the op's result sort — except for if-then-else, whose
  /// branches are lazy (only an \c error *condition* poisons it here; see
  /// paper section 3's definition of error and the FRONT axiom, which
  /// requires the untaken branch not to poison the taken one).
  TermId makeOp(OpId Op, std::span<const TermId> Children);
  TermId makeOp(OpId Op, std::initializer_list<TermId> Children) {
    return makeOp(Op, std::span<const TermId>(Children.begin(),
                                              Children.size()));
  }

  TermId makeVar(VarId Var);
  TermId makeError(SortId Sort);
  TermId makeAtom(Symbol Name, SortId Sort);
  TermId makeAtom(std::string_view Name, SortId Sort) {
    return makeAtom(intern(Name), Sort);
  }
  TermId makeInt(int64_t Value);
  TermId makeBool(bool Value);

  /// Convenience: if-then-else of the branches' sort.
  TermId makeIte(TermId Cond, TermId Then, TermId Else);

  const TermNode &node(TermId Id) const;
  std::span<const TermId> children(TermId Id) const;
  unsigned numTerms() const { return static_cast<unsigned>(Terms.size()); }

  SortId sortOf(TermId Id) const { return node(Id).Sort; }
  bool isError(TermId Id) const { return node(Id).Kind == TermKind::Error; }
  bool isVar(TermId Id) const { return node(Id).Kind == TermKind::Var; }
  bool isGround(TermId Id) const;

  /// The value of an integer literal. Wide values live in a side pool
  /// (the packed TermNode only stores a 32-bit slot index).
  int64_t intValue(TermId Id) const {
    const TermNode &N = node(Id);
    assert(N.Kind == TermKind::Int && "not an integer literal");
    return IntPool[N.IntSlot];
  }

  TermId trueTerm() const { return TrueTermId; }
  TermId falseTerm() const { return FalseTermId; }

  /// Number of nodes in the term DAG reachable from \p Id, counting shared
  /// subterms once.
  unsigned dagSize(TermId Id) const;
  /// Number of nodes in the term tree (shared subterms counted per
  /// occurrence).
  uint64_t treeSize(TermId Id) const;
  /// Height of the term (a leaf has depth 1).
  unsigned depth(TermId Id) const;

  //===--------------------------------------------------------------------===
  // Epochs (region lifecycle)
  //===--------------------------------------------------------------------===
  //
  // The arena is append-only between epochs: markEpoch() captures every
  // high-water mark, truncateToEpoch() frees everything younger wholesale
  // in O(freed) — no per-node bookkeeping is ever kept for the common
  // case of never truncating. Children always precede their parents in
  // the arena (internNode appends child-pool entries before the node), so
  // a suffix truncation can never orphan a surviving term.
  //
  // Contract for id holders: TermIds (and Op/Var/Sort ids and Symbols)
  // created before the epoch survive a truncate; anything created after
  // is dangling once truncateToEpoch runs. Caches keyed or valued by
  // young ids must validate against generation()/truncateLowWater() (the
  // engine memo and the term enumerator do).

  /// Captures the current high-water marks.
  ArenaEpoch markEpoch() const;

  /// Frees every sort, op, var, term, child-pool entry, int-pool entry,
  /// and interned string created after \p E was marked. O(freed). A call
  /// that frees nothing is a no-op and does not advance the generation.
  TruncationDelta truncateToEpoch(const ArenaEpoch &E);

  /// Bumped by every truncation that freed something. Caches holding ids
  /// minted after a truncation point use this (with truncateLowWater) to
  /// detect staleness without scanning.
  uint64_t generation() const { return Generation; }

  /// The smallest term count any truncation ever cut back to; term ids
  /// below it have never been freed. Starts at ~0u (nothing truncated).
  uint32_t truncateLowWater() const { return TruncateLowWater; }

  /// Cumulative truncation counters, with the high-water mark refreshed
  /// to the current live count.
  ArenaStats arenaStats() const {
    ArenaStats S = Stats;
    S.HighWaterTerms = std::max<uint64_t>(S.HighWaterTerms, Terms.size());
    return S;
  }

  /// Live bytes held by the term arena proper (nodes + child pool + int
  /// pool; registries and strings excluded).
  size_t arenaBytes() const {
    return Terms.size() * sizeof(TermNode) + ChildPool.size() * sizeof(TermId) +
           IntPool.size() * sizeof(int64_t);
  }

private:
  TermId internNode(TermNode Node, std::span<const TermId> Children);
  uint64_t hashNode(const TermNode &Node,
                    std::span<const TermId> Children) const;
  bool nodeEquals(TermId Existing, const TermNode &Node,
                  std::span<const TermId> Children) const;

  StringInterner Interner;

  std::vector<SortInfo> Sorts;
  std::unordered_map<Symbol, SortId> SortByName;

  std::vector<OpInfo> Ops;
  std::unordered_map<Symbol, std::vector<OpId>> OpByName;

  std::vector<VarInfo> Vars;

  std::vector<TermNode> Terms;
  std::vector<TermId> ChildPool;
  /// Values of Int literals; TermNode::IntSlot indexes here (the packed
  /// node has no room for a 64-bit payload).
  std::vector<int64_t> IntPool;
  std::unordered_multimap<uint64_t, TermId> TermTable;

  uint64_t Generation = 0;
  uint32_t TruncateLowWater = ~0u;
  ArenaStats Stats;

  SortId BoolSortId;
  SortId IntSortId;
  OpId TrueOpId;
  OpId FalseOpId;
  TermId TrueTermId;
  TermId FalseTermId;

  std::unordered_map<SortId, OpId> IteOps;
  std::unordered_map<SortId, OpId> SameOps;
  std::unordered_map<uint8_t, OpId> IntOps;
};

} // namespace algspec

#endif // ALGSPEC_AST_ALGEBRACONTEXT_H
