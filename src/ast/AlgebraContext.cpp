//===----------------------------------------------------------------------===//
//
// Part of AlgSpec. MIT license.
//
//===----------------------------------------------------------------------===//

#include "ast/AlgebraContext.h"

#include <cassert>
#include <unordered_set>

using namespace algspec;

/// 64-bit mixing step (splitmix64 finalizer); used to combine node fields
/// into the hash-consing key.
static uint64_t mix(uint64_t X) {
  X += 0x9e3779b97f4a7c15ull;
  X = (X ^ (X >> 30)) * 0xbf58476d1ce4e5b9ull;
  X = (X ^ (X >> 27)) * 0x94d049bb133111ebull;
  return X ^ (X >> 31);
}

AlgebraContext::AlgebraContext() {
  BoolSortId = addSort("Bool", SortKind::Bool);
  IntSortId = addSort("Int", SortKind::Int);

  TrueOpId = addOp("true", {}, BoolSortId, OpKind::Constructor);
  FalseOpId = addOp("false", {}, BoolSortId, OpKind::Constructor);
  TrueTermId = makeOp(TrueOpId, {});
  FalseTermId = makeOp(FalseOpId, {});

  auto addBuiltin = [&](std::string_view Name, std::vector<SortId> Args,
                        SortId Result, BuiltinOp Which) {
    OpId Id = addOp(Name, std::move(Args), Result, OpKind::Builtin);
    Ops[Id.index()].Builtin = Which;
    IntOps.emplace(static_cast<uint8_t>(Which), Id);
  };
  addBuiltin("addi", {IntSortId, IntSortId}, IntSortId, BuiltinOp::IntAdd);
  addBuiltin("subi", {IntSortId, IntSortId}, IntSortId, BuiltinOp::IntSub);
  addBuiltin("lei", {IntSortId, IntSortId}, BoolSortId, BuiltinOp::IntLe);
  addBuiltin("lti", {IntSortId, IntSortId}, BoolSortId, BuiltinOp::IntLt);
  addBuiltin("eqi", {IntSortId, IntSortId}, BoolSortId, BuiltinOp::IntEq);
  addBuiltin("not", {BoolSortId}, BoolSortId, BuiltinOp::BoolNot);
  addBuiltin("and", {BoolSortId, BoolSortId}, BoolSortId, BuiltinOp::BoolAnd);
  addBuiltin("or", {BoolSortId, BoolSortId}, BoolSortId, BuiltinOp::BoolOr);
}

//===----------------------------------------------------------------------===//
// Sorts
//===----------------------------------------------------------------------===//

SortId AlgebraContext::addSort(std::string_view Name, SortKind Kind,
                               SourceLoc Loc) {
  Symbol Sym = intern(Name);
  assert(!SortByName.count(Sym) && "duplicate sort registration");
  SortId Id(static_cast<uint32_t>(Sorts.size()));
  Sorts.push_back(SortInfo{Sym, Kind, Loc});
  SortByName.emplace(Sym, Id);
  return Id;
}

SortId AlgebraContext::lookupSort(std::string_view Name) const {
  Symbol Sym = Interner.lookup(Name);
  if (!Sym.isValid())
    return SortId();
  auto It = SortByName.find(Sym);
  return It == SortByName.end() ? SortId() : It->second;
}

SortId AlgebraContext::getOrAddAtomSort(std::string_view Name) {
  SortId Existing = lookupSort(Name);
  if (Existing.isValid())
    return Existing;
  return addSort(Name, SortKind::Atom);
}

const SortInfo &AlgebraContext::sort(SortId Id) const {
  assert(Id.isValid() && Id.index() < Sorts.size() && "bad sort id");
  return Sorts[Id.index()];
}

//===----------------------------------------------------------------------===//
// Operations
//===----------------------------------------------------------------------===//

OpId AlgebraContext::addOp(std::string_view Name,
                           std::vector<SortId> ArgSorts, SortId ResultSort,
                           OpKind Kind, SourceLoc Loc) {
  assert(ResultSort.isValid() && "operation needs a result sort");
#ifndef NDEBUG
  for (SortId Arg : ArgSorts)
    assert(Arg.isValid() && "operation argument sort invalid");
#endif
  Symbol Sym = intern(Name);
#ifndef NDEBUG
  if (auto It = OpByName.find(Sym); It != OpByName.end())
    for (OpId Existing : It->second)
      assert((Ops[Existing.index()].ArgSorts != ArgSorts ||
              Ops[Existing.index()].ResultSort != ResultSort) &&
             "duplicate operation registration (same signature)");
#endif
  OpId Id(static_cast<uint32_t>(Ops.size()));
  Ops.push_back(OpInfo{Sym, std::move(ArgSorts), ResultSort, Kind,
                       BuiltinOp::None, Loc});
  OpByName[Sym].push_back(Id);
  return Id;
}

OpId AlgebraContext::lookupOp(std::string_view Name) const {
  Symbol Sym = Interner.lookup(Name);
  if (!Sym.isValid())
    return OpId();
  auto It = OpByName.find(Sym);
  if (It == OpByName.end() || It->second.size() != 1)
    return OpId();
  return It->second.front();
}

std::vector<OpId> AlgebraContext::lookupOps(std::string_view Name) const {
  Symbol Sym = Interner.lookup(Name);
  if (!Sym.isValid())
    return {};
  auto It = OpByName.find(Sym);
  return It == OpByName.end() ? std::vector<OpId>() : It->second;
}

const OpInfo &AlgebraContext::op(OpId Id) const {
  assert(Id.isValid() && Id.index() < Ops.size() && "bad op id");
  return Ops[Id.index()];
}

void AlgebraContext::setOpKind(OpId Id, OpKind Kind) {
  assert(Id.isValid() && Id.index() < Ops.size() && "bad op id");
  assert(Ops[Id.index()].Kind != OpKind::Builtin &&
         "builtins cannot be reclassified");
  Ops[Id.index()].Kind = Kind;
}

std::vector<OpId> AlgebraContext::constructorsOf(SortId Sort) const {
  std::vector<OpId> Result;
  for (uint32_t I = 0, E = static_cast<uint32_t>(Ops.size()); I != E; ++I)
    if (Ops[I].Kind == OpKind::Constructor && Ops[I].ResultSort == Sort)
      Result.push_back(OpId(I));
  return Result;
}

OpId AlgebraContext::getIteOp(SortId ResultSort) {
  auto It = IteOps.find(ResultSort);
  if (It != IteOps.end())
    return It->second;
  std::string Name = "if@" + std::string(sortName(ResultSort));
  OpId Id = addOp(Name, {BoolSortId, ResultSort, ResultSort}, ResultSort,
                  OpKind::Builtin);
  Ops[Id.index()].Builtin = BuiltinOp::Ite;
  IteOps.emplace(ResultSort, Id);
  return Id;
}

OpId AlgebraContext::getSameOp(SortId ArgSort) {
  auto It = SameOps.find(ArgSort);
  if (It != SameOps.end())
    return It->second;
  std::string Name = "SAME@" + std::string(sortName(ArgSort));
  OpId Id = addOp(Name, {ArgSort, ArgSort}, BoolSortId, OpKind::Builtin);
  Ops[Id.index()].Builtin = BuiltinOp::Same;
  SameOps.emplace(ArgSort, Id);
  return Id;
}

OpId AlgebraContext::intOp(BuiltinOp Which) const {
  auto It = IntOps.find(static_cast<uint8_t>(Which));
  assert(It != IntOps.end() && "not an eagerly registered builtin");
  return It->second;
}

//===----------------------------------------------------------------------===//
// Variables
//===----------------------------------------------------------------------===//

VarId AlgebraContext::addVar(std::string_view Name, SortId Sort,
                             SourceLoc Loc) {
  assert(Sort.isValid() && "variable needs a sort");
  VarId Id(static_cast<uint32_t>(Vars.size()));
  Vars.push_back(VarInfo{intern(Name), Sort, Loc});
  return Id;
}

const VarInfo &AlgebraContext::var(VarId Id) const {
  assert(Id.isValid() && Id.index() < Vars.size() && "bad var id");
  return Vars[Id.index()];
}

//===----------------------------------------------------------------------===//
// Terms
//===----------------------------------------------------------------------===//

uint64_t AlgebraContext::hashNode(const TermNode &Node,
                                  std::span<const TermId> Children) const {
  uint64_t H = mix(static_cast<uint64_t>(Node.Kind) * 0x1000193u +
                   Node.Sort.index());
  switch (Node.Kind) {
  case TermKind::Op:
    H = mix(H ^ Node.Op.index());
    break;
  case TermKind::Var:
    H = mix(H ^ Node.Var.index());
    break;
  case TermKind::Atom:
    H = mix(H ^ Node.AtomName.index());
    break;
  case TermKind::Int:
    H = mix(H ^ static_cast<uint64_t>(IntPool[Node.IntSlot]));
    break;
  case TermKind::Error:
    break;
  }
  for (TermId Child : Children)
    H = mix(H ^ Child.index());
  return H;
}

bool AlgebraContext::nodeEquals(TermId Existing, const TermNode &Node,
                                std::span<const TermId> Children) const {
  const TermNode &E = Terms[Existing.index()];
  if (E.Kind != Node.Kind || E.Sort != Node.Sort ||
      E.NumChildren != Children.size())
    return false;
  switch (Node.Kind) {
  case TermKind::Op:
    if (E.Op != Node.Op)
      return false;
    break;
  case TermKind::Var:
    return E.Var == Node.Var;
  case TermKind::Atom:
    return E.AtomName == Node.AtomName;
  case TermKind::Int:
    return IntPool[E.IntSlot] == IntPool[Node.IntSlot];
  case TermKind::Error:
    return true;
  }
  for (uint32_t I = 0; I != E.NumChildren; ++I)
    if (ChildPool[E.ChildBegin + I] != Children[I])
      return false;
  return true;
}

TermId AlgebraContext::internNode(TermNode Node,
                                  std::span<const TermId> Children) {
  uint64_t H = hashNode(Node, Children);
  auto Range = TermTable.equal_range(H);
  for (auto It = Range.first; It != Range.second; ++It)
    if (nodeEquals(It->second, Node, Children))
      return It->second;

  Node.ChildBegin = static_cast<uint32_t>(ChildPool.size());
  Node.NumChildren = static_cast<uint32_t>(Children.size());
  ChildPool.insert(ChildPool.end(), Children.begin(), Children.end());
  TermId Id(static_cast<uint32_t>(Terms.size()));
  Terms.push_back(Node);
  TermTable.emplace(H, Id);
  return Id;
}

TermId AlgebraContext::makeOp(OpId Op, std::span<const TermId> Children) {
  const OpInfo &Info = op(Op);
  assert(Children.size() == Info.arity() && "operation arity mismatch");
#ifndef NDEBUG
  for (size_t I = 0; I != Children.size(); ++I)
    assert(sortOf(Children[I]) == Info.ArgSorts[I] &&
           "operation argument sort mismatch");
#endif

  // Strict error propagation (paper section 3): the value of any operation
  // applied to an argument list containing error is error. If-then-else is
  // the sole exception: its branches are lazy, only an error *condition*
  // propagates structurally.
  if (Info.Builtin == BuiltinOp::Ite) {
    if (isError(Children[0]))
      return makeError(Info.ResultSort);
  } else {
    for (TermId Child : Children)
      if (isError(Child))
        return makeError(Info.ResultSort);
  }

  TermNode Node;
  Node.Kind = TermKind::Op;
  Node.Sort = Info.ResultSort;
  Node.Op = Op;
  return internNode(Node, Children);
}

TermId AlgebraContext::makeVar(VarId Var) {
  TermNode Node;
  Node.Kind = TermKind::Var;
  Node.Sort = var(Var).Sort;
  Node.Var = Var;
  return internNode(Node, {});
}

TermId AlgebraContext::makeError(SortId Sort) {
  assert(Sort.isValid() && "error needs a sort");
  TermNode Node;
  Node.Kind = TermKind::Error;
  Node.Sort = Sort;
  return internNode(Node, {});
}

TermId AlgebraContext::makeAtom(Symbol Name, SortId Sort) {
  assert(sort(Sort).Kind == SortKind::Atom &&
         "atom literals only inhabit atom sorts");
  TermNode Node;
  Node.Kind = TermKind::Atom;
  Node.Sort = Sort;
  Node.AtomName = Name;
  return internNode(Node, {});
}

TermId AlgebraContext::makeInt(int64_t Value) {
  TermNode Node;
  Node.Kind = TermKind::Int;
  Node.Sort = IntSortId;
  // Speculative pool slot: hashNode/nodeEquals read the value through
  // the pool, so it must exist before interning. A dedup hit hands back
  // the existing node and the slot is popped again.
  Node.IntSlot = static_cast<uint32_t>(IntPool.size());
  IntPool.push_back(Value);
  TermId Id = internNode(Node, {});
  if (Terms[Id.index()].IntSlot != Node.IntSlot)
    IntPool.pop_back();
  return Id;
}

TermId AlgebraContext::makeBool(bool Value) {
  return Value ? TrueTermId : FalseTermId;
}

TermId AlgebraContext::makeIte(TermId Cond, TermId Then, TermId Else) {
  assert(sortOf(Cond) == BoolSortId && "if-then-else condition must be Bool");
  assert(sortOf(Then) == sortOf(Else) &&
         "if-then-else branches must share a sort");
  OpId Ite = getIteOp(sortOf(Then));
  TermId Args[3] = {Cond, Then, Else};
  return makeOp(Ite, std::span<const TermId>(Args, 3));
}

const TermNode &AlgebraContext::node(TermId Id) const {
  assert(Id.isValid() && Id.index() < Terms.size() && "bad term id");
  return Terms[Id.index()];
}

std::span<const TermId> AlgebraContext::children(TermId Id) const {
  const TermNode &Node = node(Id);
  return std::span<const TermId>(ChildPool.data() + Node.ChildBegin,
                                 Node.NumChildren);
}

bool AlgebraContext::isGround(TermId Id) const {
  const TermNode &Node = node(Id);
  if (Node.Kind == TermKind::Var)
    return false;
  for (TermId Child : children(Id))
    if (!isGround(Child))
      return false;
  return true;
}

unsigned AlgebraContext::dagSize(TermId Id) const {
  std::unordered_set<TermId> Seen;
  std::vector<TermId> Stack{Id};
  while (!Stack.empty()) {
    TermId Cur = Stack.back();
    Stack.pop_back();
    if (!Seen.insert(Cur).second)
      continue;
    for (TermId Child : children(Cur))
      Stack.push_back(Child);
  }
  return static_cast<unsigned>(Seen.size());
}

uint64_t AlgebraContext::treeSize(TermId Id) const {
  uint64_t Size = 1;
  for (TermId Child : children(Id))
    Size += treeSize(Child);
  return Size;
}

unsigned AlgebraContext::depth(TermId Id) const {
  unsigned Max = 0;
  for (TermId Child : children(Id))
    Max = std::max(Max, depth(Child));
  return Max + 1;
}

//===----------------------------------------------------------------------===//
// Epochs
//===----------------------------------------------------------------------===//

ArenaEpoch AlgebraContext::markEpoch() const {
  ArenaEpoch E;
  E.NumSorts = static_cast<uint32_t>(Sorts.size());
  E.NumOps = static_cast<uint32_t>(Ops.size());
  E.NumVars = static_cast<uint32_t>(Vars.size());
  E.NumTerms = static_cast<uint32_t>(Terms.size());
  E.ChildPoolSize = static_cast<uint32_t>(ChildPool.size());
  E.IntPoolSize = static_cast<uint32_t>(IntPool.size());
  E.InternedStrings = static_cast<uint32_t>(Interner.size());
  return E;
}

TruncationDelta AlgebraContext::truncateToEpoch(const ArenaEpoch &E) {
  assert(E.NumSorts <= Sorts.size() && E.NumOps <= Ops.size() &&
         E.NumVars <= Vars.size() && E.NumTerms <= Terms.size() &&
         E.ChildPoolSize <= ChildPool.size() &&
         E.IntPoolSize <= IntPool.size() &&
         E.InternedStrings <= Interner.size() &&
         "epoch is younger than the arena (marked on another context?)");

  TruncationDelta Delta;
  if (E.NumSorts == Sorts.size() && E.NumOps == Ops.size() &&
      E.NumVars == Vars.size() && E.NumTerms == Terms.size() &&
      E.ChildPoolSize == ChildPool.size() &&
      E.IntPoolSize == IntPool.size() &&
      E.InternedStrings == Interner.size())
    return Delta; // Nothing younger than the epoch; keep the generation.

  // The peak is about to drop; record it before freeing.
  Stats.HighWaterTerms =
      std::max<uint64_t>(Stats.HighWaterTerms, Terms.size());

  // Un-intern every term younger than the epoch. Recomputing the key
  // from the stored node is what keeps truncation O(freed) without any
  // per-node back-pointers on the build path. The int pool is still
  // intact here, so Int hashes come out as they went in.
  for (uint32_t I = E.NumTerms, N = static_cast<uint32_t>(Terms.size());
       I != N; ++I) {
    const TermNode &Node = Terms[I];
    std::span<const TermId> Kids(ChildPool.data() + Node.ChildBegin,
                                 Node.NumChildren);
    uint64_t H = hashNode(Node, Kids);
    auto Range = TermTable.equal_range(H);
    for (auto It = Range.first; It != Range.second; ++It) {
      if (It->second == TermId(I)) {
        TermTable.erase(It);
        break;
      }
    }
  }
  Delta.TermsFreed = Terms.size() - E.NumTerms;
  Delta.BytesFreed = (Terms.size() - E.NumTerms) * sizeof(TermNode) +
                     (ChildPool.size() - E.ChildPoolSize) * sizeof(TermId) +
                     (IntPool.size() - E.IntPoolSize) * sizeof(int64_t);
  Terms.resize(E.NumTerms);
  ChildPool.resize(E.ChildPoolSize);
  IntPool.resize(E.IntPoolSize);

  // Unregister young operations in reverse registration order: the name
  // map's per-name vectors are append-ordered, so the youngest op with a
  // name is always at the back. Lazily created if@/SAME@ instances also
  // drop out of their sort-indexed caches so a later request re-creates
  // them instead of handing out a dangling id.
  for (uint32_t I = static_cast<uint32_t>(Ops.size()); I > E.NumOps; --I) {
    const OpInfo &Info = Ops[I - 1];
    auto NameIt = OpByName.find(Info.Name);
    assert(NameIt != OpByName.end() && !NameIt->second.empty() &&
           NameIt->second.back() == OpId(I - 1) && "op name map out of sync");
    NameIt->second.pop_back();
    if (NameIt->second.empty())
      OpByName.erase(NameIt);
    if (Info.Builtin == BuiltinOp::Ite)
      IteOps.erase(Info.ResultSort);
    else if (Info.Builtin == BuiltinOp::Same)
      SameOps.erase(Info.ArgSorts[0]);
  }
  Ops.resize(E.NumOps);

  for (uint32_t I = static_cast<uint32_t>(Sorts.size()); I > E.NumSorts; --I)
    SortByName.erase(Sorts[I - 1].Name);
  Sorts.resize(E.NumSorts);
  Vars.resize(E.NumVars);

  Delta.BytesFreed += Interner.truncate(E.InternedStrings);

  ++Generation;
  TruncateLowWater = std::min(TruncateLowWater, E.NumTerms);
  ++Stats.Truncations;
  Stats.TermsFreed += Delta.TermsFreed;
  Stats.BytesFreed += Delta.BytesFreed;
  return Delta;
}
