//===----------------------------------------------------------------------===//
//
// Part of AlgSpec. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders terms back into the concrete spec syntax:
///   ADD(NEW, 'x), if SAME(id, id1) then attrs else RETRIEVE(symtab, id1),
///   error, 42.
///
//===----------------------------------------------------------------------===//

#ifndef ALGSPEC_AST_TERMPRINTER_H
#define ALGSPEC_AST_TERMPRINTER_H

#include "ast/Ids.h"

#include <string>

namespace algspec {

class AlgebraContext;
struct Axiom;

/// Renders \p Term as spec-syntax text.
std::string printTerm(const AlgebraContext &Ctx, TermId Term);

/// Renders "Lhs = Rhs".
std::string printAxiom(const AlgebraContext &Ctx, const Axiom &Ax);

} // namespace algspec

#endif // ALGSPEC_AST_TERMPRINTER_H
