//===----------------------------------------------------------------------===//
//
// Part of AlgSpec. MIT license.
//
//===----------------------------------------------------------------------===//

#include "ast/TermPrinter.h"

#include "ast/AlgebraContext.h"
#include "ast/Spec.h"

using namespace algspec;

namespace {

class Printer {
public:
  explicit Printer(const AlgebraContext &Ctx) : Ctx(Ctx) {}

  void print(TermId Term, bool Parenthesize) {
    const TermNode &Node = Ctx.node(Term);
    switch (Node.Kind) {
    case TermKind::Error:
      Out += "error";
      return;
    case TermKind::Var:
      Out += Ctx.varName(Node.Var);
      return;
    case TermKind::Atom:
      Out += '\'';
      Out += Ctx.str(Node.AtomName);
      return;
    case TermKind::Int:
      Out += std::to_string(Ctx.intValue(Term));
      return;
    case TermKind::Op:
      printOp(Term, Node, Parenthesize);
      return;
    }
  }

  std::string take() { return std::move(Out); }

private:
  void printOp(TermId Term, const TermNode &Node, bool Parenthesize) {
    const OpInfo &Info = Ctx.op(Node.Op);
    auto Children = Ctx.children(Term);

    if (Info.Builtin == BuiltinOp::Ite) {
      if (Parenthesize)
        Out += '(';
      Out += "if ";
      print(Children[0], false);
      Out += " then ";
      print(Children[1], true);
      Out += " else ";
      print(Children[2], true);
      if (Parenthesize)
        Out += ')';
      return;
    }

    // Sort-indexed builtins are registered as "SAME@Identifier"; print the
    // surface name the parser accepts.
    std::string_view Name = Ctx.opName(Node.Op);
    if (size_t At = Name.find('@'); At != std::string_view::npos)
      Name = Name.substr(0, At);
    Out += Name;

    if (Children.empty())
      return;
    Out += '(';
    for (size_t I = 0; I != Children.size(); ++I) {
      if (I != 0)
        Out += ", ";
      print(Children[I], false);
    }
    Out += ')';
  }

  const AlgebraContext &Ctx;
  std::string Out;
};

} // namespace

std::string algspec::printTerm(const AlgebraContext &Ctx, TermId Term) {
  Printer P(Ctx);
  P.print(Term, false);
  return P.take();
}

std::string algspec::printAxiom(const AlgebraContext &Ctx, const Axiom &Ax) {
  return printTerm(Ctx, Ax.Lhs) + " = " + printTerm(Ctx, Ax.Rhs);
}
