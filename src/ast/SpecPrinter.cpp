//===----------------------------------------------------------------------===//
//
// Part of AlgSpec. MIT license.
//
//===----------------------------------------------------------------------===//

#include "ast/SpecPrinter.h"

#include "ast/AlgebraContext.h"
#include "ast/Spec.h"
#include "ast/TermPrinter.h"

#include <set>

using namespace algspec;

std::string algspec::printSpec(const AlgebraContext &Ctx, const Spec &S) {
  std::string Out = "spec " + S.name() + "\n";

  // uses: the spec's own used sorts, plus any atom sort referenced by an
  // operation but not recorded (programmatically built specs may skip
  // addUsedSort).
  std::set<uint32_t> Used;
  for (SortId Sort : S.usedSorts())
    Used.insert(Sort.index());
  for (OpId Op : S.operations()) {
    const OpInfo &Info = Ctx.op(Op);
    auto noteAtom = [&](SortId Sort) {
      if (Ctx.sort(Sort).Kind == SortKind::Atom)
        Used.insert(Sort.index());
    };
    noteAtom(Info.ResultSort);
    for (SortId Arg : Info.ArgSorts)
      noteAtom(Arg);
  }
  if (!Used.empty()) {
    Out += "  uses ";
    bool First = true;
    for (uint32_t Index : Used) {
      if (!First)
        Out += ", ";
      First = false;
      Out += Ctx.sortName(SortId(Index));
    }
    Out += '\n';
  }

  if (!S.definedSorts().empty()) {
    Out += "  sorts ";
    for (size_t I = 0; I != S.definedSorts().size(); ++I) {
      if (I)
        Out += ", ";
      Out += Ctx.sortName(S.definedSorts()[I]);
    }
    Out += '\n';
  }

  if (!S.operations().empty()) {
    Out += "  ops\n";
    for (OpId Op : S.operations()) {
      const OpInfo &Info = Ctx.op(Op);
      Out += "    ";
      Out += Ctx.opName(Op);
      Out += " : ";
      for (size_t I = 0; I != Info.ArgSorts.size(); ++I) {
        if (I)
          Out += ", ";
        Out += Ctx.sortName(Info.ArgSorts[I]);
      }
      if (!Info.ArgSorts.empty())
        Out += ' ';
      Out += "-> ";
      Out += Ctx.sortName(Info.ResultSort);
      Out += '\n';
    }
  }

  std::string Ctors;
  for (OpId Op : S.operations()) {
    if (!Ctx.op(Op).isConstructor())
      continue;
    if (!Ctors.empty())
      Ctors += ", ";
    Ctors += Ctx.opName(Op);
  }
  if (!Ctors.empty())
    Out += "  constructors " + Ctors + "\n";

  if (!S.variables().empty()) {
    Out += "  vars\n";
    for (VarId Var : S.variables()) {
      Out += "    ";
      Out += Ctx.varName(Var);
      Out += " : ";
      Out += Ctx.sortName(Ctx.var(Var).Sort);
      Out += '\n';
    }
  }

  if (!S.axioms().empty()) {
    Out += "  axioms\n";
    for (const Axiom &Ax : S.axioms()) {
      Out += "    ";
      Out += printAxiom(Ctx, Ax);
      Out += '\n';
    }
  }

  Out += "end\n";
  return Out;
}
