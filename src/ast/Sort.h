//===----------------------------------------------------------------------===//
//
// Part of AlgSpec. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Sort (carrier set) descriptors.
///
//===----------------------------------------------------------------------===//

#ifndef ALGSPEC_AST_SORT_H
#define ALGSPEC_AST_SORT_H

#include "ast/Ids.h"
#include "support/SourceLoc.h"
#include "support/StringInterner.h"

namespace algspec {

/// How a sort's ground values come into existence.
enum class SortKind : uint8_t {
  /// Declared by a spec; ground values are constructor terms.
  User,
  /// Uninterpreted parameter sort (Identifier, Item, Attributelist, ...);
  /// ground values are atom literals. The paper treats these as parameters
  /// of a "type schema".
  Atom,
  /// The builtin Bool sort with constructors true/false.
  Bool,
  /// The builtin Int sort; ground values are integer literals.
  Int,
};

/// Descriptor for one sort.
struct SortInfo {
  Symbol Name;
  SortKind Kind = SortKind::User;
  SourceLoc Loc;
};

} // namespace algspec

#endif // ALGSPEC_AST_SORT_H
