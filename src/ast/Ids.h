//===----------------------------------------------------------------------===//
//
// Part of AlgSpec. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Strongly typed index handles for sorts, operations, variables, and terms.
///
/// Everything in the algebra layer is stored in tables owned by
/// \c AlgebraContext and referred to by these 32-bit handles; terms in
/// particular are hash-consed, so two structurally equal terms always have
/// the same \c TermId and equality is a single integer compare.
///
//===----------------------------------------------------------------------===//

#ifndef ALGSPEC_AST_IDS_H
#define ALGSPEC_AST_IDS_H

#include <cstdint>
#include <functional>

namespace algspec {

namespace detail {
/// CRTP-free strong index wrapper; \p Tag makes each instantiation a
/// distinct type so a SortId cannot be passed where an OpId is expected.
template <typename Tag> class StrongId {
public:
  StrongId() = default;
  explicit StrongId(uint32_t Value) : Value(Value) {}

  bool isValid() const { return Value != Invalid; }
  uint32_t index() const { return Value; }

  friend bool operator==(StrongId A, StrongId B) { return A.Value == B.Value; }
  friend bool operator!=(StrongId A, StrongId B) { return A.Value != B.Value; }
  friend bool operator<(StrongId A, StrongId B) { return A.Value < B.Value; }

private:
  static constexpr uint32_t Invalid = ~0u;
  uint32_t Value = Invalid;
};
} // namespace detail

struct SortIdTag;
struct OpIdTag;
struct VarIdTag;
struct TermIdTag;

/// Handle for a sort (a carrier set of the heterogeneous algebra).
using SortId = detail::StrongId<SortIdTag>;
/// Handle for an operation (name + domain + range).
using OpId = detail::StrongId<OpIdTag>;
/// Handle for a typed free variable usable in axioms.
using VarId = detail::StrongId<VarIdTag>;
/// Handle for a hash-consed term.
using TermId = detail::StrongId<TermIdTag>;

} // namespace algspec

namespace std {
template <typename Tag> struct hash<algspec::detail::StrongId<Tag>> {
  size_t operator()(algspec::detail::StrongId<Tag> Id) const noexcept {
    return std::hash<uint32_t>()(Id.index());
  }
};
} // namespace std

#endif // ALGSPEC_AST_IDS_H
