//===----------------------------------------------------------------------===//
//
// Part of AlgSpec. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Symbolic interpretation of specifications (paper, section 5):
///
///   "In the absence of an implementation, the operations of the algebra
///   may be interpreted symbolically. Thus, except for a significant loss
///   in efficiency, the lack of an implementation can be made completely
///   transparent to the user."
///
/// A Session holds named registers bound to ground values (normalized
/// terms) and executes straight-line programs in the paper's assignment
/// style:
///
///   Session S(Ctx, {&QueueSpec});
///   S.run("x := NEW");
///   S.run("x := ADD(x, 'a)");
///   auto Front = S.eval("FRONT(x)");   // normalizes to 'a
///
/// Register references inside terms are resolved before normalization, so
/// any module written against the operations (e.g. the BlockLang compiler
/// front end) can run on the bare specification.
///
//===----------------------------------------------------------------------===//

#ifndef ALGSPEC_INTERP_SESSION_H
#define ALGSPEC_INTERP_SESSION_H

#include "ast/Ids.h"
#include "rewrite/Engine.h"
#include "rewrite/RewriteSystem.h"
#include "support/Error.h"

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

namespace algspec {

class AlgebraContext;
class Spec;

/// One interpretation session over a set of specs.
class Session {
public:
  /// Builds the rewrite system from \p Specs. Fails when an axiom cannot
  /// be oriented. \p Specs must outlive the session.
  static Result<Session> create(AlgebraContext &Ctx,
                                std::vector<const Spec *> Specs,
                                EngineOptions Options = EngineOptions());

  /// Evaluates a term; register names are in scope as constants.
  Result<TermId> eval(std::string_view TermText);

  /// Executes one statement of the form `name := term` (the paper's
  /// program-segment notation) or a bare term (evaluated and discarded).
  /// Registers are created on first assignment and keep their sort.
  Result<void> run(std::string_view Statement);

  /// Executes newline/;-separated statements, stopping at the first error.
  Result<void> runProgram(std::string_view Program);

  /// Assigns an already-built ground value to a register.
  Result<void> assign(std::string_view Name, TermId Value);

  /// Current value of a register; invalid TermId when absent.
  TermId lookup(std::string_view Name) const;

  const EngineStats &stats() const { return Engine->stats(); }
  RewriteEngine &engine() { return *Engine; }

  Session(Session &&) = default;
  Session &operator=(Session &&) = default;

private:
  Session(AlgebraContext &Ctx, RewriteSystem System, EngineOptions Options);

  AlgebraContext *Ctx;
  std::unique_ptr<RewriteSystem> System;
  std::unique_ptr<RewriteEngine> Engine;
  /// Register name -> (scope variable used during parsing, value).
  std::unordered_map<std::string, VarId> RegisterVars;
  std::unordered_map<std::string, TermId> RegisterValues;
};

} // namespace algspec

#endif // ALGSPEC_INTERP_SESSION_H
