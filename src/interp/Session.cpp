//===----------------------------------------------------------------------===//
//
// Part of AlgSpec. MIT license.
//
//===----------------------------------------------------------------------===//

#include "interp/Session.h"

#include "ast/AlgebraContext.h"
#include "ast/Spec.h"
#include "parser/Parser.h"
#include "rewrite/Substitution.h"

#include <cctype>

using namespace algspec;

Session::Session(AlgebraContext &Ctx, RewriteSystem SystemIn,
                 EngineOptions Options)
    : Ctx(&Ctx), System(std::make_unique<RewriteSystem>(std::move(SystemIn))),
      Engine(std::make_unique<RewriteEngine>(Ctx, *System, Options)) {}

Result<Session> Session::create(AlgebraContext &Ctx,
                                std::vector<const Spec *> Specs,
                                EngineOptions Options) {
  auto SystemOrErr = RewriteSystem::buildChecked(Ctx, Specs);
  if (!SystemOrErr)
    return SystemOrErr.error();
  return Session(Ctx, SystemOrErr.take(), Options);
}

Result<TermId> Session::eval(std::string_view TermText) {
  // Registers appear as free "variables" during parsing and are
  // substituted with their current values before normalization.
  VarScope Scope;
  Substitution RegValues;
  for (const auto &[Name, Var] : RegisterVars) {
    Scope.emplace(Name, Var);
    RegValues.bind(Var, RegisterValues.at(Name));
  }
  Result<TermId> Parsed = parseTermText(*Ctx, TermText, &Scope);
  if (!Parsed)
    return Parsed;
  TermId Closed = applySubstitution(*Ctx, *Parsed, RegValues);
  if (!Ctx->isGround(Closed))
    return makeError("term references no known register or is not ground");
  return Engine->normalize(Closed);
}

Result<void> Session::assign(std::string_view Name, TermId Value) {
  std::string Key(Name);
  auto It = RegisterVars.find(Key);
  if (It != RegisterVars.end()) {
    SortId Existing = Ctx->var(It->second).Sort;
    if (Existing != Ctx->sortOf(Value))
      return makeError("register '" + Key + "' holds sort '" +
                       std::string(Ctx->sortName(Existing)) +
                       "' but is assigned sort '" +
                       std::string(Ctx->sortName(Ctx->sortOf(Value))) + "'");
  } else {
    It = RegisterVars.emplace(Key, Ctx->addVar(Name, Ctx->sortOf(Value)))
             .first;
  }
  RegisterValues[Key] = Value;
  return Result<void>();
}

TermId Session::lookup(std::string_view Name) const {
  auto It = RegisterValues.find(std::string(Name));
  return It == RegisterValues.end() ? TermId() : It->second;
}

Result<void> Session::run(std::string_view Statement) {
  // Split at the first `:=` outside of any parentheses (the term grammar
  // has no :=, so a plain find is safe).
  size_t Pos = Statement.find(":=");
  if (Pos == std::string_view::npos) {
    Result<TermId> Value = eval(Statement);
    if (!Value)
      return Value.error();
    return Result<void>();
  }

  std::string_view Name = Statement.substr(0, Pos);
  std::string_view TermText = Statement.substr(Pos + 2);
  // Trim the register name.
  while (!Name.empty() && std::isspace(static_cast<unsigned char>(
                              Name.front())))
    Name.remove_prefix(1);
  while (!Name.empty() &&
         std::isspace(static_cast<unsigned char>(Name.back())))
    Name.remove_suffix(1);
  if (Name.empty())
    return makeError("missing register name before ':='");
  for (char C : Name)
    if (!std::isalnum(static_cast<unsigned char>(C)) && C != '_')
      return makeError("invalid register name '" + std::string(Name) + "'");

  Result<TermId> Value = eval(TermText);
  if (!Value)
    return Value.error();
  return assign(Name, *Value);
}

Result<void> Session::runProgram(std::string_view Program) {
  // Strip -- comments up front so a ';' inside a comment cannot split a
  // statement.
  std::string Clean;
  Clean.reserve(Program.size());
  for (size_t I = 0; I < Program.size();) {
    if (Program[I] == '-' && I + 1 < Program.size() &&
        Program[I + 1] == '-') {
      while (I < Program.size() && Program[I] != '\n')
        ++I;
      continue;
    }
    Clean += Program[I++];
  }

  std::string_view Rest(Clean);
  size_t Begin = 0;
  while (Begin <= Rest.size()) {
    size_t End = Rest.find_first_of(";\n", Begin);
    if (End == std::string_view::npos)
      End = Rest.size();
    std::string_view Statement = Rest.substr(Begin, End - Begin);
    while (!Statement.empty() && std::isspace(static_cast<unsigned char>(
                                     Statement.front())))
      Statement.remove_prefix(1);
    if (!Statement.empty()) {
      if (Result<void> R = run(Statement); !R)
        return R;
    }
    Begin = End + 1;
  }
  return Result<void>();
}
