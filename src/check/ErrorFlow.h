//===----------------------------------------------------------------------===//
//
// Part of AlgSpec. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// ErrorFlow: a fixpoint abstract interpretation of the rewrite system
/// that computes, per defined operation, a *definedness summary* on the
/// three-point lattice
///
///   never-error  ⊑  may-error  ⊑  always-error
///
/// case-split by constructor patterns exactly as the sufficient-
/// completeness matrix splits them: each axiom left-hand side is one
/// case. The interpretation models the paper's section-3 error algebra
/// precisely as \c AlgebraContext::makeOp enforces it structurally —
/// every operation is strict in every argument, except if-then-else,
/// which is strict in its condition and lazy in its branches.
///
/// For each erroring case the analysis additionally derives the *guard*
/// under which the case rewrites to error (e.g. `POP(s)` errors iff
/// `s = NEWSTACK`; `ENQUEUE(q, i)` errors iff `IS_FULL?(q)`), emitted as
/// a machine-readable \c DefinednessObligation — the inferred
/// precondition a caller must establish. The representation verifier
/// discharges these obligations statically (the paper's Assumption 1,
/// generalized), and three lint rules are built on the summaries:
///
///   error-swallowed       an axiom right-hand side that provably
///                         rewrites to error without saying `error`
///   always-error-op       an operation whose every case errors
///   redundant-error-axiom an explicit error axiom already implied by
///                         strict propagation through the other rules
///
/// Soundness note: the abstract value `never-error` claims no ground
/// instance rewrites to the error *value*; divergence and stuck terms
/// are not errors (they surface as fuel failures and completeness
/// findings respectively), so the optimistic all-`never` start of the
/// Kleene iteration is sound, and the finite chain makes it converge.
///
//===----------------------------------------------------------------------===//

#ifndef ALGSPEC_CHECK_ERRORFLOW_H
#define ALGSPEC_CHECK_ERRORFLOW_H

#include "ast/Ids.h"
#include "rewrite/Engine.h"

#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace algspec {

class AlgebraContext;
class LintPass;
class Spec;

/// One point of the definedness lattice.
enum class ErrorVerdict : uint8_t {
  Never = 0,  ///< No ground instance rewrites to error.
  May = 1,    ///< Some instances might; the analysis cannot decide.
  Always = 2, ///< Every ground instance rewrites to error.
};

/// "never-error" / "may-error" / "always-error".
std::string_view errorVerdictName(ErrorVerdict V);

/// One constructor case of one operation: the axiom whose left-hand side
/// is the case pattern, the verdict for that case, and — when the case
/// can error — the derived condition.
struct ErrorCase {
  unsigned AxiomNumber = 0;
  TermId Lhs;
  ErrorVerdict Verdict = ErrorVerdict::Never;
  /// Bool-sorted open term over the case's variables: a *necessary*
  /// condition for the case to error (errors ⟹ condition). Invalid when
  /// the verdict alone says everything (Never, or Always with no guard).
  TermId ErrorCondition;
  /// True when the condition is also sufficient (errors ⟺ condition).
  bool ConditionExact = false;
};

/// Definedness summary of one defined operation.
struct OpSummary {
  OpId Op;
  std::string SpecName;
  /// Join over the cases: equal verdicts keep their value, differing
  /// cases meet at may-error.
  ErrorVerdict Overall = ErrorVerdict::Never;
  std::vector<ErrorCase> Cases;
};

/// One inferred precondition, machine-readable: applying \c Op to
/// arguments matching \c CaseLhs rewrites to error — unconditionally
/// when \c ErrorCondition is invalid, else exactly/at-most when the
/// condition holds. Callers must avoid the case (the paper's
/// Assumption 1 is the Symboltable instance of this).
struct DefinednessObligation {
  OpId Op;
  std::string SpecName;
  unsigned AxiomNumber = 0;
  TermId CaseLhs;
  ErrorVerdict Verdict = ErrorVerdict::Always;
  TermId ErrorCondition;
  bool ConditionExact = false;

  /// "POP(NEWSTACK) = error" or "ENQUEUE(q, i) = error iff IS_FULL?(q)".
  std::string render(const AlgebraContext &Ctx) const;
};

/// Outcome of the error-flow analysis over a set of specs.
struct ErrorFlowReport {
  /// One summary per defined operation, in spec and declaration order.
  std::vector<OpSummary> Summaries;
  /// Every erroring case whose guard is crisp enough to act on: the
  /// always-error cases plus the exactly-conditional ones.
  std::vector<DefinednessObligation> Obligations;
  std::vector<std::string> Caveats;
  /// Guard-engine counters (the bounded engine that decides enclosing
  /// guards under case-composition substitutions). Informational only —
  /// never part of the verdicts — and deterministic: the analysis is
  /// serial and visits operations in spec/declaration order.
  EngineStats Engine;

  const OpSummary *summaryFor(OpId Op) const;
  std::string render(const AlgebraContext &Ctx) const;
};

/// Runs the fixpoint analysis over every defined operation of \p Specs
/// (analyzed together: axioms call across specs, as Stack of Arrays
/// does). \p Eng seeds the guard engine's configuration — notably
/// EngineOptions::Compile — though the analysis pins its own conservative
/// fuel and depth bounds on top.
ErrorFlowReport analyzeErrorFlow(AlgebraContext &Ctx,
                                 const std::vector<const Spec *> &Specs,
                                 EngineOptions Eng = EngineOptions());

/// The three analysis-backed lint rules (registered in
/// \c Linter::standard()).
std::unique_ptr<LintPass> makeErrorSwallowedPass();
std::unique_ptr<LintPass> makeAlwaysErrorOpPass();
std::unique_ptr<LintPass> makeRedundantErrorAxiomPass();

} // namespace algspec

#endif // ALGSPEC_CHECK_ERRORFLOW_H
