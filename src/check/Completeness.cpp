//===----------------------------------------------------------------------===//
//
// Part of AlgSpec. MIT license.
//
//===----------------------------------------------------------------------===//

#include "check/Completeness.h"

#include "ast/AlgebraContext.h"
#include "ast/Spec.h"
#include "ast/TermPrinter.h"
#include "check/Exhaustiveness.h"
#include "check/ReplicaWorker.h"
#include "rewrite/Engine.h"
#include "rewrite/PatternMatrix.h"
#include "rewrite/RewriteSystem.h"

#include <algorithm>
#include <limits>
#include <optional>
#include <unordered_map>

using namespace algspec;

/// Pins the reported order: by operation id, then by the rendered
/// suggested left-hand side. The enumeration order that produced the
/// cases is an implementation detail; golden files diff against this.
static void sortMissingCases(const AlgebraContext &Ctx,
                             std::vector<MissingCase> &Missing) {
  std::stable_sort(Missing.begin(), Missing.end(),
                   [&Ctx](const MissingCase &A, const MissingCase &B) {
                     if (A.Op != B.Op)
                       return A.Op < B.Op;
                     return printTerm(Ctx, A.SuggestedLhs) <
                            printTerm(Ctx, B.SuggestedLhs);
                   });
}

//===----------------------------------------------------------------------===//
// Public interface
//===----------------------------------------------------------------------===//

std::string CompletenessReport::renderPrompt(const AlgebraContext &Ctx) const {
  if (SufficientlyComplete && Caveats.empty())
    return "The axiom set is sufficiently complete.\n";
  std::string Out;
  if (!Missing.empty()) {
    Out += "The axiom set is not sufficiently complete. Please supply "
           "axioms for:\n";
    for (const MissingCase &Case : Missing) {
      Out += "  ";
      Out += printTerm(Ctx, Case.SuggestedLhs);
      Out += " = ?\n";
    }
  }
  for (const std::string &Caveat : Caveats) {
    Out += "note: ";
    Out += Caveat;
    Out += '\n';
  }
  return Out;
}

CompletenessReport algspec::checkCompleteness(AlgebraContext &Ctx,
                                              const Spec &S) {
  CompletenessReport Report;
  PatternMatrix Matrix(Ctx);

  for (OpId Op : S.definedOps(Ctx)) {
    const OpInfo &Info = Ctx.op(Op);

    // Gather this operation's axiom rows.
    std::vector<PatternMatrix::Row> Rows;
    for (const Axiom &Ax : S.axioms()) {
      const TermNode &LhsNode = Ctx.node(Ax.Lhs);
      if (LhsNode.Kind != TermKind::Op || LhsNode.Op != Op)
        continue;
      auto Args = Ctx.children(Ax.Lhs);
      PatternMatrix::Row Row(Args.begin(), Args.end());

      bool Usable = true;
      for (TermId Pattern : Row)
        if (!PatternMatrix::isConstructorPattern(Ctx, Pattern)) {
          Report.Caveats.push_back(
              "axiom " + std::to_string(Ax.Number) + " of '" + S.name() +
              "' has a non-constructor pattern in its left-hand side; it "
              "is ignored by the static coverage analysis");
          Usable = false;
          break;
        }
      if (Usable && !PatternMatrix::isLinearRow(Ctx, Row))
        Report.Caveats.push_back(
            "axiom " + std::to_string(Ax.Number) + " of '" + S.name() +
            "' repeats a variable in its left-hand side; coverage is "
            "approximated as if the occurrences were independent");
      if (Usable)
        Rows.push_back(std::move(Row));
    }

    PatternMatrix::Coverage Cov =
        Matrix.findUncovered(std::move(Rows), Info.ArgSorts);
    for (SortId Blocked : Cov.BlockedSorts)
      Report.Caveats.push_back("sort '" +
                               std::string(Ctx.sortName(Blocked)) +
                               "' has no constructors; coverage over it "
                               "cannot be decided");
    if (!Cov.Witness)
      continue;
    Report.SufficientlyComplete = false;
    Report.Missing.push_back(MissingCase{Op, Ctx.makeOp(Op, *Cov.Witness)});
  }
  sortMissingCases(Ctx, Report.Missing);
  return Report;
}

CompletenessReport algspec::checkCompletenessDynamic(
    AlgebraContext &Ctx, const Spec &S,
    const std::vector<const Spec *> &AllSpecs, unsigned MaxDepth,
    EnumeratorOptions EnumOptions, ParallelOptions Par, EngineOptions Eng,
    const ExhaustivenessReport *Certificate) {
  CompletenessReport Report;

  // A covering static certificate proves every constructor-ground
  // application normalizes to a constructor-ground normal form, which is
  // exactly what the bounded sweep refutes case by case — so the sweep
  // is skipped outright. (The skipped path naturally omits the sweep's
  // truncation and nullary caveats; its findings — the missing cases —
  // are identical: there are none.)
  if (Certificate && Certificate->coversSpec(S.name())) {
    Report.ProvenBy =
        "static exhaustiveness certificate: every defined operation in "
        "the rule closure is constructor-case covered, guards decide, "
        "and termination is proved";
    return Report;
  }

  DiagnosticEngine Diags;
  RewriteSystem System = RewriteSystem::build(Ctx, AllSpecs, Diags);
  if (Diags.hasErrors()) {
    Report.Caveats.push_back("some axioms could not be oriented into "
                             "rules; the dynamic check skipped them");
  }
  RewriteEngine Engine(Ctx, System, Eng);
  TermEnumerator Enumerator(Ctx, std::move(EnumOptions));
  std::unique_ptr<ParallelDriver<ReplicaWorker>> Driver =
      makeReplicaDriver(Par, Ctx, AllSpecs, Eng);

  // Witness minimization: a stuck application found by the sweep is a
  // first-found deep ground term; generalizing it against the
  // operation's rule rows yields the smallest constructor skeleton that
  // is still uncovered — the same shape the static analysis reports.
  // Gated on every argument sort being freely generated (over non-free
  // sorts a wildcard would claim unreachable instances); rows include
  // every rule's patterns, constructor-shaped or not, since syntactic
  // matching against a constructor-ground tuple is exact either way.
  PatternMatrix Matrix(Ctx);
  std::optional<std::vector<bool>> FreeSorts;
  struct MinimizeInfo {
    bool Usable = true;
    std::vector<PatternMatrix::Row> Rows;
  };
  std::unordered_map<OpId, MinimizeInfo> MinimizeCache;
  auto minimizeCase = [&](OpId Op, TermId Application) -> TermId {
    auto It = MinimizeCache.find(Op);
    if (It == MinimizeCache.end()) {
      if (!FreeSorts)
        FreeSorts = computeFreeSorts(Ctx, System);
      MinimizeInfo MI;
      for (SortId Arg : Ctx.op(Op).ArgSorts)
        MI.Usable &= (*FreeSorts)[Arg.index()];
      if (MI.Usable)
        for (const Rule &R : System.rulesFor(Op)) {
          auto Span = Ctx.children(R.Lhs);
          MI.Rows.emplace_back(Span.begin(), Span.end());
        }
      It = MinimizeCache.emplace(Op, std::move(MI)).first;
    }
    if (!It->second.Usable)
      return Application;
    auto Span = Ctx.children(Application);
    PatternMatrix::Row Ground(Span.begin(), Span.end());
    return Ctx.makeOp(Op, Matrix.generalize(It->second.Rows, Ground));
  };

  for (OpId Op : S.definedOps(Ctx)) {
    const OpInfo &Info = Ctx.op(Op);

    // Cartesian product of enumerated argument values.
    std::vector<const std::vector<TermId> *> ArgSets;
    bool Empty = false;
    for (SortId ArgSort : Info.ArgSorts) {
      const std::vector<TermId> &Set =
          Enumerator.enumerate(ArgSort, MaxDepth);
      if (Enumerator.wasTruncated(ArgSort, MaxDepth))
        Report.Caveats.push_back(
            "enumeration of sort '" + std::string(Ctx.sortName(ArgSort)) +
            "' was truncated; the dynamic check is not exhaustive at "
            "this depth");
      if (Set.empty())
        Empty = true;
      ArgSets.push_back(&Set);
    }
    if (Empty || Info.arity() == 0) {
      if (Info.arity() == 0)
        Report.Caveats.push_back("nullary defined operation '" +
                                 std::string(Ctx.opName(Op)) +
                                 "' has no axiom cases to enumerate");
      continue;
    }

    // The odometer space flattened: argument 0 is the least significant
    // digit, matching the serial loop's increment order.
    size_t Total = 1;
    bool Oversized = false;
    for (const std::vector<TermId> *Set : ArgSets) {
      if (Total > std::numeric_limits<size_t>::max() / Set->size()) {
        Oversized = true;
        break;
      }
      Total *= Set->size();
    }
    auto mainArgsFor = [&](size_t Flat, std::vector<TermId> &Args) {
      for (size_t I = 0; I != ArgSets.size(); ++I) {
        Args[I] = (*ArgSets[I])[Flat % ArgSets[I]->size()];
        Flat /= ArgSets[I]->size();
      }
    };
    auto checkOnMain = [&](TermId Application) {
      Result<TermId> Normal = Engine.normalize(Application);
      if (!Normal) {
        Report.Caveats.push_back("normalization of " +
                                 printTerm(Ctx, Application) +
                                 " failed: " + Normal.error().message());
      } else if (Engine.isStuck(*Normal)) {
        Report.SufficientlyComplete = false;
        Report.Missing.emplace_back(Op, minimizeCase(Op, Application));
      }
    };

    if (Driver && !Oversized && Total <= Par.MaxFlatSpace) {
      // Workers classify their shard of the space; anything that is not
      // clean (stuck, or normalization failed, or no replica engine) is
      // re-run on the main engine during the in-order merge below, which
      // regenerates findings with main-context terms and exact serial
      // messages. Findings are rare, so the re-runs are cheap.
      std::vector<uint8_t> Flagged = Driver->map<uint8_t>(
          Total, [&](ReplicaWorker &W, size_t Flat) -> uint8_t {
            if (!W.Engine)
              return 1;
            OpId WorkerOp = W.Rep->mapOp(Op);
            if (!WorkerOp.isValid())
              return 1;
            std::vector<TermId> Args(ArgSets.size());
            mainArgsFor(Flat, Args);
            for (TermId &Arg : Args) {
              Arg = W.Rep->mapTerm(Arg);
              if (!Arg.isValid())
                return 1;
            }
            TermId Application = W.Rep->context().makeOp(WorkerOp, Args);
            Result<TermId> Normal = W.Engine->normalize(Application);
            if (!Normal)
              return 1;
            return W.Engine->isStuck(*Normal) ? 1 : 0;
          });
      std::vector<TermId> Args(ArgSets.size());
      for (size_t Flat = 0; Flat != Total; ++Flat) {
        if (!Flagged[Flat])
          continue;
        mainArgsFor(Flat, Args);
        checkOnMain(Ctx.makeOp(Op, Args));
      }
      continue;
    }

    // Serial sweep; the odometer needs no flat index, so it also covers
    // the (absurd) case of a space too large for size_t.
    std::vector<size_t> Index(ArgSets.size(), 0);
    std::vector<TermId> Args(ArgSets.size());
    while (true) {
      for (size_t I = 0; I != ArgSets.size(); ++I)
        Args[I] = (*ArgSets[I])[Index[I]];
      checkOnMain(Ctx.makeOp(Op, Args));

      size_t Pos = 0;
      while (Pos != Index.size()) {
        if (++Index[Pos] < ArgSets[Pos]->size())
          break;
        Index[Pos] = 0;
        ++Pos;
      }
      if (Pos == Index.size())
        break;
    }
  }
  Report.Engine = Engine.stats();
  if (Driver)
    for (ReplicaWorker *W : Driver->states())
      if (W->Engine)
        Report.Engine += W->Engine->stats();
  sortMissingCases(Ctx, Report.Missing);
  // Minimization can collapse several deep witnesses of one hole onto
  // the same skeleton; hash-consing (plus the shared per-sort wildcard
  // cache) makes equal skeletons id-equal, so adjacent dedup suffices
  // after the sort above.
  Report.Missing.erase(
      std::unique(Report.Missing.begin(), Report.Missing.end(),
                  [](const MissingCase &A, const MissingCase &B) {
                    return A.Op == B.Op && A.SuggestedLhs == B.SuggestedLhs;
                  }),
      Report.Missing.end());
  return Report;
}
