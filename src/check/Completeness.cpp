//===----------------------------------------------------------------------===//
//
// Part of AlgSpec. MIT license.
//
//===----------------------------------------------------------------------===//

#include "check/Completeness.h"

#include "ast/AlgebraContext.h"
#include "ast/Spec.h"
#include "ast/TermPrinter.h"
#include "check/ReplicaWorker.h"
#include "rewrite/Engine.h"
#include "rewrite/RewriteSystem.h"

#include <algorithm>
#include <cctype>
#include <limits>
#include <optional>
#include <unordered_map>
#include <unordered_set>

using namespace algspec;

namespace {

/// Pattern-matrix coverage analysis for one defined operation.
///
/// Rows are the argument patterns of the operation's axiom left-hand
/// sides; the analysis searches for a constructor-term tuple no row
/// matches, by column-wise case splitting (in the style of usefulness
/// checking for ML pattern matching). The witness it returns is rendered
/// as the left-hand side of the axiom the user still has to write.
class CoverageAnalysis {
public:
  CoverageAnalysis(AlgebraContext &Ctx, CompletenessReport &Report)
      : Ctx(Ctx), Report(Report) {}

  /// Returns a witness tuple (terms over wildcard variables) that no row
  /// matches, or nullopt when the matrix covers everything.
  std::optional<std::vector<TermId>>
  findUncovered(std::vector<std::vector<TermId>> Rows,
                std::vector<SortId> Sorts);

  /// One cached wildcard variable per sort, named after the sort so
  /// prompts read like the paper's axioms (queue, item, symboltable...).
  TermId wildcard(SortId Sort);

private:
  bool isVar(TermId Term) const {
    return Ctx.node(Term).Kind == TermKind::Var;
  }

  AlgebraContext &Ctx;
  CompletenessReport &Report;
  std::unordered_map<SortId, TermId> Wildcards;
};

} // namespace

TermId CoverageAnalysis::wildcard(SortId Sort) {
  auto It = Wildcards.find(Sort);
  if (It != Wildcards.end())
    return It->second;
  std::string Name(Ctx.sortName(Sort));
  for (char &C : Name)
    C = static_cast<char>(std::tolower(static_cast<unsigned char>(C)));
  TermId Var = Ctx.makeVar(Ctx.addVar(Name, Sort));
  Wildcards.emplace(Sort, Var);
  return Var;
}

std::optional<std::vector<TermId>>
CoverageAnalysis::findUncovered(std::vector<std::vector<TermId>> Rows,
                                std::vector<SortId> Sorts) {
  // No rows: everything is uncovered; the all-wildcards tuple witnesses it.
  if (Rows.empty()) {
    std::vector<TermId> Witness;
    Witness.reserve(Sorts.size());
    for (SortId Sort : Sorts)
      Witness.push_back(wildcard(Sort));
    return Witness;
  }

  // A row of variables matches every tuple.
  for (const auto &Row : Rows)
    if (std::all_of(Row.begin(), Row.end(),
                    [&](TermId P) { return isVar(P); }))
      return std::nullopt;

  // Pick the first column with a non-variable pattern and case-split on it.
  size_t Col = 0;
  while (Col < Sorts.size()) {
    bool HasNonVar = false;
    for (const auto &Row : Rows)
      if (!isVar(Row[Col])) {
        HasNonVar = true;
        break;
      }
    if (HasNonVar)
      break;
    ++Col;
  }
  assert(Col < Sorts.size() && "non-wildcard row must have a pattern");

  SortId ColSort = Sorts[Col];
  const SortInfo &ColInfo = Ctx.sort(ColSort);

  // Helper: the matrix with column Col fixed and (optionally) replaced by
  // expansion columns; returns the witness with the column re-wrapped.
  auto specializeByConstructor =
      [&](OpId Ctor) -> std::optional<std::vector<TermId>> {
    const OpInfo &CtorInfo = Ctx.op(Ctor);
    std::vector<std::vector<TermId>> NewRows;
    for (const auto &Row : Rows) {
      TermId Pat = Row[Col];
      std::vector<TermId> NewRow;
      if (isVar(Pat)) {
        NewRow = Row;
        NewRow.erase(NewRow.begin() + Col);
        for (SortId ArgSort : CtorInfo.ArgSorts)
          NewRow.push_back(wildcard(ArgSort));
        NewRows.push_back(std::move(NewRow));
        continue;
      }
      const TermNode &PatNode = Ctx.node(Pat);
      if (PatNode.Kind != TermKind::Op || PatNode.Op != Ctor)
        continue; // Other constructor: row cannot match this case.
      NewRow = Row;
      NewRow.erase(NewRow.begin() + Col);
      for (TermId Child : Ctx.children(Pat))
        NewRow.push_back(Child);
      NewRows.push_back(std::move(NewRow));
    }
    std::vector<SortId> NewSorts = Sorts;
    NewSorts.erase(NewSorts.begin() + Col);
    for (SortId ArgSort : CtorInfo.ArgSorts)
      NewSorts.push_back(ArgSort);

    auto Sub = findUncovered(std::move(NewRows), std::move(NewSorts));
    if (!Sub)
      return std::nullopt;
    // Reassemble: the expansion columns sit at the tail of the witness.
    size_t Arity = CtorInfo.arity();
    std::vector<TermId> CtorArgs(Sub->end() - Arity, Sub->end());
    Sub->resize(Sub->size() - Arity);
    TermId Wrapped = Ctx.makeOp(Ctor, CtorArgs);
    Sub->insert(Sub->begin() + Col, Wrapped);
    return Sub;
  };

  if (ColInfo.Kind == SortKind::User || ColInfo.Kind == SortKind::Bool) {
    std::vector<OpId> Ctors = Ctx.constructorsOf(ColSort);
    if (Ctors.empty()) {
      Report.Caveats.push_back("sort '" + std::string(Ctx.sortName(ColSort)) +
                               "' has no constructors; coverage over it "
                               "cannot be decided");
      return std::nullopt;
    }
    for (OpId Ctor : Ctors)
      if (auto Witness = specializeByConstructor(Ctor))
        return Witness;
    return std::nullopt;
  }

  // Literal-inhabited sorts (Atom, Int): case-split on each literal
  // appearing in the column, plus the "any other literal" case, which
  // only variable rows can cover.
  std::vector<TermId> Literals;
  for (const auto &Row : Rows) {
    TermId Pat = Row[Col];
    if (!isVar(Pat) &&
        std::find(Literals.begin(), Literals.end(), Pat) == Literals.end())
      Literals.push_back(Pat);
  }

  auto specializeByLiteral =
      [&](std::optional<TermId> Literal) -> std::optional<std::vector<TermId>> {
    std::vector<std::vector<TermId>> NewRows;
    for (const auto &Row : Rows) {
      TermId Pat = Row[Col];
      bool Matches = isVar(Pat) || (Literal && Pat == *Literal);
      if (!Matches)
        continue;
      std::vector<TermId> NewRow = Row;
      NewRow.erase(NewRow.begin() + Col);
      NewRows.push_back(std::move(NewRow));
    }
    std::vector<SortId> NewSorts = Sorts;
    NewSorts.erase(NewSorts.begin() + Col);
    auto Sub = findUncovered(std::move(NewRows), std::move(NewSorts));
    if (!Sub)
      return std::nullopt;
    Sub->insert(Sub->begin() + Col,
                Literal ? *Literal : wildcard(ColSort));
    return Sub;
  };

  for (TermId Literal : Literals)
    if (auto Witness = specializeByLiteral(Literal))
      return Witness;
  return specializeByLiteral(std::nullopt);
}

//===----------------------------------------------------------------------===//
// Pattern validation
//===----------------------------------------------------------------------===//

/// True when \p Pattern consists only of constructors, literals, and
/// variables — the shape the coverage analysis can case-split on.
static bool isConstructorPattern(const AlgebraContext &Ctx, TermId Pattern) {
  const TermNode &Node = Ctx.node(Pattern);
  switch (Node.Kind) {
  case TermKind::Var:
  case TermKind::Atom:
  case TermKind::Int:
    return true;
  case TermKind::Error:
    return false; // error never appears in a meaningful LHS.
  case TermKind::Op: {
    if (!Ctx.op(Node.Op).isConstructor())
      return false;
    for (TermId Child : Ctx.children(Pattern))
      if (!isConstructorPattern(Ctx, Child))
        return false;
    return true;
  }
  }
  return false;
}

/// True when some variable occurs twice in the row (non-linear pattern);
/// coverage analysis treats variables as independent wildcards, which
/// over-approximates what a non-linear row matches.
static bool isNonLinearRow(const AlgebraContext &Ctx,
                           const std::vector<TermId> &Row) {
  std::unordered_set<VarId> Seen;
  bool NonLinear = false;
  auto Walk = [&](auto &&Self, TermId Term) -> void {
    const TermNode &Node = Ctx.node(Term);
    if (Node.Kind == TermKind::Var) {
      if (!Seen.insert(Node.Var).second)
        NonLinear = true;
      return;
    }
    for (TermId Child : Ctx.children(Term))
      Self(Self, Child);
  };
  for (TermId Pattern : Row)
    Walk(Walk, Pattern);
  return NonLinear;
}

/// Pins the reported order: by operation id, then by the rendered
/// suggested left-hand side. The enumeration order that produced the
/// cases is an implementation detail; golden files diff against this.
static void sortMissingCases(const AlgebraContext &Ctx,
                             std::vector<MissingCase> &Missing) {
  std::stable_sort(Missing.begin(), Missing.end(),
                   [&Ctx](const MissingCase &A, const MissingCase &B) {
                     if (A.Op != B.Op)
                       return A.Op < B.Op;
                     return printTerm(Ctx, A.SuggestedLhs) <
                            printTerm(Ctx, B.SuggestedLhs);
                   });
}

//===----------------------------------------------------------------------===//
// Public interface
//===----------------------------------------------------------------------===//

std::string CompletenessReport::renderPrompt(const AlgebraContext &Ctx) const {
  if (SufficientlyComplete && Caveats.empty())
    return "The axiom set is sufficiently complete.\n";
  std::string Out;
  if (!Missing.empty()) {
    Out += "The axiom set is not sufficiently complete. Please supply "
           "axioms for:\n";
    for (const MissingCase &Case : Missing) {
      Out += "  ";
      Out += printTerm(Ctx, Case.SuggestedLhs);
      Out += " = ?\n";
    }
  }
  for (const std::string &Caveat : Caveats) {
    Out += "note: ";
    Out += Caveat;
    Out += '\n';
  }
  return Out;
}

CompletenessReport algspec::checkCompleteness(AlgebraContext &Ctx,
                                              const Spec &S) {
  CompletenessReport Report;
  CoverageAnalysis Analysis(Ctx, Report);

  for (OpId Op : S.definedOps(Ctx)) {
    const OpInfo &Info = Ctx.op(Op);

    // Gather this operation's axiom rows.
    std::vector<std::vector<TermId>> Rows;
    for (const Axiom &Ax : S.axioms()) {
      const TermNode &LhsNode = Ctx.node(Ax.Lhs);
      if (LhsNode.Kind != TermKind::Op || LhsNode.Op != Op)
        continue;
      auto Args = Ctx.children(Ax.Lhs);
      std::vector<TermId> Row(Args.begin(), Args.end());

      bool Usable = true;
      for (TermId Pattern : Row)
        if (!isConstructorPattern(Ctx, Pattern)) {
          Report.Caveats.push_back(
              "axiom " + std::to_string(Ax.Number) + " of '" + S.name() +
              "' has a non-constructor pattern in its left-hand side; it "
              "is ignored by the static coverage analysis");
          Usable = false;
          break;
        }
      if (Usable && isNonLinearRow(Ctx, Row))
        Report.Caveats.push_back(
            "axiom " + std::to_string(Ax.Number) + " of '" + S.name() +
            "' repeats a variable in its left-hand side; coverage is "
            "approximated as if the occurrences were independent");
      if (Usable)
        Rows.push_back(std::move(Row));
    }

    auto Witness =
        Analysis.findUncovered(std::move(Rows), Info.ArgSorts);
    if (!Witness)
      continue;
    Report.SufficientlyComplete = false;
    Report.Missing.push_back(
        MissingCase{Op, Ctx.makeOp(Op, *Witness)});
  }
  sortMissingCases(Ctx, Report.Missing);
  return Report;
}

CompletenessReport algspec::checkCompletenessDynamic(
    AlgebraContext &Ctx, const Spec &S,
    const std::vector<const Spec *> &AllSpecs, unsigned MaxDepth,
    EnumeratorOptions EnumOptions, ParallelOptions Par, EngineOptions Eng) {
  CompletenessReport Report;

  DiagnosticEngine Diags;
  RewriteSystem System = RewriteSystem::build(Ctx, AllSpecs, Diags);
  if (Diags.hasErrors()) {
    Report.Caveats.push_back("some axioms could not be oriented into "
                             "rules; the dynamic check skipped them");
  }
  RewriteEngine Engine(Ctx, System, Eng);
  TermEnumerator Enumerator(Ctx, std::move(EnumOptions));
  std::unique_ptr<ParallelDriver<ReplicaWorker>> Driver =
      makeReplicaDriver(Par, Ctx, AllSpecs, Eng);

  for (OpId Op : S.definedOps(Ctx)) {
    const OpInfo &Info = Ctx.op(Op);

    // Cartesian product of enumerated argument values.
    std::vector<const std::vector<TermId> *> ArgSets;
    bool Empty = false;
    for (SortId ArgSort : Info.ArgSorts) {
      const std::vector<TermId> &Set =
          Enumerator.enumerate(ArgSort, MaxDepth);
      if (Enumerator.wasTruncated(ArgSort, MaxDepth))
        Report.Caveats.push_back(
            "enumeration of sort '" + std::string(Ctx.sortName(ArgSort)) +
            "' was truncated; the dynamic check is not exhaustive at "
            "this depth");
      if (Set.empty())
        Empty = true;
      ArgSets.push_back(&Set);
    }
    if (Empty || Info.arity() == 0) {
      if (Info.arity() == 0)
        Report.Caveats.push_back("nullary defined operation '" +
                                 std::string(Ctx.opName(Op)) +
                                 "' has no axiom cases to enumerate");
      continue;
    }

    // The odometer space flattened: argument 0 is the least significant
    // digit, matching the serial loop's increment order.
    size_t Total = 1;
    bool Oversized = false;
    for (const std::vector<TermId> *Set : ArgSets) {
      if (Total > std::numeric_limits<size_t>::max() / Set->size()) {
        Oversized = true;
        break;
      }
      Total *= Set->size();
    }
    auto mainArgsFor = [&](size_t Flat, std::vector<TermId> &Args) {
      for (size_t I = 0; I != ArgSets.size(); ++I) {
        Args[I] = (*ArgSets[I])[Flat % ArgSets[I]->size()];
        Flat /= ArgSets[I]->size();
      }
    };
    auto checkOnMain = [&](TermId Application) {
      Result<TermId> Normal = Engine.normalize(Application);
      if (!Normal) {
        Report.Caveats.push_back("normalization of " +
                                 printTerm(Ctx, Application) +
                                 " failed: " + Normal.error().message());
      } else if (Engine.isStuck(*Normal)) {
        Report.SufficientlyComplete = false;
        Report.Missing.emplace_back(Op, Application);
      }
    };

    if (Driver && !Oversized && Total <= Par.MaxFlatSpace) {
      // Workers classify their shard of the space; anything that is not
      // clean (stuck, or normalization failed, or no replica engine) is
      // re-run on the main engine during the in-order merge below, which
      // regenerates findings with main-context terms and exact serial
      // messages. Findings are rare, so the re-runs are cheap.
      std::vector<uint8_t> Flagged = Driver->map<uint8_t>(
          Total, [&](ReplicaWorker &W, size_t Flat) -> uint8_t {
            if (!W.Engine)
              return 1;
            OpId WorkerOp = W.Rep->mapOp(Op);
            if (!WorkerOp.isValid())
              return 1;
            std::vector<TermId> Args(ArgSets.size());
            mainArgsFor(Flat, Args);
            for (TermId &Arg : Args) {
              Arg = W.Rep->mapTerm(Arg);
              if (!Arg.isValid())
                return 1;
            }
            TermId Application = W.Rep->context().makeOp(WorkerOp, Args);
            Result<TermId> Normal = W.Engine->normalize(Application);
            if (!Normal)
              return 1;
            return W.Engine->isStuck(*Normal) ? 1 : 0;
          });
      std::vector<TermId> Args(ArgSets.size());
      for (size_t Flat = 0; Flat != Total; ++Flat) {
        if (!Flagged[Flat])
          continue;
        mainArgsFor(Flat, Args);
        checkOnMain(Ctx.makeOp(Op, Args));
      }
      continue;
    }

    // Serial sweep; the odometer needs no flat index, so it also covers
    // the (absurd) case of a space too large for size_t.
    std::vector<size_t> Index(ArgSets.size(), 0);
    std::vector<TermId> Args(ArgSets.size());
    while (true) {
      for (size_t I = 0; I != ArgSets.size(); ++I)
        Args[I] = (*ArgSets[I])[Index[I]];
      checkOnMain(Ctx.makeOp(Op, Args));

      size_t Pos = 0;
      while (Pos != Index.size()) {
        if (++Index[Pos] < ArgSets[Pos]->size())
          break;
        Index[Pos] = 0;
        ++Pos;
      }
      if (Pos == Index.size())
        break;
    }
  }
  Report.Engine = Engine.stats();
  if (Driver)
    for (ReplicaWorker *W : Driver->states())
      if (W->Engine)
        Report.Engine += W->Engine->stats();
  sortMissingCases(Ctx, Report.Missing);
  return Report;
}
