//===----------------------------------------------------------------------===//
//
// Part of AlgSpec. MIT license.
//
//===----------------------------------------------------------------------===//

#include "check/Lint.h"

#include "ast/AlgebraContext.h"
#include "ast/Spec.h"
#include "ast/TermPrinter.h"
#include "check/Convergence.h"
#include "check/ErrorFlow.h"
#include "check/Exhaustiveness.h"
#include "rewrite/Matcher.h"
#include "rewrite/Substitution.h"
#include "support/SourceMgr.h"

#include <algorithm>
#include <unordered_set>

using namespace algspec;

//===----------------------------------------------------------------------===//
// Term walking helpers
//===----------------------------------------------------------------------===//

namespace {

/// Collects every variable occurring in \p Term into \p Vars.
void collectVars(const AlgebraContext &Ctx, TermId Term,
                 std::unordered_set<VarId> &Vars) {
  const TermNode &Node = Ctx.node(Term);
  if (Node.Kind == TermKind::Var) {
    Vars.insert(Node.Var);
    return;
  }
  for (TermId Child : Ctx.children(Term))
    collectVars(Ctx, Child, Vars);
}

/// Collects every operation occurring in \p Term into \p Ops.
void collectOps(const AlgebraContext &Ctx, TermId Term,
                std::unordered_set<OpId> &Ops) {
  const TermNode &Node = Ctx.node(Term);
  if (Node.Kind == TermKind::Op)
    Ops.insert(Node.Op);
  for (TermId Child : Ctx.children(Term))
    collectOps(Ctx, Child, Ops);
}

std::string axiomLabel(const Axiom &Ax) {
  return "axiom (" + std::to_string(Ax.Number) + ")";
}

//===----------------------------------------------------------------------===//
// Rule: unused-variable
//===----------------------------------------------------------------------===//

/// A variable declared in the vars section that no axiom of the spec
/// mentions. Usually a leftover from an edit; the paper's assistant would
/// prompt for the axiom the author meant to write with it.
class UnusedVariablePass : public LintPass {
public:
  std::string_view name() const override { return "unused-variable"; }
  std::string_view description() const override {
    return "axiom variables declared but mentioned by no axiom";
  }

  void run(LintContext &LC) override {
    AlgebraContext &Ctx = LC.context();
    std::unordered_set<VarId> Used;
    for (const Axiom &Ax : LC.spec().axioms()) {
      collectVars(Ctx, Ax.Lhs, Used);
      collectVars(Ctx, Ax.Rhs, Used);
    }
    for (VarId Var : LC.spec().variables()) {
      if (Used.count(Var))
        continue;
      const VarInfo &Info = Ctx.var(Var);
      std::string Name(Ctx.str(Info.Name));
      LC.report(name(), DiagKind::Warning, Info.Loc,
                "variable '" + Name + "' of sort '" +
                    std::string(Ctx.sortName(Info.Sort)) +
                    "' is declared but appears in no axiom",
                "please remove '" + Name +
                    "' from the vars section or supply an axiom "
                    "mentioning it");
    }
  }
};

//===----------------------------------------------------------------------===//
// Rule: unbound-rhs-variable
//===----------------------------------------------------------------------===//

/// A right-hand-side variable the left-hand side does not bind. The axiom
/// states a relation but cannot run as a rewrite rule: the engine would
/// have to invent a value. RewriteSystem::build rejects such axioms at
/// execution time; this pass reports them at check time, with a repair.
class UnboundRhsVariablePass : public LintPass {
public:
  std::string_view name() const override { return "unbound-rhs-variable"; }
  std::string_view description() const override {
    return "right-hand-side variables the left-hand side does not bind";
  }

  void run(LintContext &LC) override {
    AlgebraContext &Ctx = LC.context();
    for (const Axiom &Ax : LC.spec().axioms()) {
      std::unordered_set<VarId> LhsVars, RhsVars;
      collectVars(Ctx, Ax.Lhs, LhsVars);
      collectVars(Ctx, Ax.Rhs, RhsVars);
      for (VarId Var : RhsVars) {
        if (LhsVars.count(Var))
          continue;
        std::string Name(Ctx.str(Ctx.var(Var).Name));
        LC.report(name(), DiagKind::Error, Ax.Loc,
                  axiomLabel(Ax) + ": variable '" + Name +
                      "' occurs on the right-hand side but is not bound "
                      "by the left-hand side; the axiom cannot run as a "
                      "rewrite rule",
                  "please make '" + Name +
                      "' appear in the left-hand side, or replace it "
                      "with a ground term");
      }
    }
  }
};

//===----------------------------------------------------------------------===//
// Rule: non-left-linear
//===----------------------------------------------------------------------===//

/// A left-hand side that repeats a variable. Matching requires the two
/// occurrences to be *identical* terms — stronger than the semantic
/// equality SAME decides — and the static completeness analysis
/// over-approximates what such a row covers.
class NonLeftLinearPass : public LintPass {
public:
  std::string_view name() const override { return "non-left-linear"; }
  std::string_view description() const override {
    return "left-hand sides repeating a variable";
  }

  void run(LintContext &LC) override {
    AlgebraContext &Ctx = LC.context();
    for (const Axiom &Ax : LC.spec().axioms()) {
      std::unordered_set<VarId> Seen;
      VarId Repeated;
      auto Walk = [&](auto &&Self, TermId Term) -> void {
        const TermNode &Node = Ctx.node(Term);
        if (Node.Kind == TermKind::Var) {
          if (!Seen.insert(Node.Var).second && !Repeated.isValid())
            Repeated = Node.Var;
          return;
        }
        for (TermId Child : Ctx.children(Term))
          Self(Self, Child);
      };
      Walk(Walk, Ax.Lhs);
      if (!Repeated.isValid())
        continue;
      std::string Name(Ctx.str(Ctx.var(Repeated).Name));
      LC.report(name(), DiagKind::Warning, Ax.Loc,
                axiomLabel(Ax) + ": left-hand side repeats variable '" +
                    Name +
                    "'; the occurrences only match syntactically equal "
                    "terms and coverage analysis is approximate",
                "please introduce a fresh variable and compare with "
                "SAME(" +
                    Name + ", ...) on the right-hand side");
    }
  }
};

//===----------------------------------------------------------------------===//
// Rule: subsumed-axiom
//===----------------------------------------------------------------------===//

/// An axiom whose left-hand side is an instance of an *earlier* axiom's
/// left-hand side. The rewrite engine tries rules in declaration order,
/// so the later axiom can never apply — it is dead, and if its right-hand
/// side disagrees with the earlier one it silently states an unreachable
/// contradiction.
class SubsumedAxiomPass : public LintPass {
public:
  std::string_view name() const override { return "subsumed-axiom"; }
  std::string_view description() const override {
    return "axioms shadowed by an earlier, more general axiom";
  }

  void run(LintContext &LC) override {
    AlgebraContext &Ctx = LC.context();
    const std::vector<Axiom> &Axioms = LC.spec().axioms();
    for (size_t J = 1; J < Axioms.size(); ++J) {
      const TermNode &JNode = Ctx.node(Axioms[J].Lhs);
      if (JNode.Kind != TermKind::Op)
        continue;
      for (size_t I = 0; I < J; ++I) {
        const TermNode &INode = Ctx.node(Axioms[I].Lhs);
        if (INode.Kind != TermKind::Op || INode.Op != JNode.Op)
          continue;
        Substitution Subst;
        if (!matchTerm(Ctx, Axioms[I].Lhs, Axioms[J].Lhs, Subst))
          continue;
        LC.report(
            name(), DiagKind::Warning, Axioms[J].Loc,
            axiomLabel(Axioms[J]) + " is subsumed by " +
                axiomLabel(Axioms[I]) + ": every term it matches, " +
                printTerm(Ctx, Axioms[I].Lhs) +
                " already rewrites; the axiom can never apply",
            "please delete " + axiomLabel(Axioms[J]) +
                " or make its left-hand side more specific than " +
                printTerm(Ctx, Axioms[I].Lhs));
        break; // One subsumer per axiom is enough.
      }
    }
  }
};

//===----------------------------------------------------------------------===//
// Rule: non-constructor-lhs
//===----------------------------------------------------------------------===//

/// Constructor-discipline violations in a left-hand side: the root must
/// be a defined operation (constructors are canonical values; builtins
/// are native), and every position below the root must be a constructor
/// pattern — a defined or builtin operation there makes the axiom
/// invisible to the static completeness analysis and dependent on
/// evaluation order.
class NonConstructorLhsPass : public LintPass {
public:
  std::string_view name() const override { return "non-constructor-lhs"; }
  std::string_view description() const override {
    return "left-hand sides violating constructor discipline";
  }

  void run(LintContext &LC) override {
    AlgebraContext &Ctx = LC.context();
    for (const Axiom &Ax : LC.spec().axioms()) {
      const TermNode &Root = Ctx.node(Ax.Lhs);
      if (Root.Kind != TermKind::Op) {
        LC.report(name(), DiagKind::Error, Ax.Loc,
                  axiomLabel(Ax) + ": left-hand side must be an "
                                   "operation application, not a variable "
                                   "or literal",
                  "please write the left-hand side as a defined "
                  "operation applied to constructor patterns");
        continue;
      }
      const OpInfo &RootInfo = Ctx.op(Root.Op);
      if (RootInfo.isConstructor())
        LC.report(name(), DiagKind::Warning, Ax.Loc,
                  axiomLabel(Ax) + ": left-hand side is headed by "
                                   "constructor '" +
                      std::string(Ctx.opName(Root.Op)) +
                      "'; rewriting canonical values changes the algebra "
                      "itself",
                  "please orient the axiom so a defined operation is at "
                  "the root");
      else if (RootInfo.isBuiltin())
        LC.report(name(), DiagKind::Error, Ax.Loc,
                  axiomLabel(Ax) + ": left-hand side is headed by "
                                   "builtin '" +
                      std::string(Ctx.opName(Root.Op)) +
                      "', which the engine evaluates natively; the axiom "
                      "will be rejected",
                  "please define a new operation instead of re-axiomatizing "
                  "a builtin");
      for (TermId Arg : Ctx.children(Ax.Lhs))
        checkPattern(LC, Ax, Arg);
    }
  }

private:
  void checkPattern(LintContext &LC, const Axiom &Ax, TermId Pattern) {
    AlgebraContext &Ctx = LC.context();
    const TermNode &Node = Ctx.node(Pattern);
    if (Node.Kind == TermKind::Op && !Ctx.op(Node.Op).isConstructor()) {
      LC.report(name(), DiagKind::Warning, Ax.Loc,
                axiomLabel(Ax) + ": left-hand side applies "
                                 "non-constructor operation '" +
                    std::string(Ctx.opName(Node.Op)) +
                    "' below the root; the static checks ignore this "
                    "axiom and matching depends on evaluation order",
                "please case-split on the constructors of sort '" +
                    std::string(Ctx.sortName(Node.Sort)) +
                    "' instead of matching on '" +
                    std::string(Ctx.opName(Node.Op)) + "'");
      return; // One finding per offending subtree.
    }
    for (TermId Child : Ctx.children(Pattern))
      checkPattern(LC, Ax, Child);
  }
};

//===----------------------------------------------------------------------===//
// Rule: unused-declaration
//===----------------------------------------------------------------------===//

/// Sorts and operations declared by the spec but never used anywhere in
/// the workspace: a sort no operation signature mentions, or an operation
/// no axiom applies. Both usually indicate an incomplete presentation.
class UnusedDeclarationPass : public LintPass {
public:
  std::string_view name() const override { return "unused-declaration"; }
  std::string_view description() const override {
    return "sorts and operations declared but never used";
  }

  void run(LintContext &LC) override {
    AlgebraContext &Ctx = LC.context();

    // Usage is workspace-wide: sibling specs legitimately use this
    // spec's sorts and operations (Stack of Arrays).
    std::unordered_set<OpId> UsedOps;
    std::unordered_set<SortId> UsedSorts;
    for (const Spec *Other : LC.allSpecs()) {
      for (const Axiom &Ax : Other->axioms()) {
        collectOps(Ctx, Ax.Lhs, UsedOps);
        collectOps(Ctx, Ax.Rhs, UsedOps);
      }
      for (OpId Op : Other->operations()) {
        const OpInfo &Info = Ctx.op(Op);
        UsedSorts.insert(Info.ResultSort);
        UsedSorts.insert(Info.ArgSorts.begin(), Info.ArgSorts.end());
      }
    }

    auto checkSort = [&](SortId Sort, std::string_view How) {
      if (UsedSorts.count(Sort))
        return;
      const SortInfo &Info = Ctx.sort(Sort);
      std::string Name(Ctx.str(Info.Name));
      LC.report(name(), DiagKind::Warning, Info.Loc,
                "sort '" + Name + "' is " + std::string(How) +
                    " but no operation signature mentions it",
                "please declare operations over '" + Name +
                    "' or remove the declaration");
    };
    for (SortId Sort : LC.spec().definedSorts())
      checkSort(Sort, "declared");
    for (SortId Sort : LC.spec().usedSorts())
      checkSort(Sort, "imported with 'uses'");

    for (OpId Op : LC.spec().operations()) {
      if (UsedOps.count(Op))
        continue;
      const OpInfo &Info = Ctx.op(Op);
      std::string Name(Ctx.str(Info.Name));
      LC.report(name(), DiagKind::Warning, Info.Loc,
                "operation '" + Name + "' is declared but no axiom "
                                       "mentions it",
                Info.isConstructor()
                    ? "please supply axioms relating the observers to "
                      "constructor '" +
                          Name + "'"
                    : "please supply axioms of the form " + Name +
                          "(...) = ... defining it over the constructors "
                          "of its arguments");
    }
  }
};

} // namespace

//===----------------------------------------------------------------------===//
// Framework
//===----------------------------------------------------------------------===//

LintPass::~LintPass() = default;

void LintContext::report(std::string_view Rule, DiagKind Kind, SourceLoc Loc,
                         std::string Message, std::string FixIt) {
  Report.Findings.emplace_back(std::string(Rule), Kind, S.name(), Loc,
                                std::move(Message), std::move(FixIt));
}

unsigned LintReport::errorCount() const {
  return static_cast<unsigned>(
      std::count_if(Findings.begin(), Findings.end(), [](const auto &F) {
        return F.Kind == DiagKind::Error;
      }));
}

unsigned LintReport::warningCount() const {
  return static_cast<unsigned>(
      std::count_if(Findings.begin(), Findings.end(), [](const auto &F) {
        return F.Kind == DiagKind::Warning;
      }));
}

std::string algspec::renderFinding(const LintFinding &F,
                                   const SourceMgr *SM) {
  std::string Out;
  auto prefix = [&] {
    if (SM && !SM->name().empty()) {
      Out += SM->name();
      Out += ':';
    }
    if (F.Loc.isValid()) {
      Out += std::to_string(F.Loc.line());
      Out += ':';
      Out += std::to_string(F.Loc.column());
      Out += ": ";
    }
  };
  prefix();
  Out += F.Kind == DiagKind::Error ? "error: " : "warning: ";
  Out += F.Message;
  Out += " [";
  Out += F.Rule;
  Out += "]\n";
  if (SM && F.Loc.isValid()) {
    std::string_view Line = SM->lineText(F.Loc.line());
    if (!Line.empty()) {
      Out.append(Line);
      Out += '\n';
      for (uint32_t I = 1; I < F.Loc.column() && I <= Line.size(); ++I)
        Out += Line[I - 1] == '\t' ? '\t' : ' ';
      Out += "^\n";
    }
  }
  if (!F.FixIt.empty()) {
    prefix();
    Out += "note: ";
    Out += F.FixIt;
    Out += '\n';
  }
  return Out;
}

std::string LintReport::render(const SourceMgr *SM) const {
  std::string Out;
  for (const LintFinding &F : Findings)
    Out += renderFinding(F, SM);
  return Out;
}

LintReport Linter::run(AlgebraContext &Ctx,
                       const std::vector<const Spec *> &Specs) const {
  LintReport Report;
  for (const Spec *S : Specs) {
    size_t SpecBegin = Report.Findings.size();
    for (const std::unique_ptr<LintPass> &Pass : Passes) {
      LintContext LC(Ctx, *S, Specs, Report);
      Pass->run(LC);
    }
    // Within one spec, order findings by source position so the output
    // reads top to bottom regardless of which pass found what.
    std::stable_sort(Report.Findings.begin() + SpecBegin,
                     Report.Findings.end(),
                     [](const LintFinding &A, const LintFinding &B) {
                       if (A.Loc.line() != B.Loc.line())
                         return A.Loc.line() < B.Loc.line();
                       return A.Loc.column() < B.Loc.column();
                     });
  }
  return Report;
}

Linter Linter::standard() {
  Linter L;
  L.addPass(std::make_unique<UnusedVariablePass>());
  L.addPass(std::make_unique<UnboundRhsVariablePass>());
  L.addPass(std::make_unique<NonLeftLinearPass>());
  L.addPass(std::make_unique<SubsumedAxiomPass>());
  L.addPass(std::make_unique<NonConstructorLhsPass>());
  L.addPass(std::make_unique<UnusedDeclarationPass>());
  L.addPass(makeErrorSwallowedPass());
  L.addPass(makeAlwaysErrorOpPass());
  L.addPass(makeRedundantErrorAxiomPass());
  L.addPass(makeNonLeftLinearLhsPass());
  L.addPass(makeUnjoinableCriticalPairPass());
  L.addPass(makeUnreachableAxiomPass());
  L.addPass(makeNonExhaustiveOpPass());
  return L;
}

LintReport algspec::lintSpecs(AlgebraContext &Ctx,
                              const std::vector<const Spec *> &Specs) {
  return Linter::standard().run(Ctx, Specs);
}
