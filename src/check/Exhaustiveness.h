//===----------------------------------------------------------------------===//
//
// Part of AlgSpec. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Static sufficient-completeness certification: pattern-matrix
/// exhaustiveness per defined operation, composed with termination and a
/// guard-decidability analysis into a per-spec certificate the dynamic
/// sweep (check/Completeness.h) can skip under.
///
/// The dynamic completeness checker is a bounded refutation procedure —
/// it can only ever say "no stuck term found up to depth d". This module
/// supplies the complementary proof. Per defined operation, the axiom
/// left-hand sides form a pattern matrix over the constructor signatures
/// of the argument sorts (rewrite/PatternMatrix.h); a matrix that covers
/// every constructor tuple certifies the operation. A spec certifies
/// `complete` when
///
///  - every axiom oriented into a rule (none skipped),
///  - every defined operation in its rule closure is covered by linear
///    constructor rows (non-linear rows are dropped before trusting a
///    "covered" verdict — a sound under-approximation, never an unsound
///    "complete"),
///  - termination is proved for every contributing spec (so innermost
///    normalization reaches the normal form the coverage argument is
///    about), and
///  - every guard decides: no rule's right-hand side can leave an
///    undecided SAME over a non-freely-generated sort in a normal form
///    (checked syntactically, then — for flagged rules of closures whose
///    rules are pairwise non-overlapping — by a symbolic probe that
///    normalizes the right-hand side and case-splits surviving
///    if-then-else guards into true/false/error branches, the same
///    refutation discipline the convergence certifier uses).
///
/// Verdicts form the lattice `complete ⊑ unknown`; an `unknown` names
/// its obstruction honestly (non-free sort, unoriented axiom, missing
/// termination proof, undecidable guard, or an uncovered case). Two
/// payload kinds accompany the verdicts: a minimal missing-pattern
/// witness (constructor skeleton with wildcards) when a matrix is
/// non-exhaustive and the witness is trustworthy, and a usefulness
/// report marking axioms shadowed by earlier rows — dead code under the
/// engine's first-matching-rule-wins semantics.
///
/// The analysis is purely serial and deterministic: reports are
/// byte-identical across runs, build types, and job counts, so the
/// per-operation row lists serve as replayable certificates in the CLI's
/// JSON output.
///
//===----------------------------------------------------------------------===//

#ifndef ALGSPEC_CHECK_EXHAUSTIVENESS_H
#define ALGSPEC_CHECK_EXHAUSTIVENESS_H

#include "ast/Ids.h"
#include "check/Termination.h"
#include "rewrite/Engine.h"
#include "support/SourceLoc.h"

#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace algspec {

class AlgebraContext;
class LintPass;
class Spec;

/// The verdict lattice: complete ⊑ unknown.
enum class CoverageVerdict : uint8_t {
  /// Every constructor tuple is covered (per operation), or every
  /// certification obligation holds (per spec).
  Complete,
  /// No proof; the obstruction names why.
  Unknown,
};

std::string_view coverageVerdictName(CoverageVerdict V);

/// Matrix verdict for one defined operation.
struct OpExhaustiveness {
  /// The spec declaring the operation (rules may come from others).
  std::string SpecName;
  OpId Op;
  CoverageVerdict Verdict = CoverageVerdict::Unknown;
  /// For Unknown: the named obstruction (uncovered case, non-free sort,
  /// non-constructor pattern, constructor-less sort).
  std::string Obstruction;
  /// Minimal missing-pattern witness, wrapped as a full left-hand side
  /// (constructor skeleton with wildcard variables). Valid only when
  /// the matrix is non-exhaustive *and* the claim is trustworthy (all
  /// rows usable, argument sorts freely generated).
  TermId Witness;
  /// Rules oriented for this operation (across all loaded specs).
  unsigned Rules = 0;
  /// Rows entering the trusted (linear, constructor-pattern) matrix.
  unsigned MatrixRows = 0;
  /// One trusted matrix row: the certificate is replayable by re-running
  /// the exhaustiveness algorithm over exactly these left-hand sides.
  struct MatrixRow {
    std::string SpecName;
    unsigned AxiomNumber = 0;
    TermId Lhs;
  };
  std::vector<MatrixRow> RowsUsed;
};

/// An axiom whose left-hand side is entirely covered by earlier axioms
/// of the same operation: under first-matching-rule-wins it can never
/// apply to constructor-ground arguments.
struct ShadowedAxiom {
  std::string SpecName;
  unsigned AxiomNumber = 0;
  SourceLoc Loc;
  OpId Op;
  /// The earlier axioms overlapping it ("axiom N of 'S'" each).
  std::vector<std::string> ShadowedBy;
};

/// Per-spec certificate verdict with its supporting facts.
struct SpecExhaustiveness {
  std::string SpecName;
  CoverageVerdict Verdict = CoverageVerdict::Unknown;
  /// For Unknown: the first obstruction, in precedence order (uncovered
  /// operation, then termination, then guards).
  std::string Obstruction;
  bool TerminationProved = false;
  /// True when no rule in the closure can leave an undecided SAME over
  /// a non-free sort in a normal form.
  bool GuardsDecided = true;
  /// Defined operations in this spec's rule closure.
  unsigned ClosureOps = 0;
  /// How many of them certify Complete.
  unsigned OpsComplete = 0;
};

/// Outcome of a static exhaustiveness certification over a workspace.
struct ExhaustivenessReport {
  /// Verdict for the whole workspace (meet over the per-spec verdicts).
  CoverageVerdict Overall = CoverageVerdict::Complete;
  /// For an Unknown overall verdict: the first obstruction.
  std::string Obstruction;
  std::vector<SpecExhaustiveness> PerSpec;
  /// Every defined operation of every spec, in declaration order.
  std::vector<OpExhaustiveness> PerOp;
  /// Dead axioms, in rule order per operation.
  std::vector<ShadowedAxiom> Shadowed;
  /// The termination proof the verdicts composed with.
  TerminationReport Termination;
  std::vector<std::string> Caveats;

  const SpecExhaustiveness *specVerdict(std::string_view SpecName) const;
  const OpExhaustiveness *opVerdict(OpId Op) const;

  /// True when \p SpecName certifies Complete — the license for the
  /// dynamic completeness checker to skip its ground sweep.
  bool coversSpec(std::string_view SpecName) const {
    const SpecExhaustiveness *SE = specVerdict(SpecName);
    return SE && SE->Verdict == CoverageVerdict::Complete;
  }

  /// Renders one verdict line per spec, then witnesses, dead axioms,
  /// and caveats.
  std::string render(const AlgebraContext &Ctx) const;
};

/// Tunables for certification.
struct ExhaustivenessOptions {
  /// Bound on nested guard case splits per probed right-hand side.
  unsigned MaxCaseSplits = 8;
  /// Engine configuration for the guard probe (compiled vs interpreted);
  /// fuel is clamped to a small probe budget internally so a divergent
  /// rule set cannot stall the certifier.
  EngineOptions Engine;
};

/// Certifies sufficient completeness of \p Specs and derives per-spec
/// verdicts over each spec's rule closure. Purely serial and
/// deterministic: reports are byte-identical across runs, build types,
/// and job counts.
ExhaustivenessReport
certifyExhaustiveness(AlgebraContext &Ctx,
                      const std::vector<const Spec *> &Specs,
                      const ExhaustivenessOptions &Options =
                          ExhaustivenessOptions());

/// Lint pass `unreachable-axiom`: warns on each axiom the usefulness
/// analysis proves shadowed by the axioms above it, with a fix-it
/// suggesting deletion or reordering.
std::unique_ptr<LintPass> makeUnreachableAxiomPass();

/// Lint pass `non-exhaustive-op`: warns, at the operation declaration,
/// on each defined operation with a trustworthy missing-pattern witness,
/// pointing at the exact left-hand side to supply.
std::unique_ptr<LintPass> makeNonExhaustiveOpPass();

} // namespace algspec

#endif // ALGSPEC_CHECK_EXHAUSTIVENESS_H
