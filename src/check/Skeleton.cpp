//===----------------------------------------------------------------------===//
//
// Part of AlgSpec. MIT license.
//
//===----------------------------------------------------------------------===//

#include "check/Skeleton.h"

#include "ast/AlgebraContext.h"
#include "ast/Spec.h"
#include "ast/TermPrinter.h"

#include <cctype>
#include <unordered_map>

using namespace algspec;

std::string SkeletonReport::render(const AlgebraContext &Ctx) const {
  std::string Out;
  OpId Last;
  for (const SkeletonCase &Case : Cases) {
    if (Case.Op != Last) {
      Out += "-- axioms for ";
      Out += Ctx.opName(Case.Op);
      Out += '\n';
      Last = Case.Op;
    }
    Out += "   ";
    Out += printTerm(Ctx, Case.Lhs);
    Out += " = ?\n";
  }
  for (OpId Op : NoCaseAnalysis) {
    Out += "-- ";
    Out += Ctx.opName(Op);
    Out += " admits no constructor case analysis; define it directly\n";
  }
  return Out;
}

namespace {

/// Names fresh variables after their sort, numbering repeats: queue,
/// item, item1, ...
class FreshVars {
public:
  explicit FreshVars(AlgebraContext &Ctx) : Ctx(Ctx) {}

  TermId fresh(SortId Sort) {
    std::string Base(Ctx.sortName(Sort));
    for (char &C : Base)
      C = static_cast<char>(std::tolower(static_cast<unsigned char>(C)));
    unsigned N = Counters[Sort]++;
    if (N > 0)
      Base += std::to_string(N);
    return Ctx.makeVar(Ctx.addVar(Base, Sort));
  }

  void resetPerCase() { Counters.clear(); }

private:
  AlgebraContext &Ctx;
  std::unordered_map<SortId, unsigned> Counters;
};

} // namespace

SkeletonReport algspec::generateSkeletons(AlgebraContext &Ctx,
                                          const Spec &S) {
  SkeletonReport Report;
  FreshVars Fresh(Ctx);

  for (OpId Op : S.definedOps(Ctx)) {
    const OpInfo &Info = Ctx.op(Op);

    // Pick the case-analysis argument: the first whose sort has
    // constructors.
    int CaseArg = -1;
    std::vector<OpId> Ctors;
    for (unsigned I = 0; I != Info.arity(); ++I) {
      Ctors = Ctx.constructorsOf(Info.ArgSorts[I]);
      if (!Ctors.empty()) {
        CaseArg = static_cast<int>(I);
        break;
      }
    }

    if (CaseArg < 0) {
      Fresh.resetPerCase();
      std::vector<TermId> Args;
      for (SortId ArgSort : Info.ArgSorts)
        Args.push_back(Fresh.fresh(ArgSort));
      Report.Cases.emplace_back(Op, Ctx.makeOp(Op, Args));
      Report.NoCaseAnalysis.push_back(Op);
      continue;
    }

    for (OpId Ctor : Ctors) {
      Fresh.resetPerCase();
      const OpInfo &CtorInfo = Ctx.op(Ctor);
      std::vector<TermId> Args;
      for (unsigned I = 0; I != Info.arity(); ++I) {
        if (static_cast<int>(I) != CaseArg) {
          Args.push_back(Fresh.fresh(Info.ArgSorts[I]));
          continue;
        }
        std::vector<TermId> CtorArgs;
        for (SortId ArgSort : CtorInfo.ArgSorts)
          CtorArgs.push_back(Fresh.fresh(ArgSort));
        Args.push_back(Ctx.makeOp(Ctor, CtorArgs));
      }
      Report.Cases.emplace_back(Op, Ctx.makeOp(Op, Args));
    }
  }
  return Report;
}
