//===----------------------------------------------------------------------===//
//
// Part of AlgSpec. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Axiom-skeleton generation: the paper's "heuristics to aid the user in
/// the initial presentation of an axiomatic specification" (section 3).
///
/// Given only the *syntactic* specification (operations plus the
/// constructor set), the generator produces, for every defined
/// operation, the complete list of left-hand sides the user should write
/// axioms for — one per constructor of the operation's case-analysis
/// argument, with fresh variables everywhere else:
///
///   FRONT(NEW) = ?
///   FRONT(ADD(queue, item)) = ?
///   REMOVE(NEW) = ?
///   REMOVE(ADD(queue, item)) = ?
///   ...
///
/// Writing one axiom per skeleton line yields a sufficiently complete
/// set by construction (the completeness checker will agree).
///
//===----------------------------------------------------------------------===//

#ifndef ALGSPEC_CHECK_SKELETON_H
#define ALGSPEC_CHECK_SKELETON_H

#include "ast/Ids.h"

#include <string>
#include <vector>

namespace algspec {

class AlgebraContext;
class Spec;

/// One suggested left-hand side.
struct SkeletonCase {
  OpId Op;
  TermId Lhs; ///< The suggested pattern, over fresh variables.
};

/// The generated schema for a whole spec.
struct SkeletonReport {
  std::vector<SkeletonCase> Cases;
  /// Operations for which no case analysis was possible (no argument of
  /// a constructor-bearing sort): they get a single all-variable case.
  std::vector<OpId> NoCaseAnalysis;

  std::string render(const AlgebraContext &Ctx) const;
};

/// Generates the axiom skeletons for every defined operation of \p S.
/// The case-analysis argument is the first argument whose sort has
/// constructors (for the paper's types: the first argument of the type
/// of interest), matching Guttag's heuristic of writing one axiom per
/// (defined op, constructor) pair.
SkeletonReport generateSkeletons(AlgebraContext &Ctx, const Spec &S);

} // namespace algspec

#endif // ALGSPEC_CHECK_SKELETON_H
