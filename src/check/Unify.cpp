//===----------------------------------------------------------------------===//
//
// Part of AlgSpec. MIT license.
//
//===----------------------------------------------------------------------===//

#include "check/Unify.h"

#include "ast/AlgebraContext.h"

#include <unordered_map>
#include <vector>

using namespace algspec;

namespace {

/// Robinson-style unification over hash-consed terms with an explicit
/// binding map and occurs check.
class Unifier {
public:
  explicit Unifier(AlgebraContext &Ctx) : Ctx(Ctx) {}

  bool unify(TermId A, TermId B) {
    A = resolve(A);
    B = resolve(B);
    if (A == B)
      return true;

    const TermNode &NodeA = Ctx.node(A);
    const TermNode &NodeB = Ctx.node(B);

    if (NodeA.Kind == TermKind::Var)
      return bindVar(NodeA.Var, B);
    if (NodeB.Kind == TermKind::Var)
      return bindVar(NodeB.Var, A);

    if (NodeA.Kind != NodeB.Kind)
      return false;
    if (NodeA.Kind != TermKind::Op)
      return false; // Distinct leaves (A == B was checked).
    if (NodeA.Op != NodeB.Op)
      return false;

    // Copy out: bindVar does not create terms, but resolve()'s callees in
    // later iterations may (fullyApply during finish) — children here are
    // only read before any creation, still copy for uniformity and safety.
    auto SpanA = Ctx.children(A);
    auto SpanB = Ctx.children(B);
    std::vector<TermId> ChildrenA(SpanA.begin(), SpanA.end());
    std::vector<TermId> ChildrenB(SpanB.begin(), SpanB.end());
    for (size_t I = 0; I != ChildrenA.size(); ++I)
      if (!unify(ChildrenA[I], ChildrenB[I]))
        return false;
    return true;
  }

  /// Converts the internal binding map into an idempotent Substitution.
  Substitution finish() {
    Substitution Result;
    for (const auto &[Var, Term] : Bindings)
      Result.bind(Var, fullyApply(Term));
    return Result;
  }

private:
  /// Follows variable bindings until a non-bound term is reached.
  TermId resolve(TermId Term) {
    while (true) {
      const TermNode &Node = Ctx.node(Term);
      if (Node.Kind != TermKind::Var)
        return Term;
      auto It = Bindings.find(Node.Var);
      if (It == Bindings.end())
        return Term;
      Term = It->second;
    }
  }

  bool occurs(VarId Var, TermId Term) {
    Term = resolve(Term);
    const TermNode &Node = Ctx.node(Term);
    if (Node.Kind == TermKind::Var)
      return Node.Var == Var;
    auto Span = Ctx.children(Term);
    std::vector<TermId> Children(Span.begin(), Span.end());
    for (TermId Child : Children)
      if (occurs(Var, Child))
        return true;
    return false;
  }

  bool bindVar(VarId Var, TermId Term) {
    if (occurs(Var, Term))
      return false;
    Bindings.emplace(Var, Term);
    return true;
  }

  /// Substitutes bindings into \p Term to a fixpoint (terminating because
  /// the occurs check keeps the binding relation acyclic).
  TermId fullyApply(TermId Term) {
    TermId Resolved = resolve(Term);
    const TermNode Node = Ctx.node(Resolved);
    if (Node.Kind != TermKind::Op)
      return Resolved;
    auto Span = Ctx.children(Resolved);
    std::vector<TermId> Children(Span.begin(), Span.end());
    bool Changed = false;
    for (TermId &Child : Children) {
      TermId NewChild = fullyApply(Child);
      Changed |= NewChild != Child;
      Child = NewChild;
    }
    return Changed ? Ctx.makeOp(Node.Op, Children) : Resolved;
  }

  AlgebraContext &Ctx;
  std::unordered_map<VarId, TermId> Bindings;
};

} // namespace

std::optional<Substitution> algspec::unifyTerms(AlgebraContext &Ctx,
                                                TermId A, TermId B) {
  Unifier U(Ctx);
  if (!U.unify(A, B))
    return std::nullopt;
  return U.finish();
}

/// Shared renaming walker: \p Fresh persists across calls so several
/// terms can be renamed consistently.
static TermId renameWithMap(AlgebraContext &Ctx, TermId Term,
                            std::unordered_map<VarId, TermId> &Fresh) {
  auto Walk = [&](auto &&Self, TermId Cur) -> TermId {
    const TermNode Node = Ctx.node(Cur);
    switch (Node.Kind) {
    case TermKind::Var: {
      auto It = Fresh.find(Node.Var);
      if (It != Fresh.end())
        return It->second;
      const VarInfo &Info = Ctx.var(Node.Var);
      TermId NewVar = Ctx.makeVar(
          Ctx.addVar(std::string(Ctx.str(Info.Name)) + "'", Info.Sort));
      Fresh.emplace(Node.Var, NewVar);
      return NewVar;
    }
    case TermKind::Error:
    case TermKind::Atom:
    case TermKind::Int:
      return Cur;
    case TermKind::Op: {
      auto Span = Ctx.children(Cur);
      std::vector<TermId> Children(Span.begin(), Span.end());
      bool Changed = false;
      for (TermId &Child : Children) {
        TermId NewChild = Self(Self, Child);
        Changed |= NewChild != Child;
        Child = NewChild;
      }
      return Changed ? Ctx.makeOp(Node.Op, Children) : Cur;
    }
    }
    return Cur;
  };
  return Walk(Walk, Term);
}

TermId algspec::renameVarsApart(AlgebraContext &Ctx, TermId Term) {
  std::unordered_map<VarId, TermId> Fresh;
  return renameWithMap(Ctx, Term, Fresh);
}

std::pair<TermId, TermId> algspec::renameRuleApart(AlgebraContext &Ctx,
                                                   TermId Lhs, TermId Rhs) {
  std::unordered_map<VarId, TermId> Fresh;
  TermId NewLhs = renameWithMap(Ctx, Lhs, Fresh);
  TermId NewRhs = renameWithMap(Ctx, Rhs, Fresh);
  return {NewLhs, NewRhs};
}
