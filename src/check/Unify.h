//===----------------------------------------------------------------------===//
//
// Part of AlgSpec. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Syntactic unification of terms, used by the consistency checker to
/// discover overlapping axiom left-hand sides (critical pairs).
///
//===----------------------------------------------------------------------===//

#ifndef ALGSPEC_CHECK_UNIFY_H
#define ALGSPEC_CHECK_UNIFY_H

#include "ast/Ids.h"
#include "rewrite/Substitution.h"

#include <optional>

namespace algspec {

class AlgebraContext;

/// Computes a most general unifier of \p A and \p B, if one exists.
/// The unifier is idempotent: applying it once substitutes fully resolved
/// terms. Occurs-check failures and clashes yield nullopt.
std::optional<Substitution> unifyTerms(AlgebraContext &Ctx, TermId A,
                                       TermId B);

/// Returns \p Term with every variable replaced by a fresh one (same
/// sorts, primed names). Used to rename rules apart before unification.
TermId renameVarsApart(AlgebraContext &Ctx, TermId Term);

/// Renames the variables of a whole rule (Lhs, Rhs) consistently: shared
/// variables map to the same fresh variable on both sides.
std::pair<TermId, TermId> renameRuleApart(AlgebraContext &Ctx, TermId Lhs,
                                          TermId Rhs);

} // namespace algspec

#endif // ALGSPEC_CHECK_UNIFY_H
