//===----------------------------------------------------------------------===//
//
// Part of AlgSpec. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// SpecLint: a static-analysis pass framework over .alg specifications.
///
/// The paper's mechanical assistant analyzes an axiom set *before* any
/// implementation exists and "prompts the user to supply the additional
/// information" (section 3). The completeness and consistency checkers
/// cover two specific ways a presentation goes wrong; the lint passes here
/// catch the rest of the common ones statically, each producing a
/// structured \c LintFinding with a severity, a precise location, and —
/// where a repair is mechanical — a fix-it suggestion in the paper's
/// "please supply ..." prompt style.
///
/// Standard rules:
///   unused-variable       a declared axiom variable no axiom mentions
///   unbound-rhs-variable  a right-hand side variable the left-hand side
///                         does not bind (the axiom is not executable)
///   non-left-linear       a left-hand side repeating a variable
///   subsumed-axiom        an axiom shadowed by an earlier, more general
///                         axiom of the same operation (via matching)
///   non-constructor-lhs   a defined or builtin operation at a non-root
///                         left-hand-side position, or a constructor at
///                         the root (constructor discipline)
///   unused-declaration    sorts and operations declared but never used
///   error-swallowed       an axiom right-hand side that provably
///                         rewrites to error without saying `error`
///                         (analysis-backed; see check/ErrorFlow.h)
///   always-error-op       an operation whose every case errors
///   redundant-error-axiom an explicit error axiom already implied by
///                         strict error propagation
///   non-left-linear-lhs   an oriented rule whose repeated left-hand-side
///                         variable blocks the convergence certificate
///                         (analysis-backed; see check/Convergence.h)
///   unjoinable-critical-pair
///                         a critical pair whose reducts normalize to
///                         distinct values — a confluence counterexample,
///                         caret-located at both participating axioms
///   unreachable-axiom     an axiom whose left-hand side is entirely
///                         covered by earlier axioms of the same
///                         operation — dead code under first-matching-
///                         rule-wins (analysis-backed; see
///                         check/Exhaustiveness.h)
///   non-exhaustive-op     a defined operation with a proven missing
///                         constructor case, pointing at the exact
///                         left-hand side to supply (analysis-backed)
///
/// New passes implement \c LintPass and register in \c standardPasses(),
/// or are added to a custom \c Linter instance.
///
//===----------------------------------------------------------------------===//

#ifndef ALGSPEC_CHECK_LINT_H
#define ALGSPEC_CHECK_LINT_H

#include "ast/Ids.h"
#include "support/Diagnostic.h"

#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace algspec {

class AlgebraContext;
class SourceMgr;
class Spec;

/// One structured lint result.
struct LintFinding {
  std::string Rule;     ///< Stable rule name, e.g. "unused-variable".
  DiagKind Kind = DiagKind::Warning;
  std::string SpecName; ///< Spec the finding belongs to.
  SourceLoc Loc;        ///< Precise location (may be invalid for
                        ///< programmatically built specs).
  std::string Message;
  std::string FixIt;    ///< Optional "please supply ..." repair prompt.
};

/// Options shared by every pass of one lint run.
struct LintOptions {
  bool WarningsAsErrors = false;
};

/// Accumulated findings of one lint run.
struct LintReport {
  std::vector<LintFinding> Findings;

  unsigned errorCount() const;
  unsigned warningCount() const;

  /// True when the run should gate a pipeline: any error, or any warning
  /// under -Werror.
  bool failed(const LintOptions &Opts) const {
    return errorCount() != 0 ||
           (Opts.WarningsAsErrors && warningCount() != 0);
  }
  bool clean() const { return Findings.empty(); }

  /// Renders findings clang-style, one per line, with the offending
  /// source line and caret when \p SM covers the finding's location.
  /// \p SM may be null.
  std::string render(const SourceMgr *SM = nullptr) const;
};

/// Renders one finding clang-style ("name:line:col: severity: message
/// [rule]"), with source line, caret, and fix-it note when \p SM is
/// non-null. Callers with several buffers (the CLI) resolve \p SM per
/// finding.
std::string renderFinding(const LintFinding &F, const SourceMgr *SM);

/// Everything a pass sees: the spec under analysis, the full workspace
/// (axioms may reference operations of sibling specs), and the report to
/// append to.
class LintContext {
public:
  LintContext(AlgebraContext &Ctx, const Spec &S,
              const std::vector<const Spec *> &AllSpecs, LintReport &Report)
      : Ctx(Ctx), S(S), AllSpecs(AllSpecs), Report(Report) {}

  AlgebraContext &context() const { return Ctx; }
  const Spec &spec() const { return S; }
  const std::vector<const Spec *> &allSpecs() const { return AllSpecs; }

  void report(std::string_view Rule, DiagKind Kind, SourceLoc Loc,
              std::string Message, std::string FixIt = std::string());

private:
  AlgebraContext &Ctx;
  const Spec &S;
  const std::vector<const Spec *> &AllSpecs;
  LintReport &Report;
};

/// One lint rule. Passes are stateless between runs; \c run is invoked
/// once per spec.
class LintPass {
public:
  virtual ~LintPass();
  virtual std::string_view name() const = 0;
  virtual std::string_view description() const = 0;
  virtual void run(LintContext &LC) = 0;
};

/// An ordered collection of passes applied to every spec of a workspace.
class Linter {
public:
  Linter() = default;

  void addPass(std::unique_ptr<LintPass> Pass) {
    Passes.push_back(std::move(Pass));
  }

  const std::vector<std::unique_ptr<LintPass>> &passes() const {
    return Passes;
  }

  /// Runs every pass over every spec; findings arrive grouped by spec in
  /// pass-registration order.
  LintReport run(AlgebraContext &Ctx,
                 const std::vector<const Spec *> &Specs) const;

  /// The standard rule set documented in docs/SPEC_LANGUAGE.md.
  static Linter standard();

private:
  std::vector<std::unique_ptr<LintPass>> Passes;
};

/// Convenience: runs the standard linter over \p Specs.
LintReport lintSpecs(AlgebraContext &Ctx,
                     const std::vector<const Spec *> &Specs);

} // namespace algspec

#endif // ALGSPEC_CHECK_LINT_H
