//===----------------------------------------------------------------------===//
//
// Part of AlgSpec. MIT license.
//
//===----------------------------------------------------------------------===//

#include "check/ErrorFlow.h"

#include "ast/AlgebraContext.h"
#include "ast/Spec.h"
#include "ast/TermPrinter.h"
#include "check/Completeness.h"
#include "check/Lint.h"
#include "check/Unify.h"
#include "rewrite/Engine.h"
#include "rewrite/RewriteSystem.h"
#include "rewrite/Substitution.h"

#include <cassert>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <utility>

using namespace algspec;

std::string_view algspec::errorVerdictName(ErrorVerdict V) {
  switch (V) {
  case ErrorVerdict::Never:
    return "never-error";
  case ErrorVerdict::May:
    return "may-error";
  case ErrorVerdict::Always:
    return "always-error";
  }
  return "may-error";
}

namespace {

/// Chain order Never < May < Always: the worst of two verdicts along one
/// strict evaluation path (if either poisons, the whole poisons).
ErrorVerdict chainMax(ErrorVerdict A, ErrorVerdict B) {
  return A < B ? B : A;
}

/// Join of two *alternative* paths (distinct constructor cases, the two
/// branches of an if-then-else): agreeing paths keep their verdict,
/// disagreeing ones meet at may-error.
ErrorVerdict caseJoin(ErrorVerdict A, ErrorVerdict B) {
  return A == B ? A : ErrorVerdict::May;
}

/// The whole analysis, over one workspace of specs.
class ErrorFlowAnalyzer {
public:
  ErrorFlowAnalyzer(AlgebraContext &Ctx,
                    const std::vector<const Spec *> &Specs,
                    EngineOptions BaseEO)
      : Ctx(Ctx), Specs(Specs), BaseEO(BaseEO) {}

  ErrorFlowReport run() {
    collect();
    runFixpoint();
    ErrorFlowReport R = buildReport();
    if (GuardEngine)
      R.Engine = GuardEngine->stats();
    return R;
  }

private:
  /// One axiom seen as one constructor case of its head operation.
  struct CaseRef {
    const Spec *Owner = nullptr;
    const Axiom *Ax = nullptr;
  };

  /// One enclosing if-then-else condition on the path to a subterm.
  struct Guard {
    TermId Cond;
    bool TakenThen; ///< True inside the then branch, false inside else.
  };

  /// A derived error condition: \c Cond is a *necessary* condition for
  /// the inspected term to rewrite to error; \c Exact upgrades it to
  /// necessary and sufficient. The trivial conditions are the literal
  /// true/false terms.
  struct Extract {
    TermId Cond;
    bool Exact;
  };

  //===------------------------------------------------------------------===
  // Setup
  //===------------------------------------------------------------------===

  void collect() {
    for (const Spec *S : Specs) {
      for (OpId Op : S->definedOps(Ctx)) {
        OpOrder.emplace_back(S, Op);
        CasesByOp[Op]; // ensure a (possibly empty) case list
      }
      for (const Axiom &Ax : S->axioms()) {
        const TermNode &N = Ctx.node(Ax.Lhs);
        if (N.Kind != TermKind::Op || !Ctx.op(N.Op).isDefined())
          continue;
        CasesByOp[N.Op].push_back(CaseRef{S, &Ax});
      }
      CompletenessReport CR = checkCompleteness(Ctx, *S);
      for (const MissingCase &M : CR.Missing)
        Incomplete.insert(M.Op);
      for (const std::string &C : CR.Caveats)
        Caveats.push_back(S->name() + ": " + C);
    }
    Caveats.push_back("stuck terms count as never-error: summaries assume "
                      "arguments denote covered constructor values");
    for (const auto &[S, Op] : OpOrder)
      if (Incomplete.count(Op))
        Caveats.push_back(S->name() + "." + std::string(Ctx.opName(Op)) +
                          ": uncovered constructor cases treated as "
                          "never-error");

    // A small engine over the full rule set decides enclosing guards
    // under case-composition substitutions.
    if (Result<RewriteSystem> Sys = RewriteSystem::buildChecked(Ctx, Specs)) {
      System.emplace(Sys.take());
      // Keep the caller's engine choice (compiled vs interpreted) but pin
      // the analysis' own conservative fuel and depth bounds.
      EngineOptions EO = BaseEO;
      EO.MaxSteps = 4096;
      EO.MaxDepth = 512;
      GuardEngine.emplace(Ctx, *System, EO);
    } else {
      Caveats.push_back("axiom set did not elaborate into a rewrite system; "
                        "guard refutation disabled");
    }
  }

  //===------------------------------------------------------------------===
  // Phase 1: verdict-only Kleene fixpoint
  //===------------------------------------------------------------------===

  ErrorVerdict overallFor(OpId Op) const {
    auto It = Overall.find(Op);
    if (It != Overall.end())
      return It->second;
    // Defined op outside the analyzed workspace: unknown.
    return ErrorVerdict::May;
  }

  /// Abstract value of one axiom right-hand side under the current
  /// per-operation verdicts. Structural strictness everywhere, laziness
  /// only in if-then-else branches — exactly AlgebraContext::makeOp.
  ErrorVerdict evalTerm(TermId T) const {
    const TermNode &N = Ctx.node(T);
    switch (N.Kind) {
    case TermKind::Error:
      return ErrorVerdict::Always;
    case TermKind::Var:
    case TermKind::Atom:
    case TermKind::Int:
      return ErrorVerdict::Never;
    case TermKind::Op:
      break;
    }
    const OpInfo &Info = Ctx.op(N.Op);
    std::span<const TermId> Kids = Ctx.children(T);
    if (Info.Builtin == BuiltinOp::Ite)
      return chainMax(evalTerm(Kids[0]),
                      caseJoin(evalTerm(Kids[1]), evalTerm(Kids[2])));
    ErrorVerdict V = ErrorVerdict::Never;
    for (TermId K : Kids)
      V = chainMax(V, evalTerm(K));
    if (Info.isDefined())
      V = chainMax(V, overallFor(N.Op));
    return V;
  }

  ErrorVerdict computeOverall(OpId Op) const {
    std::optional<ErrorVerdict> Acc;
    auto It = CasesByOp.find(Op);
    if (It != CasesByOp.end())
      for (const CaseRef &C : It->second) {
        ErrorVerdict V = evalTerm(C.Ax->Rhs);
        Acc = Acc ? caseJoin(*Acc, V) : V;
      }
    if (Incomplete.count(Op))
      Acc = Acc ? caseJoin(*Acc, ErrorVerdict::Never) : ErrorVerdict::Never;
    return Acc.value_or(ErrorVerdict::Never);
  }

  void runFixpoint() {
    // Optimistic bottom: never-error is sound to start from because
    // divergence and stuck terms are not the error value.
    for (const auto &[S, Op] : OpOrder)
      Overall[Op] = ErrorVerdict::Never;
    // Each verdict can only climb the three-point chain, so the chaotic
    // iteration stabilizes after at most 2*|ops| productive rounds.
    unsigned Limit = 2 * static_cast<unsigned>(OpOrder.size()) + 2;
    for (unsigned Iter = 0; Iter < Limit; ++Iter) {
      bool Changed = false;
      for (const auto &[S, Op] : OpOrder) {
        ErrorVerdict NV = computeOverall(Op);
        if (NV != Overall[Op]) {
          Overall[Op] = NV;
          Changed = true;
        }
      }
      if (!Changed)
        return;
    }
    assert(false && "error-flow fixpoint failed to stabilize");
  }

  //===------------------------------------------------------------------===
  // Phase 2: one-shot error-condition extraction
  //===------------------------------------------------------------------===

  TermId mkNot(TermId A) {
    if (A == Ctx.trueTerm())
      return Ctx.falseTerm();
    if (A == Ctx.falseTerm())
      return Ctx.trueTerm();
    return Ctx.makeOp(Ctx.intOp(BuiltinOp::BoolNot), {A});
  }

  TermId mkAnd(TermId A, TermId B) {
    if (A == Ctx.falseTerm() || B == Ctx.falseTerm())
      return Ctx.falseTerm();
    if (A == Ctx.trueTerm())
      return B;
    if (B == Ctx.trueTerm() || A == B)
      return A;
    return Ctx.makeOp(Ctx.intOp(BuiltinOp::BoolAnd), {A, B});
  }

  TermId mkOr(TermId A, TermId B) {
    if (A == Ctx.trueTerm() || B == Ctx.trueTerm())
      return Ctx.trueTerm();
    if (A == Ctx.falseTerm())
      return B;
    if (B == Ctx.falseTerm() || A == B)
      return A;
    return Ctx.makeOp(Ctx.intOp(BuiltinOp::BoolOr), {A, B});
  }

  /// True when \p T is already a constructor normal form pattern:
  /// variables, literals, and constructor applications only. Only such
  /// call-site arguments can be composed against case patterns soundly —
  /// anything else may still reduce before the outer match happens.
  bool constructorPure(TermId T) const {
    const TermNode &N = Ctx.node(T);
    switch (N.Kind) {
    case TermKind::Var:
    case TermKind::Atom:
    case TermKind::Int:
      return true;
    case TermKind::Error:
      return false;
    case TermKind::Op:
      break;
    }
    if (!Ctx.op(N.Op).isConstructor())
      return false;
    for (TermId K : Ctx.children(T))
      if (!constructorPure(K))
        return false;
    return true;
  }

  void collectVars(TermId T, std::unordered_set<VarId> &Out) const {
    const TermNode &N = Ctx.node(T);
    if (N.Kind == TermKind::Var) {
      Out.insert(N.Var);
      return;
    }
    for (TermId K : Ctx.children(T))
      collectVars(K, Out);
  }

  /// True when some enclosing guard is decided *against* its taken branch
  /// once \p Sigma is applied — the composed case is unreachable.
  bool guardsRefuted(const Substitution &Sigma,
                     const std::vector<Guard> &Guards) {
    if (!GuardEngine)
      return false;
    for (const Guard &G : Guards) {
      TermId Inst = applySubstitution(Ctx, G.Cond, Sigma);
      Result<TermId> N = GuardEngine->normalize(Inst);
      if (!N)
        continue;
      if ((*N == Ctx.trueTerm() && !G.TakenThen) ||
          (*N == Ctx.falseTerm() && G.TakenThen))
        return true;
    }
    return false;
  }

  /// Error contribution of a defined-operation application itself, its
  /// arguments assumed non-erroring. Composes the call site against the
  /// callee's cases via unification — one level only, which keeps the
  /// extraction a single post-fixpoint pass.
  Extract appExtract(TermId T, const std::vector<Guard> &Guards) {
    const TermNode N = Ctx.node(T);
    ErrorVerdict Own = overallFor(N.Op);
    if (Own == ErrorVerdict::Never)
      return {Ctx.falseTerm(), true};

    bool Pure = true;
    for (TermId K : Ctx.children(T))
      Pure = Pure && constructorPure(K);
    auto It = CasesByOp.find(N.Op);
    if (!Pure || It == CasesByOp.end())
      return {Ctx.trueTerm(), Own == ErrorVerdict::Always};

    std::unordered_set<VarId> SiteVars;
    collectVars(T, SiteVars);

    TermId Cond = Ctx.falseTerm();
    bool Exact = true;
    for (const CaseRef &C : It->second) {
      auto [RLhs, RRhs] = renameRuleApart(Ctx, C.Ax->Lhs, C.Ax->Rhs);
      std::optional<Substitution> Sigma = unifyTerms(Ctx, T, RLhs);
      if (!Sigma)
        continue; // the site can never take this case
      if (guardsRefuted(*Sigma, Guards))
        continue; // the case is dead under the enclosing guards

      // Does the unifier restrict the site (instantiate its variables)?
      bool Restricting = false;
      std::unordered_map<TermId, unsigned> VarImages;
      for (const auto &[V, B] : Sigma->bindings()) {
        if (!SiteVars.count(V))
          continue;
        if (!Ctx.isVar(B) || ++VarImages[B] > 1) {
          Restricting = true;
          break;
        }
      }

      if (Ctx.isError(RRhs)) {
        if (!Restricting)
          return {Ctx.trueTerm(), true}; // always matches, always errors
        Cond = Ctx.trueTerm(); // errors on the instances the case matches
        Exact = false;
        continue;
      }
      if (evalTerm(C.Ax->Rhs) == ErrorVerdict::Never)
        continue;
      Cond = Ctx.trueTerm();
      Exact = false;
    }
    return {Cond, Exact};
  }

  /// Necessary (and when possible sufficient) condition for \p T to
  /// rewrite to error, under the enclosing \p Guards.
  Extract extract(TermId T, std::vector<Guard> &Guards) {
    if (Ctx.isError(T))
      return {Ctx.trueTerm(), true};
    if (evalTerm(T) == ErrorVerdict::Never)
      return {Ctx.falseTerm(), true};

    const TermNode N = Ctx.node(T);
    assert(N.Kind == TermKind::Op && "leaves are never-error");
    bool IsIte = Ctx.op(N.Op).Builtin == BuiltinOp::Ite;
    bool IsDefined = Ctx.op(N.Op).isDefined();
    // Copy the children out of the arena: the recursion below builds new
    // terms (conditions, renamed rules, guard normal forms), which can
    // grow the term tables and invalidate spans and references into them.
    std::span<const TermId> KidsSpan = Ctx.children(T);
    std::vector<TermId> Kids(KidsSpan.begin(), KidsSpan.end());

    if (IsIte) {
      ErrorVerdict CV = evalTerm(Kids[0]);
      if (CV == ErrorVerdict::Always)
        return {Ctx.trueTerm(), true};
      if (CV == ErrorVerdict::May)
        return {Ctx.trueTerm(), false};
      Guards.push_back(Guard{Kids[0], true});
      Extract Then = extract(Kids[1], Guards);
      Guards.back().TakenThen = false;
      Extract Else = extract(Kids[2], Guards);
      Guards.pop_back();
      TermId Cond = mkOr(mkAnd(Kids[0], Then.Cond),
                         mkAnd(mkNot(Kids[0]), Else.Cond));
      return {Cond, Then.Exact && Else.Exact};
    }

    // Strict arguments: the term errors as soon as any argument does.
    TermId ArgCond = Ctx.falseTerm();
    bool ArgExact = true;
    for (TermId K : Kids) {
      Extract E = extract(K, Guards);
      ArgCond = mkOr(ArgCond, E.Cond);
      ArgExact = ArgExact && E.Exact;
    }
    if (!IsDefined)
      return {ArgCond, ArgExact}; // constructors and builtins never error
    Extract App = appExtract(T, Guards);
    return {mkOr(ArgCond, App.Cond), ArgExact && App.Exact};
  }

  //===------------------------------------------------------------------===
  // Report
  //===------------------------------------------------------------------===

  ErrorFlowReport buildReport() {
    ErrorFlowReport R;
    for (const auto &[S, Op] : OpOrder) {
      OpSummary Sum;
      Sum.Op = Op;
      Sum.SpecName = S->name();
      std::optional<ErrorVerdict> Acc;
      for (const CaseRef &C : CasesByOp[Op]) {
        ErrorCase EC;
        EC.AxiomNumber = C.Ax->Number;
        EC.Lhs = C.Ax->Lhs;
        std::vector<Guard> Guards;
        Extract E = extract(C.Ax->Rhs, Guards);
        if (E.Cond == Ctx.falseTerm()) {
          EC.Verdict = ErrorVerdict::Never;
        } else if (E.Cond == Ctx.trueTerm() && E.Exact) {
          EC.Verdict = ErrorVerdict::Always;
        } else {
          EC.Verdict = ErrorVerdict::May;
          if (E.Cond != Ctx.trueTerm()) {
            EC.ErrorCondition = E.Cond;
            EC.ConditionExact = E.Exact;
          }
        }
        Acc = Acc ? caseJoin(*Acc, EC.Verdict) : EC.Verdict;
        Sum.Cases.push_back(EC);
      }
      if (Incomplete.count(Op))
        Acc = Acc ? caseJoin(*Acc, ErrorVerdict::Never) : ErrorVerdict::Never;
      Sum.Overall = Acc.value_or(ErrorVerdict::Never);

      for (const ErrorCase &EC : Sum.Cases) {
        bool Unconditional = EC.Verdict == ErrorVerdict::Always;
        bool ExactGuard = EC.Verdict == ErrorVerdict::May &&
                          EC.ErrorCondition.isValid() && EC.ConditionExact;
        if (!Unconditional && !ExactGuard)
          continue;
        DefinednessObligation O;
        O.Op = Op;
        O.SpecName = Sum.SpecName;
        O.AxiomNumber = EC.AxiomNumber;
        O.CaseLhs = EC.Lhs;
        O.Verdict = EC.Verdict;
        O.ErrorCondition = EC.ErrorCondition;
        O.ConditionExact = EC.ConditionExact;
        R.Obligations.push_back(O);
      }
      R.Summaries.push_back(std::move(Sum));
    }
    R.Caveats = std::move(Caveats);
    return R;
  }

  AlgebraContext &Ctx;
  const std::vector<const Spec *> &Specs;
  /// Report order: declaring spec in workspace order, then declaration
  /// order within the spec.
  std::vector<std::pair<const Spec *, OpId>> OpOrder;
  std::unordered_map<OpId, std::vector<CaseRef>> CasesByOp;
  std::unordered_map<OpId, ErrorVerdict> Overall;
  std::unordered_set<OpId> Incomplete;
  std::optional<RewriteSystem> System;
  std::optional<RewriteEngine> GuardEngine;
  EngineOptions BaseEO;
  std::vector<std::string> Caveats;
};

} // namespace

std::string DefinednessObligation::render(const AlgebraContext &Ctx) const {
  std::string Out = printTerm(Ctx, CaseLhs) + " = error";
  if (ErrorCondition.isValid())
    Out += std::string(ConditionExact ? " iff " : " when ") +
           printTerm(Ctx, ErrorCondition);
  return Out;
}

const OpSummary *ErrorFlowReport::summaryFor(OpId Op) const {
  for (const OpSummary &S : Summaries)
    if (S.Op == Op)
      return &S;
  return nullptr;
}

std::string ErrorFlowReport::render(const AlgebraContext &Ctx) const {
  std::string Out;
  for (const OpSummary &S : Summaries) {
    Out += S.SpecName + "." + std::string(Ctx.opName(S.Op)) + ": " +
           std::string(errorVerdictName(S.Overall)) + "\n";
    for (const ErrorCase &C : S.Cases) {
      Out += "  axiom (" + std::to_string(C.AxiomNumber) + ") " +
             printTerm(Ctx, C.Lhs) + ": " +
             std::string(errorVerdictName(C.Verdict));
      if (C.ErrorCondition.isValid())
        Out += std::string(C.ConditionExact ? " iff " : " when ") +
               printTerm(Ctx, C.ErrorCondition);
      Out += "\n";
    }
  }
  if (!Obligations.empty()) {
    Out += "definedness obligations:\n";
    for (const DefinednessObligation &O : Obligations)
      Out += "  " + O.render(Ctx) + "\n";
  }
  for (const std::string &C : Caveats)
    Out += "note: " + C + "\n";
  return Out;
}

ErrorFlowReport
algspec::analyzeErrorFlow(AlgebraContext &Ctx,
                          const std::vector<const Spec *> &Specs,
                          EngineOptions Eng) {
  return ErrorFlowAnalyzer(Ctx, Specs, Eng).run();
}

//===----------------------------------------------------------------------===//
// Analysis-backed lint rules
//===----------------------------------------------------------------------===//

namespace {

std::string axiomLabel(const Axiom &Ax) {
  return "axiom (" + std::to_string(Ax.Number) + ")";
}

/// error-swallowed: an axiom right-hand side that provably rewrites to
/// error without being written as `error` — an erroring subterm reaches a
/// strict position and no guard can save it.
class ErrorSwallowedPass : public LintPass {
public:
  std::string_view name() const override { return "error-swallowed"; }
  std::string_view description() const override {
    return "axiom right-hand side always rewrites to error without "
           "saying so";
  }

  void run(LintContext &LC) override {
    AlgebraContext &Ctx = LC.context();
    const Spec &S = LC.spec();
    ErrorFlowReport R = analyzeErrorFlow(Ctx, LC.allSpecs());
    for (const Axiom &Ax : S.axioms()) {
      if (Ctx.isError(Ax.Rhs))
        continue;
      const TermNode &N = Ctx.node(Ax.Lhs);
      if (N.Kind != TermKind::Op)
        continue;
      const OpSummary *Sum = R.summaryFor(N.Op);
      if (!Sum)
        continue;
      for (const ErrorCase &C : Sum->Cases) {
        if (C.Lhs != Ax.Lhs || C.AxiomNumber != Ax.Number ||
            C.Verdict != ErrorVerdict::Always)
          continue;
        LC.report(name(), DiagKind::Warning, Ax.Loc,
                  "right-hand side of " + axiomLabel(Ax) + " for '" +
                      std::string(Ctx.opName(N.Op)) +
                      "' always rewrites to error: an erroring subterm "
                      "reaches a strict position and no guard decides it",
                  "please write the axiom as " + printTerm(Ctx, Ax.Lhs) +
                      " = error, or guard the erroring subterm with "
                      "if-then-else");
      }
    }
  }
};

/// always-error-op: every constructor case of the operation errors, so no
/// application of it is ever defined.
class AlwaysErrorOpPass : public LintPass {
public:
  std::string_view name() const override { return "always-error-op"; }
  std::string_view description() const override {
    return "operation whose every case rewrites to error";
  }

  void run(LintContext &LC) override {
    AlgebraContext &Ctx = LC.context();
    const Spec &S = LC.spec();
    ErrorFlowReport R = analyzeErrorFlow(Ctx, LC.allSpecs());
    for (const OpSummary &Sum : R.Summaries) {
      if (Sum.SpecName != S.name() || Sum.Overall != ErrorVerdict::Always ||
          Sum.Cases.empty())
        continue;
      LC.report(name(), DiagKind::Warning, Ctx.op(Sum.Op).Loc,
                "every case of '" + std::string(Ctx.opName(Sum.Op)) +
                    "' rewrites to error; no application of it is "
                    "defined");
    }
  }
};

/// redundant-error-axiom: an explicit `lhs = error` axiom whose left-hand
/// side already normalizes to error once the axiom itself is removed —
/// strict propagation through the remaining rules implies it.
class RedundantErrorAxiomPass : public LintPass {
public:
  std::string_view name() const override { return "redundant-error-axiom"; }
  std::string_view description() const override {
    return "explicit error axiom already implied by error propagation";
  }

  void run(LintContext &LC) override {
    AlgebraContext &Ctx = LC.context();
    const Spec &S = LC.spec();
    for (const Axiom &Ax : S.axioms()) {
      if (!Ctx.isError(Ax.Rhs))
        continue;
      // Rebuild the workspace with this one axiom dropped.
      Spec Reduced(S.name());
      for (const Axiom &Other : S.axioms())
        if (&Other != &Ax)
          Reduced.addAxiom(Other.Lhs, Other.Rhs, Other.Loc);
      std::vector<const Spec *> All;
      bool Replaced = false;
      for (const Spec *P : LC.allSpecs()) {
        if (P == &S) {
          All.push_back(&Reduced);
          Replaced = true;
        } else {
          All.push_back(P);
        }
      }
      if (!Replaced)
        All.push_back(&Reduced);
      Result<RewriteSystem> Sys = RewriteSystem::buildChecked(Ctx, All);
      if (!Sys)
        continue;
      RewriteSystem System = Sys.take();
      EngineOptions EO;
      EO.MaxSteps = 4096;
      EO.MaxDepth = 512;
      RewriteEngine Engine(Ctx, System, EO);
      Result<bool> Errs = Engine.normalizesToError(Ax.Lhs);
      if (!Errs || !*Errs)
        continue;
      LC.report(name(), DiagKind::Warning, Ax.Loc,
                axiomLabel(Ax) + " '" + printTerm(Ctx, Ax.Lhs) +
                    " = error' is already implied by error propagation "
                    "through the remaining axioms",
                "this axiom can be removed");
    }
  }
};

} // namespace

std::unique_ptr<LintPass> algspec::makeErrorSwallowedPass() {
  return std::make_unique<ErrorSwallowedPass>();
}

std::unique_ptr<LintPass> algspec::makeAlwaysErrorOpPass() {
  return std::make_unique<AlwaysErrorOpPass>();
}

std::unique_ptr<LintPass> algspec::makeRedundantErrorAxiomPass() {
  return std::make_unique<RedundantErrorAxiomPass>();
}
