//===----------------------------------------------------------------------===//
//
// Part of AlgSpec. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A termination prover for axiom sets, based on the recursive path
/// ordering (RPO) with lexicographic status and a synthesized operation
/// precedence.
///
/// The rewrite engine guards against divergent axiom sets with a runtime
/// fuel bound (DESIGN.md section 5) — a caveat, not a guarantee. This
/// module turns the caveat into a verdict: it
///
///  1. builds the **defined-operation dependency graph** (an edge from
///     each axiom's head operation to every operation its right-hand
///     side applies),
///  2. synthesizes a strict **operation precedence** from a topological
///     linearization of the graph's strongly connected components
///     (mutual recursion — a nontrivial component — admits no strict
///     precedence and is reported as the offending cycle), and
///  3. attempts an RPO proof that every axiom's left-hand side strictly
///     dominates its right-hand side.
///
/// When every axiom is oriented the rule set terminates on *all* inputs
/// under *any* rewrite strategy — an unconditional verdict, so the fuel
/// caveat can be dropped from check reports. The prover is sound but
/// incomplete: axioms that recurse through a bare variable under a guard
/// (RETRIEVE_R in the paper's Symboltable representation) terminate only
/// by the guard's semantics, which a path ordering cannot see; such specs
/// keep the fuel caveat.
///
//===----------------------------------------------------------------------===//

#ifndef ALGSPEC_CHECK_TERMINATION_H
#define ALGSPEC_CHECK_TERMINATION_H

#include "ast/Ids.h"
#include "support/SourceLoc.h"

#include <string>
#include <string_view>
#include <vector>

namespace algspec {

class AlgebraContext;
class Spec;

/// One axiom the ordering could not orient.
struct TerminationFailure {
  std::string SpecName;
  unsigned AxiomNumber = 0;
  SourceLoc Loc;
  /// Why the proof failed, naming the offending right-hand-side subterm.
  std::string Reason;
};

/// Per-spec verdict within a combined proof.
struct SpecTermination {
  std::string SpecName;
  bool Proved = false;
};

/// Outcome of a termination proof over one or more specs.
struct TerminationReport {
  /// True when every axiom of every spec was oriented.
  bool AllProved = false;
  std::vector<SpecTermination> PerSpec;
  std::vector<TerminationFailure> Failures;
  /// Mutual-recursion cycles (each a list of distinct operations) that
  /// blocked precedence synthesis; empty when the dependency graph's
  /// nontrivial components are all singletons.
  std::vector<std::vector<OpId>> Cycles;
  /// The synthesized precedence, highest operation first (ties broken
  /// arbitrarily); for diagnostics and tests.
  std::vector<OpId> Precedence;

  bool provedFor(std::string_view SpecName) const;

  /// Renders the verdicts: one line per spec, then failures and cycles.
  std::string render(const AlgebraContext &Ctx) const;
};

/// Attempts an RPO termination proof over the axioms of every spec in
/// \p Specs (analyzed together: axioms may call across specs, as Stack
/// of Arrays does).
TerminationReport proveTermination(AlgebraContext &Ctx,
                                   const std::vector<const Spec *> &Specs);

/// Convenience overload for a single spec.
TerminationReport proveTermination(AlgebraContext &Ctx, const Spec &S);

} // namespace algspec

#endif // ALGSPEC_CHECK_TERMINATION_H
