//===----------------------------------------------------------------------===//
//
// Part of AlgSpec. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Convergence certification: composing termination, left-linearity, and
/// critical-pair joinability into a proof-level verdict per spec.
///
/// The consistency checker (check/Consistency.h) is a refutation
/// procedure; this module supplies the complementary proof. It examines
/// the oriented rule set of a workspace and classifies each spec:
///
///  - **orthogonal** — every contributing rule is left-linear, the rules
///    have no critical pairs, and termination is proved (RPO, from
///    check/Termination.h). Orthogonal systems are confluent; with
///    termination this makes normal forms canonical.
///  - **convergent** — termination is proved and every critical pair is
///    joinable (each peak's two reducts normalize to one term, possibly
///    after case analysis on undecided guards). Newman's lemma lifts
///    local confluence to confluence, so normal forms are canonical.
///  - **unknown** — an honest failure naming the exact obstruction: a
///    non-left-linear rule, an axiom the path ordering cannot orient, or
///    a specific unjoinable/undecided critical pair.
///
/// Classical orthogonality gives confluence without termination; the
/// certifier nevertheless demands a termination proof before either
/// confluent verdict, because the artifact downstream checkers consume
/// is *decidable equality* — normalize each side once and compare —
/// which needs both properties. A spec like the paper's Symboltable
/// representation (RETRIEVE_R recursing through POP under a guard) thus
/// stays `unknown` even though its rules never overlap.
///
/// Critical pairs are enumerated exactly as in the consistency checker
/// (full Knuth-Bendix over check/Unify). Joinability is guard-aware: two
/// symbolically distinct reducts are joined by case analysis on the
/// first undecided if-then-else condition (each of the condition's
/// possible values — true, false, error — is substituted through both
/// sides; a SAME guard's true case additionally unifies its arguments).
/// Every plain join records the two rewrite traces to the common reduct
/// as a replayable certificate.
///
//===----------------------------------------------------------------------===//

#ifndef ALGSPEC_CHECK_CONVERGENCE_H
#define ALGSPEC_CHECK_CONVERGENCE_H

#include "ast/Ids.h"
#include "check/Termination.h"
#include "rewrite/Engine.h"
#include "support/SourceLoc.h"

#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace algspec {

class AlgebraContext;
class LintPass;
class Spec;

/// The verdict lattice, weakest evidence last.
enum class ConvergenceVerdict : uint8_t {
  /// Left-linear, no critical pairs, terminating: confluent by the
  /// orthogonality theorem, normal forms canonical.
  Orthogonal,
  /// Terminating and every critical pair joins: confluent by Newman's
  /// lemma, normal forms canonical.
  Convergent,
  /// No proof; the report names the obstruction.
  Unknown,
};

std::string_view convergenceVerdictName(ConvergenceVerdict V);

/// How one critical pair's two reducts relate.
enum class PairStatus : uint8_t {
  /// Both reducts normalize to the same term.
  Joined,
  /// Joined after case analysis on undecided guard conditions; holds
  /// for every instance on which the guards denote values.
  JoinedByCases,
  /// The reducts normalize to distinct ground values: a genuine
  /// counterexample to confluence.
  Unjoinable,
  /// Distinct open normal forms survive the case analysis (or fuel ran
  /// out); neither joined nor refuted.
  Undecided,
};

std::string_view pairStatusName(PairStatus S);

/// One step of a join certificate: a rule application recorded during
/// normalization of a reduct.
struct JoinStep {
  TermId Before;
  TermId After;
  std::string SpecName;    ///< Spec owning the applied rule; empty for a
                           ///< builtin evaluation step.
  unsigned AxiomNumber = 0;
};

/// One examined critical pair with its joinability certificate.
struct CriticalPair {
  std::string SpecA, SpecB;
  unsigned AxiomA = 0, AxiomB = 0;
  SourceLoc LocA, LocB;
  /// The peak: the overlapping instance both axioms rewrite.
  TermId Peak;
  /// The two reducts of the peak (rule A at the root, rule B inside).
  TermId ReductA, ReductB;
  /// The reducts' normal forms (equal iff Status == Joined).
  TermId NormA, NormB;
  PairStatus Status = PairStatus::Undecided;
  /// Replayable certificate: the rewrite traces from each reduct to its
  /// normal form. Populated for Joined pairs.
  std::vector<JoinStep> TraceA, TraceB;
  /// Guard case splits the join needed (0 for a plain join).
  unsigned CaseSplits = 0;
  /// Human-readable detail for JoinedByCases / Undecided / Unjoinable.
  std::string Note;
};

/// A rule whose left-hand side repeats a variable, blocking both the
/// orthogonality route and the critical-pair analysis (such a rule only
/// matches syntactically equal occurrences).
struct NonLeftLinearRule {
  std::string SpecName;
  unsigned AxiomNumber = 0;
  SourceLoc Loc;
  std::string Variable; ///< The repeated variable's name.
};

/// Per-spec verdict with its supporting counts.
struct SpecConvergence {
  std::string SpecName;
  ConvergenceVerdict Verdict = ConvergenceVerdict::Unknown;
  /// True when every rule contributing to this spec's rewrites is
  /// left-linear.
  bool LeftLinear = true;
  /// True when termination is proved for every contributing spec.
  bool TerminationProved = false;
  /// Critical pairs among the contributing rules.
  unsigned PairsExamined = 0;
  unsigned PairsJoined = 0;    ///< Status == Joined.
  unsigned PairsByCases = 0;   ///< Status == JoinedByCases.
  /// For Unknown: the exact obstruction, e.g. the failing axiom or the
  /// unjoinable pair. Empty otherwise.
  std::string Obstruction;
};

/// Outcome of a convergence certification over a workspace.
struct ConvergenceReport {
  /// Verdict for the whole rule set (all specs analyzed together).
  ConvergenceVerdict Overall = ConvergenceVerdict::Unknown;
  /// For an Unknown overall verdict: the first obstruction.
  std::string Obstruction;
  std::vector<SpecConvergence> PerSpec;
  /// Every critical pair examined, in enumeration order.
  std::vector<CriticalPair> Pairs;
  std::vector<NonLeftLinearRule> NonLeftLinear;
  /// The termination proof the verdict composed with; its Precedence is
  /// the RPO precedence a certificate replay needs.
  TerminationReport Termination;
  std::vector<std::string> Caveats;
  /// True when every axiom oriented into a rule (no axiom was skipped),
  /// so the critical-pair enumeration saw the whole equational theory.
  bool OrientationComplete = true;

  /// True when the whole rule set is proved confluent and terminating —
  /// the license for downstream checkers to claim decidable equality.
  bool provenConfluent() const {
    return Overall != ConvergenceVerdict::Unknown;
  }

  /// True when every enumerated critical pair joins (plainly or by
  /// cases), every rule is left-linear, and orientation was complete.
  /// Weaker than provenConfluent(): no termination claim, so equality
  /// is not decided by normalization — but any equality the rules *do*
  /// derive is consistent, which licenses the equality-saturation
  /// oracle (src/egraph/) to discharge obligations that directed
  /// normalization diverges on. See docs/VERIFICATION.md.
  bool localJoinability() const {
    if (!OrientationComplete || !NonLeftLinear.empty())
      return false;
    for (const CriticalPair &P : Pairs)
      if (P.Status != PairStatus::Joined &&
          P.Status != PairStatus::JoinedByCases)
        return false;
    return true;
  }

  const SpecConvergence *specVerdict(std::string_view SpecName) const;

  /// Renders one verdict line per spec, then obstruction details.
  std::string render(const AlgebraContext &Ctx) const;
};

/// Tunables for certification.
struct ConvergenceOptions {
  /// Bound on nested guard case splits per join attempt.
  unsigned MaxCaseSplits = 8;
  /// Engine configuration (compiled vs interpreted); fuel is clamped to
  /// a small probe budget internally so a divergent rule set cannot
  /// stall the certifier.
  EngineOptions Engine;
  /// Record join traces (certificates). Disables memoization on the
  /// probe engine so every rule application is observed.
  bool KeepCertificates = true;
};

/// Certifies convergence of the combined rule set of \p Specs and
/// derives per-spec verdicts over each spec's rule closure. Purely
/// serial and deterministic: reports are byte-identical across runs,
/// build types, and job counts.
ConvergenceReport certifyConvergence(AlgebraContext &Ctx,
                                     const std::vector<const Spec *> &Specs,
                                     const ConvergenceOptions &Options =
                                         ConvergenceOptions());

/// Guard-aware joining of two terms, shared by the certifier and the
/// consistency checker's critical-pair sweep. Normalizes both terms
/// with \p Engine; on disagreement, case-splits on the first undecided
/// if-then-else condition (true / false / error, with a SAME guard's
/// true case unifying its arguments) and requires every feasible branch
/// to join.
class GuardJoiner {
public:
  GuardJoiner(AlgebraContext &Ctx, RewriteEngine &Engine,
              unsigned MaxCaseSplits = 8);

  struct JoinResult {
    PairStatus Status = PairStatus::Undecided;
    TermId NormA, NormB;
    /// Guard case splits used (0 for a plain join).
    unsigned CaseSplits = 0;
    std::vector<JoinStep> TraceA, TraceB;
    std::string Note;
  };

  /// Attempts to join \p A and \p B. Traces are collected when the
  /// engine was built with EngineOptions::KeepTrace.
  JoinResult join(TermId A, TermId B);

private:
  JoinResult joinRec(TermId A, TermId B, unsigned Depth,
                     std::vector<std::string> &Splits);
  std::optional<TermId> normalizeTraced(TermId Term,
                                        std::vector<JoinStep> *Trace);
  /// The first undecided if-then-else condition in \p Term, pre-order.
  TermId findSplitCondition(TermId Term) const;
  /// \p Term with every occurrence of \p Cond (and, for a SAME guard,
  /// its argument-swapped twin) replaced by \p Value.
  TermId replaceCondition(TermId Term, TermId Cond, TermId Value) const;
  /// True when \p Term is a ground value: atoms, ints, error, and
  /// constructor applications only.
  bool isValue(TermId Term) const;

  AlgebraContext &Ctx;
  RewriteEngine &Engine;
  unsigned MaxCaseSplits;
};

/// Lint pass `non-left-linear-lhs`: warns, with the repeated variable,
/// on every oriented rule whose left-hand side is not left-linear —
/// the obstruction that blocks a convergence certificate outright.
std::unique_ptr<LintPass> makeNonLeftLinearLhsPass();

/// Lint pass `unjoinable-critical-pair`: surfaces each Unjoinable or
/// Undecided critical pair the certifier finds, caret-located at both
/// participating axioms (one finding per axiom), with the peak term and
/// both reducts in the message.
std::unique_ptr<LintPass> makeUnjoinableCriticalPairPass();

} // namespace algspec

#endif // ALGSPEC_CHECK_CONVERGENCE_H
