//===----------------------------------------------------------------------===//
//
// Part of AlgSpec. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Bounded enumeration and random sampling of ground constructor terms.
///
/// Ground constructor terms are the canonical values of a sort (OpKind
/// documentation). The enumerator feeds the dynamic completeness check,
/// the consistency cross-check, the representation verifier's bounded
/// generator induction, and the model-based tester.
///
//===----------------------------------------------------------------------===//

#ifndef ALGSPEC_CHECK_TERMENUMERATOR_H
#define ALGSPEC_CHECK_TERMENUMERATOR_H

#include "ast/Ids.h"

#include <cstdint>
#include <random>
#include <unordered_map>
#include <vector>

namespace algspec {

class AlgebraContext;

/// Tunables for enumeration.
struct EnumeratorOptions {
  /// Number of distinct atoms inhabiting each Atom (parameter) sort.
  /// The paper's proofs quantify over arbitrary Identifiers; two to three
  /// distinct atoms exercise every SAME branch.
  unsigned AtomUniverse = 2;
  /// Ground Int values used for the builtin Int sort.
  std::vector<int64_t> IntValues = {0, 1, 2};
  /// Hard cap on terms per (sort, depth) — deep user sorts grow
  /// exponentially. Enumeration stops (and reports truncation) past it.
  size_t MaxTermsPerSort = 200000;
};

/// Enumerates ground constructor terms per sort and depth.
class TermEnumerator {
public:
  TermEnumerator(AlgebraContext &Ctx,
                 EnumeratorOptions Options = EnumeratorOptions());

  /// All ground constructor terms of \p Sort with depth <= \p MaxDepth
  /// (a nullary constructor or literal has depth 1). Results are memoized
  /// per (sort, depth).
  const std::vector<TermId> &enumerate(SortId Sort, unsigned MaxDepth);

  /// True when the last enumerate() for this key hit MaxTermsPerSort.
  bool wasTruncated(SortId Sort, unsigned MaxDepth) const;

  /// One uniformly chosen term from enumerate(Sort, MaxDepth); invalid if
  /// the sort is uninhabited at this depth.
  TermId sample(SortId Sort, unsigned MaxDepth, std::mt19937_64 &Rng);

  /// Notifies the enumerator that its context was just truncated (the
  /// replica workers call this from their scratch reset; the caller must
  /// be the context's sole truncator). Entries whose terms were all
  /// created before the cut survive with refreshed generation stamps;
  /// younger entries are dropped. Without this, stale entries are still
  /// caught lazily in enumerate() against generation()/truncateLowWater(),
  /// but surviving entries filled after an earlier cut would be rebuilt
  /// needlessly.
  void onTruncated();

  /// The highest arena mark any cached enumeration was completed at.
  /// The replica workers compare this against their base epoch to decide
  /// whether truncating would destroy cached enumerations worth keeping.
  uint32_t fillHighWater() const { return FillHighWater; }

  const EnumeratorOptions &options() const { return Options; }

private:
  /// One memoized enumeration, stamped like the engine memo: valid while
  /// the generation matches or every term provably survived (FillMark at
  /// or below the truncate low-water mark).
  struct CacheEntry {
    std::vector<TermId> Terms;
    uint32_t FillMark = 0; ///< Context term count when filling finished.
    uint64_t Gen = 0;      ///< Context generation at fill time.
  };

  uint64_t key(SortId Sort, unsigned Depth) const {
    return (static_cast<uint64_t>(Sort.index()) << 32) | Depth;
  }

  AlgebraContext &Ctx;
  EnumeratorOptions Options;
  std::unordered_map<uint64_t, CacheEntry> Cache;
  std::unordered_map<uint64_t, bool> Truncated;
  uint32_t FillHighWater = 0;
};

} // namespace algspec

#endif // ALGSPEC_CHECK_TERMENUMERATOR_H
