//===----------------------------------------------------------------------===//
//
// Part of AlgSpec. MIT license.
//
//===----------------------------------------------------------------------===//

#include "check/ReplicaWorker.h"

#include "ast/AlgebraContext.h"

using namespace algspec;

std::unique_ptr<ReplicaWorker>
ReplicaWorker::create(const AlgebraContext &Main,
                      std::vector<const Spec *> Specs,
                      EngineOptions EngOpts, EnumeratorOptions EnumOpts) {
  auto W = std::make_unique<ReplicaWorker>();
  Result<std::unique_ptr<Replica>> Rep = Replica::create(Main, Specs);
  if (!Rep)
    return W;
  W->Rep = Rep.take();
  // Orientation diagnostics were already reported against the main
  // context; the replica's are identical by construction.
  DiagnosticEngine Diags;
  W->System = std::make_unique<RewriteSystem>(
      RewriteSystem::build(W->Rep->context(), W->Rep->specPointers(), Diags));
  W->Engine =
      std::make_unique<RewriteEngine>(W->Rep->context(), *W->System, EngOpts);
  W->Enum = std::make_unique<TermEnumerator>(W->Rep->context(),
                                             std::move(EnumOpts));
  // Force the engine's lazy one-time work (rule compilation, freeness
  // fixpoint) before marking the base epoch, so none of it lands in a
  // scratch region that resetScratch() would free.
  W->Engine->warmup();
  W->Base = W->Rep->context().markEpoch();
  return W;
}

void ReplicaWorker::resetScratch() {
  if (!Engine)
    return;
  AlgebraContext &Ctx = Rep->context();
  if (Enum->fillHighWater() > Base.NumTerms) {
    // Enumerations cached after the base epoch are worth keeping — the
    // next shard re-reads them. Pin them by moving the base forward.
    Base = Ctx.markEpoch();
  } else {
    Ctx.truncateToEpoch(Base);
    Enum->onTruncated();
  }
  Engine->syncArenaStats();
}

std::unique_ptr<ParallelDriver<ReplicaWorker>>
algspec::makeReplicaDriver(const ParallelOptions &Par,
                           const AlgebraContext &Main,
                           const std::vector<const Spec *> &Specs,
                           EngineOptions EngOpts,
                           EnumeratorOptions EnumOpts) {
  if (resolveJobs(Par) <= 1)
    return nullptr;
  // Probe once on this thread: replication is deterministic, so if the
  // spec set round-trips here it round-trips on every worker.
  if (!Replica::create(Main, Specs))
    return nullptr;
  std::vector<const Spec *> OwnedSpecs = Specs;
  auto Driver = std::make_unique<ParallelDriver<ReplicaWorker>>(
      Par, [&Main, OwnedSpecs = std::move(OwnedSpecs), EngOpts, EnumOpts] {
        return ReplicaWorker::create(Main, OwnedSpecs, EngOpts, EnumOpts);
      });
  // Reset each worker's scratch arena between shards: reusing the
  // replica beats rebuilding it, and truncating beats letting the arena
  // grow with the whole swept space.
  Driver->AfterChunk = [](ReplicaWorker &W) { W.resetScratch(); };
  return Driver;
}
