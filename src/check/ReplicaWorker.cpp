//===----------------------------------------------------------------------===//
//
// Part of AlgSpec. MIT license.
//
//===----------------------------------------------------------------------===//

#include "check/ReplicaWorker.h"

#include "ast/AlgebraContext.h"

using namespace algspec;

std::unique_ptr<ReplicaWorker>
ReplicaWorker::create(const AlgebraContext &Main,
                      std::vector<const Spec *> Specs,
                      EngineOptions EngOpts, EnumeratorOptions EnumOpts) {
  auto W = std::make_unique<ReplicaWorker>();
  Result<std::unique_ptr<Replica>> Rep = Replica::create(Main, Specs);
  if (!Rep)
    return W;
  W->Rep = Rep.take();
  // Orientation diagnostics were already reported against the main
  // context; the replica's are identical by construction.
  DiagnosticEngine Diags;
  W->System = std::make_unique<RewriteSystem>(
      RewriteSystem::build(W->Rep->context(), W->Rep->specPointers(), Diags));
  W->Engine =
      std::make_unique<RewriteEngine>(W->Rep->context(), *W->System, EngOpts);
  W->Enum = std::make_unique<TermEnumerator>(W->Rep->context(),
                                             std::move(EnumOpts));
  return W;
}

std::unique_ptr<ParallelDriver<ReplicaWorker>>
algspec::makeReplicaDriver(const ParallelOptions &Par,
                           const AlgebraContext &Main,
                           const std::vector<const Spec *> &Specs,
                           EngineOptions EngOpts,
                           EnumeratorOptions EnumOpts) {
  if (resolveJobs(Par) <= 1)
    return nullptr;
  // Probe once on this thread: replication is deterministic, so if the
  // spec set round-trips here it round-trips on every worker.
  if (!Replica::create(Main, Specs))
    return nullptr;
  std::vector<const Spec *> OwnedSpecs = Specs;
  return std::make_unique<ParallelDriver<ReplicaWorker>>(
      Par, [&Main, OwnedSpecs = std::move(OwnedSpecs), EngOpts, EnumOpts] {
        return ReplicaWorker::create(Main, OwnedSpecs, EngOpts, EnumOpts);
      });
}
