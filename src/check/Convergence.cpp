//===----------------------------------------------------------------------===//
//
// Part of AlgSpec. MIT license.
//
//===----------------------------------------------------------------------===//

#include "check/Convergence.h"

#include "ast/AlgebraContext.h"
#include "ast/Spec.h"
#include "ast/TermPrinter.h"
#include "check/Lint.h"
#include "check/Unify.h"
#include "rewrite/RewriteSystem.h"
#include "rewrite/Substitution.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

using namespace algspec;

std::string_view algspec::convergenceVerdictName(ConvergenceVerdict V) {
  switch (V) {
  case ConvergenceVerdict::Orthogonal:
    return "orthogonal";
  case ConvergenceVerdict::Convergent:
    return "convergent";
  case ConvergenceVerdict::Unknown:
    return "unknown";
  }
  return "unknown";
}

std::string_view algspec::pairStatusName(PairStatus S) {
  switch (S) {
  case PairStatus::Joined:
    return "joined";
  case PairStatus::JoinedByCases:
    return "joined-by-cases";
  case PairStatus::Unjoinable:
    return "unjoinable";
  case PairStatus::Undecided:
    return "undecided";
  }
  return "undecided";
}

//===----------------------------------------------------------------------===//
// Term helpers (shared shapes with the consistency checker's sweep)
//===----------------------------------------------------------------------===//

/// Collects every position (path of child indices) in \p Term whose
/// subterm is an operation application — the candidate redex positions
/// for critical-pair overlap.
static void collectOpPositions(const AlgebraContext &Ctx, TermId Term,
                               std::vector<uint32_t> &Path,
                               std::vector<std::vector<uint32_t>> &Out) {
  if (Ctx.node(Term).Kind != TermKind::Op)
    return;
  Out.push_back(Path);
  auto Children = Ctx.children(Term);
  for (uint32_t I = 0; I != Children.size(); ++I) {
    Path.push_back(I);
    collectOpPositions(Ctx, Children[I], Path, Out);
    Path.pop_back();
  }
}

static std::vector<std::vector<uint32_t>>
nonVariablePositions(const AlgebraContext &Ctx, TermId Term) {
  std::vector<uint32_t> Path;
  std::vector<std::vector<uint32_t>> Out;
  collectOpPositions(Ctx, Term, Path, Out);
  return Out;
}

static TermId subtermAt(const AlgebraContext &Ctx, TermId Term,
                        const std::vector<uint32_t> &Pos) {
  for (uint32_t Step : Pos)
    Term = Ctx.children(Term)[Step];
  return Term;
}

static TermId replaceAt(AlgebraContext &Ctx, TermId Term,
                        const std::vector<uint32_t> &Pos, TermId Repl,
                        size_t Depth = 0) {
  if (Depth == Pos.size())
    return Repl;
  // Copy the children out: rebuilding below creates terms, which may
  // reallocate the child pool under a live span.
  auto Span = Ctx.children(Term);
  std::vector<TermId> Children(Span.begin(), Span.end());
  Children[Pos[Depth]] =
      replaceAt(Ctx, Children[Pos[Depth]], Pos, Repl, Depth + 1);
  return Ctx.makeOp(Ctx.node(Term).Op, Children);
}

/// The first variable repeated in \p Term (pre-order); invalid if the
/// term is linear.
static VarId firstRepeatedVar(const AlgebraContext &Ctx, TermId Term) {
  std::unordered_set<VarId> Seen;
  VarId Repeated;
  auto Walk = [&](auto &&Self, TermId T) -> void {
    if (Repeated.isValid())
      return;
    const TermNode &Node = Ctx.node(T);
    if (Node.Kind == TermKind::Var) {
      if (!Seen.insert(Node.Var).second)
        Repeated = Node.Var;
      return;
    }
    for (TermId Child : Ctx.children(T))
      Self(Self, Child);
  };
  Walk(Walk, Term);
  return Repeated;
}

static void collectOpsInTerm(const AlgebraContext &Ctx, TermId Term,
                             std::unordered_set<OpId> &Out) {
  const TermNode &Node = Ctx.node(Term);
  if (Node.Kind == TermKind::Op)
    Out.insert(Node.Op);
  for (TermId Child : Ctx.children(Term))
    collectOpsInTerm(Ctx, Child, Out);
}

//===----------------------------------------------------------------------===//
// GuardJoiner
//===----------------------------------------------------------------------===//

GuardJoiner::GuardJoiner(AlgebraContext &Ctx, RewriteEngine &Engine,
                         unsigned MaxCaseSplits)
    : Ctx(Ctx), Engine(Engine), MaxCaseSplits(MaxCaseSplits) {}

std::optional<TermId>
GuardJoiner::normalizeTraced(TermId Term, std::vector<JoinStep> *Trace) {
  bool Collect = Trace && Engine.options().KeepTrace;
  if (Collect)
    Engine.clearTrace();
  Result<TermId> Normal = Engine.normalize(Term);
  if (!Normal)
    return std::nullopt;
  if (Collect) {
    for (const TraceStep &Step : Engine.trace())
      Trace->push_back({Step.Before, Step.After,
                        Step.AppliedRule ? Step.AppliedRule->SpecName
                                         : std::string(),
                        Step.AppliedRule ? Step.AppliedRule->AxiomNumber
                                         : 0u});
    Engine.clearTrace();
  }
  return *Normal;
}

TermId GuardJoiner::findSplitCondition(TermId Term) const {
  const TermNode &Node = Ctx.node(Term);
  if (Node.Kind != TermKind::Op)
    return TermId();
  if (Ctx.op(Node.Op).Builtin == BuiltinOp::Ite) {
    // A surviving if-then-else has an undecided condition (a decided one
    // would have selected its branch during normalization). Prefer a
    // split nested inside the condition itself: it is smaller.
    TermId Cond = Ctx.children(Term)[0];
    TermId Inner = findSplitCondition(Cond);
    return Inner.isValid() ? Inner : Cond;
  }
  for (TermId Child : Ctx.children(Term)) {
    TermId Found = findSplitCondition(Child);
    if (Found.isValid())
      return Found;
  }
  return TermId();
}

TermId GuardJoiner::replaceCondition(TermId Term, TermId Cond,
                                     TermId Value) const {
  // A SAME guard is symmetric; replace the argument-swapped twin too.
  TermId Swapped;
  const TermNode &CondNode = Ctx.node(Cond);
  if (CondNode.Kind == TermKind::Op &&
      Ctx.op(CondNode.Op).Builtin == BuiltinOp::Same) {
    auto Args = Ctx.children(Cond);
    TermId A0 = Args[0], A1 = Args[1];
    if (A0 != A1)
      Swapped = Ctx.makeOp(CondNode.Op, {A1, A0});
  }
  auto Rec = [&](auto &&Self, TermId T) -> TermId {
    if (T == Cond || (Swapped.isValid() && T == Swapped))
      return Value;
    const TermNode &Node = Ctx.node(T);
    if (Node.Kind != TermKind::Op)
      return T;
    auto Span = Ctx.children(T);
    std::vector<TermId> Children(Span.begin(), Span.end());
    bool Changed = false;
    for (TermId &Child : Children) {
      TermId New = Self(Self, Child);
      Changed |= New != Child;
      Child = New;
    }
    // makeOp re-applies structural error strictness, so substituting
    // error for a condition collapses the enclosing if-then-else.
    return Changed ? Ctx.makeOp(Node.Op, Children) : T;
  };
  return Rec(Rec, Term);
}

bool GuardJoiner::isValue(TermId Term) const {
  const TermNode &Node = Ctx.node(Term);
  switch (Node.Kind) {
  case TermKind::Error:
  case TermKind::Atom:
  case TermKind::Int:
    return true;
  case TermKind::Var:
    return false;
  case TermKind::Op:
    break;
  }
  if (!Ctx.op(Node.Op).isConstructor())
    return false;
  for (TermId Child : Ctx.children(Term))
    if (!isValue(Child))
      return false;
  return true;
}

GuardJoiner::JoinResult GuardJoiner::join(TermId A, TermId B) {
  JoinResult R;
  std::optional<TermId> NA = normalizeTraced(A, &R.TraceA);
  std::optional<TermId> NB = normalizeTraced(B, &R.TraceB);
  if (!NA || !NB) {
    R.Status = PairStatus::Undecided;
    R.Note = "normalization ran out of fuel";
    return R;
  }
  R.NormA = *NA;
  R.NormB = *NB;
  if (*NA == *NB) {
    R.Status = PairStatus::Joined;
    return R;
  }
  std::vector<std::string> Splits;
  JoinResult Rec = joinRec(*NA, *NB, 0, Splits);
  R.Status = Rec.Status == PairStatus::Joined ? PairStatus::JoinedByCases
                                              : Rec.Status;
  R.CaseSplits = Rec.CaseSplits;
  R.Note = Rec.Note;
  return R;
}

GuardJoiner::JoinResult GuardJoiner::joinRec(TermId A, TermId B, unsigned Depth,
                                         std::vector<std::string> &Splits) {
  JoinResult R;
  R.NormA = A;
  R.NormB = B;
  if (A == B) {
    R.Status = PairStatus::Joined;
    return R;
  }
  TermId Cond = findSplitCondition(A);
  if (!Cond.isValid())
    Cond = findSplitCondition(B);
  // No Bool-valued variable is split implicitly; only guard conditions
  // of surviving if-then-else nodes drive the case analysis.
  if (!Cond.isValid()) {
    if (isValue(A) && isValue(B)) {
      R.Status = PairStatus::Unjoinable;
      R.Note = "the reducts are distinct ground values";
    } else {
      R.Status = PairStatus::Undecided;
      R.Note = "distinct open normal forms with no guard to split on";
    }
    return R;
  }
  if (Depth >= MaxCaseSplits) {
    R.Status = PairStatus::Undecided;
    R.Note = "guard case-split budget exhausted";
    return R;
  }

  // Is the condition a SAME guard whose arguments the true case can
  // bind via unification? Only when unification can speak for semantic
  // equality: a clash between value-shaped arguments refutes the case,
  // while unreduced defined operations make unification inconclusive.
  const TermNode &CondNode = Ctx.node(Cond);
  bool IsSame = CondNode.Kind == TermKind::Op &&
                Ctx.op(CondNode.Op).Builtin == BuiltinOp::Same;
  TermId SameL, SameR;
  if (IsSame) {
    auto Args = Ctx.children(Cond);
    SameL = Args[0];
    SameR = Args[1];
  }

  unsigned MaxBranchSplits = 0;
  struct Branch {
    TermId Value;
    const char *Label;
  };
  Branch Branches[3] = {{Ctx.trueTerm(), "true"},
                        {Ctx.falseTerm(), "false"},
                        {Ctx.makeError(Ctx.sortOf(Cond)), "error"}};
  for (const Branch &Br : Branches) {
    std::optional<Substitution> Mgu;
    if (IsSame && Br.Value == Ctx.trueTerm()) {
      Mgu = unifyTerms(Ctx, SameL, SameR);
      // A clash between ground values refutes SAME(...) = true.
      if (!Mgu && isValue(SameL) && isValue(SameR))
        continue;
    }
    if (IsSame && Br.Value == Ctx.falseTerm() && SameL == SameR)
      continue; // SAME(t, t) is never false.

    TermId BA = replaceCondition(A, Cond, Br.Value);
    TermId BB = replaceCondition(B, Cond, Br.Value);
    if (Mgu) {
      BA = applySubstitution(Ctx, BA, *Mgu);
      BB = applySubstitution(Ctx, BB, *Mgu);
    }
    std::optional<TermId> NA = normalizeTraced(BA, nullptr);
    std::optional<TermId> NB = normalizeTraced(BB, nullptr);
    if (!NA || !NB) {
      R.Status = PairStatus::Undecided;
      R.Note = "normalization ran out of fuel during guard case analysis";
      return R;
    }
    Splits.push_back(printTerm(Ctx, Cond) + " = " + Br.Label);
    JoinResult Sub = joinRec(*NA, *NB, Depth + 1, Splits);
    if (Sub.Status != PairStatus::Joined) {
      R.Status = Sub.Status == PairStatus::Unjoinable
                     ? PairStatus::Unjoinable
                     : PairStatus::Undecided;
      R.NormA = Sub.NormA;
      R.NormB = Sub.NormB;
      R.Note = "under " + Splits[0];
      for (size_t I = 1; I != Splits.size(); ++I)
        R.Note += ", " + Splits[I];
      R.Note += ": " + Sub.Note;
      return R;
    }
    MaxBranchSplits = std::max(MaxBranchSplits, 1 + Sub.CaseSplits);
    Splits.pop_back();
  }
  R.Status = PairStatus::Joined;
  R.CaseSplits = MaxBranchSplits;
  return R;
}

//===----------------------------------------------------------------------===//
// Certification
//===----------------------------------------------------------------------===//

namespace {
/// Rule-set facts the per-spec classification reads.
struct RuleSetAnalysis {
  std::vector<Rule> const *Rules = nullptr;
  /// Rule index -> every operation its sides mention (head included).
  std::vector<std::vector<OpId>> RuleOps;
  /// Head op -> rule indices.
  std::unordered_map<OpId, std::vector<size_t>> RulesByHead;
  /// Rule index -> repeated LHS variable name (empty when linear).
  std::vector<std::string> RepeatedVar;
};
} // namespace

static RuleSetAnalysis analyzeRules(const AlgebraContext &Ctx,
                                    const std::vector<Rule> &Rules) {
  RuleSetAnalysis A;
  A.Rules = &Rules;
  A.RuleOps.resize(Rules.size());
  A.RepeatedVar.resize(Rules.size());
  for (size_t I = 0; I != Rules.size(); ++I) {
    const Rule &R = Rules[I];
    std::unordered_set<OpId> Ops;
    collectOpsInTerm(Ctx, R.Lhs, Ops);
    collectOpsInTerm(Ctx, R.Rhs, Ops);
    A.RuleOps[I].assign(Ops.begin(), Ops.end());
    A.RulesByHead[R.HeadOp].push_back(I);
    VarId Repeated = firstRepeatedVar(Ctx, R.Lhs);
    if (Repeated.isValid())
      A.RepeatedVar[I] = std::string(Ctx.str(Ctx.var(Repeated).Name));
  }
  return A;
}

/// The indices of every rule reachable from \p Seeds: a rule is relevant
/// when its head operation is mentioned by a seed or by another relevant
/// rule's sides.
static std::vector<size_t>
relevantRules(const RuleSetAnalysis &A, std::vector<OpId> Seeds) {
  std::unordered_set<OpId> SeenOps(Seeds.begin(), Seeds.end());
  std::vector<OpId> Work(Seeds.begin(), Seeds.end());
  std::unordered_set<size_t> InSet;
  while (!Work.empty()) {
    OpId Op = Work.back();
    Work.pop_back();
    auto It = A.RulesByHead.find(Op);
    if (It == A.RulesByHead.end())
      continue;
    for (size_t RI : It->second) {
      if (!InSet.insert(RI).second)
        continue;
      for (OpId Next : A.RuleOps[RI])
        if (SeenOps.insert(Next).second)
          Work.push_back(Next);
    }
  }
  std::vector<size_t> Out(InSet.begin(), InSet.end());
  std::sort(Out.begin(), Out.end());
  return Out;
}

static SourceLoc axiomLoc(const Spec *S, unsigned AxiomNumber) {
  if (!S || AxiomNumber == 0 || AxiomNumber > S->axioms().size())
    return SourceLoc();
  return S->axioms()[AxiomNumber - 1].Loc;
}

const SpecConvergence *
ConvergenceReport::specVerdict(std::string_view SpecName) const {
  for (const SpecConvergence &SC : PerSpec)
    if (SC.SpecName == SpecName)
      return &SC;
  return nullptr;
}

std::string ConvergenceReport::render(const AlgebraContext &Ctx) const {
  std::string Out;
  for (const SpecConvergence &SC : PerSpec) {
    Out += "convergence of '" + SC.SpecName + "': ";
    switch (SC.Verdict) {
    case ConvergenceVerdict::Orthogonal:
      Out += "orthogonal (left-linear, no critical pairs, terminating)";
      break;
    case ConvergenceVerdict::Convergent: {
      Out += "convergent (terminating; " +
             std::to_string(SC.PairsExamined) + " critical pair" +
             (SC.PairsExamined == 1 ? "" : "s") + " joined";
      if (SC.PairsByCases)
        Out += ", " + std::to_string(SC.PairsByCases) +
               " by guard case analysis";
      Out += ")";
      break;
    }
    case ConvergenceVerdict::Unknown:
      Out += "unknown — " + SC.Obstruction;
      break;
    }
    Out += '\n';
  }
  for (const CriticalPair &P : Pairs) {
    if (P.Status == PairStatus::Joined ||
        P.Status == PairStatus::JoinedByCases)
      continue;
    Out += std::string(pairStatusName(P.Status)) + " critical pair: axioms " +
           std::to_string(P.AxiomA) + " of '" + P.SpecA + "' and " +
           std::to_string(P.AxiomB) + " of '" + P.SpecB + "' rewrite " +
           printTerm(Ctx, P.Peak) + " to " + printTerm(Ctx, P.NormA) +
           " vs " + printTerm(Ctx, P.NormB) + "\n";
  }
  for (const std::string &Caveat : Caveats) {
    Out += "note: ";
    Out += Caveat;
    Out += '\n';
  }
  return Out;
}

ConvergenceReport
algspec::certifyConvergence(AlgebraContext &Ctx,
                            const std::vector<const Spec *> &Specs,
                            const ConvergenceOptions &Options) {
  ConvergenceReport Report;

  DiagnosticEngine Diags;
  RewriteSystem System = RewriteSystem::build(Ctx, Specs, Diags);
  bool OrientationSkipped = Diags.hasErrors();
  Report.OrientationComplete = !OrientationSkipped;
  if (OrientationSkipped)
    Report.Caveats.push_back(
        "some axioms could not be oriented into rules and were skipped; "
        "no confluent verdict is claimed");
  Report.Termination = proveTermination(Ctx, Specs);

  // A tight probe budget: an unprovable (possibly divergent) rule set
  // must not stall certification — an unfinished normalization just
  // leaves its pair undecided.
  EngineOptions EO = Options.Engine;
  EO.MaxSteps = std::min<uint64_t>(EO.MaxSteps, 4096);
  EO.MaxDepth = std::min<unsigned>(EO.MaxDepth, 512);
  if (Options.KeepCertificates) {
    EO.KeepTrace = true;
    EO.Memoize = false; // A memo hit would swallow certificate steps.
  }
  RewriteEngine Engine(Ctx, System, EO);
  GuardJoiner Joiner(Ctx, Engine, Options.MaxCaseSplits);

  const std::vector<Rule> &Rules = System.rules();
  RuleSetAnalysis Analysis = analyzeRules(Ctx, Rules);

  std::unordered_map<std::string_view, const Spec *> SpecByName;
  for (const Spec *S : Specs)
    SpecByName.emplace(S->name(), S);

  for (size_t I = 0; I != Rules.size(); ++I) {
    if (Analysis.RepeatedVar[I].empty())
      continue;
    const Rule &R = Rules[I];
    auto It = SpecByName.find(R.SpecName);
    Report.NonLeftLinear.push_back(
        {R.SpecName, R.AxiomNumber,
         axiomLoc(It == SpecByName.end() ? nullptr : It->second,
                  R.AxiomNumber),
         Analysis.RepeatedVar[I]});
  }

  // Critical pairs, enumerated exactly as in the consistency sweep:
  // for every rule A, every operation position p of A's left-hand side,
  // and every rule B (renamed apart) unifying with A.Lhs|p, the peak
  // σ(A.Lhs) rewrites by A at the root and by B at p. Root overlaps are
  // symmetric and visited once per unordered pair. Pairs of a rule with
  // itself at the root are trivial and skipped.
  std::vector<std::vector<size_t>> PairRules; // parallel to Report.Pairs
  for (size_t AI = 0; AI != Rules.size(); ++AI) {
    const Rule &RuleA = Rules[AI];
    // A non-left-linear left-hand side breaks unification-based overlap
    // analysis (the repeated variable encodes a semantic equality);
    // pairs involving such a rule are not enumerated — the rule itself
    // is already a certification obstruction.
    if (!Analysis.RepeatedVar[AI].empty())
      continue;
    std::vector<std::vector<uint32_t>> Positions =
        nonVariablePositions(Ctx, RuleA.Lhs);
    for (size_t BI = 0; BI != Rules.size(); ++BI) {
      if (!Analysis.RepeatedVar[BI].empty())
        continue;
      const Rule &RuleB = Rules[BI];
      auto [LhsB, RhsB] = renameRuleApart(Ctx, RuleB.Lhs, RuleB.Rhs);
      for (const std::vector<uint32_t> &Pos : Positions) {
        bool Root = Pos.empty();
        if (Root && BI <= AI)
          continue;
        TermId Sub = subtermAt(Ctx, RuleA.Lhs, Pos);
        if (Ctx.node(Sub).Op != RuleB.HeadOp)
          continue;
        std::optional<Substitution> Mgu = unifyTerms(Ctx, Sub, LhsB);
        if (!Mgu)
          continue;

        CriticalPair P;
        P.SpecA = RuleA.SpecName;
        P.SpecB = RuleB.SpecName;
        P.AxiomA = RuleA.AxiomNumber;
        P.AxiomB = RuleB.AxiomNumber;
        auto ItA = SpecByName.find(P.SpecA);
        auto ItB = SpecByName.find(P.SpecB);
        P.LocA = axiomLoc(ItA == SpecByName.end() ? nullptr : ItA->second,
                          P.AxiomA);
        P.LocB = axiomLoc(ItB == SpecByName.end() ? nullptr : ItB->second,
                          P.AxiomB);
        P.Peak = applySubstitution(Ctx, RuleA.Lhs, *Mgu);
        P.ReductA = applySubstitution(Ctx, RuleA.Rhs, *Mgu);
        P.ReductB = applySubstitution(
            Ctx, replaceAt(Ctx, RuleA.Lhs, Pos, RhsB), *Mgu);

        GuardJoiner::JoinResult J = Joiner.join(P.ReductA, P.ReductB);
        P.Status = J.Status;
        P.NormA = J.NormA;
        P.NormB = J.NormB;
        P.CaseSplits = J.CaseSplits;
        P.TraceA = std::move(J.TraceA);
        P.TraceB = std::move(J.TraceB);
        P.Note = std::move(J.Note);
        Report.Pairs.push_back(std::move(P));
        PairRules.push_back({AI, BI});
      }
    }
  }

  bool AnyByCases = false;
  for (const CriticalPair &P : Report.Pairs)
    AnyByCases |= P.Status == PairStatus::JoinedByCases;
  if (AnyByCases)
    Report.Caveats.push_back(
        "some critical pairs joined only under guard case analysis, "
        "which assumes each split condition denotes a value (true, "
        "false, or error); the confluent verdict is ground convergence "
        "under that assumption");

  // Classifies the rule subset \p Indices (with \p Contributing spec
  // names) into a verdict; used per spec and for the whole set.
  auto classify = [&](const std::vector<size_t> &Indices,
                      const std::vector<std::string> &Contributing,
                      SpecConvergence &Out) {
    std::unordered_set<size_t> InSet(Indices.begin(), Indices.end());
    Out.LeftLinear = true;
    for (size_t RI : Indices)
      if (!Analysis.RepeatedVar[RI].empty()) {
        Out.LeftLinear = false;
        if (Out.Obstruction.empty())
          Out.Obstruction = "axiom " +
                            std::to_string(Rules[RI].AxiomNumber) +
                            " of '" + Rules[RI].SpecName +
                            "' repeats variable '" +
                            Analysis.RepeatedVar[RI] +
                            "' on its left-hand side (not left-linear)";
      }

    Out.TerminationProved = true;
    std::string TermObstruction;
    for (const std::string &Name : Contributing) {
      if (Report.Termination.provedFor(Name))
        continue;
      Out.TerminationProved = false;
      if (!TermObstruction.empty())
        continue;
      TermObstruction = "termination of '" + Name + "' is not proved";
      for (const TerminationFailure &F : Report.Termination.Failures)
        if (F.SpecName == Name) {
          TermObstruction += " (axiom " + std::to_string(F.AxiomNumber) +
                             ": " + F.Reason + ")";
          break;
        }
    }

    std::string PairObstruction;
    for (size_t PI = 0; PI != Report.Pairs.size(); ++PI) {
      if (!InSet.count(PairRules[PI][0]) || !InSet.count(PairRules[PI][1]))
        continue;
      const CriticalPair &P = Report.Pairs[PI];
      ++Out.PairsExamined;
      if (P.Status == PairStatus::Joined)
        ++Out.PairsJoined;
      else if (P.Status == PairStatus::JoinedByCases)
        ++Out.PairsByCases;
      else if (PairObstruction.empty())
        PairObstruction =
            "critical pair of axiom " + std::to_string(P.AxiomA) +
            " of '" + P.SpecA + "' and axiom " + std::to_string(P.AxiomB) +
            " of '" + P.SpecB + "' is " +
            std::string(pairStatusName(P.Status)) + ": " +
            printTerm(Ctx, P.Peak) + " rewrites to " +
            printTerm(Ctx, P.NormA) + " vs " + printTerm(Ctx, P.NormB);
    }

    if (OrientationSkipped) {
      Out.Verdict = ConvergenceVerdict::Unknown;
      Out.Obstruction =
          "some axioms could not be oriented into rules and were skipped";
      return;
    }
    if (!Out.LeftLinear) {
      Out.Verdict = ConvergenceVerdict::Unknown;
      return;
    }
    Out.Obstruction.clear();
    if (!Out.TerminationProved) {
      Out.Verdict = ConvergenceVerdict::Unknown;
      Out.Obstruction = TermObstruction;
      return;
    }
    if (!PairObstruction.empty()) {
      Out.Verdict = ConvergenceVerdict::Unknown;
      Out.Obstruction = PairObstruction;
      return;
    }
    Out.Verdict = Out.PairsExamined == 0 ? ConvergenceVerdict::Orthogonal
                                         : ConvergenceVerdict::Convergent;
  };

  for (const Spec *S : Specs) {
    SpecConvergence SC;
    SC.SpecName = S->name();
    // Seeds: the spec's own operations plus every operation its axioms
    // mention (Stack's axioms call Array's operations).
    std::unordered_set<OpId> SeedSet(S->operations().begin(),
                                     S->operations().end());
    for (const Axiom &Ax : S->axioms()) {
      collectOpsInTerm(Ctx, Ax.Lhs, SeedSet);
      collectOpsInTerm(Ctx, Ax.Rhs, SeedSet);
    }
    std::vector<size_t> Indices = relevantRules(
        Analysis, std::vector<OpId>(SeedSet.begin(), SeedSet.end()));
    std::unordered_set<std::string> ContribSet;
    std::vector<std::string> Contributing;
    ContribSet.insert(S->name());
    Contributing.push_back(S->name());
    for (size_t RI : Indices)
      if (ContribSet.insert(Rules[RI].SpecName).second)
        Contributing.push_back(Rules[RI].SpecName);
    std::sort(Contributing.begin() + 1, Contributing.end());
    classify(Indices, Contributing, SC);
    Report.PerSpec.push_back(std::move(SC));
  }

  // Whole-set verdict: all rules, all specs contributing.
  SpecConvergence All;
  std::vector<size_t> AllIndices(Rules.size());
  for (size_t I = 0; I != Rules.size(); ++I)
    AllIndices[I] = I;
  std::vector<std::string> AllNames;
  for (const Spec *S : Specs)
    AllNames.push_back(S->name());
  classify(AllIndices, AllNames, All);
  Report.Overall = All.Verdict;
  Report.Obstruction = All.Obstruction;
  return Report;
}

//===----------------------------------------------------------------------===//
// Lint passes
//===----------------------------------------------------------------------===//

namespace {

/// `non-left-linear-lhs`: the certification-blocking variant of the
/// stylistic non-left-linear rule — it fires only on axioms that orient
/// into rewrite rules (a non-rule axiom never reaches the certifier).
class NonLeftLinearLhsPass : public LintPass {
public:
  std::string_view name() const override { return "non-left-linear-lhs"; }
  std::string_view description() const override {
    return "rules whose repeated left-hand-side variables block the "
           "convergence certificate";
  }

  void run(LintContext &LC) override {
    AlgebraContext &Ctx = LC.context();
    DiagnosticEngine Diags;
    RewriteSystem System =
        RewriteSystem::build(Ctx, {&LC.spec()}, Diags);
    for (const Rule &R : System.rules()) {
      VarId Repeated = firstRepeatedVar(Ctx, R.Lhs);
      if (!Repeated.isValid())
        continue;
      std::string Name(Ctx.str(Ctx.var(Repeated).Name));
      auto It = std::find_if(
          LC.spec().axioms().begin(), LC.spec().axioms().end(),
          [&](const Axiom &Ax) { return Ax.Number == R.AxiomNumber; });
      SourceLoc Loc =
          It == LC.spec().axioms().end() ? SourceLoc() : It->Loc;
      LC.report(name(), DiagKind::Warning, Loc,
                "axiom " + std::to_string(R.AxiomNumber) +
                    ": left-hand side repeats variable '" + Name +
                    "', so the rule is not left-linear and the spec "
                    "cannot be certified orthogonal or convergent",
                "please bind a fresh variable and compare with SAME(" +
                    Name + ", ...) in the right-hand side");
    }
  }
};

/// `unjoinable-critical-pair`: convergence-backed; surfaces every
/// unjoinable pair the certifier found, caret-located at each
/// participating axiom of the spec under analysis.
class UnjoinableCriticalPairPass : public LintPass {
public:
  std::string_view name() const override {
    return "unjoinable-critical-pair";
  }
  std::string_view description() const override {
    return "critical pairs whose reducts normalize to distinct values";
  }

  void run(LintContext &LC) override {
    const std::vector<const Spec *> &Specs = LC.allSpecs();
    // One certification per workspace: the report is cached across the
    // per-spec invocations of a single lint run.
    if (CachedSpecs != Specs || CachedCtx != &LC.context()) {
      ConvergenceOptions Options;
      Options.KeepCertificates = false;
      Cached = certifyConvergence(LC.context(), Specs, Options);
      CachedSpecs = Specs;
      CachedCtx = &LC.context();
    }
    const AlgebraContext &Ctx = LC.context();
    for (const CriticalPair &P : Cached.Pairs) {
      if (P.Status != PairStatus::Unjoinable)
        continue;
      std::string Message =
          "axioms " + std::to_string(P.AxiomA) + " of '" + P.SpecA +
          "' and " + std::to_string(P.AxiomB) + " of '" + P.SpecB +
          "' form an unjoinable critical pair: " + printTerm(Ctx, P.Peak) +
          " rewrites to both " + printTerm(Ctx, P.NormA) + " and " +
          printTerm(Ctx, P.NormB);
      bool SameAxiom = P.SpecA == P.SpecB && P.AxiomA == P.AxiomB;
      if (P.SpecA == LC.spec().name())
        LC.report(name(), DiagKind::Warning, P.LocA, Message);
      if (P.SpecB == LC.spec().name() && !SameAxiom)
        LC.report(name(), DiagKind::Warning, P.LocB, Message);
    }
  }

private:
  std::vector<const Spec *> CachedSpecs;
  const AlgebraContext *CachedCtx = nullptr;
  ConvergenceReport Cached;
};

} // namespace

std::unique_ptr<LintPass> algspec::makeNonLeftLinearLhsPass() {
  return std::make_unique<NonLeftLinearLhsPass>();
}

std::unique_ptr<LintPass> algspec::makeUnjoinableCriticalPairPass() {
  return std::make_unique<UnjoinableCriticalPairPass>();
}
