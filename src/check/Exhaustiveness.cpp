//===----------------------------------------------------------------------===//
//
// Part of AlgSpec. MIT license.
//
//===----------------------------------------------------------------------===//

#include "check/Exhaustiveness.h"

#include "ast/AlgebraContext.h"
#include "ast/Spec.h"
#include "ast/TermPrinter.h"
#include "check/Lint.h"
#include "rewrite/PatternMatrix.h"
#include "rewrite/RewriteSystem.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

using namespace algspec;

std::string_view algspec::coverageVerdictName(CoverageVerdict V) {
  switch (V) {
  case CoverageVerdict::Complete:
    return "complete";
  case CoverageVerdict::Unknown:
    return "unknown";
  }
  return "unknown";
}

//===----------------------------------------------------------------------===//
// Term and closure helpers (shared shapes with the convergence certifier)
//===----------------------------------------------------------------------===//

static void collectOpsInTerm(const AlgebraContext &Ctx, TermId Term,
                             std::unordered_set<OpId> &Out) {
  const TermNode &Node = Ctx.node(Term);
  if (Node.Kind == TermKind::Op)
    Out.insert(Node.Op);
  for (TermId Child : Ctx.children(Term))
    collectOpsInTerm(Ctx, Child, Out);
}

static SourceLoc axiomLoc(const Spec *S, unsigned AxiomNumber) {
  if (!S || AxiomNumber == 0 || AxiomNumber > S->axioms().size())
    return SourceLoc();
  return S->axioms()[AxiomNumber - 1].Loc;
}

namespace {
/// Head index over one rule set, for closure computation.
struct RuleIndexes {
  /// Rule index -> every operation its sides mention (head included).
  std::vector<std::vector<OpId>> RuleOps;
  /// Head op -> rule indices.
  std::unordered_map<OpId, std::vector<size_t>> RulesByHead;
};
} // namespace

static RuleIndexes indexRules(const AlgebraContext &Ctx,
                              const std::vector<Rule> &Rules) {
  RuleIndexes A;
  A.RuleOps.resize(Rules.size());
  for (size_t I = 0; I != Rules.size(); ++I) {
    const Rule &R = Rules[I];
    std::unordered_set<OpId> Ops;
    collectOpsInTerm(Ctx, R.Lhs, Ops);
    collectOpsInTerm(Ctx, R.Rhs, Ops);
    A.RuleOps[I].assign(Ops.begin(), Ops.end());
    A.RulesByHead[R.HeadOp].push_back(I);
  }
  return A;
}

/// The indices of every rule reachable from \p Seeds (a rule is relevant
/// when its head operation is mentioned by a seed or by another relevant
/// rule's sides) plus every operation seen along the way. Both outputs
/// are sorted for determinism.
static void ruleClosure(const RuleIndexes &A, std::vector<OpId> Seeds,
                        std::vector<size_t> &RuleIndices,
                        std::vector<OpId> &OpsSeen) {
  std::unordered_set<OpId> SeenOps(Seeds.begin(), Seeds.end());
  std::vector<OpId> Work(Seeds.begin(), Seeds.end());
  std::unordered_set<size_t> InSet;
  while (!Work.empty()) {
    OpId Op = Work.back();
    Work.pop_back();
    auto It = A.RulesByHead.find(Op);
    if (It == A.RulesByHead.end())
      continue;
    for (size_t RI : It->second) {
      if (!InSet.insert(RI).second)
        continue;
      for (OpId Next : A.RuleOps[RI])
        if (SeenOps.insert(Next).second)
          Work.push_back(Next);
    }
  }
  RuleIndices.assign(InSet.begin(), InSet.end());
  std::sort(RuleIndices.begin(), RuleIndices.end());
  OpsSeen.assign(SeenOps.begin(), SeenOps.end());
  std::sort(OpsSeen.begin(), OpsSeen.end());
}

//===----------------------------------------------------------------------===//
// Guard decidability
//===----------------------------------------------------------------------===//

/// The argument sort of the first SAME application in \p Term whose
/// compared sort is not freely generated (invalid when there is none).
/// On constructor-ground arguments every other SAME decides natively, so
/// these are the only guards that can strand an if-then-else in a normal
/// form.
static SortId findUndecidedSame(const AlgebraContext &Ctx,
                                const std::vector<bool> &FreeSorts,
                                TermId Term) {
  const TermNode &Node = Ctx.node(Term);
  if (Node.Kind == TermKind::Op &&
      Ctx.op(Node.Op).Builtin == BuiltinOp::Same) {
    SortId Arg = Ctx.sortOf(Ctx.children(Term)[0]);
    if (Arg.index() >= FreeSorts.size() || !FreeSorts[Arg.index()])
      return Arg;
  }
  for (TermId Child : Ctx.children(Term)) {
    SortId Found = findUndecidedSame(Ctx, FreeSorts, Child);
    if (Found.isValid())
      return Found;
  }
  return SortId();
}

// The split-condition search and condition substitution mirror
// GuardJoiner's private helpers (check/Convergence.cpp): the probe needs
// the same notion of an undecided guard and the same SAME-symmetric
// replacement.

static TermId findSplitCondition(const AlgebraContext &Ctx, TermId Term) {
  const TermNode &Node = Ctx.node(Term);
  if (Node.Kind != TermKind::Op)
    return TermId();
  if (Ctx.op(Node.Op).Builtin == BuiltinOp::Ite) {
    // A surviving if-then-else has an undecided condition (a decided one
    // would have selected its branch during normalization). Prefer a
    // split nested inside the condition itself: it is smaller.
    TermId Cond = Ctx.children(Term)[0];
    TermId Inner = findSplitCondition(Ctx, Cond);
    return Inner.isValid() ? Inner : Cond;
  }
  for (TermId Child : Ctx.children(Term)) {
    TermId Found = findSplitCondition(Ctx, Child);
    if (Found.isValid())
      return Found;
  }
  return TermId();
}

static TermId replaceCondition(AlgebraContext &Ctx, TermId Term, TermId Cond,
                               TermId Value) {
  // A SAME guard is symmetric; replace the argument-swapped twin too.
  TermId Swapped;
  const TermNode &CondNode = Ctx.node(Cond);
  if (CondNode.Kind == TermKind::Op &&
      Ctx.op(CondNode.Op).Builtin == BuiltinOp::Same) {
    auto Args = Ctx.children(Cond);
    TermId A0 = Args[0], A1 = Args[1];
    if (A0 != A1)
      Swapped = Ctx.makeOp(CondNode.Op, {A1, A0});
  }
  auto Rec = [&](auto &&Self, TermId T) -> TermId {
    if (T == Cond || (Swapped.isValid() && T == Swapped))
      return Value;
    const TermNode &Node = Ctx.node(T);
    if (Node.Kind != TermKind::Op)
      return T;
    auto Span = Ctx.children(T);
    std::vector<TermId> Children(Span.begin(), Span.end());
    bool Changed = false;
    for (TermId &Child : Children) {
      TermId New = Self(Self, Child);
      Changed |= New != Child;
      Child = New;
    }
    // makeOp re-applies structural error strictness, so substituting
    // error for a condition collapses the enclosing if-then-else.
    return Changed ? Ctx.makeOp(Node.Op, Children) : T;
  };
  return Rec(Rec, Term);
}

namespace {

/// Layer-2 guard analysis: symbolically probes the right-hand sides the
/// syntactic scan flagged (those mentioning SAME over a non-free sort),
/// normalizing each and case-splitting surviving if-then-else guards
/// into true/false/error branches. A rule is decided when every branch
/// bottoms out in a normal form with no undecided SAME left.
///
/// The probe abstracts a rule's instances by its open right-hand side,
/// which is faithful only when the engine's rule choice is
/// instance-independent — so it is accepted only for rule sets whose
/// rules are pairwise non-overlapping per head operation. Results are
/// memoized per rule and per head across the per-spec closures.
class GuardProber {
public:
  GuardProber(AlgebraContext &Ctx, const RewriteSystem &System,
              const std::vector<bool> &FreeSorts, PatternMatrix &Matrix,
              const ExhaustivenessOptions &Options)
      : Ctx(Ctx), System(System), FreeSorts(FreeSorts), Matrix(Matrix),
        Options(Options) {}

  /// True when the rules for \p Op are all constructor-pattern rows and
  /// pairwise non-overlapping (a non-usable row is conservatively
  /// treated as overlapping everything).
  bool headOverlapFree(OpId Op) {
    auto It = OverlapFree.find(Op);
    if (It != OverlapFree.end())
      return It->second;
    bool Free = true;
    std::vector<PatternMatrix::Row> Rows;
    for (const Rule &R : System.rulesFor(Op)) {
      auto Span = Ctx.children(R.Lhs);
      PatternMatrix::Row Row(Span.begin(), Span.end());
      for (TermId P : Row)
        Free &= PatternMatrix::isConstructorPattern(Ctx, P);
      Rows.push_back(std::move(Row));
    }
    for (size_t I = 0; Free && I != Rows.size(); ++I)
      for (size_t J = I + 1; Free && J != Rows.size(); ++J)
        Free &= !Matrix.rowOverlaps(Rows[I], Rows[J]);
    OverlapFree.emplace(Op, Free);
    return Free;
  }

  /// Probes rule \p RuleIdx's right-hand side; empty string when every
  /// guard decides, the obstruction otherwise. Memoized.
  std::string probeRhs(size_t RuleIdx) {
    auto It = RuleResult.find(RuleIdx);
    if (It != RuleResult.end())
      return It->second;
    std::string Out = probeTerm(System.rules()[RuleIdx].Rhs, 0);
    RuleResult.emplace(RuleIdx, Out);
    return Out;
  }

private:
  std::string probeTerm(TermId Term, unsigned Depth) {
    if (!Probe) {
      // A tight probe budget: an unprovable (possibly divergent) rule
      // set must not stall certification — an unfinished normalization
      // just leaves its guards undecided.
      EngineOptions EO = Options.Engine;
      EO.MaxSteps = std::min<uint64_t>(EO.MaxSteps, 4096);
      EO.MaxDepth = std::min<unsigned>(EO.MaxDepth, 512);
      EO.KeepTrace = false;
      Probe = std::make_unique<RewriteEngine>(Ctx, System, EO);
    }
    Result<TermId> Normal = Probe->normalize(Term);
    if (!Normal)
      return "the guard probe ran out of fuel";
    TermId NF = *Normal;
    TermId Cond = findSplitCondition(Ctx, NF);
    if (!Cond.isValid()) {
      SortId Bad = findUndecidedSame(Ctx, FreeSorts, NF);
      if (Bad.isValid())
        return "a SAME comparison over non-free sort '" +
               std::string(Ctx.sortName(Bad)) +
               "' survives in a normal form and may not decide";
      return std::string();
    }
    if (Depth >= Options.MaxCaseSplits)
      return "the guard case-split budget was exhausted";
    // Splitting assumes the condition denotes a value; a condition that
    // itself compares non-free values with SAME may denote none.
    SortId BadCond = findUndecidedSame(Ctx, FreeSorts, Cond);
    if (BadCond.isValid())
      return "an if-then-else guard compares values of non-free sort '" +
             std::string(Ctx.sortName(BadCond)) +
             "' with SAME, which may not decide";
    TermId Branches[3] = {Ctx.trueTerm(), Ctx.falseTerm(),
                          Ctx.makeError(Ctx.sortOf(Cond))};
    for (TermId Value : Branches) {
      std::string Sub =
          probeTerm(replaceCondition(Ctx, NF, Cond, Value), Depth + 1);
      if (!Sub.empty())
        return Sub;
    }
    return std::string();
  }

  AlgebraContext &Ctx;
  const RewriteSystem &System;
  const std::vector<bool> &FreeSorts;
  PatternMatrix &Matrix;
  const ExhaustivenessOptions &Options;
  std::unique_ptr<RewriteEngine> Probe;
  std::unordered_map<OpId, bool> OverlapFree;
  /// Rule index -> obstruction (empty = every guard decides).
  std::unordered_map<size_t, std::string> RuleResult;
};

} // namespace

//===----------------------------------------------------------------------===//
// Report accessors and rendering
//===----------------------------------------------------------------------===//

const SpecExhaustiveness *
ExhaustivenessReport::specVerdict(std::string_view SpecName) const {
  for (const SpecExhaustiveness &SE : PerSpec)
    if (SE.SpecName == SpecName)
      return &SE;
  return nullptr;
}

const OpExhaustiveness *ExhaustivenessReport::opVerdict(OpId Op) const {
  for (const OpExhaustiveness &OE : PerOp)
    if (OE.Op == Op)
      return &OE;
  return nullptr;
}

std::string ExhaustivenessReport::render(const AlgebraContext &Ctx) const {
  std::string Out;
  for (const SpecExhaustiveness &SE : PerSpec) {
    Out += "completeness of '" + SE.SpecName + "': ";
    if (SE.Verdict == CoverageVerdict::Complete)
      Out += "complete (" + std::to_string(SE.ClosureOps) + " operation" +
             (SE.ClosureOps == 1 ? "" : "s") + " certified exhaustive)";
    else
      Out += "unknown — " + SE.Obstruction;
    Out += '\n';
  }
  for (const OpExhaustiveness &OE : PerOp)
    if (OE.Witness.isValid())
      Out += "uncovered case in '" + OE.SpecName +
             "': please supply an axiom for " + printTerm(Ctx, OE.Witness) +
             "\n";
  for (const ShadowedAxiom &SA : Shadowed) {
    Out += "dead axiom: axiom " + std::to_string(SA.AxiomNumber) + " of '" +
           SA.SpecName +
           "' can never apply to constructor-ground arguments (shadowed by ";
    for (size_t I = 0; I != SA.ShadowedBy.size(); ++I)
      Out += (I ? ", " : "") + SA.ShadowedBy[I];
    Out += "; first matching rule wins)\n";
  }
  for (const std::string &Caveat : Caveats) {
    Out += "note: ";
    Out += Caveat;
    Out += '\n';
  }
  return Out;
}

//===----------------------------------------------------------------------===//
// Certification
//===----------------------------------------------------------------------===//

ExhaustivenessReport
algspec::certifyExhaustiveness(AlgebraContext &Ctx,
                               const std::vector<const Spec *> &Specs,
                               const ExhaustivenessOptions &Options) {
  ExhaustivenessReport Report;

  DiagnosticEngine Diags;
  RewriteSystem System = RewriteSystem::build(Ctx, Specs, Diags);
  bool OrientationSkipped = Diags.hasErrors();
  if (OrientationSkipped)
    Report.Caveats.push_back(
        "some axioms could not be oriented into rules and were skipped; "
        "no completeness certificate is claimed");
  Report.Termination = proveTermination(Ctx, Specs);

  const std::vector<Rule> &Rules = System.rules();
  RuleIndexes Index = indexRules(Ctx, Rules);
  std::vector<bool> FreeSorts = computeFreeSorts(Ctx, System);
  PatternMatrix Matrix(Ctx);
  GuardProber Prober(Ctx, System, FreeSorts, Matrix, Options);

  std::unordered_map<std::string_view, const Spec *> SpecByName;
  for (const Spec *S : Specs)
    SpecByName.emplace(S->name(), S);

  // Per-row facts for one operation's rule list.
  struct RowInfo {
    PatternMatrix::Row Row;
    bool Usable = true; ///< Constructor patterns only.
    bool Linear = true; ///< No repeated variable.
    const Rule *R = nullptr;
  };
  auto gatherRows = [&](OpId Op) {
    std::vector<RowInfo> Out;
    for (const Rule &R : System.rulesFor(Op)) {
      auto Span = Ctx.children(R.Lhs);
      RowInfo RI;
      RI.Row.assign(Span.begin(), Span.end());
      for (TermId P : RI.Row)
        RI.Usable &= PatternMatrix::isConstructorPattern(Ctx, P);
      RI.Linear = PatternMatrix::isLinearRow(Ctx, RI.Row);
      RI.R = &R;
      Out.push_back(std::move(RI));
    }
    return Out;
  };

  // Sets the witness (when trustworthy: every argument sort freely
  // generated, so the uncovered tuple is a reachable value) or names the
  // non-free sort that makes it untrustworthy.
  auto claimWitness = [&](OpExhaustiveness &OE,
                          const PatternMatrix::Row &Witness) {
    TermId Wrapped = Ctx.makeOp(OE.Op, Witness);
    for (SortId Arg : Ctx.op(OE.Op).ArgSorts)
      if (!FreeSorts[Arg.index()]) {
        OE.Obstruction = "sort '" + std::string(Ctx.sortName(Arg)) +
                         "' is not freely generated (a rule rewrites its "
                         "constructors), so the uncovered pattern " +
                         printTerm(Ctx, Wrapped) + " may be unreachable";
        return;
      }
    OE.Witness = Wrapped;
    OE.Obstruction = "no axiom covers " + printTerm(Ctx, Wrapped);
  };

  for (const Spec *S : Specs) {
    for (OpId Op : S->definedOps(Ctx)) {
      OpExhaustiveness OE;
      OE.SpecName = S->name();
      OE.Op = Op;
      std::vector<RowInfo> Rows = gatherRows(Op);
      OE.Rules = static_cast<unsigned>(Rows.size());

      // Under-approximation: linear constructor rows only. Dropping a
      // non-linear row can only shrink coverage, so a "covered" verdict
      // here is sound; the linearized over-approximation below is only
      // consulted to locate a witness.
      std::vector<PatternMatrix::Row> Under, Over;
      for (const RowInfo &RI : Rows) {
        if (!RI.Usable)
          continue;
        Over.push_back(RI.Row);
        if (RI.Linear)
          Under.push_back(RI.Row);
      }
      OE.MatrixRows = static_cast<unsigned>(Under.size());
      std::vector<SortId> Sorts(Ctx.op(Op).ArgSorts);

      PatternMatrix::Coverage Cov = Matrix.findUncovered(Under, Sorts);
      if (!Cov.BlockedSorts.empty()) {
        OE.Obstruction =
            "sort '" + std::string(Ctx.sortName(Cov.BlockedSorts.front())) +
            "' has no constructors; constructor-case coverage over it "
            "cannot be decided";
      } else if (!Cov.Witness) {
        OE.Verdict = CoverageVerdict::Complete;
        for (const RowInfo &RI : Rows)
          if (RI.Usable && RI.Linear)
            OE.RowsUsed.push_back(
                {RI.R->SpecName, RI.R->AxiomNumber, RI.R->Lhs});
      } else if (auto It = std::find_if(Rows.begin(), Rows.end(),
                                        [](const RowInfo &RI) {
                                          return !RI.Usable;
                                        });
                 It != Rows.end()) {
        OE.Obstruction = "axiom " + std::to_string(It->R->AxiomNumber) +
                         " of '" + It->R->SpecName +
                         "' has a non-constructor left-hand-side pattern, "
                         "so constructor-case coverage cannot be decided";
      } else if (Over.size() != Under.size()) {
        // Non-linear rows were dropped; ask the linearized
        // over-approximation whether the hole is real.
        PatternMatrix::Coverage OverCov = Matrix.findUncovered(Over, Sorts);
        if (!OverCov.BlockedSorts.empty()) {
          OE.Obstruction =
              "sort '" +
              std::string(Ctx.sortName(OverCov.BlockedSorts.front())) +
              "' has no constructors; constructor-case coverage over it "
              "cannot be decided";
        } else if (OverCov.Witness) {
          // Uncovered even if the repeated variables matched freely: a
          // genuine hole.
          claimWitness(OE, *OverCov.Witness);
        } else {
          auto NL = std::find_if(Rows.begin(), Rows.end(),
                                 [](const RowInfo &RI) {
                                   return !RI.Linear;
                                 });
          OE.Obstruction =
              "axiom " + std::to_string(NL->R->AxiomNumber) + " of '" +
              NL->R->SpecName +
              "' repeats a variable in its left-hand side; coverage sits "
              "between the linear under-approximation and the linearized "
              "over-approximation";
        }
      } else {
        claimWitness(OE, *Cov.Witness);
      }
      Report.PerOp.push_back(std::move(OE));

      // Dead-axiom analysis: a usable row useless relative to the
      // trusted rows above it can never apply to constructor-ground
      // arguments (open or stuck-subterm instances may still reach it,
      // which is why the claim is restricted).
      for (size_t K = 0; K != Rows.size(); ++K) {
        if (!Rows[K].Usable)
          continue;
        std::vector<PatternMatrix::Row> Earlier;
        std::vector<const Rule *> EarlierRules;
        for (size_t I = 0; I != K; ++I)
          if (Rows[I].Usable && Rows[I].Linear) {
            Earlier.push_back(Rows[I].Row);
            EarlierRules.push_back(Rows[I].R);
          }
        if (Earlier.empty())
          continue;
        if (Matrix.isUseful(Earlier, Rows[K].Row, Sorts))
          continue;
        const Rule *Dead = Rows[K].R;
        auto SpecIt = SpecByName.find(Dead->SpecName);
        ShadowedAxiom SA;
        SA.SpecName = Dead->SpecName;
        SA.AxiomNumber = Dead->AxiomNumber;
        SA.Loc = axiomLoc(
            SpecIt == SpecByName.end() ? nullptr : SpecIt->second,
            Dead->AxiomNumber);
        SA.Op = Op;
        for (size_t I = 0; I != Earlier.size(); ++I)
          if (Matrix.rowOverlaps(Earlier[I], Rows[K].Row))
            SA.ShadowedBy.push_back(
                "axiom " + std::to_string(EarlierRules[I]->AxiomNumber) +
                " of '" + EarlierRules[I]->SpecName + "'");
        Report.Shadowed.push_back(std::move(SA));
      }
    }
  }

  // Per-spec classification over each spec's rule closure.
  bool AnyProbed = false;
  for (const Spec *S : Specs) {
    SpecExhaustiveness SE;
    SE.SpecName = S->name();

    // Seeds: the spec's own operations plus every operation its axioms
    // mention (Stack's axioms call Array's operations).
    std::unordered_set<OpId> SeedSet(S->operations().begin(),
                                     S->operations().end());
    for (const Axiom &Ax : S->axioms()) {
      collectOpsInTerm(Ctx, Ax.Lhs, SeedSet);
      collectOpsInTerm(Ctx, Ax.Rhs, SeedSet);
    }
    std::vector<size_t> RuleIdxs;
    std::vector<OpId> ClosureOps;
    ruleClosure(Index, std::vector<OpId>(SeedSet.begin(), SeedSet.end()),
                RuleIdxs, ClosureOps);

    // Every defined operation in the closure must certify: the soundness
    // induction needs normalization of *nested* defined calls too, or a
    // stuck subterm poisons the outer application.
    std::string OpObstruction;
    for (OpId Op : ClosureOps) {
      if (!Ctx.op(Op).isDefined())
        continue;
      ++SE.ClosureOps;
      const OpExhaustiveness *OV = Report.opVerdict(Op);
      if (OV && OV->Verdict == CoverageVerdict::Complete) {
        ++SE.OpsComplete;
        continue;
      }
      if (!OpObstruction.empty())
        continue;
      std::string Name(Ctx.opName(Op));
      if (!OV)
        OpObstruction = "operation '" + Name +
                        "' is declared outside the analyzed specs, so "
                        "its coverage is unknown";
      else if (OV->Witness.isValid())
        OpObstruction = "operation '" + Name + "' is uncovered: " +
                        OV->Obstruction;
      else
        OpObstruction = "operation '" + Name + "' is not certified: " +
                        OV->Obstruction;
    }

    std::unordered_set<std::string> ContribSet;
    std::vector<std::string> Contributing;
    ContribSet.insert(S->name());
    Contributing.push_back(S->name());
    for (size_t RI : RuleIdxs)
      if (ContribSet.insert(Rules[RI].SpecName).second)
        Contributing.push_back(Rules[RI].SpecName);
    std::sort(Contributing.begin() + 1, Contributing.end());

    SE.TerminationProved = true;
    std::string TermObstruction;
    for (const std::string &Name : Contributing) {
      if (Report.Termination.provedFor(Name))
        continue;
      SE.TerminationProved = false;
      if (!TermObstruction.empty())
        continue;
      TermObstruction = "termination of '" + Name + "' is not proved";
      for (const TerminationFailure &F : Report.Termination.Failures)
        if (F.SpecName == Name) {
          TermObstruction += " (axiom " + std::to_string(F.AxiomNumber) +
                             ": " + F.Reason + ")";
          break;
        }
    }

    // Guard decidability, two layers. Layer 1 is syntactic and airtight:
    // a closure whose rules never mention SAME over a non-free sort
    // cannot strand a guard (SAME over free sorts decides natively on
    // constructor-ground arguments).
    std::string GuardObstruction;
    std::vector<size_t> Flagged;
    for (size_t RI : RuleIdxs)
      if (findUndecidedSame(Ctx, FreeSorts, Rules[RI].Rhs).isValid())
        Flagged.push_back(RI);
    if (!Flagged.empty()) {
      std::vector<OpId> Heads;
      {
        std::unordered_set<OpId> HeadSet;
        for (size_t RI : RuleIdxs)
          if (HeadSet.insert(Rules[RI].HeadOp).second)
            Heads.push_back(Rules[RI].HeadOp);
        std::sort(Heads.begin(), Heads.end());
      }
      for (OpId H : Heads)
        if (!Prober.headOverlapFree(H)) {
          SE.GuardsDecided = false;
          GuardObstruction = "rules for operation '" +
                             std::string(Ctx.opName(H)) +
                             "' overlap, so the guard probe cannot "
                             "represent every instance";
          break;
        }
      if (SE.GuardsDecided) {
        for (size_t RI : Flagged) {
          std::string Sub = Prober.probeRhs(RI);
          if (Sub.empty())
            continue;
          SE.GuardsDecided = false;
          GuardObstruction = "axiom " +
                             std::to_string(Rules[RI].AxiomNumber) +
                             " of '" + Rules[RI].SpecName + "': " + Sub;
          break;
        }
        AnyProbed |= SE.GuardsDecided;
      }
    }

    // Obstruction precedence: orientation, then the first uncertified
    // closure operation (ascending OpId), then termination, then guards.
    if (OrientationSkipped)
      SE.Obstruction =
          "some axioms could not be oriented into rules and were skipped";
    else if (!OpObstruction.empty())
      SE.Obstruction = OpObstruction;
    else if (!SE.TerminationProved)
      SE.Obstruction = TermObstruction;
    else if (!SE.GuardsDecided)
      SE.Obstruction = "guards are not decided: " + GuardObstruction;
    SE.Verdict = SE.Obstruction.empty() ? CoverageVerdict::Complete
                                        : CoverageVerdict::Unknown;
    Report.PerSpec.push_back(std::move(SE));
  }
  if (AnyProbed)
    Report.Caveats.push_back(
        "guard decidability was established by symbolic probing, which "
        "case-splits each surviving if-then-else guard into true, false, "
        "and error");

  for (const SpecExhaustiveness &SE : Report.PerSpec)
    if (SE.Verdict != CoverageVerdict::Complete) {
      Report.Overall = CoverageVerdict::Unknown;
      Report.Obstruction = "spec '" + SE.SpecName + "': " + SE.Obstruction;
      break;
    }
  return Report;
}

//===----------------------------------------------------------------------===//
// Lint passes
//===----------------------------------------------------------------------===//

namespace {

/// Shared caching base: one certification per workspace, reused across
/// the per-spec invocations of a single lint run.
class ExhaustivenessBackedPass : public LintPass {
protected:
  const ExhaustivenessReport &report(LintContext &LC) {
    const std::vector<const Spec *> &Specs = LC.allSpecs();
    if (CachedSpecs != Specs || CachedCtx != &LC.context()) {
      Cached = certifyExhaustiveness(LC.context(), Specs);
      CachedSpecs = Specs;
      CachedCtx = &LC.context();
    }
    return Cached;
  }

private:
  std::vector<const Spec *> CachedSpecs;
  const AlgebraContext *CachedCtx = nullptr;
  ExhaustivenessReport Cached;
};

/// `unreachable-axiom`: analysis-backed; surfaces each axiom the
/// usefulness analysis proves shadowed by the axioms above it.
class UnreachableAxiomPass : public ExhaustivenessBackedPass {
public:
  std::string_view name() const override { return "unreachable-axiom"; }
  std::string_view description() const override {
    return "axioms whose left-hand sides are entirely covered by earlier "
           "axioms of the same operation";
  }

  void run(LintContext &LC) override {
    const ExhaustivenessReport &Report = report(LC);
    for (const ShadowedAxiom &SA : Report.Shadowed) {
      if (SA.SpecName != LC.spec().name())
        continue;
      std::string By;
      for (size_t I = 0; I != SA.ShadowedBy.size(); ++I)
        By += (I ? ", " : "") + SA.ShadowedBy[I];
      LC.report(name(), DiagKind::Warning, SA.Loc,
                "axiom " + std::to_string(SA.AxiomNumber) +
                    ": every constructor-ground argument tuple it matches "
                    "is already matched by " + By +
                    ", so under first-matching-rule-wins it is dead code",
                "delete the axiom or move it above the axioms that "
                "shadow it");
    }
  }
};

/// `non-exhaustive-op`: analysis-backed; points each defined operation
/// with a trustworthy missing-pattern witness at the axiom to supply.
class NonExhaustiveOpPass : public ExhaustivenessBackedPass {
public:
  std::string_view name() const override { return "non-exhaustive-op"; }
  std::string_view description() const override {
    return "defined operations whose axioms miss a constructor case";
  }

  void run(LintContext &LC) override {
    const ExhaustivenessReport &Report = report(LC);
    const AlgebraContext &Ctx = LC.context();
    for (const OpExhaustiveness &OE : Report.PerOp) {
      if (OE.SpecName != LC.spec().name() || !OE.Witness.isValid())
        continue;
      std::string Case = printTerm(Ctx, OE.Witness);
      LC.report(name(), DiagKind::Warning, Ctx.op(OE.Op).Loc,
                "operation '" + std::string(Ctx.opName(OE.Op)) +
                    "' is not sufficiently complete: no axiom covers " +
                    Case,
                "please supply an axiom for " + Case);
    }
  }
};

} // namespace

std::unique_ptr<LintPass> algspec::makeUnreachableAxiomPass() {
  return std::make_unique<UnreachableAxiomPass>();
}

std::unique_ptr<LintPass> algspec::makeNonExhaustiveOpPass() {
  return std::make_unique<NonExhaustiveOpPass>();
}
